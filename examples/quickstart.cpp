// Quickstart: the paper's running example, end to end.
//
// Reconstructs the Figure 3 referral log, prints it, and walks through the
// worked examples of the paper: the incident tree of Figure 4, the
// UpdateRefer-before-GetReimburse query of Example 3, and the three-activity
// query of Example 5 — then shows the attribute-predicate and aggregation
// extensions on the same log.
//
// Run:  ./build/examples/quickstart

#include <iostream>

#include "core/aggregate.h"
#include "core/bindings.h"
#include "core/engine.h"
#include "core/printer.h"
#include "log/io_csv.h"
#include "workflow/clinic.h"

int main() {
  using namespace wflog;

  // 1. The log of Figure 3.
  const Log log = figure3_log();
  std::cout << "=== Figure 3: the clinic referral log ===\n"
            << to_csv(log) << "\n";

  QueryEngine engine(log);

  // 2. Example 3: "Are there any students who update their referral before
  //    they receive their reimbursement?"
  const QueryResult ex3 = engine.run("UpdateRefer -> GetReimburse");
  std::cout << "=== Example 3: UpdateRefer -> GetReimburse ===\n"
            << render_incident_set(ex3.incidents, engine.index())
            << "(the paper's answer: the single incident {l14, l20})\n\n";

  // 3. Figure 4: the incident tree of the Example 5 pattern.
  const PatternPtr fig4 =
      parse_pattern("SeeDoctor -> (UpdateRefer -> GetReimburse)");
  std::cout << "=== Figure 4: incident tree ===\n"
            << to_tree_string(*fig4) << "\n";

  // 4. Example 5: evaluating that tree.
  const QueryResult ex5 = engine.run(fig4);
  std::cout << "=== Example 5: " << to_text(*fig4) << " ===\n"
            << render_incident_set(ex5.incidents, engine.index())
            << "(one incident: {l13, l14, l20})\n\n";

  // 5. Variables (the conference version's "x : t" atoms): name the atoms
  //    and recover which record matched which.
  const PatternPtr bound =
      parse_pattern("x:UpdateRefer -> y:GetReimburse");
  const QueryResult with_vars = engine.run(bound);
  std::cout << "=== Variables: " << to_text(*bound) << " ===\n";
  for (const Incident& o : with_vars.incidents.flatten()) {
    if (const auto b = derive_bindings(*bound, o, engine.index())) {
      std::cout << "  " << render_bindings(*b, o.wid(), engine.index())
                << "\n";
    }
  }
  std::cout << "\n";

  // 6. Extension: attribute predicates — referrals whose balance exceeded
  //    $4,999 at update time.
  const QueryResult rich = engine.run("UpdateRefer[out.balance > 4999]");
  std::cout << "=== Extension: UpdateRefer[out.balance > 4999] ===\n"
            << render_incident_set(rich.incidents, engine.index()) << "\n";

  // 7. Extension: aggregation — referrals per hospital.
  const QueryResult refers = engine.run("GetRefer");
  const auto groups =
      group_by_attribute(refers.incidents, engine.index(),
                         GroupKey{"GetRefer", MapSel::kOut, "hospital"});
  std::cout << "=== Extension: referrals per hospital ===\n"
            << render_groups(groups);

  return ex3.any() && ex5.any() ? 0 : 1;
}
