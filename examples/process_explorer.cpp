// process_explorer: ad hoc exploration of an unfamiliar workflow log — the
// paper's Figure 2 scenario, where an analyst poses queries directly over
// the log rather than through a pre-built warehouse.
//
// Generates a random multi-branch process (unknown to the "analyst"), then
// reverse-engineers its behaviour with incident-pattern queries: activity
// census, direct-succession matrix (the classic process-mining footprint),
// concurrency probes via the parallel operator, and optimizer explanations.
//
// Run:  ./build/examples/process_explorer [instances] [seed]

#include <algorithm>
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "core/engine.h"
#include "core/printer.h"
#include "log/stats.h"
#include "workflow/workload.h"

int main(int argc, char** argv) {
  using namespace wflog;

  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 200;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  const Log log = workload::random_process(n, seed);
  const LogStats stats = compute_stats(log);
  std::cout << "=== unknown process: log summary ===\n"
            << stats.to_string() << "\n";

  QueryEngine engine(log);

  // Direct-succession footprint: count(a . b) for every activity pair —
  // the relation process-discovery algorithms start from.
  std::vector<std::string> names;
  for (const ActivityCount& ac : stats.histogram) {
    if (ac.name != "START" && ac.name != "END") names.push_back(ac.name);
  }
  std::sort(names.begin(), names.end());

  std::cout << "=== direct-succession matrix: count(row . column) ===\n";
  std::cout << std::setw(6) << "";
  for (const std::string& b : names) std::cout << std::setw(6) << b;
  std::cout << "\n";
  for (const std::string& a : names) {
    std::cout << std::setw(6) << a;
    for (const std::string& b : names) {
      std::cout << std::setw(6) << engine.count(a + " . " + b);
    }
    std::cout << "\n";
  }

  // Concurrency probe: activities that occur in both orders with a shared
  // instance suggest parallel branches.
  std::cout << "\n=== concurrency candidates (both a->b and b->a occur) ===\n";
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      const bool ab = engine.exists(names[i] + " . " + names[j]);
      const bool ba = engine.exists(names[j] + " . " + names[i]);
      if (ab && ba) {
        std::cout << "  " << names[i] << " || " << names[j] << "\n";
      }
    }
  }

  // Optimizer explanation on a deliberately wasteful query.
  if (names.size() >= 3) {
    const std::string wasteful = "(" + names[0] + " -> " + names[1] + ") | (" +
                                 names[0] + " -> " + names[2] + ")";
    QueryOptions opts;
    opts.optimizer.trace = true;
    QueryEngine explainer(log, opts);
    const QueryResult r = explainer.run(wasteful);
    std::cout << "\n=== optimizer explanation ===\n"
              << "query:     " << wasteful << "\n"
              << "executed:  " << to_text(*r.executed) << "\n"
              << "est. cost: " << r.estimated_cost_before << " -> "
              << r.estimated_cost_after << "\n"
              << "answers:   " << r.total() << " incident(s)\n";
  }

  return 0;
}
