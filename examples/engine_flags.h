#pragma once

// Shared CLI plumbing for wfq and wfqd — one place for the flags the two
// binaries have in common, so "the same flag means the same thing" stays
// true by construction:
//
//   --trace <out.json>     record spans, write Chrome trace_event JSON
//   --metrics              print Prometheus text exposition on exit
//   --metrics-json <file>  write the metrics snapshot as JSON
//   --deadline-ms N        wall-clock budget per evaluation (wfq: every
//                          query/batch run; wfqd: the per-request default)
//   --max-incidents N      emitted-incident budget, same scoping
//   --cache-mb N           result-cache byte budget in MiB (wfqd's
//                          cross-request plan/result cache; default 64.
//                          wfq runs one query and ignores it)
//   --cache-off            disable the result cache entirely
//   --shards N             wid-shards per evaluation (core/shard.h);
//                          default 0 = hardware concurrency, 1 = serial.
//                          Results are byte-identical for every N.
//
// strip_engine_flags() pulls these out of argv (position-independent) so
// each binary's own argument parsing never sees them; TelemetryScope owns
// the process-wide obs::Telemetry and writes the requested outputs when it
// goes out of scope. load_log() is the by-extension reader both binaries
// share.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "core/engine.h"
#include "log/io_csv.h"
#include "log/io_jsonl.h"
#include "log/io_xes.h"
#include "obs/telemetry.h"

namespace wflog::cli {

struct EngineFlags {
  std::string trace_path;
  std::string metrics_json_path;
  bool metrics = false;
  std::chrono::milliseconds deadline{0};
  std::size_t max_incidents = 0;
  /// Result-cache budget (wfqd; MiB). wfq accepts and ignores these so a
  /// command line can move between the binaries unchanged.
  std::size_t cache_mb = 64;
  bool cache_off = false;
  /// Wid-shards per evaluation: 0 = hardware concurrency (the CLI
  /// default — the paper-faithful serial engine stays the LIBRARY
  /// default), 1 = serial, K = scatter/gather over K shards.
  std::size_t shards = 0;

  /// ServiceOptions::cache_bytes value the flags ask for.
  std::size_t cache_bytes() const {
    return cache_off ? 0 : cache_mb * std::size_t{1024} * 1024;
  }

  bool wants_telemetry() const {
    return !trace_path.empty() || metrics || !metrics_json_path.empty();
  }

  /// QueryOptions with the guard and shard flags folded in.
  QueryOptions query_options() const {
    QueryOptions opts;
    opts.deadline = deadline;
    opts.max_incidents = max_incidents;
    opts.shards = shards;
    return opts;
  }
};

/// Strips the shared flags out of argv, appending everything else to
/// `args` (argv[0] first). `args` stays alive as long as argv does — the
/// pointers are borrowed.
inline EngineFlags strip_engine_flags(int argc, char** argv,
                                      std::vector<char*>& args) {
  EngineFlags flags;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    if (flag == "--trace" && i + 1 < argc) {
      flags.trace_path = argv[++i];
    } else if (flag == "--metrics-json" && i + 1 < argc) {
      flags.metrics_json_path = argv[++i];
    } else if (flag == "--metrics") {
      flags.metrics = true;
    } else if (flag == "--deadline-ms" && i + 1 < argc) {
      flags.deadline = std::chrono::milliseconds{std::atoll(argv[++i])};
    } else if (flag == "--max-incidents" && i + 1 < argc) {
      flags.max_incidents = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (flag == "--cache-mb" && i + 1 < argc) {
      flags.cache_mb = static_cast<std::size_t>(std::atoll(argv[++i]));
      if (flags.cache_mb == 0) flags.cache_off = true;
    } else if (flag == "--cache-off") {
      flags.cache_off = true;
    } else if (flag == "--shards" && i + 1 < argc) {
      flags.shards = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else {
      args.push_back(argv[i]);
    }
  }
  return flags;
}

/// Installs the process-wide Telemetry when any telemetry flag asked for
/// it — or unconditionally with `force` (wfqd always installs one so
/// GET /metrics has data) — and writes the requested outputs on
/// destruction.
class TelemetryScope {
 public:
  explicit TelemetryScope(EngineFlags flags, bool force = false)
      : flags_(std::move(flags)) {
    if (!flags_.wants_telemetry() && !force) return;
    telemetry_.emplace();
    // Traces get the explain()-grade detail: a span per operator node.
    telemetry_->trace_nodes = !flags_.trace_path.empty();
    installed_.emplace(*telemetry_);
    if (flags_.wants_telemetry() && obs::telemetry() == nullptr) {
      std::cerr << "note: telemetry flags ignored (built with "
                   "-DWFLOG_OBS=OFF)\n";
    }
  }

  ~TelemetryScope() {
    if (!telemetry_.has_value() || obs::telemetry() == nullptr) return;
    if (!flags_.trace_path.empty()) {
      const obs::SpanSnapshot snap = telemetry_->tracer.snapshot();
      std::ofstream out(flags_.trace_path);
      if (!out) {
        std::cerr << "error: cannot write trace to '" << flags_.trace_path
                  << "'\n";
      } else {
        out << obs::to_chrome_trace_json(snap);
        std::cerr << "trace: " << snap.spans.size() << " span(s) -> "
                  << flags_.trace_path << " (load in chrome://tracing)\n";
      }
    }
    if (flags_.metrics) {
      std::cout << obs::to_prometheus_text(telemetry_->metrics.snapshot());
    }
    if (!flags_.metrics_json_path.empty()) {
      std::ofstream out(flags_.metrics_json_path);
      if (!out) {
        std::cerr << "error: cannot write metrics to '"
                  << flags_.metrics_json_path << "'\n";
      } else {
        out << obs::metrics_to_json(telemetry_->metrics.snapshot()) << "\n";
      }
    }
  }

  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

 private:
  EngineFlags flags_;
  std::optional<obs::Telemetry> telemetry_;
  std::optional<obs::ScopedTelemetry> installed_;
};

inline bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Reads a log by extension (.csv / .jsonl / .xes).
inline Log load_log(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open '" + path + "'");
  if (has_suffix(path, ".jsonl")) return read_jsonl(in);
  if (has_suffix(path, ".csv")) return read_csv(in);
  if (has_suffix(path, ".xes")) return read_xes(in);
  throw IoError("unknown log format (expect .csv/.jsonl/.xes): " + path);
}

}  // namespace wflog::cli
