// wfqd: the workflow-log query daemon — the engine behind an HTTP API
// (src/server/). One process owns the log (optionally a durable LogStore)
// and serves concurrent queries over it:
//
//   POST /query    {"query": "A -> B", "deadline_ms": 100, "limit": 50}
//   POST /batch    {"queries": ["A -> B", "C . D"], "threads": 4}
//   POST /ingest   {"events": [{"op": "begin"}, {"op": "record", ...}]}
//   GET  /metrics  Prometheus text exposition (+ per-endpoint and
//                  per-canonical-key latency histograms)
//   GET  /stats    engine + store + server counters
//   GET  /healthz  liveness (JSON readiness detail with
//                  "Accept: application/json")
//   GET  /version  build info
//   GET  /debug/requests   ring of the last N request summaries
//   GET  /debug/slow       captured slow queries (plan + span summary)
//
// Usage:
//   wfqd --log <file.{csv,jsonl,xes}>   serve a read-only snapshot file
//                                       (ingest extends it in memory only)
//   wfqd --store <dir>                  open/create a durable LogStore;
//                                       ingested events are fsynced there
//   [--bind ADDR]        default 127.0.0.1
//   [--port N]           default 8633; 0 = ephemeral, the chosen port is
//                        printed on the "listening" line
//   [--threads N]        worker pool size (default 4)
//   [--queue N]          pending-connection bound before 503 (default 64)
//   [--drain-ms N]       shutdown grace period for in-flight requests
//   [--batch-threads N]  run_batch default when a request names none
//   [--bad-events reject|skip|quarantine]   ingest policy (monitor.h)
//   [--max-deadline-ms N]    cap on per-request deadlines (binds even
//                            requests that ask for "unlimited")
//   [--max-incidents-cap N]  cap on per-request incident budgets
//   [--cache-mb N]       cross-request result-cache budget in MiB
//                        (default 64); [--cache-off] disables it. Cached
//                        hits answer /query and /batch without touching
//                        the evaluator; ingest invalidates by snapshot
//                        version; "Cache-Control: no-cache" bypasses per
//                        request; responses carry "X-Wfq-Cache: hit|miss".
//   [--shards N]         wid-shards per evaluation (core/shard.h): every
//                        request's queries scatter over N shard workers
//                        and gather byte-identical answers. 0 = hardware
//                        concurrency (default), 1 = serial. Cache keys are
//                        shard-count-independent.
//   [--access-log PATH|-]  structured access log: one JSON line per
//                        request (id, verb, path, canonical pattern key,
//                        status, bytes, latency breakdown, stop_reason).
//                        "-" logs to stdout. Off by default.
//   [--slow-ms N]        capture requests slower than N ms (wall) into
//                        the /debug/slow ring with their optimized plan
//                        and per-operator span summary. Default 1000;
//                        0 captures everything; -1 disables capture.
//   [--debug-requests N] /debug/requests ring capacity (default 256)
//   [--debug-slow N]     /debug/slow ring capacity (default 32)
//   [--recovery-backoff-ms N]   first recovery-probe delay after a store
//                        write failure degrades the daemon to read-only
//                        (default 100; doubles per failed probe up to 50x)
//   [--max-recovery-attempts N] failed probes before recovery gives up
//                        and stays degraded for an operator (default 0 =
//                        retry forever)
//   [--max-subscriptions N]      standing-query capacity (default 64)
//   [--max-streams N]            concurrent ?stream=1 consumers; each one
//                        occupies a worker thread (default 2)
//   [--subscribe-pending-cap N]  unacknowledged events retained per
//                        subscription before the slow-consumer policy
//                        drops it (default 4096)
//   [--subscribe-heartbeat-ms N] idle-stream keep-alive cadence (5000)
//   [--subscribe-wait-cap-ms N]  longest ?wait_ms= long-poll (30000)
//   [--quarantine-capacity N]    bad-event ring under
//                        --bad-events quarantine (default 1024)
//
// Every request carries a request id: the client's X-Request-Id header
// (sanitized) or a generated "wfq-<seq>", echoed back in the response's
// X-Request-Id header and used across the access log and /debug rings.
//
// Shared flags (engine_flags.h): --trace/--metrics/--metrics-json write
// telemetry on exit; --deadline-ms/--max-incidents set the PER-REQUEST
// defaults (a request's own "deadline_ms"/"max_incidents" override them,
// up to the caps).
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight requests
// finish (cooperatively cancelled after --drain-ms), then the process
// exits 0. SIGHUP reopens the --access-log file so logrotate can move it
// aside without restarting the daemon.
//
// Degraded mode: when a durable append to --store fails, the daemon stays
// up read-only — /query and /batch keep serving the last good snapshot,
// /ingest answers 503 with Retry-After — while a background recovery loop
// reopens the store under capped exponential backoff (see --recovery-*
// above). Transitions are logged to the access log and exported as
// wflog_server_health_* metrics; /healthz reports the current state.

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "engine_flags.h"

#include "common/error.h"
#include "server/handlers.h"
#include "server/json.h"
#include "server/server.h"

namespace {

using namespace wflog;

[[noreturn]] void usage() {
  std::cerr
      << "usage: wfqd --log <file.{csv,jsonl,xes}> | --store <dir>\n"
         "  [--bind ADDR] [--port N (0=ephemeral)] [--threads N] "
         "[--queue N]\n"
         "  [--drain-ms N] [--batch-threads N] "
         "[--bad-events reject|skip|quarantine]\n"
         "  [--max-deadline-ms N] [--max-incidents-cap N]\n"
         "shared flags: --trace <out.json>  --metrics  --metrics-json "
         "<file>\n"
         "              --deadline-ms N  --max-incidents N  (per-request "
         "defaults)\n"
         "              --cache-mb N (default 64)  --cache-off\n"
         "              --shards N (0 = hw concurrency, 1 = serial)\n"
         "observability: --access-log PATH|-  --slow-ms N (default 1000, "
         "-1=off)\n"
         "              --debug-requests N (default 256)  --debug-slow N "
         "(default 32)\n"
         "degraded mode: --recovery-backoff-ms N (default 100)\n"
         "              --max-recovery-attempts N (default 0 = forever)\n"
         "standing queries: --max-subscriptions N (default 64)  "
         "--max-streams N (default 2)\n"
         "              --subscribe-pending-cap N (default 4096)  "
         "--subscribe-heartbeat-ms N (default 5000)\n"
         "              --subscribe-wait-cap-ms N (default 30000)  "
         "--quarantine-capacity N (default 1024)\n";
  std::exit(2);
}

server::HttpServer* g_server = nullptr;
server::RequestObserver* g_observer = nullptr;

extern "C" void on_signal(int) {
  if (g_server != nullptr) g_server->request_shutdown();
}

extern "C" void on_sighup(int) {
  // request_access_log_reopen is one relaxed atomic store — safe here.
  if (g_observer != nullptr) g_observer->request_access_log_reopen();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args;
  const cli::EngineFlags flags = cli::strip_engine_flags(argc, argv, args);

  std::string log_path;
  std::string store_dir;
  server::ServerOptions sopts;
  sopts.port = 8633;
  server::ServiceOptions svc;
  svc.engine = flags.query_options();
  // The guard flags are per-REQUEST defaults here, not engine-wide ones:
  // limits_from() starts from these and lets each request override within
  // the caps.
  svc.engine.deadline = std::chrono::milliseconds{0};
  svc.engine.max_incidents = 0;
  svc.default_deadline_ms = flags.deadline.count();
  svc.default_max_incidents = flags.max_incidents;
  svc.cache_bytes = flags.cache_bytes();
  server::ObserverOptions obs_opts;
  obs_opts.slow_us = 1000 * 1000;  // --slow-ms default: 1000

  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string flag = args[i];
    const bool has_value = i + 1 < args.size();
    if (flag == "--log" && has_value) {
      log_path = args[++i];
    } else if (flag == "--store" && has_value) {
      store_dir = args[++i];
    } else if (flag == "--bind" && has_value) {
      sopts.bind_address = args[++i];
    } else if (flag == "--port" && has_value) {
      sopts.port = static_cast<std::uint16_t>(std::atoi(args[++i]));
    } else if (flag == "--threads" && has_value) {
      sopts.threads = static_cast<std::size_t>(std::atoll(args[++i]));
    } else if (flag == "--queue" && has_value) {
      sopts.queue_capacity = static_cast<std::size_t>(std::atoll(args[++i]));
    } else if (flag == "--drain-ms" && has_value) {
      sopts.drain_timeout_ms = std::atoi(args[++i]);
    } else if (flag == "--batch-threads" && has_value) {
      svc.batch_threads = static_cast<std::size_t>(std::atoll(args[++i]));
    } else if (flag == "--max-deadline-ms" && has_value) {
      svc.max_deadline_ms = std::atoll(args[++i]);
    } else if (flag == "--max-incidents-cap" && has_value) {
      svc.max_incidents_cap = static_cast<std::size_t>(std::atoll(args[++i]));
    } else if (flag == "--access-log" && has_value) {
      obs_opts.access_log_path = args[++i];
    } else if (flag == "--slow-ms" && has_value) {
      const long long ms = std::atoll(args[++i]);
      obs_opts.slow_us = ms < 0 ? -1 : ms * 1000;
    } else if (flag == "--debug-requests" && has_value) {
      obs_opts.requests_capacity =
          static_cast<std::size_t>(std::atoll(args[++i]));
    } else if (flag == "--debug-slow" && has_value) {
      obs_opts.slow_capacity = static_cast<std::size_t>(std::atoll(args[++i]));
    } else if (flag == "--recovery-backoff-ms" && has_value) {
      svc.recovery_backoff_ms = std::atoll(args[++i]);
      svc.recovery_backoff_cap_ms =
          std::max<std::int64_t>(svc.recovery_backoff_ms * 50,
                                 svc.recovery_backoff_cap_ms);
    } else if (flag == "--max-recovery-attempts" && has_value) {
      svc.max_recovery_attempts = std::atoi(args[++i]);
    } else if (flag == "--max-subscriptions" && has_value) {
      svc.subscribe.max_subscriptions =
          static_cast<std::size_t>(std::atoll(args[++i]));
    } else if (flag == "--max-streams" && has_value) {
      svc.subscribe.max_streams =
          static_cast<std::size_t>(std::atoll(args[++i]));
    } else if (flag == "--subscribe-pending-cap" && has_value) {
      svc.subscribe.pending_cap =
          static_cast<std::size_t>(std::atoll(args[++i]));
    } else if (flag == "--subscribe-heartbeat-ms" && has_value) {
      svc.subscribe_heartbeat_ms = std::atoll(args[++i]);
    } else if (flag == "--subscribe-wait-cap-ms" && has_value) {
      svc.subscribe_wait_cap_ms = std::atoll(args[++i]);
    } else if (flag == "--quarantine-capacity" && has_value) {
      svc.quarantine_capacity =
          static_cast<std::size_t>(std::atoll(args[++i]));
    } else if (flag == "--bad-events" && has_value) {
      const std::string policy = args[++i];
      if (policy == "reject") {
        svc.bad_event_policy = BadEventPolicy::kReject;
      } else if (policy == "skip") {
        svc.bad_event_policy = BadEventPolicy::kSkip;
      } else if (policy == "quarantine") {
        svc.bad_event_policy = BadEventPolicy::kQuarantine;
      } else {
        usage();
      }
    } else {
      usage();
    }
  }
  if (log_path.empty() == store_dir.empty()) usage();  // exactly one source

  // The daemon always runs with telemetry installed so GET /metrics has
  // data even when no telemetry flag was given.
  cli::TelemetryScope telemetry(flags, /*force=*/true);

  // Without a --trace sink nothing ever drains the tracer's per-thread
  // span buffers, so a long-running daemon would grow them forever. Cap
  // them: slow-query capture only summarizes the current request's spans,
  // so dropping new spans once a thread hits the cap costs detail in
  // /debug/slow, not correctness.
  if (flags.trace_path.empty()) {
    WFLOG_TELEMETRY(t) { t->tracer.set_thread_span_limit(1u << 18); }
  }

  try {
    std::optional<Log> initial;
    std::optional<LogStore> store;
    if (!store_dir.empty()) {
      const bool exists =
          std::filesystem::exists(std::filesystem::path(store_dir) /
                                  "MANIFEST");
      store = exists ? LogStore::open(store_dir) : LogStore::create(store_dir);
      if (store->num_records() > 0) initial = store->load();
      const RecoveryReport& rec = store->recovery_report();
      for (const std::string& note : rec.notes) {
        std::cerr << "store recovery: " << note << "\n";
      }
    } else {
      Log log = cli::load_log(log_path);
      if (log.size() > 0) initial = std::move(log);
    }

    // The daemon always keeps the request observer on (the /debug rings
    // are cheap); the access log and slow capture follow their flags.
    server::RequestObserver observer(obs_opts);
    sopts.observer = &observer;

    // Health transitions (healthy -> degraded -> recovering -> ...) land
    // in the access log next to the requests they explain, and on stderr
    // for an operator tailing the daemon.
    svc.on_health_transition = [&observer](server::HealthState from,
                                           server::HealthState to,
                                           const std::string& detail) {
      std::cerr << "wfqd health: " << server::to_string(from) << " -> "
                << server::to_string(to) << " (" << detail << ")\n";
      server::JsonValue fields{server::JsonMembers{}};
      fields.set("from", server::to_string(from));
      fields.set("to", server::to_string(to));
      fields.set("detail", detail);
      observer.log_event("health", std::move(fields));
    };

    server::QueryService service(std::move(initial), svc,
                                 sopts.drain_cancel, std::move(store));
    server::Router router;
    service.bind(router);
    service.attach_observer(&observer);

    server::HttpServer http(std::move(router), std::move(sopts));
    service.attach_server(&http);
    g_server = &http;
    g_observer = &observer;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGHUP, on_sighup);
    std::signal(SIGPIPE, SIG_IGN);

    http.start();
    std::cout << "wfqd listening on " << http.port() << " ("
              << service.num_records() << " records)" << std::endl;
    http.wait();
    g_server = nullptr;
    g_observer = nullptr;

    const server::ServerStats stats = http.stats();
    std::cout << "wfqd drained: " << stats.served << " served, "
              << stats.rejected << " rejected, " << stats.bad_requests
              << " bad requests\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "wfqd: " << e.what() << "\n";
    return 1;
  }
}
