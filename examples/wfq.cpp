// wfq: a command-line workflow-log query tool over CSV/JSONL logs — the
// "Log Queries" box of the paper's Figure 2 as a utility.
//
// Usage:
//   wfq stats  <log.{csv,jsonl}>
//   wfq query  <log.{csv,jsonl}> '<pattern>'  [--limit N] [--no-optimize]
//   wfq batch  <log> <queries.txt> [--threads N] [--no-cache] [--compare]
//              one query per line, '#' comments; evaluates all queries in
//              one shared pass (core/batch.h)
//   wfq exists <log.{csv,jsonl}> '<pattern>'
//   wfq count  <log.{csv,jsonl}> '<pattern>'
//   wfq explain <log.{csv,jsonl}> '<pattern>'
//   wfq tree   '<pattern>'
//   wfq footprint <log>                  direct-succession matrix
//   wfq discover  <log> [out.dot]        mine a model, print/export DOT
//   wfq audit     <log>                  built-in clinic compliance rules
//   wfq compact   <store-dir>            rewrite a LogStore into sealed v2
//                                        segments (log/store.h compaction)
//   wfq inspect-segment <seg-file>       JSON dump of one segment file:
//                                        blocks, zone maps, CRCs, ratios
//   wfq gen    clinic|procurement|random <instances> <seed> <out.{csv,jsonl,xes}>
//
// Logs may be .csv, .jsonl, or .xes (IEEE 1849) — format by extension — or
// a LogStore directory (contains MANIFEST). Store-directory queries go
// through the zone-map-pruned load: blocks whose zone maps rule out every
// instance that could satisfy the pattern's required activities are never
// inflated (identical incident sets either way).
//
// Global telemetry flags (any command, stripped before dispatch):
//   --trace <out.json>     record spans, write Chrome trace_event JSON
//                          (load in chrome://tracing or ui.perfetto.dev);
//                          also enables per-operator-node eval spans
//   --metrics              print Prometheus text exposition on exit
//   --metrics-json <file>  write the metrics snapshot as JSON
//
// Resource-guard flags (query/batch, stripped before dispatch):
//   --deadline-ms N        wall-clock budget per evaluation; on expiry the
//                          incidents found so far are printed with a
//                          "partial result" note (exit stays 0/1)
//   --max-incidents N      stop after emitting ~N incidents (Theorem 1
//                          memory guard); same partial-result semantics
//
// Sharding flag (query/batch/exists/count/repl, stripped before dispatch):
//   --shards N             evaluate over N wid-disjoint shards on a worker
//                          pool (core/shard.h); 0 = hardware concurrency
//                          (default), 1 = serial. Byte-identical results.
//
// Pattern syntax: activity names; operators . (consecutive), -> (sequential),
// | (choice), & (parallel); ! negation; [attr op value] predicates.

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "engine_flags.h"

#include "common/error.h"
#include "common/text.h"
#include "core/engine.h"
#include "core/compliance.h"
#include "core/explain.h"
#include "core/printer.h"
#include "log/io_csv.h"
#include "log/io_jsonl.h"
#include "log/io_xes.h"
#include "log/segfmt.h"
#include "log/stats.h"
#include "log/store.h"
#include "obs/telemetry.h"
#include "server/client.h"
#include "server/json.h"
#include "workflow/discovery.h"
#include "workflow/dot.h"
#include "workflow/clinic.h"
#include "workflow/workload.h"

namespace {

using namespace wflog;

/// The shared flags (engine_flags.h), stripped in main(); --deadline-ms /
/// --max-incidents fold into every QueryOptions the query/batch commands
/// build via guarded_options().
cli::EngineFlags g_flags;

QueryOptions guarded_options() { return g_flags.query_options(); }

/// One-line note when an evaluation came back flagged partial.
void report_partial(const QueryResult& r) {
  if (r.complete() || !r.ok()) return;
  std::cout << "note: PARTIAL result (" << stop_reason_name(r.stop_reason)
            << " limit hit); incidents shown are a valid subset\n";
}

[[noreturn]] void usage() {
  std::cerr
      << "usage:\n"
         "  wfq stats  <log.{csv,jsonl}>\n"
         "  wfq query  <log> '<pattern>' [--limit N] [--no-optimize]\n"
         "  wfq batch  <log> <queries.txt> [--threads N] [--no-cache] "
         "[--compare]\n"
         "  wfq exists <log> '<pattern>'\n"
         "  wfq count  <log> '<pattern>'\n"
         "  wfq explain <log> '<pattern>'\n"
         "  wfq tree   '<pattern>'\n"
         "  wfq footprint <log>\n"
         "  wfq discover  <log> [out.dot]\n"
         "  wfq audit     <log>\n"
         "  wfq compact   <store-dir>\n"
         "  wfq inspect-segment <seg-file>\n"
         "  wfq repl      <log>\n"
         "  wfq subscribe <host:port> '<pattern>' [--stream] [--wait-ms N] "
         "[--max N]\n"
         "  wfq gen    clinic|procurement|random <instances> <seed> "
         "<out.{csv,jsonl,xes}>\n"
         "global flags (any command): --trace <out.json>  --metrics  "
         "--metrics-json <file>\n"
         "guard flags (query/batch):  --deadline-ms N  --max-incidents N\n"
         "shard flag (evaluating commands): --shards N (0 = hw "
         "concurrency, 1 = serial)\n";
  std::exit(2);
}

using cli::has_suffix;

/// A LogStore directory is recognized by its MANIFEST; file paths go
/// through the by-extension readers.
bool is_store_dir(const std::string& path) {
  namespace fs = std::filesystem;
  return fs::is_directory(path) && fs::exists(fs::path(path) / "MANIFEST");
}

Log load_log(const std::string& path) {
  if (is_store_dir(path)) return LogStore::open(path).load();
  return cli::load_log(path);
}

/// Load for one pattern: a store directory goes through the zone-map-pruned
/// path (only instances that could satisfy the pattern's required-activity
/// set are materialized; blocks ruled out by zone maps are never inflated).
Log load_log_for(const std::string& path, const std::string& pattern_text) {
  if (!is_store_dir(path)) return cli::load_log(path);
  const PatternPtr parsed = parse_pattern(pattern_text);
  const LogStore store = LogStore::open(path);
  LogStore::PrunedLoad pruned =
      store.load_pruned(required_activities(*parsed));
  if (pruned.pruned) {
    std::cout << "store: kept " << pruned.records_kept << "/"
              << store.num_records() << " records; blocks read "
              << pruned.blocks_read << ", skipped " << pruned.blocks_skipped
              << " of " << pruned.blocks_total << " zone-mapped\n";
  }
  return std::move(pruned.log);
}

void save_log(const Log& log, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  if (has_suffix(path, ".jsonl")) {
    write_jsonl(log, out);
  } else if (has_suffix(path, ".csv")) {
    write_csv(log, out);
  } else if (has_suffix(path, ".xes")) {
    write_xes(log, out);
  } else {
    throw IoError("unknown output format (expect .csv/.jsonl/.xes): " +
                  path);
  }
}

int cmd_stats(const std::string& path) {
  std::cout << compute_stats(load_log(path)).to_string();
  return 0;
}

int cmd_query(const std::string& path, const std::string& pattern,
              std::size_t limit, bool optimize) {
  const Log log = load_log_for(path, pattern);
  QueryOptions opts = guarded_options();
  opts.optimize = optimize;
  QueryEngine engine(log, opts);
  const QueryResult r = engine.run(pattern);
  std::cout << "pattern:   " << to_text(*r.parsed) << "\n";
  if (!r.executed->structurally_equal(*r.parsed)) {
    std::cout << "optimized: " << to_text(*r.executed) << " (est. cost "
              << r.estimated_cost_before << " -> " << r.estimated_cost_after
              << ")\n";
  }
  std::cout << "time: parse " << r.parse_us << " us, optimize "
            << r.optimize_us << " us, eval " << r.eval_us << " us\n"
            << render_incident_set(r.incidents, engine.index(), limit);
  report_partial(r);
  return r.any() ? 0 : 1;
}

int cmd_batch(const std::string& path, const std::string& queries_path,
              std::size_t threads, bool use_cache, bool compare) {
  std::ifstream in(queries_path);
  if (!in) throw IoError("cannot open '" + queries_path + "'");
  std::vector<std::string> texts;
  std::string line;
  while (std::getline(in, line)) {
    const std::string text{trim(line)};
    if (!text.empty() && text[0] != '#') texts.push_back(text);
  }
  if (texts.empty()) throw IoError("no queries in '" + queries_path + "'");

  const Log log = load_log(path);
  QueryEngine engine(log, guarded_options());
  const BatchResult batch = engine.run_batch(texts, threads, use_cache);

  // Failure isolation: a malformed query is an error slot, the rest of the
  // batch still ran. Report errors inline, count them for the exit code.
  std::size_t failed = 0;
  for (std::size_t q = 0; q < texts.size(); ++q) {
    const QueryResult& r = batch.results[q];
    std::cout << "[" << q << "] " << texts[q] << "\n      ";
    if (!r.ok()) {
      ++failed;
      std::cout << "error: " << r.error << "\n";
    } else {
      std::cout << r.total() << " incidents";
      if (!r.complete()) {
        std::cout << " (PARTIAL: " << stop_reason_name(r.stop_reason) << ")";
      }
      std::cout << "\n";
    }
  }
  const BatchPlanStats& plan = batch.stats.plan;
  std::cout << "batch: " << plan.num_queries << " queries, "
            << plan.total_nodes << " pattern nodes -> "
            << plan.distinct_slots << " shared slots ("
            << plan.shared_nodes() << " deduplicated)\n"
            << "cache: " << batch.cache_hits() << " hits, "
            << batch.cache_misses() << " misses, " << batch.cache_bytes()
            << " bytes retained\n"
            << "eval:  " << batch.eval_us << " us on "
            << batch.stats.threads_used << " thread(s)\n";

  if (compare) {
    const auto t0 = std::chrono::steady_clock::now();
    bool identical = true;
    for (std::size_t q = 0; q < texts.size(); ++q) {
      if (!batch.results[q].ok()) continue;  // error slots have no answer
      const QueryResult solo = engine.run(texts[q]);
      identical =
          identical && solo.incidents == batch.results[q].incidents;
    }
    const double solo_us = std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    std::cout << "sequential: " << solo_us << " us ("
              << (batch.eval_us > 0 ? solo_us / batch.eval_us : 0)
              << "x batch eval), results "
              << (identical ? "identical" : "DIFFER!") << "\n";
    if (!identical) return 4;
  }
  return failed != 0 ? 5 : 0;
}

int cmd_exists(const std::string& path, const std::string& pattern) {
  const Log log = load_log_for(path, pattern);
  QueryEngine engine(log, guarded_options());
  const bool found = engine.exists(pattern);
  std::cout << (found ? "yes" : "no") << "\n";
  return found ? 0 : 1;
}

int cmd_count(const std::string& path, const std::string& pattern) {
  const Log log = load_log_for(path, pattern);
  QueryEngine engine(log, guarded_options());
  std::cout << engine.count(pattern) << "\n";
  return 0;
}

int cmd_explain(const std::string& path, const std::string& pattern) {
  const Log log = load_log(path);
  const LogIndex index(log);
  const CostModel model(index);
  std::cout << explain(*parse_pattern(pattern), index, model).to_string();
  return 0;
}

int cmd_tree(const std::string& pattern) {
  std::cout << to_tree_string(*parse_pattern(pattern));
  return 0;
}

int cmd_footprint(const std::string& path) {
  const Log log = load_log(path);
  std::cout << discover_footprint(LogIndex(log)).to_string();
  return 0;
}

int cmd_discover(const std::string& path, const std::string& dot_out) {
  const Log log = load_log(path);
  const WorkflowModel model = discover_model(LogIndex(log));
  const std::string dot = to_dot(model);
  if (dot_out.empty()) {
    std::cout << dot;
  } else {
    std::ofstream out(dot_out);
    if (!out) throw IoError("cannot open '" + dot_out + "' for writing");
    out << dot;
    std::cout << "wrote " << model.num_nodes() << "-node model to "
              << dot_out << "\n";
  }
  return 0;
}

int cmd_audit(const std::string& path) {
  const Log log = load_log(path);
  const LogIndex index(log);
  const ComplianceReport report = check_compliance(
      {
          Rule::init("GetRefer"),
          Rule::exactly("GetRefer", 1),
          Rule::exactly("CheckIn", 1),
          Rule::precedence("CheckIn", "SeeDoctor"),
          Rule::precedence("PayTreatment", "GetReimburse"),
          Rule::not_succession("GetReimburse", "UpdateRefer"),
          Rule::absence("GetReimburse", 2),
      },
      index);
  std::cout << report.to_string();
  return report.compliant() ? 0 : 1;
}

int cmd_repl(const std::string& path) {
  const Log log = load_log(path);
  QueryEngine engine(log, guarded_options());
  std::cout << "loaded " << log.size() << " records, "
            << log.wids().size()
            << " instances. Enter patterns (:q quits, :stats, :explain "
               "<pattern>).\n";
  std::string line;
  while (std::cout << "wfq> " && std::getline(std::cin, line)) {
    const std::string text{trim(line)};
    if (text.empty()) continue;
    if (text == ":q" || text == ":quit") break;
    try {
      if (text == ":stats") {
        std::cout << compute_stats(log).to_string();
        continue;
      }
      if (text.starts_with(":explain ")) {
        const CostModel model(engine.index());
        std::cout << explain(*parse_pattern(text.substr(9)), engine.index(),
                             model)
                         .to_string();
        continue;
      }
      const QueryResult r = engine.run(text);
      std::cout << render_incident_set(r.incidents, engine.index(), 10);
    } catch (const Error& e) {
      std::cout << "error: " << e.what() << "\n";
    }
  }
  return 0;
}

int cmd_compact(const std::string& dir) {
  const LogStore::CompactionReport r = LogStore::compact(dir);
  std::cout << "compacted " << r.records << " records: " << r.segments_before
            << " segment(s), " << r.bytes_before << " bytes -> "
            << r.segments_after << " segment(s), " << r.bytes_after
            << " bytes (" << r.blocks_written << " blocks)";
  if (r.bytes_after > 0 && r.bytes_before >= r.bytes_after) {
    std::printf(", %.2fx smaller",
                static_cast<double>(r.bytes_before) /
                    static_cast<double>(r.bytes_after));
  }
  std::cout << "\n";
  return 0;
}

void json_escape_to(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out << buf;
    } else {
      out << c;
    }
  }
}

/// Machine-readable dump of one segment file: header facts, per-block zone
/// maps, CRCs, compression ratios. v2 segments are read via the footer
/// when sealed, by block scan otherwise; v1 segments report line counts.
int cmd_inspect_segment(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = std::move(buf).str();

  std::ostream& out = std::cout;
  out << "{\n  \"path\": \"";
  json_escape_to(out, path);
  out << "\",\n  \"bytes\": " << data.size();

  if (!data.starts_with(kSegV2FileMagic)) {
    // v1 JSONL (or foreign) segment: count checksummed record lines.
    std::size_t records = 0;
    std::size_t pos = 0;
    while (pos < data.size()) {
      std::size_t nl = data.find('\n', pos);
      if (nl == std::string::npos) nl = data.size();
      if (!trim(std::string_view(data).substr(pos, nl - pos)).empty()) {
        ++records;
      }
      pos = nl + 1;
    }
    out << ",\n  \"format\": \"v1-jsonl\",\n  \"records\": " << records
        << "\n}\n";
    return 0;
  }

  const std::optional<FooterRead> footer = try_read_v2_footer(data);
  std::vector<BlockZone> zones;
  std::size_t record_count = 0;
  bool torn = false;
  std::string corrupt;
  if (footer.has_value()) {
    zones = footer->footer.blocks;
    record_count = footer->footer.record_count;
  } else {
    const BlockScan scan = scan_v2_blocks(data);
    zones = scan.zones;
    torn = scan.torn;
    corrupt = scan.corrupt_reason;
    for (const BlockZone& z : zones) record_count += z.record_count;
  }
  out << ",\n  \"format\": \"v2-blocks\""
      << ",\n  \"sealed\": " << (footer.has_value() ? "true" : "false")
      << ",\n  \"torn\": " << (torn ? "true" : "false");
  if (!corrupt.empty()) {
    out << ",\n  \"corrupt\": \"";
    json_escape_to(out, corrupt);
    out << "\"";
  }
  out << ",\n  \"records\": " << record_count
      << ",\n  \"blocks\": [";
  std::uint64_t comp_total = 0;
  std::uint64_t uncomp_total = 0;
  for (std::size_t i = 0; i < zones.size(); ++i) {
    const BlockZone& z = zones[i];
    comp_total += z.compressed_size;
    uncomp_total += z.uncompressed_size;
    out << (i == 0 ? "" : ",") << "\n    {\"offset\": " << z.file_offset
        << ", \"codec\": \""
        << (z.codec == static_cast<std::uint32_t>(BlockCodec::kDeflate)
                ? "deflate"
                : "raw")
        << "\", \"compressed_size\": " << z.compressed_size
        << ", \"uncompressed_size\": " << z.uncompressed_size
        << ", \"records\": " << z.record_count << ", \"wid_min\": "
        << z.wid_min << ", \"wid_max\": " << z.wid_max << ", \"lsn_min\": "
        << z.lsn_min << ", \"lsn_max\": " << z.lsn_max
        << ", \"payload_crc\": " << z.payload_crc
        << ", \"bloom_bits\": " << z.bloom.num_bits() << "}";
  }
  out << (zones.empty() ? "]" : "\n  ]")
      << ",\n  \"compressed_payload_bytes\": " << comp_total
      << ",\n  \"uncompressed_payload_bytes\": " << uncomp_total;
  if (comp_total > 0) {
    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.3f",
                  static_cast<double>(uncomp_total) /
                      static_cast<double>(comp_total));
    out << ",\n  \"compression_ratio\": " << ratio;
  }
  if (footer.has_value()) {
    out << ",\n  \"footer_offset\": " << footer->footer_start
        << ",\n  \"watermarked_instances\": "
        << footer->footer.next_is_lsn.size();
  }
  out << "\n}\n";
  return !corrupt.empty() ? 1 : 0;
}

int cmd_gen(const std::string& kind, std::size_t instances,
            std::uint64_t seed, const std::string& out) {
  Log log =
      kind == "clinic"        ? workload::clinic(instances, seed)
      : kind == "procurement" ? workload::procurement(instances, seed)
      : kind == "random"      ? workload::random_process(instances, seed)
                              : throw IoError("unknown generator: " + kind);
  save_log(log, out);
  std::cout << "wrote " << log.size() << " records ("
            << log.wids().size() << " instances) to " << out << "\n";
  return 0;
}

/// Standing query against a running wfqd: register via POST /subscribe,
/// then either consume the chunked stream (--stream) or long-poll with
/// per-round acknowledgements. One JSON object per stdout line; status
/// chatter goes to stderr so the output pipes cleanly into jq.
int cmd_subscribe(const std::string& endpoint, const std::string& pattern,
                  bool stream, std::int64_t wait_ms,
                  std::size_t max_events) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    throw IoError("endpoint must be host:port, got '" + endpoint + "'");
  }
  const std::string host = endpoint.substr(0, colon);
  const int port = std::atoi(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    throw IoError("bad port in '" + endpoint + "'");
  }
  server::HttpClient client(host.empty() ? std::string("127.0.0.1") : host,
                            static_cast<std::uint16_t>(port),
                            /*timeout_ms=*/30000);

  server::JsonValue req;
  req.set("query", pattern);
  const server::ClientResponse created =
      client.post("/subscribe", req.dump());
  if (created.status != 201) {
    std::cerr << "subscribe failed (" << created.status
              << "): " << created.body << "\n";
    return 1;
  }
  const server::JsonValue meta = server::parse_json(created.body);
  const std::string id = meta.find("id")->as_string();
  std::cerr << "subscribed as " << id << " ("
            << meta.find("matched")->as_int()
            << " historical incidents queued)\n";

  std::size_t seen = 0;
  if (stream) {
    // Each chunk is one JSON object: incident, heartbeat, or the terminal
    // end marker. Heartbeats stay off stdout.
    const server::ClientResponse r = client.stream(
        "GET", "/subscribe/" + id + "?stream=1", "",
        [&](std::string_view chunk) {
          std::string line(chunk);
          while (!line.empty() && line.back() == '\n') line.pop_back();
          if (line.find("\"type\":\"heartbeat\"") != std::string::npos) {
            return true;
          }
          std::cout << line << "\n" << std::flush;
          if (line.find("\"type\":\"incident\"") != std::string::npos) {
            ++seen;
            if (max_events > 0 && seen >= max_events) return false;
          }
          return true;
        });
    if (r.status != 200) {
      std::cerr << "stream failed (" << r.status << "): " << r.body << "\n";
      return 1;
    }
    return 0;
  }

  // Long-poll: ?after= acknowledges the previous round, so each incident
  // is delivered exactly once even across reconnects.
  std::uint64_t after = 0;
  while (true) {
    const server::ClientResponse r = client.get(
        "/subscribe/" + id + "?wait_ms=" + std::to_string(wait_ms) +
        "&after=" + std::to_string(after));
    if (r.status == 404) {
      std::cerr << "subscription is gone\n";
      return 1;
    }
    if (r.status != 200) {
      std::cerr << "poll failed (" << r.status << "): " << r.body << "\n";
      return 1;
    }
    const server::JsonValue body = server::parse_json(r.body);
    for (const server::JsonValue& e : body.find("events")->as_array()) {
      std::cout << e.dump() << "\n";
      ++seen;
      if (max_events > 0 && seen >= max_events) {
        std::cout << std::flush;
        return 0;
      }
    }
    std::cout << std::flush;
    after = static_cast<std::uint64_t>(body.find("next_after")->as_int());
    const server::JsonValue* closed = body.find("closed");
    if (closed != nullptr && closed->is_bool() && closed->as_bool()) {
      const server::JsonValue* reason = body.find("reason");
      std::cerr << "subscription closed ("
                << (reason != nullptr && reason->is_string()
                        ? reason->as_string()
                        : std::string("closed"))
                << ")\n";
      return 0;
    }
  }
}

int dispatch(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "stats" && argc == 3) return cmd_stats(argv[2]);
    if (cmd == "query" && argc >= 4) {
      std::size_t limit = 20;
      bool optimize = true;
      for (int i = 4; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--no-optimize") {
          optimize = false;
        } else if (flag == "--limit" && i + 1 < argc) {
          limit = static_cast<std::size_t>(std::atoll(argv[++i]));
        } else {
          usage();
        }
      }
      return cmd_query(argv[2], argv[3], limit, optimize);
    }
    if (cmd == "batch" && argc >= 4) {
      std::size_t threads = 1;
      bool use_cache = true;
      bool compare = false;
      for (int i = 4; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--no-cache") {
          use_cache = false;
        } else if (flag == "--compare") {
          compare = true;
        } else if (flag == "--threads" && i + 1 < argc) {
          threads = static_cast<std::size_t>(std::atoll(argv[++i]));
        } else {
          usage();
        }
      }
      return cmd_batch(argv[2], argv[3], threads, use_cache, compare);
    }
    if (cmd == "exists" && argc == 4) return cmd_exists(argv[2], argv[3]);
    if (cmd == "count" && argc == 4) return cmd_count(argv[2], argv[3]);
    if (cmd == "explain" && argc == 4) return cmd_explain(argv[2], argv[3]);
    if (cmd == "tree" && argc == 3) return cmd_tree(argv[2]);
    if (cmd == "footprint" && argc == 3) return cmd_footprint(argv[2]);
    if (cmd == "discover" && (argc == 3 || argc == 4)) {
      return cmd_discover(argv[2], argc == 4 ? argv[3] : "");
    }
    if (cmd == "audit" && argc == 3) return cmd_audit(argv[2]);
    if (cmd == "compact" && argc == 3) return cmd_compact(argv[2]);
    if (cmd == "inspect-segment" && argc == 3) {
      return cmd_inspect_segment(argv[2]);
    }
    if (cmd == "repl" && argc == 3) return cmd_repl(argv[2]);
    if (cmd == "subscribe" && argc >= 4) {
      bool stream = false;
      std::int64_t wait_ms = 10000;
      std::size_t max_events = 0;
      for (int i = 4; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--stream") {
          stream = true;
        } else if (flag == "--wait-ms" && i + 1 < argc) {
          wait_ms = std::atoll(argv[++i]);
        } else if (flag == "--max" && i + 1 < argc) {
          max_events = static_cast<std::size_t>(std::atoll(argv[++i]));
        } else {
          usage();
        }
      }
      return cmd_subscribe(argv[2], argv[3], stream, wait_ms, max_events);
    }
    if (cmd == "gen" && argc == 6) {
      return cmd_gen(argv[2],
                     static_cast<std::size_t>(std::atoll(argv[3])),
                     static_cast<std::uint64_t>(std::atoll(argv[4])),
                     argv[5]);
    }
  } catch (const ParseError& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return 3;
  } catch (const QueryError& e) {
    std::cerr << "query error: " << e.what() << "\n";
    return 3;
  } catch (const IoError& e) {
    std::cerr << "io error: " << e.what() << "\n";
    return 3;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  }
  usage();
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the shared flags (engine_flags.h, position-independent) so each
  // subcommand's own argument parsing never sees them; the TelemetryScope
  // writes the trace/metrics outputs when main returns.
  std::vector<char*> args;
  g_flags = cli::strip_engine_flags(argc, argv, args);
  cli::TelemetryScope telemetry(g_flags);

  // Last-resort guard: nothing escapes as std::terminate — every failure
  // becomes a one-line diagnostic and a nonzero exit.
  try {
    return dispatch(static_cast<int>(args.size()), args.data());
  } catch (const std::exception& e) {
    std::cerr << "internal error: " << e.what() << "\n";
    return 3;
  }
}
