// wfq: a command-line workflow-log query tool over CSV/JSONL logs — the
// "Log Queries" box of the paper's Figure 2 as a utility.
//
// Usage:
//   wfq stats  <log.{csv,jsonl}>
//   wfq query  <log.{csv,jsonl}> '<pattern>'  [--limit N] [--no-optimize]
//   wfq batch  <log> <queries.txt> [--threads N] [--no-cache] [--compare]
//              one query per line, '#' comments; evaluates all queries in
//              one shared pass (core/batch.h)
//   wfq exists <log.{csv,jsonl}> '<pattern>'
//   wfq count  <log.{csv,jsonl}> '<pattern>'
//   wfq explain <log.{csv,jsonl}> '<pattern>'
//   wfq tree   '<pattern>'
//   wfq footprint <log>                  direct-succession matrix
//   wfq discover  <log> [out.dot]        mine a model, print/export DOT
//   wfq audit     <log>                  built-in clinic compliance rules
//   wfq gen    clinic|procurement|random <instances> <seed> <out.{csv,jsonl,xes}>
//
// Logs may be .csv, .jsonl, or .xes (IEEE 1849) — format by extension.
//
// Global telemetry flags (any command, stripped before dispatch):
//   --trace <out.json>     record spans, write Chrome trace_event JSON
//                          (load in chrome://tracing or ui.perfetto.dev);
//                          also enables per-operator-node eval spans
//   --metrics              print Prometheus text exposition on exit
//   --metrics-json <file>  write the metrics snapshot as JSON
//
// Resource-guard flags (query/batch, stripped before dispatch):
//   --deadline-ms N        wall-clock budget per evaluation; on expiry the
//                          incidents found so far are printed with a
//                          "partial result" note (exit stays 0/1)
//   --max-incidents N      stop after emitting ~N incidents (Theorem 1
//                          memory guard); same partial-result semantics
//
// Sharding flag (query/batch/exists/count/repl, stripped before dispatch):
//   --shards N             evaluate over N wid-disjoint shards on a worker
//                          pool (core/shard.h); 0 = hardware concurrency
//                          (default), 1 = serial. Byte-identical results.
//
// Pattern syntax: activity names; operators . (consecutive), -> (sequential),
// | (choice), & (parallel); ! negation; [attr op value] predicates.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "engine_flags.h"

#include "common/error.h"
#include "common/text.h"
#include "core/engine.h"
#include "core/compliance.h"
#include "core/explain.h"
#include "core/printer.h"
#include "log/io_csv.h"
#include "log/io_jsonl.h"
#include "log/io_xes.h"
#include "log/stats.h"
#include "obs/telemetry.h"
#include "workflow/discovery.h"
#include "workflow/dot.h"
#include "workflow/clinic.h"
#include "workflow/workload.h"

namespace {

using namespace wflog;

/// The shared flags (engine_flags.h), stripped in main(); --deadline-ms /
/// --max-incidents fold into every QueryOptions the query/batch commands
/// build via guarded_options().
cli::EngineFlags g_flags;

QueryOptions guarded_options() { return g_flags.query_options(); }

/// One-line note when an evaluation came back flagged partial.
void report_partial(const QueryResult& r) {
  if (r.complete() || !r.ok()) return;
  std::cout << "note: PARTIAL result (" << stop_reason_name(r.stop_reason)
            << " limit hit); incidents shown are a valid subset\n";
}

[[noreturn]] void usage() {
  std::cerr
      << "usage:\n"
         "  wfq stats  <log.{csv,jsonl}>\n"
         "  wfq query  <log> '<pattern>' [--limit N] [--no-optimize]\n"
         "  wfq batch  <log> <queries.txt> [--threads N] [--no-cache] "
         "[--compare]\n"
         "  wfq exists <log> '<pattern>'\n"
         "  wfq count  <log> '<pattern>'\n"
         "  wfq explain <log> '<pattern>'\n"
         "  wfq tree   '<pattern>'\n"
         "  wfq footprint <log>\n"
         "  wfq discover  <log> [out.dot]\n"
         "  wfq audit     <log>\n"
         "  wfq repl      <log>\n"
         "  wfq gen    clinic|procurement|random <instances> <seed> "
         "<out.{csv,jsonl,xes}>\n"
         "global flags (any command): --trace <out.json>  --metrics  "
         "--metrics-json <file>\n"
         "guard flags (query/batch):  --deadline-ms N  --max-incidents N\n"
         "shard flag (evaluating commands): --shards N (0 = hw "
         "concurrency, 1 = serial)\n";
  std::exit(2);
}

using cli::has_suffix;
using cli::load_log;

void save_log(const Log& log, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open '" + path + "' for writing");
  if (has_suffix(path, ".jsonl")) {
    write_jsonl(log, out);
  } else if (has_suffix(path, ".csv")) {
    write_csv(log, out);
  } else if (has_suffix(path, ".xes")) {
    write_xes(log, out);
  } else {
    throw IoError("unknown output format (expect .csv/.jsonl/.xes): " +
                  path);
  }
}

int cmd_stats(const std::string& path) {
  std::cout << compute_stats(load_log(path)).to_string();
  return 0;
}

int cmd_query(const std::string& path, const std::string& pattern,
              std::size_t limit, bool optimize) {
  const Log log = load_log(path);
  QueryOptions opts = guarded_options();
  opts.optimize = optimize;
  QueryEngine engine(log, opts);
  const QueryResult r = engine.run(pattern);
  std::cout << "pattern:   " << to_text(*r.parsed) << "\n";
  if (!r.executed->structurally_equal(*r.parsed)) {
    std::cout << "optimized: " << to_text(*r.executed) << " (est. cost "
              << r.estimated_cost_before << " -> " << r.estimated_cost_after
              << ")\n";
  }
  std::cout << "time: parse " << r.parse_us << " us, optimize "
            << r.optimize_us << " us, eval " << r.eval_us << " us\n"
            << render_incident_set(r.incidents, engine.index(), limit);
  report_partial(r);
  return r.any() ? 0 : 1;
}

int cmd_batch(const std::string& path, const std::string& queries_path,
              std::size_t threads, bool use_cache, bool compare) {
  std::ifstream in(queries_path);
  if (!in) throw IoError("cannot open '" + queries_path + "'");
  std::vector<std::string> texts;
  std::string line;
  while (std::getline(in, line)) {
    const std::string text{trim(line)};
    if (!text.empty() && text[0] != '#') texts.push_back(text);
  }
  if (texts.empty()) throw IoError("no queries in '" + queries_path + "'");

  const Log log = load_log(path);
  QueryEngine engine(log, guarded_options());
  const BatchResult batch = engine.run_batch(texts, threads, use_cache);

  // Failure isolation: a malformed query is an error slot, the rest of the
  // batch still ran. Report errors inline, count them for the exit code.
  std::size_t failed = 0;
  for (std::size_t q = 0; q < texts.size(); ++q) {
    const QueryResult& r = batch.results[q];
    std::cout << "[" << q << "] " << texts[q] << "\n      ";
    if (!r.ok()) {
      ++failed;
      std::cout << "error: " << r.error << "\n";
    } else {
      std::cout << r.total() << " incidents";
      if (!r.complete()) {
        std::cout << " (PARTIAL: " << stop_reason_name(r.stop_reason) << ")";
      }
      std::cout << "\n";
    }
  }
  const BatchPlanStats& plan = batch.stats.plan;
  std::cout << "batch: " << plan.num_queries << " queries, "
            << plan.total_nodes << " pattern nodes -> "
            << plan.distinct_slots << " shared slots ("
            << plan.shared_nodes() << " deduplicated)\n"
            << "cache: " << batch.cache_hits() << " hits, "
            << batch.cache_misses() << " misses, " << batch.cache_bytes()
            << " bytes retained\n"
            << "eval:  " << batch.eval_us << " us on "
            << batch.stats.threads_used << " thread(s)\n";

  if (compare) {
    const auto t0 = std::chrono::steady_clock::now();
    bool identical = true;
    for (std::size_t q = 0; q < texts.size(); ++q) {
      if (!batch.results[q].ok()) continue;  // error slots have no answer
      const QueryResult solo = engine.run(texts[q]);
      identical =
          identical && solo.incidents == batch.results[q].incidents;
    }
    const double solo_us = std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    std::cout << "sequential: " << solo_us << " us ("
              << (batch.eval_us > 0 ? solo_us / batch.eval_us : 0)
              << "x batch eval), results "
              << (identical ? "identical" : "DIFFER!") << "\n";
    if (!identical) return 4;
  }
  return failed != 0 ? 5 : 0;
}

int cmd_exists(const std::string& path, const std::string& pattern) {
  const Log log = load_log(path);
  QueryEngine engine(log, guarded_options());
  const bool found = engine.exists(pattern);
  std::cout << (found ? "yes" : "no") << "\n";
  return found ? 0 : 1;
}

int cmd_count(const std::string& path, const std::string& pattern) {
  const Log log = load_log(path);
  QueryEngine engine(log, guarded_options());
  std::cout << engine.count(pattern) << "\n";
  return 0;
}

int cmd_explain(const std::string& path, const std::string& pattern) {
  const Log log = load_log(path);
  const LogIndex index(log);
  const CostModel model(index);
  std::cout << explain(*parse_pattern(pattern), index, model).to_string();
  return 0;
}

int cmd_tree(const std::string& pattern) {
  std::cout << to_tree_string(*parse_pattern(pattern));
  return 0;
}

int cmd_footprint(const std::string& path) {
  const Log log = load_log(path);
  std::cout << discover_footprint(LogIndex(log)).to_string();
  return 0;
}

int cmd_discover(const std::string& path, const std::string& dot_out) {
  const Log log = load_log(path);
  const WorkflowModel model = discover_model(LogIndex(log));
  const std::string dot = to_dot(model);
  if (dot_out.empty()) {
    std::cout << dot;
  } else {
    std::ofstream out(dot_out);
    if (!out) throw IoError("cannot open '" + dot_out + "' for writing");
    out << dot;
    std::cout << "wrote " << model.num_nodes() << "-node model to "
              << dot_out << "\n";
  }
  return 0;
}

int cmd_audit(const std::string& path) {
  const Log log = load_log(path);
  const LogIndex index(log);
  const ComplianceReport report = check_compliance(
      {
          Rule::init("GetRefer"),
          Rule::exactly("GetRefer", 1),
          Rule::exactly("CheckIn", 1),
          Rule::precedence("CheckIn", "SeeDoctor"),
          Rule::precedence("PayTreatment", "GetReimburse"),
          Rule::not_succession("GetReimburse", "UpdateRefer"),
          Rule::absence("GetReimburse", 2),
      },
      index);
  std::cout << report.to_string();
  return report.compliant() ? 0 : 1;
}

int cmd_repl(const std::string& path) {
  const Log log = load_log(path);
  QueryEngine engine(log, guarded_options());
  std::cout << "loaded " << log.size() << " records, "
            << log.wids().size()
            << " instances. Enter patterns (:q quits, :stats, :explain "
               "<pattern>).\n";
  std::string line;
  while (std::cout << "wfq> " && std::getline(std::cin, line)) {
    const std::string text{trim(line)};
    if (text.empty()) continue;
    if (text == ":q" || text == ":quit") break;
    try {
      if (text == ":stats") {
        std::cout << compute_stats(log).to_string();
        continue;
      }
      if (text.starts_with(":explain ")) {
        const CostModel model(engine.index());
        std::cout << explain(*parse_pattern(text.substr(9)), engine.index(),
                             model)
                         .to_string();
        continue;
      }
      const QueryResult r = engine.run(text);
      std::cout << render_incident_set(r.incidents, engine.index(), 10);
    } catch (const Error& e) {
      std::cout << "error: " << e.what() << "\n";
    }
  }
  return 0;
}

int cmd_gen(const std::string& kind, std::size_t instances,
            std::uint64_t seed, const std::string& out) {
  Log log =
      kind == "clinic"        ? workload::clinic(instances, seed)
      : kind == "procurement" ? workload::procurement(instances, seed)
      : kind == "random"      ? workload::random_process(instances, seed)
                              : throw IoError("unknown generator: " + kind);
  save_log(log, out);
  std::cout << "wrote " << log.size() << " records ("
            << log.wids().size() << " instances) to " << out << "\n";
  return 0;
}

int dispatch(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "stats" && argc == 3) return cmd_stats(argv[2]);
    if (cmd == "query" && argc >= 4) {
      std::size_t limit = 20;
      bool optimize = true;
      for (int i = 4; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--no-optimize") {
          optimize = false;
        } else if (flag == "--limit" && i + 1 < argc) {
          limit = static_cast<std::size_t>(std::atoll(argv[++i]));
        } else {
          usage();
        }
      }
      return cmd_query(argv[2], argv[3], limit, optimize);
    }
    if (cmd == "batch" && argc >= 4) {
      std::size_t threads = 1;
      bool use_cache = true;
      bool compare = false;
      for (int i = 4; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--no-cache") {
          use_cache = false;
        } else if (flag == "--compare") {
          compare = true;
        } else if (flag == "--threads" && i + 1 < argc) {
          threads = static_cast<std::size_t>(std::atoll(argv[++i]));
        } else {
          usage();
        }
      }
      return cmd_batch(argv[2], argv[3], threads, use_cache, compare);
    }
    if (cmd == "exists" && argc == 4) return cmd_exists(argv[2], argv[3]);
    if (cmd == "count" && argc == 4) return cmd_count(argv[2], argv[3]);
    if (cmd == "explain" && argc == 4) return cmd_explain(argv[2], argv[3]);
    if (cmd == "tree" && argc == 3) return cmd_tree(argv[2]);
    if (cmd == "footprint" && argc == 3) return cmd_footprint(argv[2]);
    if (cmd == "discover" && (argc == 3 || argc == 4)) {
      return cmd_discover(argv[2], argc == 4 ? argv[3] : "");
    }
    if (cmd == "audit" && argc == 3) return cmd_audit(argv[2]);
    if (cmd == "repl" && argc == 3) return cmd_repl(argv[2]);
    if (cmd == "gen" && argc == 6) {
      return cmd_gen(argv[2],
                     static_cast<std::size_t>(std::atoll(argv[3])),
                     static_cast<std::uint64_t>(std::atoll(argv[4])),
                     argv[5]);
    }
  } catch (const ParseError& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return 3;
  } catch (const QueryError& e) {
    std::cerr << "query error: " << e.what() << "\n";
    return 3;
  } catch (const IoError& e) {
    std::cerr << "io error: " << e.what() << "\n";
    return 3;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  }
  usage();
}

}  // namespace

int main(int argc, char** argv) {
  // Strip the shared flags (engine_flags.h, position-independent) so each
  // subcommand's own argument parsing never sees them; the TelemetryScope
  // writes the trace/metrics outputs when main returns.
  std::vector<char*> args;
  g_flags = cli::strip_engine_flags(argc, argv, args);
  cli::TelemetryScope telemetry(g_flags);

  // Last-resort guard: nothing escapes as std::terminate — every failure
  // becomes a one-line diagnostic and a nonzero exit.
  try {
    return dispatch(static_cast<int>(args.size()), args.data());
  } catch (const std::exception& e) {
    std::cerr << "internal error: " << e.what() << "\n";
    return 3;
  }
}
