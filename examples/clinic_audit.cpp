// clinic_audit: fraud/anomaly detection over a simulated referral system —
// the application the paper's conclusion speculates about ("detecting
// anomalous or malicious behavior, with applications in fraud detection").
//
// Simulates N referral enactments (some with seeded anomalies), then runs
// an audit battery of incident-pattern queries and prints per-year and
// per-hospital breakdowns.
//
// Run:  ./build/examples/clinic_audit [num_instances] [seed]

#include <cstdlib>
#include <iostream>

#include "core/aggregate.h"
#include "core/compliance.h"
#include "core/engine.h"
#include "core/printer.h"
#include "log/stats.h"
#include "workflow/clinic.h"

int main(int argc, char** argv) {
  using namespace wflog;

  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 500;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 0x5eed;

  ClinicOptions opts;
  opts.fraud_rate = 0.04;
  const Log log = clinic_log(n, seed, opts);

  std::cout << "=== workload ===\n" << compute_stats(log).to_string() << "\n";

  QueryEngine engine(log);

  struct Audit {
    const char* question;
    const char* pattern;
  };
  const Audit audits[] = {
      {"Referral updated AFTER reimbursement (fraud signature)",
       "GetReimburse -> UpdateRefer"},
      {"Reimbursed twice on one referral",
       "GetReimburse -> GetReimburse"},
      {"Update immediately before reimbursement (suspicious timing)",
       "UpdateRefer . GetReimburse"},
      {"Treatment taken without a prior payment in between",
       "SeeDoctor . TakeTreatment"},
      {"Referral terminated after money was reimbursed",
       "GetReimburse -> TerminateRefer"},
      {"High-budget referral that was still topped up",
       "GetRefer[out.balance >= 5000] -> UpdateRefer"},
      {"Completed without ever seeing a doctor (control query)",
       "CheckIn . GetReimburse"},
  };

  std::cout << "=== audit battery ===\n";
  for (const Audit& a : audits) {
    const QueryResult r = engine.run(a.pattern);
    std::cout << a.question << "\n  pattern: " << a.pattern << "\n  hits: "
              << r.total() << " incident(s) in "
              << instances_with_match(r.incidents) << " instance(s), "
              << r.eval_us << " us\n";
    // Show up to three offenders for the analyst.
    std::size_t shown = 0;
    for (const auto& group : r.incidents.groups()) {
      for (const Incident& o : group.incidents) {
        if (shown == 3) break;
        std::cout << "    " << render_incident(o, engine.index()) << "\n";
        ++shown;
      }
      if (shown == 3) break;
    }
  }

  // Year-over-year view of the headline anomaly.
  const QueryResult fraud = engine.run("GetReimburse -> UpdateRefer");
  const auto by_year = group_by_attribute(
      fraud.incidents, engine.index(),
      GroupKey{"GetRefer", MapSel::kOut, "year"});
  std::cout << "\n=== update-after-reimburse anomalies by referral year ===\n"
            << render_groups(by_year);

  const auto by_hospital = group_by_attribute(
      fraud.incidents, engine.index(),
      GroupKey{"GetRefer", MapSel::kOut, "hospital"});
  std::cout << "\n=== ... by hospital ===\n" << render_groups(by_hospital);

  // Declarative compliance pass over the same log (core/compliance.h):
  // the business principles of Example 2 as rule templates.
  const ComplianceReport compliance = check_compliance(
      {
          Rule::init("GetRefer"),
          Rule::exactly("GetRefer", 1),
          Rule::exactly("CheckIn", 1),
          Rule::chain_precedence("GetRefer", "CheckIn"),
          Rule::precedence("CheckIn", "SeeDoctor"),
          Rule::precedence("PayTreatment", "GetReimburse"),
          Rule::not_succession("GetReimburse", "UpdateRefer"),
          Rule::absence("GetReimburse", 2),
          Rule::response("GetRefer", "GetReimburse"),
      },
      engine.index());
  std::cout << "\n=== compliance report ===\n" << compliance.to_string();

  return compliance.compliant() ? 0 : 1;
}
