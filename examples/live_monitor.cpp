// live_monitor: continuous compliance monitoring of a running workflow
// system — the runtime-analysis scenario the paper contrasts with offline
// warehousing ("it is not efficient to do runtime execution monitoring ...
// over a data warehousing approach", §5).
//
// A clinic simulation streams its events through a LogMonitor carrying
// compliance patterns; violations are flagged the instant the completing
// record arrives, with the offending records attached. At the end the demo
// cross-checks the stream results against batch evaluation of the full log.
//
// Run:  ./build/examples/live_monitor [instances] [seed]

#include <cstdlib>
#include <iostream>
#include <map>

#include "core/engine.h"
#include "core/monitor.h"
#include "core/printer.h"
#include "workflow/clinic.h"

int main(int argc, char** argv) {
  using namespace wflog;

  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 120;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 0xFEED;

  // Compliance rules to watch, with analyst-facing descriptions.
  struct Rule {
    const char* description;
    const char* pattern;
  };
  const Rule rules[] = {
      {"ALERT referral updated after reimbursement",
       "GetReimburse -> UpdateRefer"},
      {"ALERT double reimbursement", "GetReimburse -> GetReimburse"},
      {"WARN  update immediately before reimbursement",
       "UpdateRefer . GetReimburse"},
  };

  LogMonitor monitor;
  std::vector<LogMonitor::QueryId> ids;
  for (const Rule& r : rules) ids.push_back(monitor.add_query(r.pattern));

  // Generate a clinic log offline, then replay it through the monitor as a
  // faithful stand-in for a live engine feed.
  ClinicOptions opts;
  opts.fraud_rate = 0.08;
  const Log feed = clinic_log(n, seed, opts);

  std::map<Wid, Wid> wid_map;  // feed wid -> monitor wid
  std::size_t alerts = 0;
  for (const LogRecord& l : feed) {
    if (l.activity == feed.start_symbol()) {
      wid_map[l.wid] = monitor.begin_instance();
      continue;
    }
    const Wid mw = wid_map.at(l.wid);
    if (l.activity == feed.end_symbol()) {
      monitor.end_instance(mw);
    } else {
      NamedAttrs in;
      for (const AttrEntry& e : l.in) {
        in.emplace_back(feed.interner().name(e.attr), e.value);
      }
      NamedAttrs out;
      for (const AttrEntry& e : l.out) {
        out.emplace_back(feed.interner().name(e.attr), e.value);
      }
      monitor.record(mw, feed.activity_name(l.activity), in, out);
    }
    // React to fresh matches immediately — this is the monitoring loop.
    for (const LogMonitor::Match& m : monitor.drain()) {
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (ids[i] == m.query) {
          std::cout << "[after record " << monitor.num_records() << "] "
                    << rules[i].description << ": "
                    << m.incident.to_string() << "\n";
          ++alerts;
        }
      }
    }
  }

  std::cout << "\nprocessed " << monitor.num_records() << " records, "
            << alerts << " alert(s)\n";

  // Verification: stream results must equal batch evaluation.
  const Log snapshot = monitor.snapshot();
  QueryOptions qopts;
  qopts.optimize = false;
  QueryEngine engine(snapshot, qopts);
  bool consistent = true;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::size_t batch = engine.run(rules[i].pattern).total();
    const std::size_t streamed = monitor.total_matches(ids[i]);
    std::cout << "rule '" << rules[i].pattern << "': streamed " << streamed
              << ", batch " << batch
              << (streamed == batch ? " (consistent)" : " (MISMATCH)")
              << "\n";
    consistent = consistent && streamed == batch;
  }
  return consistent ? 0 : 1;
}
