// procurement_audit: internal-controls testing for a procure-to-pay
// process — the second domain workload. Where clinic_audit is about
// sequential anomalies, this one leans on the parallel operator ⊕: goods
// receipt and invoice receipt run concurrently, and the three-way match
// must only happen after both. Classic P2P control violations (maverick
// payment, duplicate payment, pay-before-match) are hunted with incident
// patterns and cross-checked with the compliance rule templates.
//
// Run:  ./build/examples/procurement_audit [instances] [seed]

#include <cstdlib>
#include <iostream>

#include "core/aggregate.h"
#include "core/compliance.h"
#include "core/engine.h"
#include "core/printer.h"
#include "log/stats.h"
#include "workflow/dot.h"
#include "workflow/procurement.h"

int main(int argc, char** argv) {
  using namespace wflog;

  const std::size_t n =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 400;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 0xBEEF;

  const Log log = procurement_log(n, seed);
  std::cout << "=== procure-to-pay workload ===\n"
            << compute_stats(log).to_string() << "\n";

  QueryEngine engine(log);

  // Concurrency checks with the parallel operator.
  std::cout << "=== concurrency (the ⊕ operator at work) ===\n";
  std::cout << "goods & invoice handled concurrently in "
            << instances_with_match(
                   engine.run("ReceiveGoods & ReceiveInvoice").incidents)
            << " instance(s)\n";
  std::cout << "goods arrived before invoice in "
            << instances_with_match(
                   engine.run("ReceiveGoods -> ReceiveInvoice").incidents)
            << ", invoice first in "
            << instances_with_match(
                   engine.run("ReceiveInvoice -> ReceiveGoods").incidents)
            << "\n\n";

  struct Control {
    const char* name;
    const char* pattern;
  };
  const Control controls[] = {
      {"maverick payment (no approval, straight from match)",
       "MatchThreeWay . Pay"},
      {"duplicate payment", "Pay . Pay"},
      {"payment before any match", "Pay -> MatchThreeWay"},
      {"dispute settled and re-matched", "Dispute -> MatchThreeWay"},
      {"large PO disputed", "CreatePO[out.poAmount > 7500] -> Dispute"},
  };
  std::cout << "=== control battery (incident patterns) ===\n";
  for (const Control& c : controls) {
    const QueryResult r = engine.run(c.pattern);
    std::cout << c.name << ": " << r.total() << " incident(s) in "
              << instances_with_match(r.incidents) << " instance(s)\n";
  }

  // Vendor breakdown of maverick payments.
  const QueryResult maverick = engine.run("MatchThreeWay . Pay");
  const auto by_vendor = group_by_attribute(
      maverick.incidents, engine.index(),
      GroupKey{"CreatePO", MapSel::kOut, "vendor"});
  std::cout << "\n=== maverick payments by vendor ===\n"
            << render_groups(by_vendor);

  // Declarative control set.
  const LogIndex& index = engine.index();
  const ComplianceReport report = check_compliance(
      {
          Rule::init("CreatePO"),
          Rule::exactly("CreatePO", 1),
          Rule::precedence("ApprovePO", "ReceiveGoods"),
          Rule::precedence("ApprovePO", "ReceiveInvoice"),
          Rule::precedence("ReceiveGoods", "MatchThreeWay"),
          Rule::precedence("ReceiveInvoice", "MatchThreeWay"),
          Rule::precedence("ApprovePayment", "Pay"),
          Rule::absence("Pay", 2),
          Rule::response("Dispute", "MatchThreeWay"),
      },
      index);
  std::cout << "\n=== compliance report ===\n" << report.to_string();

  // Render the underlying process for documentation.
  std::cout << "\n(model DOT available via: wfq discover <log>; "
            << procurement_model().num_nodes()
            << "-node reference model built in-process)\n";

  return report.compliant() ? 0 : 1;
}
