// The v2 segment format suite: DEFLATE codec properties, block/footer
// framing, torn-vs-corrupt classification, sealed-reopen fast path,
// compaction, and the zone-map pruning soundness harness (random logs x
// random patterns, pruned vs unpruned incident sets must be identical).

#include "log/segfmt.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#if WFLOG_HAVE_ZLIB
#include <zlib.h>
#endif

#include "common/error.h"
#include "core/engine.h"
#include "core/parser.h"
#include "core/pattern.h"
#include "log/compress.h"
#include "log/io_jsonl.h"
#include "log/store.h"
#include "log/validate.h"
#include "log/zonemap.h"
#include "obs/telemetry.h"

namespace wflog {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

void write_file(const fs::path& path, std::string_view data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

/// Deterministic xorshift64* — test-local randomness, stable across runs.
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed * 2685821657736338717ULL + 1) {}
  std::uint64_t next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 2685821657736338717ULL;
  }
  std::size_t below(std::size_t n) { return next() % n; }
};

// ----- codec ---------------------------------------------------------------

TEST(Compress, RoundTripsRepresentativePayloads) {
  Rng rng(7);
  std::vector<std::string> payloads;
  payloads.emplace_back();                    // empty
  payloads.emplace_back("x");                 // single byte
  payloads.emplace_back(100'000, 'a');        // long run
  {
    std::string jsonl;                        // realistic store lines
    for (int i = 0; i < 500; ++i) {
      jsonl += "{\"lsn\":" + std::to_string(i + 1) +
               ",\"wid\":" + std::to_string(i % 7 + 1) +
               ",\"activity\":\"CheckIn\",\"in\":{},\"out\":{}}\n";
    }
    payloads.push_back(std::move(jsonl));
  }
  {
    std::string random(70'000, '\0');         // incompressible
    for (char& c : random) c = static_cast<char>(rng.next() & 0xff);
    payloads.push_back(std::move(random));
  }
  for (const std::string& p : payloads) {
    const std::string packed = deflate_compress(p);
    EXPECT_EQ(deflate_decompress(packed, p.size()), p);
  }
}

TEST(Compress, CompressesRedundantText) {
  std::string jsonl;
  for (int i = 0; i < 1000; ++i) {
    jsonl += "{\"activity\":\"GetReimburse\",\"in\":{},\"out\":{}}\n";
  }
  const std::string packed = deflate_compress(jsonl);
  EXPECT_LT(packed.size(), jsonl.size() / 5);  // highly repetitive input
}

TEST(Compress, RejectsTruncationCorruptionAndSizeLies) {
  const std::string original(4096, 'z');
  const std::string packed = deflate_compress(original);
  // Truncation at every prefix must error, never return wrong data.
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, packed.size() / 2,
                          packed.size() - 1}) {
    EXPECT_THROW(deflate_decompress(packed.substr(0, cut), original.size()),
                 InflateError)
        << "cut at " << cut;
  }
  // Declared-size mismatch in both directions.
  EXPECT_THROW(deflate_decompress(packed, original.size() - 1), InflateError);
  EXPECT_THROW(deflate_decompress(packed, original.size() + 1), InflateError);
  // Trailing garbage after the final block.
  EXPECT_THROW(deflate_decompress(packed + "junk", original.size()),
               InflateError);
}

#if WFLOG_HAVE_ZLIB
TEST(Compress, CrossValidatesAgainstZlib) {
  Rng rng(99);
  std::vector<std::string> payloads;
  {
    std::string jsonl;
    for (int i = 0; i < 800; ++i) {
      jsonl += "{\"lsn\":" + std::to_string(i) +
               ",\"activity\":\"SeeDoctor\",\"in\":{},\"out\":{}}\n";
    }
    payloads.push_back(std::move(jsonl));
  }
  {
    std::string random(50'000, '\0');
    for (char& c : random) c = static_cast<char>(rng.next() & 0xff);
    payloads.push_back(std::move(random));
  }
  payloads.emplace_back();  // empty stream

  for (const std::string& original : payloads) {
    // Ours -> zlib: our streams are conforming raw-deflate.
    {
      const std::string packed = deflate_compress(original);
      z_stream zs{};
      ASSERT_EQ(inflateInit2(&zs, -15), Z_OK);  // -15: raw, no zlib header
      std::string out(original.size() + 64, '\0');
      zs.next_in =
          reinterpret_cast<Bytef*>(const_cast<char*>(packed.data()));
      zs.avail_in = static_cast<uInt>(packed.size());
      zs.next_out = reinterpret_cast<Bytef*>(out.data());
      zs.avail_out = static_cast<uInt>(out.size());
      const int rc = inflate(&zs, Z_FINISH);
      EXPECT_EQ(rc, Z_STREAM_END);
      out.resize(zs.total_out);
      inflateEnd(&zs);
      EXPECT_EQ(out, original);
    }
    // zlib -> ours: our inflater accepts any conforming raw stream within
    // its declared subset (stored + fixed-Huffman blocks; dynamic-Huffman
    // is rejected loudly, never misdecoded). Z_FIXED forces zlib to emit
    // fixed-Huffman codes with full LZ77 matching — far richer
    // match/length streams than our own writer produces — and level 0
    // exercises the stored-block path.
    for (const auto& [level, strategy] :
         {std::pair{Z_BEST_COMPRESSION, Z_FIXED},
          std::pair{Z_NO_COMPRESSION, Z_DEFAULT_STRATEGY}}) {
      z_stream zs{};
      ASSERT_EQ(deflateInit2(&zs, level, Z_DEFLATED, -15, 8, strategy),
                Z_OK);
      std::string packed(deflateBound(&zs, original.size()), '\0');
      zs.next_in =
          reinterpret_cast<Bytef*>(const_cast<char*>(original.data()));
      zs.avail_in = static_cast<uInt>(original.size());
      zs.next_out = reinterpret_cast<Bytef*>(packed.data());
      zs.avail_out = static_cast<uInt>(packed.size());
      ASSERT_EQ(deflate(&zs, Z_FINISH), Z_STREAM_END);
      packed.resize(zs.total_out);
      deflateEnd(&zs);
      EXPECT_EQ(deflate_decompress(packed, original.size()), original);
    }
  }
}
#endif  // WFLOG_HAVE_ZLIB

// ----- zone maps -----------------------------------------------------------

TEST(ZoneMap, BloomNeverFalseNegative) {
  ActivityBloom bloom = ActivityBloom::sized_for(16);
  const std::vector<std::string> in = {"CheckIn", "SeeDoctor", "Pay", "END"};
  for (const std::string& a : in) bloom.add(a);
  for (const std::string& a : in) EXPECT_TRUE(bloom.may_contain(a));
  // Round-trip through serialized words preserves answers.
  ActivityBloom copy = ActivityBloom::from_words(bloom.words());
  for (const std::string& a : in) EXPECT_TRUE(copy.may_contain(a));
  // Not everything passes (sanity that bits are actually selective).
  std::size_t admitted = 0;
  for (int i = 0; i < 200; ++i) {
    if (bloom.may_contain("absent-" + std::to_string(i))) ++admitted;
  }
  EXPECT_LT(admitted, 40u);
}

TEST(ZoneMap, WidIntervalsSetAlgebra) {
  WidIntervals a;
  a.add(5, 9);
  a.add(1, 2);
  a.add(8, 12);  // overlaps [5,9]
  a.add(3, 3);   // adjacent to [1,2]
  a.normalize();
  ASSERT_EQ(a.intervals().size(), 2u);  // [1,3] [5,12]
  EXPECT_TRUE(a.contains(1) && a.contains(3) && a.contains(7) &&
              a.contains(12));
  EXPECT_FALSE(a.contains(4));
  EXPECT_TRUE(a.overlaps(4, 5));
  EXPECT_FALSE(a.overlaps(4, 4));

  WidIntervals b;
  b.add(3, 6);
  b.normalize();
  const WidIntervals both = WidIntervals::intersect(a, b);
  ASSERT_EQ(both.intervals().size(), 2u);  // [3,3] [5,6]
  EXPECT_TRUE(both.contains(3) && both.contains(5) && both.contains(6));
  EXPECT_FALSE(both.contains(4));

  const WidIntervals either = WidIntervals::unite(a, b);
  ASSERT_EQ(either.intervals().size(), 1u);  // [1,12]
  EXPECT_TRUE(either.contains(4));
}

TEST(ZoneMap, FooterEncodeDecodeRoundTrip) {
  SegmentFooter footer;
  for (int i = 0; i < 3; ++i) {
    BlockZone z;
    z.file_offset = 8 + static_cast<std::uint64_t>(i) * 100;
    z.compressed_size = 64 + static_cast<std::uint32_t>(i);
    z.uncompressed_size = 256;
    z.codec = 1;
    z.record_count = 10;
    z.wid_min = static_cast<std::uint64_t>(i) * 5 + 1;
    z.wid_max = z.wid_min + 4;
    z.lsn_min = static_cast<std::uint64_t>(i) * 10 + 1;
    z.lsn_max = z.lsn_min + 9;
    z.payload_crc = 0xdeadbeef;
    z.bloom.add("activity-" + std::to_string(i));
    footer.blocks.push_back(std::move(z));
  }
  footer.next_is_lsn = {{1, 4}, {2, 0}, {9, 7}};
  footer.record_count = 30;

  const SegmentFooter decoded = SegmentFooter::decode(footer.encode());
  EXPECT_EQ(decoded.record_count, 30u);
  EXPECT_EQ(decoded.next_is_lsn, footer.next_is_lsn);
  ASSERT_EQ(decoded.blocks.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded.blocks[i].file_offset, footer.blocks[i].file_offset);
    EXPECT_EQ(decoded.blocks[i].payload_crc, footer.blocks[i].payload_crc);
    EXPECT_TRUE(decoded.blocks[i].bloom.may_contain(
        "activity-" + std::to_string(i)));
  }
  // Structural damage is rejected, not misparsed.
  const std::string body = footer.encode();
  EXPECT_THROW(SegmentFooter::decode(body.substr(0, body.size() - 3)),
               IoError);
  EXPECT_THROW(SegmentFooter::decode(body + "x"), IoError);
}

// ----- block framing + scan classification ---------------------------------

namespace {

/// A block of `n` synthetic records starting at (wid, lsn) — activity
/// names cycle through `acts`.
EncodedBlock make_block(std::uint64_t file_offset, std::uint64_t wid,
                        std::uint64_t lsn0, int n,
                        const std::vector<std::string>& acts) {
  BlockBuilder builder;
  Interner interner;
  for (int i = 0; i < n; ++i) {
    LogRecord l;
    l.lsn = lsn0 + static_cast<std::uint64_t>(i);
    l.wid = wid;
    l.is_lsn = static_cast<IsLsn>(i + 1);
    const std::string& act = acts[static_cast<std::size_t>(i) % acts.size()];
    l.activity = interner.intern(act);
    const std::string line = to_store_line(l, interner);
    builder.add(l, act, std::string_view(line).substr(0, line.size() - 1));
  }
  return builder.encode(file_offset);
}

}  // namespace

TEST(SegScan, CleanFileRoundTrips) {
  std::string file{kSegV2FileMagic};
  const EncodedBlock b1 =
      make_block(file.size(), 1, 1, 20, {"START", "a", "b", "END"});
  file += b1.bytes;
  const EncodedBlock b2 = make_block(file.size(), 2, 21, 5, {"START", "c"});
  file += b2.bytes;

  const BlockScan scan = scan_v2_blocks(file);
  EXPECT_FALSE(scan.torn);
  EXPECT_TRUE(scan.corrupt_reason.empty());
  EXPECT_EQ(scan.good_bytes, file.size());
  ASSERT_EQ(scan.zones.size(), 2u);
  EXPECT_EQ(scan.zones[0].record_count, 20u);
  EXPECT_EQ(scan.zones[0].wid_min, 1u);
  EXPECT_EQ(scan.zones[1].wid_max, 2u);
  EXPECT_TRUE(scan.zones[0].bloom.may_contain("a"));
  EXPECT_FALSE(scan.zones[1].bloom.may_contain("a"));

  // read_v2_block_payload agrees with the scan's payloads.
  EXPECT_EQ(read_v2_block_payload(file, scan.zones[0]), scan.payloads[0]);
  EXPECT_EQ(read_v2_block_payload(file, scan.zones[1]), scan.payloads[1]);
}

TEST(SegScan, ClassifiesTearingVsCorruption) {
  std::string file{kSegV2FileMagic};
  const EncodedBlock b1 = make_block(file.size(), 1, 1, 8, {"START", "a"});
  file += b1.bytes;
  const std::size_t clean = file.size();

  // (1) A few garbage bytes (< header size): always a tear.
  {
    BlockScan s = scan_v2_blocks(file + "abc");
    EXPECT_TRUE(s.torn);
    EXPECT_TRUE(s.corrupt_reason.empty());
    EXPECT_EQ(s.good_bytes, clean);
  }
  // (2) A full-length garbage region that fingerprints as neither a block
  // header nor this segment's footer: corruption (silent truncation here
  // would drop acknowledged data).
  {
    BlockScan s = scan_v2_blocks(file + std::string(64, '\xaa'));
    EXPECT_FALSE(s.torn);
    EXPECT_FALSE(s.corrupt_reason.empty());
    EXPECT_EQ(s.good_bytes, clean);
  }
  // (3) A valid header whose payload was cut: a tear.
  {
    const EncodedBlock b2 = make_block(clean, 2, 9, 8, {"START", "b"});
    const std::string torn =
        file + b2.bytes.substr(0, kSegV2BlockHeaderSize + 3);
    BlockScan s = scan_v2_blocks(torn);
    EXPECT_TRUE(s.torn);
    EXPECT_TRUE(s.corrupt_reason.empty());
    EXPECT_EQ(s.good_bytes, clean);
  }
  // (4) A torn FOOTER — starts with this segment's record/zone counts —
  // is a tear (crash mid-seal), even at >= header size.
  {
    SegmentFooter footer;
    footer.blocks.push_back(b1.zone);
    footer.record_count = 8;
    const std::string encoded = encode_v2_footer(footer);
    BlockScan s = scan_v2_blocks(file + encoded.substr(0, 40));
    EXPECT_TRUE(s.torn);
    EXPECT_TRUE(s.corrupt_reason.empty());
    EXPECT_EQ(s.good_bytes, clean);
  }
  // (5) A complete block whose payload was bit-flipped: corruption.
  {
    std::string flipped = file;
    flipped[flipped.size() - 3] ^= 0x40;
    BlockScan s = scan_v2_blocks(flipped);
    EXPECT_FALSE(s.torn);
    EXPECT_FALSE(s.corrupt_reason.empty());
    EXPECT_EQ(s.good_bytes, kSegV2FileMagic.size());
  }
  // (6) A complete, sealed file parses via the footer fast path and the
  // footer tiles exactly.
  {
    SegmentFooter footer;
    footer.blocks.push_back(b1.zone);
    footer.record_count = 8;
    footer.next_is_lsn = {{1, 9}};
    const std::string sealed = file + encode_v2_footer(footer);
    const auto fr = try_read_v2_footer(sealed);
    ASSERT_TRUE(fr.has_value());
    EXPECT_EQ(fr->footer.record_count, 8u);
    EXPECT_EQ(fr->footer_start, clean);
    // A flipped footer byte fails the footer CRC -> no fast path.
    std::string bad = sealed;
    bad[clean + 2] ^= 1;
    EXPECT_FALSE(try_read_v2_footer(bad).has_value());
  }
}

// ----- store-level v2 behavior --------------------------------------------

class SegStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("wflog-segfmt-test-" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static LogStore::Options fast_options() {
    LogStore::Options options;
    options.fsync_policy = FsyncPolicy::kOff;  // keep the suite quick
    return options;
  }

  fs::path dir_;
};

TEST_F(SegStoreTest, V2SegmentsRollSealAndReload) {
  LogStore::Options options = fast_options();
  options.records_per_segment = 5;
  {
    LogStore store = LogStore::create(dir_, options);
    const Wid w = store.begin_instance();
    for (int i = 0; i < 12; ++i) store.record(w, "a");
    EXPECT_EQ(store.num_records(), 13u);
    EXPECT_EQ(store.num_segments(), 3u);
    EXPECT_EQ(store.load().size(), 13u);  // includes the pending buffer
  }
  std::size_t wfseg = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".wfseg") ++wfseg;
  }
  EXPECT_EQ(wfseg, 3u);
  // Rolled-over segments are sealed: their footers parse standalone.
  EXPECT_TRUE(
      try_read_v2_footer(read_file(dir_ / "seg-000001.wfseg")).has_value());
  EXPECT_TRUE(
      try_read_v2_footer(read_file(dir_ / "seg-000002.wfseg")).has_value());

  LogStore reopened = LogStore::open(dir_, fast_options());
  EXPECT_EQ(reopened.num_records(), 13u);
  const Log log = reopened.load();
  EXPECT_EQ(log.size(), 13u);
  const std::vector<LogRecord> records(log.begin(), log.end());
  EXPECT_TRUE(check_well_formed(records, log.interner()).empty());
  // Appends resume against the recovered instance state.
  reopened.record(1, "b");
  reopened.end_instance(1);
  EXPECT_EQ(reopened.load().size(), 15u);
}

TEST_F(SegStoreTest, SealedReopenSkipsBlockScan) {
  LogStore::Options options = fast_options();
  options.records_per_segment = 4;
  {
    LogStore store = LogStore::create(dir_, options);
    const Wid w = store.begin_instance();
    for (int i = 0; i < 11; ++i) store.record(w, "a");  // 3 segments
  }
  obs::Telemetry t;
  obs::ScopedTelemetry scope(t);
  LogStore store = LogStore::open(dir_, fast_options());
  // Two sealed segments took the footer fast path; zero blocks inflated.
  EXPECT_EQ(t.store_sealed_reopen_skips_total->value(), 2u);
  EXPECT_EQ(t.store_blocks_read_total->value(), 0u);
  EXPECT_EQ(store.num_records(), 12u);
  // Payload CRCs still guard the actual reads.
  EXPECT_EQ(store.load().size(), 12u);
  EXPECT_GT(t.store_blocks_read_total->value(), 0u);
}

TEST_F(SegStoreTest, TornV2TailTruncatedOnOpen) {
  LogStore::Options options = fast_options();
  options.block_target_bytes = 1;  // one block per record
  fs::path tail;
  {
    LogStore store = LogStore::create(dir_, options);
    const Wid w = store.begin_instance();
    for (const char* a : {"a", "b", "c", "d"}) store.record(w, a);
    tail = dir_ / "seg-000001.wfseg";
  }
  const std::uintmax_t full = fs::file_size(tail);
  fs::resize_file(tail, full - 7);  // cut into the final block

  LogStore store = LogStore::open(dir_, fast_options());
  EXPECT_EQ(store.num_records(), 4u);  // START a b c — torn "d" dropped
  EXPECT_TRUE(store.recovery_report().torn_tail_truncated);
  EXPECT_LT(fs::file_size(tail), full - 7);  // torn bytes physically gone
  // Appends resume exactly where the durable prefix stopped.
  store.record(1, "d2");
  store.end_instance(1);
  const Log log = store.load();
  EXPECT_EQ(log.size(), 6u);
  const std::vector<LogRecord> records(log.begin(), log.end());
  EXPECT_TRUE(check_well_formed(records, log.interner()).empty());
}

TEST_F(SegStoreTest, TornFooterRecoveredBlockByBlock) {
  LogStore::Options options = fast_options();
  options.block_target_bytes = 1;
  fs::path tail;
  {
    LogStore store = LogStore::create(dir_, options);
    const Wid w = store.begin_instance();
    for (const char* a : {"a", "b"}) store.record(w, a);
    tail = dir_ / "seg-000001.wfseg";
  }
  // Simulate a crash mid-seal: append a PREFIX of a real footer.
  {
    const std::string data = read_file(tail);
    const BlockScan scan = scan_v2_blocks(data);
    ASSERT_FALSE(scan.torn);
    SegmentFooter footer;
    footer.blocks = scan.zones;
    footer.record_count = 3;
    footer.next_is_lsn = {{1, 4}};
    const std::string encoded = encode_v2_footer(footer);
    write_file(tail, data + encoded.substr(0, encoded.size() / 2));
  }
  obs::Telemetry t;
  obs::ScopedTelemetry scope(t);
  LogStore store = LogStore::open(dir_, fast_options());
  EXPECT_EQ(store.num_records(), 3u);  // every block survived
  EXPECT_TRUE(store.recovery_report().torn_tail_truncated);
  EXPECT_GT(t.store_footer_recoveries_total->value(), 0u);
  store.record(1, "c");
  EXPECT_EQ(store.load().size(), 4u);
}

TEST_F(SegStoreTest, GarbageTailIsCorruptionNotTearing) {
  LogStore::Options options = fast_options();
  {
    LogStore store = LogStore::create(dir_, options);
    const Wid w = store.begin_instance();
    store.record(w, "a");
    store.sync();
  }
  const fs::path tail = dir_ / "seg-000001.wfseg";
  // 64 bytes that are neither a block header nor this segment's footer:
  // open must refuse (truncating here could hide real corruption) ...
  write_file(tail, read_file(tail) + std::string(64, '\xcc'));
  EXPECT_THROW(LogStore::open(dir_, fast_options()), IoError);
  // ... unless quarantine recovery is asked for, which keeps the prefix.
  LogStore::Options recover = fast_options();
  recover.quarantine_corruption = true;
  RecoveryReport report;
  LogStore store = LogStore::open(dir_, recover, &report);
  EXPECT_EQ(store.num_records(), 2u);
  EXPECT_GT(report.bytes_quarantined, 0u);
  store.record(1, "b");
  EXPECT_EQ(store.load().size(), 3u);
}

TEST_F(SegStoreTest, CorruptSealedBlockDetectedAtReadTime) {
  LogStore::Options options = fast_options();
  options.records_per_segment = 3;
  {
    LogStore store = LogStore::create(dir_, options);
    const Wid w = store.begin_instance();
    for (int i = 0; i < 5; ++i) store.record(w, "a");  // seg 1 sealed
  }
  // Flip a payload byte inside the sealed first segment. The footer fast
  // path (by design) does not re-CRC payloads, so open succeeds ...
  const fs::path seg = dir_ / "seg-000001.wfseg";
  std::string data = read_file(seg);
  data[kSegV2FileMagic.size() + kSegV2BlockHeaderSize + 2] ^= 0x10;
  write_file(seg, data);
  LogStore store = LogStore::open(dir_, fast_options());
  // ... and the per-block CRC catches the damage on first read.
  EXPECT_THROW(store.load(), IoError);
}

TEST_F(SegStoreTest, CompactionRewritesV1HistoryIntoSealedV2) {
  LogStore::Options v1 = fast_options();
  v1.segment_format = SegmentFormat::kV1Jsonl;
  v1.records_per_segment = 16;
  {
    LogStore store = LogStore::create(dir_, v1);
    for (int w = 0; w < 30; ++w) {
      const Wid wid = store.begin_instance();
      store.record(wid, "CheckIn");
      store.record(wid, "SeeDoctor", {{"fee", Value{std::int64_t{40}}}});
      store.end_instance(wid);
    }
  }
  // A stray file from a hypothetical crashed roll: vacuumed by compaction.
  write_file(dir_ / "seg-009999.jsonl", "orphan\n");

  const Log before = LogStore::open(dir_, fast_options()).load();
  const LogStore::CompactionReport report = LogStore::compact(dir_);
  EXPECT_EQ(report.records, before.size());
  EXPECT_GT(report.blocks_written, 0u);
  EXPECT_LT(report.bytes_after, report.bytes_before);
  EXPECT_FALSE(fs::exists(dir_ / "seg-009999.jsonl"));

  // Every live segment is now sealed v2; the log is unchanged.
  LogStore store = LogStore::open(dir_, fast_options());
  const LogStore::StorageStats stats = store.storage_stats();
  EXPECT_EQ(stats.segments_v1, 0u);
  EXPECT_GT(stats.segments_v2, 0u);
  EXPECT_GT(stats.sealed_blocks, 0u);
  EXPECT_LT(stats.compressed_payload_bytes, stats.uncompressed_payload_bytes);
  const Log after = store.load();
  ASSERT_EQ(after.size(), before.size());
  for (Lsn n = 1; n <= after.size(); ++n) {
    EXPECT_EQ(after.activity_name(after.record(n).activity),
              before.activity_name(before.record(n).activity));
    EXPECT_EQ(after.record(n).wid, before.record(n).wid);
    EXPECT_EQ(after.record(n).is_lsn, before.record(n).is_lsn);
  }
  // Idempotent: compacting a compacted store keeps the same records.
  const LogStore::CompactionReport again = LogStore::compact(dir_);
  EXPECT_EQ(again.records, before.size());
  EXPECT_EQ(LogStore::open(dir_, fast_options()).load().size(),
            before.size());
  // The compacted store keeps accepting appends.
  LogStore writable = LogStore::open(dir_, fast_options());
  const Wid w = writable.begin_instance();
  writable.record(w, "after-compaction");
  writable.end_instance(w);
  EXPECT_EQ(writable.load().size(), before.size() + 3);
}

TEST_F(SegStoreTest, CompactionOfEmptyStoreIsANoOp) {
  { LogStore store = LogStore::create(dir_, fast_options()); }
  const LogStore::CompactionReport report = LogStore::compact(dir_);
  EXPECT_EQ(report.records, 0u);
  LogStore store = LogStore::open(dir_, fast_options());
  EXPECT_EQ(store.num_records(), 0u);
  const Wid w = store.begin_instance();
  store.end_instance(w);
  EXPECT_EQ(store.load().size(), 2u);
}

// ----- zone-map pruning: soundness -----------------------------------------

namespace {

/// Store shaped to produce many small sealed blocks so pruning has real
/// decisions to make.
LogStore::Options pruning_options() {
  LogStore::Options options;
  options.fsync_policy = FsyncPolicy::kOff;
  options.records_per_segment = 16;
  options.block_target_bytes = 192;  // a handful of records per block
  return options;
}

const std::vector<std::string> kAlphabet = {"Alpha", "Bravo", "Charlie",
                                            "Delta", "Echo",  "Foxtrot",
                                            "Golf",  "Hotel"};

/// Writes a random log: `instances` workflows, each 1..6 records over a
/// per-instance 3-activity sub-alphabet (so blocks get selective blooms),
/// ~1 in 5 instances left open.
void fill_random(LogStore& store, Rng& rng, std::size_t instances) {
  for (std::size_t i = 0; i < instances; ++i) {
    const Wid w = store.begin_instance();
    const std::size_t base = rng.below(kAlphabet.size());
    const std::size_t len = 1 + rng.below(6);
    for (std::size_t r = 0; r < len; ++r) {
      store.record(w, kAlphabet[(base + rng.below(3)) % kAlphabet.size()]);
    }
    if (rng.below(5) != 0) store.end_instance(w);
  }
}

const std::vector<std::string> kPatterns = {
    "Alpha",
    "Hotel",
    "Alpha -> Bravo",
    "Charlie . Delta",
    "Alpha | Echo",
    "Bravo & Charlie",
    "!Alpha -> Bravo",
    "(Alpha -> Bravo) | (Charlie -> Delta)",
    "Alpha -> (Bravo | Charlie)",
    "Alpha & (Bravo | Delta)",
    "!Charlie . Alpha",
    "Echo -> Echo",
};

}  // namespace

TEST_F(SegStoreTest, PrunedLoadsYieldIdenticalIncidentSets) {
  // >= 200 random (log, pattern) combinations: evaluating over the pruned
  // load must give incident sets identical to evaluating over the full
  // load — pruning is invisible to query semantics.
  std::size_t combos = 0;
  std::size_t skipped_blocks_total = 0;
  for (std::uint64_t seed = 1; seed <= 18; ++seed) {
    const fs::path dir = dir_ / ("log-" + std::to_string(seed));
    Rng rng(seed * 0x9e3779b97f4a7c15ULL);
    LogStore store = LogStore::create(dir, pruning_options());
    fill_random(store, rng, 8 + rng.below(20));
    store.sync();

    const Log full = store.load();
    QueryEngine full_engine(full);
    for (const std::string& text : kPatterns) {
      const PatternPtr pattern = parse_pattern(text);
      const LogStore::PrunedLoad pruned =
          store.load_pruned(required_activities(*pattern));
      skipped_blocks_total += pruned.blocks_skipped;
      ASSERT_EQ(pruned.blocks_read + pruned.blocks_skipped,
                pruned.blocks_total);

      // The pruned load is itself a well-formed log.
      const std::vector<LogRecord> records(pruned.log.begin(),
                                           pruned.log.end());
      ASSERT_TRUE(check_well_formed(records, pruned.log.interner()).empty())
          << "seed " << seed << " pattern '" << text << "'";

      QueryEngine pruned_engine(pruned.log);
      const QueryResult want = full_engine.run(text);
      const QueryResult got = pruned_engine.run(text);
      ASSERT_TRUE(want.ok() && got.ok());
      ASSERT_EQ(want.incidents, got.incidents)
          << "seed " << seed << " pattern '" << text << "'";
      ++combos;
    }
  }
  EXPECT_GE(combos, 200u);
  // The suite must actually exercise skipping, not vacuously pass.
  EXPECT_GT(skipped_blocks_total, 0u);
}

TEST_F(SegStoreTest, PruningEdgeCases) {
  // Empty store: load_pruned of anything is an empty, unpruned-safe log.
  {
    const fs::path dir = dir_ / "empty";
    LogStore store = LogStore::create(dir, pruning_options());
    const LogStore::PrunedLoad pruned = store.load_pruned({"Alpha"});
    EXPECT_TRUE(pruned.log.empty());
    EXPECT_EQ(pruned.records_kept, 0u);
  }
  // Single-record instances and an all-one-activity store: the required
  // activity appears in every block, so nothing is skipped and nothing
  // is lost.
  {
    const fs::path dir = dir_ / "uniform";
    LogStore store = LogStore::create(dir, pruning_options());
    for (int i = 0; i < 30; ++i) {
      const Wid w = store.begin_instance();
      store.record(w, "Alpha");
      store.end_instance(w);
    }
    store.sync();
    const LogStore::PrunedLoad pruned = store.load_pruned({"Alpha"});
    EXPECT_EQ(pruned.log.size(), store.load().size());
    // A required activity nowhere in the store prunes everything sealed.
    const LogStore::PrunedLoad none = store.load_pruned({"Zulu"});
    QueryEngine engine(none.log);
    EXPECT_FALSE(engine.exists("Zulu"));
  }
  // Empty required set: explicitly not pruned.
  {
    const fs::path dir = dir_ / "unpruned";
    LogStore store = LogStore::create(dir, pruning_options());
    const Wid w = store.begin_instance();
    store.record(w, "Alpha");
    store.end_instance(w);
    const LogStore::PrunedLoad pruned = store.load_pruned({});
    EXPECT_FALSE(pruned.pruned);
    EXPECT_EQ(pruned.log.size(), 3u);
  }
}

TEST_F(SegStoreTest, LyingZoneMapChangesAnswers) {
  // Prove the pruner consults the zone maps: falsify one sealed block's
  // bloom so it denies every activity — the instances whose only
  // occurrence of "Charlie" lives in that block must vanish from the
  // pruned load. (Zone maps are trusted, not revalidated; their own CRC
  // protects them from accidental damage. This test would fail if the
  // pruner read blocks it was told to skip.)
  LogStore::Options options = pruning_options();
  {
    LogStore store = LogStore::create(dir_, options);
    for (int i = 0; i < 24; ++i) {
      const Wid w = store.begin_instance();
      store.record(w, "Charlie");
      store.end_instance(w);
    }
  }
  LogStore honest = LogStore::open(dir_, options);
  const std::size_t honest_kept =
      honest.load_pruned({"Charlie"}).records_kept;
  ASSERT_GT(honest_kept, 0u);

  // Tamper: rewrite the first sealed segment's footer with zeroed blooms.
  const fs::path seg = dir_ / "seg-000001.wfseg";
  const std::string data = read_file(seg);
  const std::optional<FooterRead> fr = try_read_v2_footer(data);
  ASSERT_TRUE(fr.has_value());
  SegmentFooter lying = fr->footer;
  for (BlockZone& zone : lying.blocks) {
    zone.bloom = ActivityBloom::from_words(
        std::vector<std::uint64_t>(zone.bloom.words().size(), 0));
  }
  write_file(seg, data.substr(0, fr->footer_start) + encode_v2_footer(lying));

  LogStore lied_to = LogStore::open(dir_, options);
  const LogStore::PrunedLoad pruned = lied_to.load_pruned({"Charlie"});
  EXPECT_LT(pruned.records_kept, honest_kept);
  EXPECT_GT(pruned.blocks_skipped, 0u);
}

}  // namespace
}  // namespace wflog
