#!/usr/bin/env sh
# Standing-query smoke: boots a real wfqd, registers a subscription over
# HTTP, ingests a matching instance, and asserts the delivery surfaces
# end to end:
#
#   * POST /subscribe answers 201 with an id and the replayed match count
#   * a chunked ?stream=1 attach delivers the new incident as one valid
#     NDJSON object with the envelope ({"type":"incident","seq":...})
#   * long-poll with ?after= acknowledges and releases the event
#   * DELETE /subscribe/{id} tears the subscription down (then 404)
#   * /stats exposes the subscriptions block
#
# Usage: tests/smoke_subscribe.sh path/to/wfqd   (needs curl + jq)
set -eu

wfqd=${1:?usage: smoke_subscribe.sh path/to/wfqd}
tmp=$(mktemp -d)
pid=
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null && wait "$pid" 2>/dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
  echo "smoke_subscribe: FAIL: $*" >&2
  echo "--- wfqd stderr ---" >&2
  cat "$tmp/stderr" >&2 || true
  exit 1
}

"$wfqd" --store "$tmp/store" --port 0 --subscribe-heartbeat-ms 200 \
  >"$tmp/stdout" 2>"$tmp/stderr" &
pid=$!

port=
i=0
while [ "$i" -lt 100 ]; do
  port=$(sed -n 's/^wfqd listening on \([0-9][0-9]*\).*/\1/p' "$tmp/stdout")
  [ -n "$port" ] && break
  kill -0 "$pid" 2>/dev/null || fail "wfqd exited before listening"
  sleep 0.1
  i=$((i + 1))
done
[ -n "$port" ] || fail "never saw the listening line"
base="http://127.0.0.1:$port"

# History first: one matching instance the registration must replay.
curl -fsS -X POST "$base/ingest" --data '{"events": [
  {"op": "begin"},
  {"op": "record", "wid": 1, "activity": "a"},
  {"op": "record", "wid": 1, "activity": "b"},
  {"op": "end", "wid": 1}
]}' >/dev/null || fail "/ingest (history)"

# Register. 201, an id, and matched == 1 (the replayed incident).
curl -fsS -o "$tmp/sub.json" -w '%{http_code}' -X POST "$base/subscribe" \
  --data '{"query": "a -> b"}' | grep -q '^201$' ||
  fail "/subscribe did not answer 201: $(cat "$tmp/sub.json")"
sub=$(jq -r '.id' "$tmp/sub.json")
[ -n "$sub" ] && [ "$sub" != "null" ] || fail "no subscription id"
[ "$(jq -r '.matched' "$tmp/sub.json")" = "1" ] ||
  fail "replay matched != 1: $(cat "$tmp/sub.json")"

# Attach a stream in the background, then ingest a second matching
# instance; the streamed chunk for it must be a valid enveloped incident.
curl -fsS -N --max-time 10 "$base/subscribe/$sub?stream=1" \
  >"$tmp/stream.ndjson" 2>/dev/null &
curl_pid=$!
sleep 0.3
curl -fsS -X POST "$base/ingest" --data '{"events": [
  {"op": "begin"},
  {"op": "record", "wid": 2, "activity": "a"},
  {"op": "record", "wid": 2, "activity": "b"},
  {"op": "end", "wid": 2}
]}' >/dev/null || fail "/ingest (live)"

# Wait for both incidents (seq 1 replay + seq 2 live) to land on disk.
i=0
while [ "$i" -lt 100 ]; do
  n=$(grep -c '"type":"incident"' "$tmp/stream.ndjson" 2>/dev/null || true)
  [ "$n" -ge 2 ] && break
  sleep 0.1
  i=$((i + 1))
done
kill "$curl_pid" 2>/dev/null || true
wait "$curl_pid" 2>/dev/null || true

grep '"type":"incident"' "$tmp/stream.ndjson" | head -n 2 |
  jq -e -s 'length == 2
    and (.[0].seq == 1) and (.[1].seq == 2)
    and all(.[]; .wid >= 1 and (.positions | length > 0))' >/dev/null ||
  fail "streamed incidents malformed: $(cat "$tmp/stream.ndjson")"

# The stream never acked, so a long-poll re-delivers both; ?after=
# releases them (exactly-once cursor).
curl -fsS "$base/subscribe/$sub" >"$tmp/poll.json" || fail "poll"
jq -e '.events | length == 2' "$tmp/poll.json" >/dev/null ||
  fail "poll did not re-deliver unacked events: $(cat "$tmp/poll.json")"
after=$(jq -r '.next_after' "$tmp/poll.json")
curl -fsS "$base/subscribe/$sub?after=$after" |
  jq -e '.events == [] and .pending == 0' >/dev/null ||
  fail "ack did not release the events"

# Observability: the subscriptions block counts this consumer.
curl -fsS "$base/stats" |
  jq -e '.subscriptions.active == 1 and .subscriptions.acked == 2' \
  >/dev/null || fail "/stats subscriptions block"

# Teardown: DELETE closes it; further attaches 404.
curl -fsS -X DELETE "$base/subscribe/$sub" |
  jq -e '.closed == true' >/dev/null || fail "DELETE /subscribe/$sub"
code=$(curl -s -o /dev/null -w '%{http_code}' "$base/subscribe/$sub")
[ "$code" = "404" ] || fail "closed subscription still answers $code"

kill "$pid"
rc=0
wait "$pid" || rc=$?
pid=
[ "$rc" = "0" ] || fail "wfqd exit code $rc on SIGTERM"

echo "smoke_subscribe: OK (port $port)"
