#include "core/bindings.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/evaluator.h"
#include "core/parser.h"
#include "core/printer.h"
#include "test_util.h"
#include "workflow/clinic.h"

namespace wflog {
namespace {

using testing::inc;
using testing::make_log;

// ----- syntax -------------------------------------------------------------

TEST(BindingSyntaxTest, ParserAcceptsBindings) {
  const PatternPtr p = parse_pattern("x:GetRefer -> y:GetReimburse");
  EXPECT_EQ(p->left()->binding(), "x");
  EXPECT_EQ(p->left()->activity(), "GetRefer");
  EXPECT_EQ(p->right()->binding(), "y");
}

TEST(BindingSyntaxTest, BindingWithNegationAndPredicate) {
  const PatternPtr p = parse_pattern("v:!CheckIn[out.balance > 5]");
  EXPECT_EQ(p->binding(), "v");
  EXPECT_TRUE(p->negated());
  EXPECT_NE(p->predicate(), nullptr);
}

TEST(BindingSyntaxTest, UnnamedAtomsHaveEmptyBinding) {
  EXPECT_TRUE(parse_pattern("GetRefer")->binding().empty());
}

TEST(BindingSyntaxTest, PrintRoundTrip) {
  const char* sources[] = {"x:a -> y:b", "v:!c", "x:a[balance > 1] . b",
                           "(x:a | y:b) & z:c"};
  for (const char* src : sources) {
    const PatternPtr p = parse_pattern(src);
    const PatternPtr q = parse_pattern(to_text(*p));
    EXPECT_TRUE(p->structurally_equal(*q)) << src;
  }
}

TEST(BindingSyntaxTest, Errors) {
  EXPECT_THROW(parse_pattern("x:"), ParseError);
  EXPECT_THROW(parse_pattern(":a"), ParseError);
  EXPECT_THROW(parse_pattern("x:(a -> b)"), ParseError);
}

TEST(BindingSyntaxTest, BindingsDistinguishPatterns) {
  EXPECT_FALSE(parse_pattern("x:a")->structurally_equal(
      *parse_pattern("y:a")));
  EXPECT_FALSE(parse_pattern("x:a")->structurally_equal(
      *parse_pattern("a")));
}

TEST(BindingSyntaxTest, BindingsDoNotAffectSemantics) {
  const Log log = make_log("a b a b");
  EXPECT_EQ(testing::eval(log, "x:a -> y:b"), testing::eval(log, "a -> b"));
}

// ----- derivation -----------------------------------------------------------

std::optional<BindingMap> derive(const Log& log, const char* pattern,
                                 const Incident& o) {
  const LogIndex index(log);
  return derive_bindings(*parse_pattern(pattern), o, index);
}

TEST(BindingDerivationTest, SequentialChain) {
  const Log log = make_log("a x b");
  const auto b = derive(log, "p:a -> q:b", inc(1, {2, 4}));
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(b->size(), 2u);
  EXPECT_EQ((*b)[0], (Binding{"p", 2}));
  EXPECT_EQ((*b)[1], (Binding{"q", 4}));
}

TEST(BindingDerivationTest, OnlyNamedAtomsReported) {
  const Log log = make_log("a b c");
  const auto b = derive(log, "a -> q:b -> c", inc(1, {2, 3, 4}));
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(b->size(), 1u);
  EXPECT_EQ((*b)[0], (Binding{"q", 3}));
}

TEST(BindingDerivationTest, RejectsNonIncidents) {
  const Log log = make_log("a b");
  // Wrong order for b -> a.
  EXPECT_FALSE(derive(log, "x:b -> y:a", inc(1, {2, 3})).has_value());
  // Wrong size.
  EXPECT_FALSE(derive(log, "x:a -> y:b", inc(1, {2})).has_value());
  // Wrong activity.
  EXPECT_FALSE(derive(log, "x:a -> y:zzz", inc(1, {2, 3})).has_value());
}

TEST(BindingDerivationTest, ConsecutiveRequiresAdjacency) {
  const Log log = make_log("a x b a b");
  EXPECT_FALSE(derive(log, "x:a . y:b", inc(1, {2, 4})).has_value());
  const auto b = derive(log, "x:a . y:b", inc(1, {5, 6}));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ((*b)[0].position, 5u);
}

TEST(BindingDerivationTest, ChoicePicksMatchingSide) {
  const Log log = make_log("a b");
  const auto b = derive(log, "x:a | y:b", inc(1, {3}));
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(b->size(), 1u);
  EXPECT_EQ((*b)[0], (Binding{"y", 3}));
}

TEST(BindingDerivationTest, ParallelPartition) {
  // (a -> c) & b matched by {2,3,5}: a=2, c=5, b=3.
  const Log log = make_log("a b x c");
  const auto b = derive(log, "(x:a -> y:c) & z:b", inc(1, {2, 3, 5}));
  ASSERT_TRUE(b.has_value());
  ASSERT_EQ(b->size(), 3u);
  EXPECT_EQ((*b)[0], (Binding{"x", 2}));
  EXPECT_EQ((*b)[1], (Binding{"y", 5}));
  EXPECT_EQ((*b)[2], (Binding{"z", 3}));
}

TEST(BindingDerivationTest, NegatedAtomBinds) {
  const Log log = make_log("a b");
  const auto b = derive(log, "x:!a", inc(1, {3}));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ((*b)[0], (Binding{"x", 3}));
  EXPECT_FALSE(derive(log, "x:!a", inc(1, {2})).has_value());
}

TEST(BindingDerivationTest, PredicateChecked) {
  LogBuilder builder;
  const Wid w = builder.begin_instance();
  builder.append(w, "pay", {}, {{"amount", Value{std::int64_t{50}}}});
  builder.append(w, "pay", {}, {{"amount", Value{std::int64_t{500}}}});
  builder.end_instance(w);
  const Log log = builder.build();
  EXPECT_FALSE(
      derive(log, "x:pay[out.amount > 100]", inc(1, {2})).has_value());
  EXPECT_TRUE(
      derive(log, "x:pay[out.amount > 100]", inc(1, {3})).has_value());
}

TEST(BindingDerivationTest, EveryEvaluatedIncidentDerives) {
  // Property: derive_bindings succeeds on every incident the evaluator
  // produces, across pattern shapes.
  const Log log = clinic_log(30, 42);
  const LogIndex index(log);
  const Evaluator ev(index);
  const char* queries[] = {
      "u:UpdateRefer -> r:GetReimburse",
      "s:SeeDoctor -> (u:UpdateRefer -> r:GetReimburse)",
      "(p:PayTreatment | u:UpdateRefer) & s:SeeDoctor",
      "g:GetRefer . c:CheckIn",
  };
  for (const char* q : queries) {
    const PatternPtr p = parse_pattern(q);
    for (const Incident& o : ev.evaluate(*p).flatten()) {
      const auto bindings = derive_bindings(*p, o, index);
      ASSERT_TRUE(bindings.has_value()) << q << " " << o.to_string();
      // Every reported position belongs to the incident.
      for (const Binding& b : *bindings) {
        EXPECT_TRUE(std::find(o.positions().begin(), o.positions().end(),
                              b.position) != o.positions().end());
      }
    }
  }
}

TEST(BindingDerivationTest, PaperExample3WithVariables) {
  // The conference version's incident "x:UpdateRefer ≫ y:GetReimburse" on
  // Figure 3: x = l14, y = l20.
  const Log log = figure3_log();
  const LogIndex index(log);
  const Evaluator ev(index);
  const PatternPtr p = parse_pattern("x:UpdateRefer -> y:GetReimburse");
  const IncidentList out = ev.evaluate(*p).flatten();
  ASSERT_EQ(out.size(), 1u);
  const auto bindings = derive_bindings(*p, out[0], index);
  ASSERT_TRUE(bindings.has_value());
  const std::string text = render_bindings(*bindings, out[0].wid(), index);
  EXPECT_EQ(text, "x = l14 UpdateRefer, y = l20 GetReimburse");
}

TEST(BindingRenderTest, HandlesUnknownPositions) {
  const Log log = make_log("a");
  const LogIndex index(log);
  const std::string text =
      render_bindings({Binding{"x", 99}}, 1, index);
  EXPECT_NE(text.find("?99"), std::string::npos);
}

}  // namespace
}  // namespace wflog
