#include "log/stats.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace wflog {
namespace {

using testing::make_log;

TEST(StatsTest, CountsRecordsAndInstances) {
  const Log log = make_log("a b ; a ; c d e");
  const LogStats s = compute_stats(log);
  EXPECT_EQ(s.num_records, log.size());
  EXPECT_EQ(s.num_instances, 3u);
  EXPECT_EQ(s.num_completed, 3u);
}

TEST(StatsTest, IncompleteInstancesCounted) {
  const Log log = make_log("a b ; a ...");
  const LogStats s = compute_stats(log);
  EXPECT_EQ(s.num_instances, 2u);
  EXPECT_EQ(s.num_completed, 1u);
}

TEST(StatsTest, InstanceLengths) {
  const Log log = make_log("a ; a b c");  // lengths 3 and 5 (sentinels)
  const LogStats s = compute_stats(log);
  EXPECT_EQ(s.min_instance_len, 3u);
  EXPECT_EQ(s.max_instance_len, 5u);
  EXPECT_DOUBLE_EQ(s.mean_instance_len, 4.0);
}

TEST(StatsTest, HistogramSortedByCountDesc) {
  const Log log = make_log("a a a b b c");
  const LogStats s = compute_stats(log);
  ASSERT_GE(s.histogram.size(), 3u);
  for (std::size_t i = 1; i < s.histogram.size(); ++i) {
    EXPECT_GE(s.histogram[i - 1].count, s.histogram[i].count);
  }
  EXPECT_EQ(s.histogram[0].name, "a");
  EXPECT_EQ(s.histogram[0].count, 3u);
}

TEST(StatsTest, DistinctActivitiesIncludesSentinels) {
  const Log log = make_log("a b");
  const LogStats s = compute_stats(log);
  EXPECT_EQ(s.num_activities, 4u);  // START END a b
}

TEST(StatsTest, ToStringMentionsKeyFigures) {
  const Log log = make_log("a b c");
  const std::string text = compute_stats(log).to_string();
  EXPECT_NE(text.find("records: 5"), std::string::npos);
  EXPECT_NE(text.find("instances: 1"), std::string::npos);
  EXPECT_NE(text.find("activity histogram"), std::string::npos);
}

}  // namespace
}  // namespace wflog
