#include "core/incident.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace wflog {
namespace {

using testing::inc;

TEST(IncidentTest, SingletonBasics) {
  const Incident o = Incident::singleton(3, 7);
  EXPECT_EQ(o.wid(), 3u);
  EXPECT_EQ(o.first(), 7u);
  EXPECT_EQ(o.last(), 7u);
  EXPECT_EQ(o.size(), 1u);
  EXPECT_FALSE(o.empty());
}

TEST(IncidentTest, MergedKeepsSortedUnion) {
  const Incident a = inc(1, {2, 5});
  const Incident b = inc(1, {3, 9});
  const Incident m = Incident::merged(a, b);
  EXPECT_EQ(m.positions(), (std::vector<IsLsn>{2, 3, 5, 9}));
  EXPECT_EQ(m.first(), 2u);
  EXPECT_EQ(m.last(), 9u);
  EXPECT_EQ(m.wid(), 1u);
}

TEST(IncidentTest, MergedCollapsesSharedPositions) {
  const Incident a = inc(1, {2, 5});
  const Incident b = inc(1, {5, 9});
  const Incident m = Incident::merged(a, b);
  EXPECT_EQ(m.positions(), (std::vector<IsLsn>{2, 5, 9}));
}

TEST(IncidentTest, DisjointTrueWhenNoSharing) {
  EXPECT_TRUE(Incident::disjoint(inc(1, {1, 3}), inc(1, {2, 4})));
  EXPECT_TRUE(Incident::disjoint(inc(1, {1, 2}), inc(1, {3, 4})));
}

TEST(IncidentTest, DisjointFalseOnSharedRecord) {
  EXPECT_FALSE(Incident::disjoint(inc(1, {1, 3}), inc(1, {3, 4})));
  EXPECT_FALSE(Incident::disjoint(inc(1, {5}), inc(1, {5})));
}

TEST(IncidentTest, DisjointIntervalFastPath) {
  // Non-overlapping spans short-circuit; result must match a full scan.
  EXPECT_TRUE(Incident::disjoint(inc(1, {1, 2, 3}), inc(1, {10, 11})));
  EXPECT_TRUE(Incident::disjoint(inc(1, {10, 11}), inc(1, {1, 2, 3})));
}

TEST(IncidentTest, EqualityAndOrdering) {
  EXPECT_EQ(inc(1, {2, 4}), inc(1, {2, 4}));
  EXPECT_FALSE(inc(1, {2, 4}) == inc(1, {2, 5}));
  EXPECT_FALSE(inc(1, {2, 4}) == inc(2, {2, 4}));
  EXPECT_LT(inc(1, {2, 4}), inc(1, {2, 5}));
  EXPECT_LT(inc(1, {2}), inc(1, {2, 5}));  // prefix sorts first
  EXPECT_LT(inc(1, {9}), inc(2, {1}));     // wid dominates
}

TEST(IncidentTest, HashConsistentWithEquality) {
  EXPECT_EQ(inc(1, {2, 4}).hash(), inc(1, {2, 4}).hash());
  EXPECT_NE(inc(1, {2, 4}).hash(), inc(1, {2, 5}).hash());
}

TEST(IncidentTest, ToString) {
  EXPECT_EQ(inc(2, {5, 8}).to_string(), "{wid=2: 5, 8}");
}

TEST(IncidentListTest, CanonicalizeSortsAndDedups) {
  IncidentList list{inc(1, {4}), inc(1, {2}), inc(1, {4}), inc(1, {2, 3})};
  canonicalize(list);
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], inc(1, {2}));
  EXPECT_EQ(list[1], inc(1, {2, 3}));
  EXPECT_EQ(list[2], inc(1, {4}));
  EXPECT_TRUE(is_canonical(list));
}

TEST(IncidentListTest, IsCanonicalDetectsDisorder) {
  IncidentList list{inc(1, {4}), inc(1, {2})};
  EXPECT_FALSE(is_canonical(list));
  IncidentList dup{inc(1, {2}), inc(1, {2})};
  EXPECT_FALSE(is_canonical(dup));
  EXPECT_TRUE(is_canonical(IncidentList{}));
}

TEST(IncidentSetTest, TotalsAndLookup) {
  IncidentSet set;
  set.add_group(1, {inc(1, {2}), inc(1, {3})});
  set.add_group(4, {inc(4, {2})});
  EXPECT_EQ(set.num_groups(), 2u);
  EXPECT_EQ(set.total(), 3u);
  EXPECT_FALSE(set.empty());
  ASSERT_NE(set.find(4), nullptr);
  EXPECT_EQ(set.find(4)->size(), 1u);
  EXPECT_EQ(set.find(9), nullptr);
}

TEST(IncidentSetTest, FlattenIsCanonical) {
  IncidentSet set;
  set.add_group(1, {inc(1, {2})});
  set.add_group(2, {inc(2, {1}), inc(2, {5})});
  const IncidentList flat = set.flatten();
  EXPECT_EQ(flat.size(), 3u);
  EXPECT_TRUE(is_canonical(flat));
}

TEST(IncidentSetTest, EqualityIgnoresEmptyGroups) {
  IncidentSet a;
  a.add_group(1, {inc(1, {2})});
  IncidentSet b;
  b.add_group(1, {inc(1, {2})});
  b.add_group(2, {});
  EXPECT_TRUE(a == b);
}

TEST(IncidentSetTest, EmptySet) {
  IncidentSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.total(), 0u);
  EXPECT_TRUE(set.flatten().empty());
}

}  // namespace
}  // namespace wflog
