#include "core/linear.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/evaluator.h"
#include "core/parser.h"
#include "log/builder.h"
#include "test_util.h"
#include "workflow/workload.h"

namespace wflog {
namespace {

using testing::make_log;

// ----- chain detection ---------------------------------------------------

TEST(LinearChainTest, DetectsTemporalChains) {
  auto chain = as_linear_chain(*parse_pattern("a -> b . c -> d"));
  ASSERT_TRUE(chain.has_value());
  ASSERT_EQ(chain->size(), 4u);
  EXPECT_EQ((*chain)[0].activity, "a");
  EXPECT_FALSE((*chain)[1].consecutive);  // a -> b
  EXPECT_TRUE((*chain)[2].consecutive);   // b . c
  EXPECT_FALSE((*chain)[3].consecutive);  // c -> d
}

TEST(LinearChainTest, AnyGroupingFlattensIdentically) {
  const auto left = as_linear_chain(*parse_pattern("(a . b) -> c"));
  const auto right = as_linear_chain(*parse_pattern("a . (b -> c)"));
  ASSERT_TRUE(left.has_value());
  ASSERT_TRUE(right.has_value());
  ASSERT_EQ(left->size(), right->size());
  for (std::size_t i = 0; i < left->size(); ++i) {
    EXPECT_EQ((*left)[i].activity, (*right)[i].activity);
    EXPECT_EQ((*left)[i].consecutive, (*right)[i].consecutive);
  }
}

TEST(LinearChainTest, RejectsNonLinearShapes) {
  EXPECT_FALSE(as_linear_chain(*parse_pattern("a | b")).has_value());
  EXPECT_FALSE(as_linear_chain(*parse_pattern("a & b")).has_value());
  EXPECT_FALSE(as_linear_chain(*parse_pattern("!a -> b")).has_value());
  EXPECT_FALSE(as_linear_chain(*parse_pattern("a[x > 1] -> b")).has_value());
  EXPECT_FALSE(
      as_linear_chain(*parse_pattern("a -> (b | c)")).has_value());
}

TEST(LinearChainTest, SingleAtomIsAChain) {
  const auto chain = as_linear_chain(*parse_pattern("a"));
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->size(), 1u);
}

// ----- counting ----------------------------------------------------------

std::size_t count_via_chain(const Log& log, const char* text) {
  const LogIndex index(log);
  const auto chain = as_linear_chain(*parse_pattern(text));
  EXPECT_TRUE(chain.has_value()) << text;
  return count_linear(*chain, index);
}

std::size_t count_via_evaluator(const Log& log, const char* text) {
  const LogIndex index(log);
  EvalOptions opts;
  opts.use_linear_fast_path = false;  // force materialization
  const Evaluator ev(index, opts);
  return ev.evaluate(*parse_pattern(text)).total();
}

TEST(LinearCountTest, HandComputedCounts) {
  const Log log = make_log("a b a b");
  // a at 2,4; b at 3,5; pairs a->b: (2,3)(2,5)(4,5) = 3; a.b: (2,3)(4,5).
  EXPECT_EQ(count_via_chain(log, "a -> b"), 3u);
  EXPECT_EQ(count_via_chain(log, "a . b"), 2u);
  EXPECT_EQ(count_via_chain(log, "b -> a"), 1u);
  EXPECT_EQ(count_via_chain(log, "a"), 2u);
  EXPECT_EQ(count_via_chain(log, "a -> a"), 1u);
}

TEST(LinearCountTest, MissingActivityGivesZero) {
  const Log log = make_log("a b");
  EXPECT_EQ(count_via_chain(log, "a -> zzz"), 0u);
  EXPECT_EQ(count_via_chain(log, "zzz"), 0u);
}

TEST(LinearCountTest, ChainWorkloadClosedForm) {
  // chain(5, 3, 4): per instance A0/A1 each 4x alternating; count(A0->A1)
  // per instance = 4+3+2+1 = 10.
  const Log log = workload::chain(5, 3, 4);
  EXPECT_EQ(count_via_chain(log, "A0 -> A1"), 50u);
  EXPECT_EQ(count_via_chain(log, "A0 . A1"), 20u);
  EXPECT_EQ(count_via_chain(log, "A0 -> A1 -> A2"), 5u * (4 + 3 + 2 + 1 + 3 + 2 + 1 + 2 + 1 + 1));
}

class LinearAgreementTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(LinearAgreementTest, MatchesMaterializedEvaluation) {
  Rng rng(GetParam());
  LogBuilder b;
  for (int i = 0; i < 4; ++i) {
    const Wid w = b.begin_instance();
    const std::size_t len = 5 + rng.index(10);
    for (std::size_t j = 0; j < len; ++j) {
      b.append(w, std::string(1, static_cast<char>('a' + rng.index(3))));
    }
    if (rng.bernoulli(0.7)) b.end_instance(w);
  }
  const Log log = b.build();
  const char* chains[] = {
      "a",       "a -> b",      "a . b",          "a -> b -> c",
      "a . a",   "a -> a -> a", "a . b -> c",     "c -> b . a",
      "b -> b",  "a . b . c",
  };
  for (const char* text : chains) {
    EXPECT_EQ(count_via_chain(log, text), count_via_evaluator(log, text))
        << text << " on seed " << GetParam();
    // exists agrees with count.
    const LogIndex index(log);
    const auto chain = as_linear_chain(*parse_pattern(text));
    EXPECT_EQ(exists_linear(*chain, index),
              count_via_chain(log, text) > 0)
        << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearAgreementTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// ----- evaluator integration --------------------------------------------

TEST(LinearFastPathTest, EvaluatorUsesItTransparently) {
  const Log log = workload::clinic(50, 12);
  const LogIndex index(log);
  EvalOptions fast;
  EvalOptions slow;
  slow.use_linear_fast_path = false;
  const Evaluator ev_fast(index, fast);
  const Evaluator ev_slow(index, slow);
  const char* queries[] = {"GetRefer -> GetReimburse",
                           "SeeDoctor . PayTreatment",
                           "UpdateRefer -> GetReimburse"};
  for (const char* q : queries) {
    const PatternPtr p = parse_pattern(q);
    EXPECT_EQ(ev_fast.count(*p), ev_slow.count(*p)) << q;
    EXPECT_EQ(ev_fast.exists(*p), ev_slow.exists(*p)) << q;
  }
}

TEST(LinearExistsTest, ConsecutiveFallbackCase) {
  // Greedy earliest-match fails on the first prefix but a later assignment
  // exists: a at 2 has no adjacent b, a at 4 does.
  const Log log = make_log("a x a b");
  const LogIndex index(log);
  const auto chain = as_linear_chain(*parse_pattern("a . b"));
  EXPECT_TRUE(exists_linear(*chain, index));
}

}  // namespace
}  // namespace wflog
