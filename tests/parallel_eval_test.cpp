#include "core/parallel_eval.h"

#include <gtest/gtest.h>

#include "core/parser.h"
#include "test_util.h"
#include "workflow/workload.h"

namespace wflog {
namespace {

using testing::make_log;

TEST(ParallelEvalTest, MatchesSerialOnClinic) {
  const Log log = workload::clinic(80, 3);
  const LogIndex index(log);
  const Evaluator serial(index);
  const char* queries[] = {
      "UpdateRefer -> GetReimburse",
      "SeeDoctor . PayTreatment",
      "(SeeDoctor -> CompleteRefer) | (SeeDoctor -> TerminateRefer)",
      "(GetRefer . CheckIn) & SeeDoctor",
      "!UpdateRefer . GetReimburse",
  };
  for (const char* q : queries) {
    const PatternPtr p = parse_pattern(q);
    const IncidentSet expected = serial.evaluate(*p);
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      ParallelOptions opts;
      opts.threads = threads;
      EXPECT_EQ(evaluate_parallel(*p, index, opts), expected)
          << q << " with " << threads << " threads";
    }
  }
}

TEST(ParallelEvalTest, GroupOrderIsDeterministic) {
  const Log log = workload::random_process(50, 8);
  const LogIndex index(log);
  const PatternPtr p = parse_pattern("A0 -> A1");
  ParallelOptions opts;
  opts.threads = 4;
  const IncidentSet a = evaluate_parallel(*p, index, opts);
  const IncidentSet b = evaluate_parallel(*p, index, opts);
  // Not just set equality: identical group order (wid ascending order of
  // first appearance), byte-for-byte deterministic.
  ASSERT_EQ(a.groups().size(), b.groups().size());
  for (std::size_t i = 0; i < a.groups().size(); ++i) {
    EXPECT_EQ(a.groups()[i].wid, b.groups()[i].wid);
    EXPECT_EQ(a.groups()[i].incidents, b.groups()[i].incidents);
  }
}

TEST(ParallelEvalTest, MoreThreadsThanInstances) {
  const Log log = make_log("a b ; b a");
  const LogIndex index(log);
  ParallelOptions opts;
  opts.threads = 16;
  const IncidentSet out =
      evaluate_parallel(*parse_pattern("a -> b"), index, opts);
  EXPECT_EQ(out.total(), 1u);
}

TEST(ParallelEvalTest, DefaultThreadCount) {
  const Log log = workload::clinic(20, 1);
  const LogIndex index(log);
  const Evaluator serial(index);
  const PatternPtr p = parse_pattern("GetRefer -> GetReimburse");
  EXPECT_EQ(evaluate_parallel(*p, index), serial.evaluate(*p));
}

TEST(ParallelEvalTest, CountParallelAgrees) {
  const Log log = workload::clinic(60, 14);
  const LogIndex index(log);
  const Evaluator serial(index);
  const char* queries[] = {
      "SeeDoctor -> PayTreatment",   // linear: DP path
      "(SeeDoctor | UpdateRefer) & PayTreatment",  // materializing path
  };
  for (const char* q : queries) {
    const PatternPtr p = parse_pattern(q);
    ParallelOptions opts;
    opts.threads = 4;
    EXPECT_EQ(count_parallel(*p, index, opts), serial.count(*p)) << q;
  }
}

TEST(ParallelEvalTest, EvalOptionsFlowThrough) {
  const Log log = make_log("a b ; a x b");
  const LogIndex index(log);
  ParallelOptions opts;
  opts.threads = 2;
  opts.eval.max_span = 2;
  // Span window 2: only the adjacent pair survives.
  const IncidentSet out =
      evaluate_parallel(*parse_pattern("a -> b"), index, opts);
  EXPECT_EQ(out.total(), 1u);
}

}  // namespace
}  // namespace wflog
