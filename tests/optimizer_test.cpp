#include "core/optimizer.h"

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/parser.h"
#include "core/printer.h"
#include "test_util.h"
#include "workflow/workload.h"

namespace wflog {
namespace {

using testing::make_log;

TEST(OptimizerTest, NeverIncreasesEstimatedCost) {
  const Log log = workload::random_process(20, 9);
  LogIndex index(log);
  const CostModel model(index);
  const char* queries[] = {
      "A0 -> A1",
      "(A0 -> A1) -> A2",
      "(A0 -> A1) | (A0 -> A2)",
      "(A0 & A1) -> (A2 | A3)",
      "A0 . (A1 . (A2 . A3))",
  };
  for (const char* q : queries) {
    const PatternPtr p = parse_pattern(q);
    const OptimizeResult r = optimize(p, model);
    EXPECT_LE(r.final_cost, r.initial_cost) << q;
    if (p->num_operators() >= 2) {
      // Multi-operator patterns always have at least one legal rewrite.
      EXPECT_GT(r.candidates_examined, 0u) << q;
    }
  }
}

TEST(OptimizerTest, PreservesSemantics) {
  const Log log = workload::random_process(15, 4);
  LogIndex index(log);
  const CostModel model(index);
  Evaluator ev(index);
  const char* queries[] = {
      "(A0 -> A1) -> A2",
      "(A0 -> A2) | (A1 -> A2)",
      "(A0 | A1) & A2",
      "A0 -> (A1 | A2)",
      "(A0 . A1) -> (A2 | !A3)",
  };
  for (const char* q : queries) {
    const PatternPtr p = parse_pattern(q);
    const OptimizeResult r = optimize(p, model);
    EXPECT_EQ(ev.evaluate(*p).flatten(), ev.evaluate(*r.pattern).flatten())
        << q << " optimized to " << to_text(*r.pattern);
  }
}

TEST(OptimizerTest, FactorsSharedSubpattern) {
  // (rare -> a) | (rare -> b) evaluates `rare` twice; factoring shares it.
  const Log log = make_log("rare x a b ; x x a b ; x a x b");
  LogIndex index(log);
  const CostModel model(index);
  const OptimizeResult r =
      optimize(parse_pattern("(x -> a) | (x -> b)"), model);
  EXPECT_LT(r.final_cost, r.initial_cost);
  EXPECT_EQ(to_text(*r.pattern), "x -> (a | b)");
}

TEST(OptimizerTest, ReassociatesTowardSelectiveJoin) {
  // common -> (common -> rare): with a selective tail, some grouping is
  // strictly cheaper; the optimizer must find a no-worse tree.
  const Log log = make_log(
      "c c c c c r ; c c c c c c ; c c c r c c ; c c c c c c");
  LogIndex index(log);
  const CostModel model(index);
  const PatternPtr p = parse_pattern("(c -> c) -> r");
  const OptimizeResult r = optimize(p, model);
  EXPECT_LE(r.final_cost, r.initial_cost);
  Evaluator ev(index);
  EXPECT_EQ(ev.evaluate(*p).flatten(), ev.evaluate(*r.pattern).flatten());
}

TEST(OptimizerTest, AtomIsFixpoint) {
  const CostModel model(10, 2);
  const OptimizeResult r = optimize(parse_pattern("a"), model);
  EXPECT_EQ(r.steps, 0u);
  EXPECT_DOUBLE_EQ(r.final_cost, r.initial_cost);
  EXPECT_TRUE(r.pattern->is_atom());
}

TEST(OptimizerTest, RespectsMaxSteps) {
  const CostModel model(1000, 100);
  OptimizerOptions opts;
  opts.max_steps = 1;
  const OptimizeResult r = optimize(
      parse_pattern("(a -> b) | (a -> c) | (a -> d)"), model, opts);
  EXPECT_LE(r.steps, 1u);
}

TEST(OptimizerTest, TraceRecordsRules) {
  const Log log = make_log("x a b ; x a b");
  LogIndex index(log);
  const CostModel model(index);
  OptimizerOptions opts;
  opts.trace = true;
  const OptimizeResult r =
      optimize(parse_pattern("(x -> a) | (x -> b)"), model, opts);
  EXPECT_EQ(r.trace.size(), r.steps);
  if (!r.trace.empty()) {
    EXPECT_NE(r.trace[0].find("factor"), std::string::npos);
  }
}

}  // namespace
}  // namespace wflog
