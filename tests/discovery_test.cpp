#include "workflow/discovery.h"

#include <gtest/gtest.h>

#include "log/validate.h"
#include "test_util.h"
#include "workflow/clinic.h"
#include "workflow/simulator.h"

namespace wflog {
namespace {

using testing::make_log;

TEST(FootprintTest, DirectSuccessionCounts) {
  const Log log = make_log("a b c ; a b");
  const LogIndex index(log);
  const Footprint fp = discover_footprint(index);
  ASSERT_EQ(fp.activities(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(fp.successions(0, 1), 2u);  // a.b twice
  EXPECT_EQ(fp.successions(1, 2), 1u);  // b.c once
  EXPECT_EQ(fp.successions(1, 0), 0u);
  EXPECT_EQ(fp.successions(2, 0), 0u);
}

TEST(FootprintTest, SentinelsExcluded) {
  const Log log = make_log("a");
  const Footprint fp = discover_footprint(LogIndex(log));
  EXPECT_EQ(fp.activities(), (std::vector<std::string>{"a"}));
}

TEST(FootprintTest, Relations) {
  // a.b both ways -> parallel; a.c one way -> causal; b#c.
  const Log log = make_log("a b a c ; b a");
  const LogIndex index(log);
  const Footprint fp = discover_footprint(index);
  const std::size_t a = fp.index_of("a");
  const std::size_t b = fp.index_of("b");
  const std::size_t c = fp.index_of("c");
  EXPECT_EQ(fp.relation(a, b), FootprintRelation::kParallel);
  EXPECT_EQ(fp.relation(a, c), FootprintRelation::kCausal);
  EXPECT_EQ(fp.relation(c, a), FootprintRelation::kInverse);
  EXPECT_EQ(fp.relation(b, c), FootprintRelation::kUnrelated);
  EXPECT_EQ(fp.index_of("zzz"), SIZE_MAX);
}

TEST(FootprintTest, MatrixRendering) {
  const Log log = make_log("a b");
  const std::string text = discover_footprint(LogIndex(log)).to_string();
  EXPECT_NE(text.find("->"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(DiscoveryTest, LinearProcessRecovered) {
  // Deterministic chain: discovery must reproduce it exactly.
  WorkflowModel original("chain");
  const auto a = original.add_task("a");
  const auto b = original.add_task("b");
  const auto c = original.add_task("c");
  const auto t = original.add_terminal();
  original.connect(a, b);
  original.connect(b, c);
  original.connect(c, t);

  SimOptions sim;
  sim.num_instances = 20;
  const Log log = simulate(original, sim);
  const WorkflowModel discovered = discover_model(LogIndex(log));
  EXPECT_EQ(discovered.activities(),
            (std::vector<std::string>{"a", "b", "c"}));

  // Re-simulating the discovered model gives the same traces.
  const Log relog = simulate(discovered, sim);
  const Footprint f1 = discover_footprint(LogIndex(log));
  const Footprint f2 = discover_footprint(LogIndex(relog));
  ASSERT_EQ(f1.activities(), f2.activities());
  for (std::size_t i = 0; i < f1.size(); ++i) {
    for (std::size_t j = 0; j < f1.size(); ++j) {
      EXPECT_EQ(f1.successions(i, j) > 0, f2.successions(i, j) > 0)
          << f1.activities()[i] << " -> " << f1.activities()[j];
    }
  }
}

TEST(DiscoveryTest, RediscoveredEdgesAreSubsetOfObserved) {
  // Simulating a discovered model can only produce direct successions the
  // original log exhibited (no AND blocks here, so no new interleavings).
  const Log log = clinic_log(60, 123);
  const WorkflowModel discovered = discover_model(LogIndex(log));

  SimOptions sim;
  sim.num_instances = 60;
  sim.seed = 5;
  const Log relog = simulate(discovered, sim);

  const Footprint original = discover_footprint(LogIndex(log));
  const Footprint rediscovered = discover_footprint(LogIndex(relog));
  for (std::size_t i = 0; i < rediscovered.size(); ++i) {
    for (std::size_t j = 0; j < rediscovered.size(); ++j) {
      if (rediscovered.successions(i, j) == 0) continue;
      const std::size_t oi =
          original.index_of(rediscovered.activities()[i]);
      const std::size_t oj =
          original.index_of(rediscovered.activities()[j]);
      ASSERT_NE(oi, SIZE_MAX);
      ASSERT_NE(oj, SIZE_MAX);
      EXPECT_GT(original.successions(oi, oj), 0u)
          << rediscovered.activities()[i] << " -> "
          << rediscovered.activities()[j];
    }
  }
}

TEST(DiscoveryTest, DiscoveredModelSimulatesToValidLogs) {
  const Log log = clinic_log(40, 9);
  const WorkflowModel discovered = discover_model(LogIndex(log));
  SimOptions sim;
  sim.num_instances = 25;
  sim.validate = false;
  const Log relog = simulate(discovered, sim);
  const std::vector<LogRecord> records(relog.begin(), relog.end());
  EXPECT_TRUE(check_well_formed(records, relog.interner()).empty());
}

TEST(DiscoveryTest, NoiseThresholdPrunesRareEdges) {
  // 10 instances of a->b, one instance of a->c.
  LogBuilder builder;
  for (int i = 0; i < 10; ++i) {
    const Wid w = builder.begin_instance();
    builder.append(w, "a");
    builder.append(w, "b");
    builder.end_instance(w);
  }
  const Wid w = builder.begin_instance();
  builder.append(w, "a");
  builder.append(w, "c");
  builder.end_instance(w);
  const Log log = builder.build();

  DiscoveryOptions options;
  options.min_edge_support = 5;
  const WorkflowModel model = discover_model(LogIndex(log), options);
  // With the rare edge pruned, c becomes unreachable from a; simulate and
  // confirm no a.c succession appears.
  SimOptions sim;
  sim.num_instances = 50;
  const Log relog = simulate(model, sim);
  const Footprint fp = discover_footprint(LogIndex(relog));
  const std::size_t a = fp.index_of("a");
  const std::size_t c = fp.index_of("c");
  if (a != SIZE_MAX && c != SIZE_MAX) {
    EXPECT_EQ(fp.successions(a, c), 0u);
  }
}

TEST(DiscoveryTest, MultipleInitialActivitiesGetXorEntry) {
  const Log log = make_log("a x ; b x ; a x");
  const WorkflowModel model = discover_model(LogIndex(log));
  EXPECT_EQ(model.node(model.entry()).kind,
            WorkflowModel::NodeKind::kXorSplit);
  // Simulates fine.
  SimOptions sim;
  sim.num_instances = 10;
  const Log relog = simulate(model, sim);
  EXPECT_GT(relog.size(), 0u);
}

}  // namespace
}  // namespace wflog
