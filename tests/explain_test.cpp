#include "core/explain.h"

#include <gtest/gtest.h>

#include "core/parser.h"
#include "test_util.h"
#include "workflow/clinic.h"
#include "workflow/dot.h"

namespace wflog {
namespace {

using testing::make_log;

TEST(ExplainTest, ProfilesEveryNode) {
  const Log log = figure3_log();
  const LogIndex index(log);
  const CostModel model(index);
  const PatternPtr p =
      parse_pattern("SeeDoctor -> (UpdateRefer -> GetReimburse)");
  const ExplainResult r = explain(*p, index, model);
  ASSERT_EQ(r.nodes.size(), 5u);  // 2 operators + 3 atoms
  EXPECT_EQ(r.nodes[0].label, "[->]");
  EXPECT_EQ(r.nodes[1].label, "SeeDoctor");
  EXPECT_EQ(r.nodes[1].depth, 1u);
  EXPECT_EQ(r.nodes[2].label, "[->]");
  EXPECT_EQ(r.nodes[3].label, "UpdateRefer");
  EXPECT_EQ(r.nodes[4].label, "GetReimburse");
}

TEST(ExplainTest, ActualCardinalitiesMatchEvaluation) {
  const Log log = figure3_log();
  const LogIndex index(log);
  const CostModel model(index);
  const ExplainResult r = explain(
      *parse_pattern("SeeDoctor -> (UpdateRefer -> GetReimburse)"), index,
      model);
  EXPECT_EQ(r.nodes[0].actual_incidents, 1u);  // root: the single incident
  EXPECT_EQ(r.nodes[1].actual_incidents, 4u);  // SeeDoctor occurrences
  EXPECT_EQ(r.nodes[2].actual_incidents, 1u);  // inner sequential
  EXPECT_EQ(r.nodes[3].actual_incidents, 1u);  // UpdateRefer
  EXPECT_EQ(r.nodes[4].actual_incidents, 2u);  // GetReimburse
  EXPECT_EQ(r.incidents.total(), 1u);
}

TEST(ExplainTest, ResultMatchesPlainEvaluation) {
  const Log log = clinic_log(40, 5);
  const LogIndex index(log);
  const CostModel model(index);
  const Evaluator ev(index);
  const char* queries[] = {"UpdateRefer -> GetReimburse",
                           "(SeeDoctor . PayTreatment) | UpdateRefer",
                           "GetRefer & SeeDoctor"};
  for (const char* q : queries) {
    const PatternPtr p = parse_pattern(q);
    const ExplainResult r = explain(*p, index, model);
    EXPECT_EQ(r.incidents, ev.evaluate(*p)) << q;
  }
}

TEST(ExplainTest, PredicateLabelRendered) {
  const Log log = make_log("a");
  const LogIndex index(log);
  const CostModel model(index);
  const ExplainResult r =
      explain(*parse_pattern("a[out.x > 5]"), index, model);
  EXPECT_EQ(r.nodes[0].label, "a[out.x > 5]");
}

TEST(ExplainTest, ReportContainsTableAndTotal) {
  const Log log = figure3_log();
  const LogIndex index(log);
  const CostModel model(index);
  const std::string report =
      explain(*parse_pattern("UpdateRefer -> GetReimburse"), index, model)
          .to_string();
  EXPECT_NE(report.find("node"), std::string::npos);
  EXPECT_NE(report.find("actual"), std::string::npos);
  EXPECT_NE(report.find("UpdateRefer"), std::string::npos);
  EXPECT_NE(report.find("total: 1 incident(s)"), std::string::npos);
}

TEST(ExplainTest, PairsCountedOnOperatorsOnly) {
  const Log log = figure3_log();
  const LogIndex index(log);
  const CostModel model(index);
  const ExplainResult r =
      explain(*parse_pattern("SeeDoctor -> GetReimburse"), index, model);
  EXPECT_GT(r.nodes[0].pairs_examined, 0u);
  EXPECT_EQ(r.nodes[1].pairs_examined, 0u);
}

// ----- DOT exports (model) -----------------------------------------------

TEST(DotTest, ClinicModelExports) {
  const std::string dot = to_dot(clinic_model());
  EXPECT_NE(dot.find("digraph \"clinic-referral\""), std::string::npos);
  EXPECT_NE(dot.find("GetRefer"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
  // Weighted XOR edges are labelled.
  EXPECT_NE(dot.find("label="), std::string::npos);
}

TEST(DotTest, GatewaysRendered) {
  WorkflowModel m("gw");
  const auto split = m.add_and_split();
  const auto a = m.add_task("a");
  const auto b = m.add_task("b");
  const auto join = m.add_and_join(2);
  const auto t = m.add_terminal();
  m.connect(split, a);
  m.connect(split, b);
  m.connect(a, join);
  m.connect(b, join);
  m.connect(join, t);
  const std::string dot = to_dot(m);
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);
  EXPECT_NE(dot.find("+join(2)"), std::string::npos);
  EXPECT_NE(dot.find("entry -> n0"), std::string::npos);
}

TEST(DotTest, GuardedEdgesAnnotated) {
  WorkflowModel m("g");
  const auto a = m.add_task("a");
  const auto b = m.add_task("b");
  m.connect(a, b, 1.0, [](const AttrStore&) { return true; });
  const std::string dot = to_dot(m);
  EXPECT_NE(dot.find("[guarded]"), std::string::npos);
}

}  // namespace
}  // namespace wflog
