#include "core/printer.h"

#include <gtest/gtest.h>

#include "core/parser.h"
#include "test_util.h"

namespace wflog {
namespace {

using namespace dsl;

Log small_log() { return testing::make_log("a b c"); }

TEST(PrinterTest, AtomText) {
  EXPECT_EQ(to_text(*A("GetRefer")), "GetRefer");
  EXPECT_EQ(to_text(*N("CheckIn")), "!CheckIn");
}

TEST(PrinterTest, AtomWithPredicate) {
  const PatternPtr p = parse_pattern("a[out.balance > 5000]");
  EXPECT_EQ(to_text(*p), "a[out.balance > 5000]");
}

TEST(PrinterTest, FlatLeftAssociativeChainHasNoParens) {
  const PatternPtr p = (A("a") >> A("b")) >> A("c");
  EXPECT_EQ(to_text(*p), "a -> b -> c");
}

TEST(PrinterTest, RightNestingKeepsParens) {
  const PatternPtr p = A("a") >> (A("b") >> A("c"));
  EXPECT_EQ(to_text(*p), "a -> (b -> c)");
}

TEST(PrinterTest, PrecedenceParens) {
  const PatternPtr p = (A("a") | A("b")) & A("c");
  EXPECT_EQ(to_text(*p), "(a | b) & c");
  // & binds tighter than |, so the right child needs no parentheses.
  const PatternPtr q = A("a") | (A("b") & A("c"));
  EXPECT_EQ(to_text(*q), "a | b & c");
}

TEST(PrinterTest, MixedTemporalOperatorsKeepStructure) {
  const PatternPtr p = (A("a") + A("b")) >> A("c");
  EXPECT_EQ(to_text(*p), "a . b -> c");
  const PatternPtr q = A("a") + (A("b") >> A("c"));
  EXPECT_EQ(to_text(*q), "a . (b -> c)");
}

TEST(PrinterTest, TreeStringMatchesFigure4Shape) {
  // SeeDoctor -> (UpdateRefer -> GetReimburse): root sequential with
  // SeeDoctor leaf and a sequential subtree — the paper's Figure 4.
  const PatternPtr p =
      parse_pattern("SeeDoctor -> (UpdateRefer -> GetReimburse)");
  const std::string tree = to_tree_string(*p);
  EXPECT_EQ(tree,
            "[->]\n"
            "|-- SeeDoctor\n"
            "`-- [->]\n"
            "    |-- UpdateRefer\n"
            "    `-- GetReimburse\n");
}

TEST(PrinterTest, TreeStringDeepNesting) {
  const PatternPtr p = parse_pattern("(a . b) | !c");
  const std::string tree = to_tree_string(*p);
  EXPECT_EQ(tree,
            "[|]\n"
            "|-- [.]\n"
            "|   |-- a\n"
            "|   `-- b\n"
            "`-- !c\n");
}

TEST(PrinterTest, RenderIncidentResolvesRecords) {
  const Log log = small_log();
  const LogIndex index(log);
  const Incident o = testing::inc(1, {2, 3});
  const std::string s = render_incident(o, index);
  EXPECT_NE(s.find("wid=1"), std::string::npos);
  EXPECT_NE(s.find("l2"), std::string::npos);
}

TEST(PrinterTest, RenderIncidentSetSummaryLine) {
  const Log log = small_log();
  const LogIndex index(log);
  IncidentSet set;
  set.add_group(1, {testing::inc(1, {2})});
  const std::string s = render_incident_set(set, index);
  EXPECT_NE(s.find("1 incident(s) in 1 instance(s)"), std::string::npos);
}

TEST(PrinterTest, RenderIncidentSetHonorsLimit) {
  const Log log = small_log();
  const LogIndex index(log);
  IncidentSet set;
  set.add_group(1, {testing::inc(1, {1}), testing::inc(1, {2}),
                    testing::inc(1, {3})});
  const std::string s = render_incident_set(set, index, 1);
  EXPECT_NE(s.find("... (2 more"), std::string::npos);
}

}  // namespace
}  // namespace wflog
