#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace wflog {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, Real01InRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.real01();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(5);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.5)) ++heads;
  }
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, PickReturnsMember) {
  Rng rng(13);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

}  // namespace
}  // namespace wflog
