// Cross-cutting randomized properties:
//   * parser robustness (garbage never crashes, only ParseError),
//   * print/parse round trip on random patterns,
//   * serialization round trips on random simulated logs (CSV/JSONL/XES),
//   * Theorem 1's combinatorics: the ⊕-chain on the uniform log produces
//     exactly C(m, k+1) incidents under set semantics,
//   * optimizer/rewrites remain sound under span windows.

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/engine.h"
#include "core/parallel_eval.h"
#include "core/printer.h"
#include "core/rewriter.h"
#include "log/io_csv.h"
#include "log/io_jsonl.h"
#include "log/io_xes.h"
#include "test_util.h"
#include "workflow/workload.h"

namespace wflog {
namespace {

// ----- parser robustness -------------------------------------------------

PatternPtr random_deep_pattern(Rng& rng, std::size_t depth) {
  if (depth == 0 || rng.bernoulli(0.35)) {
    static const char* kNames[] = {"a", "bb", "C_3", "GetRefer", "x9"};
    PredicatePtr pred;
    if (rng.bernoulli(0.2)) {
      pred = Predicate::compare(
          rng.bernoulli(0.5) ? MapSel::kIn : MapSel::kOut, "attr",
          CmpOp::kGt, Value{static_cast<std::int64_t>(rng.uniform(0, 99))});
    }
    return Pattern::atom(kNames[rng.index(5)], rng.bernoulli(0.25), pred);
  }
  static constexpr PatternOp kOps[] = {
      PatternOp::kConsecutive, PatternOp::kSequential, PatternOp::kChoice,
      PatternOp::kParallel};
  return Pattern::combine(kOps[rng.index(4)],
                          random_deep_pattern(rng, depth - 1),
                          random_deep_pattern(rng, depth - 1));
}

TEST(ParserFuzzTest, GarbageNeverCrashes) {
  Rng rng(0xF422);
  static const char kAlphabet[] =
      "abcXYZ_01 ->.|&!()[]\"<>=~%$\t\n\xc2\xac\xe2\x8a\x99";
  for (int i = 0; i < 2000; ++i) {
    std::string text;
    const std::size_t len = rng.index(40);
    for (std::size_t j = 0; j < len; ++j) {
      text += kAlphabet[rng.index(sizeof(kAlphabet) - 1)];
    }
    try {
      const PatternPtr p = parse_pattern(text);
      ASSERT_NE(p, nullptr);  // parsed fine — also acceptable
    } catch (const ParseError&) {
      // expected for most inputs
    } catch (const QueryError&) {
      // e.g. empty activity names
    }
  }
}

TEST(ParserFuzzTest, MutatedValidPatternsNeverCrash) {
  Rng rng(0xF423);
  for (int i = 0; i < 500; ++i) {
    std::string text = to_text(*random_deep_pattern(rng, 3));
    // Flip one byte.
    if (!text.empty()) {
      text[rng.index(text.size())] =
          static_cast<char>(rng.uniform(32, 126));
    }
    try {
      parse_pattern(text);
    } catch (const ParseError&) {
    } catch (const QueryError&) {
    }
  }
}

TEST(PrintParseRoundTripTest, RandomPatterns) {
  Rng rng(0x50F7);
  for (int i = 0; i < 300; ++i) {
    const PatternPtr p = random_deep_pattern(rng, 4);
    const std::string text = to_text(*p);
    const PatternPtr q = parse_pattern(text);
    ASSERT_TRUE(p->structurally_equal(*q)) << text;
    // And printing is a fixpoint after one round.
    EXPECT_EQ(to_text(*q), text);
  }
}

// ----- serialization round trips ----------------------------------------

class SerializationRoundTripTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializationRoundTripTest, AllFormatsPreserveQueries) {
  const Log log = workload::random_process(15, GetParam());
  const Log via_csv = csv_to_log(to_csv(log));
  const Log via_jsonl = jsonl_to_log(to_jsonl(log));
  const Log via_xes = xes_to_log(to_xes(log));

  QueryEngine original(log);
  QueryEngine csv_engine(via_csv);
  QueryEngine jsonl_engine(via_jsonl);
  QueryEngine xes_engine(via_xes);
  const char* queries[] = {"A0", "A0 -> A1", "A1 . A2", "!A0 -> A1",
                           "A0 & A1", "(A0 | A1) -> A2"};
  for (const char* q : queries) {
    const IncidentSet expected = original.run(q).incidents;
    EXPECT_EQ(csv_engine.run(q).incidents, expected) << "csv " << q;
    EXPECT_EQ(jsonl_engine.run(q).incidents, expected) << "jsonl " << q;
    EXPECT_EQ(xes_engine.run(q).incidents, expected) << "xes " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationRoundTripTest,
                         ::testing::Range<std::uint64_t>(1, 11));

// ----- Theorem 1 combinatorics -------------------------------------------

std::size_t binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  std::size_t result = 1;
  for (std::size_t i = 0; i < k; ++i) {
    result = result * (n - i) / (i + 1);
  }
  return result;
}

TEST(WorstCaseTest, ParallelChainYieldsBinomialCounts) {
  // Log: single instance, m records of activity t (plus sentinels).
  // ((t ⊕ t) ⊕ ...) with k operators matches every (k+1)-subset of the m
  // records exactly once under Definition 4's set semantics.
  for (std::size_t m : {4u, 6u, 8u}) {
    const Log log = workload::worstcase(m);
    const LogIndex index(log);
    const Evaluator ev(index);
    PatternPtr p = Pattern::atom("t");
    for (std::size_t k = 1; k <= 3; ++k) {
      p = Pattern::parallel(p, Pattern::atom("t"));
      EXPECT_EQ(ev.evaluate(*p).total(), binomial(m, k + 1))
          << "m=" << m << " k=" << k;
    }
  }
}

TEST(WorstCaseTest, SequentialChainYieldsBinomialCountsToo) {
  // t ≫ t ≫ ... selects increasing tuples = subsets as well.
  const Log log = workload::worstcase(8);
  const LogIndex index(log);
  const Evaluator ev(index);
  using namespace dsl;
  EXPECT_EQ(ev.evaluate(*(A("t") >> A("t"))).total(), binomial(8, 2));
  EXPECT_EQ(ev.evaluate(*((A("t") >> A("t")) >> A("t"))).total(),
            binomial(8, 3));
}

TEST(WorstCaseTest, ConsecutiveChainIsLinear) {
  const Log log = workload::worstcase(10);
  const LogIndex index(log);
  const Evaluator ev(index);
  using namespace dsl;
  // t.t: 9 adjacent pairs among the 10 t-records (positions 2..11).
  EXPECT_EQ(ev.evaluate(*(A("t") + A("t"))).total(), 9u);
  EXPECT_EQ(ev.evaluate(*((A("t") + A("t")) + A("t"))).total(), 8u);
}

// ----- rewrites under span windows ---------------------------------------

TEST(SpanRewriteTest, NeighborsPreserveWindowedSemantics) {
  const Log log = workload::random_process(20, 99);
  const LogIndex index(log);
  EvalOptions windowed;
  windowed.max_span = 4;
  const Evaluator ev(index, windowed);

  const char* queries[] = {"(A0 -> A1) -> A2", "A0 -> (A1 | A2)",
                           "(A0 | A1) & A2", "(A0 . A1) -> A2"};
  for (const char* q : queries) {
    const PatternPtr p = parse_pattern(q);
    const IncidentList expected = ev.evaluate(*p).flatten();
    for (const auto& step : rewrite::neighbors(p)) {
      EXPECT_EQ(ev.evaluate(*step.result).flatten(), expected)
          << q << " via " << step.rule;
    }
  }
}

// ----- serial vs parallel under every option ------------------------------

TEST(ParallelConsistencyTest, OptionsMatrixAgrees) {
  const Log log = workload::random_process(25, 41);
  const LogIndex index(log);
  const PatternPtr p = parse_pattern("(A0 -> A1) | (A2 & A3)");
  for (bool optimized : {false, true}) {
    for (IsLsn span : {IsLsn{0}, IsLsn{3}}) {
      EvalOptions eval_opts;
      eval_opts.use_optimized_operators = optimized;
      eval_opts.max_span = span;
      const Evaluator serial(index, eval_opts);
      ParallelOptions par;
      par.threads = 4;
      par.eval = eval_opts;
      EXPECT_EQ(evaluate_parallel(*p, index, par), serial.evaluate(*p))
          << "optimized=" << optimized << " span=" << span;
    }
  }
}

}  // namespace
}  // namespace wflog
