#include "log/io_xes.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/engine.h"
#include "log/validate.h"
#include "test_util.h"
#include "workflow/clinic.h"
#include "workflow/workload.h"

namespace wflog {
namespace {

using testing::make_log;

bool logs_equivalent(const Log& a, const Log& b) {
  if (a.size() != b.size() || a.wids() != b.wids()) return false;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    const LogRecord& x = a.record(i);
    const LogRecord& y = b.record(i);
    if (x.wid != y.wid || x.is_lsn != y.is_lsn) return false;
    if (a.activity_name(x.activity) != b.activity_name(y.activity)) {
      return false;
    }
    auto maps_equal = [&](const AttrMap& m, const AttrMap& n) {
      if (m.size() != n.size()) return false;
      for (const AttrEntry& e : m) {
        const Symbol sym = b.interner().find(a.interner().name(e.attr));
        if (sym == kNoSymbol) return false;
        const Value* v = n.get(sym);
        if (v == nullptr || !(*v == e.value)) return false;
      }
      return true;
    };
    if (!maps_equal(x.in, y.in) || !maps_equal(x.out, y.out)) return false;
  }
  return true;
}

TEST(XesTest, RoundTripSimple) {
  const Log log = make_log("a b ; c");
  const Log back = xes_to_log(to_xes(log));
  EXPECT_TRUE(logs_equivalent(log, back));
}

TEST(XesTest, RoundTripFigure3Exactly) {
  const Log log = figure3_log();
  const Log back = xes_to_log(to_xes(log));
  EXPECT_TRUE(logs_equivalent(log, back));
}

TEST(XesTest, RoundTripInterleavedClinic) {
  const Log log = workload::clinic(30, 9);
  const Log back = xes_to_log(to_xes(log));
  EXPECT_TRUE(logs_equivalent(log, back));
}

TEST(XesTest, RoundTripIncompleteInstances) {
  const Log log = make_log("a b ... ; c d");
  const Log back = xes_to_log(to_xes(log));
  EXPECT_TRUE(logs_equivalent(log, back));
}

TEST(XesTest, QueriesAgreeAfterRoundTrip) {
  const Log log = workload::clinic(40, 21);
  const Log back = xes_to_log(to_xes(log));
  QueryEngine a(log);
  QueryEngine b(back);
  const char* queries[] = {"UpdateRefer -> GetReimburse",
                           "SeeDoctor . PayTreatment",
                           "GetRefer[out.balance >= 5000]"};
  for (const char* q : queries) {
    EXPECT_EQ(a.run(q).incidents, b.run(q).incidents) << q;
  }
}

TEST(XesTest, EscapesSpecialCharacters) {
  LogBuilder b;
  const Wid w = b.begin_instance();
  b.append(w, "a", {}, {{"note", Value{"x < y & \"z\" > 'w'"}}});
  b.end_instance(w);
  const Log log = b.build();
  const std::string xes = to_xes(log);
  EXPECT_EQ(xes.find("x < y"), std::string::npos);  // must be escaped
  const Log back = xes_to_log(xes);
  EXPECT_TRUE(logs_equivalent(log, back));
}

TEST(XesTest, ValueTypesPreserved) {
  LogBuilder b;
  const Wid w = b.begin_instance();
  b.append(w, "a", {},
           {{"i", Value{std::int64_t{42}}},
            {"f", Value{2.5}},
            {"t", Value{true}},
            {"s", Value{"text"}},
            {"n", Value{}}});
  b.end_instance(w);
  const Log back = xes_to_log(to_xes(b.build()));
  const LogRecord& l = back.record(2);
  const Interner& in = back.interner();
  EXPECT_EQ(*l.out.get(in.find("i")), Value{std::int64_t{42}});
  EXPECT_EQ(*l.out.get(in.find("f")), Value{2.5});
  EXPECT_EQ(*l.out.get(in.find("t")), Value{true});
  EXPECT_EQ(*l.out.get(in.find("s")), Value{"text"});
  EXPECT_EQ(*l.out.get(in.find("n")), Value{});
}

TEST(XesTest, ImportsForeignXesWithoutHints) {
  // A minimal trace exported by a third-party tool: no wflog:* keys.
  const char* xes = R"(<?xml version="1.0"?>
<log xes.version="1.0">
  <trace>
    <string key="concept:name" value="case-7"/>
    <event><string key="concept:name" value="Register"/></event>
    <event>
      <string key="concept:name" value="Approve"/>
      <string key="org:resource" value="alice"/>
    </event>
  </trace>
  <trace>
    <string key="concept:name" value="case-8"/>
    <event><string key="concept:name" value="Register"/></event>
  </trace>
</log>)";
  const Log log = xes_to_log(xes);
  // Non-numeric names -> sequential wids; traces incomplete (no marker).
  EXPECT_EQ(log.wids(), (std::vector<Wid>{1, 2}));
  const std::vector<LogRecord> records(log.begin(), log.end());
  EXPECT_TRUE(check_well_formed(records, log.interner()).empty());
  QueryEngine engine(log);
  EXPECT_EQ(engine.count("Register"), 2u);
  EXPECT_EQ(engine.count("Register -> Approve"), 1u);
  EXPECT_EQ(engine.count("END"), 0u);  // no completion marker
}

TEST(XesTest, NumericTraceNamesBecomeWids) {
  const char* xes = R"(<log>
  <trace>
    <string key="concept:name" value="17"/>
    <event><string key="concept:name" value="a"/></event>
  </trace>
</log>)";
  const Log log = xes_to_log(xes);
  EXPECT_EQ(log.wids(), (std::vector<Wid>{17}));
}

TEST(XesTest, RejectsGarbage) {
  EXPECT_THROW(xes_to_log("not xml"), IoError);
  EXPECT_THROW(xes_to_log("<log></log>"), IoError);  // no traces
  EXPECT_THROW(xes_to_log("<trace><event/></trace>"), IoError);  // no <log>
  EXPECT_THROW(
      xes_to_log("<log><trace><event><string key=\"x\" value=\"y\"/>"
                 "</event></trace></log>"),
      IoError);  // event without concept:name
}

TEST(XesTest, SkipsCommentsAndDeclarations) {
  const char* xes =
      "<?xml version=\"1.0\"?><!-- exported -->\n"
      "<log><!-- one trace --><trace>"
      "<string key=\"concept:name\" value=\"1\"/>"
      "<event><string key=\"concept:name\" value=\"a\"/></event>"
      "</trace></log>";
  EXPECT_EQ(xes_to_log(xes).size(), 2u);  // START + a
}

}  // namespace
}  // namespace wflog
