// Standing-query differential suite (ISSUE: /subscribe tentpole).
//
// The contract under test is "streamed == batch": the union of a
// subscription's replayed history and its incrementally delivered events
// must equal — byte for byte, incident for incident — what a batch /query
// of the same text reports against the final snapshot. The suite drives
// that equivalence across long-poll acks, chunked streams, where clauses,
// client disconnects, unsubscription, slow-consumer overflow, and the
// incremental cache repair that keeps cached /query entries fresh across
// /ingest.
//
// Registered under the `subscribe` ctest label (run_ci.sh runs it plain
// and under ASan/UBSan + TSan).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "server/client.h"
#include "server/handlers.h"
#include "server/json.h"
#include "server/server.h"
#include "test_util.h"

namespace wflog {
namespace {

using namespace std::chrono_literals;

// ----- fixture ------------------------------------------------------------

/// A QueryService + HttpServer on an ephemeral port (server_test.cpp's
/// TestServer, minus the observer plumbing this suite doesn't use).
struct TestServer {
  std::unique_ptr<server::QueryService> service;
  std::unique_ptr<server::HttpServer> http;

  explicit TestServer(std::optional<Log> log,
                      server::ServiceOptions svc = {},
                      server::ServerOptions opts = {}) {
    opts.port = 0;
    service = std::make_unique<server::QueryService>(
        std::move(log), std::move(svc), opts.drain_cancel, std::nullopt);
    server::Router router;
    service->bind(router);
    http = std::make_unique<server::HttpServer>(std::move(router),
                                                std::move(opts));
    service->attach_server(http.get());
    http->start();
  }

  ~TestServer() {
    if (http != nullptr) http->shutdown();
  }

  server::HttpClient client() const {
    return server::HttpClient("127.0.0.1", http->port());
  }
};

Log small_log() { return testing::make_log("a b c ; c b a ; a c b"); }

// ----- helpers ------------------------------------------------------------

/// POST /ingest of one fresh instance running `activities` in order.
/// Returns the assigned wid.
std::int64_t ingest_instance(server::HttpClient& c,
                             const std::vector<std::string>& activities,
                             bool end = true) {
  std::string body = R"({"events": [{"op": "begin"})";
  const server::ClientResponse begin_probe =
      c.post("/ingest", body + "]}");
  EXPECT_EQ(begin_probe.status, 200) << begin_probe.body;
  const server::JsonValue v = server::parse_json(begin_probe.body);
  const auto& wids = v.find("wids")->as_array();
  EXPECT_EQ(wids.size(), 1u);
  const std::int64_t wid = wids[0].as_int();

  std::string rest = R"({"events": [)";
  bool first = true;
  for (const std::string& a : activities) {
    if (!first) rest += ',';
    first = false;
    rest += R"({"op": "record", "wid": )" + std::to_string(wid) +
            R"(, "activity": ")" + a + "\"}";
  }
  if (end) {
    if (!first) rest += ',';
    rest += R"({"op": "end", "wid": )" + std::to_string(wid) + "}";
  }
  rest += "]}";
  const server::ClientResponse r = c.post("/ingest", rest);
  EXPECT_EQ(r.status, 200) << r.body;
  return wid;
}

/// Canonical incident fragment — the exact bytes render_sub_event emits
/// and the /subscribe delivery paths forward.
std::string fragment(std::int64_t wid,
                     const std::vector<std::int64_t>& positions) {
  std::string s = "\"wid\":" + std::to_string(wid) + ",\"positions\":[";
  bool first = true;
  for (const std::int64_t p : positions) {
    if (!first) s += ',';
    first = false;
    s += std::to_string(p);
  }
  s += ']';
  return s;
}

/// Re-renders one parsed subscribe event ({"seq":N,"wid":W,...}) back to
/// its canonical fragment.
std::string fragment_of_event(const server::JsonValue& e) {
  std::vector<std::int64_t> positions;
  for (const server::JsonValue& p : e.find("positions")->as_array()) {
    positions.push_back(p.as_int());
  }
  return fragment(e.find("wid")->as_int(), positions);
}

/// Every incident a batch /query reports, as canonical fragments — the
/// multiset a subscription's full delivery history must equal.
std::multiset<std::string> batch_fragments(server::HttpClient& c,
                                           const std::string& query) {
  const server::ClientResponse r =
      c.post("/query", R"({"query": ")" + query + R"("})");
  EXPECT_EQ(r.status, 200) << r.body;
  const server::JsonValue v = server::parse_json(r.body);
  EXPECT_TRUE(v.find("complete")->as_bool()) << r.body;
  std::multiset<std::string> out;
  for (const server::JsonValue& g : v.find("incidents")->as_array()) {
    const std::int64_t wid = g.find("wid")->as_int();
    for (const server::JsonValue& o : g.find("incidents")->as_array()) {
      std::vector<std::int64_t> positions;
      for (const server::JsonValue& p : o.as_array()) {
        positions.push_back(p.as_int());
      }
      out.insert(fragment(wid, positions));
    }
  }
  return out;
}

/// POST /subscribe; returns {id, matched}.
std::pair<std::string, std::int64_t> subscribe(server::HttpClient& c,
                                               const std::string& query) {
  const server::ClientResponse r =
      c.post("/subscribe", R"({"query": ")" + query + R"("})");
  EXPECT_EQ(r.status, 201) << r.body;
  const server::JsonValue v = server::parse_json(r.body);
  return {v.find("id")->as_string(), v.find("matched")->as_int()};
}

struct Drained {
  std::multiset<std::string> fragments;
  std::vector<std::uint64_t> seqs;  // delivery order
  std::uint64_t next_after = 0;
};

/// Long-polls with acks until the pending queue is empty, accumulating
/// every event exactly once (the consumer half of the delivery contract).
Drained drain_all(server::HttpClient& c, const std::string& id,
                  std::uint64_t after = 0) {
  Drained d;
  d.next_after = after;
  for (;;) {
    const server::ClientResponse r = c.get(
        "/subscribe/" + id + "?after=" + std::to_string(d.next_after));
    EXPECT_EQ(r.status, 200) << r.body;
    const server::JsonValue v = server::parse_json(r.body);
    for (const server::JsonValue& e : v.find("events")->as_array()) {
      d.fragments.insert(fragment_of_event(e));
      d.seqs.push_back(static_cast<std::uint64_t>(e.find("seq")->as_int()));
    }
    d.next_after =
        static_cast<std::uint64_t>(v.find("next_after")->as_int());
    if (v.find("pending")->as_int() == 0 &&
        v.find("events")->as_array().empty()) {
      return d;
    }
  }
}

server::JsonValue stats_subscriptions(server::HttpClient& c) {
  const server::ClientResponse r = c.get("/stats");
  EXPECT_EQ(r.status, 200);
  const server::JsonValue v = server::parse_json(r.body);
  const server::JsonValue* s = v.find("subscriptions");
  EXPECT_NE(s, nullptr);
  return *s;
}

// ----- registration & replay ----------------------------------------------

TEST(SubscribeTest, RegistrationReplaysHistory) {
  TestServer ts(small_log());
  server::HttpClient c = ts.client();
  const auto [id, matched] = subscribe(c, "a -> b");

  // "matched" equals what batch /query reports right now, and the queued
  // events are those exact incidents.
  const std::multiset<std::string> expect = batch_fragments(c, "a -> b");
  EXPECT_EQ(static_cast<std::size_t>(matched), expect.size());
  const Drained d = drain_all(c, id);
  EXPECT_EQ(d.fragments, expect);

  // Replay seqs start at 1 and are dense.
  ASSERT_EQ(d.seqs.size(), expect.size());
  for (std::size_t i = 0; i < d.seqs.size(); ++i) {
    EXPECT_EQ(d.seqs[i], i + 1);
  }
}

TEST(SubscribeTest, RejectsBadRequests) {
  TestServer ts(small_log());
  server::HttpClient c = ts.client();
  EXPECT_EQ(c.post("/subscribe", "{not json").status, 400);
  EXPECT_EQ(c.post("/subscribe", R"({"nope": 1})").status, 400);
  EXPECT_EQ(c.post("/subscribe", R"({"query": "((broken"})").status, 400);
  EXPECT_EQ(c.get("/subscribe/sub-999").status, 404);
  EXPECT_EQ(c.get("/subscribe/").status, 404);
  const auto [id, matched] = subscribe(c, "a");
  EXPECT_EQ(c.get("/subscribe/" + id + "?after=junk").status, 400);
  EXPECT_EQ(c.get("/subscribe/" + id + "?wait_ms=-1").status, 400);
}

TEST(SubscribeTest, CapacityRefusedWith503) {
  server::ServiceOptions svc;
  svc.subscribe.max_subscriptions = 1;
  TestServer ts(small_log(), svc);
  server::HttpClient c = ts.client();
  subscribe(c, "a");
  const server::ClientResponse r =
      c.post("/subscribe", R"({"query": "b"})");
  EXPECT_EQ(r.status, 503) << r.body;
}

// ----- incremental delivery -----------------------------------------------

TEST(SubscribeTest, IngestDeliversOnlyNewIncidents) {
  TestServer ts(std::nullopt);
  server::HttpClient c = ts.client();
  ingest_instance(c, {"a", "b"});
  const auto [id, matched] = subscribe(c, "a -> b");
  EXPECT_EQ(matched, 1);  // history
  const Drained history = drain_all(c, id);

  // New instance: exactly its incident arrives — no re-delivery of history.
  const std::int64_t w2 = ingest_instance(c, {"a", "x", "b"});
  const Drained fresh = drain_all(c, id, history.next_after);
  ASSERT_EQ(fresh.fragments.size(), 1u);
  EXPECT_NE(fresh.fragments.begin()->find("\"wid\":" + std::to_string(w2)),
            std::string::npos);

  // Grand total equals batch.
  std::multiset<std::string> all = history.fragments;
  all.insert(fresh.fragments.begin(), fresh.fragments.end());
  EXPECT_EQ(all, batch_fragments(c, "a -> b"));
}

TEST(SubscribeTest, UnackedEventsAreRedelivered) {
  TestServer ts(std::nullopt);
  server::HttpClient c = ts.client();
  const auto [id, matched] = subscribe(c, "a");
  ingest_instance(c, {"a"});
  ingest_instance(c, {"a"});

  // Two polls without an ack see the SAME events with the SAME seqs —
  // nothing is released until ?after= says so.
  const server::ClientResponse p1 = c.get("/subscribe/" + id);
  const server::ClientResponse p2 = c.get("/subscribe/" + id);
  ASSERT_EQ(p1.status, 200);
  const server::JsonValue v1 = server::parse_json(p1.body);
  const server::JsonValue v2 = server::parse_json(p2.body);
  ASSERT_EQ(v1.find("events")->as_array().size(), 2u);
  EXPECT_EQ(v1.find("events")->dump(), v2.find("events")->dump());

  // Acking releases them; a fresh cursor-bearing poll is empty.
  const std::string cursor =
      std::to_string(v1.find("next_after")->as_int());
  const server::ClientResponse p3 =
      c.get("/subscribe/" + id + "?after=" + cursor);
  const server::JsonValue v3 = server::parse_json(p3.body);
  EXPECT_TRUE(v3.find("events")->as_array().empty());
  EXPECT_EQ(v3.find("pending")->as_int(), 0);

  const server::JsonValue s = stats_subscriptions(c);
  EXPECT_EQ(s.find("acked")->as_int(), 2);
}

TEST(SubscribeTest, WhereClauseFiltersDeliveries) {
  const std::string q = "x:a -> y:b where x.out.k = y.in.k";
  TestServer ts(std::nullopt);
  server::HttpClient c = ts.client();
  const auto [id, matched] = subscribe(c, q);
  EXPECT_EQ(matched, 0);

  // One joining instance, one non-joining: the where clause must gate
  // streamed delivery exactly as it gates batch evaluation.
  ASSERT_EQ(c.post("/ingest", R"({"events": [
    {"op": "begin"},
    {"op": "record", "wid": 1, "activity": "a", "out": {"k": 7}},
    {"op": "record", "wid": 1, "activity": "b", "in": {"k": 7}},
    {"op": "end", "wid": 1},
    {"op": "begin"},
    {"op": "record", "wid": 2, "activity": "a", "out": {"k": 7}},
    {"op": "record", "wid": 2, "activity": "b", "in": {"k": 9}},
    {"op": "end", "wid": 2}
  ]})").status, 200);

  const Drained d = drain_all(c, id);
  EXPECT_EQ(d.fragments, batch_fragments(c, q));
  ASSERT_EQ(d.fragments.size(), 1u);
  EXPECT_NE(d.fragments.begin()->find("\"wid\":1"), std::string::npos);
}

// The headline differential: many interleaved ingests, consumed through
// the ack cursor, must reproduce the batch result EXACTLY.
TEST(SubscribeTest, DifferentialStreamedEqualsBatch) {
  TestServer ts(std::nullopt);
  server::HttpClient c = ts.client();
  ingest_instance(c, {"a", "b", "a"});  // pre-subscription history
  const auto [id, matched] = subscribe(c, "a -> b");

  std::multiset<std::string> streamed;
  Drained d = drain_all(c, id);
  streamed.insert(d.fragments.begin(), d.fragments.end());
  std::uint64_t cursor = d.next_after;
  std::vector<std::uint64_t> seqs = d.seqs;

  const std::vector<std::vector<std::string>> instances = {
      {"a", "b"},
      {"b", "b"},            // no match
      {"a", "x", "b", "b"},  // two incidents
      {"c"},                 // no match
      {"a", "a", "b"},       // three incidents
  };
  for (const auto& acts : instances) {
    ingest_instance(c, acts);
    d = drain_all(c, id, cursor);
    streamed.insert(d.fragments.begin(), d.fragments.end());
    seqs.insert(seqs.end(), d.seqs.begin(), d.seqs.end());
    cursor = d.next_after;
  }

  // Byte-identical multiset equality against the final batch snapshot.
  EXPECT_EQ(streamed, batch_fragments(c, "a -> b"));
  // Exactly-once: seqs are dense 1..N with no gap or repeat.
  ASSERT_EQ(seqs.size(), streamed.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], i + 1);
  }
}

// ----- lifecycle ----------------------------------------------------------

TEST(SubscribeTest, UnsubscribeReleasesEverything) {
  TestServer ts(small_log());
  server::HttpClient c = ts.client();
  const auto [id, matched] = subscribe(c, "a");
  EXPECT_EQ(stats_subscriptions(c).find("active")->as_int(), 1);

  const server::ClientResponse del =
      c.request("DELETE", "/subscribe/" + id, "", "application/json");
  ASSERT_EQ(del.status, 200) << del.body;
  EXPECT_TRUE(server::parse_json(del.body).find("closed")->as_bool());

  // A closed subscription answers its terminal state once, then 404s.
  const server::ClientResponse after = c.get("/subscribe/" + id);
  if (after.status == 200) {
    const server::JsonValue v = server::parse_json(after.body);
    EXPECT_TRUE(v.find("closed")->as_bool());
    EXPECT_EQ(v.find("reason")->as_string(), "unsubscribed");
  } else {
    EXPECT_EQ(after.status, 404);
  }
  EXPECT_EQ(stats_subscriptions(c).find("active")->as_int(), 0);
  EXPECT_EQ(
      c.request("DELETE", "/subscribe/" + id, "", "application/json").status,
      404);
}

TEST(SubscribeTest, SlowConsumerIsDroppedAtPendingCap) {
  server::ServiceOptions svc;
  svc.subscribe.pending_cap = 2;
  TestServer ts(std::nullopt, svc);
  server::HttpClient c = ts.client();
  const auto [id, matched] = subscribe(c, "a");

  // Three matches, zero acks: the third breaches the cap and the
  // subscription is dropped rather than growing without bound.
  ingest_instance(c, {"a", "a", "a"});

  const server::ClientResponse r = c.get("/subscribe/" + id);
  if (r.status == 200) {
    const server::JsonValue v = server::parse_json(r.body);
    EXPECT_TRUE(v.find("closed")->as_bool()) << r.body;
    EXPECT_EQ(v.find("reason")->as_string(), "overflow");
  } else {
    EXPECT_EQ(r.status, 404);
  }
  const server::JsonValue s = stats_subscriptions(c);
  EXPECT_EQ(s.find("overflow_dropped")->as_int(), 1);
  EXPECT_EQ(s.find("active")->as_int(), 0);

  // The monitor query was released with it: new ingests don't accumulate
  // matches for a dead consumer, and the server keeps serving.
  ingest_instance(c, {"a"});
  EXPECT_EQ(c.post("/query", R"({"query": "a"})").status, 200);
}

// ----- chunked streams ----------------------------------------------------

TEST(SubscribeTest, StreamDeliversEnvelopedEvents) {
  TestServer ts(std::nullopt);
  server::HttpClient c = ts.client();
  ingest_instance(c, {"a"});
  const auto [id, matched] = subscribe(c, "a");
  ASSERT_EQ(matched, 1);

  // The replayed event arrives as one NDJSON chunk with the envelope;
  // returning false after it closes the stream from the client side.
  std::vector<std::string> chunks;
  server::HttpClient sc = ts.client();
  const server::ClientResponse head =
      // A fast heartbeat so the server notices the disconnect on its next
      // write promptly (a dead peer is only visible when writing to it).
      sc.stream("GET", "/subscribe/" + id + "?stream=1&heartbeat_ms=100", "",
                [&](std::string_view chunk) {
                  chunks.emplace_back(chunk);
                  return false;  // disconnect after the first chunk
                });
  EXPECT_EQ(head.status, 200);
  EXPECT_NE(head.header("content-type"), nullptr);
  EXPECT_EQ(*head.header("content-type"), "application/x-ndjson");
  ASSERT_EQ(chunks.size(), 1u);
  const server::JsonValue e = server::parse_json(chunks[0]);
  EXPECT_EQ(e.find("type")->as_string(), "incident");
  EXPECT_EQ(e.find("seq")->as_int(), 1);
  EXPECT_NE(e.find("positions"), nullptr);

  // The server survived the mid-stream disconnect; the subscription is
  // intact and the event — never acked — is re-deliverable.
  const auto wait_streams_zero = [&] {
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (std::chrono::steady_clock::now() < deadline) {
      if (stats_subscriptions(c).find("streams")->as_int() == 0) return true;
      std::this_thread::sleep_for(5ms);
    }
    return false;
  };
  EXPECT_TRUE(wait_streams_zero());
  const Drained d = drain_all(c, id);
  EXPECT_EQ(d.fragments.size(), 1u);
}

TEST(SubscribeTest, StreamHeartbeatsWhenIdle) {
  TestServer ts(small_log());
  server::HttpClient c = ts.client();
  const auto [id, matched] = subscribe(c, "zzz");
  ASSERT_EQ(matched, 0);

  // An idle stream must emit keep-alive chunks at the requested cadence
  // (clamped to >= 100ms) so proxies and clients see a live connection.
  std::vector<std::string> chunks;
  server::HttpClient sc = ts.client();
  sc.stream("GET", "/subscribe/" + id + "?stream=1&heartbeat_ms=1", "",
            [&](std::string_view chunk) {
              chunks.emplace_back(chunk);
              return chunks.size() < 2;
            });
  ASSERT_GE(chunks.size(), 2u);
  for (const std::string& chunk : chunks) {
    EXPECT_EQ(server::parse_json(chunk).find("type")->as_string(),
              "heartbeat");
  }
}

TEST(SubscribeTest, StreamCapAnswersBusy) {
  server::ServiceOptions svc;
  svc.subscribe.max_streams = 0;
  TestServer ts(small_log(), svc);
  server::HttpClient c = ts.client();
  const auto [id, matched] = subscribe(c, "a");

  std::vector<std::string> chunks;
  server::HttpClient sc = ts.client();
  sc.stream("GET", "/subscribe/" + id + "?stream=1", "",
            [&](std::string_view chunk) {
              chunks.emplace_back(chunk);
              return true;
            });
  ASSERT_EQ(chunks.size(), 1u);
  const server::JsonValue e = server::parse_json(chunks[0]);
  EXPECT_EQ(e.find("type")->as_string(), "end");
  EXPECT_EQ(e.find("reason")->as_string(), "busy");

  // Long-poll remains available — it is the scalable consumption path.
  EXPECT_EQ(c.get("/subscribe/" + id).status, 200);
}

TEST(SubscribeTest, StreamSeesLiveIngestAcrossThreads) {
  TestServer ts(std::nullopt);
  server::HttpClient c = ts.client();
  const auto [id, matched] = subscribe(c, "a -> b");

  std::vector<std::string> incident_chunks;
  std::thread consumer([&] {
    server::HttpClient sc = ts.client();
    sc.stream("GET", "/subscribe/" + id + "?stream=1&heartbeat_ms=100", "",
              [&](std::string_view chunk) {
                const server::JsonValue e = server::parse_json(
                    std::string(chunk));
                if (e.find("type")->as_string() != "incident") return true;
                incident_chunks.emplace_back(chunk);
                return incident_chunks.size() < 2;
              });
  });
  ingest_instance(c, {"a", "b"});
  ingest_instance(c, {"a", "q", "b"});
  consumer.join();

  ASSERT_EQ(incident_chunks.size(), 2u);
  std::multiset<std::string> streamed;
  std::uint64_t prev_seq = 0;
  for (const std::string& chunk : incident_chunks) {
    const server::JsonValue e = server::parse_json(chunk);
    const auto seq = static_cast<std::uint64_t>(e.find("seq")->as_int());
    EXPECT_GT(seq, prev_seq);  // in-order, no repeats
    prev_seq = seq;
    streamed.insert(fragment_of_event(e));
  }
  EXPECT_EQ(streamed, batch_fragments(c, "a -> b"));
}

// ----- streamed /query ----------------------------------------------------

TEST(SubscribeTest, StreamedQueryEqualsBatchQuery) {
  TestServer ts(small_log());
  server::HttpClient c = ts.client();

  // Batch, then the same query streamed: head/groups/tail chunks must
  // reassemble to the identical incident set.
  const std::multiset<std::string> expect = batch_fragments(c, "a -> b");

  std::vector<std::string> chunks;
  server::HttpClient sc = ts.client();
  const server::ClientResponse head = sc.stream(
      "POST", "/query", R"({"query": "a -> b", "stream": true})",
      [&](std::string_view chunk) {
        chunks.emplace_back(chunk);
        return true;
      });
  EXPECT_EQ(head.status, 200);
  ASSERT_GE(chunks.size(), 2u);  // head + tail at minimum

  const server::JsonValue h = server::parse_json(chunks.front());
  EXPECT_EQ(h.find("query")->as_string(), "a -> b");
  EXPECT_TRUE(h.find("complete")->as_bool());
  const server::JsonValue t = server::parse_json(chunks.back());
  EXPECT_EQ(static_cast<std::size_t>(t.find("rendered")->as_int()),
            expect.size());
  EXPECT_FALSE(t.find("render_truncated")->as_bool());

  std::multiset<std::string> streamed;
  for (std::size_t i = 1; i + 1 < chunks.size(); ++i) {
    const server::JsonValue g = server::parse_json(chunks[i]);
    const std::int64_t wid = g.find("wid")->as_int();
    for (const server::JsonValue& o : g.find("incidents")->as_array()) {
      std::vector<std::int64_t> positions;
      for (const server::JsonValue& p : o.as_array()) {
        positions.push_back(p.as_int());
      }
      streamed.insert(fragment(wid, positions));
    }
  }
  EXPECT_EQ(streamed, expect);
  EXPECT_EQ(static_cast<std::size_t>(h.find("total")->as_int()),
            expect.size());
}

TEST(SubscribeTest, StreamedQueryRejectsNonBoolStreamFlag) {
  TestServer ts(small_log());
  server::HttpClient c = ts.client();
  EXPECT_EQ(
      c.post("/query", R"({"query": "a", "stream": "yes"})").status, 400);
}

// ----- incremental cache repair -------------------------------------------

TEST(SubscribeTest, CacheRepairServesByteIdenticalHits) {
  // Server A: cache on, with a subscription driving incremental repair.
  server::ServiceOptions cached;
  cached.cache_bytes = 1 << 20;
  TestServer a(std::nullopt, cached);
  server::HttpClient ca = a.client();
  // Server B: cache off — every /query is a fresh evaluation, the oracle.
  TestServer b(std::nullopt);
  server::HttpClient cb = b.client();

  const std::string q = R"({"query": "a -> b"})";
  ingest_instance(ca, {"a", "b"});
  ingest_instance(cb, {"a", "b"});
  ASSERT_EQ(ca.post("/query", q).status, 200);  // populate the cache
  subscribe(ca, "a -> b");

  for (const auto& acts : std::vector<std::vector<std::string>>{
           {"a", "x", "b"}, {"b"}, {"a", "b", "b"}}) {
    ingest_instance(ca, acts);
    ingest_instance(cb, acts);

    // The ingest repaired the cached entry in place: the next /query is a
    // HIT whose body is byte-identical to the oracle's fresh evaluation.
    const server::ClientResponse hit = ca.post("/query", q);
    ASSERT_EQ(hit.status, 200) << hit.body;
    ASSERT_NE(hit.header("x-wfq-cache"), nullptr);
    EXPECT_EQ(*hit.header("x-wfq-cache"), "hit") << hit.body;
    const server::ClientResponse fresh = cb.post("/query", q);
    ASSERT_EQ(fresh.status, 200) << fresh.body;
    const server::JsonValue vh = server::parse_json(hit.body);
    const server::JsonValue vf = server::parse_json(fresh.body);
    EXPECT_EQ(vh.find("incidents")->dump(), vf.find("incidents")->dump());
    EXPECT_EQ(vh.find("total")->as_int(), vf.find("total")->as_int());
    EXPECT_EQ(vh.find("complete")->as_bool(), vf.find("complete")->as_bool());
  }
  EXPECT_GE(stats_subscriptions(ca).find("cache_repairs")->as_int(), 3);
}

}  // namespace
}  // namespace wflog
