#include "log/slice.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "log/validate.h"
#include "test_util.h"
#include "workflow/workload.h"

namespace wflog {
namespace {

using testing::make_log;

bool well_formed(const Log& log) {
  const std::vector<LogRecord> records(log.begin(), log.end());
  return check_well_formed(records, log.interner()).empty();
}

TEST(SliceTest, FilterInstancesKeepsWholeInstances) {
  const Log log = make_log("a b ; c d ; e");
  const Log sliced = filter_instances(log, [](Wid w) { return w != 2; });
  EXPECT_EQ(sliced.wids(), (std::vector<Wid>{1, 3}));
  EXPECT_TRUE(well_formed(sliced));
  // lsns renumbered to 1..|L'|.
  for (std::size_t i = 1; i <= sliced.size(); ++i) {
    EXPECT_EQ(sliced.record(i).lsn, i);
  }
}

TEST(SliceTest, FilterPreservesWidAndIsLsn) {
  const Log log = make_log("a b ; c d");
  const Log sliced = keep_instances(log, std::vector<Wid>{2});
  EXPECT_EQ(sliced.wids(), (std::vector<Wid>{2}));
  EXPECT_EQ(sliced.record(1).is_lsn, 1u);
  EXPECT_EQ(sliced.record(2).is_lsn, 2u);
}

TEST(SliceTest, EmptySelectionRejected) {
  const Log log = make_log("a");
  EXPECT_THROW(filter_instances(log, [](Wid) { return false; }),
               ValidationError);
  EXPECT_THROW(keep_instances(log, std::vector<Wid>{99}), ValidationError);
}

TEST(SliceTest, SampleIsDeterministicAndNonEmpty) {
  const Log log = workload::random_process(40, 6);
  const Log a = sample_instances(log, 0.25, 9);
  const Log b = sample_instances(log, 0.25, 9);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_GT(a.wids().size(), 0u);
  EXPECT_LT(a.wids().size(), 40u);
  EXPECT_TRUE(well_formed(a));
}

TEST(SliceTest, SampleZeroFractionStillKeepsOne) {
  const Log log = make_log("a ; b ; c");
  const Log sliced = sample_instances(log, 0.0, 3);
  EXPECT_EQ(sliced.wids().size(), 1u);
}

TEST(SliceTest, TruncatePrefixKeepsValidity) {
  // Interleaved instances cut mid-flight must stay well-formed.
  const Log log = workload::clinic(20, 44);
  for (Lsn cut : {Lsn{1}, Lsn{5}, log.size() / 2, log.size()}) {
    const Log sliced = truncate_at(log, cut);
    EXPECT_EQ(sliced.size(), std::min<std::size_t>(cut, log.size()));
    EXPECT_TRUE(well_formed(sliced)) << "cut at " << cut;
  }
}

TEST(SliceTest, TruncateMakesInstancesIncomplete) {
  const Log log = make_log("a b c");
  const Log sliced = truncate_at(log, 3);  // START a b
  EXPECT_EQ(sliced.size(), 3u);
  // No END any more.
  for (const LogRecord& l : sliced) {
    EXPECT_NE(l.activity, sliced.end_symbol());
  }
}

TEST(SliceTest, TruncateZeroRejected) {
  const Log log = make_log("a");
  EXPECT_THROW(truncate_at(log, 0), ValidationError);
}

TEST(SliceTest, FilterByLength) {
  const Log log = make_log("a ; a b ; a b c d");
  // Lengths incl. sentinels: 3, 4, 6.
  const Log sliced = filter_by_length(log, 4, 5);
  EXPECT_EQ(sliced.wids(), (std::vector<Wid>{2}));
}

TEST(SliceTest, SliceThenQueryMatchesSubset) {
  const Log log = make_log("a b ; b a ; a b");
  const Log only_13 = keep_instances(log, std::vector<Wid>{1, 3});
  // "a -> b" matches instances 1 and 3 but not 2.
  const IncidentList full = testing::eval(log, "a -> b");
  const IncidentList sub = testing::eval(only_13, "a -> b");
  EXPECT_EQ(full.size(), 2u);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(full, sub);  // wid/is-lsn preserved -> identical incidents
}

}  // namespace
}  // namespace wflog
