#include "core/parser.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/printer.h"

namespace wflog {
namespace {

TEST(ParserTest, SingleAtom) {
  const PatternPtr p = parse_pattern("GetRefer");
  EXPECT_TRUE(p->is_atom());
  EXPECT_EQ(p->activity(), "GetRefer");
}

TEST(ParserTest, NegatedAtom) {
  for (const char* src : {"!CheckIn", "~CheckIn", "\xc2\xac" "CheckIn"}) {
    const PatternPtr p = parse_pattern(src);
    EXPECT_TRUE(p->is_atom()) << src;
    EXPECT_TRUE(p->negated()) << src;
    EXPECT_EQ(p->activity(), "CheckIn") << src;
  }
}

TEST(ParserTest, EachOperator) {
  EXPECT_EQ(parse_pattern("a . b")->op(), PatternOp::kConsecutive);
  EXPECT_EQ(parse_pattern("a -> b")->op(), PatternOp::kSequential);
  EXPECT_EQ(parse_pattern("a >> b")->op(), PatternOp::kSequential);
  EXPECT_EQ(parse_pattern("a | b")->op(), PatternOp::kChoice);
  EXPECT_EQ(parse_pattern("a & b")->op(), PatternOp::kParallel);
}

TEST(ParserTest, PaperGlyphAliases) {
  EXPECT_EQ(parse_pattern("a \xe2\x8a\x99 b")->op(),
            PatternOp::kConsecutive);  // ⊙
  EXPECT_EQ(parse_pattern("a \xe2\x89\xab b")->op(),
            PatternOp::kSequential);  // ≫
  EXPECT_EQ(parse_pattern("a \xe2\x8a\x97 b")->op(),
            PatternOp::kChoice);  // ⊗
  EXPECT_EQ(parse_pattern("a \xe2\x8a\x95 b")->op(),
            PatternOp::kParallel);  // ⊕
}

TEST(ParserTest, LeftAssociativity) {
  const PatternPtr p = parse_pattern("a -> b -> c");
  // ((a -> b) -> c)
  EXPECT_EQ(p->op(), PatternOp::kSequential);
  EXPECT_FALSE(p->left()->is_atom());
  EXPECT_TRUE(p->right()->is_atom());
  EXPECT_EQ(p->right()->activity(), "c");
}

TEST(ParserTest, ConsecutiveAndSequentialShareLevel) {
  // Theorem 4: '.'/'->' mix at one level, left-assoc: ((a . b) -> c).
  const PatternPtr p = parse_pattern("a . b -> c");
  EXPECT_EQ(p->op(), PatternOp::kSequential);
  EXPECT_EQ(p->left()->op(), PatternOp::kConsecutive);
}

TEST(ParserTest, PrecedenceChoiceLowest) {
  // a | b & c -> d   ==   a | (b & (c -> d))
  const PatternPtr p = parse_pattern("a | b & c -> d");
  EXPECT_EQ(p->op(), PatternOp::kChoice);
  EXPECT_EQ(p->right()->op(), PatternOp::kParallel);
  EXPECT_EQ(p->right()->right()->op(), PatternOp::kSequential);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  const PatternPtr p = parse_pattern("(a | b) & c");
  EXPECT_EQ(p->op(), PatternOp::kParallel);
  EXPECT_EQ(p->left()->op(), PatternOp::kChoice);
}

TEST(ParserTest, RightGroupingByParens) {
  const PatternPtr p =
      parse_pattern("SeeDoctor -> (UpdateRefer -> GetReimburse)");
  EXPECT_EQ(p->op(), PatternOp::kSequential);
  EXPECT_TRUE(p->left()->is_atom());
  EXPECT_EQ(p->right()->op(), PatternOp::kSequential);
}

TEST(ParserTest, NestedParens) {
  const PatternPtr p = parse_pattern("((a))");
  EXPECT_TRUE(p->is_atom());
}

TEST(ParserTest, PredicateOnAtom) {
  const PatternPtr p = parse_pattern("GetRefer[out.balance > 5000]");
  ASSERT_TRUE(p->is_atom());
  ASSERT_NE(p->predicate(), nullptr);
  EXPECT_EQ(p->predicate()->kind(), Predicate::Kind::kCompare);
  EXPECT_EQ(p->predicate()->sel(), MapSel::kOut);
  EXPECT_EQ(p->predicate()->attr(), "balance");
  EXPECT_EQ(p->predicate()->cmp(), CmpOp::kGt);
  EXPECT_EQ(p->predicate()->literal(), Value{std::int64_t{5000}});
}

TEST(ParserTest, PredicateWithStringContainingBracket) {
  const PatternPtr p = parse_pattern("a[note = \"odd ] bracket\"] -> b");
  EXPECT_EQ(p->op(), PatternOp::kSequential);
  ASSERT_NE(p->left()->predicate(), nullptr);
}

TEST(ParserTest, PredicateOnNegatedAtom) {
  const PatternPtr p = parse_pattern("!a[exists out.x]");
  EXPECT_TRUE(p->negated());
  EXPECT_NE(p->predicate(), nullptr);
}

TEST(ParserTest, ComplexQueryFromPaper) {
  const PatternPtr p = parse_pattern("UpdateRefer -> GetReimburse");
  EXPECT_EQ(p->op(), PatternOp::kSequential);
  EXPECT_EQ(p->left()->activity(), "UpdateRefer");
  EXPECT_EQ(p->right()->activity(), "GetReimburse");
}

TEST(ParserTest, WhitespaceInsensitive) {
  const PatternPtr a = parse_pattern("a->b|c");
  const PatternPtr b = parse_pattern("  a  ->  b  |  c  ");
  EXPECT_TRUE(a->structurally_equal(*b));
}

// ----- errors -----------------------------------------------------------

TEST(ParserErrorTest, EmptyInput) {
  EXPECT_THROW(parse_pattern(""), ParseError);
  EXPECT_THROW(parse_pattern("   "), ParseError);
}

TEST(ParserErrorTest, TrailingOperator) {
  EXPECT_THROW(parse_pattern("a ->"), ParseError);
  EXPECT_THROW(parse_pattern("a |"), ParseError);
}

TEST(ParserErrorTest, LeadingOperator) {
  EXPECT_THROW(parse_pattern("-> a"), ParseError);
}

TEST(ParserErrorTest, DoubleOperator) {
  EXPECT_THROW(parse_pattern("a -> -> b"), ParseError);
  EXPECT_THROW(parse_pattern("a | | b"), ParseError);
}

TEST(ParserErrorTest, AdjacentOperands) {
  EXPECT_THROW(parse_pattern("a b"), ParseError);
}

TEST(ParserErrorTest, UnbalancedParens) {
  EXPECT_THROW(parse_pattern("(a -> b"), ParseError);
  EXPECT_THROW(parse_pattern("a -> b)"), ParseError);
  EXPECT_THROW(parse_pattern("()"), ParseError);
}

TEST(ParserErrorTest, NegationOfParenthesizedPattern) {
  // Definition 3 allows only atomic negation.
  EXPECT_THROW(parse_pattern("!(a -> b)"), ParseError);
}

TEST(ParserErrorTest, UnterminatedPredicate) {
  EXPECT_THROW(parse_pattern("a[x > 5"), ParseError);
}

TEST(ParserErrorTest, DanglingPredicate) {
  EXPECT_THROW(parse_pattern("[x > 5]"), ParseError);
}

TEST(ParserErrorTest, BadPredicateContent) {
  EXPECT_THROW(parse_pattern("a[>>]"), ParseError);
  EXPECT_THROW(parse_pattern("a[x >]"), ParseError);
  EXPECT_THROW(parse_pattern("a[x 5]"), ParseError);
}

TEST(ParserErrorTest, UnknownCharacter) {
  EXPECT_THROW(parse_pattern("a %% b"), ParseError);
}

TEST(ParserErrorTest, SingleDashIsError) {
  EXPECT_THROW(parse_pattern("a - b"), ParseError);
}

TEST(ParserErrorTest, OffsetReported) {
  try {
    parse_pattern("abc $");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.offset(), 4u);
  }
}

// ----- round trip through printer --------------------------------------

TEST(ParserRoundTripTest, TextFormsStable) {
  const char* sources[] = {
      "a",
      "!a",
      "a -> b",
      "a . b . c",
      "a -> (b -> c)",
      "(a | b) & c",
      "a | b | c & d",
      "GetRefer[out.balance > 5000] -> GetReimburse",
      "(a . b) -> (c | !d)",
      "a & b & c",
  };
  for (const char* src : sources) {
    const PatternPtr p = parse_pattern(src);
    const std::string text = to_text(*p);
    const PatternPtr q = parse_pattern(text);
    EXPECT_TRUE(p->structurally_equal(*q)) << src << " -> " << text;
  }
}

}  // namespace
}  // namespace wflog
