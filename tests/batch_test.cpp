// Batch engine (core/batch.h, QueryEngine::run_batch):
//   * differential property: run_batch of N queries is bit-identical to N
//     independent runs — serial and parallel, with and without the
//     subpattern cache, on random logs and random patterns,
//   * the planner actually finds sharing (slots < nodes, nonzero hits),
//   * where clauses and duplicate queries behave exactly as in run().

#include "core/batch.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/engine.h"
#include "core/parallel_eval.h"
#include "core/rewriter.h"
#include "core/synthetic.h"
#include "test_util.h"
#include "workflow/workload.h"

namespace wflog {
namespace {

using testing::make_log;

// ----- evaluator-level differential --------------------------------------

class BatchDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BatchDifferentialTest, MatchesIndependentEvaluationEverywhere) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const Log log = workload::random_process(12 + rng.index(10), seed);
  const LogIndex index(log);

  RandomPatternOptions pat;
  pat.max_depth = 3;
  pat.predicate_probability = 0.1;
  std::vector<PatternPtr> patterns;
  for (int q = 0; q < 6; ++q) patterns.push_back(random_pattern(rng, pat));
  // Force overlap: one query is another's subtree, one is a duplicate.
  patterns.push_back(patterns[0]->is_atom() ? patterns[0]
                                            : patterns[0]->left());
  patterns.push_back(patterns[1]);

  const Evaluator ev(index);
  std::vector<IncidentSet> expected;
  for (const PatternPtr& p : patterns) expected.push_back(ev.evaluate(*p));

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const bool use_cache : {true, false}) {
      BatchOptions opts;
      opts.threads = threads;
      opts.use_cache = use_cache;
      BatchEvalStats stats;
      const std::vector<IncidentSet> got =
          evaluate_batch(patterns, index, opts, &stats);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t q = 0; q < expected.size(); ++q) {
        EXPECT_EQ(got[q], expected[q])
            << "seed=" << seed << " q=" << q << " threads=" << threads
            << " cache=" << use_cache;
      }
      EXPECT_EQ(stats.plan.num_queries, patterns.size());
      EXPECT_GT(stats.plan.total_nodes, stats.plan.distinct_slots)
          << "duplicate + subtree queries must share slots";
      if (use_cache) {
        // The duplicated query alone guarantees hits in every instance
        // that evaluates it.
        EXPECT_GT(stats.counters.cache_hits, 0u) << "seed=" << seed;
        EXPECT_GT(stats.counters.cache_bytes, 0u) << "seed=" << seed;
      } else {
        EXPECT_EQ(stats.counters.cache_hits, 0u);
        EXPECT_EQ(stats.counters.cache_misses, 0u);
      }
    }
  }
}

TEST_P(BatchDifferentialTest, AgreesUnderSpanWindowsAndNaiveOperators) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed ^ 0x5042);
  const Log log = workload::random_process(10, seed);
  const LogIndex index(log);

  RandomPatternOptions pat;
  pat.max_depth = 3;
  std::vector<PatternPtr> patterns;
  for (int q = 0; q < 5; ++q) patterns.push_back(random_pattern(rng, pat));

  for (const bool optimized_ops : {true, false}) {
    for (const IsLsn span : {IsLsn{0}, IsLsn{4}}) {
      EvalOptions eval;
      eval.use_optimized_operators = optimized_ops;
      eval.max_span = span;
      const Evaluator ev(index, eval);
      BatchOptions opts;
      opts.threads = 2;
      opts.eval = eval;
      const std::vector<IncidentSet> got =
          evaluate_batch(patterns, index, opts);
      for (std::size_t q = 0; q < patterns.size(); ++q) {
        EXPECT_EQ(got[q], ev.evaluate(*patterns[q]))
            << "seed=" << seed << " span=" << span
            << " opt=" << optimized_ops;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchDifferentialTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// ----- engine-level run_batch --------------------------------------------

TEST(RunBatchTest, MatchesRunPerQuery) {
  const Log log = workload::clinic(30, 0xBA7C);
  QueryEngine engine(log);
  const std::vector<std::string> queries = {
      "GetRefer -> GetReimburse",
      "SeeDoctor -> (UpdateRefer -> GetReimburse)",
      "(GetRefer -> GetReimburse) | (CheckIn . SeeDoctor)",
      "GetRefer -> GetReimburse",  // duplicate of [0]
      "CheckIn & SeeDoctor",
  };
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    for (const bool use_cache : {true, false}) {
      const BatchResult batch =
          engine.run_batch(queries, threads, use_cache);
      ASSERT_EQ(batch.num_queries(), queries.size());
      for (std::size_t q = 0; q < queries.size(); ++q) {
        const QueryResult solo = engine.run(queries[q]);
        EXPECT_EQ(batch.results[q].incidents, solo.incidents)
            << queries[q] << " threads=" << threads
            << " cache=" << use_cache;
        EXPECT_TRUE(
            batch.results[q].executed->structurally_equal(*solo.executed))
            << "optimizer must choose the same plan inside a batch";
      }
      if (use_cache) EXPECT_GT(batch.cache_hits(), 0u);
    }
  }
}

TEST(RunBatchTest, WhereClausesFilterExactlyAsRun) {
  const Log log = workload::procurement(25, 0xF00D);
  QueryEngine engine(log);
  const std::vector<std::string> queries = {
      "c:CreatePO -> p:Pay where c.out.poAmount > 1000",
      "c:CreatePO -> p:Pay",
      "c:CreatePO -> p:Pay where c.out.poAmount > 1000000000",
  };
  const BatchResult batch = engine.run_batch(queries, 2, true);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    EXPECT_EQ(batch.results[q].incidents,
              engine.run(queries[q]).incidents)
        << queries[q];
  }
  // Sanity: the unfiltered query dominates the filtered ones.
  EXPECT_LE(batch.results[0].total(), batch.results[1].total());
  EXPECT_EQ(batch.results[2].total(), 0u);
}

TEST(RunBatchTest, EmptyBatchAndSingleQueryAreFine) {
  const Log log = make_log("a b c ; a c b");
  QueryEngine engine(log);
  EXPECT_EQ(engine.run_batch(std::vector<std::string>{}).num_queries(), 0u);

  const std::vector<std::string> one = {"a -> b"};
  const BatchResult batch = engine.run_batch(one);
  ASSERT_EQ(batch.num_queries(), 1u);
  EXPECT_EQ(batch.results[0].incidents, engine.run("a -> b").incidents);
}

TEST(RunBatchTest, EquivalentlyWrittenQueriesShareSlots) {
  const Log log = make_log("a b c d ; a c b d ; d c b a");
  QueryEngine engine(log, QueryOptions{.optimize = false});
  // Same queries modulo Theorems 2/3: associativity + ⊗ commutativity.
  const std::vector<std::string> queries = {
      "(a -> b) -> (c | d)",
      "a -> (b -> (d | c))",
  };
  const BatchResult batch = engine.run_batch(queries);
  EXPECT_EQ(batch.results[0].incidents, batch.results[1].incidents);
  // 14 parsed nodes; 8 keys — a, b, c, d, c|d ≡ d|c (Theorem 3), the two
  // roots ≡ by chain flattening (Theorem 2), and the two distinct inner
  // partial chains a->b and b->(d|c).
  EXPECT_EQ(batch.stats.plan.total_nodes, 14u);
  EXPECT_EQ(batch.stats.plan.distinct_slots, 8u);
  EXPECT_GT(batch.cache_hits(), 0u);
}

// ----- canonical keys under random law applications ----------------------

TEST(CanonicalKeyPropertyTest, RotationAndCommutationChainsPreserveKeys) {
  // Theorems 2-4 as rewriter moves (rotate_left/rotate_right/commute):
  // random chains of them never change the canonical key, and the
  // resulting structurally-different tree evaluates identically — the
  // exact soundness contract the batch memo relies on.
  const Log log = workload::random_process(8, 0x1234);
  const LogIndex index(log);
  const Evaluator ev(index);
  Rng rng(0xCA11);

  RandomPatternOptions opts;
  opts.max_depth = 4;
  opts.negation_probability = 0.1;
  int rewritten_trials = 0;
  for (int trial = 0; trial < 120; ++trial) {
    PatternPtr p = random_pattern(rng, opts);
    const std::string key = canonical_key(*p);
    const IncidentSet expected = ev.evaluate(*p);

    PatternPtr q = p;
    bool moved = false;
    for (int step = 0; step < 6; ++step) {
      std::vector<rewrite::Step> moves;
      for (rewrite::Step& s : rewrite::neighbors(q)) {
        if (s.rule.starts_with("rotate") || s.rule.starts_with("commute")) {
          moves.push_back(std::move(s));
        }
      }
      if (moves.empty()) break;
      q = moves[rng.index(moves.size())].result;
      moved = true;
    }
    ASSERT_EQ(canonical_key(*q), key) << "trial=" << trial;
    if (moved && !q->structurally_equal(*p)) {
      ++rewritten_trials;
      EXPECT_EQ(ev.evaluate(*q), expected) << "key=" << key;
    }
  }
  // The generator must actually exercise the interesting case.
  EXPECT_GT(rewritten_trials, 20);
}

// ----- memo reuse across instances must NOT leak -------------------------

TEST(BatchMemoTest, ResultsAreInstanceLocal) {
  // Two instances with different occurrence sets: any cross-instance cache
  // leak would surface as wrong counts for one of them.
  const Log log = make_log("a b a b ; b a");
  const LogIndex index(log);
  std::vector<PatternPtr> patterns = {parse_pattern("a -> b"),
                                      parse_pattern("a -> b")};
  const std::vector<IncidentSet> got = evaluate_batch(patterns, index);
  const Evaluator ev(index);
  EXPECT_EQ(got[0], ev.evaluate(*patterns[0]));
  EXPECT_EQ(got[1], got[0]);
}

}  // namespace
}  // namespace wflog
