#!/usr/bin/env sh
# The tier-1 gate, as one command: configure + build + ctest in build/,
# then the sanitized preset (tests/run_sanitized.sh). Any failure stops
# the script with a nonzero exit.
#
# Usage: tests/run_ci.sh [ctest args...]   (extra args go to BOTH ctest runs)
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

# A hung recovery (torture harness, fault injection) must never wedge CI:
# every ctest invocation gets a hard per-test timeout.
timeout=300

echo "== tier 1: build + ctest (build/) =="
cmake -B "$repo/build" -S "$repo"
cmake --build "$repo/build" -j "$(nproc)"
ctest --test-dir "$repo/build" --output-on-failure -j "$(nproc)" \
  --timeout "$timeout" "$@"

echo "== tier 1b: robustness label (fault injection + crash torture) =="
ctest --test-dir "$repo/build" --output-on-failure -L robustness \
  --timeout "$timeout" "$@"

echo "== tier 1c: server label (HTTP daemon over live sockets) =="
ctest --test-dir "$repo/build" --output-on-failure -L server \
  --timeout "$timeout" "$@"

echo "== tier 1d: cache label (cross-request result cache) =="
ctest --test-dir "$repo/build" --output-on-failure -L cache \
  --timeout "$timeout" "$@"

echo "== tier 1e: bench_server repeated-query smoke (cache on vs off) =="
"$repo/build/bench/bench_server" repeat 4 50 50

echo "== tier 1e2: subscribe label (standing-query differential suite) =="
ctest --test-dir "$repo/build" --output-on-failure -L subscribe \
  --timeout "$timeout" "$@"

echo "== tier 1e3: standing-query smoke (wfqd + /subscribe over HTTP) =="
"$repo/tests/smoke_subscribe.sh" "$repo/build/examples/wfqd"

echo "== tier 1e4: bench_server standing-query smoke (push vs re-query) =="
"$repo/build/bench/bench_server" subscribe 4 20 50

echo "== tier 1f: shard label (scatter/gather differential harness) =="
ctest --test-dir "$repo/build" --output-on-failure -L shard \
  --timeout "$timeout" "$@"

echo "== tier 1g: observability smoke (wfqd + access log + /debug/slow) =="
"$repo/tests/smoke_observability.sh" "$repo/build/examples/wfqd"

echo "== tier 1h: torture label (socket + store chaos harness) =="
ctest --test-dir "$repo/build" --output-on-failure -L torture \
  --timeout "$timeout" "$@"

echo "== tier 1i: segfmt label (v2 segments, zone maps, compaction) =="
ctest --test-dir "$repo/build" --output-on-failure -L segfmt \
  --timeout "$timeout" "$@"

echo "== tier 1j: bench_store v1-vs-v2 smoke (compression + pruned scan) =="
"$repo/build/bench/bench_store" \
  --benchmark_filter='BM_StoreClinic.*/1000$' \
  --benchmark_min_time=0.01

echo "== tier 2: AddressSanitizer + UBSan (build-sanitize/) =="
"$repo/tests/run_sanitized.sh" --timeout "$timeout" "$@"

echo "== tier 2b: robustness label under ASan/UBSan =="
(cd "$repo" && ctest --preset asan-ubsan -L robustness --timeout "$timeout" "$@")

echo "== tier 2c: server label under ASan/UBSan =="
(cd "$repo" && ctest --preset asan-ubsan -L server --timeout "$timeout" "$@")

echo "== tier 2d: cache label under ASan/UBSan =="
(cd "$repo" && ctest --preset asan-ubsan -L cache --timeout "$timeout" "$@")

echo "== tier 2e: bench_server repeated-query smoke under ASan/UBSan =="
# The sanitize preset builds tests only; flip the bench tree on for the
# one binary this smoke needs.
cmake --preset asan-ubsan -S "$repo" -DWFLOG_BUILD_BENCH=ON
cmake --build --preset asan-ubsan -j "$(nproc)" --target bench_server
ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
  "$repo/build-sanitize/bench/bench_server" repeat 2 20 20

echo "== tier 2e2: subscribe label under ASan/UBSan =="
(cd "$repo" && ctest --preset asan-ubsan -L subscribe --timeout "$timeout" "$@")

echo "== tier 2f: shard label under ASan/UBSan =="
(cd "$repo" && ctest --preset asan-ubsan -L shard --timeout "$timeout" "$@")

echo "== tier 2g: segfmt label under ASan/UBSan =="
(cd "$repo" && ctest --preset asan-ubsan -L segfmt --timeout "$timeout" "$@")

echo "== tier 3: ThreadSanitizer — shard pool, parallel scheduler, server =="
"$repo/tests/run_sanitized.sh" thread -L 'shard|parallel|server' \
  --timeout "$timeout" "$@"

echo "== tier 3a2: ThreadSanitizer — subscribe (standing-query delivery) =="
"$repo/tests/run_sanitized.sh" thread -L subscribe --timeout "$timeout" "$@"

echo "== tier 3b: ThreadSanitizer — chaos torture harness =="
"$repo/tests/run_sanitized.sh" thread -L torture --timeout "$timeout" "$@"

echo "== tier 3c: ThreadSanitizer — segfmt (store counters under readers) =="
"$repo/tests/run_sanitized.sh" thread -L segfmt --timeout "$timeout" "$@"

echo "== CI green =="
