#!/usr/bin/env sh
# The tier-1 gate, as one command: configure + build + ctest in build/,
# then the sanitized preset (tests/run_sanitized.sh). Any failure stops
# the script with a nonzero exit.
#
# Usage: tests/run_ci.sh [ctest args...]   (extra args go to BOTH ctest runs)
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

# A hung recovery (torture harness, fault injection) must never wedge CI:
# every ctest invocation gets a hard per-test timeout.
timeout=300

echo "== tier 1: build + ctest (build/) =="
cmake -B "$repo/build" -S "$repo"
cmake --build "$repo/build" -j "$(nproc)"
ctest --test-dir "$repo/build" --output-on-failure -j "$(nproc)" \
  --timeout "$timeout" "$@"

echo "== tier 1b: robustness label (fault injection + crash torture) =="
ctest --test-dir "$repo/build" --output-on-failure -L robustness \
  --timeout "$timeout" "$@"

echo "== tier 1c: server label (HTTP daemon over live sockets) =="
ctest --test-dir "$repo/build" --output-on-failure -L server \
  --timeout "$timeout" "$@"

echo "== tier 2: AddressSanitizer + UBSan (build-sanitize/) =="
"$repo/tests/run_sanitized.sh" --timeout "$timeout" "$@"

echo "== tier 2b: robustness label under ASan/UBSan =="
(cd "$repo" && ctest --preset asan-ubsan -L robustness --timeout "$timeout" "$@")

echo "== tier 2c: server label under ASan/UBSan =="
(cd "$repo" && ctest --preset asan-ubsan -L server --timeout "$timeout" "$@")

echo "== CI green =="
