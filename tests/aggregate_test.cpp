#include "core/aggregate.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "test_util.h"
#include "workflow/clinic.h"

namespace wflog {
namespace {

using testing::inc;
using testing::make_log;

IncidentSet sample_set() {
  IncidentSet set;
  set.add_group(1, {inc(1, {2}), inc(1, {3})});
  set.add_group(3, {inc(3, {2})});
  return set;
}

TEST(AggregateTest, IncidentsPerInstance) {
  const auto counts = incidents_per_instance(sample_set());
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].wid, 1u);
  EXPECT_EQ(counts[0].incidents, 2u);
  EXPECT_EQ(counts[1].wid, 3u);
  EXPECT_EQ(counts[1].incidents, 1u);
}

TEST(AggregateTest, InstancesWithMatch) {
  EXPECT_EQ(instances_with_match(sample_set()), 2u);
  EXPECT_EQ(instances_with_match(IncidentSet{}), 0u);
}

TEST(AggregateTest, GroupByAttributeOnFigure3) {
  // Group GetRefer incidents by the hospital that issued the referral.
  const Log log = figure3_log();
  QueryEngine engine(log);
  const QueryResult r = engine.run("GetRefer");
  const auto groups = group_by_attribute(
      r.incidents, engine.index(),
      GroupKey{"GetRefer", MapSel::kOut, "hospital"});
  ASSERT_EQ(groups.size(), 2u);  // sorted by key value
  EXPECT_EQ(groups[0].key, Value{"People Hospital"});
  EXPECT_EQ(groups[0].instances, 1u);
  EXPECT_EQ(groups[1].key, Value{"Public Hospital"});
  EXPECT_EQ(groups[1].instances, 2u);
}

TEST(AggregateTest, GroupByMissingAttributeFallsToNull) {
  const Log log = make_log("a b ; a");
  QueryEngine engine(log);
  const QueryResult r = engine.run("a");
  const auto groups = group_by_attribute(
      r.incidents, engine.index(), GroupKey{"a", MapSel::kOut, "ghost"});
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_TRUE(groups[0].key.is_null());
  EXPECT_EQ(groups[0].instances, 2u);
}

TEST(AggregateTest, GroupByCountsIncidentsAndInstances) {
  const Log log = clinic_log(100, 3);
  QueryEngine engine(log);
  const QueryResult r = engine.run("SeeDoctor");
  const auto groups = group_by_attribute(
      r.incidents, engine.index(), GroupKey{"GetRefer", MapSel::kOut, "year"});
  std::size_t instances = 0;
  std::size_t incidents = 0;
  for (const GroupCount& g : groups) {
    instances += g.instances;
    incidents += g.incidents;
    EXPECT_FALSE(g.key.is_null());
  }
  EXPECT_EQ(instances, instances_with_match(r.incidents));
  EXPECT_EQ(incidents, r.incidents.total());
  EXPECT_GE(groups.size(), 2u);  // 4 possible years; 100 draws
}

TEST(AggregateTest, PaperMotivatingQueryStudentsPerYearHighBalance) {
  // "How many students every year get referrals with balance > $5,000?"
  const Log log = clinic_log(300, 17);
  QueryEngine engine(log);
  const QueryResult r = engine.run("GetRefer[out.balance > 5000]");
  const auto groups = group_by_attribute(
      r.incidents, engine.index(), GroupKey{"GetRefer", MapSel::kOut, "year"});
  // 8000-budget referrals exist (1/5 of draws), spread over years.
  EXPECT_GT(r.incidents.total(), 0u);
  for (const GroupCount& g : groups) {
    EXPECT_GE(g.key.as_int(), 2014);
    EXPECT_LE(g.key.as_int(), 2017);
  }
}

TEST(AggregateTest, RenderGroupsAligned) {
  std::vector<GroupCount> groups{{Value{std::int64_t{2014}}, 3, 7},
                                 {Value{std::int64_t{2015}}, 11, 30}};
  const std::string table = render_groups(groups);
  EXPECT_NE(table.find("group"), std::string::npos);
  EXPECT_NE(table.find("2014"), std::string::npos);
  EXPECT_NE(table.find("30"), std::string::npos);
}

}  // namespace
}  // namespace wflog
