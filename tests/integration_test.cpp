// Cross-module integration: simulate -> serialize -> reload -> index ->
// query -> aggregate, and end-to-end consistency checks between the naive
// and optimized configurations on realistic workloads.

#include <gtest/gtest.h>

#include <sstream>

#include "core/aggregate.h"
#include "core/engine.h"
#include "core/printer.h"
#include "log/io_csv.h"
#include "log/io_jsonl.h"
#include "log/stats.h"
#include "workflow/clinic.h"
#include "workflow/workload.h"

namespace wflog {
namespace {

TEST(IntegrationTest, SimulateSerializeReloadQuery) {
  const Log original = workload::clinic(60, 31);
  // Round-trip through CSV.
  const Log reloaded = csv_to_log(to_csv(original));
  ASSERT_EQ(original.size(), reloaded.size());

  QueryEngine a(original);
  QueryEngine b(reloaded);
  const char* queries[] = {
      "UpdateRefer -> GetReimburse",
      "GetReimburse -> UpdateRefer",
      "SeeDoctor . PayTreatment",
      "GetRefer[out.balance >= 5000]",
      "(CompleteRefer | TerminateRefer)",
  };
  for (const char* q : queries) {
    EXPECT_EQ(a.run(q).incidents, b.run(q).incidents) << q;
  }
}

TEST(IntegrationTest, JsonlAndCsvAgreeOnQueries) {
  const Log original = workload::clinic(40, 77);
  const Log via_csv = csv_to_log(to_csv(original));
  const Log via_jsonl = jsonl_to_log(to_jsonl(original));
  QueryEngine a(via_csv);
  QueryEngine b(via_jsonl);
  EXPECT_EQ(a.run("GetRefer -> GetReimburse").incidents,
            b.run("GetRefer -> GetReimburse").incidents);
  EXPECT_EQ(a.count("SeeDoctor"), b.count("SeeDoctor"));
}

TEST(IntegrationTest, FraudAuditPipeline) {
  // The paper's §6 application: detect anomalous behaviour with ad hoc
  // queries. Seeded fraud must be found; per-instance counts must match
  // instance-level recomputation.
  ClinicOptions opts;
  opts.fraud_rate = 0.2;
  const Log log = clinic_log(150, 123, opts);
  QueryEngine engine(log);

  const QueryResult anomalous = engine.run("GetReimburse -> UpdateRefer");
  EXPECT_GT(anomalous.total(), 0u);

  const auto per_instance = incidents_per_instance(anomalous.incidents);
  std::size_t sum = 0;
  LogIndex index(log);
  Evaluator ev(index);
  for (const InstanceCount& ic : per_instance) {
    const IncidentList one =
        ev.evaluate_instance(*anomalous.executed, ic.wid);
    EXPECT_EQ(one.size(), ic.incidents);
    sum += one.size();
  }
  EXPECT_EQ(sum, anomalous.total());
}

TEST(IntegrationTest, ChainWorkloadHasPredictableCounts) {
  // 10 instances of (A0 A1 A2) x 3: per instance, A0 occurs 3 times, and
  // "A0 -> A1" pairs every A0 with every later A1: 3+3+... = 6 per
  // instance? A0 at r, A1 later: positions A0: 2,5,8; A1: 3,6,9 ->
  // pairs (2,3)(2,6)(2,9)(5,6)(5,9)(8,9) = 6.
  const Log log = workload::chain(10, 3, 3);
  QueryEngine engine(log);
  EXPECT_EQ(engine.count("A0"), 30u);
  EXPECT_EQ(engine.count("A0 -> A1"), 60u);
  EXPECT_EQ(engine.count("A0 . A1"), 30u);
  // Consecutive A2.A0 across repeats: 2 per instance.
  EXPECT_EQ(engine.count("A2 . A0"), 20u);
}

TEST(IntegrationTest, StatsMatchEngineView) {
  const Log log = workload::random_process(25, 5);
  const LogStats stats = compute_stats(log);
  QueryEngine engine(log);
  EXPECT_EQ(stats.num_instances, log.wids().size());
  EXPECT_EQ(engine.count("START"), stats.num_instances);
  EXPECT_EQ(engine.count("END"), stats.num_completed);
}

TEST(IntegrationTest, NaiveOptimizedAndRewrittenAllAgreeOnClinic) {
  const Log log = workload::clinic(30, 55);
  LogIndex index(log);
  EvalOptions naive_opts;
  naive_opts.use_optimized_operators = false;
  Evaluator naive(index, naive_opts);
  Evaluator fast(index);
  const CostModel model(index);

  const char* queries[] = {
      "SeeDoctor -> (UpdateRefer -> GetReimburse)",
      "(SeeDoctor -> UpdateRefer) -> GetReimburse",
      "(PayTreatment | UpdateRefer) & SeeDoctor",
      "GetRefer . CheckIn",
      "!UpdateRefer . GetReimburse",
  };
  for (const char* q : queries) {
    const PatternPtr p = parse_pattern(q);
    const IncidentList expected = naive.evaluate(*p).flatten();
    EXPECT_EQ(fast.evaluate(*p).flatten(), expected) << q;
    const OptimizeResult opt = optimize(p, model);
    EXPECT_EQ(fast.evaluate(*opt.pattern).flatten(), expected)
        << q << " optimized to " << to_text(*opt.pattern);
  }
}

TEST(IntegrationTest, Theorem4EquivalenceOnRealWorkload) {
  const Log log = workload::clinic(40, 8);
  QueryEngine engine(log);
  EXPECT_EQ(engine.run("GetRefer . CheckIn -> GetReimburse").incidents,
            engine.run("GetRefer . (CheckIn -> GetReimburse)").incidents);
}

TEST(IntegrationTest, LargeLogSmokeTest) {
  const Log log = workload::clinic(1000, 99);
  EXPECT_GT(log.size(), 5000u);
  QueryEngine engine(log);
  const QueryResult r = engine.run("UpdateRefer -> GetReimburse");
  EXPECT_GT(r.total(), 0u);
  // Existence query must agree with full enumeration.
  EXPECT_EQ(engine.exists("UpdateRefer -> GetReimburse"), r.any());
}

}  // namespace
}  // namespace wflog
