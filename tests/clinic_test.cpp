#include "workflow/clinic.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "log/stats.h"
#include "log/validate.h"

namespace wflog {
namespace {

TEST(Figure3LogTest, Exactly20Records3Instances) {
  const Log log = figure3_log();
  EXPECT_EQ(log.size(), 20u);
  EXPECT_EQ(log.wids(), (std::vector<Wid>{1, 2, 3}));
}

TEST(Figure3LogTest, WellFormed) {
  const Log log = figure3_log();
  const std::vector<LogRecord> records(log.begin(), log.end());
  EXPECT_TRUE(check_well_formed(records, log.interner()).empty());
}

TEST(Figure3LogTest, RecordDetailsMatchPaperRows) {
  const Log log = figure3_log();
  const Interner& in = log.interner();
  struct Row {
    Lsn lsn;
    Wid wid;
    IsLsn is_lsn;
    const char* activity;
  };
  const Row rows[] = {
      {1, 1, 1, "START"},        {2, 2, 1, "START"},
      {3, 1, 2, "GetRefer"},     {4, 1, 3, "CheckIn"},
      {5, 2, 2, "GetRefer"},     {6, 3, 1, "START"},
      {7, 3, 2, "GetRefer"},     {8, 2, 3, "CheckIn"},
      {9, 1, 4, "SeeDoctor"},    {10, 1, 5, "PayTreatment"},
      {11, 1, 6, "SeeDoctor"},   {12, 1, 7, "PayTreatment"},
      {13, 2, 4, "SeeDoctor"},   {14, 2, 5, "UpdateRefer"},
      {15, 1, 8, "GetReimburse"}, {16, 1, 9, "CompleteRefer"},
      {17, 2, 6, "SeeDoctor"},   {18, 2, 7, "PayTreatment"},
      {19, 2, 8, "TakeTreatment"}, {20, 2, 9, "GetReimburse"},
  };
  for (const Row& r : rows) {
    const LogRecord& l = log.record(r.lsn);
    EXPECT_EQ(l.wid, r.wid) << "lsn " << r.lsn;
    EXPECT_EQ(l.is_lsn, r.is_lsn) << "lsn " << r.lsn;
    EXPECT_EQ(log.activity_name(l.activity), r.activity) << "lsn " << r.lsn;
  }
  // Spot-check attribute data of l14 (the balance update to 5000).
  const LogRecord& l14 = log.record(14);
  EXPECT_EQ(*l14.in.get(in.find("balance")), Value{std::int64_t{2000}});
  EXPECT_EQ(*l14.out.get(in.find("balance")), Value{std::int64_t{5000}});
}

TEST(ClinicModelTest, SimulatesToValidLog) {
  const Log log = clinic_log(100, 7);
  EXPECT_EQ(log.wids().size(), 100u);
  const std::vector<LogRecord> records(log.begin(), log.end());
  EXPECT_TRUE(check_well_formed(records, log.interner()).empty());
}

TEST(ClinicModelTest, EveryReferralStartsWithGetReferCheckIn) {
  const Log log = clinic_log(50, 21);
  const LogIndex index(log);
  const Symbol get_refer = log.activity_symbol("GetRefer");
  const Symbol check_in = log.activity_symbol("CheckIn");
  for (Wid wid : log.wids()) {
    const auto& gr = index.occurrences(wid, get_refer);
    const auto& ci = index.occurrences(wid, check_in);
    ASSERT_EQ(gr.size(), 1u);
    ASSERT_EQ(ci.size(), 1u);
    EXPECT_EQ(gr[0], 2u);
    EXPECT_EQ(ci[0], 3u);
  }
}

TEST(ClinicModelTest, BalancesArePositiveBudgets) {
  const Log log = clinic_log(50, 33);
  const Interner& in = log.interner();
  const Symbol balance = in.find("balance");
  const Symbol get_refer = log.activity_symbol("GetRefer");
  for (const LogRecord& l : log) {
    if (l.activity != get_refer) continue;
    const Value* v = l.out.get(balance);
    ASSERT_NE(v, nullptr);
    EXPECT_GT(v->as_int(), 0);
  }
}

TEST(ClinicModelTest, FraudPathPresentAtConfiguredRate) {
  ClinicOptions opts;
  opts.fraud_rate = 0.5;  // exaggerate to make the signal deterministic
  const Log log = clinic_log(200, 13, opts);
  QueryEngine engine(log);
  // Reimbursement followed by a later referral update: the anomaly.
  EXPECT_TRUE(engine.exists("GetReimburse -> UpdateRefer"));
}

TEST(ClinicModelTest, FraudPathAbsentWhenDisabled) {
  ClinicOptions opts;
  opts.fraud_rate = 0.0;
  const Log log = clinic_log(200, 13, opts);
  QueryEngine engine(log);
  EXPECT_FALSE(engine.exists("GetReimburse -> UpdateRefer"));
}

TEST(ClinicModelTest, ReimburseRequiresPriorCheckIn) {
  const Log log = clinic_log(100, 5);
  QueryEngine engine(log);
  const std::size_t reimburses = engine.count("GetReimburse");
  const std::size_t ordered = engine.count("CheckIn -> GetReimburse");
  EXPECT_EQ(reimburses, ordered);
}

TEST(ClinicModelTest, ActivityAlphabetMatchesExample2) {
  const WorkflowModel m = clinic_model();
  const auto names = m.activities();
  const char* expected[] = {"CheckIn",      "CompleteRefer", "GetRefer",
                            "GetReimburse", "PayTreatment",  "SeeDoctor",
                            "TakeTreatment", "TerminateRefer",
                            "UpdateRefer"};
  ASSERT_EQ(names.size(), std::size(expected));
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(names[i], expected[i]);
  }
}

}  // namespace
}  // namespace wflog
