#include "core/join.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/engine.h"
#include "test_util.h"
#include "workflow/clinic.h"
#include "workflow/procurement.h"

namespace wflog {
namespace {

Log money_log() {
  LogBuilder b;
  // Instance 1: balance grows between update and reimburse.
  Wid w = b.begin_instance();
  b.append(w, "Update", {}, {{"balance", Value{std::int64_t{5000}}}});
  b.append(w, "Reimburse", {{"balance", Value{std::int64_t{5000}}}},
           {{"amount", Value{std::int64_t{5000}}}});
  b.end_instance(w);
  // Instance 2: amounts differ.
  w = b.begin_instance();
  b.append(w, "Update", {}, {{"balance", Value{std::int64_t{1000}}}});
  b.append(w, "Reimburse", {{"balance", Value{std::int64_t{1000}}}},
           {{"amount", Value{std::int64_t{400}}}});
  b.end_instance(w);
  return b.build();
}

// ----- parsing -----------------------------------------------------------

TEST(JoinParseTest, QueryWithoutWhere) {
  const ParsedQuery q = parse_query("a -> b");
  EXPECT_EQ(q.where, nullptr);
  EXPECT_EQ(q.pattern->op(), PatternOp::kSequential);
}

TEST(JoinParseTest, QueryWithWhere) {
  const ParsedQuery q =
      parse_query("x:a -> y:b where x.out.v > y.in.v && x.out.v != 3");
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->variables(), (std::vector<std::string>{"x", "y"}));
}

TEST(JoinParseTest, WhereInsidePredicateNotConfused) {
  // "where" inside a [ ] predicate string must not split the query.
  const ParsedQuery q = parse_query("x:a[note = \"where\"] -> y:b");
  EXPECT_EQ(q.where, nullptr);
}

TEST(JoinParseTest, WherePrefixedIdentifierNotConfused) {
  const ParsedQuery q = parse_query("whereabouts -> x:b where x.v = 1");
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.pattern->left()->activity(), "whereabouts");
}

TEST(JoinParseTest, UnboundVariableRejected) {
  EXPECT_THROW(parse_query("x:a -> b where y.v = 1"), QueryError);
}

TEST(JoinParseTest, MalformedWhereRejected) {
  EXPECT_THROW(parse_query("x:a where x.v >"), ParseError);
  EXPECT_THROW(parse_query("x:a where x"), ParseError);
  EXPECT_THROW(parse_query("x:a where x.v = 1 extra.junk"), ParseError);
}

TEST(JoinParseTest, ToStringRoundTrips) {
  const char* exprs[] = {
      "x.out.balance > 5000",
      "x.v = y.v",
      "(x.in.a <= y.out.b || !(x.c != 2.5))",
      "x.s = \"quoted text\"",
      "x.flag = true && y.n = null",
  };
  for (const char* src : exprs) {
    const JoinExprPtr e = parse_join_expr(src);
    const JoinExprPtr back = parse_join_expr(e->to_string());
    EXPECT_EQ(back->to_string(), e->to_string()) << src;
  }
}

// ----- evaluation ----------------------------------------------------------

TEST(JoinEvalTest, LiteralComparisonFiltersIncidents) {
  const Log log = money_log();
  QueryEngine engine(log);
  const QueryResult all = engine.run("u:Update -> r:Reimburse");
  EXPECT_EQ(all.total(), 2u);
  const QueryResult rich =
      engine.run("u:Update -> r:Reimburse where u.out.balance > 2000");
  ASSERT_EQ(rich.total(), 1u);
  EXPECT_EQ(rich.incidents.groups()[0].wid, 1u);
}

TEST(JoinEvalTest, RefToRefComparison) {
  const Log log = money_log();
  QueryEngine engine(log);
  // Full reimbursement: amount equals the balance read.
  const QueryResult full = engine.run(
      "u:Update -> r:Reimburse where r.out.amount = r.in.balance");
  ASSERT_EQ(full.total(), 1u);
  EXPECT_EQ(full.incidents.groups()[0].wid, 1u);
  // Partial reimbursement.
  const QueryResult partial = engine.run(
      "u:Update -> r:Reimburse where r.out.amount < r.in.balance");
  ASSERT_EQ(partial.total(), 1u);
  EXPECT_EQ(partial.incidents.groups()[0].wid, 2u);
}

TEST(JoinEvalTest, CrossRecordJoin) {
  const Log log = money_log();
  QueryEngine engine(log);
  // The balance written by Update is the balance read by Reimburse.
  EXPECT_EQ(engine
                .run("u:Update -> r:Reimburse where "
                     "u.out.balance = r.in.balance")
                .total(),
            2u);
  EXPECT_EQ(engine
                .run("u:Update -> r:Reimburse where "
                     "u.out.balance != r.in.balance")
                .total(),
            0u);
}

TEST(JoinEvalTest, MissingAttributeFailsComparison) {
  const Log log = money_log();
  QueryEngine engine(log);
  EXPECT_EQ(engine.run("u:Update where u.out.ghost = 1").total(), 0u);
  EXPECT_EQ(engine.run("u:Update where u.in.balance > 0").total(), 0u);
}

TEST(JoinEvalTest, LogicalConnectives) {
  const Log log = money_log();
  QueryEngine engine(log);
  EXPECT_EQ(engine
                .run("u:Update where u.out.balance = 5000 || "
                     "u.out.balance = 1000")
                .total(),
            2u);
  EXPECT_EQ(
      engine.run("u:Update where !(u.out.balance = 5000)").total(), 1u);
}

TEST(JoinEvalTest, ExistentialOverAssignments) {
  // Pattern u:a -> v:a on records with values 1,2,3: incident {1,2,3}
  // admits several assignments; the where clause holds for SOME of them.
  LogBuilder b;
  const Wid w = b.begin_instance();
  for (std::int64_t v : {1, 2, 3}) {
    b.append(w, "a", {}, {{"v", Value{v}}});
  }
  b.end_instance(w);
  const Log log = b.build();
  QueryEngine engine(log);
  // Strictly decreasing values never happen (positions ordered).
  EXPECT_EQ(engine.run("u:a -> v:a where u.out.v > v.out.v").total(), 0u);
  // Gap of exactly 2 exists only for the (1,3) pair.
  const QueryResult gap2 =
      engine.run("u:a -> v:a where v.out.v = 3 && u.out.v = 1");
  ASSERT_EQ(gap2.total(), 1u);
  EXPECT_EQ(gap2.incidents.flatten()[0].positions(),
            (std::vector<IsLsn>{2, 4}));
}

TEST(JoinEvalTest, DuplicatePaymentAmountJoin) {
  // The P2P control "same amount paid twice" needs a cross-record join.
  ProcurementOptions opts;
  opts.duplicate_pay_rate = 0.35;
  const Log log = procurement_log(150, 21, opts);
  QueryEngine engine(log);
  const std::size_t same_amount =
      engine.run("p:Pay -> q:Pay where p.out.paidAmount = q.out.paidAmount")
          .total();
  const std::size_t any_pair = engine.count("Pay -> Pay");
  EXPECT_GT(same_amount, 0u);
  // Duplicates in this model always repeat the PO amount.
  EXPECT_EQ(same_amount, any_pair);
}

TEST(JoinEvalTest, BalanceGrewBetweenUpdateAndReimburse) {
  // The clinic fraud pattern refined with data: the update increased the
  // balance beyond what reimbursement then drained.
  const Log log = clinic_log(100, 71);
  QueryEngine engine(log);
  const QueryResult r = engine.run(
      "u:UpdateRefer -> g:GetReimburse where u.out.balance > g.in.balance");
  // Sanity: subset of the unfiltered pattern.
  EXPECT_LE(r.total(), engine.count("UpdateRefer -> GetReimburse"));
}

TEST(JoinEvalTest, WhereRecordedInResult) {
  const Log log = money_log();
  QueryEngine engine(log);
  const QueryResult r = engine.run("u:Update where u.out.balance > 0");
  ASSERT_NE(r.where, nullptr);
  EXPECT_EQ(r.where->to_string(), "u.out.balance > 0");
}

TEST(JoinEvalTest, OptimizerDoesNotBreakWhere) {
  const Log log = clinic_log(50, 33);
  QueryOptions no_opt;
  no_opt.optimize = false;
  QueryEngine opt(log);
  QueryEngine raw(log, no_opt);
  const char* q =
      "(s:SeeDoctor -> u:UpdateRefer) -> g:GetReimburse "
      "where u.out.balance >= g.in.balance";
  EXPECT_EQ(opt.run(q).incidents, raw.run(q).incidents);
}

TEST(JoinEvalTest, ExistsAndCountAcceptWhere) {
  const Log log = money_log();
  QueryEngine engine(log);
  EXPECT_TRUE(engine.exists("u:Update where u.out.balance > 2000"));
  EXPECT_FALSE(engine.exists("u:Update where u.out.balance > 9000"));
  EXPECT_EQ(engine.count("u:Update where u.out.balance >= 1000"), 2u);
  EXPECT_EQ(engine.count("u:Update where u.out.balance > 2000"), 1u);
}

// ----- derive_all_bindings -------------------------------------------------

TEST(DeriveAllTest, EnumeratesEveryAssignment) {
  const Log log = testing::make_log("a a a");
  const LogIndex index(log);
  const PatternPtr p = parse_pattern("u:a -> v:a");
  // Incident {2,4}: only one assignment (u=2, v=4).
  const auto one = derive_all_bindings(*p, testing::inc(1, {2, 4}), index);
  ASSERT_EQ(one.size(), 1u);
  // Pattern u:a & v:a on {2,4}: two assignments (order swaps).
  const PatternPtr par = parse_pattern("u:a & v:a");
  const auto two = derive_all_bindings(*par, testing::inc(1, {2, 4}), index);
  EXPECT_EQ(two.size(), 2u);
}

TEST(DeriveAllTest, LimitRespected) {
  const Log log = testing::make_log("a a a a a");
  const LogIndex index(log);
  const PatternPtr par = parse_pattern("u:a & v:a & w:a");
  const auto capped =
      derive_all_bindings(*par, testing::inc(1, {2, 3, 4}), index, 3);
  EXPECT_EQ(capped.size(), 3u);  // 3! = 6 assignments exist
}

}  // namespace
}  // namespace wflog
