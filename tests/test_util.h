#pragma once

// Shared helpers for the test suite.

#include <string>
#include <string_view>
#include <vector>

#include "common/text.h"
#include "core/evaluator.h"
#include "core/parser.h"
#include "log/builder.h"
#include "log/index.h"

namespace wflog::testing {

/// Builds a log from a compact spec: instances separated by ';', activity
/// names by whitespace. Every instance gets the START sentinel; instances
/// are ENDed unless their last token is "...".
///
///   make_log("a b c ; a c b")      -> two completed instances
///   make_log("a b ...")            -> one incomplete instance
///
/// NOTE: START occupies is-lsn 1, so the first named activity of each
/// instance sits at is-lsn 2.
inline Log make_log(std::string_view spec) {
  LogBuilder b;
  for (std::string_view inst : split(spec, ';')) {
    inst = trim(inst);
    const Wid wid = b.begin_instance();
    bool ended = true;
    for (std::string_view tok : split(inst, ' ')) {
      tok = trim(tok);
      if (tok.empty()) continue;
      if (tok == "...") {
        ended = false;
        break;
      }
      b.append(wid, tok);
    }
    if (ended) b.end_instance(wid);
  }
  return b.build();
}

/// Parses and evaluates in one step, returning the flattened canonical
/// incident list.
inline IncidentList eval(const Log& log, std::string_view pattern,
                         EvalOptions opts = {}) {
  LogIndex index(log);
  Evaluator ev(index, opts);
  return ev.evaluate(*parse_pattern(pattern)).flatten();
}

/// Compact rendering of an incident: "w1:2,4" (wid then is-lsns).
inline std::string brief(const Incident& o) {
  std::string s = "w" + std::to_string(o.wid()) + ":";
  for (std::size_t i = 0; i < o.positions().size(); ++i) {
    if (i != 0) s += ",";
    s += std::to_string(o.positions()[i]);
  }
  return s;
}

inline std::vector<std::string> briefs(const IncidentList& list) {
  std::vector<std::string> out;
  out.reserve(list.size());
  for (const Incident& o : list) out.push_back(brief(o));
  return out;
}

/// Builds an incident from explicit positions (must be sorted ascending).
inline Incident inc(Wid wid, std::initializer_list<IsLsn> positions) {
  Incident o;
  for (IsLsn p : positions) {
    Incident single = Incident::singleton(wid, p);
    o = o.empty() ? single : Incident::merged(o, single);
  }
  return o;
}

}  // namespace wflog::testing
