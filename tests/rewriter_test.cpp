#include "core/rewriter.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/evaluator.h"
#include "core/parser.h"
#include "core/printer.h"
#include "log/builder.h"
#include "test_util.h"

namespace wflog {
namespace {

using namespace dsl;

PatternPtr P(const char* text) { return parse_pattern(text); }

void expect_tree(const PatternPtr& p, const char* text) {
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(to_text(*p), text);
}

// ----- rotations ---------------------------------------------------------

TEST(RewriterTest, RotateRightSameOperator) {
  expect_tree(rewrite::rotate_right(*P("(a -> b) -> c")), "a -> (b -> c)");
  expect_tree(rewrite::rotate_right(*P("(a | b) | c")), "a | (b | c)");
  expect_tree(rewrite::rotate_right(*P("(a & b) & c")), "a & (b & c)");
  expect_tree(rewrite::rotate_right(*P("(a . b) . c")), "a . (b . c)");
}

TEST(RewriterTest, RotateLeftSameOperator) {
  expect_tree(rewrite::rotate_left(*P("a -> (b -> c)")), "a -> b -> c");
}

TEST(RewriterTest, RotateAcrossTemporalOperators) {
  // Theorem 4: . and -> reassociate across each other, operators keeping
  // their operand boundaries.
  expect_tree(rewrite::rotate_right(*P("(a . b) -> c")), "a . (b -> c)");
  expect_tree(rewrite::rotate_right(*P("(a -> b) . c")), "a -> (b . c)");
  expect_tree(rewrite::rotate_left(*P("a . (b -> c)")), "a . b -> c");
}

TEST(RewriterTest, RotateRefusesMixedNonTemporal) {
  EXPECT_EQ(rewrite::rotate_right(*P("(a | b) & c")), nullptr);
  EXPECT_EQ(rewrite::rotate_right(*P("(a -> b) | c")), nullptr);
  EXPECT_EQ(rewrite::rotate_left(*P("a & (b | c)")), nullptr);
}

TEST(RewriterTest, RotateRefusesAtomChild) {
  EXPECT_EQ(rewrite::rotate_right(*P("a -> b")), nullptr);
  EXPECT_EQ(rewrite::rotate_left(*P("a -> b")), nullptr);
  EXPECT_EQ(rewrite::rotate_right(*P("a")), nullptr);
}

// ----- commute -----------------------------------------------------------

TEST(RewriterTest, CommuteChoiceAndParallel) {
  expect_tree(rewrite::commute(*P("a | b")), "b | a");
  expect_tree(rewrite::commute(*P("a & b")), "b & a");
}

TEST(RewriterTest, CommuteRefusesTemporal) {
  EXPECT_EQ(rewrite::commute(*P("a -> b")), nullptr);
  EXPECT_EQ(rewrite::commute(*P("a . b")), nullptr);
  EXPECT_EQ(rewrite::commute(*P("a")), nullptr);
}

// ----- distribute / factor ----------------------------------------------

TEST(RewriterTest, DistributeLeft) {
  // (-> and & bind tighter than |, so the printer needs no parentheses.)
  expect_tree(rewrite::distribute_left(*P("a -> (b | c)")),
              "a -> b | a -> c");
  expect_tree(rewrite::distribute_left(*P("a & (b | c)")),
              "a & b | a & c");
  expect_tree(rewrite::distribute_left(*P("a . (b | c)")),
              "a . b | a . c");
}

TEST(RewriterTest, DistributeRight) {
  expect_tree(rewrite::distribute_right(*P("(a | b) -> c")),
              "a -> c | b -> c");
}

TEST(RewriterTest, DistributeRefusesWithoutChoiceChild) {
  EXPECT_EQ(rewrite::distribute_left(*P("a -> (b & c)")), nullptr);
  EXPECT_EQ(rewrite::distribute_right(*P("(a & b) -> c")), nullptr);
  EXPECT_EQ(rewrite::distribute_left(*P("a | (b | c)")), nullptr);
}

TEST(RewriterTest, FactorSharedLeftOperand) {
  expect_tree(rewrite::factor(*P("(a -> b) | (a -> c)")), "a -> (b | c)");
}

TEST(RewriterTest, FactorSharedRightOperand) {
  expect_tree(rewrite::factor(*P("(a -> c) | (b -> c)")), "(a | b) -> c");
}

TEST(RewriterTest, FactorRefusesMismatchedOperators) {
  EXPECT_EQ(rewrite::factor(*P("(a -> b) | (a . c)")), nullptr);
  EXPECT_EQ(rewrite::factor(*P("(a -> b) & (a -> c)")), nullptr);
  EXPECT_EQ(rewrite::factor(*P("(a -> b) | (c -> d)")), nullptr);
}

TEST(RewriterTest, FactorIsInverseOfDistribute) {
  const PatternPtr original = P("a -> (b | c)");
  const PatternPtr distributed = rewrite::distribute_left(*original);
  ASSERT_NE(distributed, nullptr);
  const PatternPtr back = rewrite::factor(*distributed);
  ASSERT_NE(back, nullptr);
  EXPECT_TRUE(back->structurally_equal(*original));
}

// ----- neighbors ---------------------------------------------------------

TEST(NeighborsTest, AtomHasNoNeighbors) {
  EXPECT_TRUE(rewrite::neighbors(P("a")).empty());
}

TEST(NeighborsTest, FindsNestedSites) {
  // (a -> b) -> (c | d): rotations at root, distribute at root,
  // commute at right child...
  const PatternPtr p = P("(a -> b) -> (c | d)");
  const auto steps = rewrite::neighbors(p);
  EXPECT_GE(steps.size(), 3u);
  bool found_commute_inner = false;
  for (const auto& s : steps) {
    if (s.rule.find("commute@root.R") != std::string::npos) {
      found_commute_inner = true;
    }
  }
  EXPECT_TRUE(found_commute_inner);
}

TEST(NeighborsTest, ResultsAreDistinctAndNotSelf) {
  const PatternPtr p = P("(a | a) | a");
  const auto steps = rewrite::neighbors(p);
  for (std::size_t i = 0; i < steps.size(); ++i) {
    EXPECT_FALSE(steps[i].result->structurally_equal(*p));
    for (std::size_t j = i + 1; j < steps.size(); ++j) {
      EXPECT_FALSE(steps[i].result->structurally_equal(*steps[j].result));
    }
  }
}

// Every neighbor must be semantically equivalent (the laws are sound) —
// property-tested over random logs and a battery of patterns.
class NeighborSoundnessTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(NeighborSoundnessTest, NeighborsPreserveIncidentSets) {
  Rng rng(7);
  LogBuilder b;
  for (int i = 0; i < 4; ++i) {
    const Wid w = b.begin_instance();
    const std::size_t len = 4 + rng.index(4);
    for (std::size_t j = 0; j < len; ++j) {
      b.append(w, std::string(1, static_cast<char>('a' + rng.index(4))));
    }
    b.end_instance(w);
  }
  const Log log = b.build();
  LogIndex index(log);
  Evaluator ev(index);

  const PatternPtr p = parse_pattern(GetParam());
  const IncidentList expected = ev.evaluate(*p).flatten();
  for (const auto& step : rewrite::neighbors(p)) {
    EXPECT_EQ(ev.evaluate(*step.result).flatten(), expected)
        << GetParam() << " rewritten by " << step.rule << " to "
        << to_text(*step.result);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, NeighborSoundnessTest,
    ::testing::Values("(a -> b) -> c", "a -> (b | c)", "(a | b) & c",
                      "(a . b) -> (c | d)", "(a -> b) | (a -> c)",
                      "((a | b) | c) & d", "(a & b) & (c | !d)",
                      "(a . b) . (c . d)", "(!a -> b) | (!a -> c)"));

}  // namespace
}  // namespace wflog
