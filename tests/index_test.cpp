#include "log/index.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace wflog {
namespace {

using testing::make_log;

TEST(LogIndexTest, InstanceRecordsInIsLsnOrder) {
  const Log log = make_log("a b ; c");
  const LogIndex index(log);
  const auto& recs = index.instance(1);
  ASSERT_EQ(recs.size(), 4u);  // START a b END
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i]->is_lsn, i + 1);
  }
}

TEST(LogIndexTest, UnknownWidIsEmpty) {
  const Log log = make_log("a");
  const LogIndex index(log);
  EXPECT_TRUE(index.instance(99).empty());
  EXPECT_EQ(index.instance_length(99), 0u);
}

TEST(LogIndexTest, FindByPosition) {
  const Log log = make_log("a b c");
  const LogIndex index(log);
  const LogRecord* l = index.find(1, 3);  // third record = "b"
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(log.activity_name(l->activity), "b");
  EXPECT_EQ(index.find(1, 0), nullptr);
  EXPECT_EQ(index.find(1, 99), nullptr);
}

TEST(LogIndexTest, OccurrencesSortedPerInstance) {
  const Log log = make_log("a b a b a ; b a");
  const LogIndex index(log);
  const Symbol a = log.activity_symbol("a");
  EXPECT_EQ(index.occurrences(1, a), (std::vector<IsLsn>{2, 4, 6}));
  EXPECT_EQ(index.occurrences(2, a), (std::vector<IsLsn>{3}));
}

TEST(LogIndexTest, OccurrencesOfAbsentActivity) {
  const Log log = make_log("a");
  const LogIndex index(log);
  EXPECT_TRUE(index.occurrences(1, kNoSymbol).empty());
  const Symbol a = log.activity_symbol("a");
  EXPECT_TRUE(index.occurrences(2, a).empty());
}

TEST(LogIndexTest, NonOccurrencesComplement) {
  const Log log = make_log("a b a");
  const LogIndex index(log);
  const Symbol a = log.activity_symbol("a");
  // Instance: START a b a END -> non-"a" at 1 (START), 3 (b), 5 (END).
  EXPECT_EQ(index.non_occurrences(1, a), (std::vector<IsLsn>{1, 3, 5}));
}

TEST(LogIndexTest, TotalCounts) {
  const Log log = make_log("a b a ; a");
  const LogIndex index(log);
  EXPECT_EQ(index.total_count(log.activity_symbol("a")), 3u);
  EXPECT_EQ(index.total_count(log.activity_symbol("b")), 1u);
  EXPECT_EQ(index.total_count(log.start_symbol()), 2u);
  EXPECT_EQ(index.total_count(kNoSymbol), 0u);
}

TEST(LogIndexTest, ActivitiesListsDistinctSymbols) {
  const Log log = make_log("a b a b");
  const LogIndex index(log);
  // START, END, a, b.
  EXPECT_EQ(index.activities().size(), 4u);
}

TEST(LogIndexTest, WidsMatchLog) {
  const Log log = make_log("a ; b ; c");
  const LogIndex index(log);
  EXPECT_EQ(index.wids().size(), 3u);
}

}  // namespace
}  // namespace wflog
