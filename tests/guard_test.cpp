// Resource-guarded, cancellable query execution (core/guard.h + engine).
//
// The adversarial input is Theorem 1's worst case: the pattern
// "a -> a -> a" over a single instance of m identical 'a' records has
// C(m, 3) = Θ(m³) incidents — large enough that a small deadline or
// incident budget trips mid-evaluation. Guards must then return a FLAGGED
// PARTIAL result (never throw), and generous limits must change nothing.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "core/aggregate.h"
#include "core/engine.h"
#include "core/guard.h"
#include "core/join.h"
#include "log/builder.h"
#include "test_util.h"

namespace wflog {
namespace {

/// One instance of `m` consecutive 'a' activities.
Log all_a_log(std::size_t m) {
  std::string spec;
  for (std::size_t i = 0; i < m; ++i) spec += "a ";
  return testing::make_log(spec);
}

constexpr std::size_t kM = 200;
constexpr const char* kWorstCase = "a -> a -> a";

std::size_t full_count() {
  // C(200, 3): every ascending triple of 'a' positions is an incident.
  return kM * (kM - 1) * (kM - 2) / 6;
}

TEST(GuardTest, UnlimitedRunIsComplete) {
  const Log log = all_a_log(kM);
  const QueryEngine engine(log);
  const QueryResult r = engine.run(kWorstCase);
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.stop_reason, StopReason::kNone);
  EXPECT_EQ(r.total(), full_count());
}

TEST(GuardTest, DeadlineReturnsFlaggedPartialResult) {
  const Log log = all_a_log(kM);
  QueryOptions options;
  options.deadline = std::chrono::milliseconds{1};
  const QueryEngine engine(log, options);
  // Θ(m³) pair-joins take well over a millisecond; the run must come back
  // anyway, flagged, with whatever it had — not throw, not block.
  const QueryResult r = engine.run(kWorstCase);
  EXPECT_TRUE(r.ok());
  if (r.timed_out()) {
    EXPECT_FALSE(r.complete());
    EXPECT_LE(r.total(), full_count());
  } else {
    // A very fast machine may finish inside the deadline; then the result
    // must be the full answer.
    EXPECT_TRUE(r.complete());
    EXPECT_EQ(r.total(), full_count());
  }
}

TEST(GuardTest, TinyDeadlineOnHugeLogTimesOut) {
  // Scale m up until even evaluation startup exceeds the deadline budget;
  // 600 records → ~36M incidents, far beyond 1ms of work.
  const Log log = all_a_log(600);
  QueryOptions options;
  options.deadline = std::chrono::milliseconds{1};
  const QueryEngine engine(log, options);
  const QueryResult r = engine.run(kWorstCase);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.timed_out()) << "stop_reason="
                             << stop_reason_name(r.stop_reason);
  EXPECT_LT(r.total(), 600u * 599u * 598u / 6);
}

TEST(GuardTest, IncidentBudgetTruncates) {
  const Log log = all_a_log(kM);
  QueryOptions options;
  options.max_incidents = 1000;
  const QueryEngine engine(log, options);
  const QueryResult r = engine.run(kWorstCase);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.truncated());
  EXPECT_FALSE(r.complete());
  EXPECT_LT(r.total(), full_count());
}

TEST(GuardTest, GenerousBudgetLeavesResultIdentical) {
  const Log log = all_a_log(40);  // C(40,3) = 9880
  const QueryEngine unrestricted(log);
  QueryOptions options;
  options.deadline = std::chrono::minutes{10};
  options.max_incidents = 10'000'000;
  options.cancel = make_cancel_token();
  const QueryEngine guarded(log, options);

  const QueryResult full = unrestricted.run(kWorstCase);
  const QueryResult r = guarded.run(kWorstCase);
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.stop_reason, StopReason::kNone);
  EXPECT_EQ(r.total(), full.total());
  EXPECT_EQ(r.incidents.flatten(), full.incidents.flatten());
}

TEST(GuardTest, PreCancelledTokenStopsImmediately) {
  const Log log = all_a_log(kM);
  QueryOptions options;
  options.cancel = make_cancel_token();
  options.cancel->store(true);  // cancelled before the run starts
  const QueryEngine engine(log, options);
  const QueryResult r = engine.run(kWorstCase);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.cancelled());
  EXPECT_EQ(r.total(), 0u);
}

TEST(GuardTest, FirstTripReasonWins) {
  // Both a pre-set cancel token and a tiny incident budget: cancellation
  // is checked first, so it must be the reported reason.
  const Log log = all_a_log(kM);
  QueryOptions options;
  options.max_incidents = 1;
  options.cancel = make_cancel_token();
  options.cancel->store(true);
  const QueryEngine engine(log, options);
  const QueryResult r = engine.run(kWorstCase);
  EXPECT_TRUE(r.cancelled());
}

TEST(GuardTest, StopReasonNames) {
  EXPECT_STREQ(stop_reason_name(StopReason::kNone), "none");
  EXPECT_STREQ(stop_reason_name(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(stop_reason_name(StopReason::kCancelled), "cancelled");
  EXPECT_STREQ(stop_reason_name(StopReason::kIncidentBudget),
               "incident-budget");
}

// ----- batch failure isolation ---------------------------------------------

TEST(GuardTest, BatchIsolatesParseFailure) {
  const Log log = testing::make_log("a b c ; a c b ; b a c");
  const QueryEngine engine(log);
  const std::vector<std::string> texts = {"a -> b", "((( not a query",
                                          "b -> c"};
  const BatchResult batch = engine.run_batch(texts);
  ASSERT_EQ(batch.results.size(), 3u);

  EXPECT_TRUE(batch.results[0].ok());
  EXPECT_FALSE(batch.results[1].ok());
  EXPECT_FALSE(batch.results[1].error.empty());
  EXPECT_EQ(batch.results[1].total(), 0u);
  EXPECT_TRUE(batch.results[2].ok());

  // Differential: the surviving queries' answers match standalone runs.
  EXPECT_EQ(batch.results[0].incidents.flatten(),
            engine.run(texts[0]).incidents.flatten());
  EXPECT_EQ(batch.results[2].incidents.flatten(),
            engine.run(texts[2]).incidents.flatten());
}

TEST(GuardTest, BatchIsolatesWhereFailure) {
  const Log log = testing::make_log("a b ; b a");
  const QueryEngine engine(log);
  // A where clause naming a variable the pattern never binds throws
  // QueryError; the other queries are untouched.
  const std::vector<std::string> texts = {
      "a -> b", "x:a -> b where nosuch.out.k = 1", "b"};
  const BatchResult batch = engine.run_batch(texts);
  ASSERT_EQ(batch.results.size(), 3u);
  EXPECT_TRUE(batch.results[0].ok());
  EXPECT_FALSE(batch.results[1].ok());
  EXPECT_TRUE(batch.results[2].ok());
  EXPECT_EQ(batch.results[0].incidents.flatten(),
            engine.run(texts[0]).incidents.flatten());
  EXPECT_EQ(batch.results[2].incidents.flatten(),
            engine.run(texts[2]).incidents.flatten());
}

TEST(GuardTest, BatchAllGoodMatchesIndividualRuns) {
  const Log log = testing::make_log("a b c d ; d c b a ; a c a c");
  const QueryEngine engine(log);
  const std::vector<std::string> texts = {"a -> b", "a . c", "(a | d) -> c",
                                          "a & d"};
  const BatchResult batch = engine.run_batch(texts, /*threads=*/2);
  ASSERT_EQ(batch.results.size(), texts.size());
  for (std::size_t q = 0; q < texts.size(); ++q) {
    EXPECT_TRUE(batch.results[q].ok());
    EXPECT_EQ(batch.results[q].incidents.flatten(),
              engine.run(texts[q]).incidents.flatten())
        << texts[q];
  }
}

// ----- guard coverage in the where / predicate / aggregation layers ------

/// Three instances of a -> b where the attributes make the join succeed.
Log attr_log() {
  LogBuilder b;
  for (int i = 0; i < 3; ++i) {
    const Wid wid = b.begin_instance();
    b.append(wid, "a", {}, {{"k", Value(std::int64_t{1})}});
    b.append(wid, "b", {{"k", Value(std::int64_t{1})}}, {});
    b.end_instance(wid);
  }
  return b.build();
}

TEST(GuardTest, WhereFilterStopsOnTrippedGuard) {
  const Log log = attr_log();
  const LogIndex index(log);
  Evaluator ev(index);
  const ParsedQuery q = parse_query("x:a -> y:b where x.out.k = y.in.k");
  const IncidentSet all = ev.evaluate(*q.pattern);

  const IncidentSet unguarded = filter_where(all, *q.pattern, *q.where, index);
  EXPECT_EQ(unguarded.total(), 3u);

  // A pre-cancelled guard must stop the where pass before the first
  // incident is even examined — the filtered set is an (empty) prefix.
  const CancelToken cancel = make_cancel_token();
  cancel->store(true);
  const EvalGuard guard(std::chrono::milliseconds{0}, 0, cancel);
  const IncidentSet guarded =
      filter_where(all, *q.pattern, *q.where, index, &guard);
  EXPECT_EQ(guarded.total(), 0u);
  EXPECT_EQ(guard.reason(), StopReason::kCancelled);
}

TEST(GuardTest, EngineRunFlagsWhereFilterTimeout) {
  // Engine-level version: a cancel token set before the run means the
  // guard trips during evaluation AND the subsequent where filtering —
  // the result must still come back flagged, never throw.
  const Log log = attr_log();
  QueryOptions options;
  options.cancel = make_cancel_token();
  options.cancel->store(true);
  const QueryEngine engine(log, options);
  const QueryResult r = engine.run("x:a -> y:b where x.out.k = y.in.k");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.cancelled());
  EXPECT_EQ(r.total(), 0u);
}

TEST(GuardTest, PredicateFilterPollsGuard) {
  // A single-ATOM pattern with a predicate: evaluation is exactly
  // eval_atom's occurrence scan, so a tripped guard must cut that scan
  // short (this is the regression test for predicate filtering running
  // unguarded — it used to scan all m records regardless).
  constexpr std::size_t kRecords = 4096;
  LogBuilder b;
  const Wid wid = b.begin_instance();
  for (std::size_t i = 0; i < kRecords; ++i) {
    b.append(wid, "a", {}, {{"k", Value(std::int64_t(i))}});
  }
  b.end_instance(wid);
  const Log log = b.build();

  QueryOptions options;
  options.cancel = make_cancel_token();
  options.cancel->store(true);
  const QueryEngine engine(log, options);
  const QueryResult r = engine.run("a[k >= 0]");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.cancelled());
  // GuardPoll strides 256 iterations between checks, so a few incidents
  // slip through before the first poll — but nowhere near all of them.
  EXPECT_LT(r.total(), kRecords);
}

TEST(GuardTest, SlowPredicateRespectsDeadline) {
  // The satellite's motivating case: predicate evaluation itself can be
  // slow (string compares over long values), so the deadline must be
  // polled inside the occurrence scan, not only between operators.
  const std::string needle(64, 'x');
  LogBuilder b;
  const Wid wid = b.begin_instance();
  for (std::size_t i = 0; i < 50'000; ++i) {
    b.append(wid, "a", {}, {{"tag", Value(std::string(needle))}});
  }
  b.end_instance(wid);
  const Log log = b.build();

  QueryOptions options;
  options.deadline = std::chrono::milliseconds{1};
  const QueryEngine engine(log, options);
  const QueryResult r =
      engine.run("a[tag = \"" + needle + "\"] -> a[tag = \"" + needle +
                 "\"]");
  EXPECT_TRUE(r.ok());
  if (r.timed_out()) {
    EXPECT_FALSE(r.complete());
  } else {
    // A machine fast enough to finish inside 1ms must return everything:
    // C(50000, 2) pairs — in practice this branch never runs, but the
    // guard contract (complete XOR flagged) is what we assert.
    EXPECT_TRUE(r.complete());
  }
}

TEST(GuardTest, GroupByStopsOnTrippedGuard) {
  const Log log = attr_log();
  const LogIndex index(log);
  Evaluator ev(index);
  const IncidentSet set = ev.evaluate(*parse_pattern("a -> b"));
  const GroupKey key{"a", MapSel::kOut, "k"};

  const std::vector<GroupCount> unguarded =
      group_by_attribute(set, index, key);
  ASSERT_EQ(unguarded.size(), 1u);
  EXPECT_EQ(unguarded[0].instances, 3u);

  const CancelToken cancel = make_cancel_token();
  cancel->store(true);
  const EvalGuard guard(std::chrono::milliseconds{0}, 0, cancel);
  const std::vector<GroupCount> guarded =
      group_by_attribute(set, index, key, &guard);
  EXPECT_TRUE(guarded.empty());
  EXPECT_EQ(guard.reason(), StopReason::kCancelled);
}

// ----- per-call RunLimits over engine-wide defaults ----------------------

TEST(GuardTest, RunLimitsOverrideUnlimitedEngine) {
  // The engine has no limits; a per-call deadline must still bound the run.
  const Log log = all_a_log(600);
  const QueryEngine engine(log);
  RunLimits limits;
  limits.deadline = std::chrono::milliseconds{1};
  const QueryResult r = engine.run(kWorstCase, limits);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.timed_out());
  EXPECT_LT(r.total(), 600u * 599u * 598u / 6);
}

TEST(GuardTest, RunLimitsLoosenTightEngineDefault) {
  // Per-call limits REPLACE the engine default field-by-field, so one
  // caller can run with a generous budget on an engine configured tight.
  const Log log = all_a_log(40);
  QueryOptions options;
  options.deadline = std::chrono::milliseconds{1};
  const QueryEngine engine(log, options);
  RunLimits limits;
  limits.deadline = std::chrono::minutes{10};
  const QueryResult r = engine.run(kWorstCase, limits);
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.total(), 40u * 39u * 38u / 6);
}

TEST(GuardTest, RunLimitsCancelToken) {
  const Log log = all_a_log(kM);
  const QueryEngine engine(log);
  RunLimits limits;
  limits.cancel = make_cancel_token();
  limits.cancel->store(true);
  const QueryResult r = engine.run(kWorstCase, limits);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.cancelled());
}

TEST(GuardTest, BatchRunLimitsApplyToEverySlot) {
  const Log log = all_a_log(kM);
  const QueryEngine engine(log);
  RunLimits limits;
  limits.max_incidents = 500;
  const std::vector<std::string> texts = {kWorstCase, "a -> a"};
  const BatchResult batch =
      engine.run_batch(texts, /*threads=*/1, /*use_cache=*/true, limits);
  ASSERT_EQ(batch.results.size(), 2u);
  for (const QueryResult& r : batch.results) {
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.stop_reason, StopReason::kIncidentBudget);
  }
}

TEST(GuardTest, BatchHonoursIncidentBudget) {
  const Log log = all_a_log(kM);
  QueryOptions options;
  options.max_incidents = 500;
  const QueryEngine engine(log, options);
  const std::vector<std::string> texts = {kWorstCase, "a -> a"};
  const BatchResult batch = engine.run_batch(texts);
  ASSERT_EQ(batch.results.size(), 2u);
  // The shared pass tripped the budget: results are flagged partial.
  for (const QueryResult& r : batch.results) {
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.stop_reason, StopReason::kIncidentBudget);
  }
}

}  // namespace
}  // namespace wflog
