// Resource-guarded, cancellable query execution (core/guard.h + engine).
//
// The adversarial input is Theorem 1's worst case: the pattern
// "a -> a -> a" over a single instance of m identical 'a' records has
// C(m, 3) = Θ(m³) incidents — large enough that a small deadline or
// incident budget trips mid-evaluation. Guards must then return a FLAGGED
// PARTIAL result (never throw), and generous limits must change nothing.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/guard.h"
#include "test_util.h"

namespace wflog {
namespace {

/// One instance of `m` consecutive 'a' activities.
Log all_a_log(std::size_t m) {
  std::string spec;
  for (std::size_t i = 0; i < m; ++i) spec += "a ";
  return testing::make_log(spec);
}

constexpr std::size_t kM = 200;
constexpr const char* kWorstCase = "a -> a -> a";

std::size_t full_count() {
  // C(200, 3): every ascending triple of 'a' positions is an incident.
  return kM * (kM - 1) * (kM - 2) / 6;
}

TEST(GuardTest, UnlimitedRunIsComplete) {
  const Log log = all_a_log(kM);
  const QueryEngine engine(log);
  const QueryResult r = engine.run(kWorstCase);
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.stop_reason, StopReason::kNone);
  EXPECT_EQ(r.total(), full_count());
}

TEST(GuardTest, DeadlineReturnsFlaggedPartialResult) {
  const Log log = all_a_log(kM);
  QueryOptions options;
  options.deadline = std::chrono::milliseconds{1};
  const QueryEngine engine(log, options);
  // Θ(m³) pair-joins take well over a millisecond; the run must come back
  // anyway, flagged, with whatever it had — not throw, not block.
  const QueryResult r = engine.run(kWorstCase);
  EXPECT_TRUE(r.ok());
  if (r.timed_out()) {
    EXPECT_FALSE(r.complete());
    EXPECT_LE(r.total(), full_count());
  } else {
    // A very fast machine may finish inside the deadline; then the result
    // must be the full answer.
    EXPECT_TRUE(r.complete());
    EXPECT_EQ(r.total(), full_count());
  }
}

TEST(GuardTest, TinyDeadlineOnHugeLogTimesOut) {
  // Scale m up until even evaluation startup exceeds the deadline budget;
  // 600 records → ~36M incidents, far beyond 1ms of work.
  const Log log = all_a_log(600);
  QueryOptions options;
  options.deadline = std::chrono::milliseconds{1};
  const QueryEngine engine(log, options);
  const QueryResult r = engine.run(kWorstCase);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.timed_out()) << "stop_reason="
                             << stop_reason_name(r.stop_reason);
  EXPECT_LT(r.total(), 600u * 599u * 598u / 6);
}

TEST(GuardTest, IncidentBudgetTruncates) {
  const Log log = all_a_log(kM);
  QueryOptions options;
  options.max_incidents = 1000;
  const QueryEngine engine(log, options);
  const QueryResult r = engine.run(kWorstCase);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.truncated());
  EXPECT_FALSE(r.complete());
  EXPECT_LT(r.total(), full_count());
}

TEST(GuardTest, GenerousBudgetLeavesResultIdentical) {
  const Log log = all_a_log(40);  // C(40,3) = 9880
  const QueryEngine unrestricted(log);
  QueryOptions options;
  options.deadline = std::chrono::minutes{10};
  options.max_incidents = 10'000'000;
  options.cancel = make_cancel_token();
  const QueryEngine guarded(log, options);

  const QueryResult full = unrestricted.run(kWorstCase);
  const QueryResult r = guarded.run(kWorstCase);
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.stop_reason, StopReason::kNone);
  EXPECT_EQ(r.total(), full.total());
  EXPECT_EQ(r.incidents.flatten(), full.incidents.flatten());
}

TEST(GuardTest, PreCancelledTokenStopsImmediately) {
  const Log log = all_a_log(kM);
  QueryOptions options;
  options.cancel = make_cancel_token();
  options.cancel->store(true);  // cancelled before the run starts
  const QueryEngine engine(log, options);
  const QueryResult r = engine.run(kWorstCase);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.cancelled());
  EXPECT_EQ(r.total(), 0u);
}

TEST(GuardTest, FirstTripReasonWins) {
  // Both a pre-set cancel token and a tiny incident budget: cancellation
  // is checked first, so it must be the reported reason.
  const Log log = all_a_log(kM);
  QueryOptions options;
  options.max_incidents = 1;
  options.cancel = make_cancel_token();
  options.cancel->store(true);
  const QueryEngine engine(log, options);
  const QueryResult r = engine.run(kWorstCase);
  EXPECT_TRUE(r.cancelled());
}

TEST(GuardTest, StopReasonNames) {
  EXPECT_STREQ(stop_reason_name(StopReason::kNone), "none");
  EXPECT_STREQ(stop_reason_name(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(stop_reason_name(StopReason::kCancelled), "cancelled");
  EXPECT_STREQ(stop_reason_name(StopReason::kIncidentBudget),
               "incident-budget");
}

// ----- batch failure isolation ---------------------------------------------

TEST(GuardTest, BatchIsolatesParseFailure) {
  const Log log = testing::make_log("a b c ; a c b ; b a c");
  const QueryEngine engine(log);
  const std::vector<std::string> texts = {"a -> b", "((( not a query",
                                          "b -> c"};
  const BatchResult batch = engine.run_batch(texts);
  ASSERT_EQ(batch.results.size(), 3u);

  EXPECT_TRUE(batch.results[0].ok());
  EXPECT_FALSE(batch.results[1].ok());
  EXPECT_FALSE(batch.results[1].error.empty());
  EXPECT_EQ(batch.results[1].total(), 0u);
  EXPECT_TRUE(batch.results[2].ok());

  // Differential: the surviving queries' answers match standalone runs.
  EXPECT_EQ(batch.results[0].incidents.flatten(),
            engine.run(texts[0]).incidents.flatten());
  EXPECT_EQ(batch.results[2].incidents.flatten(),
            engine.run(texts[2]).incidents.flatten());
}

TEST(GuardTest, BatchIsolatesWhereFailure) {
  const Log log = testing::make_log("a b ; b a");
  const QueryEngine engine(log);
  // A where clause naming a variable the pattern never binds throws
  // QueryError; the other queries are untouched.
  const std::vector<std::string> texts = {
      "a -> b", "x:a -> b where nosuch.out.k = 1", "b"};
  const BatchResult batch = engine.run_batch(texts);
  ASSERT_EQ(batch.results.size(), 3u);
  EXPECT_TRUE(batch.results[0].ok());
  EXPECT_FALSE(batch.results[1].ok());
  EXPECT_TRUE(batch.results[2].ok());
  EXPECT_EQ(batch.results[0].incidents.flatten(),
            engine.run(texts[0]).incidents.flatten());
  EXPECT_EQ(batch.results[2].incidents.flatten(),
            engine.run(texts[2]).incidents.flatten());
}

TEST(GuardTest, BatchAllGoodMatchesIndividualRuns) {
  const Log log = testing::make_log("a b c d ; d c b a ; a c a c");
  const QueryEngine engine(log);
  const std::vector<std::string> texts = {"a -> b", "a . c", "(a | d) -> c",
                                          "a & d"};
  const BatchResult batch = engine.run_batch(texts, /*threads=*/2);
  ASSERT_EQ(batch.results.size(), texts.size());
  for (std::size_t q = 0; q < texts.size(); ++q) {
    EXPECT_TRUE(batch.results[q].ok());
    EXPECT_EQ(batch.results[q].incidents.flatten(),
              engine.run(texts[q]).incidents.flatten())
        << texts[q];
  }
}

TEST(GuardTest, BatchHonoursIncidentBudget) {
  const Log log = all_a_log(kM);
  QueryOptions options;
  options.max_incidents = 500;
  const QueryEngine engine(log, options);
  const std::vector<std::string> texts = {kWorstCase, "a -> a"};
  const BatchResult batch = engine.run_batch(texts);
  ASSERT_EQ(batch.results.size(), 2u);
  // The shared pass tripped the budget: results are flagged partial.
  for (const QueryResult& r : batch.results) {
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.stop_reason, StopReason::kIncidentBudget);
  }
}

}  // namespace
}  // namespace wflog
