#include "core/operators.h"

#include <gtest/gtest.h>

#include "core/operators_opt.h"
#include "core/synthetic.h"
#include "test_util.h"

namespace wflog {
namespace {

using testing::inc;

// ----- consecutive ------------------------------------------------------

TEST(ConsecutiveTest, PairsAdjacentIncidents) {
  const IncidentList a{inc(1, {2}), inc(1, {5})};
  const IncidentList b{inc(1, {3}), inc(1, {7})};
  const IncidentList out = eval_consecutive_naive(a, b);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], inc(1, {2, 3}));
}

TEST(ConsecutiveTest, UsesLastOfCompositeLeft) {
  // last({1,4}) = 4, so only first == 5 qualifies.
  const IncidentList a{inc(1, {1, 4})};
  const IncidentList b{inc(1, {2}), inc(1, {5})};
  const IncidentList out = eval_consecutive_naive(a, b);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], inc(1, {1, 4, 5}));
}

TEST(ConsecutiveTest, EmptyInputs) {
  const IncidentList a{inc(1, {2})};
  EXPECT_TRUE(eval_consecutive_naive({}, a).empty());
  EXPECT_TRUE(eval_consecutive_naive(a, {}).empty());
}

TEST(ConsecutiveTest, MultipleMatchesPerLeft) {
  // Two right incidents share first()==3.
  const IncidentList a{inc(1, {2})};
  const IncidentList b{inc(1, {3}), inc(1, {3, 8})};
  const IncidentList out = eval_consecutive_naive(a, b);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], inc(1, {2, 3}));
  EXPECT_EQ(out[1], inc(1, {2, 3, 8}));
}

// ----- sequential -------------------------------------------------------

TEST(SequentialTest, RequiresStrictOrder) {
  const IncidentList a{inc(1, {2}), inc(1, {6})};
  const IncidentList b{inc(1, {4})};
  const IncidentList out = eval_sequential_naive(a, b);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], inc(1, {2, 4}));
}

TEST(SequentialTest, GapAllowed) {
  const IncidentList a{inc(1, {1})};
  const IncidentList b{inc(1, {9})};
  EXPECT_EQ(eval_sequential_naive(a, b).size(), 1u);
}

TEST(SequentialTest, TouchingNotAllowed) {
  // last(o1) == first(o2) fails the strict inequality.
  const IncidentList a{inc(1, {3})};
  const IncidentList b{inc(1, {3})};
  EXPECT_TRUE(eval_sequential_naive(a, b).empty());
}

TEST(SequentialTest, OverlappingSpansCheckBoundariesOnly) {
  // last({2,9}) = 9 is not < first({5}) = 5: no match even though the
  // spans interleave.
  const IncidentList a{inc(1, {2, 9})};
  const IncidentList b{inc(1, {5})};
  EXPECT_TRUE(eval_sequential_naive(a, b).empty());
}

TEST(SequentialTest, CrossProductWhenAllOrdered) {
  const IncidentList a{inc(1, {1}), inc(1, {2})};
  const IncidentList b{inc(1, {8}), inc(1, {9})};
  EXPECT_EQ(eval_sequential_naive(a, b).size(), 4u);
}

TEST(SequentialTest, DuplicateUnionsCollapse) {
  // {1} ∪ {2,3} and {1,2} ∪ {3} both yield {1,2,3}: Definition 4's set
  // semantics demands one copy, not two (DESIGN.md §6). The third valid
  // pair {1} ∪ {3} = {1,3} is a distinct incident.
  const IncidentList a{inc(1, {1}), inc(1, {1, 2})};
  const IncidentList b{inc(1, {2, 3}), inc(1, {3})};
  const IncidentList out = eval_sequential_naive(a, b);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], inc(1, {1, 2, 3}));
  EXPECT_EQ(out[1], inc(1, {1, 3}));
}

// ----- choice -----------------------------------------------------------

TEST(ChoiceTest, UnionWithoutDedup) {
  const IncidentList a{inc(1, {2})};
  const IncidentList b{inc(1, {5})};
  const IncidentList out = eval_choice_naive(a, b, /*dedup=*/false);
  EXPECT_EQ(out.size(), 2u);
}

TEST(ChoiceTest, DedupRemovesSharedIncidents) {
  const IncidentList a{inc(1, {2}), inc(1, {4})};
  const IncidentList b{inc(1, {4}), inc(1, {6})};
  const IncidentList out = eval_choice_naive(a, b, /*dedup=*/true);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], inc(1, {2}));
  EXPECT_EQ(out[1], inc(1, {4}));
  EXPECT_EQ(out[2], inc(1, {6}));
}

TEST(ChoiceTest, EmptySides) {
  const IncidentList a{inc(1, {2})};
  EXPECT_EQ(eval_choice_naive(a, {}, true).size(), 1u);
  EXPECT_EQ(eval_choice_naive({}, a, true).size(), 1u);
  EXPECT_TRUE(eval_choice_naive({}, {}, false).empty());
}

// ----- parallel ---------------------------------------------------------

TEST(ParallelTest, DisjointPairsMerge) {
  const IncidentList a{inc(1, {2})};
  const IncidentList b{inc(1, {3})};
  const IncidentList out = eval_parallel_naive(a, b);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], inc(1, {2, 3}));
}

TEST(ParallelTest, SharedRecordExcluded) {
  const IncidentList a{inc(1, {2, 4})};
  const IncidentList b{inc(1, {4, 6})};
  EXPECT_TRUE(eval_parallel_naive(a, b).empty());
}

TEST(ParallelTest, InterleavedSpansAllowed) {
  // ⊕ is a shuffle: {2,6} and {4} interleave.
  const IncidentList a{inc(1, {2, 6})};
  const IncidentList b{inc(1, {4})};
  const IncidentList out = eval_parallel_naive(a, b);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], inc(1, {2, 4, 6}));
}

TEST(ParallelTest, SymmetricResult) {
  const IncidentList a{inc(1, {1}), inc(1, {3})};
  const IncidentList b{inc(1, {2}), inc(1, {3})};
  EXPECT_EQ(eval_parallel_naive(a, b), eval_parallel_naive(b, a));
}

TEST(ParallelTest, SelfJoinExcludesIdenticalSingletons) {
  const IncidentList a{inc(1, {1}), inc(1, {2})};
  const IncidentList out = eval_parallel_naive(a, a);
  // Only the two cross pairs survive, and they collapse to one set {1,2}.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], inc(1, {1, 2}));
}

// ----- naive vs optimized agreement (property) --------------------------

struct AgreementParam {
  std::size_t n1, k1, n2, k2, len;
  std::uint64_t seed;
};

class OperatorAgreementTest
    : public ::testing::TestWithParam<AgreementParam> {};

TEST_P(OperatorAgreementTest, AllOperatorsAgree) {
  const AgreementParam p = GetParam();
  SyntheticIncidentOptions o1{p.n1, p.k1, p.len, 1, p.seed};
  SyntheticIncidentOptions o2{p.n2, p.k2, p.len, 1, p.seed ^ 0xabcdef};
  const IncidentList a = synthetic_incidents(o1);
  const IncidentList b = synthetic_incidents(o2);

  EXPECT_EQ(eval_consecutive_naive(a, b), eval_consecutive_opt(a, b));
  EXPECT_EQ(eval_sequential_naive(a, b), eval_sequential_opt(a, b));
  EXPECT_EQ(eval_choice_naive(a, b, true), eval_choice_opt(a, b, true));
  EXPECT_EQ(eval_choice_naive(a, b, false), eval_choice_opt(a, b, false));
  EXPECT_EQ(eval_parallel_naive(a, b), eval_parallel_opt(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OperatorAgreementTest,
    ::testing::Values(
        AgreementParam{0, 1, 5, 1, 20, 1},    // empty left
        AgreementParam{5, 1, 0, 1, 20, 2},    // empty right
        AgreementParam{8, 1, 8, 1, 10, 3},    // dense singletons
        AgreementParam{20, 1, 20, 1, 400, 4},  // sparse singletons
        AgreementParam{10, 2, 10, 2, 30, 5},  // small sets
        AgreementParam{15, 3, 10, 2, 40, 6},  // asymmetric sizes
        AgreementParam{30, 1, 30, 3, 60, 7},
        AgreementParam{25, 4, 25, 4, 50, 8},
        AgreementParam{40, 2, 10, 5, 80, 9},
        AgreementParam{12, 1, 12, 1, 12, 10}  // saturated positions
        ));

// Choice with dedup=false must be used only for genuinely disjoint inputs;
// with shared incidents the merged list may contain duplicates — verify the
// contract boundary explicitly.
TEST(ChoiceContractTest, NoDedupKeepsDuplicatesFromOverlappingInputs) {
  const IncidentList a{inc(1, {2})};
  const IncidentList out = eval_choice_opt(a, a, /*dedup=*/false);
  EXPECT_EQ(out.size(), 2u);  // caller's responsibility (needs_choice_dedup)
}

}  // namespace
}  // namespace wflog
