#include "workflow/workload.h"

#include <gtest/gtest.h>

#include <map>

#include "core/engine.h"
#include "core/monitor.h"
#include "log/validate.h"
#include "workflow/clinic.h"

namespace wflog {
namespace {

bool well_formed(const Log& log) {
  const std::vector<LogRecord> records(log.begin(), log.end());
  return check_well_formed(records, log.interner()).empty();
}

TEST(WorkloadTest, Figure3PresetIsThePaperLog) {
  const Log a = workload::figure3();
  const Log b = figure3_log();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 1; i <= a.size(); ++i) {
    EXPECT_EQ(a.activity_name(a.record(i).activity),
              b.activity_name(b.record(i).activity));
  }
}

TEST(WorkloadTest, ChainStructure) {
  const Log log = workload::chain(3, 2, 2);
  // Each instance: START A0 A1 A0 A1 END.
  EXPECT_EQ(log.size(), 3u * 6u);
  EXPECT_TRUE(well_formed(log));
  const LogIndex index(log);
  for (Wid wid : log.wids()) {
    EXPECT_EQ(index.occurrences(wid, log.activity_symbol("A0")),
              (std::vector<IsLsn>{2, 4}));
    EXPECT_EQ(index.occurrences(wid, log.activity_symbol("A1")),
              (std::vector<IsLsn>{3, 5}));
  }
}

TEST(WorkloadTest, WorstcaseStructure) {
  const Log log = workload::worstcase(5);
  EXPECT_EQ(log.size(), 7u);  // START + 5x t + END
  EXPECT_TRUE(well_formed(log));
  const LogIndex index(log);
  EXPECT_EQ(index.total_count(log.activity_symbol("t")), 5u);
  EXPECT_EQ(log.wids().size(), 1u);
}

TEST(WorkloadTest, AllPresetsWellFormed) {
  EXPECT_TRUE(well_formed(workload::clinic(25, 1)));
  EXPECT_TRUE(well_formed(workload::procurement(25, 1)));
  EXPECT_TRUE(well_formed(workload::random_process(25, 1)));
}

TEST(WorkloadTest, PresetsDeterministicPerSeed) {
  const Log a = workload::procurement(15, 9);
  const Log b = workload::procurement(15, 9);
  ASSERT_EQ(a.size(), b.size());
  const Log c = workload::procurement(15, 10);
  // Different seed: very likely a different log (length or content).
  bool differs = a.size() != c.size();
  for (std::size_t i = 1; !differs && i <= std::min(a.size(), c.size());
       ++i) {
    differs = a.activity_name(a.record(i).activity) !=
              c.activity_name(c.record(i).activity);
  }
  EXPECT_TRUE(differs);
}

// The monitor on an AND-parallel-heavy feed: streaming totals must equal
// batch evaluation even when branch interleavings vary per instance.
TEST(WorkloadTest, MonitorHandlesParallelHeavyProcurementFeed) {
  const Log feed = workload::procurement(40, 0xF00D);
  LogMonitor monitor;
  const auto q1 = monitor.add_query("ReceiveGoods & ReceiveInvoice");
  const auto q2 = monitor.add_query("MatchThreeWay . Pay");
  const auto q3 =
      monitor.add_query("(InspectGoods & VerifyInvoice) . MatchThreeWay");

  std::map<Wid, Wid> wid_map;
  for (const LogRecord& l : feed) {
    if (l.activity == feed.start_symbol()) {
      wid_map[l.wid] = monitor.begin_instance();
    } else if (l.activity == feed.end_symbol()) {
      monitor.end_instance(wid_map.at(l.wid));
    } else {
      monitor.record(wid_map.at(l.wid), feed.activity_name(l.activity));
    }
  }

  const Log snapshot = monitor.snapshot();
  QueryOptions opts;
  opts.optimize = false;
  QueryEngine engine(snapshot, opts);
  EXPECT_EQ(monitor.total_matches(q1),
            engine.run("ReceiveGoods & ReceiveInvoice").total());
  EXPECT_EQ(monitor.total_matches(q2),
            engine.run("MatchThreeWay . Pay").total());
  EXPECT_EQ(
      monitor.total_matches(q3),
      engine.run("(InspectGoods & VerifyInvoice) . MatchThreeWay").total());
}

}  // namespace
}  // namespace wflog
