#include "core/monitor.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/guard.h"
#include "core/parser.h"
#include "log/validate.h"
#include "test_util.h"

namespace wflog {
namespace {

using testing::inc;

TEST(MonitorTest, ReportsMatchOnCompletingRecord) {
  LogMonitor mon;
  const auto q = mon.add_query("a -> b");
  const Wid w = mon.begin_instance();
  mon.record(w, "a");
  EXPECT_TRUE(mon.matches().empty());
  mon.record(w, "b");
  ASSERT_EQ(mon.matches().size(), 1u);
  EXPECT_EQ(mon.matches()[0].query, q);
  EXPECT_EQ(mon.matches()[0].incident, inc(w, {2, 3}));
}

TEST(MonitorTest, EachIncidentReportedExactlyOnce) {
  LogMonitor mon;
  mon.add_query("a -> b");
  const Wid w = mon.begin_instance();
  mon.record(w, "a");
  mon.record(w, "b");  // {2,3}
  mon.record(w, "b");  // {2,4}
  mon.record(w, "a");
  mon.record(w, "b");  // {2,6}, {5,6}
  EXPECT_EQ(mon.matches().size(), 4u);
  EXPECT_EQ(mon.total_matches(1), 4u);
}

TEST(MonitorTest, ConsecutiveRequiresAdjacency) {
  LogMonitor mon;
  mon.add_query("a . b");
  const Wid w = mon.begin_instance();
  mon.record(w, "a");
  mon.record(w, "x");
  mon.record(w, "b");  // not adjacent to a
  EXPECT_TRUE(mon.matches().empty());
  mon.record(w, "a");
  mon.record(w, "b");
  EXPECT_EQ(mon.matches().size(), 1u);
}

TEST(MonitorTest, ChoiceAndParallel) {
  LogMonitor mon;
  const auto q_choice = mon.add_query("a | b");
  const auto q_par = mon.add_query("a & b");
  const Wid w = mon.begin_instance();
  mon.record(w, "a");
  mon.record(w, "b");
  std::size_t choice_hits = 0;
  std::size_t par_hits = 0;
  for (const auto& m : mon.matches()) {
    if (m.query == q_choice) ++choice_hits;
    if (m.query == q_par) ++par_hits;
  }
  EXPECT_EQ(choice_hits, 2u);  // each record alone
  EXPECT_EQ(par_hits, 1u);     // the pair
}

TEST(MonitorTest, InstancesAreIsolated) {
  LogMonitor mon;
  mon.add_query("a -> b");
  const Wid w1 = mon.begin_instance();
  const Wid w2 = mon.begin_instance();
  mon.record(w1, "a");
  mon.record(w2, "b");  // different instance: no match
  EXPECT_TRUE(mon.matches().empty());
  mon.record(w1, "b");
  EXPECT_EQ(mon.matches().size(), 1u);
  EXPECT_EQ(mon.matches()[0].incident.wid(), w1);
}

TEST(MonitorTest, EndInstanceEmitsEndRecordAndDropsState) {
  LogMonitor mon;
  mon.add_query("a -> END");
  const Wid w = mon.begin_instance();
  mon.record(w, "a");
  mon.end_instance(w);
  EXPECT_EQ(mon.matches().size(), 1u);
  EXPECT_THROW(mon.record(w, "a"), Error);
  EXPECT_THROW(mon.end_instance(w), Error);
}

TEST(MonitorTest, NegationAndPredicates) {
  LogMonitor mon;
  mon.add_query("!a");
  mon.add_query("pay[out.amount > 100]");
  const Wid w = mon.begin_instance();  // START matches !a
  mon.record(w, "a");                  // no
  mon.record(w, "pay", {}, {{"amount", Value{std::int64_t{50}}}});   // !a only
  mon.record(w, "pay", {}, {{"amount", Value{std::int64_t{500}}}});  // both
  std::size_t neg = 0;
  std::size_t pred = 0;
  for (const auto& m : mon.matches()) {
    (m.query == 1 ? neg : pred) += 1;
  }
  EXPECT_EQ(neg, 3u);  // START, pay, pay
  EXPECT_EQ(pred, 1u);
}

TEST(MonitorTest, NegationSentinelOptionRespected) {
  MonitorOptions opts;
  opts.negation_matches_sentinels = false;
  LogMonitor mon(opts);
  mon.add_query("!a");
  const Wid w = mon.begin_instance();
  mon.record(w, "b");
  mon.end_instance(w);
  EXPECT_EQ(mon.matches().size(), 1u);  // only "b"
}

TEST(MonitorTest, DrainClearsButKeepsTotals) {
  LogMonitor mon;
  const auto q = mon.add_query("a");
  const Wid w = mon.begin_instance();
  mon.record(w, "a");
  const auto drained = mon.drain();
  EXPECT_EQ(drained.size(), 1u);
  EXPECT_TRUE(mon.matches().empty());
  mon.record(w, "a");
  EXPECT_EQ(mon.matches().size(), 1u);
  EXPECT_EQ(mon.total_matches(q), 2u);
}

TEST(MonitorTest, SnapshotIsWellFormedLog) {
  LogMonitor mon;
  const Wid w1 = mon.begin_instance();
  const Wid w2 = mon.begin_instance();
  mon.record(w1, "a", {{"x", Value{std::int64_t{1}}}}, {});
  mon.record(w2, "b");
  mon.end_instance(w1);
  const Log log = mon.snapshot();
  EXPECT_EQ(log.size(), 5u);
  const std::vector<LogRecord> records(log.begin(), log.end());
  EXPECT_TRUE(check_well_formed(records, log.interner()).empty());
}

TEST(MonitorTest, LateQueryReplaysHistory) {
  LogMonitor mon;
  const Wid w = mon.begin_instance();
  mon.record(w, "a");
  mon.record(w, "b");
  const auto q = mon.add_query("a -> b");
  EXPECT_EQ(mon.total_matches(q), 1u);  // found in replayed history
  mon.record(w, "b");
  EXPECT_EQ(mon.total_matches(q), 2u);  // live matching continues
}

TEST(MonitorTest, LateQueryWithoutRetentionThrows) {
  MonitorOptions opts;
  opts.keep_records = false;
  LogMonitor mon(opts);
  const Wid w = mon.begin_instance();
  mon.record(w, "a");
  EXPECT_THROW(mon.add_query("a"), Error);
  EXPECT_THROW(mon.snapshot(), Error);
}

TEST(MonitorTest, RemoveQueryStopsReporting) {
  LogMonitor mon;
  const auto q = mon.add_query("a");
  const Wid w = mon.begin_instance();
  mon.record(w, "a");
  mon.remove_query(q);
  mon.record(w, "a");
  // Removal releases EVERYTHING the query owned, its match tally
  // included — the id never surfaces again.
  EXPECT_EQ(mon.total_matches(q), 0u);
  EXPECT_EQ(mon.num_queries(), 0u);
}

TEST(MonitorTest, RemoveQueryLeavesNoStateBehind) {
  // Regression: remove_query used to leave state_, match_totals_, and queued
  // matches_ rows behind, so a long-lived monitor with query churn leaked.
  LogMonitor mon;
  const Wid w = mon.begin_instance();
  mon.record(w, "a");
  mon.record(w, "b");
  for (int round = 0; round < 10; ++round) {
    const auto q = mon.add_query("a -> b");
    mon.record(w, "b");  // fresh match each round, left undrained
    EXPECT_GT(mon.total_matches(q), 0u);
    mon.remove_query(q);
    const LogMonitor::MemoryStats stats = mon.memory_stats();
    EXPECT_EQ(stats.state_queries, 0u);
    EXPECT_EQ(stats.state_instances, 0u);
    EXPECT_EQ(stats.tracked_totals, 0u);
    EXPECT_EQ(stats.pending_matches, 0u);
    EXPECT_EQ(mon.total_matches(q), 0u);
  }
  // drain() never yields a removed id, even for matches queued pre-removal.
  const auto q1 = mon.add_query("a");
  const auto q2 = mon.add_query("b");
  mon.record(w, "a");  // queues a q1 match
  mon.remove_query(q1);
  for (const auto& m : mon.drain()) EXPECT_EQ(m.query, q2);
}

TEST(MonitorTest, DrainPerQueryIsSelective) {
  LogMonitor mon;
  const auto qa = mon.add_query("a");
  const auto qb = mon.add_query("b");
  const Wid w = mon.begin_instance();
  mon.record(w, "a");
  mon.record(w, "b");
  mon.record(w, "a");
  const auto only_a = mon.drain(qa);
  ASSERT_EQ(only_a.size(), 2u);
  for (const auto& m : only_a) EXPECT_EQ(m.query, qa);
  // qb's match is still queued, in arrival order.
  const auto rest = mon.drain();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].query, qb);
  // Totals are untouched by either drain flavor.
  EXPECT_EQ(mon.total_matches(qa), 2u);
  EXPECT_EQ(mon.total_matches(qb), 1u);
}

TEST(MonitorTest, BackfillGuardStopsAndRollsBack) {
  // A late query replays history under the caller's guard; when the budget
  // trips mid-backfill the monitor must be left exactly as before the call.
  LogMonitor mon;
  const Wid w = mon.begin_instance();
  for (int i = 0; i < 8; ++i) mon.record(w, "a");
  const EvalGuard guard(std::chrono::milliseconds{0}, /*max_incidents=*/3,
                        nullptr);
  EXPECT_THROW(mon.add_query("a", &guard), Error);
  EXPECT_EQ(mon.num_queries(), 0u);
  const LogMonitor::MemoryStats stats = mon.memory_stats();
  EXPECT_EQ(stats.state_queries, 0u);
  EXPECT_EQ(stats.tracked_totals, 0u);
  EXPECT_EQ(stats.pending_matches, 0u);
  EXPECT_TRUE(mon.matches().empty());
  // A roomier guard succeeds and replays the full history.
  const EvalGuard roomy(std::chrono::milliseconds{0}, 100, nullptr);
  const auto q = mon.add_query("a", &roomy);
  EXPECT_EQ(mon.total_matches(q), 8u);
}

TEST(MonitorTest, ReservedActivityNamesRejected) {
  LogMonitor mon;
  const Wid w = mon.begin_instance();
  EXPECT_THROW(mon.record(w, "START"), Error);
  EXPECT_THROW(mon.record(w, "END"), Error);
}

// ----- the headline property: incremental == batch -----------------------

class MonitorBatchEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MonitorBatchEquivalenceTest, MatchesBatchEvaluationExactly) {
  Rng rng(GetParam());
  const char* queries[] = {
      "a -> b", "a . b",          "a | !b",       "a & b",
      "(a -> b) & c", "a -> (b | c)", "!c . a",  "(a & b) | (a . c)",
  };

  LogMonitor mon;
  std::vector<LogMonitor::QueryId> ids;
  for (const char* q : queries) ids.push_back(mon.add_query(q));

  // Drive a random interleaved workload through the monitor.
  std::vector<Wid> open;
  for (int event = 0; event < 120; ++event) {
    const int action = static_cast<int>(rng.uniform(0, 9));
    if (open.empty() || action == 0) {
      open.push_back(mon.begin_instance());
    } else if (action == 1 && open.size() > 1) {
      const std::size_t i = rng.index(open.size());
      mon.end_instance(open[i]);
      open.erase(open.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      const Wid w = open[rng.index(open.size())];
      mon.record(w, std::string(1, static_cast<char>('a' + rng.index(3))));
    }
  }

  // Batch-evaluate the same queries on the snapshot.
  const Log log = mon.snapshot();
  const LogIndex index(log);
  const Evaluator ev(index);
  for (std::size_t i = 0; i < std::size(queries); ++i) {
    const IncidentSet batch = ev.evaluate(*parse_pattern(queries[i]));
    EXPECT_EQ(mon.total_matches(ids[i]), batch.total())
        << queries[i] << " seed " << GetParam();
  }

  // And the reported incidents are exactly the batch incident sets.
  std::vector<IncidentList> reported(std::size(queries));
  for (const auto& m : mon.matches()) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == m.query) reported[i].push_back(m.incident);
    }
  }
  for (std::size_t i = 0; i < std::size(queries); ++i) {
    canonicalize(reported[i]);
    EXPECT_EQ(reported[i],
              ev.evaluate(*parse_pattern(queries[i])).flatten())
        << queries[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonitorBatchEquivalenceTest,
                         ::testing::Range<std::uint64_t>(1, 16));

// ----- bad-event policy ----------------------------------------------------

TEST(MonitorTest, RejectPolicyThrowsOnUnknownInstance) {
  LogMonitor m;  // kReject is the default
  EXPECT_THROW(m.record(42, "a"), Error);
  const Wid w = m.begin_instance();
  m.end_instance(w);
  EXPECT_THROW(m.record(w, "a"), Error);      // already completed
  EXPECT_THROW(m.end_instance(w), Error);     // double end
  EXPECT_EQ(m.num_bad_events(), 3u);
}

TEST(MonitorTest, SkipPolicyDropsBadEventsAndKeepsRunning) {
  MonitorOptions options;
  options.bad_event_policy = BadEventPolicy::kSkip;
  LogMonitor m(options);
  const auto q = m.add_query("a -> b");

  m.record(42, "a");  // unknown wid: dropped, not thrown
  const Wid w = m.begin_instance();
  m.record(w, "a");
  m.record(w, "START");  // reserved name: dropped
  m.record(w, "b");
  m.end_instance(w);
  m.end_instance(w);  // double end: dropped

  EXPECT_EQ(m.num_bad_events(), 3u);
  EXPECT_TRUE(m.quarantined().empty());  // kSkip retains nothing
  EXPECT_EQ(m.total_matches(q), 1u);     // the good events still matched
  EXPECT_EQ(m.num_records(), 4u);        // START a b END
}

TEST(MonitorTest, QuarantinePolicyRetainsEventsAndInvokesCallback) {
  MonitorOptions options;
  options.bad_event_policy = BadEventPolicy::kQuarantine;
  std::vector<BadEvent> seen;
  options.on_bad_event = [&seen](const BadEvent& e) { seen.push_back(e); };
  LogMonitor m(options);

  m.record(7, "late-event");
  const Wid w = m.begin_instance();
  m.end_instance(w);
  m.end_instance(w);

  ASSERT_EQ(m.quarantined().size(), 2u);
  EXPECT_EQ(m.quarantined()[0].wid, 7u);
  EXPECT_EQ(m.quarantined()[0].activity, "late-event");
  EXPECT_NE(m.quarantined()[0].reason.find("not open"), std::string::npos);
  EXPECT_EQ(m.quarantined()[1].wid, w);
  EXPECT_EQ(m.num_bad_events(), 2u);
  // The callback saw the same events, in the same order.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].activity, "late-event");
  EXPECT_EQ(seen[1].wid, w);
}

TEST(MonitorTest, QuarantineRingIsCapped) {
  // Regression: quarantined_ grew without bound under kQuarantine, so a
  // misbehaving producer could exhaust memory on a long-lived monitor.
  MonitorOptions options;
  options.bad_event_policy = BadEventPolicy::kQuarantine;
  options.quarantine_capacity = 4;
  LogMonitor m(options);
  for (Wid w = 100; w < 110; ++w) {
    m.record(w, "stray");  // unknown instance: quarantined
  }
  EXPECT_EQ(m.num_bad_events(), 10u);
  ASSERT_EQ(m.quarantined().size(), 4u);
  EXPECT_EQ(m.num_quarantine_dropped(), 6u);
  // The ring keeps the most recent events, oldest evicted first.
  EXPECT_EQ(m.quarantined().front().wid, 106u);
  EXPECT_EQ(m.quarantined().back().wid, 109u);
}

TEST(MonitorTest, QuarantineCapacityZeroRetainsNothing) {
  MonitorOptions options;
  options.bad_event_policy = BadEventPolicy::kQuarantine;
  options.quarantine_capacity = 0;
  LogMonitor m(options);
  m.record(7, "stray");
  m.record(8, "stray");
  EXPECT_TRUE(m.quarantined().empty());
  EXPECT_EQ(m.num_quarantine_dropped(), 2u);
  EXPECT_EQ(m.num_bad_events(), 2u);
}

TEST(MonitorTest, CallbackFiresUnderRejectToo) {
  MonitorOptions options;  // kReject
  std::size_t calls = 0;
  options.on_bad_event = [&calls](const BadEvent&) { ++calls; };
  LogMonitor m(options);
  EXPECT_THROW(m.record(1, "a"), Error);
  EXPECT_EQ(calls, 1u);
}

}  // namespace
}  // namespace wflog
