// The wfqd cross-request result cache (src/server/cache.h): key structure,
// LRU/byte-budget mechanics, soundness gates (incomplete results refused,
// tighter-limit requests not served), and the differential suite the PR's
// acceptance criteria name — the same query stream against a cache-on and
// a cache-off server must produce bit-identical answers across /query and
// /batch, through ingest-driven snapshot bumps, under 8 concurrent
// clients, and with deadline/budget-truncated runs interleaved.
//
// "Bit-identical" is asserted on the response body minus the volatile
// blocks that legitimately differ run to run even WITHOUT a cache:
// per-slot "timings" (wall-clock) and the /batch "stats" block (it
// describes the evaluation pass that actually executed, which is exactly
// what the cache shrinks). Everything else — pattern, optimized,
// incidents, totals, stop_reason, error slots — must match byte for byte.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "server/cache.h"
#include "server/client.h"
#include "server/handlers.h"
#include "server/json.h"
#include "server/server.h"
#include "test_util.h"

namespace wflog {
namespace {

using server::CacheOptions;
using server::CacheStats;
using server::ResultCache;

std::shared_ptr<const QueryResult> complete_result() {
  auto r = std::make_shared<QueryResult>();
  r->parsed = Pattern::atom("a");
  r->executed = r->parsed;
  return r;
}

RunLimits limits_of(std::int64_t deadline_ms, std::size_t max_incidents) {
  RunLimits l;
  l.deadline = std::chrono::milliseconds(deadline_ms);
  l.max_incidents = max_incidents;
  return l;
}

// ----- ResultCache unit tests ---------------------------------------------

TEST(ResultCacheTest, KeySeparatesPatternWhereAndVersion) {
  const Query plain = Query::parse("a -> b");
  const Query grouped = Query::parse("a -> (b)");
  const Query with_where = Query::parse("x:a -> b where x.out.k = 1");
  const Query other_binding = Query::parse("y:a -> b where y.out.k = 1");

  // Canonically equal spellings share a key; the snapshot version splits.
  EXPECT_EQ(ResultCache::key(plain, 1), ResultCache::key(grouped, 1));
  EXPECT_NE(ResultCache::key(plain, 1), ResultCache::key(plain, 2));
  // A where clause changes the key even though the pattern key is equal.
  EXPECT_NE(ResultCache::key(plain, 1), ResultCache::key(with_where, 1));
  // Binding names are invisible to canonical_key but not to the where
  // clause — the fingerprint folds the binding-carrying pattern text in.
  EXPECT_NE(ResultCache::key(with_where, 1),
            ResultCache::key(other_binding, 1));
}

TEST(ResultCacheTest, InsertLookupAndLruEviction) {
  CacheOptions co;
  co.shards = 1;  // deterministic LRU order
  co.max_bytes = 3 * (ResultCache::result_bytes(*complete_result()) + 64);
  ResultCache cache(co);
  const RunLimits unlimited;

  cache.insert("k1", complete_result(), unlimited);
  cache.insert("k2", complete_result(), unlimited);
  EXPECT_NE(cache.lookup("k1", unlimited), nullptr);  // k1 now most recent
  EXPECT_NE(cache.lookup("k2", unlimited), nullptr);
  EXPECT_EQ(cache.lookup("missing", unlimited), nullptr);

  // Fill past the budget: the least recently used entry (k1) goes first.
  cache.insert("k3", complete_result(), unlimited);
  cache.insert("k4", complete_result(), unlimited);
  const CacheStats s = cache.stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.bytes, co.max_bytes);
  EXPECT_EQ(cache.lookup("k1", unlimited), nullptr);
  EXPECT_NE(cache.lookup("k4", unlimited), nullptr);
}

TEST(ResultCacheTest, RefusesIncompleteResults) {
  CacheOptions co;
  co.max_bytes = 1 << 20;
  ResultCache cache(co);
  const RunLimits unlimited;

  auto truncated = std::make_shared<QueryResult>(*complete_result());
  truncated->stop_reason = StopReason::kDeadline;
  cache.insert("deadline", truncated, unlimited);

  auto budget = std::make_shared<QueryResult>(*complete_result());
  budget->stop_reason = StopReason::kIncidentBudget;
  cache.insert("budget", budget, unlimited);

  auto failed = std::make_shared<QueryResult>(*complete_result());
  failed->error = "boom";
  cache.insert("error", failed, unlimited);

  EXPECT_EQ(cache.stats().insertions, 0u);
  EXPECT_EQ(cache.lookup("deadline", unlimited), nullptr);
  EXPECT_EQ(cache.lookup("budget", unlimited), nullptr);
  EXPECT_EQ(cache.lookup("error", unlimited), nullptr);
}

TEST(ResultCacheTest, TighterLimitsAreNotServedFromCache) {
  CacheOptions co;
  co.max_bytes = 1 << 20;
  ResultCache cache(co);

  // Stored under a 100ms / 50-incident budget.
  cache.insert("k", complete_result(), limits_of(100, 50));

  // Equal or looser budgets may be served...
  EXPECT_NE(cache.lookup("k", limits_of(100, 50)), nullptr);
  EXPECT_NE(cache.lookup("k", limits_of(500, 100)), nullptr);
  EXPECT_NE(cache.lookup("k", limits_of(0, 0)), nullptr);  // unlimited
  // ...tighter ones on either dimension must re-evaluate.
  EXPECT_EQ(cache.lookup("k", limits_of(50, 50)), nullptr);
  EXPECT_EQ(cache.lookup("k", limits_of(100, 10)), nullptr);
  EXPECT_GT(cache.stats().limit_rejects, 0u);

  // An entry produced WITHOUT limits (0 = unlimited) serves unlimited
  // requests, but a request that asks for ANY finite budget is tighter
  // than unlimited: it owes the caller its own possibly-truncated run.
  cache.insert("u", complete_result(), limits_of(0, 0));
  EXPECT_NE(cache.lookup("u", limits_of(0, 0)), nullptr);
  EXPECT_EQ(cache.lookup("u", limits_of(1, 1)), nullptr);

  // The limit check never mutates the entry — the stored pair is intact.
  EXPECT_NE(cache.lookup("k", limits_of(100, 50)), nullptr);
}

TEST(ResultCacheTest, DisabledCacheNeverStores) {
  ResultCache cache(CacheOptions{});  // max_bytes = 0
  EXPECT_FALSE(cache.enabled());
  cache.insert("k", complete_result(), RunLimits{});
  EXPECT_EQ(cache.lookup("k", RunLimits{}), nullptr);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

// ----- differential suite: cache on vs cache off --------------------------

struct TestServer {
  std::unique_ptr<server::QueryService> service;
  std::unique_ptr<server::HttpServer> http;

  explicit TestServer(std::optional<Log> log,
                      server::ServiceOptions svc = {},
                      server::ServerOptions opts = {}) {
    opts.port = 0;
    service = std::make_unique<server::QueryService>(
        std::move(log), std::move(svc), opts.drain_cancel, std::nullopt);
    server::Router router;
    service->bind(router);
    http = std::make_unique<server::HttpServer>(std::move(router),
                                                std::move(opts));
    service->attach_server(http.get());
    http->start();
  }

  ~TestServer() {
    if (http != nullptr) http->shutdown();
  }

  server::HttpClient client() const {
    return server::HttpClient("127.0.0.1", http->port());
  }
};

server::ServiceOptions cached_options(std::size_t bytes = 16 << 20) {
  server::ServiceOptions svc;
  svc.cache_bytes = bytes;
  return svc;
}

Log dual_log() {
  return testing::make_log("a b c d ; d c b a ; a c b d ; a b d c");
}

/// Strips the blocks that are volatile even without a cache (wall-clock
/// timings; the /batch stats describe the pass that actually executed) and
/// re-serializes. Everything kept must be byte-identical cache-on vs off.
std::string normalized(const std::string& body) {
  server::JsonValue v = server::parse_json(body);
  auto strip = [](server::JsonValue& obj) {
    auto& m = obj.members();
    for (auto it = m.begin(); it != m.end();) {
      if (it->first == "timings" || it->first == "stats") {
        it = m.erase(it);
      } else {
        ++it;
      }
    }
  };
  strip(v);
  if (server::JsonValue* results =
          const_cast<server::JsonValue*>(v.find("results"))) {
    for (server::JsonValue& slot : results->as_array()) strip(slot);
  }
  return v.dump();
}

const std::vector<std::string>& query_stream() {
  static const std::vector<std::string> queries = {
      "a -> b",
      "a -> (b)",        // canonically equal respelling
      "(a -> b)",        // another
      "a . b",
      "b | c",
      "c | b",           // commuted
      "a & d",
      "!b",
      "a -> b",          // repeats — the cache's bread and butter
      "b | c",
      "x:a -> y:b where x.out.k = y.in.k",
      "z:a -> y:b where z.out.k = y.in.k",  // binding renamed
      "x:a -> b where x.out.k = 1",
      "a -> b",
  };
  return queries;
}

TEST(CacheDifferentialTest, QueryStreamBitIdentical) {
  TestServer off(dual_log());
  TestServer on(dual_log(), cached_options());
  server::HttpClient c_off = off.client();
  server::HttpClient c_on = on.client();

  for (const std::string& q : query_stream()) {
    server::JsonValue body;
    body.set("query", q);
    const server::ClientResponse a = c_off.post("/query", body.dump());
    const server::ClientResponse b = c_on.post("/query", body.dump());
    ASSERT_EQ(a.status, b.status) << q;
    EXPECT_EQ(normalized(a.body), normalized(b.body)) << q;
    // The cached server declares itself; the uncached one stays silent.
    EXPECT_EQ(a.header("x-wfq-cache"), nullptr);
    ASSERT_NE(b.header("x-wfq-cache"), nullptr);
  }

  // The repeats actually hit: re-issue the first query and check.
  server::JsonValue body;
  body.set("query", query_stream()[0]);
  const server::ClientResponse again = c_on.post("/query", body.dump());
  ASSERT_NE(again.header("x-wfq-cache"), nullptr);
  EXPECT_EQ(*again.header("x-wfq-cache"), "hit");
}

TEST(CacheDifferentialTest, CanonicalRespellingHitsTheSameEntry) {
  TestServer on(dual_log(), cached_options());
  server::HttpClient c = on.client();
  ASSERT_EQ(c.post("/query", R"({"query": "b | c"})").status, 200);
  const server::ClientResponse r = c.post("/query", R"({"query": "c | b"})");
  ASSERT_NE(r.header("x-wfq-cache"), nullptr);
  EXPECT_EQ(*r.header("x-wfq-cache"), "hit");
  // ...and the hit is transparent: the "pattern" echo shows THIS
  // request's spelling (not the populating "b | c"), and the answer
  // equals a fresh evaluation's.
  const server::JsonValue v = server::parse_json(r.body);
  EXPECT_EQ(v.find("pattern")->as_string(), "c | b");
  const Log log = dual_log();
  const QueryEngine engine(log);
  EXPECT_EQ(v.find("total")->as_int(),
            static_cast<std::int64_t>(engine.run("c | b").total()));
}

TEST(CacheDifferentialTest, BatchStreamBitIdentical) {
  TestServer off(dual_log());
  TestServer on(dual_log(), cached_options());
  server::HttpClient c_off = off.client();
  server::HttpClient c_on = on.client();

  const std::string batch = R"({"queries": ["a -> b", "b | c",
      "this does not parse ((", "a & d", "a -> b"], "threads": 2})";
  for (int round = 0; round < 3; ++round) {
    const server::ClientResponse a = c_off.post("/batch", batch);
    const server::ClientResponse b = c_on.post("/batch", batch);
    ASSERT_EQ(a.status, 200);
    ASSERT_EQ(b.status, 200);
    EXPECT_EQ(normalized(a.body), normalized(b.body)) << "round " << round;
  }
  // Round 3's slots were all served from cache except the parse error.
  const server::ClientResponse last = c_on.post("/batch", batch);
  const server::JsonValue v = server::parse_json(last.body);
  EXPECT_EQ(v.find("stats")->find("result_cache_hits")->as_int(), 4);
}

TEST(CacheDifferentialTest, IngestBumpsSnapshotVersionAndInvalidates) {
  TestServer off(dual_log());
  TestServer on(dual_log(), cached_options());
  server::HttpClient c_off = off.client();
  server::HttpClient c_on = on.client();

  const std::string q = R"({"query": "a -> b"})";
  const std::string ingest = R"({"events": [
      {"op": "begin"},
      {"op": "record", "wid": 5, "activity": "a"},
      {"op": "record", "wid": 5, "activity": "b"},
      {"op": "end", "wid": 5}]})";

  // Warm the cache, interleave an ingest, re-query: the answer must track
  // the new snapshot on both servers (version-keyed, no stale hit).
  ASSERT_EQ(c_on.post("/query", q).status, 200);
  ASSERT_EQ(c_off.post("/query", q).status, 200);
  ASSERT_EQ(c_on.post("/ingest", ingest).status, 200);
  ASSERT_EQ(c_off.post("/ingest", ingest).status, 200);

  const server::ClientResponse a = c_off.post("/query", q);
  const server::ClientResponse b = c_on.post("/query", q);
  EXPECT_EQ(normalized(a.body), normalized(b.body));
  ASSERT_NE(b.header("x-wfq-cache"), nullptr);
  EXPECT_EQ(*b.header("x-wfq-cache"), "miss");  // old entry is for v1
  EXPECT_EQ(server::parse_json(b.body).find("total")->as_int(),
            server::parse_json(a.body).find("total")->as_int());

  // And the new snapshot's entry serves repeats.
  const server::ClientResponse again = c_on.post("/query", q);
  EXPECT_EQ(*again.header("x-wfq-cache"), "hit");
  EXPECT_EQ(normalized(again.body), normalized(a.body));
}

TEST(CacheDifferentialTest, EightConcurrentClientsStayIdentical) {
  TestServer off(dual_log());
  server::ServerOptions opts;
  opts.threads = 4;
  TestServer on(dual_log(), cached_options(), opts);

  // Reference answers from the uncached server, sequentially.
  std::vector<std::string> expect;
  {
    server::HttpClient c = off.client();
    for (const std::string& q : query_stream()) {
      server::JsonValue body;
      body.set("query", q);
      expect.push_back(normalized(c.post("/query", body.dump()).body));
    }
  }

  constexpr int kClients = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      server::HttpClient c = on.client();
      for (int round = 0; round < 3; ++round) {
        // Different starting offset per client: hits and misses race.
        for (std::size_t i = 0; i < query_stream().size(); ++i) {
          const std::size_t at =
              (i + static_cast<std::size_t>(t)) % query_stream().size();
          server::JsonValue body;
          body.set("query", query_stream()[at]);
          const server::ClientResponse r =
              c.post("/query", body.dump());
          if (r.status != 200 || normalized(r.body) != expect[at]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(CacheDifferentialTest, TruncatedRunsAreNeverCached) {
  // Force deterministic truncation with an incident budget of 1 on a
  // query that has more than one incident.
  TestServer off(dual_log());
  TestServer on(dual_log(), cached_options());
  server::HttpClient c_off = off.client();
  server::HttpClient c_on = on.client();

  const std::string limited =
      R"({"query": "b | c", "max_incidents": 1})";
  for (int round = 0; round < 3; ++round) {
    const server::ClientResponse a = c_off.post("/query", limited);
    const server::ClientResponse b = c_on.post("/query", limited);
    ASSERT_EQ(a.status, 200);
    ASSERT_EQ(b.status, 200);
    EXPECT_EQ(normalized(a.body), normalized(b.body));
    const server::JsonValue v = server::parse_json(b.body);
    EXPECT_FALSE(v.find("complete")->as_bool());
    EXPECT_EQ(v.find("stop_reason")->as_string(), "incident-budget");
    // Truncated runs never enter the cache: every round is a miss.
    ASSERT_NE(b.header("x-wfq-cache"), nullptr);
    EXPECT_EQ(*b.header("x-wfq-cache"), "miss");
  }
  // /stats agrees: nothing was inserted.
  const server::JsonValue stats =
      server::parse_json(c_on.get("/stats").body);
  ASSERT_NE(stats.find("cache"), nullptr);
  EXPECT_EQ(stats.find("cache")->find("insertions")->as_int(), 0);

  // Now cache the COMPLETE answer, then ask with the tight budget again:
  // the complete entry must NOT satisfy the limited request.
  ASSERT_EQ(c_on.post("/query", R"({"query": "b | c"})").status, 200);
  const server::ClientResponse after = c_on.post("/query", limited);
  EXPECT_EQ(*after.header("x-wfq-cache"), "miss");
  EXPECT_EQ(server::parse_json(after.body).find("stop_reason")->as_string(),
            "incident-budget");
  EXPECT_EQ(normalized(after.body),
            normalized(c_off.post("/query", limited).body));
}

TEST(CacheDifferentialTest, NoCacheHeaderBypassesLookupButStillStores) {
  TestServer on(dual_log(), cached_options());
  server::HttpClient c = on.client();
  const std::string body = R"({"query": "a -> b"})";
  const server::HttpClient::Headers no_cache = {
      {"cache-control", "no-cache"}};

  // First request stores; a no-cache repeat re-evaluates (miss) but the
  // store stays warm for the next normal request.
  ASSERT_EQ(c.post("/query", body, "application/json").status, 200);
  const server::ClientResponse bypass =
      c.post("/query", body, "application/json", no_cache);
  ASSERT_NE(bypass.header("x-wfq-cache"), nullptr);
  EXPECT_EQ(*bypass.header("x-wfq-cache"), "miss");
  const server::ClientResponse warm = c.post("/query", body);
  EXPECT_EQ(*warm.header("x-wfq-cache"), "hit");
}

TEST(CacheStatsTest, StatsEndpointExposesCacheCounters) {
  TestServer on(dual_log(), cached_options());
  server::HttpClient c = on.client();
  ASSERT_EQ(c.post("/query", R"({"query": "a -> b"})").status, 200);
  ASSERT_EQ(c.post("/query", R"({"query": "a -> b"})").status, 200);
  const server::JsonValue v = server::parse_json(c.get("/stats").body);
  const server::JsonValue* cache = v.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_TRUE(cache->find("enabled")->as_bool());
  EXPECT_GE(cache->find("hits")->as_int(), 1);
  EXPECT_GE(cache->find("insertions")->as_int(), 1);
  EXPECT_GT(cache->find("bytes")->as_int(), 0);
  EXPECT_GT(v.find("snapshot_version")->as_int(), 0);

  // Cache off: /stats says so (null block) and no header is emitted.
  TestServer off(dual_log());
  server::HttpClient c_off = off.client();
  const server::JsonValue v_off =
      server::parse_json(c_off.get("/stats").body);
  ASSERT_NE(v_off.find("cache"), nullptr);
  EXPECT_TRUE(v_off.find("cache")->is_null());
}

}  // namespace
}  // namespace wflog
