// Tests for the telemetry subsystem (src/obs/): registry merge semantics
// across threads, histogram bucket boundaries, span nesting and ordering,
// Chrome-trace JSON validity (round-trip parsed by a tiny JSON reader
// below), and Prometheus text exposition grammar.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "common/error.h"
#include "core/engine.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/ring.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "workflow/workload.h"

namespace wflog::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON reader (objects, arrays, strings, numbers, literals)
// — just enough to round-trip-validate the exporters without a dependency.

struct Json {
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v;

  bool is_object() const { return std::holds_alternative<Object>(v); }
  bool is_array() const { return std::holds_alternative<Array>(v); }
  bool is_number() const { return std::holds_alternative<double>(v); }
  bool is_string() const { return std::holds_alternative<std::string>(v); }
  const Object& object() const { return std::get<Object>(v); }
  const Array& array() const { return std::get<Array>(v); }
  double number() const { return std::get<double>(v); }
  const std::string& str() const { return std::get<std::string>(v); }

  const Json& at(const std::string& key) const {
    const auto it = object().find(key);
    if (it == object().end()) throw std::runtime_error("no key " + key);
    return it->second;
  }
  bool has(const std::string& key) const {
    return is_object() && object().count(key) != 0;
  }
};

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : p_(text.data()), end_(text.data() + text.size()) {}

  Json parse() {
    Json v = value();
    ws();
    if (p_ != end_) throw std::runtime_error("trailing garbage");
    return v;
  }

 private:
  void ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) ++p_;
  }
  char peek() {
    if (p_ == end_) throw std::runtime_error("unexpected end");
    return *p_;
  }
  void expect(char c) {
    if (p_ == end_ || *p_ != c) throw std::runtime_error(std::string("expected ") + c);
    ++p_;
  }
  bool consume(char c) {
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  Json value() {
    ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return Json{string()};
      case 't': literal("true"); return Json{true};
      case 'f': literal("false"); return Json{false};
      case 'n': literal("null"); return Json{nullptr};
      default: return Json{number()};
    }
  }

  void literal(std::string_view lit) {
    for (char c : lit) expect(c);
  }

  Json object() {
    expect('{');
    Json::Object out;
    ws();
    if (consume('}')) return Json{std::move(out)};
    while (true) {
      ws();
      std::string key = string();
      ws();
      expect(':');
      out.emplace(std::move(key), value());
      ws();
      if (consume('}')) return Json{std::move(out)};
      expect(',');
    }
  }

  Json array() {
    expect('[');
    Json::Array out;
    ws();
    if (consume(']')) return Json{std::move(out)};
    while (true) {
      out.push_back(value());
      ws();
      if (consume(']')) return Json{std::move(out)};
      expect(',');
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (p_ == end_) throw std::runtime_error("unterminated string");
      char c = *p_++;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        throw std::runtime_error("raw control char in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      c = *p_++;
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            if (p_ == end_ || !std::isxdigit(static_cast<unsigned char>(*p_))) {
              throw std::runtime_error("bad \\u escape");
            }
            code = code * 16 +
                   static_cast<unsigned>(
                       std::isdigit(static_cast<unsigned char>(*p_))
                           ? *p_ - '0'
                           : std::tolower(static_cast<unsigned char>(*p_)) - 'a' + 10);
            ++p_;
          }
          if (code > 0x7f) throw std::runtime_error("non-ascii \\u unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: throw std::runtime_error("bad escape");
      }
    }
  }

  double number() {
    const char* start = p_;
    if (consume('-')) {
    }
    while (p_ != end_ &&
           (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
            *p_ == 'e' || *p_ == 'E' || *p_ == '+' || *p_ == '-')) {
      ++p_;
    }
    if (p_ == start) throw std::runtime_error("bad number");
    return std::stod(std::string(start, p_));
  }

  const char* p_;
  const char* end_;
};

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistryTest, CounterMergesAcrossThreads) {
  MetricsRegistry registry;
  Counter* c = registry.counter("test_total", "a test counter");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c->inc();
    });
  }
  for (std::thread& th : pool) th.join();
  // Tallies survive worker-thread exit: shards are registry-owned.
  EXPECT_EQ(c->value(), kThreads * kPerThread);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentByName) {
  MetricsRegistry registry;
  Counter* a = registry.counter("dup_total", "help");
  Counter* b = registry.counter("dup_total");
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.num_metrics(), 1u);
}

TEST(MetricsRegistryTest, KindClashAndBadNamesThrow) {
  MetricsRegistry registry;
  registry.counter("clash");
  EXPECT_THROW(registry.gauge("clash"), Error);
  EXPECT_THROW(registry.histogram("clash", {1.0}), Error);
  EXPECT_THROW(registry.counter("9starts_with_digit"), Error);
  EXPECT_THROW(registry.counter("has-dash"), Error);
  EXPECT_THROW(registry.counter(""), Error);
  registry.counter("ok:colons_and_123");  // legal per the grammar
}

TEST(MetricsRegistryTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("depth");
  g->set(4.0);
  EXPECT_DOUBLE_EQ(g->value(), 4.0);
  g->add(2.5);
  g->add(-1.5);
  EXPECT_DOUBLE_EQ(g->value(), 5.0);
}

TEST(MetricsRegistryTest, HistogramBucketBoundariesAreLeInclusive) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat", {1.0, 2.0});
  h->observe(0.5);  // le=1
  h->observe(1.0);  // le=1 (boundary is INCLUSIVE, Prometheus semantics)
  h->observe(1.5);  // le=2
  h->observe(2.0);  // le=2
  h->observe(9.0);  // +Inf
  const std::vector<std::uint64_t> buckets = h->bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);  // two bounds + the implicit +Inf
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(h->count(), 5u);
  EXPECT_DOUBLE_EQ(h->sum(), 14.0);
}

TEST(MetricsRegistryTest, HistogramMergesAcrossThreads) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat", {0.5});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->observe(t % 2 == 0 ? 0.25 : 0.75);
      }
    });
  }
  for (std::thread& th : pool) th.join();
  EXPECT_EQ(h->count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  const std::vector<std::uint64_t> buckets = h->bucket_counts();
  EXPECT_EQ(buckets[0], 2000u);
  EXPECT_EQ(buckets[1], 2000u);
  EXPECT_DOUBLE_EQ(h->sum(), 2000 * 0.25 + 2000 * 0.75);
}

TEST(MetricsRegistryTest, BadHistogramBoundsThrow) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.histogram("empty", {}), Error);
  EXPECT_THROW(registry.histogram("descending", {2.0, 1.0}), Error);
  EXPECT_THROW(registry.histogram("dup", {1.0, 1.0}), Error);
}

TEST(MetricsRegistryTest, SnapshotCarriesHelpAndValues) {
  MetricsRegistry registry;
  registry.counter("c_total", "counts things")->add(7);
  registry.gauge("g", "measures things")->set(2.5);
  registry.histogram("h", {1.0}, "times things")->observe(0.5);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "c_total");
  EXPECT_EQ(snap.counters[0].help, "counts things");
  EXPECT_EQ(snap.counters[0].value, 7u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, 2.5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  ASSERT_EQ(snap.histograms[0].buckets.size(), 2u);
  EXPECT_EQ(snap.histograms[0].buckets[0], 1u);
}

// ---------------------------------------------------------------------------
// Tracer

TEST(TracerTest, SpansNestPerThreadAndParentsPrecedeChildren) {
  Tracer tracer;
  {
    Tracer::Span outer = tracer.span("outer");
    {
      Tracer::Span inner = tracer.span("inner");
      inner.arg("n", std::uint64_t{3});
    }
    Tracer::Span sibling = tracer.span("sibling");
  }
  Tracer::Span after = tracer.span("after");
  after.end();

  const SpanSnapshot snap = tracer.snapshot();
  ASSERT_EQ(snap.spans.size(), 4u);
  std::map<std::string, std::size_t> by_name;
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    by_name[snap.spans[i].name] = i;
  }
  const SpanRecord& outer = snap.spans[by_name.at("outer")];
  const SpanRecord& inner = snap.spans[by_name.at("inner")];
  const SpanRecord& sibling = snap.spans[by_name.at("sibling")];
  const SpanRecord& after_rec = snap.spans[by_name.at("after")];

  EXPECT_EQ(outer.parent, SpanRecord::kNoParent);
  EXPECT_EQ(inner.parent, by_name.at("outer"));
  EXPECT_EQ(sibling.parent, by_name.at("outer"));
  EXPECT_EQ(after_rec.parent, SpanRecord::kNoParent);

  // Ordered by start time within the lane; parents precede children.
  EXPECT_LT(by_name.at("outer"), by_name.at("inner"));
  EXPECT_LE(outer.start_ns, inner.start_ns);
  EXPECT_LE(inner.start_ns, sibling.start_ns);
  EXPECT_GE(outer.dur_ns, inner.dur_ns);

  ASSERT_EQ(inner.args.size(), 1u);
  EXPECT_EQ(inner.args[0].key, "n");
  EXPECT_EQ(std::get<std::uint64_t>(inner.args[0].value), 3u);
}

TEST(TracerTest, ArgTypesRoundTrip) {
  Tracer tracer;
  {
    Tracer::Span s = tracer.span("s");
    s.arg("u", std::uint64_t{42});
    s.arg("d", 2.5);
    s.arg("str", std::string("hello"));
  }
  const SpanSnapshot snap = tracer.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  const std::vector<SpanArg>& args = snap.spans[0].args;
  ASSERT_EQ(args.size(), 3u);
  EXPECT_EQ(std::get<std::uint64_t>(args[0].value), 42u);
  EXPECT_DOUBLE_EQ(std::get<double>(args[1].value), 2.5);
  EXPECT_EQ(std::get<std::string>(args[2].value), "hello");
}

TEST(TracerTest, InertSpanIsANoop) {
  Tracer::Span span;
  EXPECT_FALSE(span.active());
  span.arg("k", std::uint64_t{1});
  span.end();  // must not crash
}

TEST(TracerTest, MoveTransfersOwnership) {
  Tracer tracer;
  Tracer::Span a = tracer.span("moved");
  Tracer::Span b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): deliberate
  EXPECT_TRUE(b.active());
  b.end();
  EXPECT_EQ(tracer.num_spans(), 1u);
}

TEST(TracerTest, ThreadsGetSeparateLanes) {
  Tracer tracer;
  std::vector<std::thread> pool;
  for (int t = 0; t < 2; ++t) {
    pool.emplace_back([&tracer] {
      Tracer::Span outer = tracer.span("work");
      Tracer::Span inner = tracer.span("step");
    });
  }
  for (std::thread& th : pool) th.join();
  const SpanSnapshot snap = tracer.snapshot();
  ASSERT_EQ(snap.spans.size(), 4u);
  // Each lane holds its own parent chain: every "step" is nested under a
  // "work" of the SAME tid.
  for (const SpanRecord& s : snap.spans) {
    if (s.name != "step") continue;
    ASSERT_NE(s.parent, SpanRecord::kNoParent);
    EXPECT_EQ(snap.spans[s.parent].name, "work");
    EXPECT_EQ(snap.spans[s.parent].tid, s.tid);
  }
  std::set<std::uint32_t> tids;
  for (const SpanRecord& s : snap.spans) tids.insert(s.tid);
  EXPECT_EQ(tids.size(), 2u);
}

TEST(TracerTest, ClearDropsRecordedSpans) {
  Tracer tracer;
  tracer.span("one").end();
  EXPECT_EQ(tracer.num_spans(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.num_spans(), 0u);
  tracer.span("two").end();
  EXPECT_EQ(tracer.num_spans(), 1u);
}

TEST(TracerTest, SnapshotStampsStillOpenSpans) {
  Tracer tracer;
  Tracer::Span open = tracer.span("open");
  const SpanSnapshot snap = tracer.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].name, "open");
  open.end();
}

TEST(TracerTest, ThreadMarkSummarizesOnlyNewerClosedSpans) {
  Tracer tracer;
  tracer.span("before").end();  // older than the mark: excluded

  const std::size_t mark = tracer.thread_mark();
  tracer.span("eval").end();
  tracer.span("eval").end();
  tracer.span("render").end();
  Tracer::Span open = tracer.span("open");  // not closed: excluded

  const std::vector<SpanSummary> sum = tracer.summarize_thread_since(mark);
  ASSERT_EQ(sum.size(), 2u);
  EXPECT_EQ(sum[0].name, "eval");  // first-seen order
  EXPECT_EQ(sum[0].count, 2u);
  EXPECT_GE(sum[0].total_ns, sum[0].max_ns);
  EXPECT_EQ(sum[1].name, "render");
  EXPECT_EQ(sum[1].count, 1u);
  open.end();
}

TEST(TracerTest, ThreadMarkIsPerThread) {
  Tracer tracer;
  const std::size_t mark = tracer.thread_mark();
  std::thread([&tracer] { tracer.span("elsewhere").end(); }).join();
  // Another thread's spans land in its own lane: this thread still sees
  // nothing past its mark.
  EXPECT_TRUE(tracer.summarize_thread_since(mark).empty());
}

TEST(TracerTest, SpanLimitDropsAndCounts) {
  Tracer tracer;
  tracer.set_thread_span_limit(2);
  EXPECT_EQ(tracer.thread_span_limit(), 2u);
  tracer.span("a").end();
  tracer.span("b").end();
  Tracer::Span dropped = tracer.span("c");
  EXPECT_FALSE(dropped.active());  // inert: over the cap
  EXPECT_EQ(tracer.num_spans(), 2u);
  EXPECT_EQ(tracer.num_dropped(), 1u);

  tracer.set_thread_span_limit(0);  // uncapped again
  tracer.span("d").end();
  EXPECT_EQ(tracer.num_spans(), 3u);
  EXPECT_EQ(tracer.num_dropped(), 1u);
}

// ---------------------------------------------------------------------------
// Exporters

MetricsRegistry& example_registry() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    r->counter("wflog_frobs_total", "how many frobs")->add(3);
    r->gauge("wflog_depth", "current depth")->set(1.5);
    Histogram* h = r->histogram("wflog_lat_seconds", {0.1, 1.0}, "latency");
    h->observe(0.05);
    h->observe(0.5);
    h->observe(5.0);
    return r;
  }();
  return *registry;
}

TEST(PrometheusExportTest, ExpositionGrammar) {
  const std::string text = to_prometheus_text(example_registry().snapshot());
  // Every line is a comment or `name{labels} value`, names legal.
  const std::regex comment(R"(^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$)");
  const std::regex sample(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? ([0-9eE.+-]+|\+Inf|NaN)$)");
  std::istringstream in(text);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    ++lines;
    if (line[0] == '#') {
      EXPECT_TRUE(std::regex_match(line, comment)) << line;
    } else {
      EXPECT_TRUE(std::regex_match(line, sample)) << line;
    }
  }
  EXPECT_GT(lines, 10u);
}

TEST(PrometheusExportTest, EscapeLabelValue) {
  EXPECT_EQ(escape_label_value("plain"), "plain");
  EXPECT_EQ(escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(escape_label_value("two\nlines"), "two\\nlines");
  EXPECT_EQ(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
  EXPECT_EQ(escape_label_value(""), "");
}

// The exposition convention: counters (and only counters) end in _total.
// Guards the ambient Telemetry registry against drift as metrics get
// added — a counter named like a gauge breaks dashboards silently.
TEST(PrometheusExportTest, CounterNamesCarryTotalSuffix) {
  Telemetry telemetry;  // registers the full engine/server metric set
  const auto ends_with_total = [](const std::string& name) {
    static const std::string suffix = "_total";
    return name.size() > suffix.size() &&
           name.compare(name.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
  };
  const MetricsSnapshot snap = telemetry.metrics.snapshot();
  EXPECT_FALSE(snap.counters.empty());
  for (const MetricsSnapshot::CounterSample& c : snap.counters) {
    EXPECT_TRUE(ends_with_total(c.name)) << c.name;
  }
  for (const MetricsSnapshot::GaugeSample& g : snap.gauges) {
    EXPECT_FALSE(ends_with_total(g.name)) << g.name;
  }
  for (const MetricsSnapshot::HistogramSample& h : snap.histograms) {
    EXPECT_FALSE(ends_with_total(h.name)) << h.name;
  }
}

TEST(PrometheusExportTest, HistogramBucketsAreCumulativeAndConsistent) {
  const std::string text = to_prometheus_text(example_registry().snapshot());
  // wflog_lat_seconds: 3 observations, one per bucket → cumulative 1,2,3.
  EXPECT_NE(text.find("# TYPE wflog_lat_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("wflog_lat_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("wflog_lat_seconds_bucket{le=\"1\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("wflog_lat_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("wflog_lat_seconds_count 3"), std::string::npos);
  EXPECT_NE(text.find("wflog_frobs_total 3"), std::string::npos);
  EXPECT_NE(text.find("wflog_depth 1.5"), std::string::npos);
}

TEST(JsonExportTest, MetricsJsonRoundTrips) {
  const std::string text = metrics_to_json(example_registry().snapshot());
  const Json doc = JsonReader(text).parse();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("counters").at("wflog_frobs_total").number(), 3.0);
  EXPECT_EQ(doc.at("gauges").at("wflog_depth").number(), 1.5);
  const Json& hist = doc.at("histograms").at("wflog_lat_seconds");
  EXPECT_EQ(hist.at("count").number(), 3.0);
  ASSERT_EQ(hist.at("buckets").array().size(), 3u);
  EXPECT_EQ(hist.at("buckets").array()[0].at("count").number(), 1.0);
}

TEST(ChromeTraceExportTest, JsonRoundTripsWithNestingIntact) {
  Tracer tracer;
  {
    Tracer::Span outer = tracer.span("query");
    outer.arg("query", std::string("a \"quoted\" -> b\n"));
    Tracer::Span inner = tracer.span("query.eval");
    inner.arg("incidents", std::uint64_t{12});
  }
  const std::string text = to_chrome_trace_json(tracer.snapshot());
  const Json doc = JsonReader(text).parse();
  ASSERT_TRUE(doc.is_object());
  const Json::Array& events = doc.at("traceEvents").array();
  ASSERT_EQ(events.size(), 2u);
  for (const Json& e : events) {
    EXPECT_EQ(e.at("ph").str(), "X");
    EXPECT_EQ(e.at("pid").number(), 1.0);
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_TRUE(e.at("dur").is_number());
    EXPECT_TRUE(e.at("name").is_string());
  }
  // The escaped arg survives the round trip byte-for-byte.
  bool found = false;
  for (const Json& e : events) {
    if (e.at("name").str() != "query") continue;
    found = true;
    EXPECT_EQ(e.at("args").at("query").str(), "a \"quoted\" -> b\n");
  }
  EXPECT_TRUE(found);
}

TEST(TreeExportTest, IndentsChildrenUnderParents) {
  Tracer tracer;
  {
    Tracer::Span outer = tracer.span("query");
    Tracer::Span inner = tracer.span("query.eval");
  }
  const std::string tree = to_tree_string(tracer.snapshot());
  EXPECT_NE(tree.find("query "), std::string::npos);
  EXPECT_NE(tree.find("\n  query.eval "), std::string::npos);
}

// ---------------------------------------------------------------------------
// BoundedRing: the /debug ring-buffer primitive

TEST(BoundedRingTest, FillsThenOverwritesOldestFirst) {
  BoundedRing<int> ring(3);
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_TRUE(ring.snapshot().empty());

  ring.push(1);
  ring.push(2);
  EXPECT_EQ(ring.snapshot(), (std::vector<int>{1, 2}));
  EXPECT_EQ(ring.evicted(), 0u);

  ring.push(3);
  ring.push(4);  // evicts 1
  ring.push(5);  // evicts 2
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.snapshot(), (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(ring.evicted(), 2u);
}

TEST(BoundedRingTest, ClearResetsContentsButNotEvictionCount) {
  BoundedRing<std::string> ring(2);
  ring.push("a");
  ring.push("b");
  ring.push("c");
  EXPECT_EQ(ring.evicted(), 1u);
  ring.clear();
  EXPECT_TRUE(ring.snapshot().empty());
  EXPECT_EQ(ring.evicted(), 1u);  // lifetime counter survives clear()
  ring.push("d");
  EXPECT_EQ(ring.snapshot(), (std::vector<std::string>{"d"}));
}

TEST(BoundedRingTest, ZeroCapacityClampsToOne) {
  BoundedRing<int> ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  ring.push(7);
  ring.push(8);
  EXPECT_EQ(ring.snapshot(), (std::vector<int>{8}));
}

TEST(BoundedRingTest, ConcurrentPushesKeepAllSlotsValid) {
  BoundedRing<int> ring(16);
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&ring, t] {
      for (int i = 0; i < 500; ++i) ring.push(t * 1000 + i);
    });
  }
  for (std::thread& th : pool) th.join();
  const std::vector<int> snap = ring.snapshot();
  EXPECT_EQ(snap.size(), 16u);
  EXPECT_EQ(ring.evicted(), 4u * 500u - 16u);
  for (const int v : snap) EXPECT_GE(v, 0);
}

// ---------------------------------------------------------------------------
// Telemetry: the ambient instance + engine integration

TEST(TelemetryTest, NoAmbientInstanceByDefault) {
  EXPECT_EQ(telemetry(), nullptr);
  WFLOG_SPAN(span, "nothing");
  EXPECT_FALSE(span.active());
  bool entered = false;
  WFLOG_TELEMETRY(t) { entered = (t != nullptr); }
  EXPECT_FALSE(entered);
}

// The ambient-instance tests only apply when instrumentation is compiled
// in; with -DWFLOG_OBS=OFF install_telemetry() is a deliberate no-op.
#if WFLOG_OBS_ENABLED

TEST(TelemetryTest, ScopedInstallAndRestore) {
  Telemetry outer_instance;
  {
    ScopedTelemetry outer(outer_instance);
    EXPECT_EQ(telemetry(), &outer_instance);
    Telemetry inner_instance;
    {
      ScopedTelemetry inner(inner_instance);
      EXPECT_EQ(telemetry(), &inner_instance);
    }
    EXPECT_EQ(telemetry(), &outer_instance);
  }
  EXPECT_EQ(telemetry(), nullptr);
}

TEST(TelemetryTest, EngineRunRecordsSpansAndMetrics) {
  const Log log = workload::clinic(10, 42);
  Telemetry telemetry;
  ScopedTelemetry installed(telemetry);

  const QueryEngine engine(log);
  const QueryResult r = engine.run("CheckIn -> SeeDoctor");
  EXPECT_TRUE(r.any());

  EXPECT_EQ(telemetry.queries_total->value(), 1u);
  EXPECT_EQ(telemetry.query_eval_seconds->count(), 1u);
  EXPECT_GT(telemetry.eval_operator_nodes_total->value(), 0u);
  EXPECT_GT(telemetry.eval_incidents_emitted_total->value(), 0u);

  std::map<std::string, const SpanRecord*> by_name;
  const SpanSnapshot snap = telemetry.tracer.snapshot();
  for (const SpanRecord& s : snap.spans) by_name[s.name] = &s;
  ASSERT_TRUE(by_name.count("engine.index_build"));
  ASSERT_TRUE(by_name.count("query"));
  ASSERT_TRUE(by_name.count("query.parse"));
  ASSERT_TRUE(by_name.count("query.optimize"));
  ASSERT_TRUE(by_name.count("query.eval"));
  // parse/optimize/eval are children of the "query" span.
  const SpanRecord* eval = by_name.at("query.eval");
  ASSERT_NE(eval->parent, SpanRecord::kNoParent);
  EXPECT_EQ(snap.spans[eval->parent].name, "query");
}

TEST(TelemetryTest, TraceNodesEmitsPerOperatorSpans) {
  const Log log = workload::clinic(5, 7);
  Telemetry telemetry;
  telemetry.trace_nodes = true;
  ScopedTelemetry installed(telemetry);

  const QueryEngine engine(log);
  engine.run("CheckIn -> SeeDoctor");

  std::size_t atom_spans = 0, op_spans = 0;
  for (const SpanRecord& s : telemetry.tracer.snapshot().spans) {
    if (s.name == "CheckIn" || s.name == "SeeDoctor") ++atom_spans;
    if (s.name == "[->]") ++op_spans;
  }
  // One span per node per instance.
  EXPECT_EQ(atom_spans, 2 * log.wids().size());
  EXPECT_EQ(op_spans, log.wids().size());
}

TEST(TelemetryTest, BatchRunFoldsSharedPassFigures) {
  const Log log = workload::clinic(8, 3);
  Telemetry telemetry;
  ScopedTelemetry installed(telemetry);

  const QueryEngine engine(log);
  const std::vector<std::string> texts = {"CheckIn -> SeeDoctor",
                                          "GetRefer -> CheckIn"};
  const BatchResult batch = engine.run_batch(texts);

  EXPECT_EQ(telemetry.batches_total->value(), 1u);
  EXPECT_EQ(telemetry.batch_queries_total->value(), 2u);
  EXPECT_EQ(telemetry.batch_eval_seconds->count(), 1u);
  // Documented attribution: every per-query eval_us reports the full
  // shared pass (engine.h).
  for (const QueryResult& r : batch.results) {
    EXPECT_DOUBLE_EQ(r.eval_us, batch.eval_us);
  }
}

#endif  // WFLOG_OBS_ENABLED

}  // namespace
}  // namespace wflog::obs
