#include "common/text.h"

#include <gtest/gtest.h>

namespace wflog {
namespace {

TEST(TextTest, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("\tx\n"), "x");
}

TEST(TextTest, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(TextTest, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(TextTest, SplitQuotedRespectsQuotes) {
  const auto parts = split_quoted("a=1; b=\"x; y\"; c=2", ';');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(trim(parts[1]), "b=\"x; y\"");
}

TEST(TextTest, SplitQuotedEscapedQuote) {
  const auto parts = split_quoted("a=\"q\\\"; still\"; b=1", ';');
  ASSERT_EQ(parts.size(), 2u);
}

TEST(TextTest, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"only"}, ","), "only");
}

TEST(TextTest, CsvEscapePlain) { EXPECT_EQ(csv_escape("abc"), "abc"); }

TEST(TextTest, CsvEscapeSpecials) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("he said \"hi\""), "\"he said \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(TextTest, CsvParseLineSimple) {
  const auto fields = csv_parse_line("1,2,abc");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[2], "abc");
}

TEST(TextTest, CsvParseLineQuoted) {
  const auto fields = csv_parse_line("a,\"b,c\",\"say \"\"hi\"\"\"");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[1], "b,c");
  EXPECT_EQ(fields[2], "say \"hi\"");
}

TEST(TextTest, CsvRoundTrip) {
  const std::string inputs[] = {"plain", "a,b", "with \"quotes\"", "",
                                "trailing,"};
  for (const std::string& s : inputs) {
    const auto fields = csv_parse_line(csv_escape(s));
    ASSERT_EQ(fields.size(), 1u) << s;
    EXPECT_EQ(fields[0], s);
  }
}

TEST(TextTest, IsIdentifier) {
  EXPECT_TRUE(is_identifier("abc"));
  EXPECT_TRUE(is_identifier("_x9"));
  EXPECT_TRUE(is_identifier("GetRefer"));
  EXPECT_FALSE(is_identifier(""));
  EXPECT_FALSE(is_identifier("9abc"));
  EXPECT_FALSE(is_identifier("a-b"));
  EXPECT_FALSE(is_identifier("a b"));
}

}  // namespace
}  // namespace wflog
