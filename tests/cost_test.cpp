#include "core/cost.h"

#include <gtest/gtest.h>

#include "core/parser.h"
#include "test_util.h"

namespace wflog {
namespace {

using testing::make_log;

TEST(CostModelTest, AtomCardinalityFromIndex) {
  // 3 instances; "a" occurs 6 times -> 2 per instance.
  const Log log = make_log("a a b ; a a ; a a b");
  LogIndex index(log);
  const CostModel model(index);
  EXPECT_DOUBLE_EQ(model.estimate(*parse_pattern("a")).cardinality, 2.0);
  EXPECT_DOUBLE_EQ(model.estimate(*parse_pattern("b")).cardinality,
                   2.0 / 3.0);
}

TEST(CostModelTest, UnknownActivityZeroCardinality) {
  const Log log = make_log("a");
  LogIndex index(log);
  const CostModel model(index);
  EXPECT_DOUBLE_EQ(model.estimate(*parse_pattern("zzz")).cardinality, 0.0);
}

TEST(CostModelTest, NegatedAtomComplement) {
  const Log log = make_log("a a b");  // one instance of 5 records
  LogIndex index(log);
  const CostModel model(index);
  // avg_len 5, count(a)=2 -> ¬a ~ 3.
  EXPECT_DOUBLE_EQ(model.estimate(*parse_pattern("!a")).cardinality, 3.0);
}

TEST(CostModelTest, PredicateHalvesCardinality) {
  const Log log = make_log("a a a a");
  LogIndex index(log);
  const CostModel model(index);
  const double bare = model.estimate(*parse_pattern("a")).cardinality;
  const double with_pred =
      model.estimate(*parse_pattern("a[x > 0]")).cardinality;
  EXPECT_DOUBLE_EQ(with_pred, bare / 2.0);
}

TEST(CostModelTest, SyntheticConstructor) {
  const CostModel model(/*avg_instance_len=*/100, /*default_atom_card=*/5);
  EXPECT_DOUBLE_EQ(model.estimate(*parse_pattern("anything")).cardinality,
                   5.0);
  EXPECT_DOUBLE_EQ(model.avg_instance_len(), 100.0);
}

TEST(CostModelTest, SequentialCardinalityHalvesCross) {
  const CostModel model(100, 10);
  // 10 * 10 / 2.
  EXPECT_DOUBLE_EQ(model.estimate(*parse_pattern("a -> b")).cardinality,
                   50.0);
}

TEST(CostModelTest, ConsecutiveCardinalityDividesByLength) {
  const CostModel model(100, 10);
  EXPECT_DOUBLE_EQ(model.estimate(*parse_pattern("a . b")).cardinality,
                   1.0);
}

TEST(CostModelTest, ChoiceCardinalityAdds) {
  const CostModel model(100, 10);
  EXPECT_DOUBLE_EQ(model.estimate(*parse_pattern("a | b")).cardinality,
                   20.0);
}

TEST(CostModelTest, ParallelCardinalityIsCross) {
  const CostModel model(100, 10);
  EXPECT_DOUBLE_EQ(model.estimate(*parse_pattern("a & b")).cardinality,
                   100.0);
}

TEST(CostModelTest, CostAccumulatesBottomUp) {
  const CostModel model(100, 10);
  const double leaf = model.cost(*parse_pattern("a"));
  const double composite = model.cost(*parse_pattern("a -> b"));
  EXPECT_GT(composite, 2 * leaf);
}

TEST(CostModelTest, CostMonotoneInOperators) {
  const CostModel model(50, 8);
  EXPECT_LT(model.cost(*parse_pattern("a -> b")),
            model.cost(*parse_pattern("(a -> b) & c")));
}

TEST(CostModelTest, SelectiveJoinFirstIsCheaper) {
  // On a log where "rare" occurs once per many instances and "common"
  // floods, joining rare first should cost less: the model must reflect
  // the asymmetry between ((rare -> rare) -> common) and
  // ((common -> common) -> rare) ... using distinct shapes with the same
  // answer via associativity.
  const Log log = make_log(
      "common common common common common rare ; "
      "common common common common common common ; "
      "common common common rare common common");
  LogIndex index(log);
  const CostModel model(index);
  const double left_heavy =
      model.cost(*parse_pattern("(common -> common) -> rare"));
  const double right_heavy =
      model.cost(*parse_pattern("common -> (common -> rare)"));
  // Both orderings estimate the same *output* but different intermediate
  // sizes; the reassociation that joins with `rare` earlier wins.
  EXPECT_NE(left_heavy, right_heavy);
}

}  // namespace
}  // namespace wflog
