#include "workflow/procurement.h"

#include <gtest/gtest.h>

#include "core/compliance.h"
#include "core/engine.h"
#include "log/validate.h"

namespace wflog {
namespace {

TEST(ProcurementTest, SimulatesToValidLog) {
  const Log log = procurement_log(100, 11);
  EXPECT_EQ(log.wids().size(), 100u);
  const std::vector<LogRecord> records(log.begin(), log.end());
  EXPECT_TRUE(check_well_formed(records, log.interner()).empty());
}

TEST(ProcurementTest, GoodsAndInvoiceBranchesRunConcurrently) {
  const Log log = procurement_log(200, 7);
  QueryEngine engine(log);
  // Both orders occur across the log: the AND block interleaves freely.
  EXPECT_TRUE(engine.exists("ReceiveGoods -> ReceiveInvoice"));
  EXPECT_TRUE(engine.exists("ReceiveInvoice -> ReceiveGoods"));
  // The ⊕ operator captures the concurrent pair per instance.
  const std::size_t pairs = engine.count("ReceiveGoods & ReceiveInvoice");
  EXPECT_GE(pairs, 190u);  // every non-abandoned instance has both
}

TEST(ProcurementTest, MatchWaitsForBothBranches) {
  const Log log = procurement_log(150, 5);
  QueryEngine engine(log);
  // The first match of every instance directly follows the later of the
  // two AND branches: the ⊙-with-⊕ pattern finds it.
  EXPECT_TRUE(
      engine.exists("(InspectGoods & VerifyInvoice) . MatchThreeWay"));
  const LogIndex index(log);
  const ComplianceReport report = check_compliance(
      {Rule::precedence("ReceiveGoods", "MatchThreeWay"),
       Rule::precedence("ReceiveInvoice", "MatchThreeWay"),
       Rule::precedence("ApprovePO", "ReceiveGoods"),
       Rule::init("CreatePO")},
      index);
  EXPECT_TRUE(report.compliant()) << report.to_string();
}

TEST(ProcurementTest, DisputesRematch) {
  ProcurementOptions opts;
  opts.dispute_rate = 0.8;  // force plenty of disputes
  const Log log = procurement_log(150, 23, opts);
  QueryEngine engine(log);
  EXPECT_TRUE(engine.exists("Dispute"));
  // Every dispute is eventually followed by another match attempt.
  const LogIndex index(log);
  const ComplianceReport report = check_compliance(
      {Rule::response("Dispute", "MatchThreeWay")}, index);
  EXPECT_TRUE(report.compliant()) << report.to_string();
}

TEST(ProcurementTest, MaverickPaymentsDetectable) {
  ProcurementOptions opts;
  opts.maverick_rate = 0.5;
  const Log log = procurement_log(200, 9, opts);
  QueryEngine engine(log);
  // Maverick = Pay immediately after MatchThreeWay (no ApprovePayment).
  EXPECT_TRUE(engine.exists("MatchThreeWay . Pay"));
  const LogIndex index(log);
  const RuleResult precedence =
      check_compliance({Rule::precedence("ApprovePayment", "Pay")}, index)
          .results.at(0);
  EXPECT_GT(precedence.instances_violating, 0u);

  ProcurementOptions clean;
  clean.maverick_rate = 0.0;
  const Log clean_log = procurement_log(200, 9, clean);
  const LogIndex clean_index(clean_log);
  const RuleResult clean_precedence =
      check_compliance({Rule::precedence("ApprovePayment", "Pay")},
                       clean_index)
          .results.at(0);
  EXPECT_EQ(clean_precedence.instances_violating, 0u);
}

TEST(ProcurementTest, DuplicatePaymentsDetectable) {
  ProcurementOptions opts;
  opts.duplicate_pay_rate = 0.4;
  const Log log = procurement_log(200, 31, opts);
  QueryEngine engine(log);
  EXPECT_TRUE(engine.exists("Pay . Pay"));
  const LogIndex index(log);
  const RuleResult absence =
      check_compliance({Rule::absence("Pay", 2)}, index).results.at(0);
  EXPECT_GT(absence.instances_violating, 0u);
}

TEST(ProcurementTest, PredicateQueriesOnAmounts) {
  const Log log = procurement_log(150, 3);
  QueryEngine engine(log);
  // Large POs that ended up disputed.
  const QueryResult r =
      engine.run("CreatePO[out.poAmount > 5000] -> Dispute");
  // Every incident's CreatePO really carries a large amount: re-verify via
  // the unpredicated superset.
  EXPECT_LE(r.total(), engine.count("CreatePO -> Dispute"));
}

TEST(ProcurementTest, DeterministicForSeed) {
  const Log a = procurement_log(40, 77);
  const Log b = procurement_log(40, 77);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 1; i <= a.size(); ++i) {
    EXPECT_EQ(a.record(i).wid, b.record(i).wid);
    EXPECT_EQ(a.activity_name(a.record(i).activity),
              b.activity_name(b.record(i).activity));
  }
}

}  // namespace
}  // namespace wflog
