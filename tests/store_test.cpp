#include "log/store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "common/error.h"
#include "core/engine.h"
#include "log/validate.h"

namespace wflog {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("wflog-store-test-" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  /// Options pinning the v1 JSONL segment format — for the tests below
  /// that poke v1 file internals (line framing, .jsonl names). The v2
  /// format's own internals tests live in segfmt_test.cpp.
  static LogStore::Options v1_options() {
    LogStore::Options options;
    options.segment_format = SegmentFormat::kV1Jsonl;
    return options;
  }

  fs::path dir_;
};

TEST_F(StoreTest, CreateAppendLoad) {
  LogStore store = LogStore::create(dir_);
  const Wid w = store.begin_instance();
  store.record(w, "GetRefer", {},
               {{"balance", Value{std::int64_t{1000}}}});
  store.record(w, "CheckIn");
  store.end_instance(w);
  EXPECT_EQ(store.num_records(), 4u);

  const Log log = store.load();
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.activity_name(log.record(2).activity), "GetRefer");
  EXPECT_EQ(*log.record(2).out.get(log.interner().find("balance")),
            Value{std::int64_t{1000}});
  const std::vector<LogRecord> records(log.begin(), log.end());
  EXPECT_TRUE(check_well_formed(records, log.interner()).empty());
}

TEST_F(StoreTest, CreateRefusesExistingStore) {
  { LogStore store = LogStore::create(dir_); }
  EXPECT_THROW(LogStore::create(dir_), IoError);
}

TEST_F(StoreTest, OpenMissingStoreThrows) {
  EXPECT_THROW(LogStore::open(dir_), IoError);
}

TEST_F(StoreTest, ReopenResumesWriting) {
  Wid w1 = 0;
  {
    LogStore store = LogStore::create(dir_);
    w1 = store.begin_instance();
    store.record(w1, "a");
    // Instance left open; store dropped (simulates process exit).
  }
  {
    LogStore store = LogStore::open(dir_);
    EXPECT_EQ(store.num_records(), 2u);
    store.record(w1, "b");  // resume the open instance
    store.end_instance(w1);
    const Wid w2 = store.begin_instance();
    EXPECT_NE(w2, w1);  // completed/open wids are never reused
    store.end_instance(w2);
  }
  const Log log = LogStore::open(dir_).load();
  EXPECT_EQ(log.size(), 6u);
  const std::vector<LogRecord> records(log.begin(), log.end());
  EXPECT_TRUE(check_well_formed(records, log.interner()).empty());
  QueryEngine engine(log);
  EXPECT_EQ(engine.count("a . b"), 1u);
}

TEST_F(StoreTest, ReopenRejectsWritesToEndedInstances) {
  Wid w = 0;
  {
    LogStore store = LogStore::create(dir_);
    w = store.begin_instance();
    store.end_instance(w);
  }
  LogStore store = LogStore::open(dir_);
  EXPECT_THROW(store.record(w, "a"), Error);
  EXPECT_THROW(store.end_instance(w), Error);
}

TEST_F(StoreTest, SegmentsRollAtCapacity) {
  LogStore::Options options = v1_options();
  options.records_per_segment = 5;
  LogStore store = LogStore::create(dir_, options);
  const Wid w = store.begin_instance();
  for (int i = 0; i < 12; ++i) store.record(w, "a");
  EXPECT_EQ(store.num_records(), 13u);
  EXPECT_EQ(store.num_segments(), 3u);  // 5 + 5 + 3

  // Segment files exist and the manifest lists them.
  std::size_t seg_files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".jsonl") ++seg_files;
  }
  EXPECT_EQ(seg_files, 3u);
  EXPECT_EQ(store.load().size(), 13u);
}

TEST_F(StoreTest, CapacityPersistsAcrossReopen) {
  LogStore::Options options;
  options.records_per_segment = 3;
  {
    LogStore store = LogStore::create(dir_, options);
    const Wid w = store.begin_instance();
    store.record(w, "a");
  }
  LogStore store = LogStore::open(dir_);
  const Wid w2 = store.begin_instance();
  for (int i = 0; i < 6; ++i) store.record(w2, "b");
  EXPECT_GE(store.num_segments(), 3u);  // capacity 3 still enforced
}

TEST_F(StoreTest, TornTailLineDroppedOnOpen) {
  fs::path tail;
  {
    LogStore store = LogStore::create(dir_, v1_options());
    const Wid w = store.begin_instance();
    store.record(w, "a");
    tail = dir_ / "seg-000001.jsonl";
  }
  // Simulate a crash mid-append: garbage partial line without newline.
  {
    std::ofstream out(tail, std::ios::app);
    out << "{\"lsn\":3,\"wid\":1,\"is_l";  // torn
  }
  LogStore store = LogStore::open(dir_);
  EXPECT_EQ(store.num_records(), 2u);  // torn line dropped
  // open() truncates the torn bytes, so writing continues on a clean line
  // and load() sees exactly the recovered records plus the new one.
  store.record(1, "b");
  const Log log = store.load();
  EXPECT_EQ(log.size(), 3u);
}

TEST_F(StoreTest, TornTailTruncatedMidRecordResumesAtCorrectIsLsn) {
  // Crash simulation the hard way: chop a VALID record in half with
  // resize_file, exactly what a half-flushed page leaves behind.
  Wid w = 0;
  fs::path tail;
  std::uintmax_t full_size = 0;
  {
    LogStore::Options options = v1_options();
    options.records_per_segment = 3;  // the torn segment is not the first
    LogStore store = LogStore::create(dir_, options);
    w = store.begin_instance();
    store.record(w, "a");  // is-lsn 2
    store.record(w, "b");  // is-lsn 3
    store.record(w, "c");  // is-lsn 4, torn below; rolled to segment 2
    EXPECT_EQ(store.num_segments(), 2u);
    tail = dir_ / "seg-000002.jsonl";
    full_size = fs::file_size(tail);
  }
  fs::resize_file(tail, full_size - 7);  // mid-record cut

  LogStore store = LogStore::open(dir_);
  EXPECT_EQ(store.num_records(), 3u);  // START, a, b — torn "c" dropped
  EXPECT_EQ(fs::file_size(tail), 0u);  // torn bytes physically gone

  // Appends resume exactly where the surviving prefix stopped.
  store.record(w, "d");  // must claim is-lsn 4 again
  store.end_instance(w);

  const Log log = store.load();
  EXPECT_EQ(log.size(), 5u);  // START a b d END
  const std::vector<LogRecord> records(log.begin(), log.end());
  EXPECT_TRUE(check_well_formed(records, log.interner()).empty());
  const LogIndex index(log);
  EXPECT_EQ(index.instance_length(w), 5u);
  EXPECT_EQ(index.find(w, 4)->activity, log.activity_symbol("d"));

  QueryEngine engine(log);
  EXPECT_EQ(engine.count("b . d"), 1u);
  EXPECT_FALSE(engine.exists("c"));
}

TEST_F(StoreTest, CorruptMiddleSegmentRejected) {
  {
    LogStore::Options options = v1_options();
    options.records_per_segment = 2;
    LogStore store = LogStore::create(dir_, options);
    const Wid w = store.begin_instance();
    for (int i = 0; i < 4; ++i) store.record(w, "a");
  }
  // Corrupt the FIRST segment (not the tail): open must fail loudly, not
  // silently drop data.
  {
    std::ofstream out(dir_ / "seg-000001.jsonl", std::ios::app);
    out << "garbage line\n";
  }
  EXPECT_THROW(LogStore::open(dir_), IoError);
}

TEST_F(StoreTest, InterleavedInstancesAndQueries) {
  LogStore store = LogStore::create(dir_);
  const Wid w1 = store.begin_instance();
  const Wid w2 = store.begin_instance();
  store.record(w1, "GetRefer");
  store.record(w2, "GetRefer");
  store.record(w1, "GetReimburse");
  store.record(w2, "UpdateRefer");
  store.record(w2, "GetReimburse");
  store.end_instance(w1);
  store.end_instance(w2);

  const Log log = store.load();
  QueryEngine engine(log);
  EXPECT_EQ(engine.count("UpdateRefer -> GetReimburse"), 1u);
  EXPECT_FALSE(engine.exists("GetReimburse -> UpdateRefer"));
}

TEST_F(StoreTest, ManifestIsAtomicallyReplaced) {
  LogStore::Options options;
  options.records_per_segment = 1;
  LogStore store = LogStore::create(dir_, options);
  const Wid w = store.begin_instance();
  store.record(w, "a");  // forces several manifest rewrites
  store.record(w, "b");
  EXPECT_FALSE(fs::exists(dir_ / "MANIFEST.tmp"));
  EXPECT_TRUE(fs::exists(dir_ / "MANIFEST"));
}

// ----- structured open() errors --------------------------------------------

namespace {

/// Runs `fn`, expecting an IoError whose message contains every needle.
template <typename Fn>
void expect_io_error(Fn&& fn, std::initializer_list<std::string> needles) {
  try {
    fn();
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    const std::string what = e.what();
    for (const std::string& needle : needles) {
      EXPECT_NE(what.find(needle), std::string::npos)
          << "message '" << what << "' lacks '" << needle << "'";
    }
  }
}

}  // namespace

TEST_F(StoreTest, OpenMissingManifestNamesThePath) {
  fs::create_directories(dir_);  // a directory, but no store inside
  expect_io_error([&] { LogStore::open(dir_); },
                  {"missing", (dir_ / "MANIFEST").string()});
}

TEST_F(StoreTest, OpenEmptyManifestNamesThePath) {
  { LogStore store = LogStore::create(dir_); }
  std::ofstream(dir_ / "MANIFEST", std::ios::trunc);
  expect_io_error([&] { LogStore::open(dir_); },
                  {"empty MANIFEST", (dir_ / "MANIFEST").string()});
}

TEST_F(StoreTest, OpenTruncatedManifestNamesTheMissingField) {
  { LogStore store = LogStore::create(dir_); }
  std::ofstream(dir_ / "MANIFEST", std::ios::trunc) << "wflog-store v1\n";
  expect_io_error([&] { LogStore::open(dir_); },
                  {"records_per_segment", (dir_ / "MANIFEST").string()});
}

TEST_F(StoreTest, OpenMalformedRecordsPerSegmentRejected) {
  { LogStore store = LogStore::create(dir_); }
  std::ofstream(dir_ / "MANIFEST", std::ios::trunc)
      << "wflog-store v1\nrecords_per_segment=abc\nseg-000001.jsonl\n";
  // Must surface as a structured IoError, not std::invalid_argument.
  expect_io_error([&] { LogStore::open(dir_); },
                  {"malformed records_per_segment", "abc"});
}

TEST_F(StoreTest, OpenManifestListingNoSegmentsRejected) {
  { LogStore store = LogStore::create(dir_); }
  std::ofstream(dir_ / "MANIFEST", std::ios::trunc)
      << "wflog-store v1\nrecords_per_segment=100\n";
  expect_io_error([&] { LogStore::open(dir_); }, {"lists no segments"});
}

TEST_F(StoreTest, OpenMissingSegmentNamesThePath) {
  {
    LogStore store = LogStore::create(dir_, v1_options());
    const Wid w = store.begin_instance();
    store.record(w, "a");
    store.end_instance(w);
  }
  fs::remove(dir_ / "seg-000001.jsonl");
  expect_io_error(
      [&] { LogStore::open(dir_); },
      {(dir_ / "seg-000001.jsonl").string(), "listed in MANIFEST but missing"});
}

// ----- fault injection: transient errors, ENOSPC, short writes -------------

namespace {

LogStore::Options fault_options(std::shared_ptr<FileIo> io) {
  LogStore::Options options;
  options.max_io_retries = 2;
  options.retry_backoff = std::chrono::milliseconds{0};
  options.io = std::move(io);
  return options;
}

}  // namespace

TEST_F(StoreTest, TransientWriteErrorIsRetried) {
  auto io = std::make_shared<FaultIo>();
  LogStore store = LogStore::create(dir_, fault_options(io));
  const Wid w = store.begin_instance();
  // The very next op (the record's write) fails once, then recovers; the
  // bounded retry must absorb it without surfacing an error.
  io->set_fault({io->ops() + 1, FaultIo::Fault::Kind::kError, 1});
  store.record(w, "a");
  store.end_instance(w);
  EXPECT_EQ(store.load().size(), 3u);
}

TEST_F(StoreTest, StickyEnospcSurfacesStructuredErrorAndPoisons) {
  auto io = std::make_shared<FaultIo>();
  std::optional<LogStore> store(LogStore::create(dir_, fault_options(io)));
  const Wid w = store->begin_instance();
  store->record(w, "a");
  // Disk full: every op from here on fails, forever.
  io->set_fault(
      {io->ops() + 1, FaultIo::Fault::Kind::kError, FaultIo::Fault::kSticky});
  expect_io_error([&] { store->record(w, "b"); }, {"retries"});
  // Tail recovery could not run either: the store is poisoned and says so.
  EXPECT_TRUE(store->failed());
  expect_io_error([&] { store->record(w, "c"); },
                  {"structural write error", dir_.string()});
  store.reset();  // destructor must swallow the sticky failure

  // "Freeing space": reopen with the real filesystem. Everything that was
  // acknowledged before the disk filled is still there.
  LogStore reopened = LogStore::open(dir_);
  const Log log = reopened.load();
  ASSERT_EQ(log.size(), 2u);  // START + "a"
  const Wid w2 = reopened.begin_instance();
  reopened.record(w2, "after-enospc");
  reopened.end_instance(w2);
  EXPECT_EQ(reopened.load().size(), 5u);
}

TEST_F(StoreTest, ShortWriteIsContinuedToCompletion) {
  auto io = std::make_shared<FaultIo>();
  LogStore store = LogStore::create(dir_, fault_options(io));
  const Wid w = store.begin_instance();
  // The record's write accepts only half its bytes; write_all must loop.
  io->set_fault({io->ops() + 1, FaultIo::Fault::Kind::kShortWrite});
  store.record(w, "an-activity-name-long-enough-to-split");
  store.end_instance(w);

  const Log log = LogStore::open(dir_).load();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.activity_name(log.record(2).activity),
            "an-activity-name-long-enough-to-split");
}

// ----- corruption: checksums + quarantine recovery -------------------------

namespace {

/// Flips one JSON character of the `line`-th line (0-based) of `path`,
/// invalidating that record's CRC without touching the framing.
void corrupt_line(const fs::path& path, std::size_t line) {
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    data = ss.str();
  }
  std::size_t pos = 0;
  for (std::size_t i = 0; i < line; ++i) pos = data.find('\n', pos) + 1;
  const std::size_t colon = data.find("\"wid\"", pos);
  ASSERT_NE(colon, std::string::npos);
  data[colon + 1] = 'X';  // "wid" -> "Xid": parse/CRC must notice
  std::ofstream(path, std::ios::binary | std::ios::trunc) << data;
}

}  // namespace

TEST_F(StoreTest, ChecksumDetectsBitFlipInCompleteRecord) {
  {
    LogStore store = LogStore::create(dir_, v1_options());
    const Wid w = store.begin_instance();
    store.record(w, "a");
    store.record(w, "b");
    store.end_instance(w);
  }
  corrupt_line(dir_ / "seg-000001.jsonl", 1);  // a complete, non-final line
  expect_io_error([&] { LogStore::open(dir_); },
                  {"corrupt record", (dir_ / "seg-000001.jsonl").string(),
                   "quarantine_corruption"});
}

TEST_F(StoreTest, QuarantineRecoversReadablePrefix) {
  LogStore::Options options = v1_options();
  options.records_per_segment = 2;
  {
    LogStore store = LogStore::create(dir_, options);
    const Wid w = store.begin_instance();
    for (const char* a : {"a", "b", "c", "d"}) store.record(w, a);
    store.end_instance(w);  // 6 records -> 3 segments
  }
  corrupt_line(dir_ / "seg-000002.jsonl", 0);  // mid-store corruption

  LogStore::Options recover = options;
  recover.quarantine_corruption = true;
  RecoveryReport report;
  {
    LogStore store = LogStore::open(dir_, recover, &report);
    // Readable prefix: START + "a" from segment 1; everything from the
    // corrupt byte onward (4 record lines) was quarantined.
    EXPECT_EQ(store.num_records(), 2u);
    EXPECT_EQ(report.records_dropped, 4u);
    EXPECT_EQ(report.segments_quarantined, 2u);
    EXPECT_FALSE(report.clean());
    EXPECT_TRUE(fs::exists(dir_ / "QUARANTINE-000001"));
    ASSERT_FALSE(report.notes.empty());

    // The recovered store accepts appends again (instance 1 is open: its
    // END record was quarantined with the suffix).
    store.record(1, "replayed-b");
    store.end_instance(1);
  }

  // The quarantined store is clean now: a strict reopen succeeds.
  RecoveryReport second;
  LogStore store = LogStore::open(dir_, options, &second);
  EXPECT_TRUE(second.clean());
  const Log log = store.load();
  ASSERT_EQ(log.size(), 4u);  // START, a, replayed-b, END
  EXPECT_EQ(log.activity_name(log.record(3).activity), "replayed-b");
}

}  // namespace
}  // namespace wflog
