#include "log/store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "core/engine.h"
#include "log/validate.h"

namespace wflog {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("wflog-store-test-" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(StoreTest, CreateAppendLoad) {
  LogStore store = LogStore::create(dir_);
  const Wid w = store.begin_instance();
  store.record(w, "GetRefer", {},
               {{"balance", Value{std::int64_t{1000}}}});
  store.record(w, "CheckIn");
  store.end_instance(w);
  EXPECT_EQ(store.num_records(), 4u);

  const Log log = store.load();
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.activity_name(log.record(2).activity), "GetRefer");
  EXPECT_EQ(*log.record(2).out.get(log.interner().find("balance")),
            Value{std::int64_t{1000}});
  const std::vector<LogRecord> records(log.begin(), log.end());
  EXPECT_TRUE(check_well_formed(records, log.interner()).empty());
}

TEST_F(StoreTest, CreateRefusesExistingStore) {
  { LogStore store = LogStore::create(dir_); }
  EXPECT_THROW(LogStore::create(dir_), IoError);
}

TEST_F(StoreTest, OpenMissingStoreThrows) {
  EXPECT_THROW(LogStore::open(dir_), IoError);
}

TEST_F(StoreTest, ReopenResumesWriting) {
  Wid w1 = 0;
  {
    LogStore store = LogStore::create(dir_);
    w1 = store.begin_instance();
    store.record(w1, "a");
    // Instance left open; store dropped (simulates process exit).
  }
  {
    LogStore store = LogStore::open(dir_);
    EXPECT_EQ(store.num_records(), 2u);
    store.record(w1, "b");  // resume the open instance
    store.end_instance(w1);
    const Wid w2 = store.begin_instance();
    EXPECT_NE(w2, w1);  // completed/open wids are never reused
    store.end_instance(w2);
  }
  const Log log = LogStore::open(dir_).load();
  EXPECT_EQ(log.size(), 6u);
  const std::vector<LogRecord> records(log.begin(), log.end());
  EXPECT_TRUE(check_well_formed(records, log.interner()).empty());
  QueryEngine engine(log);
  EXPECT_EQ(engine.count("a . b"), 1u);
}

TEST_F(StoreTest, ReopenRejectsWritesToEndedInstances) {
  Wid w = 0;
  {
    LogStore store = LogStore::create(dir_);
    w = store.begin_instance();
    store.end_instance(w);
  }
  LogStore store = LogStore::open(dir_);
  EXPECT_THROW(store.record(w, "a"), Error);
  EXPECT_THROW(store.end_instance(w), Error);
}

TEST_F(StoreTest, SegmentsRollAtCapacity) {
  LogStore::Options options;
  options.records_per_segment = 5;
  LogStore store = LogStore::create(dir_, options);
  const Wid w = store.begin_instance();
  for (int i = 0; i < 12; ++i) store.record(w, "a");
  EXPECT_EQ(store.num_records(), 13u);
  EXPECT_EQ(store.num_segments(), 3u);  // 5 + 5 + 3

  // Segment files exist and the manifest lists them.
  std::size_t seg_files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".jsonl") ++seg_files;
  }
  EXPECT_EQ(seg_files, 3u);
  EXPECT_EQ(store.load().size(), 13u);
}

TEST_F(StoreTest, CapacityPersistsAcrossReopen) {
  LogStore::Options options;
  options.records_per_segment = 3;
  {
    LogStore store = LogStore::create(dir_, options);
    const Wid w = store.begin_instance();
    store.record(w, "a");
  }
  LogStore store = LogStore::open(dir_);
  const Wid w2 = store.begin_instance();
  for (int i = 0; i < 6; ++i) store.record(w2, "b");
  EXPECT_GE(store.num_segments(), 3u);  // capacity 3 still enforced
}

TEST_F(StoreTest, TornTailLineDroppedOnOpen) {
  fs::path tail;
  {
    LogStore store = LogStore::create(dir_);
    const Wid w = store.begin_instance();
    store.record(w, "a");
    tail = dir_ / "seg-000001.jsonl";
  }
  // Simulate a crash mid-append: garbage partial line without newline.
  {
    std::ofstream out(tail, std::ios::app);
    out << "{\"lsn\":3,\"wid\":1,\"is_l";  // torn
  }
  LogStore store = LogStore::open(dir_);
  EXPECT_EQ(store.num_records(), 2u);  // torn line dropped
  // open() truncates the torn bytes, so writing continues on a clean line
  // and load() sees exactly the recovered records plus the new one.
  store.record(1, "b");
  const Log log = store.load();
  EXPECT_EQ(log.size(), 3u);
}

TEST_F(StoreTest, TornTailTruncatedMidRecordResumesAtCorrectIsLsn) {
  // Crash simulation the hard way: chop a VALID record in half with
  // resize_file, exactly what a half-flushed page leaves behind.
  Wid w = 0;
  fs::path tail;
  std::uintmax_t full_size = 0;
  {
    LogStore::Options options;
    options.records_per_segment = 3;  // the torn segment is not the first
    LogStore store = LogStore::create(dir_, options);
    w = store.begin_instance();
    store.record(w, "a");  // is-lsn 2
    store.record(w, "b");  // is-lsn 3
    store.record(w, "c");  // is-lsn 4, torn below; rolled to segment 2
    EXPECT_EQ(store.num_segments(), 2u);
    tail = dir_ / "seg-000002.jsonl";
    full_size = fs::file_size(tail);
  }
  fs::resize_file(tail, full_size - 7);  // mid-record cut

  LogStore store = LogStore::open(dir_);
  EXPECT_EQ(store.num_records(), 3u);  // START, a, b — torn "c" dropped
  EXPECT_EQ(fs::file_size(tail), 0u);  // torn bytes physically gone

  // Appends resume exactly where the surviving prefix stopped.
  store.record(w, "d");  // must claim is-lsn 4 again
  store.end_instance(w);

  const Log log = store.load();
  EXPECT_EQ(log.size(), 5u);  // START a b d END
  const std::vector<LogRecord> records(log.begin(), log.end());
  EXPECT_TRUE(check_well_formed(records, log.interner()).empty());
  const LogIndex index(log);
  EXPECT_EQ(index.instance_length(w), 5u);
  EXPECT_EQ(index.find(w, 4)->activity, log.activity_symbol("d"));

  QueryEngine engine(log);
  EXPECT_EQ(engine.count("b . d"), 1u);
  EXPECT_FALSE(engine.exists("c"));
}

TEST_F(StoreTest, CorruptMiddleSegmentRejected) {
  {
    LogStore::Options options;
    options.records_per_segment = 2;
    LogStore store = LogStore::create(dir_, options);
    const Wid w = store.begin_instance();
    for (int i = 0; i < 4; ++i) store.record(w, "a");
  }
  // Corrupt the FIRST segment (not the tail): open must fail loudly, not
  // silently drop data.
  {
    std::ofstream out(dir_ / "seg-000001.jsonl", std::ios::app);
    out << "garbage line\n";
  }
  EXPECT_THROW(LogStore::open(dir_), IoError);
}

TEST_F(StoreTest, InterleavedInstancesAndQueries) {
  LogStore store = LogStore::create(dir_);
  const Wid w1 = store.begin_instance();
  const Wid w2 = store.begin_instance();
  store.record(w1, "GetRefer");
  store.record(w2, "GetRefer");
  store.record(w1, "GetReimburse");
  store.record(w2, "UpdateRefer");
  store.record(w2, "GetReimburse");
  store.end_instance(w1);
  store.end_instance(w2);

  const Log log = store.load();
  QueryEngine engine(log);
  EXPECT_EQ(engine.count("UpdateRefer -> GetReimburse"), 1u);
  EXPECT_FALSE(engine.exists("GetReimburse -> UpdateRefer"));
}

TEST_F(StoreTest, ManifestIsAtomicallyReplaced) {
  LogStore::Options options;
  options.records_per_segment = 1;
  LogStore store = LogStore::create(dir_, options);
  const Wid w = store.begin_instance();
  store.record(w, "a");  // forces several manifest rewrites
  store.record(w, "b");
  EXPECT_FALSE(fs::exists(dir_ / "MANIFEST.tmp"));
  EXPECT_TRUE(fs::exists(dir_ / "MANIFEST"));
}

}  // namespace
}  // namespace wflog
