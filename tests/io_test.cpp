#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "log/io_csv.h"
#include "log/io_jsonl.h"
#include "test_util.h"
#include "workflow/clinic.h"

namespace wflog {
namespace {

using testing::make_log;

Log attr_rich_log() {
  LogBuilder b;
  const Wid w = b.begin_instance();
  b.append(w, "GetRefer", {},
           {{"hospital", Value{"Public Hospital"}},
            {"referId", Value{"034d1"}},
            {"balance", Value{std::int64_t{1000}}},
            {"rate", Value{0.5}},
            {"urgent", Value{true}},
            {"note", Value{"semi;colon, and \"quotes\""}}});
  b.append(w, "CheckIn",
           {{"referId", Value{"034d1"}}, {"balance", Value{std::int64_t{1000}}}},
           {{"state", Value{"active"}}});
  b.end_instance(w);
  return b.build();
}

bool logs_equal(const Log& a, const Log& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    const LogRecord& x = a.record(i);
    const LogRecord& y = b.record(i);
    if (x.lsn != y.lsn || x.wid != y.wid || x.is_lsn != y.is_lsn) {
      return false;
    }
    if (a.activity_name(x.activity) != b.activity_name(y.activity)) {
      return false;
    }
    // Compare maps attribute-by-attribute through names.
    auto maps_equal = [&](const AttrMap& m, const AttrMap& n) {
      if (m.size() != n.size()) return false;
      for (const AttrEntry& e : m) {
        const Symbol sym = b.interner().find(a.interner().name(e.attr));
        if (sym == kNoSymbol) return false;
        const Value* v = n.get(sym);
        if (v == nullptr || !(*v == e.value)) return false;
      }
      return true;
    };
    if (!maps_equal(x.in, y.in) || !maps_equal(x.out, y.out)) return false;
  }
  return true;
}

// ----- CSV --------------------------------------------------------------

TEST(CsvTest, HeaderAndRowCount) {
  const Log log = make_log("a b");
  const std::string csv = to_csv(log);
  std::istringstream is(csv);
  std::string line;
  std::getline(is, line);
  EXPECT_EQ(line, "lsn,wid,is_lsn,activity,input,output");
  std::size_t rows = 0;
  while (std::getline(is, line)) ++rows;
  EXPECT_EQ(rows, log.size());
}

TEST(CsvTest, RoundTripSimple) {
  const Log log = make_log("a b c ; b a");
  EXPECT_TRUE(logs_equal(log, csv_to_log(to_csv(log))));
}

TEST(CsvTest, RoundTripAttributeValues) {
  const Log log = attr_rich_log();
  EXPECT_TRUE(logs_equal(log, csv_to_log(to_csv(log))));
}

TEST(CsvTest, RoundTripFigure3) {
  const Log log = figure3_log();
  EXPECT_TRUE(logs_equal(log, csv_to_log(to_csv(log))));
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_THROW(csv_to_log(""), IoError);
}

TEST(CsvTest, RejectsBadHeader) {
  EXPECT_THROW(csv_to_log("foo,bar\n"), IoError);
}

TEST(CsvTest, RejectsWrongFieldCount) {
  EXPECT_THROW(
      csv_to_log("lsn,wid,is_lsn,activity,input,output\n1,1,1,START\n"),
      IoError);
}

TEST(CsvTest, RejectsNonNumericLsn) {
  EXPECT_THROW(
      csv_to_log("lsn,wid,is_lsn,activity,input,output\nx,1,1,START,-,-\n"),
      IoError);
}

TEST(CsvTest, ValidatesDefinition2) {
  // is-lsn 2 with START name violates condition 2.
  EXPECT_THROW(
      csv_to_log("lsn,wid,is_lsn,activity,input,output\n1,1,2,a,-,-\n"),
      ValidationError);
}

TEST(CsvTest, AcceptsCrLfAndBom) {
  const std::string csv =
      "\xef\xbb\xbflsn,wid,is_lsn,activity,input,output\r\n"
      "1,1,1,START,-,-\r\n";
  const Log log = csv_to_log(csv);
  EXPECT_EQ(log.size(), 1u);
}

TEST(CsvTest, DashMeansEmptyMap) {
  const Log log =
      csv_to_log("lsn,wid,is_lsn,activity,input,output\n1,1,1,START,-,-\n");
  EXPECT_TRUE(log.record(1).in.empty());
  EXPECT_TRUE(log.record(1).out.empty());
}

TEST(AttrMapCodecTest, RoundTrip) {
  Interner in;
  AttrMap m;
  m.set(in.intern("balance"), Value{std::int64_t{1000}});
  m.set(in.intern("state"), Value{"semi;colon"});
  m.set(in.intern("rate"), Value{0.25});
  const std::string text = attr_map_to_string(m, in);
  Interner in2;
  const AttrMap back = parse_attr_map(text, in2);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(*back.get(in2.find("balance")), Value{std::int64_t{1000}});
  EXPECT_EQ(*back.get(in2.find("state")), Value{"semi;colon"});
  EXPECT_EQ(*back.get(in2.find("rate")), Value{0.25});
}

TEST(AttrMapCodecTest, RejectsMissingEquals) {
  Interner in;
  EXPECT_THROW(parse_attr_map("novalue", in), IoError);
}

TEST(AttrMapCodecTest, RejectsBadAttrName) {
  Interner in;
  EXPECT_THROW(parse_attr_map("9bad=1", in), IoError);
}

// ----- JSONL ------------------------------------------------------------

TEST(JsonlTest, RoundTripSimple) {
  const Log log = make_log("a b ; c");
  EXPECT_TRUE(logs_equal(log, jsonl_to_log(to_jsonl(log))));
}

TEST(JsonlTest, RoundTripAttributeValues) {
  const Log log = attr_rich_log();
  EXPECT_TRUE(logs_equal(log, jsonl_to_log(to_jsonl(log))));
}

TEST(JsonlTest, RoundTripFigure3) {
  const Log log = figure3_log();
  EXPECT_TRUE(logs_equal(log, jsonl_to_log(to_jsonl(log))));
}

TEST(JsonlTest, OneObjectPerLine) {
  const Log log = make_log("a");
  const std::string jsonl = to_jsonl(log);
  std::size_t lines = 0;
  for (char c : jsonl) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, log.size());
}

TEST(JsonlTest, SkipsUnknownKeys) {
  const Log log = jsonl_to_log(
      R"({"lsn":1,"wid":1,"is_lsn":1,"activity":"START","in":{},"out":{},"extra":{"a":1}})"
      "\n");
  EXPECT_EQ(log.size(), 1u);
}

TEST(JsonlTest, AnyKeyOrder) {
  const Log log = jsonl_to_log(
      R"({"activity":"START","in":{},"out":{},"is_lsn":1,"wid":1,"lsn":1})"
      "\n");
  EXPECT_EQ(log.size(), 1u);
}

TEST(JsonlTest, TypedValues) {
  const Log log = jsonl_to_log(
      R"({"lsn":1,"wid":1,"is_lsn":1,"activity":"START","in":{},"out":{}})"
      "\n"
      R"({"lsn":2,"wid":1,"is_lsn":2,"activity":"a","in":{},"out":{"i":7,"d":0.5,"b":true,"s":"x","n":null}})"
      "\n");
  const LogRecord& l = log.record(2);
  const Interner& in = log.interner();
  EXPECT_EQ(*l.out.get(in.find("i")), Value{std::int64_t{7}});
  EXPECT_EQ(*l.out.get(in.find("d")), Value{0.5});
  EXPECT_EQ(*l.out.get(in.find("b")), Value{true});
  EXPECT_EQ(*l.out.get(in.find("s")), Value{"x"});
  EXPECT_EQ(*l.out.get(in.find("n")), Value{});
}

TEST(JsonlTest, EscapedStringsRoundTrip) {
  LogBuilder b;
  const Wid w = b.begin_instance();
  b.append(w, "a", {}, {{"s", Value{"line\nbreak \"q\" \\slash\t"}}});
  const Log log = b.build();
  EXPECT_TRUE(logs_equal(log, jsonl_to_log(to_jsonl(log))));
}

TEST(JsonlTest, MalformedLineReportsLineNumber) {
  try {
    jsonl_to_log("{\"lsn\":1,\"wid\":1,\"is_lsn\":1,\"activity\":\"START\","
                 "\"in\":{},\"out\":{}}\n{broken\n");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(JsonlTest, CrossFormatEquivalence) {
  const Log log = attr_rich_log();
  const Log via_csv = csv_to_log(to_csv(log));
  const Log via_jsonl = jsonl_to_log(to_jsonl(log));
  EXPECT_TRUE(logs_equal(via_csv, via_jsonl));
}

}  // namespace
}  // namespace wflog
