// Deterministic crash-torture harness for LogStore (ISSUE: fault-injected
// durability). A fixed workload runs against a FaultIo that "crashes" —
// drops un-fsynced bytes and fails every later operation — at the Nth IO
// operation, for EVERY N from 1 to the workload's total op count, crossed
// with every crash-loss model and every fsync policy. After each crash the
// directory is reopened with the real filesystem and the recovered store
// is checked against the durability contract (log/store.h):
//
//   * recovered records per instance are a PREFIX of what the workload
//     attempted (no reordering, no invention, no mid-sequence holes);
//   * under FsyncPolicy::kPerAppend, every ACKNOWLEDGED record (append
//     call that returned) survives — zero acked-record loss, even in the
//     kDropUnsynced power-loss model;
//   * the reopened store accepts new appends and load()s cleanly.
//
// The matrix is parameterized by segment format: the v2 block format runs
// under all three fsync policies (crash indices land on block writes and
// the footer write that seals a rolled segment, so torn blocks and torn
// footers are both in the matrix), and the v1 JSONL format keeps a
// per-append matrix as a legacy-regression guard.

#include <gtest/gtest.h>

#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/error.h"
#include "log/fileio.h"
#include "log/store.h"
#include "obs/telemetry.h"

namespace wflog {
namespace {

namespace fs = std::filesystem;

using AckedEvent = std::pair<Wid, std::string>;  // (wid, activity)

/// The scripted workload: two interleaved instances, 8 records total,
/// records_per_segment = 3 so it crosses two segment rolls (two manifest
/// rewrites) — every structural write path gets hit by some crash index.
///
/// Events acked (call returned) are appended to `acked`; a crash mid-call
/// stops the script. Returns true when the whole script completed.
bool run_workload(LogStore& store, std::vector<AckedEvent>& acked) {
  try {
    const Wid w1 = store.begin_instance();
    acked.emplace_back(w1, "START");
    store.record(w1, "a");
    acked.emplace_back(w1, "a");
    const Wid w2 = store.begin_instance();
    acked.emplace_back(w2, "START");
    store.record(w2, "x");
    acked.emplace_back(w2, "x");
    store.record(w1, "b");
    acked.emplace_back(w1, "b");
    store.end_instance(w1);
    acked.emplace_back(w1, "END");
    store.record(w2, "y");
    acked.emplace_back(w2, "y");
    store.end_instance(w2);
    acked.emplace_back(w2, "END");
    return true;
  } catch (const IoError&) {
    return false;  // simulated crash
  }
}

/// What the workload would write per instance if it ran to completion.
const std::map<Wid, std::vector<std::string>>& attempted_sequences() {
  static const std::map<Wid, std::vector<std::string>> kAttempted{
      {1, {"START", "a", "b", "END"}},
      {2, {"START", "x", "y", "END"}},
  };
  return kAttempted;
}

LogStore::Options torture_options(FsyncPolicy policy,
                                  std::shared_ptr<FileIo> io,
                                  SegmentFormat format) {
  LogStore::Options options;
  options.records_per_segment = 3;
  options.fsync_policy = policy;
  options.fsync_interval_records = 2;
  options.max_io_retries = 0;  // a crash is not transient; retries just stall
  options.retry_backoff = std::chrono::milliseconds{0};
  options.io = std::move(io);
  options.segment_format = format;
  return options;
}

/// Recovered per-instance activity sequences, in log order.
std::map<Wid, std::vector<std::string>> recovered_sequences(const Log& log) {
  std::map<Wid, std::vector<std::string>> out;
  for (const LogRecord& l : log) {
    out[l.wid].push_back(std::string(log.activity_name(l.activity)));
  }
  return out;
}

class StoreTortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("wflog-torture-" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  /// Fault-free dry run measuring how many IO ops the workload needs
  /// under `policy` (the torture matrix then crashes at every index).
  std::uint64_t measure_ops(FsyncPolicy policy, SegmentFormat format) {
    fs::remove_all(dir_);
    auto io = std::make_shared<FaultIo>();
    std::vector<AckedEvent> acked;
    {
      LogStore store =
          LogStore::create(dir_, torture_options(policy, io, format));
      EXPECT_TRUE(run_workload(store, acked));
    }
    fs::remove_all(dir_);
    return io->ops();
  }

  /// One cell of the matrix: crash at op `crash_at` under `loss`, then
  /// recover with the real filesystem and check the contract.
  void torture_once(FsyncPolicy policy, std::uint64_t crash_at,
                    FaultIo::CrashLoss loss, SegmentFormat format) {
    SCOPED_TRACE("crash_at=" + std::to_string(crash_at) +
                 " loss=" + std::to_string(static_cast<int>(loss)) +
                 " policy=" + std::to_string(static_cast<int>(policy)) +
                 " format=" + std::to_string(static_cast<int>(format)));
    fs::remove_all(dir_);
    auto io = std::make_shared<FaultIo>();
    io->set_fault({crash_at, FaultIo::Fault::Kind::kCrash, 1, loss});

    std::vector<AckedEvent> acked;
    bool created = false;
    try {
      LogStore store =
          LogStore::create(dir_, torture_options(policy, io, format));
      created = true;
      run_workload(store, acked);
    } catch (const IoError&) {
      // Crash before create() finished: nothing was acknowledged.
      ASSERT_TRUE(acked.empty());
    }

    // Power restored: reopen with the real filesystem.
    LogStore store = [&] {
      try {
        return LogStore::open(dir_);
      } catch (const IoError&) {
        // Only legal if the store never came into existence (crash before
        // the first manifest landed) — in that case nothing was acked.
        EXPECT_FALSE(created) << "existing store must reopen after crash";
        EXPECT_TRUE(acked.empty());
        fs::remove_all(dir_);
        return LogStore::create(dir_);
      }
    }();

    // A crash early enough leaves zero records; Log validation (rightly)
    // refuses an empty log, so treat that as "nothing recovered".
    const auto recovered = store.num_records() == 0
                               ? std::map<Wid, std::vector<std::string>>{}
                               : recovered_sequences(store.load());

    // Prefix property: per instance, recovery yields an unbroken prefix
    // of the attempted sequence.
    for (const auto& [wid, seq] : recovered) {
      const auto it = attempted_sequences().find(wid);
      ASSERT_NE(it, attempted_sequences().end()) << "invented wid " << wid;
      ASSERT_LE(seq.size(), it->second.size());
      for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i], it->second[i]) << "wid " << wid << " pos " << i;
      }
    }

    // Zero acknowledged-record loss under per-append fsync: every acked
    // event must have survived the crash, in order.
    if (policy == FsyncPolicy::kPerAppend) {
      std::map<Wid, std::vector<std::string>> acked_per_wid;
      for (const auto& [wid, activity] : acked) {
        acked_per_wid[wid].push_back(activity);
      }
      for (const auto& [wid, seq] : acked_per_wid) {
        const auto it = recovered.find(wid);
        ASSERT_NE(it, recovered.end())
            << "acked instance " << wid << " vanished";
        ASSERT_GE(it->second.size(), seq.size())
            << "acked records of instance " << wid << " lost";
        for (std::size_t i = 0; i < seq.size(); ++i) {
          EXPECT_EQ(it->second[i], seq[i]) << "wid " << wid << " pos " << i;
        }
      }
    }

    // The recovered store keeps working: fresh instance, append, reload.
    const std::size_t before = store.num_records();
    const Wid w = store.begin_instance();
    store.record(w, "post-crash");
    store.end_instance(w);
    EXPECT_EQ(store.load().size(), before + 3);
  }

  void run_matrix(FsyncPolicy policy, SegmentFormat format) {
    const std::uint64_t total_ops = measure_ops(policy, format);
    ASSERT_GT(total_ops, 0u);
    std::cout << "torture matrix: " << total_ops
              << " IO-op boundaries x 3 crash-loss models = "
              << 3 * total_ops << " crash/recovery cycles\n";
    for (const FaultIo::CrashLoss loss :
         {FaultIo::CrashLoss::kDropUnsynced, FaultIo::CrashLoss::kTornHalf,
          FaultIo::CrashLoss::kKeepAll}) {
      for (std::uint64_t n = 1; n <= total_ops; ++n) {
        torture_once(policy, n, loss, format);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }

  fs::path dir_;
};

TEST_F(StoreTortureTest, CrashBetweenManifestRenameAndDirFsync) {
  // Strict-POSIX durability: a rename is a directory-entry update, and
  // directory entries are only durable after the PARENT DIRECTORY is
  // fsynced. FaultIo models that window — a crash after the rename but
  // before the dir fsync rolls the rename back. This test pins the store
  // to the model: (a) every manifest swap is immediately followed by the
  // parent-dir fsync, and (b) losing exactly that window still recovers
  // to a correct store.
  fs::remove_all(dir_);
  auto dry = std::make_shared<FaultIo>();
  {
    std::vector<AckedEvent> acked;
    LogStore store = LogStore::create(
        dir_, torture_options(FsyncPolicy::kPerAppend, dry,
                              SegmentFormat::kV2Blocks));
    ASSERT_TRUE(run_workload(store, acked));
  }
  const std::vector<std::string> trace = dry->op_trace();
  fs::remove_all(dir_);

  // In a clean run every rename is the MANIFEST.tmp -> MANIFEST swap.
  std::vector<std::uint64_t> dir_fsync_ops;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace[i] != "rename") continue;
    ASSERT_LT(i + 1, trace.size());
    EXPECT_EQ(trace[i + 1], "sync_dir")
        << "manifest rename (op " << i + 1
        << ") not followed by a parent-directory fsync";
    dir_fsync_ops.push_back(i + 2);  // trace is 0-based, ops are 1-based
  }
  // create() plus two segment rolls = at least three manifest swaps.
  ASSERT_GE(dir_fsync_ops.size(), 3u);

  // Crash ON each dir fsync: the rename happened in the kernel but never
  // became durable, so power loss (kDropUnsynced) undoes it. Recovery
  // must still see a correct store — the PREVIOUS manifest governs, every
  // acked record survives (they live in segment files named by it).
  for (const std::uint64_t op : dir_fsync_ops) {
    torture_once(FsyncPolicy::kPerAppend, op,
                 FaultIo::CrashLoss::kDropUnsynced,
                 SegmentFormat::kV2Blocks);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST_F(StoreTortureTest, PerAppendNeverLosesAckedRecords) {
  run_matrix(FsyncPolicy::kPerAppend, SegmentFormat::kV2Blocks);
}

TEST_F(StoreTortureTest, IntervalFsyncRecoversAPrefix) {
  run_matrix(FsyncPolicy::kInterval, SegmentFormat::kV2Blocks);
}

TEST_F(StoreTortureTest, NoFsyncStillRecoversAPrefix) {
  run_matrix(FsyncPolicy::kOff, SegmentFormat::kV2Blocks);
}

TEST_F(StoreTortureTest, V1PerAppendNeverLosesAckedRecords) {
  // Legacy-format regression guard: the JSONL write path keeps the same
  // zero-acked-loss contract it shipped with.
  run_matrix(FsyncPolicy::kPerAppend, SegmentFormat::kV1Jsonl);
}

TEST_F(StoreTortureTest, SealedSegmentsReopenWithoutBlockRescan) {
  // Reopen latency on a big sealed store must be O(footers), not
  // O(blocks): a sealed v2 segment with a valid footer is admitted
  // without inflating a single block. The telemetry counters make the
  // "no rescan" claim checkable without wall-clock flakiness: every
  // non-tail segment takes the fast path and zero blocks are read.
  fs::remove_all(dir_);
  LogStore::Options options;
  options.records_per_segment = 8;
  options.fsync_policy = FsyncPolicy::kOff;
  {
    LogStore store = LogStore::create(dir_, options);
    for (int i = 0; i < 12; ++i) {
      const Wid w = store.begin_instance();
      store.record(w, "work");
      store.end_instance(w);
    }
  }
  obs::Telemetry t;
  obs::ScopedTelemetry scope(t);
  LogStore store = LogStore::open(dir_);
  EXPECT_EQ(t.store_sealed_reopen_skips_total->value(),
            store.num_segments() - 1)
      << "a sealed segment fell off the footer fast path at reopen";
  EXPECT_EQ(t.store_blocks_read_total->value(), 0u)
      << "reopen inflated block payloads it did not need";
  EXPECT_EQ(store.num_records(), 36u);
  EXPECT_EQ(store.load().size(), 36u);  // payload CRCs still checked on read
}

}  // namespace
}  // namespace wflog
