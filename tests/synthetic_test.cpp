#include "core/synthetic.h"

#include <gtest/gtest.h>

namespace wflog {
namespace {

TEST(SyntheticTest, ProducesRequestedCount) {
  SyntheticIncidentOptions o;
  o.count = 200;
  o.records_each = 2;
  o.instance_len = 1000;
  const IncidentList list = synthetic_incidents(o);
  EXPECT_EQ(list.size(), 200u);
}

TEST(SyntheticTest, CanonicalOutput) {
  SyntheticIncidentOptions o;
  o.count = 100;
  o.records_each = 3;
  o.instance_len = 100;
  EXPECT_TRUE(is_canonical(synthetic_incidents(o)));
}

TEST(SyntheticTest, RespectsRecordCountAndBounds) {
  SyntheticIncidentOptions o;
  o.count = 50;
  o.records_each = 4;
  o.instance_len = 64;
  for (const Incident& inc : synthetic_incidents(o)) {
    EXPECT_EQ(inc.size(), 4u);
    EXPECT_GE(inc.first(), 1u);
    EXPECT_LE(inc.last(), 64u);
    EXPECT_EQ(inc.wid(), o.wid);
  }
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticIncidentOptions o;
  o.count = 30;
  o.seed = 99;
  EXPECT_EQ(synthetic_incidents(o), synthetic_incidents(o));
  SyntheticIncidentOptions o2 = o;
  o2.seed = 100;
  EXPECT_NE(synthetic_incidents(o), synthetic_incidents(o2));
}

TEST(SyntheticTest, SaturatedSpaceTerminatesWithMax) {
  // Only 5 distinct singletons exist in a length-5 instance.
  SyntheticIncidentOptions o;
  o.count = 100;
  o.records_each = 1;
  o.instance_len = 5;
  const IncidentList list = synthetic_incidents(o);
  EXPECT_EQ(list.size(), 5u);
}

TEST(SyntheticTest, RecordsEachClampedToInstanceLen) {
  Rng rng(1);
  const Incident o = random_incident(rng, 1, 10, 4);
  EXPECT_EQ(o.size(), 4u);
}

}  // namespace
}  // namespace wflog
