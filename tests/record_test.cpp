#include "log/record.h"

#include <gtest/gtest.h>

#include "common/interner.h"

namespace wflog {
namespace {

TEST(AttrMapTest, EmptyByDefault) {
  AttrMap m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.get(0), nullptr);
}

TEST(AttrMapTest, SetAndGet) {
  AttrMap m;
  m.set(1, Value{std::int64_t{1000}});
  ASSERT_NE(m.get(1), nullptr);
  EXPECT_EQ(*m.get(1), Value{std::int64_t{1000}});
  EXPECT_TRUE(m.contains(1));
  EXPECT_FALSE(m.contains(2));
}

TEST(AttrMapTest, SetOverwrites) {
  AttrMap m;
  m.set(1, Value{"start"});
  m.set(1, Value{"active"});
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.get(1), Value{"active"});
}

TEST(AttrMapTest, PreservesInsertionOrder) {
  AttrMap m;
  m.set(5, Value{std::int64_t{1}});
  m.set(2, Value{std::int64_t{2}});
  m.set(9, Value{std::int64_t{3}});
  std::vector<Symbol> order;
  for (const AttrEntry& e : m) order.push_back(e.attr);
  EXPECT_EQ(order, (std::vector<Symbol>{5, 2, 9}));
}

TEST(AttrMapTest, Equality) {
  AttrMap a;
  a.set(1, Value{"x"});
  AttrMap b;
  b.set(1, Value{"x"});
  EXPECT_EQ(a, b);
  b.set(2, Value{"y"});
  EXPECT_FALSE(a == b);
}

TEST(LogRecordTest, PaperAccessorFunctions) {
  Interner in;
  LogRecord l;
  l.lsn = 4;
  l.wid = 1;
  l.is_lsn = 3;
  l.activity = in.intern("CheckIn");
  l.in.set(in.intern("referId"), Value{"034d1"});
  l.out.set(in.intern("referState"), Value{"active"});

  // Example 1 of the paper.
  EXPECT_EQ(lsn(l), 4u);
  EXPECT_EQ(wid(l), 1u);
  EXPECT_EQ(is_lsn(l), 3u);
  EXPECT_EQ(act(l), in.find("CheckIn"));
  EXPECT_EQ(*alpha_in(l).get(in.find("referId")), Value{"034d1"});
  EXPECT_EQ(*alpha_out(l).get(in.find("referState")), Value{"active"});
}

TEST(LogRecordTest, SentinelNames) {
  EXPECT_EQ(kStartActivity, "START");
  EXPECT_EQ(kEndActivity, "END");
}

}  // namespace
}  // namespace wflog
