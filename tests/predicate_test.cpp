#include "core/predicate.h"

#include <gtest/gtest.h>

#include "core/parser.h"

namespace wflog {
namespace {

/// One record with configurable maps, plus the interner to resolve names.
struct Fixture {
  Interner interner;
  LogRecord record;

  Fixture() {
    record.activity = interner.intern("PayTreatment");
    record.in.set(interner.intern("referState"), Value{"active"});
    record.in.set(interner.intern("balance"), Value{std::int64_t{1000}});
    record.out.set(interner.intern("receipt1"), Value{std::int64_t{560}});
    record.out.set(interner.intern("balance"), Value{std::int64_t{440}});
    record.out.set(interner.intern("flag"), Value{true});
  }

  bool eval(const PredicatePtr& p) const {
    return p->eval(record, interner);
  }
};

TEST(PredicateTest, CompareOnInputMap) {
  Fixture f;
  EXPECT_TRUE(f.eval(Predicate::compare(MapSel::kIn, "referState", CmpOp::kEq,
                                        Value{"active"})));
  EXPECT_FALSE(f.eval(Predicate::compare(MapSel::kIn, "referState",
                                         CmpOp::kEq, Value{"start"})));
}

TEST(PredicateTest, CompareOnOutputMap) {
  Fixture f;
  EXPECT_TRUE(f.eval(Predicate::compare(MapSel::kOut, "receipt1", CmpOp::kGt,
                                        Value{std::int64_t{500}})));
  EXPECT_FALSE(f.eval(Predicate::compare(MapSel::kOut, "receipt1", CmpOp::kGt,
                                         Value{std::int64_t{560}})));
}

TEST(PredicateTest, AnySelPrefersOutput) {
  Fixture f;
  // balance is 1000 in αin but 440 in αout; kAny reads αout first.
  EXPECT_TRUE(f.eval(Predicate::compare(MapSel::kAny, "balance", CmpOp::kEq,
                                        Value{std::int64_t{440}})));
}

TEST(PredicateTest, AnySelFallsBackToInput) {
  Fixture f;
  EXPECT_TRUE(f.eval(Predicate::compare(MapSel::kAny, "referState",
                                        CmpOp::kEq, Value{"active"})));
}

TEST(PredicateTest, MissingAttributeFailsComparison) {
  Fixture f;
  EXPECT_FALSE(f.eval(Predicate::compare(MapSel::kIn, "nonexistent",
                                         CmpOp::kEq, Value{std::int64_t{0}})));
  EXPECT_FALSE(f.eval(Predicate::compare(MapSel::kOut, "referState",
                                         CmpOp::kEq, Value{"active"})));
}

TEST(PredicateTest, AllComparisonOps) {
  Fixture f;
  auto cmp = [&](CmpOp op, std::int64_t lit) {
    return f.eval(
        Predicate::compare(MapSel::kOut, "receipt1", op, Value{lit}));
  };
  EXPECT_TRUE(cmp(CmpOp::kEq, 560));
  EXPECT_TRUE(cmp(CmpOp::kNe, 561));
  EXPECT_TRUE(cmp(CmpOp::kLt, 561));
  EXPECT_TRUE(cmp(CmpOp::kLe, 560));
  EXPECT_TRUE(cmp(CmpOp::kGt, 559));
  EXPECT_TRUE(cmp(CmpOp::kGe, 560));
  EXPECT_FALSE(cmp(CmpOp::kLt, 560));
  EXPECT_FALSE(cmp(CmpOp::kGt, 560));
}

TEST(PredicateTest, NumericComparisonAcrossIntDouble) {
  Fixture f;
  EXPECT_TRUE(f.eval(
      Predicate::compare(MapSel::kOut, "receipt1", CmpOp::kGt, Value{559.5})));
}

TEST(PredicateTest, Exists) {
  Fixture f;
  EXPECT_TRUE(f.eval(Predicate::exists(MapSel::kOut, "receipt1")));
  EXPECT_FALSE(f.eval(Predicate::exists(MapSel::kIn, "receipt1")));
  EXPECT_TRUE(f.eval(Predicate::exists(MapSel::kAny, "receipt1")));
  EXPECT_FALSE(f.eval(Predicate::exists(MapSel::kAny, "ghost")));
}

TEST(PredicateTest, LogicalConnectives) {
  Fixture f;
  const PredicatePtr t = Predicate::exists(MapSel::kOut, "receipt1");
  const PredicatePtr ff = Predicate::exists(MapSel::kOut, "ghost");
  EXPECT_TRUE(f.eval(Predicate::logical_and(t, t)));
  EXPECT_FALSE(f.eval(Predicate::logical_and(t, ff)));
  EXPECT_TRUE(f.eval(Predicate::logical_or(ff, t)));
  EXPECT_FALSE(f.eval(Predicate::logical_or(ff, ff)));
  EXPECT_TRUE(f.eval(Predicate::logical_not(ff)));
  EXPECT_FALSE(f.eval(Predicate::logical_not(t)));
}

TEST(PredicateTest, UnknownAttributeNameNeverInterned) {
  // The interner has never seen "zzz"; lookups must not crash.
  Fixture f;
  EXPECT_FALSE(f.eval(Predicate::compare(MapSel::kAny, "zzz", CmpOp::kEq,
                                         Value{std::int64_t{1}})));
}

TEST(PredicateTest, EqualsAndHash) {
  const PredicatePtr a = Predicate::compare(MapSel::kOut, "balance",
                                            CmpOp::kGt, Value{std::int64_t{5000}});
  const PredicatePtr b = Predicate::compare(MapSel::kOut, "balance",
                                            CmpOp::kGt, Value{std::int64_t{5000}});
  const PredicatePtr c = Predicate::compare(MapSel::kIn, "balance",
                                            CmpOp::kGt, Value{std::int64_t{5000}});
  EXPECT_TRUE(a->equals(*b));
  EXPECT_EQ(a->hash(), b->hash());
  EXPECT_FALSE(a->equals(*c));
}

TEST(PredicateTest, ToStringRoundTripsThroughParser) {
  const char* sources[] = {
      "out.balance > 5000",
      "in.referState = \"active\"",
      "(out.flag = true && in.balance >= 1000)",
      "(exists out.receipt1 || !(in.balance < 500))",
      "amount != 3.5",
  };
  for (const char* src : sources) {
    const PredicatePtr p = parse_predicate(src);
    const PredicatePtr q = parse_predicate(p->to_string());
    EXPECT_TRUE(p->equals(*q)) << src << " -> " << p->to_string();
  }
}

}  // namespace
}  // namespace wflog
