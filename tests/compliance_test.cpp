#include "core/compliance.h"

#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/engine.h"
#include "test_util.h"
#include "workflow/clinic.h"

namespace wflog {
namespace {

using testing::make_log;

RuleResult check_one(const Log& log, Rule rule,
                     const ComplianceOptions& options = {}) {
  const LogIndex index(log);
  return check_compliance({std::move(rule)}, index, options).results.at(0);
}

TEST(ComplianceTest, Existence) {
  const Log log = make_log("a b ; b");
  const RuleResult r = check_one(log, Rule::existence("a"));
  EXPECT_EQ(r.instances_checked, 2u);
  EXPECT_EQ(r.instances_violating, 1u);
  EXPECT_EQ(r.samples.at(0).wid, 2u);
}

TEST(ComplianceTest, ExistenceWithCount) {
  const Log log = make_log("a a ; a");
  EXPECT_EQ(check_one(log, Rule::existence("a", 2)).instances_violating, 1u);
  EXPECT_EQ(check_one(log, Rule::existence("a", 1)).instances_violating, 0u);
}

TEST(ComplianceTest, Absence) {
  const Log log = make_log("a a a ; a");
  const RuleResult r = check_one(log, Rule::absence("a", 2));
  EXPECT_EQ(r.instances_violating, 1u);
  // Witness: the second occurrence (position of the n-th a).
  EXPECT_EQ(r.samples.at(0).position, 3u);
}

TEST(ComplianceTest, Exactly) {
  const Log log = make_log("a a ; a ; a a a");
  const RuleResult r = check_one(log, Rule::exactly("a", 2));
  EXPECT_EQ(r.instances_violating, 2u);  // instance 2 (too few), 3 (too many)
}

TEST(ComplianceTest, Init) {
  const Log log = make_log("a b ; b a");
  const RuleResult r = check_one(log, Rule::init("a"));
  EXPECT_EQ(r.instances_violating, 1u);
  EXPECT_EQ(r.samples.at(0).wid, 2u);
  EXPECT_EQ(r.samples.at(0).position, 2u);
}

TEST(ComplianceTest, LastChecksCompletedOnly) {
  const Log log = make_log("a b ; a ... ; b a");
  RuleResult r = check_one(log, Rule::last("b"));
  EXPECT_EQ(r.instances_checked, 2u);  // incomplete instance 2 skipped
  EXPECT_EQ(r.instances_violating, 1u);  // instance 3 ends with a

  ComplianceOptions strict;
  strict.skip_incomplete_for_last = false;
  r = check_one(log, Rule::last("b"), strict);
  EXPECT_EQ(r.instances_checked, 3u);
  EXPECT_EQ(r.instances_violating, 2u);
}

TEST(ComplianceTest, Response) {
  // Every a must be followed by some b.
  const Log log = make_log("a b ; a b a ; b");
  const RuleResult r = check_one(log, Rule::response("a", "b"));
  EXPECT_EQ(r.instances_violating, 1u);  // instance 2: trailing a unanswered
  EXPECT_EQ(r.samples.at(0).wid, 2u);
  EXPECT_EQ(r.samples.at(0).position, 4u);  // the offending a
}

TEST(ComplianceTest, AlternateResponse) {
  // Between two a's there must be a b.
  const Log log = make_log("a b a b ; a a b");
  const RuleResult r = check_one(log, Rule::alternate_response("a", "b"));
  EXPECT_EQ(r.instances_violating, 1u);
  EXPECT_EQ(r.samples.at(0).wid, 2u);
  EXPECT_EQ(r.samples.at(0).position, 2u);  // first a repeats before any b
}

TEST(ComplianceTest, ChainResponse) {
  const Log log = make_log("a b ; a x b");
  const RuleResult r = check_one(log, Rule::chain_response("a", "b"));
  EXPECT_EQ(r.instances_violating, 1u);
  EXPECT_EQ(r.samples.at(0).wid, 2u);
}

TEST(ComplianceTest, Precedence) {
  const Log log = make_log("a b ; b a");
  const RuleResult r = check_one(log, Rule::precedence("a", "b"));
  EXPECT_EQ(r.instances_violating, 1u);
  EXPECT_EQ(r.samples.at(0).wid, 2u);
  EXPECT_EQ(r.samples.at(0).position, 2u);  // the unpreceded b
}

TEST(ComplianceTest, ChainPrecedence) {
  const Log log = make_log("a b ; a x b");
  const RuleResult r = check_one(log, Rule::chain_precedence("a", "b"));
  EXPECT_EQ(r.instances_violating, 1u);
}

TEST(ComplianceTest, NotSuccession) {
  const Log log = make_log("b a ; a b");
  const RuleResult r = check_one(log, Rule::not_succession("a", "b"));
  EXPECT_EQ(r.instances_violating, 1u);
  EXPECT_EQ(r.samples.at(0).wid, 2u);
}

TEST(ComplianceTest, NotSuccessionAgreesWithPatternQuery) {
  // NotSuccession(a,b) is violated exactly where `a -> b` has an incident.
  const Log log = clinic_log(80, 19);
  const LogIndex index(log);
  const RuleResult r = check_one(
      log, Rule::not_succession("GetReimburse", "UpdateRefer"));
  QueryEngine engine(log);
  const QueryResult q = engine.run("GetReimburse -> UpdateRefer");
  EXPECT_EQ(r.instances_violating, instances_with_match(q.incidents));
}

TEST(ComplianceTest, UnknownActivitiesBehaveVacuously) {
  const Log log = make_log("a");
  EXPECT_EQ(check_one(log, Rule::response("zzz", "a")).instances_violating,
            0u);
  EXPECT_EQ(check_one(log, Rule::existence("zzz")).instances_violating, 1u);
  EXPECT_EQ(check_one(log, Rule::not_succession("zzz", "a"))
                .instances_violating,
            0u);
}

TEST(ComplianceTest, SampleCapRespected) {
  const Log log = make_log("b ; b ; b ; b ; b");
  ComplianceOptions options;
  options.max_samples_per_rule = 2;
  const RuleResult r = check_one(log, Rule::existence("a"), options);
  EXPECT_EQ(r.instances_violating, 5u);
  EXPECT_EQ(r.samples.size(), 2u);
}

TEST(ComplianceTest, ReportAggregation) {
  const Log log = make_log("a b ; b");
  const LogIndex index(log);
  const ComplianceReport report = check_compliance(
      {Rule::existence("a"), Rule::init("a"), Rule::response("a", "b")},
      index);
  EXPECT_FALSE(report.compliant());
  EXPECT_EQ(report.total_violations(), 2u);  // existence + init on wid 2
  const std::string text = report.to_string();
  EXPECT_NE(text.find("Existence(a, 1)"), std::string::npos);
  EXPECT_NE(text.find("Response(a, b)"), std::string::npos);
  EXPECT_NE(text.find("violations"), std::string::npos);
}

TEST(ComplianceTest, RuleNames) {
  EXPECT_EQ(Rule::existence("a", 2).name(), "Existence(a, 2)");
  EXPECT_EQ(Rule::response("a", "b").name(), "Response(a, b)");
  EXPECT_EQ(Rule::init("a").name(), "Init(a)");
  EXPECT_EQ(Rule::chain_precedence("x", "y").name(),
            "ChainPrecedence(x, y)");
}

TEST(ComplianceTest, ClinicProcessObeysItsInvariants) {
  const Log log = clinic_log(100, 77, ClinicOptions{.fraud_rate = 0.0});
  const LogIndex index(log);
  const ComplianceReport report = check_compliance(
      {
          Rule::init("GetRefer"),
          Rule::exactly("GetRefer", 1),
          Rule::exactly("CheckIn", 1),
          Rule::precedence("CheckIn", "SeeDoctor"),
          Rule::precedence("PayTreatment", "GetReimburse"),
          Rule::not_succession("GetReimburse", "UpdateRefer"),
          Rule::chain_precedence("GetRefer", "CheckIn"),
      },
      index);
  EXPECT_TRUE(report.compliant()) << report.to_string();
}

TEST(ComplianceTest, ClinicFraudIsDetected) {
  const Log log = clinic_log(150, 5, ClinicOptions{.fraud_rate = 0.3});
  const LogIndex index(log);
  const ComplianceReport report = check_compliance(
      {Rule::not_succession("GetReimburse", "UpdateRefer")}, index);
  EXPECT_FALSE(report.compliant());
}

}  // namespace
}  // namespace wflog
