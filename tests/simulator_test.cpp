#include "workflow/simulator.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "log/index.h"
#include "log/stats.h"
#include "log/validate.h"
#include "workflow/random_model.h"

namespace wflog {
namespace {

WorkflowModel linear_model() {
  WorkflowModel m("linear");
  const auto a = m.add_task("a");
  const auto b = m.add_task("b");
  const auto c = m.add_task("c");
  const auto t = m.add_terminal();
  m.connect(a, b);
  m.connect(b, c);
  m.connect(c, t);
  return m;
}

std::vector<LogRecord> records_of(const Log& log) {
  return {log.begin(), log.end()};
}

TEST(SimulatorTest, LinearModelProducesExpectedTrace) {
  SimOptions o;
  o.num_instances = 1;
  const Log log = simulate(linear_model(), o);
  ASSERT_EQ(log.size(), 5u);  // START a b c END
  const char* expected[] = {"START", "a", "b", "c", "END"};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(log.activity_name(log.record(i + 1).activity), expected[i]);
  }
}

TEST(SimulatorTest, ProducesWellFormedLogs) {
  SimOptions o;
  o.num_instances = 50;
  o.interleaving = 0.9;
  o.validate = false;  // validate explicitly below
  const Log log = simulate(linear_model(), o);
  EXPECT_TRUE(check_well_formed(records_of(log), log.interner()).empty());
}

TEST(SimulatorTest, InstanceCountHonored) {
  SimOptions o;
  o.num_instances = 17;
  const Log log = simulate(linear_model(), o);
  EXPECT_EQ(log.wids().size(), 17u);
}

TEST(SimulatorTest, DeterministicForSeed) {
  SimOptions o;
  o.num_instances = 10;
  o.seed = 5;
  const Log a = simulate(linear_model(), o);
  const Log b = simulate(linear_model(), o);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 1; i <= a.size(); ++i) {
    EXPECT_EQ(a.record(i).wid, b.record(i).wid);
    EXPECT_EQ(a.activity_name(a.record(i).activity),
              b.activity_name(b.record(i).activity));
  }
}

TEST(SimulatorTest, ZeroInterleavingKeepsInstancesContiguous) {
  SimOptions o;
  o.num_instances = 5;
  o.interleaving = 0.0;
  const Log log = simulate(linear_model(), o);
  // Instances must appear as contiguous record blocks.
  Wid prev = 0;
  std::set<Wid> finished;
  for (const LogRecord& l : log) {
    if (l.wid != prev) {
      EXPECT_FALSE(finished.contains(l.wid));
      if (prev != 0) finished.insert(prev);
      prev = l.wid;
    }
  }
}

TEST(SimulatorTest, HighInterleavingMixesInstances) {
  SimOptions o;
  o.num_instances = 10;
  o.interleaving = 1.0;
  const Log log = simulate(linear_model(), o);
  std::size_t switches = 0;
  Wid prev = 0;
  for (const LogRecord& l : log) {
    if (prev != 0 && l.wid != prev) ++switches;
    prev = l.wid;
  }
  EXPECT_GT(switches, 10u);
}

TEST(SimulatorTest, AbandonedInstancesLackEnd) {
  SimOptions o;
  o.num_instances = 100;
  o.abandon_probability = 0.5;
  o.seed = 3;
  const Log log = simulate(linear_model(), o);
  const LogStats s = compute_stats(log);
  EXPECT_LT(s.num_completed, 80u);
  EXPECT_GT(s.num_completed, 20u);
  // Still well-formed.
  EXPECT_TRUE(check_well_formed(records_of(log), log.interner()).empty());
}

TEST(SimulatorTest, AttributesFlowThroughStore) {
  WorkflowModel m("attrs");
  const auto set = m.add_task("Set", {}, [](Rng&, const AttrStore&) {
    return AttrWrites{{"x", Value{std::int64_t{7}}}};
  });
  const auto get = m.add_task("Get", {"x"}, nullptr);
  const auto t = m.add_terminal();
  m.connect(set, get);
  m.connect(get, t);
  SimOptions o;
  o.num_instances = 1;
  const Log log = simulate(m, o);
  const LogRecord& get_rec = log.record(3);
  EXPECT_EQ(log.activity_name(get_rec.activity), "Get");
  EXPECT_EQ(*get_rec.in.get(log.interner().find("x")),
            Value{std::int64_t{7}});
  // Set's own αin must not contain x (it was unset at read time).
  EXPECT_TRUE(log.record(2).in.empty());
}

TEST(SimulatorTest, GuardsGateTransitions) {
  WorkflowModel m("guarded");
  const auto a = m.add_task("a", {}, [](Rng&, const AttrStore&) {
    return AttrWrites{{"go", Value{false}}};
  });
  const auto yes = m.add_task("yes");
  const auto no = m.add_task("no");
  const auto t = m.add_terminal();
  m.connect(a, yes, 1.0, [](const AttrStore& s) {
    auto it = s.find("go");
    return it != s.end() && it->second == Value{true};
  });
  m.connect(a, no, 1.0, [](const AttrStore& s) {
    auto it = s.find("go");
    return it != s.end() && it->second == Value{false};
  });
  m.connect(yes, t);
  m.connect(no, t);
  SimOptions o;
  o.num_instances = 20;
  const Log log = simulate(m, o);
  const LogIndex index(log);
  EXPECT_EQ(index.total_count(log.activity_symbol("no")), 20u);
  EXPECT_EQ(index.total_count(log.activity_symbol("yes")), 0u);
}

TEST(SimulatorTest, AndBlockRunsBothBranches) {
  WorkflowModel m("and");
  const auto a = m.add_task("a");
  const auto split = m.add_and_split();
  const auto b1 = m.add_task("b1");
  const auto b2 = m.add_task("b2");
  const auto join = m.add_and_join(2);
  const auto c = m.add_task("c");
  const auto t = m.add_terminal();
  m.connect(a, split);
  m.connect(split, b1);
  m.connect(split, b2);
  m.connect(b1, join);
  m.connect(b2, join);
  m.connect(join, c);
  m.connect(c, t);

  SimOptions o;
  o.num_instances = 30;
  o.seed = 11;
  const Log log = simulate(m, o);
  const LogIndex index(log);
  for (Wid wid : log.wids()) {
    // Each instance: START a {b1,b2 in some order} c END.
    EXPECT_EQ(index.instance_length(wid), 6u);
    const auto& b1_occ = index.occurrences(wid, log.activity_symbol("b1"));
    const auto& b2_occ = index.occurrences(wid, log.activity_symbol("b2"));
    const auto& c_occ = index.occurrences(wid, log.activity_symbol("c"));
    ASSERT_EQ(b1_occ.size(), 1u);
    ASSERT_EQ(b2_occ.size(), 1u);
    ASSERT_EQ(c_occ.size(), 1u);
    EXPECT_GT(c_occ[0], b1_occ[0]);  // join waits for both branches
    EXPECT_GT(c_occ[0], b2_occ[0]);
  }
}

TEST(SimulatorTest, AndBranchesOrderVaries) {
  // Over many instances both b1<b2 and b2<b1 interleavings must occur.
  WorkflowModel m("and2");
  const auto split = m.add_and_split();
  const auto b1 = m.add_task("b1");
  const auto b2 = m.add_task("b2");
  const auto join = m.add_and_join(2);
  const auto t = m.add_terminal();
  m.connect(split, b1);
  m.connect(split, b2);
  m.connect(b1, join);
  m.connect(b2, join);
  m.connect(join, t);
  m.set_entry(split);

  SimOptions o;
  o.num_instances = 50;
  o.seed = 23;
  const Log log = simulate(m, o);
  const LogIndex index(log);
  bool b1_first = false;
  bool b2_first = false;
  for (Wid wid : log.wids()) {
    const auto& occ1 = index.occurrences(wid, log.activity_symbol("b1"));
    const auto& occ2 = index.occurrences(wid, log.activity_symbol("b2"));
    (occ1[0] < occ2[0] ? b1_first : b2_first) = true;
  }
  EXPECT_TRUE(b1_first);
  EXPECT_TRUE(b2_first);
}

TEST(SimulatorTest, LoopSafetyBoundsRunaways) {
  WorkflowModel m("loop");
  const auto a = m.add_task("a");
  m.connect(a, a);  // infinite loop
  SimOptions o;
  o.num_instances = 2;
  o.max_records_per_instance = 50;
  const Log log = simulate(m, o);
  const LogIndex index(log);
  for (Wid wid : log.wids()) {
    EXPECT_LE(index.instance_length(wid), 52u);
  }
}

TEST(SimulatorTest, ZeroInstancesRejected) {
  SimOptions o;
  o.num_instances = 0;
  EXPECT_THROW(simulate(linear_model(), o), Error);
}

TEST(RandomModelTest, GeneratedModelsSimulateToValidLogs) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RandomModelOptions mo;
    mo.seed = seed;
    SimOptions so;
    so.num_instances = 20;
    so.seed = seed;
    so.validate = false;
    const Log log = random_log(mo, so);
    EXPECT_TRUE(check_well_formed(records_of(log), log.interner()).empty())
        << "seed " << seed;
  }
}

TEST(RandomModelTest, DeterministicModelGeneration) {
  RandomModelOptions mo;
  mo.seed = 77;
  const WorkflowModel a = random_model(mo);
  const WorkflowModel b = random_model(mo);
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.activities(), b.activities());
}

TEST(RandomModelTest, AlphabetBounded) {
  RandomModelOptions mo;
  mo.alphabet_size = 5;
  mo.chain_length = 30;
  const WorkflowModel m = random_model(mo);
  EXPECT_LE(m.activities().size(), 5u);
}

}  // namespace
}  // namespace wflog
