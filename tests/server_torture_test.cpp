// Chaos torture harness for wfqd (ISSUE: chaos-hardened server). Three
// fault seams are scripted deterministically and crossed:
//
//   * FaultSocketIo (server/sockio.h): EINTR/EAGAIN storms, ECONNRESET
//     mid-request, short reads/writes, accept failures, slow-loris delays —
//     injected into a live HttpServer and driven by concurrent clients.
//   * FaultIo (log/fileio.h): store write errors and simulated power loss
//     under every crash-loss model, triggering wfqd's degraded mode.
//   * Both at once ("combined chaos").
//
// The invariants, checked after every matrix cell:
//
//   * the server neither crashes nor hangs — every connection gets a
//     well-formed HTTP response or a clean close (client-visible IoError);
//   * zero acked-record loss: every /ingest event acknowledged in a
//     response body ("applied") survives degrade/recover cycles;
//   * the health state machine walks healthy -> degraded -> recovering ->
//     healthy, observable via /healthz JSON and wflog_server_health_*
//     metrics, and the snapshot version strictly increases on recovery;
//   * once faults clear, the server returns to healthy and serves writes.
//
// Registered under the `torture` ctest label (run_ci.sh runs it plain and
// under ThreadSanitizer).

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "log/fileio.h"
#include "log/store.h"
#include "obs/telemetry.h"
#include "server/client.h"
#include "server/handlers.h"
#include "server/health.h"
#include "server/json.h"
#include "server/server.h"
#include "server/sockio.h"
#include "test_util.h"

namespace wflog {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

// ----- FaultSocketIo unit tests -------------------------------------------

/// A connected socketpair for driving the seam without a server.
struct Pair {
  int a = -1;
  int b = -1;
  Pair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~Pair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(FaultSocketIoTest, PassesThroughWhenUnfaulted) {
  Pair p;
  server::FaultSocketIo io;
  ASSERT_EQ(io.send(p.a, "hi", 2), 2);
  char buf[8];
  ASSERT_EQ(io.recv(p.b, buf, sizeof buf), 2);
  EXPECT_EQ(std::string(buf, 2), "hi");
  EXPECT_EQ(io.stats().injected, 0u);
  EXPECT_EQ(io.stats().ops, 2u);
}

TEST(FaultSocketIoTest, ShortReadClampsRecv) {
  Pair p;
  server::FaultSocketIo io;
  server::SocketFault f;
  f.op = server::SocketFault::Op::kRecv;
  f.kind = server::SocketFault::Kind::kShortRead;
  f.at_op = 1;
  f.count = server::kStickySocket;
  f.max_bytes = 1;
  io.add_fault(f);
  ASSERT_EQ(io.send(p.a, "abc", 3), 3);
  char buf[8];
  // Trickled in one byte per recv, but nothing is lost.
  std::string got;
  while (got.size() < 3) {
    const long n = io.recv(p.b, buf, sizeof buf);
    ASSERT_EQ(n, 1);
    got.append(buf, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(got, "abc");
  EXPECT_GE(io.stats().injected, 3u);
}

TEST(FaultSocketIoTest, EintrWindowThenClean) {
  Pair p;
  server::FaultSocketIo io;
  server::SocketFault f;
  f.op = server::SocketFault::Op::kRecv;
  f.kind = server::SocketFault::Kind::kEintr;
  f.at_op = 1;
  f.count = 3;
  io.add_fault(f);
  ASSERT_EQ(io.send(p.a, "x", 1), 1);
  char buf[4];
  for (int i = 0; i < 3; ++i) {
    errno = 0;
    EXPECT_EQ(io.recv(p.b, buf, sizeof buf), -1);
    EXPECT_EQ(errno, EINTR);
  }
  EXPECT_EQ(io.recv(p.b, buf, sizeof buf), 1);  // window passed
}

TEST(FaultSocketIoTest, FaultsCountPerFilterIndependently) {
  Pair p;
  server::FaultSocketIo io;
  server::SocketFault on_send;
  on_send.op = server::SocketFault::Op::kSend;
  on_send.kind = server::SocketFault::Kind::kConnReset;
  on_send.at_op = 2;  // second SEND, regardless of interleaved recvs
  io.add_fault(on_send);

  char buf[4];
  ASSERT_EQ(io.send(p.a, "1", 1), 1);  // send #1: clean
  ASSERT_EQ(io.recv(p.b, buf, sizeof buf), 1);
  errno = 0;
  EXPECT_EQ(io.send(p.a, "2", 1), -1);  // send #2: reset
  EXPECT_EQ(errno, ECONNRESET);
  ASSERT_EQ(io.send(p.a, "3", 1), 1);  // window passed
}

TEST(FaultSocketIoTest, ClearFaultsHealsAndResetsCounters) {
  Pair p;
  server::FaultSocketIo io;
  server::SocketFault f;
  f.kind = server::SocketFault::Kind::kEagain;
  f.at_op = 1;
  f.count = server::kStickySocket;
  io.add_fault(f);
  errno = 0;
  EXPECT_EQ(io.send(p.a, "x", 1), -1);
  EXPECT_EQ(errno, EAGAIN);
  io.clear_faults();
  EXPECT_EQ(io.send(p.a, "x", 1), 1);
}

// The bounded-transient-retry contract (http.cpp): a sticky EINTR/EAGAIN
// storm must degrade to a clean failure, never a hang.
TEST(FaultSocketIoTest, StickyEintrStormFailsCleanlyThroughHelpers) {
  Pair p;
  server::FaultSocketIo io;
  server::SocketFault f;
  f.op = server::SocketFault::Op::kSend;
  f.kind = server::SocketFault::Kind::kEintr;
  f.at_op = 1;
  f.count = server::kStickySocket;
  io.add_fault(f);
  EXPECT_FALSE(server::send_all(io, p.a, "payload"));  // returns, not loops
}

// ----- HealthMonitor unit tests -------------------------------------------

struct TransitionLog {
  std::mutex mu;
  std::vector<std::pair<server::HealthState, server::HealthState>> seen;
  void operator()(server::HealthState from, server::HealthState to,
                  const std::string&) {
    std::lock_guard<std::mutex> lock(mu);
    seen.emplace_back(from, to);
  }
  std::vector<std::pair<server::HealthState, server::HealthState>> snapshot() {
    std::lock_guard<std::mutex> lock(mu);
    return seen;
  }
};

TEST(HealthMonitorTest, WalksDegradedRecoveringHealthy) {
  std::atomic<int> probes{0};
  auto transitions = std::make_shared<TransitionLog>();
  server::HealthOptions opts;
  opts.backoff_initial = 5ms;
  opts.backoff_cap = 40ms;
  server::HealthMonitor hm(
      opts,
      [&](std::string* error) {
        // Fail the first two probes, then recover.
        if (probes.fetch_add(1) < 2) {
          if (error != nullptr) *error = "still broken";
          return false;
        }
        return true;
      },
      [transitions](server::HealthState from, server::HealthState to,
                    const std::string& detail) {
        (*transitions)(from, to, detail);
      });

  EXPECT_TRUE(hm.writable());
  hm.degrade("disk on fire");
  EXPECT_FALSE(hm.writable());

  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (hm.state() != server::HealthState::kHealthy &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  ASSERT_EQ(hm.state(), server::HealthState::kHealthy);
  const server::HealthStats stats = hm.stats();
  EXPECT_EQ(stats.degradations, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_GE(stats.attempts, 3u);
  EXPECT_FALSE(stats.gave_up);

  // The transition walk includes degraded -> recovering -> degraded (failed
  // probe) and ends recovering -> healthy.
  const auto seen = transitions->snapshot();
  ASSERT_GE(seen.size(), 2u);
  EXPECT_EQ(seen.front().first, server::HealthState::kHealthy);
  EXPECT_EQ(seen.front().second, server::HealthState::kDegraded);
  EXPECT_EQ(seen.back().first, server::HealthState::kRecovering);
  EXPECT_EQ(seen.back().second, server::HealthState::kHealthy);
}

TEST(HealthMonitorTest, GivesUpAfterMaxAttemptsAndStaysDegraded) {
  server::HealthOptions opts;
  opts.backoff_initial = 2ms;
  opts.backoff_cap = 8ms;
  opts.max_attempts = 3;
  server::HealthMonitor hm(opts, [](std::string* error) {
    if (error != nullptr) *error = "permanently broken";
    return false;
  });
  hm.degrade("boom");
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!hm.stats().gave_up &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  const server::HealthStats stats = hm.stats();
  EXPECT_TRUE(stats.gave_up);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(hm.state(), server::HealthState::kDegraded);
  EXPECT_EQ(stats.last_error, "permanently broken");

  // A fresh degrade() re-arms recovery (new outage, new attempt budget).
  hm.degrade("boom again");
  EXPECT_FALSE(hm.writable());
}

TEST(HealthMonitorTest, BackoffDoublesUpToCap) {
  server::HealthOptions opts;
  opts.backoff_initial = 10ms;
  opts.backoff_cap = 35ms;
  std::atomic<bool> broken{true};
  server::HealthMonitor hm(opts, [&](std::string*) { return !broken.load(); });
  hm.degrade("x");
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (hm.stats().attempts < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  // After >= 3 failed probes the delay hit the cap: 10 -> 20 -> 35.
  EXPECT_EQ(hm.stats().next_backoff, 35ms);
  EXPECT_GE(hm.retry_after_seconds(), 1);
  broken = false;
}

// ----- live-server chaos fixture ------------------------------------------

/// TestServer variant owning the socket seam, the store fault seam, and a
/// tight recovery schedule, so each test scripts both layers.
struct ChaosServer {
  server::FaultSocketIo sockets;
  std::shared_ptr<FaultIo> disk;  // null when store-less
  std::unique_ptr<server::QueryService> service;
  std::unique_ptr<server::HttpServer> http;

  explicit ChaosServer(std::optional<Log> log,
                       std::optional<LogStore> store = std::nullopt,
                       std::shared_ptr<FaultIo> store_io = nullptr,
                       server::ServerOptions opts = {},
                       server::ServiceOptions svc = {}) {
    disk = std::move(store_io);
    opts.port = 0;
    opts.io = &sockets;
    svc.recovery_backoff_ms = 10;
    svc.recovery_backoff_cap_ms = 80;
    service = std::make_unique<server::QueryService>(
        std::move(log), std::move(svc), opts.drain_cancel, std::move(store));
    server::Router router;
    service->bind(router);
    http = std::make_unique<server::HttpServer>(std::move(router),
                                                std::move(opts));
    service->attach_server(http.get());
    http->start();
  }

  ~ChaosServer() {
    if (http != nullptr) http->shutdown();
  }

  server::HttpClient client(int timeout_ms = 5000) const {
    return server::HttpClient("127.0.0.1", http->port(), timeout_ms);
  }

  server::JsonValue healthz_json(server::HttpClient& c) const {
    const server::ClientResponse r =
        c.get("/healthz", {{"accept", "application/json"}});
    EXPECT_EQ(r.status, 200);
    return server::parse_json(r.body);
  }

  /// Polls /healthz until health.state == `want` (own connection, so the
  /// caller's client state is untouched). False on timeout.
  bool await_state(const std::string& want,
                   std::chrono::milliseconds limit = 5s) {
    const auto deadline = std::chrono::steady_clock::now() + limit;
    while (std::chrono::steady_clock::now() < deadline) {
      try {
        server::HttpClient c = client();
        const server::JsonValue v = healthz_json(c);
        const server::JsonValue* health = v.find("health");
        if (health != nullptr && !health->is_null() &&
            health->find("state")->as_string() == want) {
          return true;
        }
      } catch (const IoError&) {
        // transient (socket faults may still be armed); retry
      }
      std::this_thread::sleep_for(5ms);
    }
    return false;
  }
};

Log small_log() { return testing::make_log("a b c ; c b a ; a c b"); }

std::string ingest_one(int k) {
  return std::string(R"({"events": [
    {"op": "begin"},
    {"op": "record", "wid": )") +
         std::to_string(k) + R"(, "activity": "a"},
    {"op": "end", "wid": )" +
         std::to_string(k) + R"(}
  ]})";
}

fs::path fresh_dir(const std::string& tag) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("wflog-server-torture-" + tag + "-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  return dir;
}

LogStore::Options chaos_store_options(std::shared_ptr<FileIo> io) {
  LogStore::Options options;
  options.records_per_segment = 4;  // exercise segment rolls mid-chaos
  options.max_io_retries = 0;       // faults are not transient; fail fast
  options.retry_backoff = std::chrono::milliseconds{0};
  options.io = std::move(io);
  return options;
}

// ----- socket-fault torture matrix ----------------------------------------

// Every scripted fault cell must end in a well-formed response or a clean
// client-visible error; the server must survive all cells and serve a
// clean request afterwards.
TEST(ServerTortureTest, SocketFaultMatrixNoCrashNoHang) {
  ChaosServer cs(small_log());

  struct Cell {
    server::SocketFault::Op op;
    server::SocketFault::Kind kind;
    std::size_t count;
  };
  std::vector<Cell> cells;
  using Op = server::SocketFault::Op;
  using Kind = server::SocketFault::Kind;
  for (const Op op : {Op::kRecv, Op::kSend}) {
    for (const Kind kind : {Kind::kEintr, Kind::kEagain, Kind::kConnReset}) {
      cells.push_back({op, kind, 1});
      cells.push_back({op, kind, 4});
    }
  }
  cells.push_back({Op::kRecv, Kind::kShortRead, server::kStickySocket});
  cells.push_back({Op::kSend, Kind::kShortWrite, server::kStickySocket});
  cells.push_back({Op::kRecv, Kind::kDelay, 2});
  cells.push_back({Op::kAccept, Kind::kAcceptFail, 2});

  int responses = 0;
  int clean_failures = 0;
  for (std::size_t at = 1; at <= 4; ++at) {
    for (const Cell& cell : cells) {
      cs.sockets.clear_faults();
      server::SocketFault f;
      f.op = cell.op;
      f.kind = cell.kind;
      f.at_op = at;
      f.count = cell.count;
      f.max_bytes = 3;
      f.delay_ms = 10;
      cs.sockets.add_fault(f);
      try {
        server::HttpClient c = cs.client(2000);
        const server::ClientResponse q =
            c.post("/query", R"({"query": "a -> b"})");
        // Well-formed response: a known status and parseable JSON body.
        EXPECT_TRUE(q.status == 200 || q.status == 503) << q.status;
        if (q.status == 200) {
          EXPECT_GE(server::parse_json(q.body).find("total")->as_int(), 0);
        }
        ++responses;
      } catch (const IoError&) {
        ++clean_failures;  // clean close — acceptable under ECONNRESET etc.
      }
    }
  }
  EXPECT_GT(responses, 0);

  // Faults gone: the server is intact and fully serving.
  cs.sockets.clear_faults();
  server::HttpClient c = cs.client();
  const server::ClientResponse ok = c.post("/query", R"({"query": "a"})");
  ASSERT_EQ(ok.status, 200) << ok.body;
  EXPECT_GT(cs.sockets.stats().injected, 0u);
  // A cell whose client gave up (timeout) can leave its request still
  // draining server-side; give stragglers a moment before declaring
  // nothing wedged.
  const auto drain_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (cs.http->stats().queue_depth != 0 &&
         std::chrono::steady_clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(cs.http->stats().queue_depth, 0u);  // nothing wedged
}

// Concurrent clients hammering a server whose sockets misbehave under
// sticky trickle faults: every request resolves (response or clean error),
// nothing deadlocks, and the server drains cleanly afterwards.
TEST(ServerTortureTest, ConcurrentClientsUnderSocketChaos) {
  server::ServerOptions opts;
  opts.threads = 4;
  opts.queue_capacity = 32;
  ChaosServer cs(small_log(), std::nullopt, nullptr, std::move(opts));

  using Op = server::SocketFault::Op;
  using Kind = server::SocketFault::Kind;
  // A rotating storm: trickled reads, short writes, periodic resets.
  for (std::size_t at : {2u, 5u, 9u, 14u}) {
    server::SocketFault reset;
    reset.op = Op::kRecv;
    reset.kind = Kind::kConnReset;
    reset.at_op = at * 7;
    cs.sockets.add_fault(reset);
  }
  server::SocketFault trickle;
  trickle.op = Op::kRecv;
  trickle.kind = Kind::kShortRead;
  trickle.at_op = 1;
  trickle.count = server::kStickySocket;
  trickle.max_bytes = 16;
  cs.sockets.add_fault(trickle);
  server::SocketFault congested;
  congested.op = Op::kSend;
  congested.kind = Kind::kShortWrite;
  congested.at_op = 3;
  congested.count = server::kStickySocket;
  congested.max_bytes = 32;
  cs.sockets.add_fault(congested);

  constexpr int kThreads = 6;
  constexpr int kRequests = 20;
  std::atomic<int> responses{0};
  std::atomic<int> clean_failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cs, &responses, &clean_failures] {
      for (int i = 0; i < kRequests; ++i) {
        try {
          server::HttpClient c = cs.client(3000);
          const server::ClientResponse r =
              c.post("/query", R"({"query": "a -> b"})");
          EXPECT_TRUE(r.status == 200 || r.status == 503) << r.status;
          responses.fetch_add(1);
        } catch (const IoError&) {
          clean_failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(responses + clean_failures, kThreads * kRequests);
  EXPECT_GT(responses.load(), 0);

  cs.sockets.clear_faults();
  server::HttpClient c = cs.client();
  EXPECT_EQ(c.get("/healthz").status, 200);
}

// ----- store-failure degraded mode ----------------------------------------

// The headline storyline: a store write fault degrades the daemon to
// read-only; reads keep serving the last good snapshot; the health state
// machine is observable via /healthz and /metrics; healing the disk brings
// it back with zero acked-record loss — across MULTIPLE outage cycles.
TEST(ServerTortureTest, DegradeServeReadOnlyRecoverRepeatedly) {
  // /metrics needs the ambient registry (wfqd always installs one); the
  // health gauges land there too.
  obs::Telemetry telemetry;
  obs::ScopedTelemetry installed(telemetry);
  const bool obs_on = obs::telemetry() != nullptr;
  const fs::path dir = fresh_dir("cycles");
  auto disk = std::make_shared<FaultIo>();
  ChaosServer cs(std::nullopt, LogStore::create(dir, chaos_store_options(disk)),
                 disk);
  server::HttpClient c = cs.client();

  std::int64_t acked_events = 0;
  std::int64_t last_version = 0;
  // LogMonitor assigns wids sequentially and recovery rolls the sequence
  // back to the acked (durable) content, so the next instance's wid is
  // "acked begins so far" + 1 — an ingest whose begin was acked advances it.
  int begun = 0;

  const auto ingest_next = [&]() -> server::ClientResponse {
    const server::ClientResponse r = c.post("/ingest", ingest_one(begun + 1));
    // The degraded-gate 503 is a plain error body with no "applied";
    // abort-path 503s and 200s report what durably landed.
    const server::JsonValue body = server::parse_json(r.body);
    const server::JsonValue* applied = body.find("applied");
    if (applied != nullptr) {
      acked_events += applied->as_int();
      if (applied->as_int() >= 1) ++begun;  // the begin is the first event
    }
    return r;
  };

  for (int cycle = 0; cycle < 3; ++cycle) {
    // Healthy: writes land durably.
    ASSERT_EQ(ingest_next().status, 200);
    ASSERT_EQ(ingest_next().status, 200);

    {
      const server::JsonValue v = cs.healthz_json(c);
      EXPECT_EQ(v.find("status")->as_string(), "ok");
      const std::int64_t version = v.find("snapshot_version")->as_int();
      EXPECT_GT(version, last_version);
      last_version = version;
    }

    // Break the disk: the next durable append fails, degrading the server.
    // A partial failing request may still ack a durable prefix — counted
    // by ingest_next either way.
    FaultIo::Fault fault;
    fault.at_op = disk->ops() + 1;
    fault.kind = FaultIo::Fault::Kind::kError;
    fault.count = FaultIo::Fault::kSticky;
    disk->set_fault(fault);
    const server::ClientResponse broken = ingest_next();
    ASSERT_EQ(broken.status, 503) << broken.body;
    ASSERT_NE(broken.header("retry-after"), nullptr);

    // Degraded: reads keep working off the last good snapshot, writes 503.
    const server::ClientResponse q = c.post("/query", R"({"query": "a"})");
    EXPECT_EQ(q.status, 200) << q.body;
    const server::ClientResponse refused = ingest_next();
    EXPECT_EQ(refused.status, 503) << refused.body;
    EXPECT_NE(refused.header("retry-after"), nullptr);
    {
      const server::JsonValue v = cs.healthz_json(c);
      const std::string status = v.find("status")->as_string();
      EXPECT_TRUE(status == "degraded" || status == "recovering") << status;
      const server::JsonValue* health = v.find("health");
      ASSERT_FALSE(health->is_null());
      EXPECT_FALSE(health->find("writable")->as_bool());
      EXPECT_EQ(health->find("degradations")->as_int(), cycle + 1);
    }
    // Plain probes still answer 200 but name the state.
    const server::ClientResponse plain = c.get("/healthz");
    EXPECT_EQ(plain.status, 200);
    EXPECT_NE(plain.body, "ok\n");

    // The metric gauge exports the non-healthy state (unless this build
    // compiled observability out entirely).
    if (obs_on) {
      const server::ClientResponse metrics = c.get("/metrics");
      ASSERT_EQ(metrics.status, 200);
      EXPECT_NE(metrics.body.find("wflog_server_health_state"),
                std::string::npos);
      EXPECT_NE(metrics.body.find("wflog_server_health_degradations_total"),
                std::string::npos);
    }

    // Heal the disk; background recovery reopens the store and republishes.
    disk->clear_fault();
    ASSERT_TRUE(cs.await_state("healthy")) << "cycle " << cycle;

    // Recovery published a strictly newer snapshot with every acked record.
    const server::JsonValue v = cs.healthz_json(c);
    EXPECT_EQ(v.find("status")->as_string(), "ok");
    const std::int64_t version = v.find("snapshot_version")->as_int();
    EXPECT_GT(version, last_version);
    last_version = version;
    EXPECT_EQ(v.find("records")->as_int(), acked_events);
    EXPECT_TRUE(v.find("health")->find("writable")->as_bool());
    EXPECT_EQ(v.find("health")->find("recoveries")->as_int(), cycle + 1);
  }

  // The full history survives on disk, not just in memory.
  cs.http->shutdown();
  cs.service.reset();
  LogStore store = LogStore::open(dir);
  EXPECT_EQ(static_cast<std::int64_t>(store.num_records()), acked_events);
  fs::remove_all(dir);
}

// Crash-during-active-session coverage: a simulated power loss at every
// early op boundary x every loss model, with the wfqd session staying up.
// Acked records always survive recovery and the snapshot version strictly
// increases.
TEST(ServerTortureTest, CrashDuringSessionLosesNoAckedRecords) {
  for (const FaultIo::CrashLoss loss :
       {FaultIo::CrashLoss::kKeepAll, FaultIo::CrashLoss::kDropUnsynced,
        FaultIo::CrashLoss::kTornHalf}) {
    for (const std::uint64_t crash_after : {1u, 3u, 7u}) {
      const fs::path dir = fresh_dir(
          "crash-" + std::to_string(static_cast<int>(loss)) + "-" +
          std::to_string(crash_after));
      auto disk = std::make_shared<FaultIo>();
      ChaosServer cs(std::nullopt,
                     LogStore::create(dir, chaos_store_options(disk)), disk);
      server::HttpClient c = cs.client();

      // A little durable history before the lights go out. Wid accounting
      // mirrors the monitor: the next begin gets "acked begins" + 1.
      std::int64_t acked = 0;
      int begun = 0;
      const auto ingest_next = [&]() -> server::ClientResponse {
        const server::ClientResponse r =
            c.post("/ingest", ingest_one(begun + 1));
        const server::JsonValue body = server::parse_json(r.body);
        const server::JsonValue* applied = body.find("applied");
        if (applied != nullptr) {
          acked += applied->as_int();
          if (applied->as_int() >= 1) ++begun;
        }
        return r;
      };
      ASSERT_EQ(ingest_next().status, 200);

      FaultIo::Fault fault;
      fault.at_op = disk->ops() + crash_after;
      fault.kind = FaultIo::Fault::Kind::kCrash;
      fault.loss = loss;
      disk->set_fault(fault);

      // Ingest until the crash fires (or the script ends). Acked = applied
      // counts from the response bodies, whatever the status.
      bool crashed = false;
      for (int i = 0; i < 4; ++i) {
        const server::ClientResponse r = ingest_next();
        if (r.status == 503) {
          crashed = true;
          break;
        }
        ASSERT_EQ(r.status, 200) << r.body;
      }
      ASSERT_TRUE(crashed) << "crash fault never fired";

      const std::int64_t degraded_version =
          cs.healthz_json(c).find("snapshot_version")->as_int();

      // Power restored: recovery reopens through quarantine and republishes.
      disk->clear_fault();
      ASSERT_TRUE(cs.await_state("healthy"))
          << "loss=" << static_cast<int>(loss) << " after=" << crash_after;

      const server::JsonValue v = cs.healthz_json(c);
      EXPECT_GT(v.find("snapshot_version")->as_int(), degraded_version);
      // Zero acked-record loss. An unacked event may SURVIVE (the append
      // landed but the ack never left — e.g. kKeepAll, or a crash on the
      // fsync after the write), so >= is the contract, not ==.
      EXPECT_GE(v.find("records")->as_int(), acked)
          << "loss=" << static_cast<int>(loss) << " after=" << crash_after;
      // ...but never by more than the one request in flight at the crash.
      EXPECT_LE(v.find("records")->as_int(), acked + 3)
          << "loss=" << static_cast<int>(loss) << " after=" << crash_after;

      // The recovered store accepts new durable writes.
      const server::ClientResponse again =
          c.post("/ingest", R"({"events": [{"op": "begin"}]})");
      EXPECT_EQ(again.status, 200) << again.body;

      cs.http->shutdown();
      cs.service.reset();
      fs::remove_all(dir);
    }
  }
}

// Both seams at once: a broken disk AND a misbehaving network. Reads are
// ragged but never wrong, and after everything heals the server returns to
// healthy with every acked record intact.
TEST(ServerTortureTest, CombinedSocketAndStoreChaos) {
  const fs::path dir = fresh_dir("combined");
  auto disk = std::make_shared<FaultIo>();
  ChaosServer cs(std::nullopt, LogStore::create(dir, chaos_store_options(disk)),
                 disk);

  std::int64_t acked = 0;
  {
    server::HttpClient c = cs.client();
    const server::ClientResponse r = c.post("/ingest", ingest_one(1));
    ASSERT_EQ(r.status, 200) << r.body;
    acked += server::parse_json(r.body).find("applied")->as_int();
  }

  // Disk dies...
  FaultIo::Fault fault;
  fault.at_op = disk->ops() + 1;
  fault.kind = FaultIo::Fault::Kind::kError;
  fault.count = FaultIo::Fault::kSticky;
  disk->set_fault(fault);
  // ...and the network gets nasty at the same time.
  using Op = server::SocketFault::Op;
  using Kind = server::SocketFault::Kind;
  server::SocketFault trickle;
  trickle.op = Op::kRecv;
  trickle.kind = Kind::kShortRead;
  trickle.at_op = 1;
  trickle.count = server::kStickySocket;
  trickle.max_bytes = 24;
  cs.sockets.add_fault(trickle);
  server::SocketFault reset;
  reset.op = Op::kSend;
  reset.kind = Kind::kConnReset;
  reset.at_op = 11;
  reset.count = 2;
  cs.sockets.add_fault(reset);

  std::atomic<int> resolved{0};
  std::vector<std::thread> threads;
  std::atomic<std::int64_t> chaos_acked{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cs, &resolved, &chaos_acked, t] {
      for (int i = 0; i < 10; ++i) {
        try {
          server::HttpClient c = cs.client(3000);
          if (t % 2 == 0) {
            const server::ClientResponse r =
                c.post("/query", R"({"query": "a"})");
            EXPECT_TRUE(r.status == 200 || r.status == 503) << r.status;
          } else {
            // Begin-only events: wid-free, so concurrent writers cannot
            // trip the monitor's sequential wid assignment.
            const server::ClientResponse r =
                c.post("/ingest", R"({"events": [{"op": "begin"}]})");
            EXPECT_TRUE(r.status == 200 || r.status == 503) << r.status;
            const server::JsonValue body = server::parse_json(r.body);
            const server::JsonValue* applied = body.find("applied");
            if (applied != nullptr) chaos_acked.fetch_add(applied->as_int());
          }
          resolved.fetch_add(1);
        } catch (const IoError&) {
          resolved.fetch_add(1);  // clean close also resolves the request
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(resolved.load(), 40);
  acked += chaos_acked.load();

  // Everything heals.
  cs.sockets.clear_faults();
  disk->clear_fault();
  ASSERT_TRUE(cs.await_state("healthy"));

  server::HttpClient c = cs.client();
  const server::JsonValue v = cs.healthz_json(c);
  EXPECT_EQ(v.find("status")->as_string(), "ok");
  EXPECT_EQ(v.find("records")->as_int(), acked);

  cs.http->shutdown();
  cs.service.reset();
  LogStore store = LogStore::open(dir);
  EXPECT_EQ(static_cast<std::int64_t>(store.num_records()), acked);
  fs::remove_all(dir);
}

// ----- standing queries under chaos ---------------------------------------

// Exactly-once delivery across store outages: a subscription registered
// before the first outage must, after any number of degrade/recover
// cycles, have delivered exactly the incident set a batch /query reports
// against the final durable snapshot — no loss, no duplicates, dense seqs.
TEST(ServerTortureTest, SubscriptionsSurviveDegradeRecoverExactlyOnce) {
  const fs::path dir = fresh_dir("subscribe-cycles");
  auto disk = std::make_shared<FaultIo>();
  ChaosServer cs(std::nullopt, LogStore::create(dir, chaos_store_options(disk)),
                 disk);
  server::HttpClient c = cs.client();

  int begun = 0;
  const auto ingest_next = [&]() -> server::ClientResponse {
    const server::ClientResponse r = c.post("/ingest", ingest_one(begun + 1));
    const server::JsonValue body = server::parse_json(r.body);
    const server::JsonValue* applied = body.find("applied");
    if (applied != nullptr && applied->as_int() >= 1) ++begun;
    return r;
  };

  ASSERT_EQ(ingest_next().status, 200);
  const server::ClientResponse sub =
      c.post("/subscribe", R"({"query": "a"})");
  ASSERT_EQ(sub.status, 201) << sub.body;
  const std::string sub_id =
      server::parse_json(sub.body).find("id")->as_string();

  // Collected (event seq, event body) pairs; acked as consumed.
  std::vector<std::int64_t> seqs;
  std::multiset<std::string> streamed;
  std::uint64_t cursor = 0;
  const auto drain = [&] {
    for (;;) {
      const server::ClientResponse r = c.get(
          "/subscribe/" + sub_id + "?after=" + std::to_string(cursor));
      ASSERT_EQ(r.status, 200) << r.body;
      const server::JsonValue v = server::parse_json(r.body);
      ASSERT_FALSE(v.find("closed")->as_bool()) << r.body;
      for (const server::JsonValue& e : v.find("events")->as_array()) {
        seqs.push_back(e.find("seq")->as_int());
        std::vector<std::string> positions;
        std::string frag =
            "\"wid\":" + std::to_string(e.find("wid")->as_int()) +
            ",\"positions\":[";
        bool first = true;
        for (const server::JsonValue& p : e.find("positions")->as_array()) {
          if (!first) frag += ',';
          first = false;
          frag += std::to_string(p.as_int());
        }
        streamed.insert(frag + "]");
      }
      cursor = static_cast<std::uint64_t>(v.find("next_after")->as_int());
      if (v.find("events")->as_array().empty() &&
          v.find("pending")->as_int() == 0) {
        return;
      }
    }
  };
  drain();  // the replayed history

  for (int cycle = 0; cycle < 3; ++cycle) {
    ASSERT_EQ(ingest_next().status, 200);
    drain();

    // Break the disk mid-stream. The failing request may still route a
    // durable prefix; drain() above and below accounts for either.
    FaultIo::Fault fault;
    fault.at_op = disk->ops() + 1;
    fault.kind = FaultIo::Fault::Kind::kError;
    fault.count = FaultIo::Fault::kSticky;
    disk->set_fault(fault);
    EXPECT_EQ(ingest_next().status, 503);

    // Degraded: delivery is paused (events retained, none lost) and new
    // registrations are refused — they could misalign replay bookkeeping.
    {
      const server::ClientResponse r = c.get(
          "/subscribe/" + sub_id + "?after=" + std::to_string(cursor));
      ASSERT_EQ(r.status, 200) << r.body;
      const server::JsonValue v = server::parse_json(r.body);
      EXPECT_TRUE(v.find("paused")->as_bool()) << r.body;
      EXPECT_TRUE(v.find("events")->as_array().empty());
      const server::ClientResponse refused =
          c.post("/subscribe", R"({"query": "a"})");
      EXPECT_EQ(refused.status, 503) << refused.body;
    }

    disk->clear_fault();
    ASSERT_TRUE(cs.await_state("healthy")) << "cycle " << cycle;
    ASSERT_EQ(ingest_next().status, 200);
    drain();
  }

  // The differential: streamed history == batch /query, byte for byte.
  const server::ClientResponse q = c.post("/query", R"({"query": "a"})");
  ASSERT_EQ(q.status, 200) << q.body;
  const server::JsonValue qv = server::parse_json(q.body);
  std::multiset<std::string> batch;
  for (const server::JsonValue& g : qv.find("incidents")->as_array()) {
    for (const server::JsonValue& o : g.find("incidents")->as_array()) {
      std::string frag =
          "\"wid\":" + std::to_string(g.find("wid")->as_int()) +
          ",\"positions\":[";
      bool first = true;
      for (const server::JsonValue& p : o.as_array()) {
        if (!first) frag += ',';
        first = false;
        frag += std::to_string(p.as_int());
      }
      batch.insert(frag + "]");
    }
  }
  EXPECT_EQ(streamed, batch);
  // Exactly-once: dense seqs, no gap (loss) or repeat (double delivery).
  ASSERT_EQ(seqs.size(), streamed.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], static_cast<std::int64_t>(i + 1));
  }

  cs.http->shutdown();
  cs.service.reset();
  fs::remove_all(dir);
}

// Regression for the /stats vs ingest-disable race: readers used to load
// the disabled-reason string while the degrade path assigned it, an
// unsynchronized std::string access TSan flags. Hammer /stats (which
// serializes the reason) from several threads while the main thread flips
// the server through degrade/recover cycles.
TEST(ServerTortureTest, StatsHammerDuringDegradeRecoverCycles) {
  const fs::path dir = fresh_dir("stats-hammer");
  auto disk = std::make_shared<FaultIo>();
  ChaosServer cs(std::nullopt, LogStore::create(dir, chaos_store_options(disk)),
                 disk);

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> stats_served{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] {
      server::HttpClient rc = cs.client();
      while (!stop.load()) {
        try {
          const server::ClientResponse r = rc.get("/stats");
          if (r.status != 200) continue;
          const server::JsonValue v = server::parse_json(r.body);
          // Touch the racy fields: the reason string and the subscription
          // counters snapshotted alongside it. TSan is the judge here —
          // any value is fine as long as the read is synchronized.
          volatile std::size_t sink =
              v.find("ingest_disabled_reason")->as_string().size();
          sink += static_cast<std::size_t>(
              v.find("subscriptions")->find("active")->as_int());
          (void)sink;
          stats_served.fetch_add(1);
        } catch (const IoError&) {
          // transient connect/read failure under churn: retry
        }
      }
    });
  }

  server::HttpClient c = cs.client();
  int begun = 0;
  for (int cycle = 0; cycle < 5; ++cycle) {
    const server::ClientResponse ok =
        c.post("/ingest", ingest_one(begun + 1));
    if (ok.status == 200) ++begun;

    FaultIo::Fault fault;
    fault.at_op = disk->ops() + 1;
    fault.kind = FaultIo::Fault::Kind::kError;
    fault.count = FaultIo::Fault::kSticky;
    disk->set_fault(fault);
    (void)c.post("/ingest", ingest_one(begun + 1));  // degrades
    disk->clear_fault();
    ASSERT_TRUE(cs.await_state("healthy")) << "cycle " << cycle;
  }

  stop = true;
  for (std::thread& th : readers) th.join();
  EXPECT_GT(stats_served.load(), 0);

  cs.http->shutdown();
  cs.service.reset();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace wflog
