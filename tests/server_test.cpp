// wfqd's server stack (src/server/): JSON codec, HTTP parsing, bounded
// queue, routing — and real-socket integration tests driving a live
// HttpServer + QueryService through the blocking HttpClient:
// query/batch/ingest round-trips, error statuses (400/404/405/413),
// admission-control 503s under overload, and graceful drain.
//
// The integration tests bind 127.0.0.1:0 (ephemeral) so they are
// collision-free under parallel ctest.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "core/engine.h"
#include "log/builder.h"
#include "log/store.h"
#include "obs/telemetry.h"
#include "server/client.h"
#include "server/handlers.h"
#include "server/http.h"
#include "server/json.h"
#include "server/pool.h"
#include "server/server.h"
#include "test_util.h"
#include "workflow/workload.h"

namespace wflog {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

// ----- JSON codec ---------------------------------------------------------

TEST(JsonTest, ParsesScalarsArraysObjects) {
  const server::JsonValue v = server::parse_json(
      R"({"a": [1, 2.5, "x", true, null], "b": {"c": -3}})");
  ASSERT_TRUE(v.is_object());
  const server::JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 5u);
  EXPECT_EQ(a->as_array()[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(a->as_array()[1].as_double(), 2.5);
  EXPECT_EQ(a->as_array()[2].as_string(), "x");
  EXPECT_TRUE(a->as_array()[3].as_bool());
  EXPECT_TRUE(a->as_array()[4].is_null());
  EXPECT_EQ(v.find("b")->find("c")->as_int(), -3);
}

TEST(JsonTest, DumpParseRoundTripIsStable) {
  server::JsonValue v;
  v.set("text", "line1\nline2\t\"quoted\"");
  v.set("n", std::int64_t{-42});
  v.set("list", server::JsonArray{server::JsonValue(true),
                                  server::JsonValue(nullptr)});
  const std::string once = v.dump();
  const std::string twice = server::parse_json(once).dump();
  EXPECT_EQ(once, twice);
}

TEST(JsonTest, DecodesEscapesAndUnicode) {
  const server::JsonValue v =
      server::parse_json(R"({"s": "A\n\\ 😀"})");
  const std::string& s = v.find("s")->as_string();
  EXPECT_EQ(s.substr(0, 4), "A\n\\ ");
  EXPECT_EQ(s.size(), 8u);  // 4 ASCII + 4-byte UTF-8 emoji
}

TEST(JsonTest, RejectsTrailingGarbageAndBadSyntax) {
  EXPECT_THROW(server::parse_json("{} trailing"), ParseError);
  EXPECT_THROW(server::parse_json("{\"a\": }"), ParseError);
  EXPECT_THROW(server::parse_json("[1, 2"), ParseError);
  EXPECT_THROW(server::parse_json(""), ParseError);
}

// ----- HTTP request parsing -----------------------------------------------

server::ParseState feed(std::string& buf, server::HttpRequest& req,
                        const server::HttpLimits& limits = {}) {
  std::string error;
  return server::parse_request(buf, req, limits, error);
}

TEST(HttpParseTest, IncrementalThenComplete) {
  std::string buf = "POST /query?x=1 HTTP/1.1\r\ncontent-le";
  server::HttpRequest req;
  EXPECT_EQ(feed(buf, req), server::ParseState::kNeedMore);
  buf += "ngth: 4\r\nX-Custom: Val\r\n\r\nbo";
  EXPECT_EQ(feed(buf, req), server::ParseState::kNeedMore);
  buf += "dyNEXT";
  EXPECT_EQ(feed(buf, req), server::ParseState::kDone);
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.target, "/query");  // query string stripped
  EXPECT_EQ(req.body, "body");
  EXPECT_EQ(req.header("x-custom"), "Val");  // names lowercased
  EXPECT_EQ(buf, "NEXT");  // pipelined bytes stay for the next request
}

TEST(HttpParseTest, BadRequestAndLimits) {
  server::HttpRequest req;
  std::string buf = "NOT-HTTP\r\n\r\n";
  EXPECT_EQ(feed(buf, req), server::ParseState::kBadRequest);

  server::HttpLimits small;
  small.max_body_bytes = 8;
  buf = "POST / HTTP/1.1\r\ncontent-length: 100\r\n\r\n";
  EXPECT_EQ(feed(buf, req, small), server::ParseState::kBodyTooLarge);

  small.max_header_bytes = 16;
  buf = "GET /a/very/long/target/path HTTP/1.1\r\nheader: value\r\n\r\n";
  EXPECT_EQ(feed(buf, req, small), server::ParseState::kHeaderTooLarge);
}

TEST(HttpParseTest, KeepAliveSemantics) {
  server::HttpRequest req;
  std::string buf = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_EQ(feed(buf, req), server::ParseState::kDone);
  EXPECT_TRUE(req.keep_alive());  // 1.1 default

  req = {};
  buf = "GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
  ASSERT_EQ(feed(buf, req), server::ParseState::kDone);
  EXPECT_FALSE(req.keep_alive());

  req = {};
  buf = "GET / HTTP/1.0\r\n\r\n";
  ASSERT_EQ(feed(buf, req), server::ParseState::kDone);
  EXPECT_FALSE(req.keep_alive());  // 1.0 default
}

// ----- bounded queue ------------------------------------------------------

TEST(BoundedQueueTest, ShedsWhenFullDrainsWhenClosed) {
  server::BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full -> caller sheds
  EXPECT_EQ(q.size(), 2u);

  q.close();
  EXPECT_FALSE(q.try_push(4));  // closed
  // Workers drain what was admitted, then see nullopt.
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

// ----- router -------------------------------------------------------------

TEST(RouterTest, ExactMatch404And405) {
  server::Router router;
  router.add("GET", "/x",
             [](const server::HttpRequest&, server::RequestContext&) {
               return server::HttpResponse::text(200, "hit");
             });
  server::HttpRequest req;
  server::RequestContext ctx;
  req.method = "GET";
  req.target = "/x";
  EXPECT_EQ(router.dispatch(req, ctx).status, 200);
  req.method = "POST";
  EXPECT_EQ(router.dispatch(req, ctx).status, 405);
  req.target = "/nope";
  EXPECT_EQ(router.dispatch(req, ctx).status, 404);
}

// ----- live-server fixture ------------------------------------------------

/// A QueryService + HttpServer on an ephemeral port.
struct TestServer {
  std::unique_ptr<server::QueryService> service;
  std::unique_ptr<server::HttpServer> http;

  explicit TestServer(std::optional<Log> log,
                      server::ServiceOptions svc = {},
                      server::ServerOptions opts = {},
                      std::optional<LogStore> store = std::nullopt,
                      server::RequestObserver* observer = nullptr) {
    opts.port = 0;
    opts.observer = observer;
    service = std::make_unique<server::QueryService>(
        std::move(log), std::move(svc), opts.drain_cancel, std::move(store));
    server::Router router;
    service->bind(router);
    if (observer != nullptr) service->attach_observer(observer);
    http = std::make_unique<server::HttpServer>(std::move(router),
                                                std::move(opts));
    service->attach_server(http.get());
    http->start();
  }

  ~TestServer() {
    if (http != nullptr) http->shutdown();
  }

  server::HttpClient client() const {
    return server::HttpClient("127.0.0.1", http->port());
  }
};

Log small_log() { return testing::make_log("a b c ; c b a ; a c b"); }

/// The /query incidents array rebuilt from an engine-side QueryResult, for
/// bit-identical comparisons against the server's JSON.
server::JsonValue incidents_json(const QueryResult& r) {
  server::JsonArray groups;
  for (const IncidentSet::Group& g : r.incidents.groups()) {
    server::JsonArray incidents;
    for (const Incident& o : g.incidents) {
      server::JsonArray positions;
      for (const IsLsn n : o.positions()) {
        positions.emplace_back(static_cast<std::int64_t>(n));
      }
      incidents.emplace_back(std::move(positions));
    }
    server::JsonValue group;
    group.set("wid", static_cast<std::int64_t>(g.wid));
    group.set("incidents", std::move(incidents));
    groups.emplace_back(std::move(group));
  }
  return server::JsonValue(std::move(groups));
}

TEST(ServerTest, HealthzAndStats) {
  TestServer ts(small_log());
  server::HttpClient c = ts.client();
  const server::ClientResponse health = c.get("/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  const server::ClientResponse stats = c.get("/stats");
  ASSERT_EQ(stats.status, 200);
  const server::JsonValue v = server::parse_json(stats.body);
  EXPECT_EQ(v.find("records")->as_int(), 15);  // 9 + START/END sentinels
  EXPECT_EQ(v.find("instances")->as_int(), 3);
  EXPECT_TRUE(v.find("ingest_enabled")->as_bool());
  ASSERT_NE(v.find("server"), nullptr);
  EXPECT_GE(v.find("server")->find("accepted")->as_int(), 1);
}

TEST(ServerTest, QueryMatchesEngineBitIdentical) {
  const Log log = small_log();
  const QueryEngine engine(log);
  TestServer ts(small_log());
  server::HttpClient c = ts.client();

  for (const std::string text :
       {"a -> b", "a . c", "(a | b) -> c", "!b", "a & c"}) {
    const QueryResult expected = engine.run(text);
    const server::ClientResponse resp = c.post(
        "/query", server::JsonValue{server::JsonMembers{
                      {"query", server::JsonValue(text)},
                      {"limit", server::JsonValue(std::int64_t{100000})}}}
                      .dump());
    ASSERT_EQ(resp.status, 200) << text << ": " << resp.body;
    const server::JsonValue v = server::parse_json(resp.body);
    EXPECT_EQ(v.find("total")->as_int(),
              static_cast<std::int64_t>(expected.total()))
        << text;
    EXPECT_TRUE(v.find("complete")->as_bool()) << text;
    EXPECT_EQ(v.find("incidents")->dump(), incidents_json(expected).dump())
        << text;
  }
}

TEST(ServerTest, QueryWithWhereClauseMatchesEngine) {
  const auto build_log = [] {
    LogBuilder b;
    for (int i = 0; i < 4; ++i) {
      const Wid wid = b.begin_instance();
      b.append(wid, "a", {}, {{"k", Value(std::int64_t(i % 2))}});
      b.append(wid, "b", {{"k", Value(std::int64_t{1})}}, {});
      b.end_instance(wid);
    }
    return b.build();
  };
  const Log log = build_log();
  const QueryEngine engine(log);
  const std::string text = "x:a -> y:b where x.out.k = y.in.k";
  const QueryResult expected = engine.run(text);
  ASSERT_GT(expected.total(), 0u);
  ASSERT_LT(expected.total(), 4u);  // the where clause really filtered

  TestServer ts(build_log());
  server::HttpClient c = ts.client();
  const server::ClientResponse resp = c.post(
      "/query",
      server::JsonValue{
          server::JsonMembers{{"query", server::JsonValue(text)}}}
          .dump());
  ASSERT_EQ(resp.status, 200) << resp.body;
  const server::JsonValue v = server::parse_json(resp.body);
  EXPECT_EQ(v.find("total")->as_int(),
            static_cast<std::int64_t>(expected.total()));
  EXPECT_EQ(v.find("incidents")->dump(), incidents_json(expected).dump());
}

TEST(ServerTest, EightConcurrentClientsGetIdenticalAnswers) {
  TestServer ts(small_log());
  const std::string body =
      R"({"query": "a -> b", "limit": 100000})";
  // The answer fields must be bit-identical across clients; "timings" is
  // per-request wall clock and legitimately varies, so compare everything
  // but it.
  const auto answer_fields = [](const std::string& response_body) {
    const server::JsonValue v = server::parse_json(response_body);
    return v.find("incidents")->dump() + "|" +
           std::to_string(v.find("total")->as_int()) + "|" +
           (v.find("complete")->as_bool() ? "1" : "0");
  };
  const std::string reference = [&] {
    server::HttpClient c = ts.client();
    return answer_fields(c.post("/query", body).body);
  }();

  constexpr int kClients = 8;
  constexpr int kRequests = 5;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      server::HttpClient c = ts.client();
      for (int i = 0; i < kRequests; ++i) {
        try {
          const server::ClientResponse resp = c.post("/query", body);
          if (resp.status != 200 || answer_fields(resp.body) != reference) {
            mismatches.fetch_add(1);
          }
        } catch (const std::exception&) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ServerTest, BatchSharesAndIsolatesErrors) {
  const Log log = small_log();
  const QueryEngine engine(log);
  TestServer ts(small_log());
  server::HttpClient c = ts.client();

  const server::ClientResponse resp = c.post(
      "/batch",
      R"({"queries": ["a -> b", "a -> b", "((broken"], "limit": 100000})");
  ASSERT_EQ(resp.status, 200) << resp.body;
  const server::JsonValue v = server::parse_json(resp.body);
  const server::JsonArray& results = v.find("results")->as_array();
  ASSERT_EQ(results.size(), 3u);

  // Slots 0 and 1 are the same query: identical answers, both matching a
  // standalone engine run.
  const QueryResult expected = engine.run("a -> b");
  for (int q : {0, 1}) {
    EXPECT_EQ(results[q].find("total")->as_int(),
              static_cast<std::int64_t>(expected.total()));
    EXPECT_EQ(results[q].find("incidents")->dump(),
              incidents_json(expected).dump());
  }
  // Slot 2 failed to parse; isolation means it carries an error, not a 4xx
  // for the whole batch.
  ASSERT_NE(results[2].find("error"), nullptr);

  const server::JsonValue* stats = v.find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->find("queries")->as_int(), 2);
  EXPECT_GT(stats->find("distinct_slots")->as_int(), 0);
  // The duplicate query must share subplans: fewer distinct slots than
  // total pattern nodes.
  EXPECT_LT(stats->find("distinct_slots")->as_int(),
            stats->find("total_nodes")->as_int());
}

TEST(ServerTest, ErrorStatuses) {
  TestServer ts(small_log());
  server::HttpClient c = ts.client();
  EXPECT_EQ(c.post("/query", "{not json").status, 400);
  EXPECT_EQ(c.post("/query", R"({"nope": 1})").status, 400);
  EXPECT_EQ(c.post("/query", R"({"query": "((broken"})").status, 400);
  EXPECT_EQ(c.post("/batch", R"({"queries": []})").status, 400);
  EXPECT_EQ(c.get("/no-such-endpoint").status, 404);
  EXPECT_EQ(c.get("/query").status, 405);  // POST-only
  EXPECT_EQ(c.post("/healthz", "").status, 405);

  // Deliberately malformed wire bytes -> parse-level 400.
  server::HttpClient raw = ts.client();
  EXPECT_EQ(raw.raw("GARBAGE REQUEST\r\n\r\n").status, 400);
}

TEST(ServerTest, OversizedBodyGets413) {
  server::ServerOptions opts;
  opts.limits.max_body_bytes = 256;
  TestServer ts(small_log(), {}, std::move(opts));
  server::HttpClient c = ts.client();
  const std::string big(1024, 'x');
  const server::ClientResponse resp =
      c.post("/query", R"({"query": ")" + big + R"("})");
  EXPECT_EQ(resp.status, 413);
}

TEST(ServerTest, KeepAliveServesSequentialRequests) {
  TestServer ts(small_log());
  server::HttpClient c = ts.client();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(c.get("/healthz").status, 200);
    // HTTP/1.1 default keep-alive: the connection survives the response.
    EXPECT_TRUE(c.connected());
  }
}

TEST(ServerTest, TwoEphemeralServersGetDistinctPorts) {
  TestServer a(small_log());
  TestServer b(small_log());
  EXPECT_NE(a.http->port(), b.http->port());
  EXPECT_EQ(a.client().get("/healthz").status, 200);
  EXPECT_EQ(b.client().get("/healthz").status, 200);
}

TEST(ServerTest, EmptyLogStillAnswersAndValidates) {
  TestServer ts(std::nullopt);
  server::HttpClient c = ts.client();
  const server::ClientResponse ok =
      c.post("/query", R"({"query": "a -> b"})");
  ASSERT_EQ(ok.status, 200) << ok.body;
  EXPECT_EQ(server::parse_json(ok.body).find("total")->as_int(), 0);
  // Parsing still happens on the empty path: clients get their 400s.
  EXPECT_EQ(c.post("/query", R"({"query": "((broken"})").status, 400);
}

// ----- request observability ----------------------------------------------

const server::JsonValue* find_record(const server::JsonArray& records,
                                     const std::string& id) {
  for (const server::JsonValue& r : records) {
    if (r.find("id") != nullptr && r.find("id")->as_string() == id) return &r;
  }
  return nullptr;
}

TEST(ObservabilityTest, RequestIdEchoedGeneratedAndSanitized) {
  server::RequestObserver observer({});
  TestServer ts(small_log(), {}, {}, std::nullopt, &observer);
  server::HttpClient c = ts.client();
  const std::string body = R"({"query": "a -> b"})";

  const server::ClientResponse echoed = c.post(
      "/query", body, "application/json", {{"x-request-id", "abc-123"}});
  ASSERT_EQ(echoed.status, 200);
  ASSERT_NE(echoed.header("x-request-id"), nullptr);
  EXPECT_EQ(*echoed.header("x-request-id"), "abc-123");

  const server::ClientResponse generated = c.post("/query", body);
  ASSERT_NE(generated.header("x-request-id"), nullptr);
  EXPECT_EQ(generated.header("x-request-id")->substr(0, 4), "wfq-");

  // Whitespace is stripped out of a client id before it is echoed or
  // logged (no header/log-injection via the id).
  const server::ClientResponse weird = c.post(
      "/query", body, "application/json", {{"x-request-id", "a b\tc"}});
  ASSERT_NE(weird.header("x-request-id"), nullptr);
  EXPECT_EQ(*weird.header("x-request-id"), "abc");

  // The ids land in /debug/requests along with errors (a bad query is
  // still a request).
  const server::ClientResponse bad = c.post(
      "/query", "{}", "application/json", {{"x-request-id", "bad-req"}});
  EXPECT_EQ(bad.status, 400);
  const server::ClientResponse dbg = c.get("/debug/requests");
  ASSERT_EQ(dbg.status, 200);
  const server::JsonValue v = server::parse_json(dbg.body);
  const server::JsonArray& records = v.find("requests")->as_array();
  ASSERT_NE(find_record(records, "abc-123"), nullptr);
  const server::JsonValue* bad_rec = find_record(records, "bad-req");
  ASSERT_NE(bad_rec, nullptr);
  EXPECT_EQ(bad_rec->find("status")->as_int(), 400);
}

TEST(ObservabilityTest, BreakdownComponentsSumToWall) {
  server::RequestObserver observer({});
  TestServer ts(workload::procurement(400), {}, {}, std::nullopt, &observer);
  server::HttpClient c = ts.client();

  const server::ClientResponse resp = c.post(
      "/query",
      R"({"query": "CreatePO -> ReceiveGoods -> Pay", "limit": 100000})",
      "application/json", {{"x-request-id", "breakdown-probe"}});
  ASSERT_EQ(resp.status, 200) << resp.body;

  const server::ClientResponse dbg = c.get("/debug/requests");
  ASSERT_EQ(dbg.status, 200);
  const server::JsonValue v = server::parse_json(dbg.body);
  const server::JsonValue* probe =
      find_record(v.find("requests")->as_array(), "breakdown-probe");
  ASSERT_NE(probe, nullptr);
  EXPECT_EQ(probe->find("method")->as_string(), "POST");
  EXPECT_EQ(probe->find("path")->as_string(), "/query");
  EXPECT_EQ(probe->find("status")->as_int(), 200);
  EXPECT_GT(probe->find("bytes")->as_int(), 0);
  EXPECT_FALSE(probe->find("key")->as_string().empty());
  EXPECT_FALSE(probe->find("stop_reason")->as_string().empty());

  // The acceptance bar: the pipeline slices account for the request's
  // wall time to within 5% (queue wait is measured before the wall clock
  // starts, so it is not part of the sum).
  const server::JsonValue* b = probe->find("breakdown");
  ASSERT_NE(b, nullptr);
  const double wall = b->find("wall_us")->as_double();
  const double sum =
      b->find("parse_us")->as_double() + b->find("cache_us")->as_double() +
      b->find("eval_us")->as_double() + b->find("serialize_us")->as_double();
  EXPECT_GT(wall, 0.0);
  EXPECT_GT(b->find("eval_us")->as_double(), 0.0);
  EXPECT_GE(b->find("queue_us")->as_double(), 0.0);
  EXPECT_LE(sum, wall * 1.05) << "slices exceed the wall clock";
  EXPECT_GE(sum, wall * 0.95) << "untimed gap > 5%: wall=" << wall
                              << " sum=" << sum;
}

TEST(ObservabilityTest, CacheAttributionInRecords) {
  server::RequestObserver observer({});
  server::ServiceOptions svc;
  svc.cache_bytes = 1 << 20;
  TestServer ts(small_log(), std::move(svc), {}, std::nullopt, &observer);
  server::HttpClient c = ts.client();
  const std::string body = R"({"query": "a -> c"})";

  ASSERT_EQ(c.post("/query", body, "application/json",
                   {{"x-request-id", "первый"}})
                .status,
            200);  // non-ASCII id: fully stripped, so generated
  ASSERT_EQ(c.post("/query", body, "application/json",
                   {{"x-request-id", "warm"}})
                .status,
            200);
  ASSERT_EQ(c.post("/query", body, "application/json",
                   {{"x-request-id", "served"}})
                .status,
            200);

  const server::JsonValue v =
      server::parse_json(c.get("/debug/requests").body);
  const server::JsonArray& records = v.find("requests")->as_array();
  const server::JsonValue* warm = find_record(records, "warm");
  const server::JsonValue* served = find_record(records, "served");
  ASSERT_NE(warm, nullptr);
  ASSERT_NE(served, nullptr);
  EXPECT_EQ(served->find("cache")->as_string(), "hit");
  EXPECT_DOUBLE_EQ(
      served->find("breakdown")->find("eval_us")->as_double(), 0.0);
  // "warm" ran after the generated-id request primed the cache, so it is
  // a hit too; the very first request was the miss.
  EXPECT_EQ(warm->find("cache")->as_string(), "hit");
  EXPECT_EQ(find_record(records, "первый"), nullptr);  // id was stripped
}

TEST(ObservabilityTest, SlowRingCapturesPlanAndEvicts) {
  server::ObserverOptions oopts;
  oopts.slow_us = 0;  // capture every request
  oopts.slow_capacity = 2;
  server::RequestObserver observer(oopts);
  TestServer ts(small_log(), {}, {}, std::nullopt, &observer);
  server::HttpClient c = ts.client();

  for (const char* q : {"a -> b", "b -> c", "a -> c"}) {
    server::JsonValue body;
    body.set("query", q);
    ASSERT_EQ(c.post("/query", body.dump()).status, 200);
  }

  const server::ClientResponse dbg = c.get("/debug/slow");
  ASSERT_EQ(dbg.status, 200);
  const server::JsonValue v = server::parse_json(dbg.body);
  EXPECT_DOUBLE_EQ(v.find("threshold_ms")->as_double(), 0.0);
  EXPECT_GE(v.find("evicted")->as_int(), 1);
  const server::JsonArray& slow = v.find("slow")->as_array();
  ASSERT_EQ(slow.size(), 2u);  // capacity bound held
  // Oldest-first: the first query fell off the ring.
  EXPECT_EQ(slow[0].find("query")->as_string(), "b -> c");
  EXPECT_EQ(slow[1].find("query")->as_string(), "a -> c");
  for (const server::JsonValue& cap : slow) {
    EXPECT_FALSE(cap.find("plan")->as_string().empty());
    EXPECT_TRUE(cap.find("spans")->is_array());
    EXPECT_GT(cap.find("breakdown")->find("wall_us")->as_double(), 0.0);
  }
}

#if WFLOG_OBS_ENABLED
TEST(ObservabilityTest, SlowCaptureSummarizesRequestSpans) {
  // With an ambient Telemetry installed (as wfqd always does), a slow
  // capture carries the per-operator span summary of exactly its own
  // request.
  obs::Telemetry telemetry;
  obs::ScopedTelemetry installed(telemetry);
  server::ObserverOptions oopts;
  oopts.slow_us = 0;
  server::RequestObserver observer(oopts);
  TestServer ts(small_log(), {}, {}, std::nullopt, &observer);
  server::HttpClient c = ts.client();
  ASSERT_EQ(c.post("/query", R"({"query": "a -> b"})").status, 200);

  const server::JsonValue v =
      server::parse_json(c.get("/debug/slow").body);
  const server::JsonArray& slow = v.find("slow")->as_array();
  ASSERT_EQ(slow.size(), 1u);
  const server::JsonArray& spans = slow[0].find("spans")->as_array();
  ASSERT_FALSE(spans.empty());
  bool saw_eval = false;
  for (const server::JsonValue& s : spans) {
    EXPECT_GE(s.find("count")->as_int(), 1);
    EXPECT_GE(s.find("total_us")->as_double(),
              s.find("max_us")->as_double());
    if (s.find("span")->as_string() == "query.eval") saw_eval = true;
  }
  EXPECT_TRUE(saw_eval) << c.get("/debug/slow").body;
}
#endif  // WFLOG_OBS_ENABLED

TEST(ObservabilityTest, DebugEndpointsAre404WithoutObserver) {
  TestServer ts(small_log());
  server::HttpClient c = ts.client();
  EXPECT_EQ(c.get("/debug/requests").status, 404);
  EXPECT_EQ(c.get("/debug/slow").status, 404);
}

TEST(ObservabilityTest, AccessLogWritesOneJsonLinePerRequest) {
  const fs::path path =
      fs::temp_directory_path() /
      ("wflog-access-log-" + std::to_string(::getpid()) + ".jsonl");
  fs::remove(path);
  {
    server::ObserverOptions oopts;
    oopts.access_log_path = path.string();
    server::RequestObserver observer(oopts);
    ASSERT_TRUE(observer.access_log_enabled());
    TestServer ts(small_log(), {}, {}, std::nullopt, &observer);
    server::HttpClient c = ts.client();
    ASSERT_EQ(c.post("/query", R"({"query": "a -> b"})", "application/json",
                     {{"x-request-id", "logged-1"}})
                  .status,
              200);
    // record() runs on the worker thread just after the response bytes go
    // out; wait for it before reading the file.
    for (int i = 0; i < 200 && observer.requests_seen() < 1; ++i) {
      std::this_thread::sleep_for(5ms);
    }
    ASSERT_GE(observer.requests_seen(), 1u);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  const server::JsonValue entry = server::parse_json(line);
  EXPECT_EQ(entry.find("id")->as_string(), "logged-1");
  EXPECT_EQ(entry.find("path")->as_string(), "/query");
  EXPECT_EQ(entry.find("status")->as_int(), 200);
  EXPECT_FALSE(entry.find("dropped")->as_bool());
  ASSERT_NE(entry.find("breakdown"), nullptr);
  EXPECT_GT(entry.find("breakdown")->find("wall_us")->as_double(), 0.0);
  fs::remove(path);
}

TEST(ObservabilityTest, UnopenableAccessLogFailsAtStartup) {
  server::ObserverOptions oopts;
  oopts.access_log_path = "/nonexistent-dir/access.jsonl";
  EXPECT_THROW(server::RequestObserver observer(std::move(oopts)), Error);
}

#if WFLOG_OBS_ENABLED
TEST(ObservabilityTest, MetricsScrapeMatchesExpositionGrammar) {
  obs::Telemetry telemetry;  // /metrics needs the ambient registry
  obs::ScopedTelemetry installed(telemetry);
  server::RequestObserver observer({});
  TestServer ts(small_log(), {}, {}, std::nullopt, &observer);
  server::HttpClient c = ts.client();
  ASSERT_EQ(c.post("/query", R"({"query": "a -> b"})").status, 200);
  ASSERT_EQ(c.post("/query", R"({"query": "b -> c"})").status, 200);

  const server::ClientResponse scrape = c.get("/metrics");
  ASSERT_EQ(scrape.status, 200);
  // Full exposition grammar including label sets: every non-comment line
  // is `name{label="value",...} value` with escaped label values.
  const std::regex comment(R"(^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$)");
  const std::regex sample(
      R"(^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")"
      R"((,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? )"
      R"(([0-9eE.+-]+|\+Inf|NaN)$)");
  std::istringstream in(scrape.body);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(std::regex_match(line, comment)) << line;
    } else {
      EXPECT_TRUE(std::regex_match(line, sample)) << line;
    }
  }
  // The observer's labeled families made it into the scrape.
  EXPECT_NE(scrape.body.find(
                "wflog_server_endpoint_seconds_bucket{endpoint=\"/query\""),
            std::string::npos);
  EXPECT_NE(scrape.body.find("wflog_server_pattern_seconds_count"),
            std::string::npos);
}
#endif  // WFLOG_OBS_ENABLED

TEST(ObservabilityTest, StatsCarriesObservabilityBlock) {
  server::RequestObserver observer({});
  TestServer ts(small_log(), {}, {}, std::nullopt, &observer);
  server::HttpClient c = ts.client();
  ASSERT_EQ(c.post("/query", R"({"query": "a -> b"})").status, 200);
  ASSERT_EQ(c.post("/query", R"({"query": "b -> c"})").status, 200);

  const server::JsonValue stats =
      server::parse_json(c.get("/stats").body);
  const server::JsonValue* obs_block = stats.find("observability");
  ASSERT_NE(obs_block, nullptr);
  EXPECT_GE(obs_block->find("requests")->as_int(), 2);
  EXPECT_FALSE(obs_block->find("access_log")->as_bool());
  EXPECT_EQ(obs_block->find("dropped_responses")->as_int(), 0);
  ASSERT_NE(obs_block->find("endpoints")->find("/query"), nullptr);
  EXPECT_GE(
      obs_block->find("endpoints")->find("/query")->find("count")->as_int(),
      2);
}

TEST(ObservabilityTest, SlowClientReadTimeoutCountedAndRecorded) {
  server::RequestObserver observer({});
  server::ServerOptions opts;
  opts.io_timeout_ms = 100;
  TestServer ts(small_log(), {}, std::move(opts), std::nullopt, &observer);

  // A half request that never completes: the read times out, the server
  // hangs up without a response — that MUST NOT vanish silently.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ts.http->port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string partial =
      "POST /query HTTP/1.1\r\ncontent-length: 64\r\n\r\n{\"que";
  ASSERT_EQ(::send(fd, partial.data(), partial.size(), 0),
            static_cast<ssize_t>(partial.size()));

  for (int i = 0; i < 400 && observer.requests_seen() < 1; ++i) {
    std::this_thread::sleep_for(5ms);
  }
  ::close(fd);
  ASSERT_GE(observer.requests_seen(), 1u);

  server::HttpClient c = ts.client();
  const server::JsonValue stats = server::parse_json(c.get("/stats").body);
  EXPECT_GE(stats.find("server")->find("dropped_responses")->as_int(), 1);
  EXPECT_GE(
      stats.find("observability")->find("dropped_responses")->as_int(), 1);

  const server::JsonValue v =
      server::parse_json(c.get("/debug/requests").body);
  bool found = false;
  for (const server::JsonValue& r : v.find("requests")->as_array()) {
    if (r.find("status")->as_int() != 408) continue;
    found = true;
    EXPECT_TRUE(r.find("dropped")->as_bool());
    EXPECT_FALSE(r.find("id")->as_string().empty());
  }
  EXPECT_TRUE(found) << "no 408 dropped-response record";
}

TEST(ObservabilityTest, DebugEndpointsUnderEightConcurrentClients) {
  server::ObserverOptions oopts;
  oopts.slow_us = 0;
  oopts.requests_capacity = 64;
  oopts.slow_capacity = 16;
  server::RequestObserver observer(oopts);
  TestServer ts(small_log(), {}, {}, std::nullopt, &observer);

  constexpr int kClients = 8;
  constexpr int kRounds = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&ts, &failures] {
      try {
        server::HttpClient c = ts.client();
        for (int i = 0; i < kRounds; ++i) {
          if (c.post("/query", R"({"query": "a -> b"})").status != 200 ||
              c.get("/debug/requests").status != 200 ||
              c.get("/debug/slow").status != 200 ||
              c.get("/stats").status != 200) {
            failures.fetch_add(1);
            continue;
          }
          // Every /debug payload must be valid JSON mid-churn.
          server::parse_json(c.get("/debug/requests").body);
          server::parse_json(c.get("/debug/slow").body);
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(observer.requests_seen(),
            static_cast<std::uint64_t>(kClients * kRounds));
}

TEST(ObservabilityTest, HealthzJsonReadinessDetail) {
  TestServer ts(small_log());
  server::HttpClient c = ts.client();

  // The plain fast path is untouched.
  EXPECT_EQ(c.get("/healthz").body, "ok\n");

  const server::ClientResponse resp =
      c.get("/healthz", {{"accept", "application/json"}});
  ASSERT_EQ(resp.status, 200);
  const server::JsonValue v = server::parse_json(resp.body);
  EXPECT_EQ(v.find("status")->as_string(), "ok");
  EXPECT_TRUE(v.find("ready")->as_bool());
  EXPECT_FALSE(v.find("draining")->as_bool());
  EXPECT_GE(v.find("snapshot_version")->as_int(), 1);
  EXPECT_EQ(v.find("records")->as_int(), 15);
  EXPECT_TRUE(v.find("ingest_enabled")->as_bool());
  ASSERT_NE(v.find("queue_depth"), nullptr);
}

TEST(ObservabilityTest, VersionReportsBuildInfo) {
  TestServer ts(small_log());
  server::HttpClient c = ts.client();
  const server::ClientResponse resp = c.get("/version");
  ASSERT_EQ(resp.status, 200);
  const server::JsonValue v = server::parse_json(resp.body);
  EXPECT_EQ(v.find("server")->as_string(), "wfqd");
  EXPECT_FALSE(v.find("version")->as_string().empty());
  ASSERT_NE(v.find("obs_enabled"), nullptr);
#if WFLOG_OBS_ENABLED
  EXPECT_TRUE(v.find("obs_enabled")->as_bool());
#else
  EXPECT_FALSE(v.find("obs_enabled")->as_bool());
#endif
  EXPECT_FALSE(v.find("compiler")->as_string().empty());
  EXPECT_GE(v.find("cxx_standard")->as_int(), 202002);
}

// ----- overload + drain ---------------------------------------------------

/// A transport-only server (no engine) whose one route blocks until
/// released — the deterministic way to saturate a 1-worker/1-slot queue.
struct SlowServer {
  std::atomic<bool> release{false};
  std::unique_ptr<server::HttpServer> http;

  SlowServer() {
    server::Router router;
    router.add("GET", "/slow",
               [this](const server::HttpRequest&, server::RequestContext&) {
                 while (!release.load()) std::this_thread::sleep_for(1ms);
                 return server::HttpResponse::text(200, "done");
               });
    server::ServerOptions opts;
    opts.port = 0;
    opts.threads = 1;
    opts.queue_capacity = 1;
    http = std::make_unique<server::HttpServer>(std::move(router),
                                                std::move(opts));
    http->start();
  }

  ~SlowServer() {
    release.store(true);
    http->shutdown();
  }
};

TEST(ServerTest, OverloadSheds503WithRetryAfter) {
  SlowServer ss;
  const std::uint16_t port = ss.http->port();

  // First request occupies the single worker...
  std::thread first([&] {
    server::HttpClient c("127.0.0.1", port);
    EXPECT_EQ(c.get("/slow").status, 200);
  });
  std::this_thread::sleep_for(200ms);  // worker popped it, queue now empty
  // ...second sits in the queue's one slot...
  std::thread second([&] {
    server::HttpClient c("127.0.0.1", port);
    EXPECT_EQ(c.get("/slow").status, 200);
  });
  std::this_thread::sleep_for(200ms);
  // ...so the third is shed at the door.
  server::HttpClient c("127.0.0.1", port);
  const server::ClientResponse rejected = c.get("/slow");
  EXPECT_EQ(rejected.status, 503);
  const std::string* retry = rejected.header("retry-after");
  ASSERT_NE(retry, nullptr);
  EXPECT_EQ(*retry, "1");

  ss.release.store(true);
  first.join();
  second.join();

  const server::ServerStats stats = ss.http->stats();
  EXPECT_GE(stats.rejected, 1u);
  EXPECT_GE(stats.served, 2u);  // the two releases' 200s
}

TEST(ServerTest, GracefulDrainCancelsInFlightEvaluation) {
  // A query with Θ(m³) incidents takes far longer than the 100ms drain
  // budget, so shutdown must (a) let the request finish with a flagged
  // partial result, not kill the connection, and (b) refuse new ones.
  std::string spec;
  for (int i = 0; i < 600; ++i) spec += "a ";
  server::ServerOptions opts;
  opts.drain_timeout_ms = 100;
  TestServer ts(testing::make_log(spec), {}, std::move(opts));
  const std::uint16_t port = ts.http->port();

  std::string body;
  int status = 0;
  std::thread slow([&] {
    server::HttpClient c("127.0.0.1", port);
    const server::ClientResponse resp = c.post(
        "/query", R"({"query": "a -> a -> a", "limit": 0})");
    status = resp.status;
    body = resp.body;
  });
  std::this_thread::sleep_for(300ms);  // the evaluation is now running
  ts.http->request_shutdown();
  slow.join();

  ASSERT_EQ(status, 200) << body;
  const server::JsonValue v = server::parse_json(body);
  // Either the drain cancel tripped mid-evaluation (the expected path on
  // any real machine — 600³/6 ≈ 36M incidents) or the box somehow
  // finished first; both are contract-clean, silence or a 5xx is not.
  if (!v.find("complete")->as_bool()) {
    EXPECT_EQ(v.find("stop_reason")->as_string(), "cancelled");
  }

  ts.http->wait();
  EXPECT_THROW(server::HttpClient("127.0.0.1", port).get("/healthz"),
               IoError);
}

// ----- ingest -------------------------------------------------------------

std::string ingest_events() {
  return R"({"events": [
    {"op": "begin"},
    {"op": "record", "wid": 1, "activity": "a",
     "out": {"k": 7, "tag": "hello"}},
    {"op": "record", "wid": 1, "activity": "b", "in": {"k": 7}},
    {"op": "end", "wid": 1}
  ]})";
}

TEST(ServerTest, IngestThenQuerySeesNewRecords) {
  TestServer ts(std::nullopt);
  server::HttpClient c = ts.client();

  const server::ClientResponse resp = c.post("/ingest", ingest_events());
  ASSERT_EQ(resp.status, 200) << resp.body;
  const server::JsonValue v = server::parse_json(resp.body);
  EXPECT_EQ(v.find("applied")->as_int(), 4);
  ASSERT_EQ(v.find("wids")->as_array().size(), 1u);
  EXPECT_EQ(v.find("wids")->as_array()[0].as_int(), 1);
  EXPECT_TRUE(v.find("bad_events")->as_array().empty());

  // The fresh snapshot serves the ingested instance, where clause and all.
  const server::ClientResponse q = c.post(
      "/query",
      R"({"query": "x:a -> y:b where x.out.k = y.in.k"})");
  ASSERT_EQ(q.status, 200) << q.body;
  EXPECT_EQ(server::parse_json(q.body).find("total")->as_int(), 1);
}

TEST(ServerTest, IngestBadEventAbortsUnderReject) {
  TestServer ts(std::nullopt);
  server::HttpClient c = ts.client();
  // Second event targets a wid that was never begun: kReject turns it
  // into a 400 aborting the request; the first event stays applied.
  const server::ClientResponse resp = c.post("/ingest", R"({"events": [
    {"op": "begin"},
    {"op": "record", "wid": 99, "activity": "a"}
  ]})");
  ASSERT_EQ(resp.status, 400) << resp.body;
  const server::JsonValue v = server::parse_json(resp.body);
  EXPECT_EQ(v.find("applied")->as_int(), 1);
  ASSERT_NE(v.find("error"), nullptr);

  const server::ClientResponse stats = c.get("/stats");
  EXPECT_EQ(server::parse_json(stats.body).find("records")->as_int(), 1);
}

TEST(ServerTest, IngestIsDurableAcrossStoreReopen) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("wflog-server-store-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  {
    TestServer ts(std::nullopt, {}, {}, LogStore::create(dir));
    server::HttpClient c = ts.client();
    const server::ClientResponse resp = c.post("/ingest", ingest_events());
    ASSERT_EQ(resp.status, 200) << resp.body;
    const server::ClientResponse stats = c.get("/stats");
    const server::JsonValue v = server::parse_json(stats.body);
    ASSERT_NE(v.find("store"), nullptr);
    EXPECT_EQ(v.find("store")->find("records")->as_int(), 4);
  }
  // The server is gone; the events are not. Reopen and check content.
  LogStore store = LogStore::open(dir);
  EXPECT_EQ(store.num_records(), 4u);
  const Log log = store.load();
  const QueryEngine engine(log);
  EXPECT_EQ(engine.run("x:a -> y:b where x.out.k = y.in.k").total(), 1u);
  fs::remove_all(dir);
}

TEST(ServerTest, StatsCarriesStorageBlockForStoreBackedServer) {
  const fs::path dir =
      fs::temp_directory_path() /
      ("wflog-server-storage-stats-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  {
    TestServer ts(std::nullopt, {}, {}, LogStore::create(dir));
    server::HttpClient c = ts.client();
    ASSERT_EQ(c.post("/ingest", ingest_events()).status, 200);

    const server::JsonValue v =
        server::parse_json(c.get("/stats").body);
    ASSERT_NE(v.find("store"), nullptr);
    const server::JsonValue* storage = v.find("store")->find("storage");
    ASSERT_NE(storage, nullptr);
    // A fresh store writes v2 segments; nothing is sealed until a roll.
    EXPECT_EQ(storage->find("segments_v1")->as_int(), 0);
    EXPECT_GE(storage->find("segments_v2")->as_int(), 1);
    ASSERT_NE(storage->find("sealed_blocks"), nullptr);
    ASSERT_NE(storage->find("compressed_payload_bytes"), nullptr);
    ASSERT_NE(storage->find("uncompressed_payload_bytes"), nullptr);
    ASSERT_NE(storage->find("blocks_read"), nullptr);
    ASSERT_NE(storage->find("blocks_skipped"), nullptr);
  }
  fs::remove_all(dir);
}

#if WFLOG_OBS_ENABLED
TEST(ServerTest, StoreBlockMetricsExposedInPrometheusScrape) {
  obs::Telemetry telemetry;
  obs::ScopedTelemetry installed(telemetry);
  const fs::path dir =
      fs::temp_directory_path() /
      ("wflog-server-storage-metrics-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  {
    TestServer ts(std::nullopt, {}, {}, LogStore::create(dir));
    server::HttpClient c = ts.client();
    ASSERT_EQ(c.post("/ingest", ingest_events()).status, 200);

    const server::ClientResponse scrape = c.get("/metrics");
    ASSERT_EQ(scrape.status, 200);
    // Every new storage family is present and its sample lines match the
    // exposition grammar (same shape the generic grammar test enforces).
    const std::regex sample(
        R"(^wflog_store_[a-z_]+ ([0-9eE.+-]+|\+Inf|NaN)$)");
    for (const char* family :
         {"wflog_store_blocks_written_total", "wflog_store_blocks_read_total",
          "wflog_store_blocks_skipped_total",
          "wflog_store_compressed_bytes_total",
          "wflog_store_uncompressed_bytes_total",
          "wflog_store_footer_recoveries_total",
          "wflog_store_sealed_reopen_skips_total"}) {
      SCOPED_TRACE(family);
      const std::string prefix = std::string(family) + " ";
      bool found = false;
      std::istringstream in(scrape.body);
      std::string line;
      while (std::getline(in, line)) {
        if (line.rfind(prefix, 0) != 0) continue;
        EXPECT_TRUE(std::regex_match(line, sample)) << line;
        found = true;
      }
      EXPECT_TRUE(found) << "family missing from scrape";
    }
    // The ingest above flushed at least one block (per-append fsync), so
    // the counters moved — the families are wired, not just registered.
    EXPECT_GT(telemetry.store_blocks_written_total->value(), 0u);
    EXPECT_GT(telemetry.store_compressed_bytes_total->value(), 0u);
  }
  fs::remove_all(dir);
}
#endif  // WFLOG_OBS_ENABLED

// ----- JSON codec: RFC 8259 edge cases ------------------------------------

TEST(JsonCodecTest, ControlCharactersRoundTrip) {
  // Every U+0000–U+001F must be escaped by the emitter and come back
  // byte-identical through the parser.
  std::string all;
  for (int c = 0; c < 0x20; ++c) all.push_back(static_cast<char>(c));
  server::JsonValue v;
  v.set("s", all);
  const std::string dumped = v.dump();
  for (int c = 0; c < 0x20; ++c) {
    EXPECT_EQ(dumped.find(static_cast<char>(c)), std::string::npos)
        << "raw control byte " << c << " leaked into the document";
  }
  EXPECT_EQ(server::parse_json(dumped).find("s")->as_string(), all);
}

TEST(JsonCodecTest, ParserRejectsLoneSurrogateEscapes) {
  EXPECT_THROW(server::parse_json(R"({"s": "\ud800"})"), ParseError);
  EXPECT_THROW(server::parse_json(R"({"s": "\udc00"})"), ParseError);
  EXPECT_THROW(server::parse_json(R"({"s": "\ud800x"})"), ParseError);
  EXPECT_THROW(server::parse_json(R"({"s": "\ud800\ud800"})"), ParseError);
  // A proper pair is fine (U+1F600).
  EXPECT_EQ(server::parse_json(R"({"s": "😀"})").find("s")
                ->as_string(),
            "\xF0\x9F\x98\x80");
}

TEST(JsonCodecTest, ParserRejectsInvalidUtf8) {
  const std::string cases[] = {
      "\xC3(",           // bad continuation
      "\xC0\xAF",        // overlong '/'
      "\xE0\x80\x80",    // overlong NUL
      "\xED\xA0\x80",    // surrogate half encoded as UTF-8
      "\xF4\x90\x80\x80",  // past U+10FFFF
      "\xF8\x88\x80\x80\x80",  // 5-byte lead
      "\x80",            // stray continuation
      "\xE2\x82",        // truncated sequence
  };
  for (const std::string& bad : cases) {
    const std::string doc = "{\"s\": \"" + bad + "\"}";
    EXPECT_THROW(server::parse_json(doc), ParseError)
        << "accepted invalid UTF-8: " << ::testing::PrintToString(bad);
  }
  // Well-formed multi-byte text passes untouched.
  const std::string ok = "{\"s\": \"héllo \xE2\x82\xAC \xF0\x9F\x98\x80\"}";
  EXPECT_EQ(server::parse_json(ok).find("s")->as_string(),
            "héllo \xE2\x82\xAC \xF0\x9F\x98\x80");
}

TEST(JsonCodecTest, EmitterReplacesInvalidUtf8) {
  // Strings can enter JsonValue without going through the parser (CSV
  // logs, stores); the emitter must still produce valid JSON.
  server::JsonValue v;
  v.set("s", std::string("a\xC3(b\xFF"));
  const std::string dumped = v.dump();
  const server::JsonValue back = server::parse_json(dumped);  // must parse
  EXPECT_EQ(back.find("s")->as_string(), "a\xEF\xBF\xBD(b\xEF\xBF\xBD");
}

TEST(JsonCodecTest, DifferentialRoundTripFuzz) {
  // Deterministic byte-string fuzz: every dump() must be parseable, and
  // valid-UTF-8 inputs must round-trip exactly.
  std::uint64_t rng = 0x243F6A8885A308D3ULL;
  const auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  const auto valid_utf8 = [](const std::string& s) {
    for (std::size_t i = 0; i < s.size();) {
      const unsigned char b = static_cast<unsigned char>(s[i]);
      std::size_t len = 0;
      std::uint32_t cp = 0;
      if (b < 0x80) { len = 1; cp = b; }
      else if ((b & 0xE0) == 0xC0) { len = 2; cp = b & 0x1F; }
      else if ((b & 0xF0) == 0xE0) { len = 3; cp = b & 0x0F; }
      else if ((b & 0xF8) == 0xF0) { len = 4; cp = b & 0x07; }
      else return false;
      if (i + len > s.size()) return false;
      for (std::size_t k = 1; k < len; ++k) {
        const unsigned char c = static_cast<unsigned char>(s[i + k]);
        if ((c & 0xC0) != 0x80) return false;
        cp = (cp << 6) | (c & 0x3F);
      }
      static constexpr std::uint32_t kMin[5] = {0, 0, 0x80, 0x800, 0x10000};
      if (cp < kMin[len] || (cp >= 0xD800 && cp <= 0xDFFF) || cp > 0x10FFFF) {
        return false;
      }
      i += len;
    }
    return true;
  };
  std::size_t exact = 0;
  for (int iter = 0; iter < 500; ++iter) {
    std::string s;
    const std::size_t len = next() % 24;
    for (std::size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(next() % 256));
    }
    server::JsonValue v;
    v.set("s", s);
    const std::string dumped = v.dump();
    server::JsonValue back;
    ASSERT_NO_THROW(back = server::parse_json(dumped))
        << "unparseable emitter output for "
        << ::testing::PrintToString(s);
    if (valid_utf8(s)) {
      EXPECT_EQ(back.find("s")->as_string(), s);
      ++exact;
    } else {
      // Replacement happened; the result must itself be valid UTF-8 and
      // re-dump stably.
      EXPECT_EQ(server::parse_json(back.dump()).find("s")->as_string(),
                back.find("s")->as_string());
    }
  }
  EXPECT_GT(exact, 0u);  // the generator does produce valid strings too
}

// ----- HttpClient keep-alive retry safety ---------------------------------

/// A scripted one-shot HTTP listener: answers the first request on the
/// first connection, reads the second FULLY and then drops the connection
/// without responding (the "server applied it and died" shape), and
/// answers anything arriving on later connections. Records every request
/// it ever framed so tests can assert exactly-once delivery.
struct DroppingServer {
  int listen_fd = -1;
  std::uint16_t port = 0;
  std::thread thread;
  std::mutex mu;
  std::vector<std::string> requests;  // "METHOD target body"

  DroppingServer() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_OK(listen_fd >= 0);
    ::sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ASSERT_OK(::bind(listen_fd, reinterpret_cast<::sockaddr*>(&addr),
                     sizeof(addr)) == 0);
    ASSERT_OK(::listen(listen_fd, 8) == 0);
    ::socklen_t len = sizeof(addr);
    ASSERT_OK(::getsockname(listen_fd, reinterpret_cast<::sockaddr*>(&addr),
                            &len) == 0);
    port = ntohs(addr.sin_port);
    thread = std::thread([this] { run(); });
  }

  ~DroppingServer() {
    if (thread.joinable()) thread.join();
    if (listen_fd >= 0) ::close(listen_fd);
  }

  static void ASSERT_OK(bool ok) { ASSERT_TRUE(ok) << std::strerror(errno); }

  std::size_t seen() {
    std::lock_guard lock(mu);
    return requests.size();
  }

 private:
  /// Frames one request off `fd` with the real parser. False on EOF.
  bool read_one(int fd, std::string& buf) {
    server::HttpRequest req;
    std::string err;
    while (true) {
      const server::ParseState st =
          server::parse_request(buf, req, {}, err);
      if (st == server::ParseState::kDone) {
        std::lock_guard lock(mu);
        requests.push_back(req.method + " " + req.target + " " + req.body);
        return true;
      }
      if (st != server::ParseState::kNeedMore) return false;
      if (server::poll_readable(fd, 2000) <= 0) return false;
      if (server::recv_some(fd, buf) <= 0) return false;
    }
  }

  void respond(int fd) {
    server::send_all(fd,
                     "HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\nok");
  }

  void run() {
    // Connection 1: answer one request, read the next, drop it on the
    // floor with a hard close.
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) return;
    std::string buf;
    if (read_one(fd, buf)) respond(fd);
    read_one(fd, buf);
    ::close(fd);
    // A retry (if the client makes one) arrives on a new connection.
    // Give it a bounded window so the no-retry case ends promptly.
    while (server::poll_readable(listen_fd, 500) == 1) {
      fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;
      std::string buf2;
      while (read_one(fd, buf2)) respond(fd);
      ::close(fd);
    }
  }
};

TEST(ClientRetryTest, DroppedPostIsNotReplayed) {
  // Regression: the client used to treat "EOF, nothing buffered" on a
  // reused connection as proof the server never saw the request and
  // silently replayed it — double-submitting a fully-sent POST /ingest
  // the server applied before dying.
  DroppingServer srv;
  server::HttpClient c("127.0.0.1", srv.port);
  ASSERT_EQ(c.post("/ingest", R"({"events": []})").status, 200);
  EXPECT_THROW(c.post("/ingest", R"({"events": [{"op": "begin"}]})"),
               IoError);
  srv.thread.join();
  // The begin event reached the wire exactly once — never double-ingested.
  std::size_t begins = 0;
  {
    std::lock_guard lock(srv.mu);
    for (const std::string& r : srv.requests) {
      if (r.find("begin") != std::string::npos) ++begins;
    }
  }
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(srv.seen(), 2u);
}

TEST(ClientRetryTest, DroppedGetIsRetriedTransparently) {
  // Idempotent requests keep the convenient behavior: the keep-alive race
  // is absorbed by one transparent retry on a fresh connection.
  DroppingServer srv;
  server::HttpClient c("127.0.0.1", srv.port);
  ASSERT_EQ(c.get("/healthz").status, 200);
  const server::ClientResponse second = c.get("/healthz");
  EXPECT_EQ(second.status, 200);
  srv.thread.join();
  EXPECT_EQ(srv.seen(), 3u);  // initial + dropped + successful retry
}

// ----- client backoff schedule --------------------------------------------

TEST(BackoffScheduleTest, BoundedJitteredAndDeterministic) {
  server::ClientBackoff opts;
  opts.max_retries = 4;
  opts.initial = std::chrono::milliseconds(50);
  opts.cap = std::chrono::milliseconds(300);
  opts.budget = std::chrono::milliseconds(100000);  // not the binding cap

  const auto walk = [&] {
    server::BackoffSchedule s(opts);
    std::vector<std::chrono::milliseconds> delays;
    while (const auto d = s.next()) delays.push_back(*d);
    return delays;
  };
  const auto delays = walk();
  ASSERT_EQ(delays.size(), 4u);  // attempts capped
  // Attempt k's delay is jittered into [base/2, base],
  // base = min(cap, 50 * 2^(k-1)): 50, 100, 200, 300.
  const long long bases[] = {50, 100, 200, 300};
  for (std::size_t k = 0; k < delays.size(); ++k) {
    EXPECT_GE(delays[k].count(), bases[k] / 2) << "attempt " << k + 1;
    EXPECT_LE(delays[k].count(), bases[k]) << "attempt " << k + 1;
  }
  // Same seed, same schedule — tests can predict the exact delays.
  EXPECT_EQ(walk(), delays);
  // A different seed moves the jitter (with overwhelming probability).
  opts.jitter_seed = 12345;
  EXPECT_NE(walk(), delays);
}

TEST(BackoffScheduleTest, BudgetCapsTotalSleep) {
  server::ClientBackoff opts;
  opts.max_retries = 100;
  opts.initial = std::chrono::milliseconds(64);
  opts.cap = std::chrono::milliseconds(1024);
  opts.budget = std::chrono::milliseconds(200);

  server::BackoffSchedule s(opts);
  std::chrono::milliseconds total{0};
  while (const auto d = s.next()) total += *d;
  EXPECT_LE(total.count(), 200);          // never sleeps past the budget
  EXPECT_EQ(total, s.total_slept());
  EXPECT_LT(s.attempts_made(), 100);      // the budget ended it, not the cap
}

TEST(ClientBackoffTest, ConnectFailuresRetryThenSurface) {
  // Nothing listens on this port: grab an ephemeral port and release it.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(probe, reinterpret_cast<::sockaddr*>(&addr), sizeof(addr)),
            0);
  ::socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(probe, reinterpret_cast<::sockaddr*>(&addr), &len),
            0);
  const std::uint16_t dead_port = ntohs(addr.sin_port);
  ::close(probe);

  // Injected sleep: the schedule is exercised without real wall time.
  std::vector<std::chrono::milliseconds> slept;
  server::ClientOptions copts;
  copts.backoff.max_retries = 3;
  copts.backoff.initial = std::chrono::milliseconds(10);
  copts.sleep_fn = [&slept](std::chrono::milliseconds d) {
    slept.push_back(d);
  };
  server::HttpClient c("127.0.0.1", dead_port, copts);
  EXPECT_THROW(c.get("/healthz"), IoError);
  // 1 initial attempt + 3 retries, with a backoff sleep before each retry.
  ASSERT_EQ(slept.size(), 3u);
  for (const auto d : slept) EXPECT_GE(d.count(), 5);
}

TEST(ClientBackoffTest, ZeroRetriesRestoresFailFast) {
  server::ClientOptions copts;
  copts.backoff.max_retries = 0;
  std::size_t sleeps = 0;
  copts.sleep_fn = [&sleeps](std::chrono::milliseconds) { ++sleeps; };
  server::HttpClient c("127.0.0.1", 1, copts);  // port 1: nothing listens
  EXPECT_THROW(c.get("/healthz"), IoError);
  EXPECT_EQ(sleeps, 0u);
}

// ----- reserved liveness lane ---------------------------------------------

TEST(ServerTest, HealthzServedThroughReservedLaneUnderSaturation) {
  // A 1-worker/1-slot server whose only worker is wedged: normal traffic
  // is shed 503, but /healthz must keep answering through the reserved
  // lane so probes and scrapes see a saturated server, not a dead one.
  std::atomic<bool> release{false};
  server::Router router;
  router.add("GET", "/slow",
             [&release](const server::HttpRequest&, server::RequestContext&) {
               while (!release.load()) std::this_thread::sleep_for(1ms);
               return server::HttpResponse::text(200, "done");
             });
  router.add("GET", "/healthz",
             [](const server::HttpRequest&, server::RequestContext&) {
               return server::HttpResponse::text(200, "ok\n");
             });
  server::ServerOptions opts;
  opts.port = 0;
  opts.threads = 1;
  opts.queue_capacity = 1;
  opts.lane_capacity = 4;
  server::HttpServer http(std::move(router), std::move(opts));
  http.start();
  const std::uint16_t port = http.port();

  std::thread first([&] {
    server::HttpClient c("127.0.0.1", port);
    EXPECT_EQ(c.get("/slow").status, 200);
  });
  std::this_thread::sleep_for(200ms);  // worker busy, queue empty
  std::thread second([&] {
    server::HttpClient c("127.0.0.1", port);
    EXPECT_EQ(c.get("/slow").status, 200);
  });
  std::this_thread::sleep_for(200ms);  // queue full

  // Liveness keeps answering while the pool is saturated...
  for (int i = 0; i < 3; ++i) {
    server::HttpClient probe("127.0.0.1", port);
    const server::ClientResponse health = probe.get("/healthz");
    EXPECT_EQ(health.status, 200) << health.body;
    EXPECT_EQ(health.body, "ok\n");
  }
  // ...but the lane is liveness-only: everything else is still shed.
  server::HttpClient c("127.0.0.1", port);
  const server::ClientResponse shed = c.get("/slow");
  EXPECT_EQ(shed.status, 503);
  ASSERT_NE(shed.header("retry-after"), nullptr);

  release.store(true);
  first.join();
  second.join();
  const server::ServerStats stats = http.stats();
  EXPECT_GE(stats.lane_served, 3u);
  EXPECT_GE(stats.rejected, 1u);
  http.shutdown();
}

TEST(ServerTest, LaneDisabledFallsBackToPlain503) {
  std::atomic<bool> release{false};
  server::Router router;
  router.add("GET", "/slow",
             [&release](const server::HttpRequest&, server::RequestContext&) {
               while (!release.load()) std::this_thread::sleep_for(1ms);
               return server::HttpResponse::text(200, "done");
             });
  router.add("GET", "/healthz",
             [](const server::HttpRequest&, server::RequestContext&) {
               return server::HttpResponse::text(200, "ok\n");
             });
  server::ServerOptions opts;
  opts.port = 0;
  opts.threads = 1;
  opts.queue_capacity = 1;
  opts.lane_capacity = 0;  // pre-lane behavior
  server::HttpServer http(std::move(router), std::move(opts));
  http.start();
  const std::uint16_t port = http.port();

  std::thread first([&] {
    server::HttpClient c("127.0.0.1", port);
    EXPECT_EQ(c.get("/slow").status, 200);
  });
  std::this_thread::sleep_for(200ms);
  std::thread second([&] {
    server::HttpClient c("127.0.0.1", port);
    EXPECT_EQ(c.get("/slow").status, 200);
  });
  std::this_thread::sleep_for(200ms);

  server::HttpClient probe("127.0.0.1", port);
  EXPECT_EQ(probe.get("/healthz").status, 503);  // no lane, shed like anyone

  release.store(true);
  first.join();
  second.join();
  EXPECT_EQ(http.stats().lane_served, 0u);
  http.shutdown();
}

// ----- sharded evaluation over the server ---------------------------------

server::ServiceOptions sharded_svc(std::size_t shards) {
  server::ServiceOptions svc;
  svc.engine.shards = shards;
  return svc;
}

/// The answer fields of a /query response — everything except "timings",
/// which is per-request wall clock and legitimately varies.
std::string answer_fields(const std::string& response_body) {
  const server::JsonValue v = server::parse_json(response_body);
  const server::JsonValue* reason = v.find("stop_reason");
  return v.find("incidents")->dump() + "|" +
         std::to_string(v.find("total")->as_int()) + "|" +
         (v.find("complete")->as_bool() ? "1" : "0") + "|" +
         (reason != nullptr ? reason->as_string() : "");
}

TEST(ShardedServerTest, EightConcurrentClientsMatchUnshardedByteIdentical) {
  // Two servers over the same log, --shards 4 vs --shards 1: every field
  // of every answer must be byte-identical, including under 8 concurrent
  // clients hammering the sharded one (the engine's shard pool is shared
  // by all request workers).
  // Log is move-only; the deterministic generator is the copy constructor.
  TestServer serial(workload::clinic(40, 11), sharded_svc(1));
  TestServer sharded(workload::clinic(40, 11), sharded_svc(4));

  const std::string queries[] = {
      R"({"query": "GetRefer -> SeeDoctor", "limit": 100000})",
      R"({"query": "g:GetRefer -> s:SeeDoctor where g.out.hospital = s.in.hospital", "limit": 100000})",
      R"({"query": "!UpdateRefer . GetReimburse", "limit": 100000})",
  };
  std::vector<std::string> reference;
  for (const std::string& q : queries) {
    server::HttpClient a = serial.client();
    server::HttpClient b = sharded.client();
    const server::ClientResponse ra = a.post("/query", q);
    const server::ClientResponse rb = b.post("/query", q);
    ASSERT_EQ(ra.status, 200) << ra.body;
    ASSERT_EQ(rb.status, 200) << rb.body;
    EXPECT_EQ(answer_fields(rb.body), answer_fields(ra.body)) << q;
    reference.push_back(answer_fields(ra.body));
  }

  constexpr int kClients = 8;
  constexpr int kRequests = 6;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      server::HttpClient c = sharded.client();
      for (int i = 0; i < kRequests; ++i) {
        const std::size_t q = (t + i) % std::size(queries);
        try {
          const server::ClientResponse resp = c.post("/query", queries[q]);
          if (resp.status != 200 ||
              answer_fields(resp.body) != reference[q]) {
            mismatches.fetch_add(1);
          }
        } catch (const std::exception&) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ShardedServerTest, CacheHitMissPatternUnchangedAcrossShardCounts) {
  // The result cache keys on (pattern, where, snapshot version) — never on
  // the shard count — so the miss-then-hit sequence and the served bytes
  // must be identical for --shards 1 and --shards 4.
  const std::string body = R"({"query": "GetRefer -> SeeDoctor"})";
  std::vector<std::string> answers;
  for (const std::size_t shards : {1, 4}) {
    server::ServiceOptions svc = sharded_svc(shards);
    svc.cache_bytes = 1 << 20;
    TestServer ts(workload::clinic(25, 3), std::move(svc));
    server::HttpClient c = ts.client();

    const server::ClientResponse first = c.post("/query", body);
    ASSERT_EQ(first.status, 200) << first.body;
    ASSERT_NE(first.header("x-wfq-cache"), nullptr);
    EXPECT_EQ(*first.header("x-wfq-cache"), "miss") << "shards=" << shards;

    const server::ClientResponse second = c.post("/query", body);
    ASSERT_EQ(second.status, 200);
    ASSERT_NE(second.header("x-wfq-cache"), nullptr);
    EXPECT_EQ(*second.header("x-wfq-cache"), "hit") << "shards=" << shards;

    EXPECT_EQ(answer_fields(second.body), answer_fields(first.body));
    answers.push_back(answer_fields(first.body));
  }
  EXPECT_EQ(answers[0], answers[1])
      << "cached answers differ between shard counts";
}

TEST(ShardedServerTest, StatsReportShardConfiguration) {
  TestServer ts(workload::clinic(10, 1), sharded_svc(4));
  server::HttpClient c = ts.client();
  const server::ClientResponse resp = c.get("/stats");
  ASSERT_EQ(resp.status, 200);
  const server::JsonValue v = server::parse_json(resp.body);
  const server::JsonValue* sh = v.find("shards");
  ASSERT_NE(sh, nullptr);
  EXPECT_EQ(sh->find("configured")->as_int(), 4);
  EXPECT_EQ(sh->find("effective")->as_int(), 4);
  EXPECT_EQ(sh->find("pool_workers")->as_int(), 3);
}

TEST(ShardedServerTest, GracefulDrainCancelsShardedEvaluation) {
  // The drain regression under sharded load: the drain token must reach
  // the shared EvalGuard of an in-flight SHARDED evaluation, stopping
  // every shard task — not just the request thread — within the grace
  // period, then the server must come down cleanly (a leaked shard task
  // would wedge http->wait() or crash the pool teardown).
  std::string spec;
  for (int inst = 0; inst < 4; ++inst) {
    for (int i = 0; i < 300; ++i) spec += "a ";
    spec += ";";
  }
  server::ServerOptions opts;
  opts.drain_timeout_ms = 100;
  TestServer ts(testing::make_log(spec), sharded_svc(4), std::move(opts));
  const std::uint16_t port = ts.http->port();

  std::string body;
  int status = 0;
  std::thread slow([&] {
    server::HttpClient c("127.0.0.1", port);
    const server::ClientResponse resp = c.post(
        "/query", R"({"query": "a -> a -> a", "limit": 0})");
    status = resp.status;
    body = resp.body;
  });
  std::this_thread::sleep_for(300ms);  // the shard tasks are now running
  ts.http->request_shutdown();
  slow.join();

  ASSERT_EQ(status, 200) << body;
  const server::JsonValue v = server::parse_json(body);
  if (!v.find("complete")->as_bool()) {
    EXPECT_EQ(v.find("stop_reason")->as_string(), "cancelled");
  }
  ts.http->wait();
  EXPECT_THROW(server::HttpClient("127.0.0.1", port).get("/healthz"),
               IoError);
}

TEST(ServerTest, MetricsEndpointServesPrometheusText) {
  obs::Telemetry telemetry;
  obs::ScopedTelemetry installed(telemetry);
  if (obs::telemetry() == nullptr) GTEST_SKIP() << "built with WFLOG_OBS=OFF";

  TestServer ts(small_log());
  server::HttpClient c = ts.client();
  ASSERT_EQ(c.post("/query", R"({"query": "a -> b"})").status, 200);
  const server::ClientResponse resp = c.get("/metrics");
  ASSERT_EQ(resp.status, 200);
  const std::string* ct = resp.header("content-type");
  ASSERT_NE(ct, nullptr);
  EXPECT_NE(ct->find("text/plain"), std::string::npos);
  EXPECT_NE(resp.body.find("wflog_http_requests_total"), std::string::npos);
  EXPECT_NE(resp.body.find("wflog_queries_total"), std::string::npos);
}

}  // namespace
}  // namespace wflog
