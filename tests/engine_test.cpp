#include "core/engine.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/printer.h"
#include "test_util.h"
#include "workflow/clinic.h"

namespace wflog {
namespace {

using testing::make_log;

TEST(QueryEngineTest, RunParsesOptimizesEvaluates) {
  const Log log = figure3_log();
  QueryEngine engine(log);
  const QueryResult r = engine.run("UpdateRefer -> GetReimburse");
  EXPECT_EQ(r.total(), 1u);
  EXPECT_TRUE(r.any());
  ASSERT_NE(r.parsed, nullptr);
  ASSERT_NE(r.executed, nullptr);
  EXPECT_GE(r.parse_us, 0.0);
}

TEST(QueryEngineTest, OptimizeTogglePreservesResults) {
  const Log log = clinic_log(50, 2);
  QueryOptions with;
  with.optimize = true;
  QueryOptions without;
  without.optimize = false;
  QueryEngine opt(log, with);
  QueryEngine raw(log, without);
  const char* queries[] = {
      "SeeDoctor -> (UpdateRefer -> GetReimburse)",
      "(GetRefer -> GetReimburse) | (GetRefer -> TerminateRefer)",
      "(SeeDoctor . PayTreatment) & UpdateRefer",
  };
  for (const char* q : queries) {
    EXPECT_EQ(opt.run(q).incidents, raw.run(q).incidents) << q;
  }
}

TEST(QueryEngineTest, OptimizedPatternRecordedSeparately) {
  const Log log = clinic_log(30, 4);
  QueryEngine engine(log);
  const QueryResult r =
      engine.run("(GetRefer -> SeeDoctor) | (GetRefer -> UpdateRefer)");
  EXPECT_TRUE(r.parsed->structurally_equal(
      *parse_pattern("(GetRefer -> SeeDoctor) | (GetRefer -> UpdateRefer)")));
  EXPECT_LE(r.estimated_cost_after, r.estimated_cost_before);
}

TEST(QueryEngineTest, ExistsEarlyExit) {
  const Log log = figure3_log();
  QueryEngine engine(log);
  EXPECT_TRUE(engine.exists("SeeDoctor"));
  EXPECT_FALSE(engine.exists("TerminateRefer"));
}

TEST(QueryEngineTest, Count) {
  const Log log = figure3_log();
  QueryEngine engine(log);
  EXPECT_EQ(engine.count("PayTreatment"), 3u);
  EXPECT_EQ(engine.count("SeeDoctor . PayTreatment"), 3u);
}

TEST(QueryEngineTest, ParseErrorsPropagate) {
  const Log log = make_log("a");
  QueryEngine engine(log);
  EXPECT_THROW(engine.run("a ->"), ParseError);
  EXPECT_THROW(engine.exists("(a"), ParseError);
}

TEST(QueryEngineTest, RunPrebuiltPattern) {
  using namespace dsl;
  const Log log = make_log("a b");
  QueryEngine engine(log);
  const QueryResult r = engine.run(A("a") >> A("b"));
  EXPECT_EQ(r.total(), 1u);
  EXPECT_EQ(r.parse_us, 0.0);  // nothing parsed
}

TEST(QueryEngineTest, EvalOptionsFlowThrough) {
  QueryOptions opts;
  opts.eval.negation_matches_sentinels = false;
  const Log log = make_log("a b");
  QueryEngine engine(log, opts);
  // !a with sentinels excluded: only "b".
  EXPECT_EQ(engine.run("!a").total(), 1u);
}

TEST(QueryEngineTest, TimingFieldsPopulated) {
  const Log log = clinic_log(20, 9);
  QueryEngine engine(log);
  const QueryResult r = engine.run("GetRefer -> GetReimburse");
  EXPECT_GT(r.parse_us, 0.0);
  EXPECT_GT(r.eval_us, 0.0);
}

}  // namespace
}  // namespace wflog
