#include "common/interner.h"

#include <gtest/gtest.h>

#include <string>

namespace wflog {
namespace {

TEST(InternerTest, InternIsIdempotent) {
  Interner in;
  const Symbol a = in.intern("GetRefer");
  EXPECT_EQ(in.intern("GetRefer"), a);
  EXPECT_EQ(in.size(), 1u);
}

TEST(InternerTest, DistinctNamesDistinctSymbols) {
  Interner in;
  EXPECT_NE(in.intern("a"), in.intern("b"));
  EXPECT_EQ(in.size(), 2u);
}

TEST(InternerTest, NameRoundTrip) {
  Interner in;
  const Symbol s = in.intern("CheckIn");
  EXPECT_EQ(in.name(s), "CheckIn");
}

TEST(InternerTest, FindReturnsNoSymbolForUnknown) {
  Interner in;
  in.intern("a");
  EXPECT_EQ(in.find("b"), kNoSymbol);
  EXPECT_NE(in.find("a"), kNoSymbol);
}

TEST(InternerTest, ManySymbolsStaySable) {
  Interner in;
  std::vector<Symbol> syms;
  for (int i = 0; i < 1000; ++i) {
    syms.push_back(in.intern("act" + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(in.name(syms[static_cast<std::size_t>(i)]),
              "act" + std::to_string(i));
  }
}

TEST(InternerTest, CopyPreservesMapping) {
  Interner in;
  const Symbol a = in.intern("a");
  const Symbol b = in.intern("b");
  Interner copy = in;  // deep copy rebuilt
  EXPECT_EQ(copy.find("a"), a);
  EXPECT_EQ(copy.find("b"), b);
  EXPECT_EQ(copy.name(a), "a");
  // New interning in the copy does not affect the original.
  copy.intern("c");
  EXPECT_EQ(in.find("c"), kNoSymbol);
}

TEST(InternerTest, MoveKeepsViewsValid) {
  Interner in;
  const Symbol a = in.intern("stable");
  Interner moved = std::move(in);
  EXPECT_EQ(moved.name(a), "stable");
}

}  // namespace
}  // namespace wflog
