#include "core/pattern.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wflog {
namespace {

using namespace dsl;

TEST(PatternTest, AtomAccessors) {
  const PatternPtr p = Pattern::atom("GetRefer");
  EXPECT_TRUE(p->is_atom());
  EXPECT_EQ(p->op(), PatternOp::kAtom);
  EXPECT_EQ(p->activity(), "GetRefer");
  EXPECT_FALSE(p->negated());
  EXPECT_EQ(p->predicate(), nullptr);
}

TEST(PatternTest, NegatedAtom) {
  const PatternPtr p = Pattern::atom("CheckIn", true);
  EXPECT_TRUE(p->negated());
  EXPECT_TRUE(p->has_negation());
}

TEST(PatternTest, InvalidActivityNameRejected) {
  EXPECT_THROW(Pattern::atom(""), QueryError);
  EXPECT_THROW(Pattern::atom("9abc"), QueryError);
  EXPECT_THROW(Pattern::atom("a b"), QueryError);
}

TEST(PatternTest, CombineRejectsMisuse) {
  const PatternPtr a = Pattern::atom("a");
  EXPECT_THROW(Pattern::combine(PatternOp::kAtom, a, a), QueryError);
  EXPECT_THROW(Pattern::combine(PatternOp::kChoice, a, nullptr), QueryError);
}

TEST(PatternTest, DslBuildsExpectedShape) {
  const PatternPtr p = A("a") >> (A("b") | N("c"));
  EXPECT_EQ(p->op(), PatternOp::kSequential);
  EXPECT_EQ(p->left()->activity(), "a");
  EXPECT_EQ(p->right()->op(), PatternOp::kChoice);
  EXPECT_TRUE(p->right()->right()->negated());
}

TEST(PatternTest, MeasuresSingleAtom) {
  const PatternPtr p = A("a");
  EXPECT_EQ(p->num_operators(), 0u);
  EXPECT_EQ(p->num_atoms(), 1u);
  EXPECT_EQ(p->height(), 1u);
  EXPECT_EQ(p->min_incident_size(), 1u);
  EXPECT_EQ(p->max_incident_size(), 1u);
}

TEST(PatternTest, MeasuresComposite) {
  // (a . b) -> (c | d): 3 operators, 4 atoms, height 3.
  const PatternPtr p = (A("a") + A("b")) >> (A("c") | A("d"));
  EXPECT_EQ(p->num_operators(), 3u);
  EXPECT_EQ(p->num_atoms(), 4u);
  EXPECT_EQ(p->height(), 3u);
  // Sizes: a.b contributes 2, choice contributes 1 -> [3, 3].
  EXPECT_EQ(p->min_incident_size(), 3u);
  EXPECT_EQ(p->max_incident_size(), 3u);
}

TEST(PatternTest, ChoiceWidensSizeRange) {
  const PatternPtr p = A("a") | (A("b") + A("c"));
  EXPECT_EQ(p->min_incident_size(), 1u);
  EXPECT_EQ(p->max_incident_size(), 2u);
}

TEST(PatternTest, ActivityMultisetSortedWithDuplicates) {
  const PatternPtr p = (A("b") >> A("a")) & A("b");
  EXPECT_EQ(p->activity_multiset(),
            (std::vector<std::string>{"a", "b", "b"}));
}

TEST(PatternTest, ActivityMultisetMarksNegation) {
  const PatternPtr p = N("a") >> A("a");
  EXPECT_EQ(p->activity_multiset(), (std::vector<std::string>{"!a", "a"}));
}

TEST(PatternTest, StructuralEqualityIdentical) {
  const PatternPtr p = A("a") >> (A("b") | A("c"));
  const PatternPtr q = A("a") >> (A("b") | A("c"));
  EXPECT_TRUE(p->structurally_equal(*q));
  EXPECT_EQ(p->hash(), q->hash());
}

TEST(PatternTest, StructuralEqualityDistinguishesShape) {
  const PatternPtr p = (A("a") >> A("b")) >> A("c");
  const PatternPtr q = A("a") >> (A("b") >> A("c"));
  EXPECT_FALSE(p->structurally_equal(*q));
}

TEST(PatternTest, StructuralEqualityDistinguishesOps) {
  EXPECT_FALSE((A("a") >> A("b"))->structurally_equal(*(A("a") + A("b"))));
  EXPECT_FALSE((A("a") | A("b"))->structurally_equal(*(A("a") & A("b"))));
}

TEST(PatternTest, StructuralEqualityDistinguishesNegation) {
  EXPECT_FALSE(A("a")->structurally_equal(*N("a")));
}

TEST(PatternTest, StructuralEqualityDistinguishesPredicates) {
  const PredicatePtr pred =
      Predicate::compare(MapSel::kOut, "balance", CmpOp::kGt,
                         Value{std::int64_t{5000}});
  const PatternPtr with = Pattern::atom("a", false, pred);
  const PatternPtr without = Pattern::atom("a");
  EXPECT_FALSE(with->structurally_equal(*without));
  EXPECT_TRUE(with->has_predicate());
}

TEST(PatternTest, FlagsPropagate) {
  const PatternPtr p = (A("a") | A("b")) >> N("c");
  EXPECT_TRUE(p->has_choice());
  EXPECT_TRUE(p->has_negation());
  EXPECT_FALSE(p->has_predicate());
  EXPECT_FALSE((A("a") >> A("b"))->has_choice());
}

// ----- needs_choice_dedup ----------------------------------------------

TEST(ChoiceDedupTest, EqualMultisetsNeedDedup) {
  const PatternPtr l = A("a") >> A("b");
  const PatternPtr r = A("b") >> A("a");
  EXPECT_TRUE(needs_choice_dedup(*l, *r));
}

TEST(ChoiceDedupTest, DifferentMultisetsSkipDedup) {
  EXPECT_FALSE(needs_choice_dedup(*A("a"), *A("b")));
  EXPECT_FALSE(
      needs_choice_dedup(*(A("a") >> A("b")), *(A("a") >> A("c"))));
}

TEST(ChoiceDedupTest, DisjointSizeRangesSkipDedup) {
  EXPECT_FALSE(needs_choice_dedup(*A("a"), *(A("a") >> A("a"))));
}

TEST(ChoiceDedupTest, NegationForcesConservativeDedup) {
  // ¬b can match an "a" record, so "a" and "¬b" may share incidents even
  // though their multisets differ.
  EXPECT_TRUE(needs_choice_dedup(*A("a"), *N("b")));
}

TEST(ChoiceDedupTest, NestedChoiceForcesConservativeDedup) {
  const PatternPtr l = A("a") >> (A("b") | A("c"));
  const PatternPtr r = A("a") >> A("b");
  EXPECT_TRUE(needs_choice_dedup(*l, *r));
}

// ----- canonical keys (Theorems 2-4 invariance) ---------------------------

TEST(CanonicalKeyTest, AssociativityCollapses) {
  // Theorem 2: any grouping of one operator chain gets one key.
  for (const auto combine :
       {&Pattern::consecutive, &Pattern::sequential, &Pattern::choice,
        &Pattern::parallel}) {
    const PatternPtr left_nested =
        combine(combine(A("a"), A("b")), A("c"));
    const PatternPtr right_nested =
        combine(A("a"), combine(A("b"), A("c")));
    EXPECT_EQ(canonical_key(*left_nested), canonical_key(*right_nested));
    EXPECT_EQ(canonical_hash(*left_nested), canonical_hash(*right_nested));
  }
}

TEST(CanonicalKeyTest, CommutativitySortsChoiceAndParallel) {
  // Theorem 3: ⊗/⊕ operand order is immaterial.
  EXPECT_EQ(canonical_key(*(A("a") | A("b"))),
            canonical_key(*(A("b") | A("a"))));
  EXPECT_EQ(canonical_key(*(A("a") & A("b"))),
            canonical_key(*(A("b") & A("a"))));
  EXPECT_EQ(canonical_key(*((A("a") | A("b")) | A("c"))),
            canonical_key(*(A("c") | (A("b") | A("a")))));
  // ⊙/≫ are NOT commutative.
  EXPECT_NE(canonical_key(*(A("a") + A("b"))),
            canonical_key(*(A("b") + A("a"))));
  EXPECT_NE(canonical_key(*(A("a") >> A("b"))),
            canonical_key(*(A("b") >> A("a"))));
}

TEST(CanonicalKeyTest, MixedTemporalChainsRegroupFreely) {
  // Theorem 4: (a ⊙ b) ≫ c ≡ a ⊙ (b ≫ c) — one key; but swapping WHICH
  // operator sits between which operands changes meaning and key.
  EXPECT_EQ(canonical_key(*((A("a") + A("b")) >> A("c"))),
            canonical_key(*(A("a") + (A("b") >> A("c")))));
  EXPECT_EQ(canonical_key(*((A("a") >> A("b")) + A("c"))),
            canonical_key(*(A("a") >> (A("b") + A("c")))));
  EXPECT_NE(canonical_key(*((A("a") + A("b")) >> A("c"))),
            canonical_key(*((A("a") >> A("b")) + A("c"))));
}

TEST(CanonicalKeyTest, InequivalentFixturesDoNotCollide) {
  const PatternPtr fixtures[] = {
      A("a"),
      A("b"),
      N("a"),  // negation is semantic
      Pattern::atom("a", false,
                    Predicate::compare(MapSel::kOut, "x", CmpOp::kGt,
                                       Value{std::int64_t{5}})),
      Pattern::atom("a", false,
                    Predicate::compare(MapSel::kOut, "x", CmpOp::kGt,
                                       Value{std::int64_t{6}})),
      A("a") + A("b"),   // ⊙ vs ≫ differ
      A("a") >> A("b"),
      A("a") | A("b"),
      A("a") & A("b"),
      A("a") | (A("b") & A("c")),  // grouping across DIFFERENT ops matters
      (A("a") | A("b")) & A("c"),
      A("a") + (A("b") | A("c")),
      (A("a") + A("b")) | A("c"),
  };
  for (std::size_t i = 0; i < std::size(fixtures); ++i) {
    for (std::size_t j = i + 1; j < std::size(fixtures); ++j) {
      EXPECT_NE(canonical_key(*fixtures[i]), canonical_key(*fixtures[j]))
          << "i=" << i << " j=" << j << ": "
          << canonical_key(*fixtures[i]);
    }
  }
}

TEST(CanonicalKeyTest, FreeTextCannotForgeStructure) {
  // Regression: keys were built by raw concatenation, so predicate text
  // containing key syntax could make ONE atom spell out the same bytes as
  // a structurally different pattern. Under the old format,
  //   s | (t[exists x] | u[exists y])   and
  //   s | t[exists "x]|a:u[exists y"]
  // both keyed as {a:s|a:t[exists x]|a:u[exists y]}. Length prefixes on
  // the activity name and predicate text make the key injective.
  const PatternPtr three_way =
      A("s") |
      (Pattern::atom("t", false, Predicate::exists(MapSel::kAny, "x")) |
       Pattern::atom("u", false, Predicate::exists(MapSel::kAny, "y")));
  // The attr that collided under the old concatenation format...
  const PatternPtr forged_old =
      A("s") | Pattern::atom("t", false,
                             Predicate::exists(MapSel::kAny,
                                               "x]|a:u[exists y"));
  // ...and the best attempt against the length-prefixed format (it cannot
  // work: the prefix pins the predicate's extent).
  const PatternPtr forged_new =
      A("s") | Pattern::atom("t", false,
                             Predicate::exists(MapSel::kAny,
                                               "x]|a:1:u[8:exists y"));
  for (const PatternPtr& forged : {forged_old, forged_new}) {
    EXPECT_NE(canonical_key(*three_way), canonical_key(*forged));
    EXPECT_NE(canonical_hash(*three_way), canonical_hash(*forged));
  }
}

TEST(CanonicalKeyTest, HashFollowsFixedKey) {
  // canonical_hash must stay a pure function of canonical_key.
  const PatternPtr p =
      Pattern::atom("a", false, Predicate::exists(MapSel::kAny, "x"));
  const PatternPtr q =
      Pattern::atom("a", false, Predicate::exists(MapSel::kAny, "x"));
  EXPECT_EQ(canonical_key(*p), canonical_key(*q));
  EXPECT_EQ(canonical_hash(*p), canonical_hash(*q));
}

TEST(CanonicalKeyTest, BindingNamesAreIgnored) {
  // Bindings never affect incident semantics, so keys (the sharing unit)
  // must not see them.
  EXPECT_EQ(canonical_key(*Pattern::bound_atom("x", "a")),
            canonical_key(*Pattern::atom("a")));
}

}  // namespace
}  // namespace wflog
