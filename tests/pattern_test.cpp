#include "core/pattern.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wflog {
namespace {

using namespace dsl;

TEST(PatternTest, AtomAccessors) {
  const PatternPtr p = Pattern::atom("GetRefer");
  EXPECT_TRUE(p->is_atom());
  EXPECT_EQ(p->op(), PatternOp::kAtom);
  EXPECT_EQ(p->activity(), "GetRefer");
  EXPECT_FALSE(p->negated());
  EXPECT_EQ(p->predicate(), nullptr);
}

TEST(PatternTest, NegatedAtom) {
  const PatternPtr p = Pattern::atom("CheckIn", true);
  EXPECT_TRUE(p->negated());
  EXPECT_TRUE(p->has_negation());
}

TEST(PatternTest, InvalidActivityNameRejected) {
  EXPECT_THROW(Pattern::atom(""), QueryError);
  EXPECT_THROW(Pattern::atom("9abc"), QueryError);
  EXPECT_THROW(Pattern::atom("a b"), QueryError);
}

TEST(PatternTest, CombineRejectsMisuse) {
  const PatternPtr a = Pattern::atom("a");
  EXPECT_THROW(Pattern::combine(PatternOp::kAtom, a, a), QueryError);
  EXPECT_THROW(Pattern::combine(PatternOp::kChoice, a, nullptr), QueryError);
}

TEST(PatternTest, DslBuildsExpectedShape) {
  const PatternPtr p = A("a") >> (A("b") | N("c"));
  EXPECT_EQ(p->op(), PatternOp::kSequential);
  EXPECT_EQ(p->left()->activity(), "a");
  EXPECT_EQ(p->right()->op(), PatternOp::kChoice);
  EXPECT_TRUE(p->right()->right()->negated());
}

TEST(PatternTest, MeasuresSingleAtom) {
  const PatternPtr p = A("a");
  EXPECT_EQ(p->num_operators(), 0u);
  EXPECT_EQ(p->num_atoms(), 1u);
  EXPECT_EQ(p->height(), 1u);
  EXPECT_EQ(p->min_incident_size(), 1u);
  EXPECT_EQ(p->max_incident_size(), 1u);
}

TEST(PatternTest, MeasuresComposite) {
  // (a . b) -> (c | d): 3 operators, 4 atoms, height 3.
  const PatternPtr p = (A("a") + A("b")) >> (A("c") | A("d"));
  EXPECT_EQ(p->num_operators(), 3u);
  EXPECT_EQ(p->num_atoms(), 4u);
  EXPECT_EQ(p->height(), 3u);
  // Sizes: a.b contributes 2, choice contributes 1 -> [3, 3].
  EXPECT_EQ(p->min_incident_size(), 3u);
  EXPECT_EQ(p->max_incident_size(), 3u);
}

TEST(PatternTest, ChoiceWidensSizeRange) {
  const PatternPtr p = A("a") | (A("b") + A("c"));
  EXPECT_EQ(p->min_incident_size(), 1u);
  EXPECT_EQ(p->max_incident_size(), 2u);
}

TEST(PatternTest, ActivityMultisetSortedWithDuplicates) {
  const PatternPtr p = (A("b") >> A("a")) & A("b");
  EXPECT_EQ(p->activity_multiset(),
            (std::vector<std::string>{"a", "b", "b"}));
}

TEST(PatternTest, ActivityMultisetMarksNegation) {
  const PatternPtr p = N("a") >> A("a");
  EXPECT_EQ(p->activity_multiset(), (std::vector<std::string>{"!a", "a"}));
}

TEST(PatternTest, StructuralEqualityIdentical) {
  const PatternPtr p = A("a") >> (A("b") | A("c"));
  const PatternPtr q = A("a") >> (A("b") | A("c"));
  EXPECT_TRUE(p->structurally_equal(*q));
  EXPECT_EQ(p->hash(), q->hash());
}

TEST(PatternTest, StructuralEqualityDistinguishesShape) {
  const PatternPtr p = (A("a") >> A("b")) >> A("c");
  const PatternPtr q = A("a") >> (A("b") >> A("c"));
  EXPECT_FALSE(p->structurally_equal(*q));
}

TEST(PatternTest, StructuralEqualityDistinguishesOps) {
  EXPECT_FALSE((A("a") >> A("b"))->structurally_equal(*(A("a") + A("b"))));
  EXPECT_FALSE((A("a") | A("b"))->structurally_equal(*(A("a") & A("b"))));
}

TEST(PatternTest, StructuralEqualityDistinguishesNegation) {
  EXPECT_FALSE(A("a")->structurally_equal(*N("a")));
}

TEST(PatternTest, StructuralEqualityDistinguishesPredicates) {
  const PredicatePtr pred =
      Predicate::compare(MapSel::kOut, "balance", CmpOp::kGt,
                         Value{std::int64_t{5000}});
  const PatternPtr with = Pattern::atom("a", false, pred);
  const PatternPtr without = Pattern::atom("a");
  EXPECT_FALSE(with->structurally_equal(*without));
  EXPECT_TRUE(with->has_predicate());
}

TEST(PatternTest, FlagsPropagate) {
  const PatternPtr p = (A("a") | A("b")) >> N("c");
  EXPECT_TRUE(p->has_choice());
  EXPECT_TRUE(p->has_negation());
  EXPECT_FALSE(p->has_predicate());
  EXPECT_FALSE((A("a") >> A("b"))->has_choice());
}

// ----- needs_choice_dedup ----------------------------------------------

TEST(ChoiceDedupTest, EqualMultisetsNeedDedup) {
  const PatternPtr l = A("a") >> A("b");
  const PatternPtr r = A("b") >> A("a");
  EXPECT_TRUE(needs_choice_dedup(*l, *r));
}

TEST(ChoiceDedupTest, DifferentMultisetsSkipDedup) {
  EXPECT_FALSE(needs_choice_dedup(*A("a"), *A("b")));
  EXPECT_FALSE(
      needs_choice_dedup(*(A("a") >> A("b")), *(A("a") >> A("c"))));
}

TEST(ChoiceDedupTest, DisjointSizeRangesSkipDedup) {
  EXPECT_FALSE(needs_choice_dedup(*A("a"), *(A("a") >> A("a"))));
}

TEST(ChoiceDedupTest, NegationForcesConservativeDedup) {
  // ¬b can match an "a" record, so "a" and "¬b" may share incidents even
  // though their multisets differ.
  EXPECT_TRUE(needs_choice_dedup(*A("a"), *N("b")));
}

TEST(ChoiceDedupTest, NestedChoiceForcesConservativeDedup) {
  const PatternPtr l = A("a") >> (A("b") | A("c"));
  const PatternPtr r = A("a") >> A("b");
  EXPECT_TRUE(needs_choice_dedup(*l, *r));
}

}  // namespace
}  // namespace wflog
