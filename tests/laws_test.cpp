// Property tests for the algebraic laws (Theorems 2-5): each law's two
// sides are evaluated on randomized logs and must produce identical
// incident sets. Parameterized over seeds per the paper's four operators.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/evaluator.h"
#include "log/builder.h"
#include "test_util.h"

namespace wflog {
namespace {

constexpr PatternOp kAllOps[] = {PatternOp::kConsecutive,
                                 PatternOp::kSequential, PatternOp::kChoice,
                                 PatternOp::kParallel};

/// Random log over a 3-letter alphabet: several short instances, some
/// incomplete. Small sizes keep ⊕ outputs tractable while still exercising
/// duplicates and interleavings.
Log random_small_log(std::uint64_t seed) {
  Rng rng(seed);
  LogBuilder b;
  const std::size_t instances = 2 + rng.index(3);
  for (std::size_t i = 0; i < instances; ++i) {
    const Wid w = b.begin_instance();
    const std::size_t len = 3 + rng.index(5);
    for (std::size_t j = 0; j < len; ++j) {
      const char c = static_cast<char>('a' + rng.index(3));
      b.append(w, std::string(1, c));
    }
    if (rng.bernoulli(0.8)) b.end_instance(w);
  }
  return b.build();
}

/// Random pattern of bounded depth over {a, b, c} with occasional negation.
PatternPtr random_pattern(Rng& rng, std::size_t depth) {
  if (depth == 0 || rng.bernoulli(0.4)) {
    const std::string name(1, static_cast<char>('a' + rng.index(3)));
    return Pattern::atom(name, rng.bernoulli(0.15));
  }
  const PatternOp op = kAllOps[rng.index(4)];
  return Pattern::combine(op, random_pattern(rng, depth - 1),
                          random_pattern(rng, depth - 1));
}

IncidentList eval_on(const Log& log, const PatternPtr& p) {
  LogIndex index(log);
  Evaluator ev(index);
  return ev.evaluate(*p).flatten();
}

class LawsTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void expect_equivalent(const Log& log, const PatternPtr& lhs,
                         const PatternPtr& rhs, const char* law) {
    EXPECT_EQ(eval_on(log, lhs), eval_on(log, rhs))
        << law << " failed on seed " << GetParam();
  }
};

TEST_P(LawsTest, Theorem2Associativity) {
  Rng rng(GetParam());
  const Log log = random_small_log(GetParam());
  for (PatternOp op : kAllOps) {
    const PatternPtr p1 = random_pattern(rng, 1);
    const PatternPtr p2 = random_pattern(rng, 1);
    const PatternPtr p3 = random_pattern(rng, 1);
    const PatternPtr lhs = Pattern::combine(
        op, Pattern::combine(op, p1, p2), p3);
    const PatternPtr rhs = Pattern::combine(
        op, p1, Pattern::combine(op, p2, p3));
    expect_equivalent(log, lhs, rhs, "associativity");
  }
}

TEST_P(LawsTest, Theorem3Commutativity) {
  Rng rng(GetParam() ^ 0x1111);
  const Log log = random_small_log(GetParam());
  for (PatternOp op : {PatternOp::kChoice, PatternOp::kParallel}) {
    const PatternPtr p1 = random_pattern(rng, 1);
    const PatternPtr p2 = random_pattern(rng, 1);
    expect_equivalent(log, Pattern::combine(op, p1, p2),
                      Pattern::combine(op, p2, p1), "commutativity");
  }
}

TEST_P(LawsTest, Theorem4MixedTemporalReassociation) {
  Rng rng(GetParam() ^ 0x2222);
  const Log log = random_small_log(GetParam());
  const PatternPtr p1 = random_pattern(rng, 1);
  const PatternPtr p2 = random_pattern(rng, 1);
  const PatternPtr p3 = random_pattern(rng, 1);
  // Part 1: p1 . (p2 -> p3) == (p1 . p2) -> p3.
  expect_equivalent(
      log,
      Pattern::consecutive(p1, Pattern::sequential(p2, p3)),
      Pattern::sequential(Pattern::consecutive(p1, p2), p3),
      "Theorem 4 part 1");
  // Part 2: p1 -> (p2 . p3) == (p1 -> p2) . p3.
  expect_equivalent(
      log,
      Pattern::sequential(p1, Pattern::consecutive(p2, p3)),
      Pattern::consecutive(Pattern::sequential(p1, p2), p3),
      "Theorem 4 part 2");
}

TEST_P(LawsTest, Theorem5LeftDistributivity) {
  Rng rng(GetParam() ^ 0x3333);
  const Log log = random_small_log(GetParam());
  for (PatternOp op : kAllOps) {
    const PatternPtr p1 = random_pattern(rng, 1);
    const PatternPtr p2 = random_pattern(rng, 1);
    const PatternPtr p3 = random_pattern(rng, 1);
    const PatternPtr lhs =
        Pattern::combine(op, p1, Pattern::choice(p2, p3));
    const PatternPtr rhs = Pattern::choice(Pattern::combine(op, p1, p2),
                                           Pattern::combine(op, p1, p3));
    expect_equivalent(log, lhs, rhs, "left distributivity");
  }
}

TEST_P(LawsTest, Theorem5RightDistributivity) {
  Rng rng(GetParam() ^ 0x4444);
  const Log log = random_small_log(GetParam());
  for (PatternOp op : kAllOps) {
    const PatternPtr p1 = random_pattern(rng, 1);
    const PatternPtr p2 = random_pattern(rng, 1);
    const PatternPtr p3 = random_pattern(rng, 1);
    const PatternPtr lhs =
        Pattern::combine(op, Pattern::choice(p1, p2), p3);
    const PatternPtr rhs = Pattern::choice(Pattern::combine(op, p1, p3),
                                           Pattern::combine(op, p2, p3));
    expect_equivalent(log, lhs, rhs, "right distributivity");
  }
}

TEST_P(LawsTest, NonCommutativityOfTemporalOpsWitnessed) {
  // The paper notes ⊙ and ≫ are NOT commutative. Exhibit a witness log
  // where swapping operands changes the result.
  const Log log = testing::make_log("a b");
  using namespace dsl;
  EXPECT_NE(eval_on(log, A("a") >> A("b")), eval_on(log, A("b") >> A("a")));
  EXPECT_NE(eval_on(log, A("a") + A("b")), eval_on(log, A("b") + A("a")));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LawsTest,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace wflog
