#!/usr/bin/env sh
# Observability smoke: boots a real wfqd with a forced slow path
# (--slow-ms 0) and an access log, drives it over HTTP with curl, and
# asserts the request-observability surfaces end to end:
#
#   * X-Request-Id is echoed back verbatim
#   * the access log holds one valid JSON line per request, with the
#     request's id and a complete latency breakdown
#   * /debug/slow captured the query with its optimized plan
#   * /healthz readiness JSON, /version, /stats observability block
#
# Usage: tests/smoke_observability.sh path/to/wfqd   (needs curl + jq)
set -eu

wfqd=${1:?usage: smoke_observability.sh path/to/wfqd}
tmp=$(mktemp -d)
pid=
cleanup() {
  [ -n "$pid" ] && kill "$pid" 2>/dev/null && wait "$pid" 2>/dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

fail() {
  echo "smoke_observability: FAIL: $*" >&2
  echo "--- wfqd stderr ---" >&2
  cat "$tmp/stderr" >&2 || true
  exit 1
}

"$wfqd" --store "$tmp/store" --port 0 --slow-ms 0 \
  --access-log "$tmp/access.jsonl" \
  >"$tmp/stdout" 2>"$tmp/stderr" &
pid=$!

# The daemon prints "wfqd listening on PORT (...)" once bound; --port 0
# means the OS picked it, so parse it out.
port=
i=0
while [ "$i" -lt 100 ]; do
  port=$(sed -n 's/^wfqd listening on \([0-9][0-9]*\).*/\1/p' "$tmp/stdout")
  [ -n "$port" ] && break
  kill -0 "$pid" 2>/dev/null || fail "wfqd exited before listening"
  sleep 0.1
  i=$((i + 1))
done
[ -n "$port" ] || fail "never saw the listening line"
base="http://127.0.0.1:$port"

# Ingest one instance so the query below has something to find.
curl -fsS -X POST "$base/ingest" --data '{"events": [
  {"op": "begin"},
  {"op": "record", "wid": 1, "activity": "a"},
  {"op": "record", "wid": 1, "activity": "b"},
  {"op": "end", "wid": 1}
]}' >/dev/null || fail "/ingest"

# The probe request: caller-chosen id, must be echoed byte-for-byte.
echo_id=$(curl -fsS -D - -o "$tmp/query.json" \
  -H 'X-Request-Id: smoke-probe-1' \
  -X POST "$base/query" --data '{"query": "a -> b"}' |
  tr -d '\r' | sed -n 's/^x-request-id: //p')
[ "$echo_id" = "smoke-probe-1" ] ||
  fail "X-Request-Id not echoed (got '$echo_id')"
[ "$(jq -r '.total' "$tmp/query.json")" = "1" ] ||
  fail "query answer wrong: $(cat "$tmp/query.json")"

# The access log line for the probe: valid JSON, complete breakdown.
line=$(grep '"smoke-probe-1"' "$tmp/access.jsonl" | head -n 1)
[ -n "$line" ] || fail "no access-log line for the probe id"
echo "$line" | jq -e '
  .id == "smoke-probe-1" and .path == "/query" and .status == 200
  and .slow == true and (.breakdown | has("queue_us") and has("parse_us")
  and has("cache_us") and has("eval_us") and has("serialize_us")
  and has("wall_us") and .wall_us > 0)' >/dev/null ||
  fail "access-log line malformed: $line"

# Forced slow path (--slow-ms 0): the probe must sit in /debug/slow with
# its query text and optimized plan, and the entry must be valid JSON.
curl -fsS "$base/debug/slow" |
  jq -e '.slow | map(select(.id == "smoke-probe-1")) | length == 1
         and (.[0].query == "a -> b") and (.[0].plan | length > 0)' \
  >/dev/null || fail "/debug/slow misses the probe capture"

curl -fsS "$base/debug/requests" |
  jq -e '.requests | map(select(.id == "smoke-probe-1")) | length == 1' \
  >/dev/null || fail "/debug/requests misses the probe"

# Readiness + build info + aggregate counters.
curl -fsS -H 'Accept: application/json' "$base/healthz" |
  jq -e '.status == "ok" and .ready == true' >/dev/null ||
  fail "/healthz readiness JSON"
curl -fsS "$base/version" |
  jq -e '.server == "wfqd" and (.version | length > 0)' >/dev/null ||
  fail "/version"
curl -fsS "$base/stats" |
  jq -e '.observability.requests >= 2
         and .observability.access_log == true' >/dev/null ||
  fail "/stats observability block"
curl -fsS "$base/metrics" |
  grep -q '^wflog_server_endpoint_seconds_bucket{endpoint="/query"' ||
  fail "/metrics misses the per-endpoint histogram"

# SIGHUP reopens the access log (logrotate contract): move the live log
# aside, signal, and the next request must land in a fresh file at the
# original path while the rotated file keeps the old lines.
mv "$tmp/access.jsonl" "$tmp/access.jsonl.1"
kill -HUP "$pid"
curl -fsS -H 'X-Request-Id: smoke-after-rotate' "$base/healthz" >/dev/null ||
  fail "/healthz after SIGHUP"
i=0
while [ "$i" -lt 50 ]; do
  [ -f "$tmp/access.jsonl" ] &&
    grep -q '"smoke-after-rotate"' "$tmp/access.jsonl" && break
  sleep 0.1
  i=$((i + 1))
done
grep -q '"smoke-after-rotate"' "$tmp/access.jsonl" ||
  fail "post-rotate request missing from the reopened access log"
grep -q '"smoke-probe-1"' "$tmp/access.jsonl.1" ||
  fail "rotated access log lost the pre-rotate lines"
grep -q '"smoke-after-rotate"' "$tmp/access.jsonl.1" &&
  fail "post-rotate request leaked into the rotated file"

# Graceful TERM: drains and exits 0.
kill "$pid"
rc=0
wait "$pid" || rc=$?
pid=
[ "$rc" = "0" ] || fail "wfqd exit code $rc on SIGTERM"

echo "smoke_observability: OK (port $port)"
