// Differential/property harness for wid-sharded scatter/gather evaluation
// (core/shard.h). The contract under test: for EVERY shard count K, every
// scheduling order, and every query shape, the sharded answer serializes
// byte-identically to the unsharded one — sharding changes latency, never
// answers. Guard-truncated runs legitimately return different partial
// subsets per K; there the contract is an identical stop_reason.

#include "core/shard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "common/error.h"
#include "common/rng.h"
#include "core/aggregate.h"
#include "core/engine.h"
#include "core/parser.h"
#include "core/printer.h"
#include "core/synthetic.h"
#include "log/slice.h"
#include "test_util.h"
#include "workflow/workload.h"

namespace wflog {
namespace {

using testing::brief;
using testing::make_log;

/// Exact serialization of an incident set: group order, wid, and every
/// position, so string equality == byte-identical results.
std::string serialize(const IncidentSet& set) {
  std::string s;
  for (const IncidentSet::Group& g : set.groups()) {
    s += "g" + std::to_string(g.wid) + "[";
    for (const Incident& o : g.incidents) s += brief(o) + ";";
    s += "]";
  }
  return s;
}

std::string serialize(const QueryResult& r) {
  return std::string(stop_reason_name(r.stop_reason)) + "|" + r.error + "|" +
         serialize(r.incidents);
}

const std::size_t kShardCounts[] = {1, 2, 3, 7, 16, 64};

// ----- partitioner ---------------------------------------------------------

TEST(ShardOfWidTest, StableAndInRange) {
  for (Wid wid = 0; wid < 500; ++wid) {
    for (std::size_t k : {1, 2, 3, 7, 64}) {
      const std::size_t s = shard_of_wid(wid, k);
      EXPECT_LT(s, k);
      EXPECT_EQ(s, shard_of_wid(wid, k)) << "unstable for wid " << wid;
    }
    EXPECT_EQ(shard_of_wid(wid, 1), 0u);
  }
}

TEST(ShardOfWidTest, SpreadsDenseWids) {
  // Sequential wids (the monitor's allocation pattern) should not pile
  // onto few shards: over 1000 wids and 8 shards, every shard gets some.
  std::vector<std::size_t> load(8, 0);
  for (Wid wid = 1; wid <= 1000; ++wid) ++load[shard_of_wid(wid, 8)];
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_GT(load[s], 60u) << "shard " << s << " nearly starved";
  }
}

TEST(ResolveShardCountTest, ClampsToInstances) {
  EXPECT_EQ(resolve_shard_count(4, 100), 4u);
  EXPECT_EQ(resolve_shard_count(100, 4), 4u);
  EXPECT_EQ(resolve_shard_count(5, 0), 1u);   // no instances: one shard
  EXPECT_EQ(resolve_shard_count(1, 1), 1u);
  EXPECT_GE(resolve_shard_count(0, 1000), 1u);  // 0 = hardware concurrency
}

TEST(ShardPlanTest, PartitionsEveryWidExactlyOnce) {
  const Log log = workload::random_process(37, 11);
  const std::vector<Wid>& wids = log.wids();
  for (std::size_t k : {1, 2, 7, 16}) {
    const ShardPlan plan(wids, k);
    EXPECT_EQ(plan.num_instances(), wids.size());
    std::vector<bool> seen(wids.size(), false);
    for (std::size_t s = 0; s < plan.num_shards(); ++s) {
      const ShardPlan::Shard& shard = plan.shard(s);
      ASSERT_EQ(shard.wids.size(), shard.global.size());
      for (std::size_t j = 0; j < shard.wids.size(); ++j) {
        const std::size_t pos = shard.global[j];
        ASSERT_LT(pos, wids.size());
        EXPECT_FALSE(seen[pos]) << "position assigned twice";
        seen[pos] = true;
        EXPECT_EQ(wids[pos], shard.wids[j]);
        EXPECT_EQ(shard_of_wid(shard.wids[j], plan.num_shards()), s);
      }
    }
    EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                            [](bool b) { return b; }));
  }
}

TEST(ShardPlanTest, EmptyWidSet) {
  const ShardPlan plan(std::vector<Wid>{}, 8);
  EXPECT_EQ(plan.num_shards(), 1u);
  EXPECT_EQ(plan.num_instances(), 0u);
  EXPECT_TRUE(plan.shard(0).wids.empty());
  EXPECT_TRUE(merge_shards(0, {}).empty());
}

// ----- merge ---------------------------------------------------------------

/// Random per-shard results over a wid-partition, for direct merge tests.
std::vector<ShardResult> random_results(Rng& rng, std::size_t num_shards,
                                        std::size_t num_instances) {
  std::vector<ShardResult> results(num_shards);
  for (std::size_t pos = 0; pos < num_instances; ++pos) {
    const Wid wid = static_cast<Wid>(pos + 1);
    if (rng.bernoulli(0.3)) continue;  // instance with no matches
    SyntheticIncidentOptions opts;
    opts.count = 1 + rng.index(4);
    opts.records_each = 1 + rng.index(3);
    opts.instance_len = 40;
    opts.wid = wid;
    opts.seed = rng.next_u64();
    IncidentList list = synthetic_incidents(opts);
    if (list.empty()) continue;
    ShardResult& r = results[shard_of_wid(wid, num_shards)];
    r.positions.push_back(pos);
    r.wids.push_back(wid);
    r.lists.push_back(std::move(list));
  }
  return results;
}

TEST(MergeShardsTest, IndependentOfResultArrivalOrder) {
  Rng rng(99);
  for (std::size_t round = 0; round < 30; ++round) {
    const std::size_t k = 1 + rng.index(9);
    const std::size_t n = 1 + rng.index(30);
    std::vector<ShardResult> results = random_results(rng, k, n);
    const IncidentSet reference = merge_shards(n, results);
    for (std::size_t shuffle = 0; shuffle < 5; ++shuffle) {
      std::vector<ShardResult> permuted = results;
      rng.shuffle(permuted);
      EXPECT_EQ(serialize(merge_shards(n, permuted)), serialize(reference))
          << "merge depended on shard arrival order";
    }
  }
}

TEST(MergeShardsTest, PreservesGroupOrderAndStrictLsnOrder) {
  Rng rng(7);
  const std::size_t k = 5, n = 25;
  const IncidentSet merged = merge_shards(n, random_results(rng, k, n));
  // Groups ascend in global position order (== wid order here) and each
  // group's list keeps the canonical strict order it was produced with.
  Wid prev = 0;
  for (const IncidentSet::Group& g : merged.groups()) {
    EXPECT_GT(g.wid, prev);
    prev = g.wid;
    EXPECT_FALSE(g.incidents.empty());
    for (std::size_t i = 1; i < g.incidents.size(); ++i) {
      EXPECT_TRUE(g.incidents[i - 1] < g.incidents[i])
          << "canonical incident order broken in group " << g.wid;
    }
  }
}

// ----- pool ----------------------------------------------------------------

TEST(ShardPoolTest, RunsEveryItemExactlyOnce) {
  ShardPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.run(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(ShardPoolTest, ZeroWorkersDegradesToSerial) {
  ShardPool pool(0);
  std::size_t sum = 0;  // caller-thread only: no synchronization needed
  pool.run(10, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 45u);
}

TEST(ShardPoolTest, ZeroCountIsANoop) {
  ShardPool pool(2);
  pool.run(0, [](std::size_t) { FAIL() << "work ran for count 0"; });
}

TEST(ShardPoolTest, FirstExceptionPropagatesAllItemsRun) {
  ShardPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.run(20,
               [&](std::size_t i) {
                 ran.fetch_add(1);
                 if (i == 5) throw std::runtime_error("item 5");
               }),
      std::runtime_error);
  // Remaining items still execute (results stay complete; the error is
  // reported after the join).
  EXPECT_EQ(ran.load(), 20);
}

TEST(ShardPoolTest, ConcurrentRunsShareThePool) {
  ShardPool pool(3);
  std::vector<std::thread> callers;
  std::vector<std::atomic<std::uint64_t>> sums(4);
  for (std::size_t c = 0; c < 4; ++c) {
    callers.emplace_back([&pool, &sums, c] {
      pool.run(50, [&sums, c](std::size_t i) {
        sums[c].fetch_add(i + 1);
      });
    });
  }
  for (std::thread& t : callers) t.join();
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(sums[c].load(), 50u * 51u / 2) << "caller " << c;
  }
}

TEST(ShardPoolTest, RunAfterShutdownCompletesInline) {
  ShardPool pool(2);
  pool.shutdown();
  pool.shutdown();  // idempotent
  std::size_t sum = 0;
  pool.run(10, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum, 45u);
  EXPECT_EQ(pool.workers(), 0u);
}

TEST(ShardPoolTest, ShutdownUnderLoadLosesNoItems) {
  // Shutdown races an in-flight run: workers may stop mid-job, but the
  // caller must still complete every item before run() returns.
  for (int round = 0; round < 10; ++round) {
    ShardPool pool(3);
    std::atomic<int> ran{0};
    std::thread caller([&] {
      pool.run(200, [&](std::size_t) {
        ran.fetch_add(1);
        std::this_thread::yield();
      });
    });
    pool.shutdown();
    caller.join();
    EXPECT_EQ(ran.load(), 200);
  }
}

// ----- differential: library level ----------------------------------------

/// Serial reference vs sharded evaluation for one pattern over one index,
/// across the full K sweep (including K > #wids) and both schedulers.
void expect_sharded_identical(const Pattern& p, const LogIndex& index) {
  const Evaluator serial(index);
  const std::string expected = serialize(serial.evaluate(p));
  const std::size_t expected_count = serial.count(p);
  const bool expected_exists = serial.exists(p);
  std::vector<std::size_t> ks(std::begin(kShardCounts),
                              std::end(kShardCounts));
  ks.push_back(index.wids().size() + 1);  // K > #wids
  for (const std::size_t k : ks) {
    const ShardPlan plan(index.wids(), k);
    ShardEvalOptions opts;
    EXPECT_EQ(serialize(evaluate_sharded(p, index, plan, opts)), expected)
        << "K=" << k << " serial scatter, pattern " << to_text(p);
    EXPECT_EQ(count_sharded(p, index, plan, opts), expected_count)
        << "K=" << k;
    EXPECT_EQ(exists_sharded(p, index, plan, opts), expected_exists)
        << "K=" << k;
    ShardPool pool(2);
    opts.pool = &pool;
    EXPECT_EQ(serialize(evaluate_sharded(p, index, plan, opts)), expected)
        << "K=" << k << " pooled scatter, pattern " << to_text(p);
    EXPECT_EQ(count_sharded(p, index, plan, opts), expected_count)
        << "K=" << k << " pooled";
    EXPECT_EQ(exists_sharded(p, index, plan, opts), expected_exists)
        << "K=" << k << " pooled";
  }
}

TEST(ShardDifferentialTest, TwoHundredRandomLogsTimesRandomPatterns) {
  // 210 randomized simulator logs x 2 random patterns x 7 shard counts,
  // every combination byte-identical to the serial evaluator.
  for (std::uint64_t seed = 0; seed < 210; ++seed) {
    const Log log = workload::random_process(2 + seed % 11, seed);
    const LogIndex index(log);
    Rng rng(seed * 31 + 7);
    RandomPatternOptions popts;
    popts.max_depth = 3;
    popts.predicate_probability = 0.1;
    for (int q = 0; q < 2; ++q) {
      const PatternPtr p = random_pattern(rng, popts);
      expect_sharded_identical(*p, index);
    }
  }
}

TEST(ShardDifferentialTest, ClinicQueriesWithSpansAndNegation) {
  const Log log = workload::clinic(60, 3);
  const LogIndex index(log);
  const char* queries[] = {
      "UpdateRefer -> GetReimburse",
      "SeeDoctor . PayTreatment",
      "(SeeDoctor -> CompleteRefer) | (SeeDoctor -> TerminateRefer)",
      "(GetRefer . CheckIn) & SeeDoctor",
      "!UpdateRefer . GetReimburse",
      "GetRefer[out.balance > 5000]",
  };
  for (const char* q : queries) {
    expect_sharded_identical(*parse_pattern(q), index);
  }
}

TEST(ShardDifferentialTest, AllRecordsOneWid) {
  const Log log = make_log("a b a b a b");
  const LogIndex index(log);
  expect_sharded_identical(*parse_pattern("a -> b"), index);
  expect_sharded_identical(*parse_pattern("a . b"), index);
}

TEST(ShardDifferentialTest, CompletionOrderHookShuffles) {
  // The injectable scheduler: evaluate shards in adversarial completion
  // orders; the gather must erase any trace of the order.
  const Log log = workload::random_process(24, 5);
  const LogIndex index(log);
  const PatternPtr p = parse_pattern("A0 -> A2");
  const std::string expected = serialize(Evaluator(index).evaluate(*p));
  Rng rng(17);
  for (const std::size_t k : {2, 3, 7, 16}) {
    const ShardPlan plan(index.wids(), k);
    std::vector<std::size_t> order(plan.num_shards());
    std::iota(order.begin(), order.end(), 0);
    for (int shuffle = 0; shuffle < 6; ++shuffle) {
      rng.shuffle(order);
      ShardEvalOptions opts;
      opts.completion_order = &order;
      EXPECT_EQ(serialize(evaluate_sharded(*p, index, plan, opts)), expected)
          << "K=" << k << " shuffle " << shuffle;
    }
  }
}

TEST(ShardDifferentialTest, EvalOptionsFlowThrough) {
  // max_span pruning and the operator-implementation toggle must shard
  // identically too.
  const Log log = workload::random_process(30, 9);
  const LogIndex index(log);
  const PatternPtr p = parse_pattern("A0 -> A1");
  for (const bool optimized : {true, false}) {
    for (const IsLsn span : {IsLsn{0}, IsLsn{3}}) {
      EvalOptions eopts;
      eopts.use_optimized_operators = optimized;
      eopts.max_span = span;
      const std::string expected =
          serialize(Evaluator(index, eopts).evaluate(*p));
      for (const std::size_t k : {2, 7}) {
        const ShardPlan plan(index.wids(), k);
        ShardEvalOptions opts;
        opts.eval = eopts;
        EXPECT_EQ(serialize(evaluate_sharded(*p, index, plan, opts)),
                  expected)
            << "optimized=" << optimized << " span=" << span << " K=" << k;
      }
    }
  }
}

// ----- differential: aggregates --------------------------------------------

TEST(ShardAggregateTest, CombineGroupsMatchesWholeFold) {
  const Log log = workload::clinic(80, 21);
  const LogIndex index(log);
  const IncidentSet set =
      Evaluator(index).evaluate(*parse_pattern("GetRefer -> SeeDoctor"));
  const GroupKey key{"GetRefer", MapSel::kOut, "hospital"};
  const auto expected = group_by_attribute(set, index, key);
  ASSERT_FALSE(expected.empty());
  for (const std::size_t k : {1, 2, 3, 7, 16, 64}) {
    const auto sharded = group_by_attribute_sharded(set, index, key, k);
    ASSERT_EQ(sharded.size(), expected.size()) << "K=" << k;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(sharded[i].key, expected[i].key) << "K=" << k;
      EXPECT_EQ(sharded[i].instances, expected[i].instances) << "K=" << k;
      EXPECT_EQ(sharded[i].incidents, expected[i].incidents) << "K=" << k;
    }
    ShardPool pool(2);
    const auto pooled = group_by_attribute_sharded(set, index, key, k, &pool);
    ASSERT_EQ(pooled.size(), expected.size()) << "K=" << k << " pooled";
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(pooled[i].instances, expected[i].instances)
          << "K=" << k << " pooled";
    }
  }
}

TEST(ShardAggregateTest, RandomizedGroupBySweep) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Log log = workload::clinic(10 + seed * 3, seed);
    const LogIndex index(log);
    const IncidentSet set = Evaluator(index).evaluate(
        *parse_pattern("GetRefer[out.balance > 3000]"));
    const GroupKey key{"GetRefer", MapSel::kOut, "hospital"};
    const auto expected = group_by_attribute(set, index, key);
    for (const std::size_t k : {2, 5, 13}) {
      const auto sharded = group_by_attribute_sharded(set, index, key, k);
      ASSERT_EQ(sharded.size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(sharded[i].instances, expected[i].instances);
        EXPECT_EQ(sharded[i].incidents, expected[i].incidents);
      }
    }
  }
}

// ----- differential: engine level (QueryOptions::shards) -------------------

TEST(ShardEngineTest, RunAndWhereClausesIdenticalAcrossShardCounts) {
  const Log log = workload::clinic(50, 13);
  const char* queries[] = {
      "UpdateRefer -> GetReimburse",
      "u:UpdateRefer -> r:GetReimburse where u.out.balance > 2000",
      "g:GetRefer -> s:SeeDoctor where g.out.hospital = s.in.hospital",
      "!UpdateRefer . GetReimburse",
  };
  QueryOptions serial_opts;
  const QueryEngine serial(log, serial_opts);
  for (const std::size_t k : {0, 2, 4, 16}) {  // 0 = hardware concurrency
    QueryOptions opts;
    opts.shards = k;
    const QueryEngine engine(log, opts);
    for (const char* q : queries) {
      EXPECT_EQ(serialize(engine.run(q)), serialize(serial.run(q)))
          << "K=" << k << " query " << q;
    }
    for (const char* q : queries) {
      EXPECT_EQ(engine.count(q), serial.count(q)) << q;
      EXPECT_EQ(engine.exists(q), serial.exists(q)) << q;
    }
  }
}

TEST(ShardEngineTest, RunBatchIdenticalWithAndWithoutMemo) {
  const Log log = workload::clinic(40, 4);
  const std::vector<std::string> texts = {
      "GetRefer -> SeeDoctor",
      "SeeDoctor -> PayTreatment",
      "(GetRefer -> SeeDoctor) | (SeeDoctor -> PayTreatment)",
      "this is not ( a valid query",  // error slot: isolation must survive
      "u:UpdateRefer -> r:GetReimburse where u.out.balance > 1000",
  };
  const QueryEngine serial(log, QueryOptions{});
  for (const std::size_t k : {2, 7}) {
    QueryOptions opts;
    opts.shards = k;
    const QueryEngine engine(log, opts);
    for (const bool use_cache : {true, false}) {
      const BatchResult expected = serial.run_batch(texts, 1, use_cache);
      const BatchResult sharded = engine.run_batch(texts, 1, use_cache);
      ASSERT_EQ(sharded.results.size(), expected.results.size());
      for (std::size_t q = 0; q < expected.results.size(); ++q) {
        EXPECT_EQ(serialize(sharded.results[q]),
                  serialize(expected.results[q]))
            << "K=" << k << " cache=" << use_cache << " q=" << q;
      }
    }
  }
}

TEST(ShardEngineTest, SingleInstanceLogAndOversharding) {
  const Log log = make_log("a b c ; a c b");
  for (const std::size_t k : {1, 2, 3, 64}) {
    QueryOptions opts;
    opts.shards = k;
    const QueryEngine engine(log, opts);
    EXPECT_LE(engine.shards(), log.wids().size());
    EXPECT_EQ(serialize(engine.run("a -> b").incidents),
              serialize(QueryEngine(log).run("a -> b").incidents))
        << "K=" << k;
  }
}

// ----- guard semantics across shard counts ---------------------------------

TEST(ShardGuardTest, PreCancelledTokenReportsCancelledForEveryK) {
  const Log log = workload::clinic(30, 2);
  for (const std::size_t k : {1, 4, 16}) {
    QueryOptions opts;
    opts.shards = k;
    opts.cancel = make_cancel_token();
    opts.cancel->store(true);  // cancelled before the run starts
    const QueryEngine engine(log, opts);
    const QueryResult r = engine.run("GetRefer -> GetReimburse");
    EXPECT_EQ(r.stop_reason, StopReason::kCancelled) << "K=" << k;
  }
}

TEST(ShardGuardTest, MidQueryCancelStopsShardedRun) {
  // Trip the token from another thread mid-evaluation: the sharded run
  // must come back flagged kCancelled (possibly complete if it won the
  // race, in which case kNone is also legal — assert no OTHER reason).
  const Log log = workload::clinic(300, 8);
  QueryOptions opts;
  opts.shards = 4;
  opts.cancel = make_cancel_token();
  const QueryEngine engine(log, opts);
  std::thread canceller([&] { opts.cancel->store(true); });
  const QueryResult r = engine.run("!UpdateRefer . !GetReimburse");
  canceller.join();
  EXPECT_TRUE(r.stop_reason == StopReason::kCancelled ||
              r.stop_reason == StopReason::kNone)
      << stop_reason_name(r.stop_reason);
}

TEST(ShardGuardTest, IncidentBudgetReportsSameReasonForEveryK) {
  // Truncated runs legitimately differ in WHICH incidents survive per K;
  // the acceptance contract is the identical stop_reason.
  const Log log = workload::clinic(60, 6);
  RunLimits limits;
  limits.max_incidents = 5;  // far below the true total
  const QueryResult serial =
      QueryEngine(log).run("GetRefer -> SeeDoctor", limits);
  ASSERT_EQ(serial.stop_reason, StopReason::kIncidentBudget);
  for (const std::size_t k : {2, 4, 16}) {
    QueryOptions opts;
    opts.shards = k;
    const QueryEngine engine(log, opts);
    const QueryResult r = engine.run("GetRefer -> SeeDoctor", limits);
    EXPECT_EQ(r.stop_reason, serial.stop_reason) << "K=" << k;
    EXPECT_TRUE(r.truncated()) << "K=" << k;
  }
}

TEST(ShardGuardTest, BudgetIsGlobalNotPerShard) {
  // A per-shard budget would let K shards emit ~budget*K incidents. The
  // guard is SHARED: once it trips, each shard stops at its next instance
  // boundary, so the worst-case overshoot is one in-flight instance per
  // shard — provably below the per-shard-budget failure mode.
  const Log log = workload::clinic(100, 14);
  const QueryResult full = QueryEngine(log).run("GetRefer -> SeeDoctor");
  ASSERT_TRUE(full.complete());
  std::size_t per_instance_max = 0;
  for (const IncidentSet::Group& g : full.incidents.groups()) {
    per_instance_max = std::max(per_instance_max, g.incidents.size());
  }
  RunLimits limits;
  limits.max_incidents = 10;
  ASSERT_GT(full.incidents.total(), limits.max_incidents);
  for (const std::size_t k : {1, 4, 16}) {
    QueryOptions opts;
    opts.shards = k;
    const QueryEngine engine(log, opts);
    const QueryResult r = engine.run("GetRefer -> SeeDoctor", limits);
    EXPECT_TRUE(r.truncated()) << "K=" << k;
    EXPECT_LE(r.incidents.total(),
              limits.max_incidents + k * per_instance_max)
        << "K=" << k << " — budget enforced per shard, not globally?";
    EXPECT_LT(r.incidents.total(), full.incidents.total()) << "K=" << k;
  }
}

// ----- log-layer shard views -----------------------------------------------

TEST(ShardInstancesTest, SubLogsPartitionTheLog) {
  const Log log = workload::random_process(40, 19);
  const std::size_t k = 4;
  std::size_t wids_seen = 0;
  for (std::size_t s = 0; s < k; ++s) {
    const Log sub = shard_instances(log, s, k);
    for (const Wid wid : sub.wids()) {
      // shard_instances re-numbers wids? No: instance filtering keeps wid
      // values, so membership must agree with the partitioner.
      EXPECT_EQ(shard_of_wid(wid, k), s);
    }
    wids_seen += sub.wids().size();
  }
  EXPECT_EQ(wids_seen, log.wids().size());
  EXPECT_THROW(shard_instances(log, 4, 4), Error);
}

TEST(ShardInstancesTest, ShardLogAnswersItsSliceOfAQuery) {
  const Log log = workload::clinic(30, 5);
  const std::size_t k = 3;
  const QueryEngine whole(log);
  const std::size_t total = whole.count("GetRefer -> SeeDoctor");
  std::size_t sum = 0;
  for (std::size_t s = 0; s < k; ++s) {
    const Log sub = shard_instances(log, s, k);
    sum += QueryEngine(sub).count("GetRefer -> SeeDoctor");
  }
  EXPECT_EQ(sum, total);
}

}  // namespace
}  // namespace wflog
