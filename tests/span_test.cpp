// Span-window evaluation (EvalOptions::max_span): CEP-style "within k
// consecutive positions" constraints, pruned at every operator.

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/parser.h"
#include "test_util.h"
#include "workflow/workload.h"

namespace wflog {
namespace {

using testing::brief;
using testing::eval;
using testing::make_log;

TEST(SpanTest, SequentialFilteredBySpan) {
  const Log log = make_log("a x x b a b");
  // a at 2, 6; b at 5, 7. Pairs: (2,5) span 3, (2,7) span 5, (6,7) span 1.
  EvalOptions w2;
  w2.max_span = 2;
  const IncidentList tight = eval(log, "a -> b", w2);
  ASSERT_EQ(tight.size(), 1u);
  EXPECT_EQ(brief(tight[0]), "w1:6,7");

  EvalOptions w4;
  w4.max_span = 4;
  EXPECT_EQ(eval(log, "a -> b", w4).size(), 2u);

  EXPECT_EQ(eval(log, "a -> b").size(), 3u);  // no window
}

TEST(SpanTest, WindowOfOneKeepsOnlySingletons) {
  const Log log = make_log("a b");
  EvalOptions w1;
  w1.max_span = 1;
  EXPECT_EQ(eval(log, "a", w1).size(), 1u);      // span 0 passes
  EXPECT_TRUE(eval(log, "a -> b", w1).empty());  // any pair has span >= 1
  EXPECT_TRUE(eval(log, "a . b", w1).empty());
}

TEST(SpanTest, ConsecutivePairsHaveSpanOne) {
  const Log log = make_log("a b x a x b");
  EvalOptions w2;
  w2.max_span = 2;
  // a.b: only the adjacent pair (2,3).
  EXPECT_EQ(eval(log, "a . b", w2).size(), 1u);
}

TEST(SpanTest, AppliesToParallelAndChoice) {
  const Log log = make_log("a x x x b ; b a");
  EvalOptions w3;
  w3.max_span = 3;
  // Parallel {a,b}: instance 1 span 4 (pruned), instance 2 span 1 (kept).
  const IncidentList par = eval(log, "a & b", w3);
  ASSERT_EQ(par.size(), 1u);
  EXPECT_EQ(par[0].wid(), 2u);
  // Choice of singletons: spans 0, all kept.
  EXPECT_EQ(eval(log, "a | b", w3).size(), 4u);
}

TEST(SpanTest, PruningMatchesPostFiltering) {
  // Property: windowed evaluation == unwindowed evaluation followed by a
  // span filter on the final incidents.
  const Log log = workload::random_process(30, 17);
  const LogIndex index(log);
  const char* queries[] = {"A0 -> A1", "A0 -> (A1 | A2)", "(A0 & A1) -> A2",
                           "A0 . A1 -> A2"};
  for (IsLsn window : {IsLsn{2}, IsLsn{4}, IsLsn{8}}) {
    EvalOptions windowed;
    windowed.max_span = window;
    for (const char* q : queries) {
      IncidentList expected = eval(log, q);
      std::erase_if(expected, [window](const Incident& o) {
        return o.last() - o.first() >= window;
      });
      EXPECT_EQ(eval(log, q, windowed), expected)
          << q << " window " << window;
    }
  }
}

TEST(SpanTest, CountAndExistsHonorWindow) {
  const Log log = make_log("a x x b");
  const LogIndex index(log);
  EvalOptions w2;
  w2.max_span = 2;
  const Evaluator ev(index, w2);
  // The only a->b pair has span 3: the (window-aware) slow path must be
  // used instead of the linear DP and report nothing.
  EXPECT_EQ(ev.count(*parse_pattern("a -> b")), 0u);
  EXPECT_FALSE(ev.exists(*parse_pattern("a -> b")));
}

}  // namespace
}  // namespace wflog
