#include "common/value.h"

#include <gtest/gtest.h>

namespace wflog {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.kind(), ValueKind::kNull);
  EXPECT_FALSE(v.is_numeric());
}

TEST(ValueTest, IntAccessors) {
  Value v{std::int64_t{42}};
  EXPECT_EQ(v.kind(), ValueKind::kInt);
  EXPECT_TRUE(v.is_numeric());
  EXPECT_EQ(v.as_int(), 42);
  EXPECT_DOUBLE_EQ(v.numeric(), 42.0);
}

TEST(ValueTest, DoubleAccessors) {
  Value v{2.5};
  EXPECT_EQ(v.kind(), ValueKind::kDouble);
  EXPECT_TRUE(v.is_numeric());
  EXPECT_DOUBLE_EQ(v.as_double(), 2.5);
}

TEST(ValueTest, BoolAndString) {
  EXPECT_TRUE(Value{true}.as_bool());
  EXPECT_EQ(Value{"hi"}.as_string(), "hi");
  EXPECT_EQ(Value{std::string("hi")}.kind(), ValueKind::kString);
}

TEST(ValueTest, WrongAccessorThrows) {
  EXPECT_THROW(Value{std::int64_t{1}}.as_string(), std::bad_variant_access);
  EXPECT_THROW(Value{"x"}.as_int(), std::bad_variant_access);
}

TEST(ValueTest, IntDoubleCrossKindEquality) {
  EXPECT_EQ(Value{std::int64_t{5}}, Value{5.0});
  EXPECT_NE(Value{std::int64_t{5}}, Value{5.5});
  EXPECT_EQ(Value{std::int64_t{5}}.hash(), Value{5.0}.hash());
}

TEST(ValueTest, EqualityWithinKinds) {
  EXPECT_EQ(Value{"a"}, Value{"a"});
  EXPECT_NE(Value{"a"}, Value{"b"});
  EXPECT_EQ(Value{}, Value{});
  EXPECT_NE(Value{}, Value{std::int64_t{0}});
  EXPECT_NE(Value{true}, Value{false});
}

TEST(ValueTest, CompareNumeric) {
  EXPECT_LT(Value{std::int64_t{1}}.compare(Value{std::int64_t{2}}), 0);
  EXPECT_GT(Value{2.5}.compare(Value{std::int64_t{2}}), 0);
  EXPECT_EQ(Value{std::int64_t{2}}.compare(Value{2.0}), 0);
}

TEST(ValueTest, CompareAcrossKindsIsTotal) {
  // null < numeric < bool < string.
  EXPECT_LT(Value{}.compare(Value{std::int64_t{0}}), 0);
  EXPECT_LT(Value{std::int64_t{999}}.compare(Value{false}), 0);
  EXPECT_LT(Value{true}.compare(Value{""}), 0);
  EXPECT_LT(Value{"a"}.compare(Value{"b"}), 0);
}

TEST(ValueTest, ToStringScalars) {
  EXPECT_EQ(Value{}.to_string(), "null");
  EXPECT_EQ(Value{std::int64_t{-7}}.to_string(), "-7");
  EXPECT_EQ(Value{true}.to_string(), "true");
  EXPECT_EQ(Value{false}.to_string(), "false");
  EXPECT_EQ(Value{2.5}.to_string(), "2.5");
}

TEST(ValueTest, DoubleToStringKeepsDoubleMark) {
  // Integral doubles round-trip as doubles, not ints.
  EXPECT_EQ(Value{3.0}.to_string(), "3.0");
}

TEST(ValueTest, PlainStringUnquoted) {
  EXPECT_EQ(Value{"active"}.to_string(), "active");
  EXPECT_EQ(Value{"Public Hospital"}.to_string(), "Public Hospital");
}

TEST(ValueTest, ReservedStringsQuoted) {
  EXPECT_EQ(Value{"a;b"}.to_string(), "\"a;b\"");
  EXPECT_EQ(Value{"true"}.to_string(), "\"true\"");
  EXPECT_EQ(Value{""}.to_string(), "\"\"");
  EXPECT_EQ(Value{"say \"hi\""}.to_string(), "\"say \\\"hi\\\"\"");
}

TEST(ValueTest, ParseScalars) {
  EXPECT_EQ(Value::parse("42"), Value{std::int64_t{42}});
  EXPECT_EQ(Value::parse("-3"), Value{std::int64_t{-3}});
  EXPECT_EQ(Value::parse("2.5"), Value{2.5});
  EXPECT_EQ(Value::parse("true"), Value{true});
  EXPECT_EQ(Value::parse("false"), Value{false});
  EXPECT_EQ(Value::parse("null"), Value{});
  EXPECT_EQ(Value::parse(""), Value{});
}

TEST(ValueTest, ParseStringsFallThrough) {
  EXPECT_EQ(Value::parse("active"), Value{"active"});
  // Partial numeric prefix is not a number.
  EXPECT_EQ(Value::parse("034d1"), Value{"034d1"});
  EXPECT_EQ(Value::parse("12abc"), Value{"12abc"});
}

TEST(ValueTest, ParseQuotedString) {
  EXPECT_EQ(Value::parse("\"true\""), Value{"true"});
  EXPECT_EQ(Value::parse("\"a;b\""), Value{"a;b"});
  EXPECT_EQ(Value::parse("\"say \\\"hi\\\"\""), Value{"say \"hi\""});
}

TEST(ValueTest, RoundTripPrintParse) {
  const Value samples[] = {
      Value{},          Value{std::int64_t{0}}, Value{std::int64_t{-99}},
      Value{3.25},      Value{3.0},             Value{true},
      Value{false},     Value{"plain"},         Value{"with space"},
      Value{"a=b;c,d"}, Value{"true"},          Value{""},
  };
  for (const Value& v : samples) {
    EXPECT_EQ(Value::parse(v.to_string()), v) << v.to_string();
  }
}

TEST(ValueTest, HashDistinguishesKinds) {
  EXPECT_NE(Value{}.hash(), Value{std::int64_t{0}}.hash());
  EXPECT_NE(Value{"1"}.hash(), Value{std::int64_t{1}}.hash());
}

}  // namespace
}  // namespace wflog
