#!/usr/bin/env sh
# Builds the test suite under a sanitizer and runs it.
# Usage: tests/run_sanitized.sh [thread] [ctest args...]
#   (default)  AddressSanitizer + UBSan in build-sanitize/
#   thread     ThreadSanitizer in build-tsan/ (the shard pool / parallel
#              scheduler race tier)
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

preset=asan-ubsan
if [ "${1:-}" = "thread" ]; then
  preset=tsan
  shift
fi

# --preset resolves against the CURRENT directory's CMakePresets.json, so
# pin the cwd before any preset call — the script must work from anywhere.
cd "$repo"

cmake --preset "$preset" -S "$repo"
cmake --build --preset "$preset" -j "$(nproc)"

if [ "$preset" = "tsan" ]; then
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
else
  export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
fi

ctest --preset "$preset" "$@"
