#!/usr/bin/env sh
# Builds the test suite under AddressSanitizer + UBSan and runs it.
# Usage: tests/run_sanitized.sh [ctest args...]
# The sanitized tree lives in build-sanitize/ (separate from build/).
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

cmake --preset asan-ubsan -S "$repo"
cmake --build --preset asan-ubsan -j "$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

cd "$repo"
ctest --preset asan-ubsan "$@"
