#include "log/log.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "log/builder.h"
#include "log/validate.h"
#include "test_util.h"

namespace wflog {
namespace {

using testing::make_log;

// ----- LogBuilder ------------------------------------------------------

TEST(LogBuilderTest, EmitsStartAndEnd) {
  LogBuilder b;
  const Wid w = b.begin_instance();
  b.append(w, "GetRefer");
  b.end_instance(w);
  const Log log = b.build();

  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.record(1).activity, log.start_symbol());
  EXPECT_EQ(log.activity_name(log.record(2).activity), "GetRefer");
  EXPECT_EQ(log.record(3).activity, log.end_symbol());
}

TEST(LogBuilderTest, AssignsConsecutiveIsLsn) {
  LogBuilder b;
  const Wid w = b.begin_instance();
  b.append(w, "a");
  b.append(w, "b");
  b.end_instance(w);
  const Log log = b.build();
  for (std::size_t i = 1; i <= log.size(); ++i) {
    EXPECT_EQ(log.record(i).is_lsn, i);
  }
}

TEST(LogBuilderTest, InterleavedInstances) {
  LogBuilder b;
  const Wid w1 = b.begin_instance();
  const Wid w2 = b.begin_instance();
  b.append(w1, "a");
  b.append(w2, "a");
  b.append(w1, "b");
  b.end_instance(w2);
  const Log log = b.build();
  EXPECT_EQ(log.size(), 6u);
  EXPECT_EQ(log.wids(), (std::vector<Wid>{w1, w2}));
}

TEST(LogBuilderTest, ExplicitWid) {
  LogBuilder b;
  EXPECT_EQ(b.begin_instance(42), 42u);
  EXPECT_THROW(b.begin_instance(42), Error);
}

TEST(LogBuilderTest, AutoWidSkipsTakenIds) {
  LogBuilder b;
  b.begin_instance(1);
  b.begin_instance(2);
  const Wid w = b.begin_instance();
  EXPECT_EQ(w, 3u);
}

TEST(LogBuilderTest, AppendToUnknownInstanceThrows) {
  LogBuilder b;
  EXPECT_THROW(b.append(9, "a"), Error);
}

TEST(LogBuilderTest, AppendAfterEndThrows) {
  LogBuilder b;
  const Wid w = b.begin_instance();
  b.end_instance(w);
  EXPECT_THROW(b.append(w, "a"), Error);
  EXPECT_THROW(b.end_instance(w), Error);
}

TEST(LogBuilderTest, ReservedActivityNamesRejected) {
  LogBuilder b;
  const Wid w = b.begin_instance();
  EXPECT_THROW(b.append(w, "START"), Error);
  EXPECT_THROW(b.append(w, "END"), Error);
}

TEST(LogBuilderTest, OpenInstanceAllowed) {
  LogBuilder b;
  const Wid w = b.begin_instance();
  b.append(w, "a");
  const Log log = b.build();  // no END: Definition 2 permits this
  EXPECT_EQ(log.size(), 2u);
}

// ----- Definition 2 validation ----------------------------------------

std::vector<LogRecord> records_of(const Log& log) {
  return {log.begin(), log.end()};
}

TEST(ValidateTest, WellFormedLogPasses) {
  const Log log = make_log("a b c ; a c");
  EXPECT_TRUE(check_well_formed(records_of(log), log.interner()).empty());
}

TEST(ValidateTest, EmptyLogFails) {
  Interner in;
  const auto violations = check_well_formed({}, in);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("NONEMPTY"), std::string::npos);
}

TEST(ValidateTest, Condition1LsnGap) {
  const Log log = make_log("a b");
  auto records = records_of(log);
  records[1].lsn = 99;  // break the bijection
  std::sort(records.begin(), records.end(),
            [](const LogRecord& a, const LogRecord& b) {
              return a.lsn < b.lsn;
            });
  const auto violations = check_well_formed(records, log.interner());
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("condition 1"), std::string::npos);
}

TEST(ValidateTest, Condition2FirstRecordMustBeStart) {
  const Log log = make_log("a");
  auto records = records_of(log);
  records[0].activity = records[1].activity;  // START -> a
  const auto violations = check_well_formed(records, log.interner());
  EXPECT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("condition 2"), std::string::npos);
}

TEST(ValidateTest, Condition2StartOnlyAtIsLsn1) {
  // A START record in the middle of an instance violates condition 2.
  Interner in;
  const Symbol start = in.intern("START");
  const Symbol a = in.intern("a");
  std::vector<LogRecord> records(3);
  records[0] = LogRecord{1, 1, 1, start, {}, {}};
  records[1] = LogRecord{2, 1, 2, a, {}, {}};
  records[2] = LogRecord{3, 1, 3, start, {}, {}};
  const auto violations = check_well_formed(records, in);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("condition 2"), std::string::npos);
}

TEST(ValidateTest, Condition3IsLsnGap) {
  Interner in;
  const Symbol start = in.intern("START");
  const Symbol a = in.intern("a");
  std::vector<LogRecord> records(2);
  records[0] = LogRecord{1, 1, 1, start, {}, {}};
  records[1] = LogRecord{2, 1, 3, a, {}, {}};  // skips is-lsn 2
  const auto violations = check_well_formed(records, in);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("condition 3"), std::string::npos);
}

TEST(ValidateTest, Condition4RecordAfterEnd) {
  Interner in;
  const Symbol start = in.intern("START");
  const Symbol end = in.intern("END");
  const Symbol a = in.intern("a");
  std::vector<LogRecord> records(3);
  records[0] = LogRecord{1, 1, 1, start, {}, {}};
  records[1] = LogRecord{2, 1, 2, end, {}, {}};
  records[2] = LogRecord{3, 1, 3, a, {}, {}};
  const auto violations = check_well_formed(records, in);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("condition 4"), std::string::npos);
}

TEST(ValidateTest, SentinelWithAttributesRejected) {
  Interner in;
  const Symbol start = in.intern("START");
  std::vector<LogRecord> records(1);
  records[0] = LogRecord{1, 1, 1, start, {}, {}};
  records[0].out.set(in.intern("x"), Value{std::int64_t{1}});
  const auto violations = check_well_formed(records, in);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("empty input and output"), std::string::npos);
}

TEST(ValidateTest, ValidateThrowsWithAllViolations) {
  Interner in;
  const Symbol a = in.intern("a");
  std::vector<LogRecord> records(1);
  records[0] = LogRecord{1, 1, 1, a, {}, {}};  // is-lsn 1 but not START
  EXPECT_THROW(validate_well_formed(records, in), ValidationError);
}

// ----- Log -------------------------------------------------------------

TEST(LogTest, FromRecordsSortsAndValidates) {
  Interner in;
  const Symbol start = in.intern("START");
  const Symbol a = in.intern("a");
  // Records deliberately out of order.
  std::vector<LogRecord> records(2);
  records[0] = LogRecord{2, 1, 2, a, {}, {}};
  records[1] = LogRecord{1, 1, 1, start, {}, {}};
  const Log log = Log::from_records(std::move(records), std::move(in));
  EXPECT_EQ(log.record(1).is_lsn, 1u);
  EXPECT_EQ(log.record(2).is_lsn, 2u);
}

TEST(LogTest, FromRecordsRejectsBadLog) {
  Interner in;
  const Symbol a = in.intern("a");
  std::vector<LogRecord> records(1);
  records[0] = LogRecord{1, 1, 2, a, {}, {}};
  EXPECT_THROW(Log::from_records(std::move(records), std::move(in)),
               ValidationError);
}

TEST(LogTest, WidsInFirstAppearanceOrder) {
  LogBuilder b;
  b.begin_instance(7);
  b.begin_instance(3);
  b.begin_instance(5);
  const Log log = b.build();
  EXPECT_EQ(log.wids(), (std::vector<Wid>{7, 3, 5}));
}

TEST(LogTest, ActivitySymbolLookup) {
  const Log log = make_log("GetRefer CheckIn");
  EXPECT_NE(log.activity_symbol("GetRefer"), kNoSymbol);
  EXPECT_EQ(log.activity_symbol("Nonexistent"), kNoSymbol);
}

TEST(LogTest, MoveKeepsInternerStable) {
  Log log = make_log("alpha beta");
  const Symbol a = log.activity_symbol("alpha");
  Log moved = std::move(log);
  EXPECT_EQ(moved.activity_name(a), "alpha");
}

}  // namespace
}  // namespace wflog
