#include "core/evaluator.h"

#include <gtest/gtest.h>

#include "core/parser.h"
#include "test_util.h"
#include "workflow/clinic.h"

namespace wflog {
namespace {

using testing::brief;
using testing::briefs;
using testing::eval;
using testing::inc;
using testing::make_log;

// ----- atomic patterns --------------------------------------------------

TEST(EvaluatorAtomTest, PositiveAtomMatchesAllOccurrences) {
  const Log log = make_log("a b a ; b a");
  // Instance 1: START a b a END -> a at 2, 4; instance 2: a at 3.
  const IncidentList out = eval(log, "a");
  EXPECT_EQ(briefs(out),
            (std::vector<std::string>{"w1:2", "w1:4", "w2:3"}));
}

TEST(EvaluatorAtomTest, UnknownActivityMatchesNothing) {
  const Log log = make_log("a b");
  EXPECT_TRUE(eval(log, "zzz").empty());
}

TEST(EvaluatorAtomTest, NegativeAtomMatchesComplement) {
  const Log log = make_log("a b");
  // Records: START(1) a(2) b(3) END(4); ¬a matches 1, 3, 4 by default.
  EXPECT_EQ(briefs(eval(log, "!a")),
            (std::vector<std::string>{"w1:1", "w1:3", "w1:4"}));
}

TEST(EvaluatorAtomTest, NegationSentinelOptOut) {
  const Log log = make_log("a b");
  EvalOptions opts;
  opts.negation_matches_sentinels = false;
  EXPECT_EQ(briefs(eval(log, "!a", opts)),
            (std::vector<std::string>{"w1:3"}));
}

TEST(EvaluatorAtomTest, NegationOfUnknownActivityMatchesEverything) {
  const Log log = make_log("a");
  EXPECT_EQ(eval(log, "!zzz").size(), 3u);  // START a END
}

// ----- the paper's worked examples on Figure 3 --------------------------

class Figure3Test : public ::testing::Test {
 protected:
  Figure3Test() : log_(figure3_log()), index_(log_), eval_(index_) {}

  IncidentList run(std::string_view pattern) const {
    return eval_.evaluate(*parse_pattern(pattern)).flatten();
  }

  Log log_;
  LogIndex index_;
  Evaluator eval_;
};

TEST_F(Figure3Test, LogShapeMatchesPaper) {
  ASSERT_EQ(log_.size(), 20u);
  EXPECT_EQ(log_.wids(), (std::vector<Wid>{1, 2, 3}));
  // Example 1: record lsn=4 is CheckIn of wid 1, is-lsn 3.
  const LogRecord& l4 = log_.record(4);
  EXPECT_EQ(log_.activity_name(l4.activity), "CheckIn");
  EXPECT_EQ(l4.wid, 1u);
  EXPECT_EQ(l4.is_lsn, 3u);
  EXPECT_EQ(*l4.in.get(log_.interner().find("referId")), Value{"034d1"});
  EXPECT_EQ(*l4.out.get(log_.interner().find("referState")),
            Value{"active"});
}

TEST_F(Figure3Test, Example3UpdateBeforeReimburse) {
  // "UpdateRefer ≫ GetReimburse" has exactly one incident: {l14, l20},
  // i.e. wid 2, is-lsns 5 and 9.
  const IncidentList out = run("UpdateRefer -> GetReimburse");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].wid(), 2u);
  EXPECT_EQ(out[0].positions(), (std::vector<IsLsn>{5, 9}));
  EXPECT_EQ(log_.record(14).is_lsn, 5u);  // l14 = UpdateRefer
  EXPECT_EQ(log_.record(20).is_lsn, 9u);  // l20 = GetReimburse
}

TEST_F(Figure3Test, Example5SeeDoctorThenUpdateThenReimburse) {
  // "SeeDoctor ≫ (UpdateRefer ≫ GetReimburse)": only SeeDoctor at l13
  // (wid 2, is-lsn 4) precedes the UpdateRefer at is-lsn 5; l17 (is-lsn 6)
  // does not. One incident {l13, l14, l20}. (The paper's Example 3 prints
  // {l13, l14, l19} — l19 is TakeTreatment; see DESIGN.md §6.)
  const IncidentList out = run("SeeDoctor -> (UpdateRefer -> GetReimburse)");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].wid(), 2u);
  EXPECT_EQ(out[0].positions(), (std::vector<IsLsn>{4, 5, 9}));
}

TEST_F(Figure3Test, Example5LeftGroupingGivesSameAnswer) {
  // Theorem 2: associativity of ≫.
  const IncidentList grouped_right =
      run("SeeDoctor -> (UpdateRefer -> GetReimburse)");
  const IncidentList grouped_left =
      run("(SeeDoctor -> UpdateRefer) -> GetReimburse");
  EXPECT_EQ(grouped_right, grouped_left);
}

TEST_F(Figure3Test, SeeDoctorOccurrencesMatchExample5) {
  // incL(SeeDoctor) = {l9, l11, l13, l17}.
  const IncidentList out = run("SeeDoctor");
  EXPECT_EQ(briefs(out),
            (std::vector<std::string>{"w1:4", "w1:6", "w2:4", "w2:6"}));
}

TEST_F(Figure3Test, ConsecutivePayAfterSee) {
  // SeeDoctor . PayTreatment: wid1 (4,5), (6,7); wid2 (6,7).
  const IncidentList out = run("SeeDoctor . PayTreatment");
  EXPECT_EQ(briefs(out),
            (std::vector<std::string>{"w1:4,5", "w1:6,7", "w2:6,7"}));
}

TEST_F(Figure3Test, ParallelSharesNoRecords) {
  // SeeDoctor ⊕ SeeDoctor pairs distinct SeeDoctor records per instance.
  const IncidentList out = run("SeeDoctor & SeeDoctor");
  EXPECT_EQ(briefs(out),
            (std::vector<std::string>{"w1:4,6", "w2:4,6"}));
}

TEST_F(Figure3Test, ChoiceUnion) {
  const IncidentList out = run("UpdateRefer | TakeTreatment");
  EXPECT_EQ(briefs(out), (std::vector<std::string>{"w2:5", "w2:8"}));
}

TEST_F(Figure3Test, PredicateBalanceOver5000) {
  // Only wid 2's UpdateRefer writes balance 5000; > 4999 matches it.
  const IncidentList out = run("UpdateRefer[out.balance > 4999]");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(brief(out[0]), "w2:5");
}

TEST_F(Figure3Test, CountAndExists) {
  EXPECT_TRUE(eval_.exists(*parse_pattern("UpdateRefer -> GetReimburse")));
  EXPECT_FALSE(eval_.exists(*parse_pattern("GetReimburse -> UpdateRefer")));
  EXPECT_EQ(eval_.count(*parse_pattern("SeeDoctor")), 4u);
  EXPECT_EQ(eval_.count(*parse_pattern("GetRefer")), 3u);
}

// ----- cross-instance isolation ----------------------------------------

TEST(EvaluatorScopeTest, IncidentsNeverSpanInstances) {
  // "a" in instance 1, "b" in instance 2: a -> b must be empty.
  const Log log = make_log("a ; b");
  EXPECT_TRUE(eval(log, "a -> b").empty());
}

TEST(EvaluatorScopeTest, PerInstanceGrouping) {
  const Log log = make_log("a b ; a b ; a");
  LogIndex index(log);
  Evaluator ev(index);
  const IncidentSet set = ev.evaluate(*parse_pattern("a -> b"));
  EXPECT_EQ(set.num_groups(), 2u);  // instance 3 has no b
  EXPECT_NE(set.find(1), nullptr);
  EXPECT_NE(set.find(2), nullptr);
  EXPECT_EQ(set.find(3), nullptr);
}

// ----- operator semantics through full patterns -------------------------

TEST(EvaluatorSemanticsTest, ConsecutiveIsStrictAdjacency) {
  const Log log = make_log("a x b ; a b");
  // Instance 1: a(2) x(3) b(4): not adjacent. Instance 2: a(2) b(3).
  EXPECT_EQ(briefs(eval(log, "a . b")),
            (std::vector<std::string>{"w2:2,3"}));
}

TEST(EvaluatorSemanticsTest, SequentialAllowsGap) {
  const Log log = make_log("a x b");
  EXPECT_EQ(briefs(eval(log, "a -> b")),
            (std::vector<std::string>{"w1:2,4"}));
}

TEST(EvaluatorSemanticsTest, SequentialDirectionality) {
  const Log log = make_log("b a");
  EXPECT_TRUE(eval(log, "a -> b").empty());
  EXPECT_EQ(eval(log, "b -> a").size(), 1u);
}

TEST(EvaluatorSemanticsTest, ParallelShuffle) {
  // (a -> c) & b: {2,5} vs {3}: interleaved but disjoint -> match.
  const Log log = make_log("a b x c");
  const IncidentList out = eval(log, "(a -> c) & b");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(brief(out[0]), "w1:2,3,5");
}

TEST(EvaluatorSemanticsTest, ParallelRejectsSharedRecord) {
  const Log log = make_log("a b");
  // a & a: single a record can't be shared.
  EXPECT_TRUE(eval(log, "a & a").empty());
}

TEST(EvaluatorSemanticsTest, ChoiceOfIdenticalPatternsIsIdempotent) {
  const Log log = make_log("a a");
  // inc(a|a) == inc(a): dedup required and applied.
  EXPECT_EQ(eval(log, "a | a"), eval(log, "a"));
}

TEST(EvaluatorSemanticsTest, ChoiceWithNegationDedups) {
  const Log log = make_log("a b");
  // "a" ⊆ "!b" here; union must not duplicate the a record.
  const IncidentList out = eval(log, "a | !b");
  // !b matches START(1), a(2), END(4); a matches 2. Union: {1},{2},{4}.
  EXPECT_EQ(out.size(), 3u);
}

TEST(EvaluatorSemanticsTest, NaiveAndOptimizedAgreeOnPatterns) {
  const Log log = make_log("a b a c b ; c a b a ; b c a");
  const char* queries[] = {
      "a",      "!a",          "a . b",          "a -> b",
      "a | b",  "a & b",       "(a -> b) | c",   "(a | b) & c",
      "a -> (b | c)", "(a . b) & (c | a)", "!c -> a",
  };
  EvalOptions naive;
  naive.use_optimized_operators = false;
  for (const char* q : queries) {
    EXPECT_EQ(eval(log, q), eval(log, q, naive)) << q;
  }
}

TEST(EvaluatorSemanticsTest, CountersAdvance) {
  const Log log = make_log("a b a b");
  LogIndex index(log);
  Evaluator ev(index);
  ev.evaluate(*parse_pattern("a -> b"));
  EXPECT_GT(ev.counters().operator_nodes_evaluated, 0u);
  EXPECT_GT(ev.counters().incidents_emitted, 0u);
  ev.reset_counters();
  EXPECT_EQ(ev.counters().operator_nodes_evaluated, 0u);
}

TEST(EvaluatorSemanticsTest, SentinelsQueryableDirectly) {
  const Log log = make_log("a ; b ...");
  EXPECT_EQ(eval(log, "START").size(), 2u);
  EXPECT_EQ(eval(log, "END").size(), 1u);
  // Completed instances: START -> END.
  EXPECT_EQ(eval(log, "START -> END").size(), 1u);
}

}  // namespace
}  // namespace wflog
