file(REMOVE_RECURSE
  "libwflog_workflow.a"
)
