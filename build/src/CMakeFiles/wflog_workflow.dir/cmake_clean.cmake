file(REMOVE_RECURSE
  "CMakeFiles/wflog_workflow.dir/workflow/clinic.cpp.o"
  "CMakeFiles/wflog_workflow.dir/workflow/clinic.cpp.o.d"
  "CMakeFiles/wflog_workflow.dir/workflow/discovery.cpp.o"
  "CMakeFiles/wflog_workflow.dir/workflow/discovery.cpp.o.d"
  "CMakeFiles/wflog_workflow.dir/workflow/dot.cpp.o"
  "CMakeFiles/wflog_workflow.dir/workflow/dot.cpp.o.d"
  "CMakeFiles/wflog_workflow.dir/workflow/model.cpp.o"
  "CMakeFiles/wflog_workflow.dir/workflow/model.cpp.o.d"
  "CMakeFiles/wflog_workflow.dir/workflow/procurement.cpp.o"
  "CMakeFiles/wflog_workflow.dir/workflow/procurement.cpp.o.d"
  "CMakeFiles/wflog_workflow.dir/workflow/random_model.cpp.o"
  "CMakeFiles/wflog_workflow.dir/workflow/random_model.cpp.o.d"
  "CMakeFiles/wflog_workflow.dir/workflow/simulator.cpp.o"
  "CMakeFiles/wflog_workflow.dir/workflow/simulator.cpp.o.d"
  "CMakeFiles/wflog_workflow.dir/workflow/workload.cpp.o"
  "CMakeFiles/wflog_workflow.dir/workflow/workload.cpp.o.d"
  "libwflog_workflow.a"
  "libwflog_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wflog_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
