
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workflow/clinic.cpp" "src/CMakeFiles/wflog_workflow.dir/workflow/clinic.cpp.o" "gcc" "src/CMakeFiles/wflog_workflow.dir/workflow/clinic.cpp.o.d"
  "/root/repo/src/workflow/discovery.cpp" "src/CMakeFiles/wflog_workflow.dir/workflow/discovery.cpp.o" "gcc" "src/CMakeFiles/wflog_workflow.dir/workflow/discovery.cpp.o.d"
  "/root/repo/src/workflow/dot.cpp" "src/CMakeFiles/wflog_workflow.dir/workflow/dot.cpp.o" "gcc" "src/CMakeFiles/wflog_workflow.dir/workflow/dot.cpp.o.d"
  "/root/repo/src/workflow/model.cpp" "src/CMakeFiles/wflog_workflow.dir/workflow/model.cpp.o" "gcc" "src/CMakeFiles/wflog_workflow.dir/workflow/model.cpp.o.d"
  "/root/repo/src/workflow/procurement.cpp" "src/CMakeFiles/wflog_workflow.dir/workflow/procurement.cpp.o" "gcc" "src/CMakeFiles/wflog_workflow.dir/workflow/procurement.cpp.o.d"
  "/root/repo/src/workflow/random_model.cpp" "src/CMakeFiles/wflog_workflow.dir/workflow/random_model.cpp.o" "gcc" "src/CMakeFiles/wflog_workflow.dir/workflow/random_model.cpp.o.d"
  "/root/repo/src/workflow/simulator.cpp" "src/CMakeFiles/wflog_workflow.dir/workflow/simulator.cpp.o" "gcc" "src/CMakeFiles/wflog_workflow.dir/workflow/simulator.cpp.o.d"
  "/root/repo/src/workflow/workload.cpp" "src/CMakeFiles/wflog_workflow.dir/workflow/workload.cpp.o" "gcc" "src/CMakeFiles/wflog_workflow.dir/workflow/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wflog_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wflog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
