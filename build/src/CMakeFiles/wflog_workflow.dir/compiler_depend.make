# Empty compiler generated dependencies file for wflog_workflow.
# This may be replaced when dependencies are built.
