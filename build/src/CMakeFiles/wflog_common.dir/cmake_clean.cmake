file(REMOVE_RECURSE
  "CMakeFiles/wflog_common.dir/common/interner.cpp.o"
  "CMakeFiles/wflog_common.dir/common/interner.cpp.o.d"
  "CMakeFiles/wflog_common.dir/common/text.cpp.o"
  "CMakeFiles/wflog_common.dir/common/text.cpp.o.d"
  "CMakeFiles/wflog_common.dir/common/value.cpp.o"
  "CMakeFiles/wflog_common.dir/common/value.cpp.o.d"
  "libwflog_common.a"
  "libwflog_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wflog_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
