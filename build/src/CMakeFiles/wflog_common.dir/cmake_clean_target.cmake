file(REMOVE_RECURSE
  "libwflog_common.a"
)
