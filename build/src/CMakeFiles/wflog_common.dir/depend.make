# Empty dependencies file for wflog_common.
# This may be replaced when dependencies are built.
