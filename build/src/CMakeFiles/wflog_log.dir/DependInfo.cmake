
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/log/builder.cpp" "src/CMakeFiles/wflog_log.dir/log/builder.cpp.o" "gcc" "src/CMakeFiles/wflog_log.dir/log/builder.cpp.o.d"
  "/root/repo/src/log/index.cpp" "src/CMakeFiles/wflog_log.dir/log/index.cpp.o" "gcc" "src/CMakeFiles/wflog_log.dir/log/index.cpp.o.d"
  "/root/repo/src/log/io_csv.cpp" "src/CMakeFiles/wflog_log.dir/log/io_csv.cpp.o" "gcc" "src/CMakeFiles/wflog_log.dir/log/io_csv.cpp.o.d"
  "/root/repo/src/log/io_jsonl.cpp" "src/CMakeFiles/wflog_log.dir/log/io_jsonl.cpp.o" "gcc" "src/CMakeFiles/wflog_log.dir/log/io_jsonl.cpp.o.d"
  "/root/repo/src/log/io_xes.cpp" "src/CMakeFiles/wflog_log.dir/log/io_xes.cpp.o" "gcc" "src/CMakeFiles/wflog_log.dir/log/io_xes.cpp.o.d"
  "/root/repo/src/log/log.cpp" "src/CMakeFiles/wflog_log.dir/log/log.cpp.o" "gcc" "src/CMakeFiles/wflog_log.dir/log/log.cpp.o.d"
  "/root/repo/src/log/record.cpp" "src/CMakeFiles/wflog_log.dir/log/record.cpp.o" "gcc" "src/CMakeFiles/wflog_log.dir/log/record.cpp.o.d"
  "/root/repo/src/log/slice.cpp" "src/CMakeFiles/wflog_log.dir/log/slice.cpp.o" "gcc" "src/CMakeFiles/wflog_log.dir/log/slice.cpp.o.d"
  "/root/repo/src/log/stats.cpp" "src/CMakeFiles/wflog_log.dir/log/stats.cpp.o" "gcc" "src/CMakeFiles/wflog_log.dir/log/stats.cpp.o.d"
  "/root/repo/src/log/store.cpp" "src/CMakeFiles/wflog_log.dir/log/store.cpp.o" "gcc" "src/CMakeFiles/wflog_log.dir/log/store.cpp.o.d"
  "/root/repo/src/log/validate.cpp" "src/CMakeFiles/wflog_log.dir/log/validate.cpp.o" "gcc" "src/CMakeFiles/wflog_log.dir/log/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wflog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
