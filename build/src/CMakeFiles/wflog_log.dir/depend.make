# Empty dependencies file for wflog_log.
# This may be replaced when dependencies are built.
