file(REMOVE_RECURSE
  "CMakeFiles/wflog_log.dir/log/builder.cpp.o"
  "CMakeFiles/wflog_log.dir/log/builder.cpp.o.d"
  "CMakeFiles/wflog_log.dir/log/index.cpp.o"
  "CMakeFiles/wflog_log.dir/log/index.cpp.o.d"
  "CMakeFiles/wflog_log.dir/log/io_csv.cpp.o"
  "CMakeFiles/wflog_log.dir/log/io_csv.cpp.o.d"
  "CMakeFiles/wflog_log.dir/log/io_jsonl.cpp.o"
  "CMakeFiles/wflog_log.dir/log/io_jsonl.cpp.o.d"
  "CMakeFiles/wflog_log.dir/log/io_xes.cpp.o"
  "CMakeFiles/wflog_log.dir/log/io_xes.cpp.o.d"
  "CMakeFiles/wflog_log.dir/log/log.cpp.o"
  "CMakeFiles/wflog_log.dir/log/log.cpp.o.d"
  "CMakeFiles/wflog_log.dir/log/record.cpp.o"
  "CMakeFiles/wflog_log.dir/log/record.cpp.o.d"
  "CMakeFiles/wflog_log.dir/log/slice.cpp.o"
  "CMakeFiles/wflog_log.dir/log/slice.cpp.o.d"
  "CMakeFiles/wflog_log.dir/log/stats.cpp.o"
  "CMakeFiles/wflog_log.dir/log/stats.cpp.o.d"
  "CMakeFiles/wflog_log.dir/log/store.cpp.o"
  "CMakeFiles/wflog_log.dir/log/store.cpp.o.d"
  "CMakeFiles/wflog_log.dir/log/validate.cpp.o"
  "CMakeFiles/wflog_log.dir/log/validate.cpp.o.d"
  "libwflog_log.a"
  "libwflog_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wflog_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
