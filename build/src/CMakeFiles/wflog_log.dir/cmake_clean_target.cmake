file(REMOVE_RECURSE
  "libwflog_log.a"
)
