file(REMOVE_RECURSE
  "libwflog_core.a"
)
