
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregate.cpp" "src/CMakeFiles/wflog_core.dir/core/aggregate.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/aggregate.cpp.o.d"
  "/root/repo/src/core/batch.cpp" "src/CMakeFiles/wflog_core.dir/core/batch.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/batch.cpp.o.d"
  "/root/repo/src/core/bindings.cpp" "src/CMakeFiles/wflog_core.dir/core/bindings.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/bindings.cpp.o.d"
  "/root/repo/src/core/compliance.cpp" "src/CMakeFiles/wflog_core.dir/core/compliance.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/compliance.cpp.o.d"
  "/root/repo/src/core/cost.cpp" "src/CMakeFiles/wflog_core.dir/core/cost.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/cost.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/wflog_core.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/engine.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/CMakeFiles/wflog_core.dir/core/evaluator.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/evaluator.cpp.o.d"
  "/root/repo/src/core/explain.cpp" "src/CMakeFiles/wflog_core.dir/core/explain.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/explain.cpp.o.d"
  "/root/repo/src/core/incident.cpp" "src/CMakeFiles/wflog_core.dir/core/incident.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/incident.cpp.o.d"
  "/root/repo/src/core/join.cpp" "src/CMakeFiles/wflog_core.dir/core/join.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/join.cpp.o.d"
  "/root/repo/src/core/linear.cpp" "src/CMakeFiles/wflog_core.dir/core/linear.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/linear.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/CMakeFiles/wflog_core.dir/core/monitor.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/monitor.cpp.o.d"
  "/root/repo/src/core/operators.cpp" "src/CMakeFiles/wflog_core.dir/core/operators.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/operators.cpp.o.d"
  "/root/repo/src/core/operators_opt.cpp" "src/CMakeFiles/wflog_core.dir/core/operators_opt.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/operators_opt.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/CMakeFiles/wflog_core.dir/core/optimizer.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/optimizer.cpp.o.d"
  "/root/repo/src/core/parallel_eval.cpp" "src/CMakeFiles/wflog_core.dir/core/parallel_eval.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/parallel_eval.cpp.o.d"
  "/root/repo/src/core/parser.cpp" "src/CMakeFiles/wflog_core.dir/core/parser.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/parser.cpp.o.d"
  "/root/repo/src/core/pattern.cpp" "src/CMakeFiles/wflog_core.dir/core/pattern.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/pattern.cpp.o.d"
  "/root/repo/src/core/predicate.cpp" "src/CMakeFiles/wflog_core.dir/core/predicate.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/predicate.cpp.o.d"
  "/root/repo/src/core/printer.cpp" "src/CMakeFiles/wflog_core.dir/core/printer.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/printer.cpp.o.d"
  "/root/repo/src/core/rewriter.cpp" "src/CMakeFiles/wflog_core.dir/core/rewriter.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/rewriter.cpp.o.d"
  "/root/repo/src/core/synthetic.cpp" "src/CMakeFiles/wflog_core.dir/core/synthetic.cpp.o" "gcc" "src/CMakeFiles/wflog_core.dir/core/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wflog_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wflog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
