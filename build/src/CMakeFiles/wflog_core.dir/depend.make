# Empty dependencies file for wflog_core.
# This may be replaced when dependencies are built.
