file(REMOVE_RECURSE
  "CMakeFiles/clinic_test.dir/clinic_test.cpp.o"
  "CMakeFiles/clinic_test.dir/clinic_test.cpp.o.d"
  "clinic_test"
  "clinic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clinic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
