# Empty dependencies file for clinic_test.
# This may be replaced when dependencies are built.
