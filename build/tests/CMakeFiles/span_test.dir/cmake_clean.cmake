file(REMOVE_RECURSE
  "CMakeFiles/span_test.dir/span_test.cpp.o"
  "CMakeFiles/span_test.dir/span_test.cpp.o.d"
  "span_test"
  "span_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/span_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
