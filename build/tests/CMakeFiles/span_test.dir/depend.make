# Empty dependencies file for span_test.
# This may be replaced when dependencies are built.
