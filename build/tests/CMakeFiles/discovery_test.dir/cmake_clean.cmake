file(REMOVE_RECURSE
  "CMakeFiles/discovery_test.dir/discovery_test.cpp.o"
  "CMakeFiles/discovery_test.dir/discovery_test.cpp.o.d"
  "discovery_test"
  "discovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
