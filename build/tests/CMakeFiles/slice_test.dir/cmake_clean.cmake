file(REMOVE_RECURSE
  "CMakeFiles/slice_test.dir/slice_test.cpp.o"
  "CMakeFiles/slice_test.dir/slice_test.cpp.o.d"
  "slice_test"
  "slice_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
