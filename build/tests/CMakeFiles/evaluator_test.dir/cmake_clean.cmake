file(REMOVE_RECURSE
  "CMakeFiles/evaluator_test.dir/evaluator_test.cpp.o"
  "CMakeFiles/evaluator_test.dir/evaluator_test.cpp.o.d"
  "evaluator_test"
  "evaluator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
