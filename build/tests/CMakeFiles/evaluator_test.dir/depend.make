# Empty dependencies file for evaluator_test.
# This may be replaced when dependencies are built.
