file(REMOVE_RECURSE
  "CMakeFiles/join_test.dir/join_test.cpp.o"
  "CMakeFiles/join_test.dir/join_test.cpp.o.d"
  "join_test"
  "join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
