file(REMOVE_RECURSE
  "CMakeFiles/batch_test.dir/batch_test.cpp.o"
  "CMakeFiles/batch_test.dir/batch_test.cpp.o.d"
  "batch_test"
  "batch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
