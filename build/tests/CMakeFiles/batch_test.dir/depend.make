# Empty dependencies file for batch_test.
# This may be replaced when dependencies are built.
