file(REMOVE_RECURSE
  "CMakeFiles/rewriter_test.dir/rewriter_test.cpp.o"
  "CMakeFiles/rewriter_test.dir/rewriter_test.cpp.o.d"
  "rewriter_test"
  "rewriter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rewriter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
