# Empty compiler generated dependencies file for compliance_test.
# This may be replaced when dependencies are built.
