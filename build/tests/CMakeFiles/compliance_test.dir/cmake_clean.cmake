file(REMOVE_RECURSE
  "CMakeFiles/compliance_test.dir/compliance_test.cpp.o"
  "CMakeFiles/compliance_test.dir/compliance_test.cpp.o.d"
  "compliance_test"
  "compliance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compliance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
