file(REMOVE_RECURSE
  "CMakeFiles/xes_test.dir/xes_test.cpp.o"
  "CMakeFiles/xes_test.dir/xes_test.cpp.o.d"
  "xes_test"
  "xes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
