file(REMOVE_RECURSE
  "CMakeFiles/store_test.dir/store_test.cpp.o"
  "CMakeFiles/store_test.dir/store_test.cpp.o.d"
  "store_test"
  "store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
