file(REMOVE_RECURSE
  "CMakeFiles/parallel_eval_test.dir/parallel_eval_test.cpp.o"
  "CMakeFiles/parallel_eval_test.dir/parallel_eval_test.cpp.o.d"
  "parallel_eval_test"
  "parallel_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
