# Empty compiler generated dependencies file for parallel_eval_test.
# This may be replaced when dependencies are built.
