# Empty compiler generated dependencies file for procurement_test.
# This may be replaced when dependencies are built.
