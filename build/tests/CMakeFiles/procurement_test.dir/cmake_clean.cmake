file(REMOVE_RECURSE
  "CMakeFiles/procurement_test.dir/procurement_test.cpp.o"
  "CMakeFiles/procurement_test.dir/procurement_test.cpp.o.d"
  "procurement_test"
  "procurement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procurement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
