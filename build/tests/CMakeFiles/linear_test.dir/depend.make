# Empty dependencies file for linear_test.
# This may be replaced when dependencies are built.
