file(REMOVE_RECURSE
  "CMakeFiles/pattern_test.dir/pattern_test.cpp.o"
  "CMakeFiles/pattern_test.dir/pattern_test.cpp.o.d"
  "pattern_test"
  "pattern_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
