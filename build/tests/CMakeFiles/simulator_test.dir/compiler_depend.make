# Empty compiler generated dependencies file for simulator_test.
# This may be replaced when dependencies are built.
