file(REMOVE_RECURSE
  "CMakeFiles/bindings_test.dir/bindings_test.cpp.o"
  "CMakeFiles/bindings_test.dir/bindings_test.cpp.o.d"
  "bindings_test"
  "bindings_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bindings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
