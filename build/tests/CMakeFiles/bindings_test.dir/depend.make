# Empty dependencies file for bindings_test.
# This may be replaced when dependencies are built.
