file(REMOVE_RECURSE
  "CMakeFiles/incident_test.dir/incident_test.cpp.o"
  "CMakeFiles/incident_test.dir/incident_test.cpp.o.d"
  "incident_test"
  "incident_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incident_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
