# Empty compiler generated dependencies file for incident_test.
# This may be replaced when dependencies are built.
