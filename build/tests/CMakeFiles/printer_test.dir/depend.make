# Empty dependencies file for printer_test.
# This may be replaced when dependencies are built.
