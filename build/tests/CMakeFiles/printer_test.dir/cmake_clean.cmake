file(REMOVE_RECURSE
  "CMakeFiles/printer_test.dir/printer_test.cpp.o"
  "CMakeFiles/printer_test.dir/printer_test.cpp.o.d"
  "printer_test"
  "printer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
