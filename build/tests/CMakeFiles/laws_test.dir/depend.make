# Empty dependencies file for laws_test.
# This may be replaced when dependencies are built.
