file(REMOVE_RECURSE
  "CMakeFiles/log_test.dir/log_test.cpp.o"
  "CMakeFiles/log_test.dir/log_test.cpp.o.d"
  "log_test"
  "log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
