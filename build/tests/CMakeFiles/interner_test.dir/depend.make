# Empty dependencies file for interner_test.
# This may be replaced when dependencies are built.
