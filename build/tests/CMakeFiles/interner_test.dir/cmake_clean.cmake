file(REMOVE_RECURSE
  "CMakeFiles/interner_test.dir/interner_test.cpp.o"
  "CMakeFiles/interner_test.dir/interner_test.cpp.o.d"
  "interner_test"
  "interner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
