file(REMOVE_RECURSE
  "CMakeFiles/live_monitor.dir/live_monitor.cpp.o"
  "CMakeFiles/live_monitor.dir/live_monitor.cpp.o.d"
  "live_monitor"
  "live_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
