# Empty compiler generated dependencies file for clinic_audit.
# This may be replaced when dependencies are built.
