file(REMOVE_RECURSE
  "CMakeFiles/clinic_audit.dir/clinic_audit.cpp.o"
  "CMakeFiles/clinic_audit.dir/clinic_audit.cpp.o.d"
  "clinic_audit"
  "clinic_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clinic_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
