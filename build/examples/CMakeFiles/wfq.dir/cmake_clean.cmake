file(REMOVE_RECURSE
  "CMakeFiles/wfq.dir/wfq.cpp.o"
  "CMakeFiles/wfq.dir/wfq.cpp.o.d"
  "wfq"
  "wfq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
