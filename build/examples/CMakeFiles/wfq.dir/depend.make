# Empty dependencies file for wfq.
# This may be replaced when dependencies are built.
