file(REMOVE_RECURSE
  "CMakeFiles/process_explorer.dir/process_explorer.cpp.o"
  "CMakeFiles/process_explorer.dir/process_explorer.cpp.o.d"
  "process_explorer"
  "process_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
