# Empty dependencies file for process_explorer.
# This may be replaced when dependencies are built.
