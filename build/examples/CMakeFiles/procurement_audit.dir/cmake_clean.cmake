file(REMOVE_RECURSE
  "CMakeFiles/procurement_audit.dir/procurement_audit.cpp.o"
  "CMakeFiles/procurement_audit.dir/procurement_audit.cpp.o.d"
  "procurement_audit"
  "procurement_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procurement_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
