# Empty compiler generated dependencies file for procurement_audit.
# This may be replaced when dependencies are built.
