file(REMOVE_RECURSE
  "CMakeFiles/bench_worstcase.dir/bench_worstcase.cpp.o"
  "CMakeFiles/bench_worstcase.dir/bench_worstcase.cpp.o.d"
  "bench_worstcase"
  "bench_worstcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_worstcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
