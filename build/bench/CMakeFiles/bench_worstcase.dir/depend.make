# Empty dependencies file for bench_worstcase.
# This may be replaced when dependencies are built.
