file(REMOVE_RECURSE
  "CMakeFiles/bench_linear.dir/bench_linear.cpp.o"
  "CMakeFiles/bench_linear.dir/bench_linear.cpp.o.d"
  "bench_linear"
  "bench_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
