# Empty dependencies file for bench_op_parallel.
# This may be replaced when dependencies are built.
