file(REMOVE_RECURSE
  "CMakeFiles/bench_op_parallel.dir/bench_op_parallel.cpp.o"
  "CMakeFiles/bench_op_parallel.dir/bench_op_parallel.cpp.o.d"
  "bench_op_parallel"
  "bench_op_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_op_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
