file(REMOVE_RECURSE
  "CMakeFiles/bench_parser.dir/bench_parser.cpp.o"
  "CMakeFiles/bench_parser.dir/bench_parser.cpp.o.d"
  "bench_parser"
  "bench_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
