# Empty dependencies file for bench_parser.
# This may be replaced when dependencies are built.
