# Empty dependencies file for bench_op_sequential.
# This may be replaced when dependencies are built.
