file(REMOVE_RECURSE
  "CMakeFiles/bench_op_sequential.dir/bench_op_sequential.cpp.o"
  "CMakeFiles/bench_op_sequential.dir/bench_op_sequential.cpp.o.d"
  "bench_op_sequential"
  "bench_op_sequential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_op_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
