file(REMOVE_RECURSE
  "CMakeFiles/bench_endtoend.dir/bench_endtoend.cpp.o"
  "CMakeFiles/bench_endtoend.dir/bench_endtoend.cpp.o.d"
  "bench_endtoend"
  "bench_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
