file(REMOVE_RECURSE
  "CMakeFiles/bench_index.dir/bench_index.cpp.o"
  "CMakeFiles/bench_index.dir/bench_index.cpp.o.d"
  "bench_index"
  "bench_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
