# Empty compiler generated dependencies file for bench_op_choice.
# This may be replaced when dependencies are built.
