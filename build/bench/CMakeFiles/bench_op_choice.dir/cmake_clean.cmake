file(REMOVE_RECURSE
  "CMakeFiles/bench_op_choice.dir/bench_op_choice.cpp.o"
  "CMakeFiles/bench_op_choice.dir/bench_op_choice.cpp.o.d"
  "bench_op_choice"
  "bench_op_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_op_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
