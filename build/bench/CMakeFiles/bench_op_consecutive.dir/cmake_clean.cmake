file(REMOVE_RECURSE
  "CMakeFiles/bench_op_consecutive.dir/bench_op_consecutive.cpp.o"
  "CMakeFiles/bench_op_consecutive.dir/bench_op_consecutive.cpp.o.d"
  "bench_op_consecutive"
  "bench_op_consecutive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_op_consecutive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
