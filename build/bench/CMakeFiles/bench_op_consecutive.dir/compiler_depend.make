# Empty compiler generated dependencies file for bench_op_consecutive.
# This may be replaced when dependencies are built.
