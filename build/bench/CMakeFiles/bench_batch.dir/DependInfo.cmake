
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_batch.cpp" "bench/CMakeFiles/bench_batch.dir/bench_batch.cpp.o" "gcc" "bench/CMakeFiles/bench_batch.dir/bench_batch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wflog_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wflog_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wflog_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wflog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
