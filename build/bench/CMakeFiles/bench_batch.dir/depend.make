# Empty dependencies file for bench_batch.
# This may be replaced when dependencies are built.
