file(REMOVE_RECURSE
  "CMakeFiles/bench_batch.dir/bench_batch.cpp.o"
  "CMakeFiles/bench_batch.dir/bench_batch.cpp.o.d"
  "bench_batch"
  "bench_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
