file(REMOVE_RECURSE
  "CMakeFiles/bench_optimizer.dir/bench_optimizer.cpp.o"
  "CMakeFiles/bench_optimizer.dir/bench_optimizer.cpp.o.d"
  "bench_optimizer"
  "bench_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
