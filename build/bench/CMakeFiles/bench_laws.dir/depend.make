# Empty dependencies file for bench_laws.
# This may be replaced when dependencies are built.
