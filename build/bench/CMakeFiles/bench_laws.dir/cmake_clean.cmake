file(REMOVE_RECURSE
  "CMakeFiles/bench_laws.dir/bench_laws.cpp.o"
  "CMakeFiles/bench_laws.dir/bench_laws.cpp.o.d"
  "bench_laws"
  "bench_laws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_laws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
