#pragma once

// Small text utilities shared by the parsers and serializers.

#include <string>
#include <string_view>
#include <vector>

namespace wflog {

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a delimiter character; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Split on a delimiter respecting double-quoted segments (used by the
/// attribute-map syntax `a=1, b="x, y"`).
std::vector<std::string_view> split_quoted(std::string_view s, char delim);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// CSV field escaping per RFC 4180: quote when the field contains a comma,
/// quote, or newline; double embedded quotes.
std::string csv_escape(std::string_view field);

/// Parse one CSV line into fields (RFC 4180 quoting).
std::vector<std::string> csv_parse_line(std::string_view line);

/// True if `s` is a valid identifier: [A-Za-z_][A-Za-z0-9_]*.
bool is_identifier(std::string_view s);

}  // namespace wflog
