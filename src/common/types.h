#pragma once

// Fundamental scalar types shared across the library.
//
// The paper ("Querying Workflow Logs", Definition 1) identifies three
// numbering domains for a log record: the global log sequence number (lsn),
// the workflow instance id (wid), and the instance-specific log sequence
// number (is-lsn). We keep them as distinct aliases so signatures document
// which domain a value belongs to.

#include <cstdint>

namespace wflog {

/// Global log sequence number. 1-based: a well-formed log's lsns form a
/// bijection with 1..|L| (Definition 2, condition 1).
using Lsn = std::uint64_t;

/// Workflow instance (enactment) identifier.
using Wid = std::uint64_t;

/// Instance-specific log sequence number. 1-based and consecutive within
/// each workflow instance (Definition 2, condition 3).
using IsLsn = std::uint32_t;

/// Interned string handle (activity or attribute name). See
/// common/interner.h.
using Symbol = std::uint32_t;

/// Sentinel for "no symbol".
inline constexpr Symbol kNoSymbol = 0xFFFFFFFFu;

}  // namespace wflog
