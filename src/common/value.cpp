#include "common/value.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <functional>

namespace wflog {
namespace {

// Rank used to order values of different kinds deterministically.
int kind_rank(ValueKind k) {
  switch (k) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kInt:
    case ValueKind::kDouble:
      return 1;  // numerics share a rank and compare numerically
    case ValueKind::kBool:
      return 2;
    case ValueKind::kString:
      return 3;
  }
  return 4;
}

bool needs_quoting(const std::string& s) {
  if (s.empty()) return true;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
        c != '-' && c != '.' && c != ' ') {
      return true;
    }
  }
  // Avoid ambiguity with scalar literals.
  return s == "true" || s == "false" || s == "null";
}

}  // namespace

bool Value::operator==(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (kind() == ValueKind::kInt && other.kind() == ValueKind::kInt) {
      return as_int() == other.as_int();
    }
    return numeric() == other.numeric();
  }
  return rep_ == other.rep_;
}

int Value::compare(const Value& other) const {
  const int ra = kind_rank(kind());
  const int rb = kind_rank(other.kind());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (kind()) {
    case ValueKind::kNull:
      return 0;
    case ValueKind::kInt:
    case ValueKind::kDouble: {
      if (kind() == ValueKind::kInt && other.kind() == ValueKind::kInt) {
        const auto a = as_int();
        const auto b = other.as_int();
        return a < b ? -1 : (a > b ? 1 : 0);
      }
      const double a = numeric();
      const double b = other.numeric();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueKind::kBool:
      return static_cast<int>(as_bool()) - static_cast<int>(other.as_bool());
    case ValueKind::kString:
      return as_string().compare(other.as_string()) < 0
                 ? -1
                 : (as_string() == other.as_string() ? 0 : 1);
  }
  return 0;
}

std::size_t Value::hash() const {
  switch (kind()) {
    case ValueKind::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueKind::kInt:
      return std::hash<std::int64_t>{}(as_int());
    case ValueKind::kDouble: {
      // Hash integral doubles as their int counterpart so 5 == 5.0 hash
      // equal, matching operator==.
      const double d = as_double();
      if (std::nearbyint(d) == d &&
          std::abs(d) < 9.2e18) {  // fits in int64
        return std::hash<std::int64_t>{}(static_cast<std::int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case ValueKind::kBool:
      return std::hash<bool>{}(as_bool());
    case ValueKind::kString:
      return std::hash<std::string>{}(as_string());
  }
  return 0;
}

std::string Value::to_string() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "null";
    case ValueKind::kInt:
      return std::to_string(as_int());
    case ValueKind::kDouble: {
      std::string s(32, '\0');
      auto [end, ec] =
          std::to_chars(s.data(), s.data() + s.size(), as_double());
      s.resize(static_cast<std::size_t>(end - s.data()));
      // Keep doubles visually distinct from ints.
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ValueKind::kBool:
      return as_bool() ? "true" : "false";
    case ValueKind::kString: {
      const std::string& s = as_string();
      if (!needs_quoting(s)) return s;
      std::string out;
      out.reserve(s.size() + 2);
      out += '"';
      for (char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
      return out;
    }
  }
  return "null";
}

Value Value::parse(std::string_view text) {
  if (text.empty() || text == "null" || text == "\xe2\x8a\xa5" /* ⊥ */) {
    return Value{};
  }
  if (text == "true") return Value{true};
  if (text == "false") return Value{false};

  // Quoted string: strip quotes, unescape.
  if (text.size() >= 2 && text.front() == '"' && text.back() == '"') {
    std::string out;
    out.reserve(text.size() - 2);
    for (std::size_t i = 1; i + 1 < text.size(); ++i) {
      if (text[i] == '\\' && i + 2 < text.size()) ++i;
      out += text[i];
    }
    return Value{std::move(out)};
  }

  std::int64_t i = 0;
  auto [ip, iec] = std::from_chars(text.data(), text.data() + text.size(), i);
  if (iec == std::errc{} && ip == text.data() + text.size()) return Value{i};

  double d = 0;
  auto [dp, dec] = std::from_chars(text.data(), text.data() + text.size(), d);
  if (dec == std::errc{} && dp == text.data() + text.size()) return Value{d};

  return Value{std::string(text)};
}

}  // namespace wflog
