#pragma once

// Attribute values. The paper's domain D of values is uninterpreted; logs in
// practice carry integers ("balance=1000"), decimals, booleans, and strings
// ("hospital=Public Hospital"), so Value is a small tagged union over those,
// plus the "undefined" bottom value the paper writes as ⊥.

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace wflog {

enum class ValueKind : std::uint8_t { kNull, kInt, kDouble, kBool, kString };

/// A single attribute value; regular value type (copyable, comparable,
/// hashable via Value::hash).
class Value {
 public:
  Value() = default;  // null / ⊥
  explicit Value(std::int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(bool v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(std::string_view v) : rep_(std::string(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}

  ValueKind kind() const noexcept {
    return static_cast<ValueKind>(rep_.index());
  }
  bool is_null() const noexcept { return kind() == ValueKind::kNull; }
  bool is_numeric() const noexcept {
    return kind() == ValueKind::kInt || kind() == ValueKind::kDouble;
  }

  /// Preconditions: kind() matches. Checked with std::get (throws
  /// std::bad_variant_access on misuse).
  std::int64_t as_int() const { return std::get<std::int64_t>(rep_); }
  double as_double() const { return std::get<double>(rep_); }
  bool as_bool() const { return std::get<bool>(rep_); }
  const std::string& as_string() const { return std::get<std::string>(rep_); }

  /// Numeric view: int promoted to double. Precondition: is_numeric().
  double numeric() const {
    return kind() == ValueKind::kInt ? static_cast<double>(as_int())
                                     : as_double();
  }

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Three-way ordering used by predicates: null < numerics < bool < string;
  /// ints and doubles compare numerically with each other.
  int compare(const Value& other) const;
  bool operator<(const Value& other) const { return compare(other) < 0; }

  std::size_t hash() const;

  /// Render in the paper's "attr=value" style (strings unquoted when they
  /// contain no reserved characters, else double-quoted with escapes).
  std::string to_string() const;

  /// Inverse of to_string for scalars: tries int, double, bool literals
  /// (true/false), null (⊥ or "null"), else keeps the text as a string.
  static Value parse(std::string_view text);

 private:
  std::variant<std::monostate, std::int64_t, double, bool, std::string> rep_;
};

}  // namespace wflog
