#pragma once

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum the
// durable store stamps on every record line so that bit rot, torn writes,
// and partially-synced pages are detected on recovery instead of being
// parsed as (wrong) data. Header-only; the table is built once per process.

#include <array>
#include <cstdint>
#include <string_view>

namespace wflog {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// CRC-32 of `data` (matching zlib's crc32 over the same bytes).
inline std::uint32_t crc32(std::string_view data) noexcept {
  const auto& table = detail::crc32_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace wflog
