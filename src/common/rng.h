#pragma once

// Deterministic pseudo-random numbers for workload generation and
// property-based tests. All generators in the repository take explicit
// seeds so every experiment is reproducible from its command line.

#include <cstdint>
#include <vector>

namespace wflog {

/// xoshiro256** by Blackman & Vigna, seeded via splitmix64. Small, fast,
/// and good enough statistical quality for workload synthesis.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) {
    // splitmix64 to spread a small seed over the full state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return next_u64();  // full range
    // Rejection-free Lemire-style bounded generation (bias negligible for
    // workload synthesis; documented rather than corrected).
    return lo + next_u64() % span;
  }

  /// Uniform double in [0, 1).
  double real01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) { return real01() < p; }

  /// Uniformly pick an element index of a non-empty container size.
  std::size_t index(std::size_t size) {
    return static_cast<std::size_t>(uniform(0, size - 1));
  }

  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace wflog
