#include "common/text.h"

#include <cctype>

namespace wflog {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_quoted(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  bool in_quotes = false;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || (s[i] == delim && !in_quotes)) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    } else if (s[i] == '"') {
      in_quotes = !in_quotes;
    } else if (s[i] == '\\' && in_quotes) {
      ++i;  // skip escaped character
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string csv_escape(std::string_view field) {
  const bool needs = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> csv_parse_line(std::string_view line) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(std::move(cur));
  return out;
}

bool is_identifier(std::string_view s) {
  if (s.empty()) return false;
  if (std::isalpha(static_cast<unsigned char>(s[0])) == 0 && s[0] != '_') {
    return false;
  }
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') {
      return false;
    }
  }
  return true;
}

}  // namespace wflog
