#include "common/interner.h"

namespace wflog {

Symbol Interner::intern(std::string_view name) {
  if (auto it = index_.find(name); it != index_.end()) return it->second;
  const Symbol sym = static_cast<Symbol>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), sym);
  return sym;
}

Symbol Interner::find(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kNoSymbol : it->second;
}

}  // namespace wflog
