#pragma once

// Error taxonomy for the library. All failures that a caller can
// meaningfully react to are reported as exceptions derived from Error
// (Core Guidelines E.2: throw an exception to signal that a function can't
// perform its assigned task).

#include <stdexcept>
#include <string>

namespace wflog {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A pattern expression could not be parsed. Carries a byte offset into the
/// source text for diagnostics.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : Error(what + " (at offset " + std::to_string(offset) + ")"),
        offset_(offset) {}

  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// A log violates one of the well-formedness conditions of Definition 2.
class ValidationError : public Error {
 public:
  using Error::Error;
};

/// A serialization / deserialization failure (CSV, JSONL).
class IoError : public Error {
 public:
  using Error::Error;
};

/// A query was malformed at the semantic level (e.g. predicate on an
/// unknown attribute, variable reused across operands).
class QueryError : public Error {
 public:
  using Error::Error;
};

}  // namespace wflog
