#pragma once

// String interning for activity and attribute names.
//
// Patterns and logs compare activity names constantly (every atomic-pattern
// match, every choice-dedup, every parallel disjointness check touches
// them); interning turns those comparisons into integer compares and keeps
// log records small. Symbols are indices into an append-only table, so a
// Symbol obtained from an Interner stays valid for the Interner's lifetime.

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/types.h"

namespace wflog {

/// Append-only bidirectional string <-> Symbol table. Not thread-safe; each
/// Log owns one and query evaluation only reads it.
class Interner {
 public:
  Interner() = default;
  Interner(const Interner& other) { copy_from(other); }
  Interner& operator=(const Interner& other) {
    if (this != &other) {
      names_.clear();
      index_.clear();
      copy_from(other);
    }
    return *this;
  }
  Interner(Interner&&) = default;
  Interner& operator=(Interner&&) = default;

  /// Returns the symbol for `name`, creating it if unseen.
  Symbol intern(std::string_view name);

  /// Returns the symbol for `name`, or kNoSymbol when never interned.
  /// Useful for query-side lookups: an activity name that was never logged
  /// can't match any record.
  Symbol find(std::string_view name) const;

  /// Precondition: `sym` was returned by intern() on this Interner.
  std::string_view name(Symbol sym) const { return names_.at(sym); }

  std::size_t size() const noexcept { return names_.size(); }

 private:
  void copy_from(const Interner& other) {
    for (const std::string& n : other.names_) intern(n);
  }

  // deque: stable addresses so the map's string_view keys stay valid.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, Symbol> index_;
};

}  // namespace wflog
