#pragma once

// Shared-scan batch evaluation — N queries, one pass over the log.
//
// The paper's framework (Figure 2) has many analysts querying one log
// concurrently, and overlapping compliance dashboards re-ask near-identical
// patterns. Evaluating each query independently repeats the per-instance
// work of every shared subpattern; the algebraic laws (Theorems 2-4) make
// that sharing detectable even across syntactically different trees.
//
// Pipeline:
//   1. BatchPlan walks every query tree and assigns each node a SLOT: the
//      index of its canonical key (core/pattern.h). Nodes with equal keys
//      — within one query or across queries — share a slot.
//   2. evaluate_batch iterates workflow instances (the outer loop of
//      Algorithm 2); per instance, one SubpatternMemo (core/evaluator.h)
//      is threaded through the evaluation of every query, so each slot is
//      computed at most once per instance. The memo resets between
//      instances.
//   3. With threads > 1, instances are partitioned across workers by the
//      work-stealing scheduler of core/parallel_eval.h; each worker
//      evaluates the WHOLE batch over its share with its own memo.
//
// Results are assembled per query in ascending wid order, making the
// output bit-identical to N independent Evaluator::evaluate calls
// (property-tested in tests/batch_test.cpp, serial and parallel, with and
// without the cache).

#include <span>

#include "core/evaluator.h"

namespace wflog {

class ShardPlan;
class ShardPool;

struct BatchOptions {
  /// Workers partitioning the instances; 1 = serial on the caller's
  /// thread, 0 = std::thread::hardware_concurrency().
  std::size_t threads = 1;
  /// Share subpattern results through the canonical-key memo. Off, the
  /// batch still runs in one pass but every query recomputes its tree.
  bool use_cache = true;
  EvalOptions eval;
  /// Optional resource guard (core/guard.h) shared by the whole pass: a
  /// trip stops every query, each returning its partial set. Borrowed.
  const EvalGuard* guard = nullptr;
  /// Sharded scheduling (core/shard.h): when set (and it has > 1 shard),
  /// the outer work unit becomes a whole wid-shard — one evaluator + one
  /// memo per shard, scattered on `shard_pool` (serial when null) — and
  /// `threads` is ignored. Results stay bit-identical: assembly is by
  /// global instance position either way. Both borrowed.
  const ShardPlan* shard_plan = nullptr;
  ShardPool* shard_pool = nullptr;
};

/// What the planner found to share.
struct BatchPlanStats {
  std::size_t num_queries = 0;
  std::size_t total_nodes = 0;     // pattern nodes across all query trees
  std::size_t distinct_slots = 0;  // distinct canonical keys among them

  /// Nodes whose evaluation a perfect cache skips (once warm, per
  /// instance): total_nodes - distinct_slots.
  std::size_t shared_nodes() const { return total_nodes - distinct_slots; }
};

/// Slot assignment for one batch: pattern node -> canonical-key slot.
/// Keeps the query trees alive (the SlotMap is keyed by node address).
class BatchPlan {
 public:
  explicit BatchPlan(std::span<const PatternPtr> patterns);

  const SlotMap& slots() const noexcept { return slots_; }
  std::size_t num_slots() const noexcept { return stats_.distinct_slots; }
  const BatchPlanStats& stats() const noexcept { return stats_; }
  const std::vector<PatternPtr>& patterns() const noexcept {
    return patterns_;
  }

  /// A memo sized for this plan, ready for one worker's instance loop.
  SubpatternMemo make_memo() const {
    return SubpatternMemo(&slots_, num_slots());
  }

 private:
  std::vector<PatternPtr> patterns_;
  SlotMap slots_;
  BatchPlanStats stats_;
};

/// Work/traffic tallies of one evaluate_batch call.
struct BatchEvalStats {
  EvalCounters counters;  // summed across queries, instances, workers
  BatchPlanStats plan;
  std::size_t threads_used = 1;
  /// Per-query failure isolation: query_errors[q] is empty when query q
  /// evaluated cleanly, else the error that stopped it. A failed query
  /// returns an empty set; the others are unaffected.
  std::vector<std::string> query_errors;
};

/// Evaluates every pattern over the log in one shared pass. Element q of
/// the result is bit-identical to Evaluator(index, options.eval)
/// .evaluate(*patterns[q]). `stats`, when given, receives the cache and
/// plan tallies.
///
/// Failure isolation: a null patterns[q] or a query whose evaluation
/// throws yields an empty result set (and an entry in
/// BatchEvalStats::query_errors) without disturbing the other queries —
/// one bad query cannot take down the batch.
std::vector<IncidentSet> evaluate_batch(std::span<const PatternPtr> patterns,
                                        const LogIndex& index,
                                        const BatchOptions& options = {},
                                        BatchEvalStats* stats = nullptr);

}  // namespace wflog
