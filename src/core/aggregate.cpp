#include "core/aggregate.h"

#include <algorithm>

#include "core/shard.h"

namespace wflog {

std::vector<InstanceCount> incidents_per_instance(const IncidentSet& set) {
  std::vector<InstanceCount> out;
  out.reserve(set.groups().size());
  for (const IncidentSet::Group& g : set.groups()) {
    if (!g.incidents.empty()) {
      out.push_back(InstanceCount{g.wid, g.incidents.size()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const InstanceCount& a, const InstanceCount& b) {
              return a.wid < b.wid;
            });
  return out;
}

std::size_t instances_with_match(const IncidentSet& set) {
  std::size_t n = 0;
  for (const IncidentSet::Group& g : set.groups()) {
    if (!g.incidents.empty()) ++n;
  }
  return n;
}

namespace {

/// The grouping value for one instance, or null when the instance never
/// executed the key activity or the record lacks the attribute.
Value group_value(const LogIndex& index, Wid wid, const GroupKey& key,
                  Symbol activity_sym, Symbol attr_sym) {
  if (activity_sym == kNoSymbol || attr_sym == kNoSymbol) return Value{};
  const std::vector<IsLsn>& occ = index.occurrences(wid, activity_sym);
  if (occ.empty()) return Value{};
  const LogRecord* l = index.find(wid, occ.front());
  if (l == nullptr) return Value{};
  const Value* v = nullptr;
  switch (key.sel) {
    case MapSel::kIn:
      v = l->in.get(attr_sym);
      break;
    case MapSel::kOut:
      v = l->out.get(attr_sym);
      break;
    case MapSel::kAny:
      v = l->out.get(attr_sym);
      if (v == nullptr) v = l->in.get(attr_sym);
      break;
  }
  return v == nullptr ? Value{} : *v;
}

}  // namespace

std::vector<GroupCount> group_by_attribute(const IncidentSet& set,
                                           const LogIndex& index,
                                           const GroupKey& key,
                                           const EvalGuard* guard) {
  const Interner& interner = index.log().interner();
  const Symbol activity_sym = interner.find(key.activity);
  const Symbol attr_sym = interner.find(key.attr);

  std::vector<GroupCount> groups;
  for (const IncidentSet::Group& g : set.groups()) {
    if (guard != nullptr && guard->check()) break;
    if (g.incidents.empty()) continue;
    const Value v = group_value(index, g.wid, key, activity_sym, attr_sym);
    auto it = std::find_if(
        groups.begin(), groups.end(),
        [&v](const GroupCount& gc) { return gc.key == v; });
    if (it == groups.end()) {
      groups.push_back(GroupCount{v, 0, 0});
      it = groups.end() - 1;
    }
    ++it->instances;
    it->incidents += g.incidents.size();
  }
  std::sort(groups.begin(), groups.end(),
            [](const GroupCount& a, const GroupCount& b) {
              return a.key.compare(b.key) < 0;
            });
  return groups;
}

std::vector<GroupCount> combine_groups(
    std::vector<std::vector<GroupCount>> partials) {
  std::vector<GroupCount> merged;
  for (std::vector<GroupCount>& partial : partials) {
    for (GroupCount& g : partial) {
      auto it = std::find_if(
          merged.begin(), merged.end(),
          [&g](const GroupCount& m) { return m.key == g.key; });
      if (it == merged.end()) {
        merged.push_back(std::move(g));
      } else {
        it->instances += g.instances;
        it->incidents += g.incidents;
      }
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const GroupCount& a, const GroupCount& b) {
              return a.key.compare(b.key) < 0;
            });
  return merged;
}

std::vector<GroupCount> group_by_attribute_sharded(const IncidentSet& set,
                                                   const LogIndex& index,
                                                   const GroupKey& key,
                                                   std::size_t num_shards,
                                                   ShardPool* pool) {
  // Scatter: each shard folds the groups whose wid hashes to it. The
  // incident-set groups are wid-disjoint, so the slices partition `set`
  // and the combine below is exact, not approximate.
  const std::size_t k = std::max<std::size_t>(1, num_shards);
  std::vector<std::vector<GroupCount>> partials(k);
  const auto fold_shard = [&](std::size_t s) {
    IncidentSet slice;
    for (const IncidentSet::Group& g : set.groups()) {
      if (shard_of_wid(g.wid, k) == s && !g.incidents.empty()) {
        slice.add_group(g.wid, g.incidents);
      }
    }
    partials[s] = group_by_attribute(slice, index, key);
  };
  if (pool != nullptr) {
    pool->run(k, fold_shard);
  } else {
    for (std::size_t s = 0; s < k; ++s) fold_shard(s);
  }
  return combine_groups(std::move(partials));
}

std::string render_groups(const std::vector<GroupCount>& groups) {
  std::size_t key_width = 5;  // "group"
  for (const GroupCount& g : groups) {
    key_width = std::max(key_width, g.key.to_string().size());
  }
  std::string out = "group";
  out.append(key_width - 5, ' ');
  out += "  instances  incidents\n";
  for (const GroupCount& g : groups) {
    const std::string k = g.key.to_string();
    out += k;
    out.append(key_width - k.size(), ' ');
    out += "  " + std::to_string(g.instances);
    out.append(g.instances < 10 ? 8 : 7, ' ');
    out += std::to_string(g.incidents) + "\n";
  }
  return out;
}

}  // namespace wflog
