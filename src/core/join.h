#pragma once

// Cross-record join predicates — `where` clauses over bound variables.
//
// Atom-level predicates (core/predicate.h) constrain one record at a time;
// the paper's data-centric motivation also needs constraints BETWEEN the
// records of an incident ("the receipt reimbursed is the receipt paid",
// "the balance grew between update and reimbursement"). With variables on
// atoms (core/bindings.h) this becomes expressible:
//
//   u:UpdateRefer -> r:GetReimburse where u.out.balance > r.in.balance
//   p:Pay . q:Pay where p.out.paidAmount = q.out.paidAmount
//   c:CreatePO -> d:Dispute where c.out.poAmount > 5000
//
// Semantics: an incident qualifies iff SOME satisfying assignment of its
// positions to the pattern's atoms (Definition 4's σ) satisfies the join
// expression. References resolve through the assignment: `x.out.attr`
// reads αout of the record bound to x (`x.attr` checks αout then αin);
// a missing variable, record, or attribute fails the comparison.

#include <memory>
#include <string>
#include <vector>

#include "core/bindings.h"
#include "core/guard.h"
#include "core/incident.h"
#include "core/pattern.h"
#include "core/predicate.h"  // CmpOp, MapSel
#include "log/index.h"

namespace wflog {

/// `variable.sel.attr` — a value reference through a binding.
struct VarRef {
  std::string variable;
  MapSel sel = MapSel::kAny;
  std::string attr;

  std::string to_string() const;
};

class JoinExpr;
using JoinExprPtr = std::shared_ptr<const JoinExpr>;

class JoinExpr {
 public:
  enum class Kind : std::uint8_t {
    kCmpLiteral,  // ref op literal
    kCmpRef,      // ref op ref
    kAnd,
    kOr,
    kNot,
  };

  static JoinExprPtr compare(VarRef lhs, CmpOp op, Value literal);
  static JoinExprPtr compare_refs(VarRef lhs, CmpOp op, VarRef rhs);
  static JoinExprPtr logical_and(JoinExprPtr a, JoinExprPtr b);
  static JoinExprPtr logical_or(JoinExprPtr a, JoinExprPtr b);
  static JoinExprPtr logical_not(JoinExprPtr a);

  Kind kind() const noexcept { return kind_; }

  /// Evaluates under one assignment. Unresolvable references make the
  /// enclosing comparison false (SQL-style).
  bool eval(const BindingMap& bindings, Wid wid,
            const LogIndex& index) const;

  /// Parseable text form (matches the `where` grammar).
  std::string to_string() const;

  /// Variables this expression mentions (sorted, unique) — used to verify
  /// the pattern actually binds them.
  std::vector<std::string> variables() const;

 private:
  JoinExpr() = default;

  Kind kind_ = Kind::kCmpLiteral;
  VarRef lhs_;
  VarRef rhs_ref_;
  CmpOp cmp_ = CmpOp::kEq;
  Value literal_;
  JoinExprPtr left_;
  JoinExprPtr right_;
};

/// Parses a standalone `where` expression. Throws ParseError.
JoinExprPtr parse_join_expr(std::string_view text);

/// A full query: pattern plus optional where clause. Produced by
/// parse_query ("PATTERN where EXPR"; `where` is a reserved word at the
/// top level of a query). Throws QueryError if the where clause mentions a
/// variable the pattern never binds.
struct ParsedQuery {
  PatternPtr pattern;
  JoinExprPtr where;  // null when absent
};

ParsedQuery parse_query(std::string_view text);

/// Keeps the incidents with at least one assignment satisfying `expr`.
/// With a guard, the pass polls it per incident and stops early once it
/// trips (deadline / cancel) — the returned set is then a valid partial
/// prefix, exactly like a guarded pattern evaluation.
IncidentSet filter_where(const IncidentSet& incidents, const Pattern& p,
                         const JoinExpr& expr, const LogIndex& index,
                         const EvalGuard* guard = nullptr);

}  // namespace wflog
