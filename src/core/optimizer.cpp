#include "core/optimizer.h"

namespace wflog {

OptimizeResult optimize(PatternPtr p, const CostModel& model,
                        const OptimizerOptions& options) {
  OptimizeResult result;
  result.initial_cost = model.cost(*p);

  double current_cost = result.initial_cost;
  while (result.steps < options.max_steps) {
    std::vector<rewrite::Step> moves = rewrite::neighbors(p);
    result.candidates_examined += moves.size();

    const rewrite::Step* best = nullptr;
    double best_cost = current_cost;
    for (const rewrite::Step& s : moves) {
      const double c = model.cost(*s.result);
      if (c < best_cost) {
        best_cost = c;
        best = &s;
      }
    }
    if (best == nullptr) break;  // local optimum

    p = best->result;
    current_cost = best_cost;
    ++result.steps;
    if (options.trace) result.trace.push_back(best->rule);
  }

  result.pattern = std::move(p);
  result.final_cost = current_cost;
  return result;
}

}  // namespace wflog
