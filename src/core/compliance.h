#pragma once

// Compliance rule templates — the fraud/anomaly application of the paper's
// conclusion ("constructing queries from business principles"), packaged as
// the DECLARE-style constraint templates used throughout the BPM
// literature. Each rule is checked per workflow instance against the
// LogIndex; where a rule's violation is expressible as an incident pattern
// (e.g. NotSuccession(a,b) is violated exactly when `a -> b` has an
// incident) the implementation uses the pattern machinery, and the others
// use occurrence-list scans.
//
// Rule semantics (per instance; a, b are activity names):
//   Existence(a, n)        a occurs at least n times
//   Absence(a, n)          a occurs fewer than n times
//   Exactly(a, n)          a occurs exactly n times
//   Init(a)                the first activity (after START) is a
//   Last(a)                the final activity (before END) is a
//                          (checked on completed instances only)
//   Response(a, b)         every a is eventually followed by some b
//   AlternateResponse(a,b) every a is followed by a b before the next a
//   ChainResponse(a, b)    every a is immediately followed by a b
//   Precedence(a, b)       every b is preceded by some a
//   ChainPrecedence(a, b)  every b is immediately preceded by an a
//   NotSuccession(a, b)    no b ever follows an a

#include <string>
#include <vector>

#include "log/index.h"

namespace wflog {

enum class RuleKind : std::uint8_t {
  kExistence,
  kAbsence,
  kExactly,
  kInit,
  kLast,
  kResponse,
  kAlternateResponse,
  kChainResponse,
  kPrecedence,
  kChainPrecedence,
  kNotSuccession,
};

std::string_view to_string(RuleKind kind);

struct Rule {
  RuleKind kind = RuleKind::kExistence;
  std::string a;
  std::string b;        // binary templates only
  std::size_t n = 1;    // counting templates only

  // ----- factory helpers -------------------------------------------------
  static Rule existence(std::string a, std::size_t n = 1);
  static Rule absence(std::string a, std::size_t n = 1);
  static Rule exactly(std::string a, std::size_t n);
  static Rule init(std::string a);
  static Rule last(std::string a);
  static Rule response(std::string a, std::string b);
  static Rule alternate_response(std::string a, std::string b);
  static Rule chain_response(std::string a, std::string b);
  static Rule precedence(std::string a, std::string b);
  static Rule chain_precedence(std::string a, std::string b);
  static Rule not_succession(std::string a, std::string b);

  /// "Response(SeeDoctor, PayTreatment)" — stable display form.
  std::string name() const;
};

/// One instance that breaks a rule, with the witnessing position (the
/// unanswered a, the unpreceded b, the offending pair's second record, ...).
struct Violation {
  Wid wid = 0;
  IsLsn position = 0;
};

struct RuleResult {
  Rule rule;
  std::size_t instances_checked = 0;
  std::size_t instances_violating = 0;
  std::vector<Violation> samples;  // capped by ComplianceOptions

  bool compliant() const noexcept { return instances_violating == 0; }
};

struct ComplianceOptions {
  std::size_t max_samples_per_rule = 10;
  /// Last(a) and (optionally) Response-style rules only make sense once an
  /// instance has finished; when true, incomplete instances are skipped for
  /// kLast and counted for everything else.
  bool skip_incomplete_for_last = true;
};

struct ComplianceReport {
  std::vector<RuleResult> results;

  bool compliant() const noexcept;
  std::size_t total_violations() const noexcept;
  /// Aligned rule/checked/violations table.
  std::string to_string() const;
};

/// Checks every rule against every instance of the indexed log.
ComplianceReport check_compliance(const std::vector<Rule>& rules,
                                  const LogIndex& index,
                                  const ComplianceOptions& options = {});

}  // namespace wflog
