#include "core/pattern.h"

#include <algorithm>
#include <functional>
#include <iterator>
#include <set>

#include "common/error.h"
#include "common/text.h"

namespace wflog {

std::string_view op_token(PatternOp op) {
  switch (op) {
    case PatternOp::kAtom:
      return "";
    case PatternOp::kConsecutive:
      return ".";
    case PatternOp::kSequential:
      return "->";
    case PatternOp::kChoice:
      return "|";
    case PatternOp::kParallel:
      return "&";
  }
  return "?";
}

std::string_view op_name(PatternOp op) {
  switch (op) {
    case PatternOp::kAtom:
      return "atom";
    case PatternOp::kConsecutive:
      return "consecutive";
    case PatternOp::kSequential:
      return "sequential";
    case PatternOp::kChoice:
      return "choice";
    case PatternOp::kParallel:
      return "parallel";
  }
  return "?";
}

namespace {

std::size_t mix(std::size_t h, std::size_t v) {
  return h * 0x9e3779b97f4a7c15ULL + v + 0x165667b19e3779f9ULL;
}

}  // namespace

PatternPtr Pattern::atom(std::string activity, bool negated,
                         PredicatePtr predicate) {
  return bound_atom({}, std::move(activity), negated, std::move(predicate));
}

PatternPtr Pattern::bound_atom(std::string binding, std::string activity,
                               bool negated, PredicatePtr predicate) {
  if (!is_identifier(activity)) {
    throw QueryError("invalid activity name in pattern: '" + activity + "'");
  }
  if (!binding.empty() && !is_identifier(binding)) {
    throw QueryError("invalid variable name in pattern: '" + binding + "'");
  }
  auto p = std::shared_ptr<Pattern>(new Pattern());
  p->op_ = PatternOp::kAtom;
  p->activity_ = std::move(activity);
  p->binding_ = std::move(binding);
  p->negated_ = negated;
  p->predicate_ = std::move(predicate);
  p->has_negation_ = negated;
  p->has_predicate_ = p->predicate_ != nullptr;
  std::size_t h = mix(0, std::hash<std::string>{}(p->activity_));
  h = mix(h, negated ? 1 : 2);
  if (!p->binding_.empty()) {
    h = mix(h, std::hash<std::string>{}(p->binding_));
  }
  if (p->predicate_ != nullptr) h = mix(h, p->predicate_->hash());
  p->hash_ = h;
  return p;
}

PatternPtr Pattern::combine(PatternOp op, PatternPtr left, PatternPtr right) {
  if (op == PatternOp::kAtom) {
    throw QueryError("Pattern::combine requires a binary operator");
  }
  if (left == nullptr || right == nullptr) {
    throw QueryError("Pattern::combine: null operand");
  }
  auto p = std::shared_ptr<Pattern>(new Pattern());
  p->op_ = op;
  p->left_ = std::move(left);
  p->right_ = std::move(right);
  p->num_operators_ = p->left_->num_operators_ + p->right_->num_operators_ + 1;
  p->num_atoms_ = p->left_->num_atoms_ + p->right_->num_atoms_;
  p->height_ = 1 + std::max(p->left_->height_, p->right_->height_);
  if (op == PatternOp::kChoice) {
    p->min_size_ = std::min(p->left_->min_size_, p->right_->min_size_);
    p->max_size_ = std::max(p->left_->max_size_, p->right_->max_size_);
  } else {
    p->min_size_ = p->left_->min_size_ + p->right_->min_size_;
    p->max_size_ = p->left_->max_size_ + p->right_->max_size_;
  }
  p->has_negation_ = p->left_->has_negation_ || p->right_->has_negation_;
  p->has_choice_ = op == PatternOp::kChoice || p->left_->has_choice_ ||
                   p->right_->has_choice_;
  p->has_predicate_ = p->left_->has_predicate_ || p->right_->has_predicate_;
  std::size_t h = mix(static_cast<std::size_t>(op) + 100, p->left_->hash_);
  p->hash_ = mix(h, p->right_->hash_);
  return p;
}

namespace {

bool is_temporal(PatternOp op) {
  return op == PatternOp::kConsecutive || op == PatternOp::kSequential;
}

// Collects the maximal operator chain rooted at `p`: for ⊗ (resp. ⊕),
// every operand reachable through same-op internal nodes (Theorem 2); for
// ⊙/≫, operands reachable through ANY temporal internal node, with the
// in-order operator sequence (Theorems 2 + 4). Operands land in `out` in
// in-order (left-to-right) position; for temporal chains `ops[i]` is the
// operator between out[i] and out[i+1]. `chain_op` is the ROOT's operator
// — a nested chain of a different operator is an operand, not part of
// this chain.
void flatten_chain(const Pattern& p, PatternOp chain_op,
                   std::vector<const Pattern*>& out,
                   std::vector<PatternOp>& ops) {
  const bool in_chain =
      !p.is_atom() && (is_temporal(chain_op)
                           ? is_temporal(p.op())
                           : p.op() == chain_op);
  if (in_chain) {
    flatten_chain(*p.left(), chain_op, out, ops);
    ops.push_back(p.op());
    flatten_chain(*p.right(), chain_op, out, ops);
  } else {
    out.push_back(&p);
  }
}

void append_key(const Pattern& p, std::string& out) {
  if (p.is_atom()) {
    // Free text (the activity name and the predicate's attribute / literal
    // strings) is length-prefixed so no embedded operator or bracket glyph
    // can make two structurally different patterns concatenate to the same
    // key. Activity names are identifier-restricted today, but predicate
    // attrs/literals are arbitrary bytes — without the prefix,
    //   {a:t[exists x]|a:u[exists y]}
    // is reachable both as a three-way choice and as ONE atom whose
    // predicate attr literally contains "x]|a:u[exists y".
    out += p.negated() ? "n:" : "a:";
    out += std::to_string(p.activity().size());
    out += ':';
    out += p.activity();
    if (p.predicate() != nullptr) {
      const std::string pred = p.predicate()->to_string();
      out += '[';
      out += std::to_string(pred.size());
      out += ':';
      out += pred;
      out += ']';
    }
    return;
  }

  std::vector<const Pattern*> operands;
  std::vector<PatternOp> ops;
  flatten_chain(p, p.op(), operands, ops);

  if (is_temporal(p.op())) {
    out += '(';
    for (std::size_t i = 0; i < operands.size(); ++i) {
      if (i != 0) out += op_token(ops[i - 1]);
      append_key(*operands[i], out);
    }
    out += ')';
    return;
  }

  // ⊗ / ⊕: operand order is irrelevant (Theorem 3) — sort operand keys.
  std::vector<std::string> keys;
  keys.reserve(operands.size());
  for (const Pattern* q : operands) keys.push_back(canonical_key(*q));
  std::sort(keys.begin(), keys.end());
  const bool choice = p.op() == PatternOp::kChoice;
  out += choice ? '{' : '<';
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i != 0) out += choice ? '|' : '&';
    out += keys[i];
  }
  out += choice ? '}' : '>';
}

}  // namespace

std::string canonical_key(const Pattern& p) {
  std::string out;
  append_key(p, out);
  return out;
}

std::size_t canonical_hash(const Pattern& p) {
  // FNV-1a over the canonical key.
  std::size_t h = 0xcbf29ce484222325ULL;
  for (const char c : canonical_key(p)) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool needs_choice_dedup(const Pattern& p1, const Pattern& p2) {
  // Incidents of different sizes are never equal; ⊙/≫/⊕ force operand
  // sizes to add, so size ranges bound incident sizes exactly.
  if (p1.max_incident_size() < p2.min_incident_size() ||
      p2.max_incident_size() < p1.min_incident_size()) {
    return false;
  }
  const bool analyzable = !p1.has_negation() && !p2.has_negation() &&
                          !p1.has_choice() && !p2.has_choice();
  if (!analyzable) return true;  // conservative
  return p1.activity_multiset() == p2.activity_multiset();
}

std::vector<std::string> Pattern::activity_multiset() const {
  std::vector<std::string> names;
  names.reserve(num_atoms_);
  std::function<void(const Pattern&)> walk = [&](const Pattern& p) {
    if (p.is_atom()) {
      names.push_back((p.negated_ ? "!" : "") + p.activity_);
    } else {
      walk(*p.left_);
      walk(*p.right_);
    }
  };
  walk(*this);
  std::sort(names.begin(), names.end());
  return names;
}

namespace {

std::set<std::string> required_set(const Pattern& p) {
  if (p.is_atom()) {
    // A positive atom's incident IS a record with that activity, so the
    // owning instance must contain it — predicate or not. A negated atom
    // matches any record whose activity differs; it requires nothing.
    if (p.negated()) return {};
    return {p.activity()};
  }
  std::set<std::string> left = required_set(*p.left());
  std::set<std::string> right = required_set(*p.right());
  if (p.op() == PatternOp::kChoice) {
    // Either branch alone can supply the incident: only activities both
    // branches demand are demanded by the choice.
    std::set<std::string> both;
    std::set_intersection(left.begin(), left.end(), right.begin(),
                          right.end(), std::inserter(both, both.begin()));
    return both;
  }
  // ⊙ / ≫ / ⊕: an incident embeds one incident of EACH operand, so the
  // instance must satisfy both requirement sets.
  left.insert(right.begin(), right.end());
  return left;
}

}  // namespace

std::vector<std::string> required_activities(const Pattern& p) {
  const std::set<std::string> req = required_set(p);
  return {req.begin(), req.end()};
}

bool Pattern::structurally_equal(const Pattern& other) const {
  if (this == &other) return true;
  if (op_ != other.op_ || hash_ != other.hash_) return false;
  if (is_atom()) {
    if (activity_ != other.activity_ || negated_ != other.negated_ ||
        binding_ != other.binding_) {
      return false;
    }
    if ((predicate_ == nullptr) != (other.predicate_ == nullptr)) {
      return false;
    }
    return predicate_ == nullptr || predicate_->equals(*other.predicate_);
  }
  return left_->structurally_equal(*other.left_) &&
         right_->structurally_equal(*other.right_);
}

}  // namespace wflog
