#include "core/synthetic.h"

#include <algorithm>

namespace wflog {

Incident random_incident(Rng& rng, Wid wid, std::size_t records,
                         std::size_t instance_len) {
  records = std::min(records, instance_len);
  std::vector<IsLsn> positions;
  positions.reserve(records);
  while (positions.size() < records) {
    const IsLsn p = static_cast<IsLsn>(
        rng.uniform(1, static_cast<std::uint64_t>(instance_len)));
    if (std::find(positions.begin(), positions.end(), p) ==
        positions.end()) {
      positions.push_back(p);
    }
  }
  std::sort(positions.begin(), positions.end());
  Incident o = Incident::singleton(wid, positions.front());
  for (std::size_t i = 1; i < positions.size(); ++i) {
    o = Incident::merged(o, Incident::singleton(wid, positions[i]));
  }
  return o;
}

PatternPtr random_pattern(Rng& rng, const RandomPatternOptions& options) {
  static const std::vector<std::string> kDefaultAlphabet = {
      "A0", "A1", "A2", "A3", "A4", "A5", "A6", "A7"};
  const std::vector<std::string>& names =
      options.alphabet.empty() ? kDefaultAlphabet : options.alphabet;

  if (options.max_depth == 0 || rng.bernoulli(options.atom_probability)) {
    PredicatePtr pred;
    if (rng.bernoulli(options.predicate_probability)) {
      pred = Predicate::compare(
          rng.bernoulli(0.5) ? MapSel::kIn : MapSel::kOut, "attr",
          CmpOp::kGt, Value{static_cast<std::int64_t>(rng.uniform(0, 99))});
    }
    return Pattern::atom(names[rng.index(names.size())],
                         rng.bernoulli(options.negation_probability),
                         std::move(pred));
  }
  static constexpr PatternOp kOps[] = {
      PatternOp::kConsecutive, PatternOp::kSequential, PatternOp::kChoice,
      PatternOp::kParallel};
  RandomPatternOptions child = options;
  child.max_depth = options.max_depth - 1;
  return Pattern::combine(kOps[rng.index(4)], random_pattern(rng, child),
                          random_pattern(rng, child));
}

IncidentList synthetic_incidents(const SyntheticIncidentOptions& options) {
  Rng rng(options.seed);
  IncidentList list;
  list.reserve(options.count);
  // Draw in rounds, deduplicating per round; give up after a bounded number
  // of rounds so a saturated position space terminates.
  for (std::size_t round = 0; round < 16 && list.size() < options.count;
       ++round) {
    const std::size_t missing = options.count - list.size();
    for (std::size_t i = 0; i < missing; ++i) {
      list.push_back(random_incident(rng, options.wid, options.records_each,
                                     options.instance_len));
    }
    canonicalize(list);
  }
  return list;
}

}  // namespace wflog
