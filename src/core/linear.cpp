#include "core/linear.h"

#include <algorithm>

namespace wflog {

namespace {

/// Appends the chain steps of `p` in temporal order. `op_from_parent` is
/// the operator that attaches this subtree to the atom preceding it.
bool flatten(const Pattern& p, bool consecutive_join, LinearChain& out) {
  if (p.is_atom()) {
    if (p.negated() || p.predicate() != nullptr) return false;
    out.push_back(LinearStep{p.activity(), consecutive_join});
    return true;
  }
  const bool is_cons = p.op() == PatternOp::kConsecutive;
  if (!is_cons && p.op() != PatternOp::kSequential) return false;
  // The operator binds the LAST atom of the left subtree to the FIRST atom
  // of the right subtree; joins inside the subtrees keep their own ops.
  return flatten(*p.left(), consecutive_join, out) &&
         flatten(*p.right(), is_cons, out);
}

}  // namespace

std::optional<LinearChain> as_linear_chain(const Pattern& p) {
  LinearChain chain;
  if (!flatten(p, /*consecutive_join=*/false, chain)) return std::nullopt;
  return chain;
}

std::size_t count_linear(const LinearChain& chain, const LogIndex& index,
                         Wid wid) {
  if (chain.empty()) return 0;
  const Log& log = index.log();

  // ways[j] = number of chain prefixes ending exactly at occurrence j of
  // the current atom. Rolling DP over the chain.
  const Symbol first_sym = log.activity_symbol(chain[0].activity);
  if (first_sym == kNoSymbol) return 0;
  const std::vector<IsLsn>* occ = &index.occurrences(wid, first_sym);
  std::vector<std::size_t> ways(occ->size(), 1);

  for (std::size_t i = 1; i < chain.size(); ++i) {
    const Symbol sym = log.activity_symbol(chain[i].activity);
    if (sym == kNoSymbol) return 0;
    const std::vector<IsLsn>& prev_occ = *occ;
    const std::vector<IsLsn>& cur_occ = index.occurrences(wid, sym);
    if (cur_occ.empty()) return 0;
    std::vector<std::size_t> cur_ways(cur_occ.size(), 0);

    if (chain[i].consecutive) {
      // Match prev position p with current position p+1: merge walk.
      std::size_t a = 0;
      for (std::size_t b = 0; b < cur_occ.size(); ++b) {
        while (a < prev_occ.size() && prev_occ[a] + 1 < cur_occ[b]) ++a;
        if (a < prev_occ.size() && prev_occ[a] + 1 == cur_occ[b]) {
          cur_ways[b] = ways[a];
        }
      }
    } else {
      // Sequential: cur_ways[b] = sum of ways over prev positions < cur
      // position. Prefix sums + merge walk.
      std::size_t a = 0;
      std::size_t prefix = 0;
      for (std::size_t b = 0; b < cur_occ.size(); ++b) {
        while (a < prev_occ.size() && prev_occ[a] < cur_occ[b]) {
          prefix += ways[a];
          ++a;
        }
        cur_ways[b] = prefix;
      }
    }
    occ = &cur_occ;
    ways = std::move(cur_ways);
  }

  std::size_t total = 0;
  for (std::size_t w : ways) total += w;
  return total;
}

std::size_t count_linear(const LinearChain& chain, const LogIndex& index) {
  std::size_t total = 0;
  for (Wid wid : index.wids()) total += count_linear(chain, index, wid);
  return total;
}

bool exists_linear(const LinearChain& chain, const LogIndex& index,
                   Wid wid) {
  if (chain.empty()) return false;
  const Log& log = index.log();

  // Greedy earliest match: the chain is satisfiable iff picking the
  // earliest feasible occurrence at each step succeeds.
  IsLsn prev = 0;  // position of the previous atom's match (0 = none yet)
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Symbol sym = log.activity_symbol(chain[i].activity);
    if (sym == kNoSymbol) return false;
    const std::vector<IsLsn>& occ = index.occurrences(wid, sym);
    if (i > 0 && chain[i].consecutive) {
      // Exactly prev+1 must be an occurrence. Greediness is still safe:
      // earliest-feasible for the prefix dominates any other choice for
      // sequential joins; for a consecutive join a failure here only rules
      // out THIS prefix assignment, so fall back to trying successively
      // later positions for the previous atom. Handle via binary search
      // retry loop below.
      if (!std::binary_search(occ.begin(), occ.end(), prev + 1)) {
        return count_linear(chain, index, wid) > 0;  // rare fallback
      }
      prev = prev + 1;
      continue;
    }
    auto it = std::upper_bound(occ.begin(), occ.end(), prev);
    if (it == occ.end()) return false;
    prev = *it;
  }
  return true;
}

bool exists_linear(const LinearChain& chain, const LogIndex& index) {
  for (Wid wid : index.wids()) {
    if (exists_linear(chain, index, wid)) return true;
  }
  return false;
}

}  // namespace wflog
