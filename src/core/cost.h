#pragma once

// Cardinality and cost estimation for incident patterns.
//
// Lemma 1 gives worst-case bounds (output of every binary operator is at
// most n1·n2); a useful optimizer needs *expected* sizes, so the model
// refines the bounds with per-activity selectivities taken from the
// LogIndex and a positional-independence assumption: within an instance of
// length L, a random operand-incident pair satisfies
//     last(o1) + 1 = first(o2)   with probability ~ 1/L   (consecutive)
//     last(o1)     < first(o2)   with probability ~ 1/2   (sequential)
// Costs charge the operator algorithms actually used (the optimized set by
// default) plus the size of the produced output, and are summed bottom-up.
// All figures are per *average* instance; the per-log factor (number of
// instances) is common to every candidate and cancels in comparisons.

#include "core/pattern.h"
#include "log/index.h"

namespace wflog {

struct Estimate {
  double cardinality = 0;  // expected |inc(p)| per instance
  double cost = 0;         // expected work to produce it
};

class CostModel {
 public:
  /// Calibrates selectivities from the log behind `index`; the index must
  /// outlive the model.
  explicit CostModel(const LogIndex& index);

  /// For unit tests / synthetic studies: a model with explicit parameters
  /// instead of a log (mean instance length, mean per-activity match count).
  CostModel(double avg_instance_len, double default_atom_card);

  Estimate estimate(const Pattern& p) const;
  double cost(const Pattern& p) const { return estimate(p).cost; }

  double avg_instance_len() const noexcept { return avg_len_; }

 private:
  double atom_cardinality(const Pattern& atom) const;

  const LogIndex* index_ = nullptr;  // null for the synthetic constructor
  double avg_len_ = 1;
  double default_atom_card_ = 1;
  double num_instances_ = 1;
};

}  // namespace wflog
