#include "core/engine.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "common/error.h"
#include "core/printer.h"
#include "obs/telemetry.h"

namespace wflog {
namespace {

using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

/// Folds the evaluator-work delta of one run into the ambient registry.
void fold_counters(obs::Telemetry* t, EvalCounters delta) {
  t->eval_operator_nodes_total->add(delta.operator_nodes_evaluated);
  t->eval_pairs_examined_total->add(delta.pairs_examined);
  t->eval_incidents_emitted_total->add(delta.incidents_emitted);
  t->eval_cache_hits_total->add(delta.cache_hits);
  t->eval_cache_misses_total->add(delta.cache_misses);
  t->eval_cache_bytes_total->add(delta.cache_bytes);
}

/// Guard for one run()/run_batch() call, or nullopt when neither the
/// engine-wide QueryOptions nor the per-call RunLimits set a limit (the
/// zero-overhead common case). A set RunLimits field overrides its
/// engine-wide counterpart. Built per call, not per engine: the deadline
/// clock starts when evaluation does.
std::optional<EvalGuard> make_guard(const QueryOptions& options,
                                    const RunLimits& limits) {
  const std::chrono::milliseconds deadline =
      limits.deadline.count() > 0 ? limits.deadline : options.deadline;
  const std::size_t max_incidents =
      limits.max_incidents != 0 ? limits.max_incidents : options.max_incidents;
  const CancelToken cancel =
      limits.cancel != nullptr ? limits.cancel : options.cancel;
  if (deadline.count() <= 0 && max_incidents == 0 && cancel == nullptr) {
    return std::nullopt;
  }
  return std::optional<EvalGuard>(std::in_place, deadline, max_incidents,
                                  cancel);
}

void count_stop(StopReason reason) {
  WFLOG_TELEMETRY(t) {
    switch (reason) {
      case StopReason::kNone:
        break;
      case StopReason::kDeadline:
        t->query_deadline_exceeded_total->inc();
        break;
      case StopReason::kCancelled:
        t->query_cancelled_total->inc();
        break;
      case StopReason::kIncidentBudget:
        t->query_truncated_total->inc();
        break;
    }
  }
}

}  // namespace

namespace {

LogIndex build_index_instrumented(const Log& log) {
  WFLOG_SPAN(span, "engine.index_build");
  LogIndex index(log);
  if (span.active()) {
    span.arg("records", static_cast<std::uint64_t>(log.size()));
    span.arg("instances", static_cast<std::uint64_t>(log.wids().size()));
  }
  return index;
}

}  // namespace

QueryEngine::QueryEngine(const Log& log, QueryOptions options)
    : log_(&log),
      options_(options),
      index_(build_index_instrumented(log)),
      cost_model_(index_),
      shard_plan_(log.wids(), options.shards) {
  if (shard_plan_.num_shards() > 1) {
    // The calling thread participates in every scatter, so the pool only
    // needs shards-1 workers to keep all K shards in flight at once.
    shard_pool_ = std::make_unique<ShardPool>(shard_plan_.num_shards() - 1);
  }
}

QueryResult QueryEngine::run(std::string_view query_text) const {
  return run(query_text, RunLimits{});
}

QueryResult QueryEngine::run(std::string_view query_text,
                             const RunLimits& limits) const {
  WFLOG_SPAN(span, "query");
  if (span.active()) span.arg("query", std::string(query_text));
  const auto t0 = Clock::now();
  QueryResult r;
  {
    WFLOG_SPAN(parse_span, "query.parse");
    ParsedQuery parsed = parse_query(query_text);
    const double parse_us = us_since(t0);
    parse_span.end();
    r = run(std::move(parsed.pattern), std::move(parsed.where), limits);
    r.parse_us = parse_us;
  }
  WFLOG_TELEMETRY(t) { t->query_parse_seconds->observe(r.parse_us * 1e-6); }
  return r;
}

QueryResult QueryEngine::run(PatternPtr pattern, JoinExprPtr where) const {
  return run(std::move(pattern), std::move(where), RunLimits{});
}

QueryResult QueryEngine::run(PatternPtr pattern, JoinExprPtr where,
                             const RunLimits& limits) const {
  QueryResult r;
  r.parsed = pattern;
  r.where = std::move(where);
  r.estimated_cost_before = cost_model_.cost(*pattern);

  if (options_.optimize) {
    WFLOG_SPAN(opt_span, "query.optimize");
    const auto t0 = Clock::now();
    OptimizeResult opt =
        optimize(std::move(pattern), cost_model_, options_.optimizer);
    r.optimize_us = us_since(t0);
    r.executed = std::move(opt.pattern);
    r.estimated_cost_after = opt.final_cost;
    if (opt_span.active()) {
      opt_span.arg("cost_before", r.estimated_cost_before);
      opt_span.arg("cost_after", r.estimated_cost_after);
    }
  } else {
    r.executed = std::move(pattern);
    r.estimated_cost_after = r.estimated_cost_before;
  }

  obs::Telemetry* telemetry = obs::telemetry();

  // Serial evaluation gets a per-run Evaluator (construction just borrows
  // the index): its work counters mutate on const calls, so a shared
  // long-lived evaluator races when concurrent callers share the engine —
  // the same reason every shard task builds its own.
  const Evaluator ev(index_, options_.eval);

  const std::optional<EvalGuard> guard = make_guard(options_, limits);
  const EvalGuard* guard_ptr = guard.has_value() ? &*guard : nullptr;
  // Node-traced runs stay serial: per-node spans interleaved across shard
  // workers would scramble the explain() tree.
  const bool trace_nodes = telemetry != nullptr && telemetry->trace_nodes;
  const bool sharded = shard_plan_.num_shards() > 1 && !trace_nodes;
  r.shards_used = sharded ? shard_plan_.num_shards() : 1;
  EvalCounters shard_counters;
  const auto t1 = Clock::now();
  {
    WFLOG_SPAN(eval_span, "query.eval");
    if (trace_nodes) {
      // explain()-grade detail: a span per operator node per instance.
      const NodeTracer node_trace(telemetry->tracer, *r.executed);
      r.incidents = ev.evaluate(*r.executed, &node_trace, guard_ptr);
    } else if (sharded) {
      ShardEvalOptions sopts;
      sopts.eval = options_.eval;
      sopts.guard = guard_ptr;
      sopts.pool = shard_pool_.get();
      sopts.counters = telemetry != nullptr ? &shard_counters : nullptr;
      r.incidents = evaluate_sharded(*r.executed, index_, shard_plan_, sopts);
    } else {
      r.incidents = ev.evaluate(*r.executed, nullptr, guard_ptr);
    }
    if (eval_span.active()) {
      eval_span.arg("incidents",
                    static_cast<std::uint64_t>(r.incidents.total()));
      if (sharded) {
        eval_span.arg("shards",
                      static_cast<std::uint64_t>(shard_plan_.num_shards()));
      }
    }
  }
  if (r.where != nullptr) {
    // Existential where semantics over assignments; derivation runs
    // against the PARSED pattern (its variables), not the optimized tree
    // (rewrites preserve incidents but may reshape the atom layout). The
    // guard keeps counting here: binding derivation over a large incident
    // set can dominate the deadline.
    WFLOG_SPAN(where_span, "query.where");
    r.incidents =
        filter_where(r.incidents, *r.parsed, *r.where, index_, guard_ptr);
  }
  if (guard_ptr != nullptr) {
    r.stop_reason = guard_ptr->reason();
    count_stop(r.stop_reason);
  }
  r.eval_us = us_since(t1);

  if (telemetry != nullptr) {
    telemetry->queries_total->inc();
    telemetry->query_optimize_seconds->observe(r.optimize_us * 1e-6);
    telemetry->query_eval_seconds->observe(r.eval_us * 1e-6);
    if (sharded) telemetry->shard_eval_seconds->observe(r.eval_us * 1e-6);
    // Serial runs accumulate in the per-run evaluator; sharded runs in
    // the per-shard evaluators (folded into shard_counters). Exactly one
    // of the two is nonzero.
    EvalCounters delta = ev.counters();
    delta += shard_counters;
    fold_counters(telemetry, delta);
  }
  return r;
}

Query Query::parse(std::string_view text) {
  ParsedQuery parsed = parse_query(text);
  return Query(std::move(parsed.pattern), std::move(parsed.where));
}

std::size_t BatchResult::total() const {
  std::size_t n = 0;
  for (const QueryResult& r : results) n += r.total();
  return n;
}

BatchResult QueryEngine::run_batch(std::span<const Query> queries,
                                   std::size_t threads,
                                   bool use_cache) const {
  return run_batch(queries, threads, use_cache, RunLimits{});
}

BatchResult QueryEngine::run_batch(std::span<const Query> queries,
                                   std::size_t threads, bool use_cache,
                                   const RunLimits& limits) const {
  WFLOG_SPAN(span, "batch");
  if (span.active()) {
    span.arg("queries", static_cast<std::uint64_t>(queries.size()));
    span.arg("threads", static_cast<std::uint64_t>(threads));
  }
  BatchResult batch;
  batch.results.resize(queries.size());

  // Per-query front end, identical to run(): cost estimate + optimize.
  // Sharing happens downstream on the EXECUTED trees, where canonical
  // keys absorb whatever commutations/rotations the optimizer chose.
  // A query that fails here becomes an error slot (null executed tree);
  // the rest of the batch is unaffected.
  std::vector<PatternPtr> executed;
  executed.reserve(queries.size());
  {
    WFLOG_SPAN(opt_span, "batch.optimize");
    for (std::size_t q = 0; q < queries.size(); ++q) {
      QueryResult& r = batch.results[q];
      r.parsed = queries[q].pattern;
      r.where = queries[q].where;
      if (r.parsed == nullptr) {
        if (r.error.empty()) r.error = "empty query";
        executed.push_back(nullptr);
        continue;
      }
      try {
        r.estimated_cost_before = cost_model_.cost(*r.parsed);
        if (options_.optimize) {
          const auto t0 = Clock::now();
          OptimizeResult opt =
              optimize(r.parsed, cost_model_, options_.optimizer);
          r.optimize_us = us_since(t0);
          r.executed = std::move(opt.pattern);
          r.estimated_cost_after = opt.final_cost;
        } else {
          r.executed = r.parsed;
          r.estimated_cost_after = r.estimated_cost_before;
        }
      } catch (const std::exception& e) {
        r.error = e.what();
        r.executed = nullptr;
      }
      executed.push_back(r.executed);
    }
  }

  const std::optional<EvalGuard> guard = make_guard(options_, limits);
  BatchOptions opts;
  opts.threads = threads;
  opts.use_cache = use_cache;
  opts.eval = options_.eval;
  opts.guard = guard.has_value() ? &*guard : nullptr;
  if (shard_plan_.num_shards() > 1) {
    // Sharded engine: the batch pass scatters whole shards (one memo per
    // shard) on the engine's pool instead of spawning per-call workers.
    opts.shard_plan = &shard_plan_;
    opts.shard_pool = shard_pool_.get();
  }
  const auto t1 = Clock::now();
  {
    WFLOG_SPAN(eval_span, "batch.eval");
    std::vector<IncidentSet> sets =
        evaluate_batch(executed, index_, opts, &batch.stats);
    if (eval_span.active()) {
      eval_span.arg("slots",
                    static_cast<std::uint64_t>(batch.stats.plan.distinct_slots));
      eval_span.arg("cache_hits", batch.stats.counters.cache_hits);
    }
    for (std::size_t q = 0; q < queries.size(); ++q) {
      QueryResult& r = batch.results[q];
      if (r.error.empty() && !batch.stats.query_errors.empty()) {
        r.error = batch.stats.query_errors[q];
      }
      if (!r.ok()) continue;  // error slot: no incidents
      r.shards_used = opts.shard_plan != nullptr ? shard_plan_.num_shards() : 1;
      r.incidents = std::move(sets[q]);
      if (r.where != nullptr) {
        try {
          r.incidents =
              filter_where(r.incidents, *r.parsed, *r.where, index_,
                           guard.has_value() ? &*guard : nullptr);
        } catch (const std::exception& e) {
          r.error = e.what();
          r.incidents = IncidentSet{};
        }
      }
      // Read AFTER the where pass: the shared guard may trip while
      // filtering, and that slot's result is then partial too.
      if (guard.has_value()) r.stop_reason = guard->reason();
    }
    if (guard.has_value()) count_stop(guard->reason());
  }
  batch.eval_us = us_since(t1);
  // Deterministic, documented attribution (engine.h): the pass is shared,
  // so every query reports the full shared-pass wall time rather than an
  // invented pro-rated share.
  for (QueryResult& r : batch.results) {
    r.eval_us = batch.eval_us;
  }

  WFLOG_TELEMETRY(t) {
    t->batches_total->inc();
    t->batch_queries_total->add(queries.size());
    t->batch_eval_seconds->observe(batch.eval_us * 1e-6);
    fold_counters(t, batch.stats.counters);
  }
  return batch;
}

BatchResult QueryEngine::run_batch(std::span<const std::string> query_texts,
                                   std::size_t threads,
                                   bool use_cache) const {
  return run_batch(query_texts, threads, use_cache, RunLimits{});
}

BatchResult QueryEngine::run_batch(std::span<const std::string> query_texts,
                                   std::size_t threads, bool use_cache,
                                   const RunLimits& limits) const {
  // Parse failures become error slots rather than aborting the batch.
  std::vector<Query> queries(query_texts.size());
  std::vector<std::string> parse_errors(query_texts.size());
  for (std::size_t q = 0; q < query_texts.size(); ++q) {
    try {
      queries[q] = Query::parse(query_texts[q]);
    } catch (const std::exception& e) {
      parse_errors[q] = e.what();
    }
  }
  BatchResult batch = run_batch(queries, threads, use_cache, limits);
  for (std::size_t q = 0; q < query_texts.size(); ++q) {
    if (!parse_errors[q].empty()) {
      batch.results[q].error = std::move(parse_errors[q]);
    }
  }
  return batch;
}

bool QueryEngine::exists(std::string_view query_text) const {
  WFLOG_SPAN(span, "query.exists");
  ParsedQuery parsed = parse_query(query_text);
  if (parsed.where == nullptr) {
    WFLOG_TELEMETRY(t) { t->queries_total->inc(); }
    if (shard_plan_.num_shards() > 1) {
      ShardEvalOptions sopts;
      sopts.eval = options_.eval;
      sopts.pool = shard_pool_.get();
      return exists_sharded(*parsed.pattern, index_, shard_plan_, sopts);
    }
    return Evaluator(index_, options_.eval).exists(*parsed.pattern);
  }
  // where clauses need materialized incidents + binding derivation.
  return run(std::move(parsed.pattern), std::move(parsed.where)).any();
}

std::size_t QueryEngine::count(std::string_view query_text) const {
  WFLOG_SPAN(span, "query.count");
  ParsedQuery parsed = parse_query(query_text);
  if (parsed.where == nullptr) {
    WFLOG_TELEMETRY(t) { t->queries_total->inc(); }
    if (shard_plan_.num_shards() > 1) {
      ShardEvalOptions sopts;
      sopts.eval = options_.eval;
      sopts.pool = shard_pool_.get();
      return count_sharded(*parsed.pattern, index_, shard_plan_, sopts);
    }
    return Evaluator(index_, options_.eval).count(*parsed.pattern);
  }
  return run(std::move(parsed.pattern), std::move(parsed.where)).total();
}

}  // namespace wflog
