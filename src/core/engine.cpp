#include "core/engine.h"

#include <algorithm>
#include <vector>

namespace wflog {
namespace {

using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

}  // namespace

QueryEngine::QueryEngine(const Log& log, QueryOptions options)
    : log_(&log),
      options_(options),
      index_(log),
      cost_model_(index_),
      evaluator_(index_, options.eval) {}

QueryResult QueryEngine::run(std::string_view query_text) const {
  const auto t0 = Clock::now();
  ParsedQuery parsed = parse_query(query_text);
  const double parse_us = us_since(t0);
  QueryResult r = run(std::move(parsed.pattern), std::move(parsed.where));
  r.parse_us = parse_us;
  return r;
}

QueryResult QueryEngine::run(PatternPtr pattern, JoinExprPtr where) const {
  QueryResult r;
  r.parsed = pattern;
  r.where = std::move(where);
  r.estimated_cost_before = cost_model_.cost(*pattern);

  if (options_.optimize) {
    const auto t0 = Clock::now();
    OptimizeResult opt =
        optimize(std::move(pattern), cost_model_, options_.optimizer);
    r.optimize_us = us_since(t0);
    r.executed = std::move(opt.pattern);
    r.estimated_cost_after = opt.final_cost;
  } else {
    r.executed = std::move(pattern);
    r.estimated_cost_after = r.estimated_cost_before;
  }

  const auto t1 = Clock::now();
  r.incidents = evaluator_.evaluate(*r.executed);
  if (r.where != nullptr) {
    // Existential where semantics over assignments; derivation runs
    // against the PARSED pattern (its variables), not the optimized tree
    // (rewrites preserve incidents but may reshape the atom layout).
    r.incidents = filter_where(r.incidents, *r.parsed, *r.where, index_);
  }
  r.eval_us = us_since(t1);
  return r;
}

Query Query::parse(std::string_view text) {
  ParsedQuery parsed = parse_query(text);
  return Query(std::move(parsed.pattern), std::move(parsed.where));
}

std::size_t BatchResult::total() const {
  std::size_t n = 0;
  for (const QueryResult& r : results) n += r.total();
  return n;
}

BatchResult QueryEngine::run_batch(std::span<const Query> queries,
                                   std::size_t threads,
                                   bool use_cache) const {
  BatchResult batch;
  batch.results.resize(queries.size());

  // Per-query front end, identical to run(): cost estimate + optimize.
  // Sharing happens downstream on the EXECUTED trees, where canonical
  // keys absorb whatever commutations/rotations the optimizer chose.
  std::vector<PatternPtr> executed;
  executed.reserve(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    QueryResult& r = batch.results[q];
    r.parsed = queries[q].pattern;
    r.where = queries[q].where;
    r.estimated_cost_before = cost_model_.cost(*r.parsed);
    if (options_.optimize) {
      const auto t0 = Clock::now();
      OptimizeResult opt =
          optimize(r.parsed, cost_model_, options_.optimizer);
      r.optimize_us = us_since(t0);
      r.executed = std::move(opt.pattern);
      r.estimated_cost_after = opt.final_cost;
    } else {
      r.executed = r.parsed;
      r.estimated_cost_after = r.estimated_cost_before;
    }
    executed.push_back(r.executed);
  }

  BatchOptions opts;
  opts.threads = threads;
  opts.use_cache = use_cache;
  opts.eval = options_.eval;
  const auto t1 = Clock::now();
  std::vector<IncidentSet> sets =
      evaluate_batch(executed, index_, opts, &batch.stats);
  for (std::size_t q = 0; q < queries.size(); ++q) {
    QueryResult& r = batch.results[q];
    r.incidents = std::move(sets[q]);
    if (r.where != nullptr) {
      r.incidents = filter_where(r.incidents, *r.parsed, *r.where, index_);
    }
  }
  batch.eval_us = us_since(t1);
  for (QueryResult& r : batch.results) {
    r.eval_us = batch.eval_us / std::max<std::size_t>(1, queries.size());
  }
  return batch;
}

BatchResult QueryEngine::run_batch(std::span<const std::string> query_texts,
                                   std::size_t threads,
                                   bool use_cache) const {
  std::vector<Query> queries;
  queries.reserve(query_texts.size());
  for (const std::string& text : query_texts) {
    queries.push_back(Query::parse(text));
  }
  return run_batch(queries, threads, use_cache);
}

bool QueryEngine::exists(std::string_view query_text) const {
  ParsedQuery parsed = parse_query(query_text);
  if (parsed.where == nullptr) {
    return evaluator_.exists(*parsed.pattern);
  }
  // where clauses need materialized incidents + binding derivation.
  return run(std::move(parsed.pattern), std::move(parsed.where)).any();
}

std::size_t QueryEngine::count(std::string_view query_text) const {
  ParsedQuery parsed = parse_query(query_text);
  if (parsed.where == nullptr) {
    return evaluator_.count(*parsed.pattern);
  }
  return run(std::move(parsed.pattern), std::move(parsed.where)).total();
}

}  // namespace wflog
