#pragma once

// Multi-threaded whole-log evaluation.
//
// Incidents never span workflow instances (Definition 4 requires one wid),
// so evaluation is embarrassingly parallel across instances: the log is
// partitioned by wid and each worker runs the ordinary per-instance
// evaluator over its share. Results are assembled in wid order, making the
// output bit-identical to the serial evaluator (property-tested).
//
// The LogIndex is shared read-only; each worker owns its Evaluator (whose
// counters are thread-local by construction).

#include <functional>

#include "core/evaluator.h"

namespace wflog {

struct ParallelOptions {
  /// Worker count; 0 = std::thread::hardware_concurrency().
  std::size_t threads = 0;
  EvalOptions eval;
};

/// Effective worker count: `requested` (0 = hardware_concurrency) clamped
/// to the number of work items — shared by the parallel evaluators and
/// the batch engine (core/batch.h).
std::size_t resolve_worker_count(std::size_t requested,
                                 std::size_t instances);

/// The instance-partitioning scheduler: runs work(i) for i in [0, count)
/// on `threads` workers pulling from a shared work-stealing cursor
/// (instances vary wildly in cost, so static chunking would leave
/// stragglers). threads <= 1 runs inline on the caller's thread.
void parallel_for_instances(std::size_t count, std::size_t threads,
                            const std::function<void(std::size_t)>& work);

/// Parallel inc_L(p). Falls back to the serial evaluator for tiny logs
/// (fewer instances than workers).
IncidentSet evaluate_parallel(const Pattern& p, const LogIndex& index,
                              const ParallelOptions& options = {});

/// Parallel |inc_L(p)| (uses the linear fast path per worker when legal).
std::size_t count_parallel(const Pattern& p, const LogIndex& index,
                           const ParallelOptions& options = {});

}  // namespace wflog
