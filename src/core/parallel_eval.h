#pragma once

// Multi-threaded whole-log evaluation.
//
// Incidents never span workflow instances (Definition 4 requires one wid),
// so evaluation is embarrassingly parallel across instances: the log is
// partitioned by wid and each worker runs the ordinary per-instance
// evaluator over its share. Results are assembled in wid order, making the
// output bit-identical to the serial evaluator (property-tested).
//
// The LogIndex is shared read-only; each worker owns its Evaluator (whose
// counters are thread-local by construction).

#include "core/evaluator.h"

namespace wflog {

struct ParallelOptions {
  /// Worker count; 0 = std::thread::hardware_concurrency().
  std::size_t threads = 0;
  EvalOptions eval;
};

/// Parallel inc_L(p). Falls back to the serial evaluator for tiny logs
/// (fewer instances than workers).
IncidentSet evaluate_parallel(const Pattern& p, const LogIndex& index,
                              const ParallelOptions& options = {});

/// Parallel |inc_L(p)| (uses the linear fast path per worker when legal).
std::size_t count_parallel(const Pattern& p, const LogIndex& index,
                           const ParallelOptions& options = {});

}  // namespace wflog
