#include "core/incident.h"

#include <algorithm>

namespace wflog {

Incident Incident::merged(const Incident& a, const Incident& b) {
  Incident out;
  out.wid_ = a.wid_;
  out.positions_.reserve(a.positions_.size() + b.positions_.size());
  std::set_union(a.positions_.begin(), a.positions_.end(),
                 b.positions_.begin(), b.positions_.end(),
                 std::back_inserter(out.positions_));
  return out;
}

bool Incident::disjoint(const Incident& a, const Incident& b) noexcept {
  // Cheap interval reject first: non-overlapping spans cannot share records.
  if (a.empty() || b.empty()) return true;
  if (a.last() < b.first() || b.last() < a.first()) return true;
  auto i = a.positions_.begin();
  auto j = b.positions_.begin();
  while (i != a.positions_.end() && j != b.positions_.end()) {
    if (*i == *j) return false;
    if (*i < *j) {
      ++i;
    } else {
      ++j;
    }
  }
  return true;
}

std::size_t Incident::hash() const noexcept {
  std::size_t h = static_cast<std::size_t>(wid_) * 0x9e3779b97f4a7c15ULL;
  for (IsLsn p : positions_) {
    h = h * 0x100000001b3ULL + p;
  }
  return h;
}

std::string Incident::to_string() const {
  std::string out = "{wid=" + std::to_string(wid_) + ":";
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    out += i == 0 ? " " : ", ";
    out += std::to_string(positions_[i]);
  }
  out += "}";
  return out;
}

void canonicalize(IncidentList& list) {
  std::sort(list.begin(), list.end());
  list.erase(std::unique(list.begin(), list.end()), list.end());
}

bool is_canonical(const IncidentList& list) noexcept {
  for (std::size_t i = 1; i < list.size(); ++i) {
    if (!(list[i - 1] < list[i])) return false;
  }
  return true;
}

void IncidentSet::add_group(Wid wid, IncidentList incidents) {
  groups_.push_back(Group{wid, std::move(incidents)});
}

std::size_t IncidentSet::total() const noexcept {
  std::size_t n = 0;
  for (const Group& g : groups_) n += g.incidents.size();
  return n;
}

const IncidentList* IncidentSet::find(Wid wid) const noexcept {
  for (const Group& g : groups_) {
    if (g.wid == wid) return &g.incidents;
  }
  return nullptr;
}

IncidentList IncidentSet::flatten() const {
  IncidentList all;
  all.reserve(total());
  for (const Group& g : groups_) {
    all.insert(all.end(), g.incidents.begin(), g.incidents.end());
  }
  canonicalize(all);
  return all;
}

bool IncidentSet::operator==(const IncidentSet& other) const {
  // Compare as sets of incidents: groups may be split differently (e.g. one
  // side omits empty groups), so flatten.
  return flatten() == other.flatten();
}

}  // namespace wflog
