#include "core/operators_opt.h"

#include <algorithm>
#include <unordered_set>

namespace wflog {
namespace {

/// Iterator to the first incident in `list` (canonical => sorted by
/// first()) whose first() is >= bound.
IncidentList::const_iterator lower_bound_first(const IncidentList& list,
                                               IsLsn bound) {
  return std::lower_bound(
      list.begin(), list.end(), bound,
      [](const Incident& o, IsLsn b) { return o.first() < b; });
}

struct IncidentHash {
  std::size_t operator()(const Incident& o) const noexcept {
    return o.hash();
  }
};

}  // namespace

IncidentList eval_consecutive_opt(const IncidentList& inc1,
                                  const IncidentList& inc2,
                                  const EvalGuard* guard) {
  IncidentList out;
  GuardPoll poll{guard};
  for (const Incident& o1 : inc1) {
    const IsLsn want = o1.last() + 1;
    for (auto it = lower_bound_first(inc2, want);
         it != inc2.end() && it->first() == want; ++it) {
      if (poll.should_stop()) {
        canonicalize(out);
        return out;
      }
      out.push_back(Incident::merged(o1, *it));
    }
  }
  canonicalize(out);
  return out;
}

IncidentList eval_sequential_opt(const IncidentList& inc1,
                                 const IncidentList& inc2,
                                 const EvalGuard* guard) {
  IncidentList out;
  GuardPoll poll{guard};
  for (const Incident& o1 : inc1) {
    for (auto it = lower_bound_first(inc2, o1.last() + 1); it != inc2.end();
         ++it) {
      if (poll.should_stop()) {
        canonicalize(out);
        return out;
      }
      out.push_back(Incident::merged(o1, *it));
    }
  }
  canonicalize(out);
  return out;
}

IncidentList eval_choice_opt(const IncidentList& inc1,
                             const IncidentList& inc2, bool dedup,
                             const EvalGuard* guard) {
  IncidentList out;
  out.reserve(inc1.size() + inc2.size());
  if (!dedup) {
    // Disjoint by construction: a linear sorted merge suffices.
    std::merge(inc1.begin(), inc1.end(), inc2.begin(), inc2.end(),
               std::back_inserter(out));
    return out;
  }
  std::unordered_set<Incident, IncidentHash> seen(inc1.begin(), inc1.end());
  out.insert(out.end(), inc1.begin(), inc1.end());
  GuardPoll poll{guard};
  for (const Incident& o2 : inc2) {
    if (poll.should_stop()) break;
    if (!seen.contains(o2)) out.push_back(o2);
  }
  canonicalize(out);
  return out;
}

IncidentList eval_parallel_opt(const IncidentList& inc1,
                               const IncidentList& inc2,
                               const EvalGuard* guard) {
  IncidentList out;
  GuardPoll poll{guard};
  for (const Incident& o1 : inc1) {
    for (const Incident& o2 : inc2) {
      if (poll.should_stop()) {
        canonicalize(out);
        return out;
      }
      // Incident::disjoint already performs the interval pre-filter before
      // the member scan; pairs with non-overlapping spans cost O(1).
      if (Incident::disjoint(o1, o2)) {
        out.push_back(Incident::merged(o1, o2));
      }
    }
  }
  canonicalize(out);
  return out;
}

}  // namespace wflog
