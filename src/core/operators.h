#pragma once

// Naive operator evaluation — a faithful implementation of the paper's
// Algorithm 1 ("Composite pattern operator evaluation algorithms").
//
// Each function combines the incident lists of two sub-patterns evaluated
// over ONE workflow instance (Algorithm 1's simplifying assumption; the
// tree evaluator handles the per-wid partitioning). Inputs are assumed
// canonical (sorted by first(), the ordering the paper stipulates);
// outputs are canonicalized, realising Definition 4's set semantics — the
// one place we deliberately go beyond the printed pseudo-code, which can
// emit duplicate unions (see DESIGN.md §6).
//
// Complexities follow Lemma 1:
//   consecutive  O(n1·n2)
//   sequential   O(n1·n2)
//   choice       O(n1·n2·min(k1,k2)) when operand activity multisets are
//                equal (dedup needed), O(n1+n2) otherwise
//   parallel     O(n1·n2·(k1+k2))

// Every function takes an optional EvalGuard (core/guard.h) and polls it
// periodically inside its pair loops — the cooperative cancellation /
// deadline hook. A tripped guard makes the function return the (canonical)
// incidents produced so far; the evaluator flags the result partial.

#include "core/guard.h"
#include "core/incident.h"

namespace wflog {

/// p1 ⊙ p2: pairs with last(o1) + 1 = first(o2).
IncidentList eval_consecutive_naive(const IncidentList& inc1,
                                    const IncidentList& inc2,
                                    const EvalGuard* guard = nullptr);

/// p1 ≫ p2: pairs with last(o1) < first(o2).
IncidentList eval_sequential_naive(const IncidentList& inc1,
                                   const IncidentList& inc2,
                                   const EvalGuard* guard = nullptr);

/// p1 ⊗ p2: set union. `dedup` should be true iff the operands' activity
/// multisets are equal (Lemma 1's refinement); when false the two lists are
/// disjoint by construction and are simply merged.
IncidentList eval_choice_naive(const IncidentList& inc1,
                               const IncidentList& inc2, bool dedup,
                               const EvalGuard* guard = nullptr);

/// p1 ⊕ p2: unions of record-disjoint pairs.
IncidentList eval_parallel_naive(const IncidentList& inc1,
                                 const IncidentList& inc2,
                                 const EvalGuard* guard = nullptr);

}  // namespace wflog
