#include "core/shard.h"

#include <atomic>
#include <utility>

#include "core/linear.h"
#include "obs/telemetry.h"

namespace wflog {

std::size_t resolve_shard_count(std::size_t requested,
                                std::size_t instances) noexcept {
  std::size_t n = requested != 0
                      ? requested
                      : std::max<std::size_t>(
                            1, std::thread::hardware_concurrency());
  return std::min(n, std::max<std::size_t>(1, instances));
}

ShardPlan::ShardPlan(const std::vector<Wid>& wids, std::size_t num_shards) {
  shards_.resize(resolve_shard_count(num_shards, wids.size()));
  num_instances_ = wids.size();
  for (std::size_t i = 0; i < wids.size(); ++i) {
    Shard& s = shards_[shard_of_wid(wids[i], shards_.size())];
    s.wids.push_back(wids[i]);
    s.global.push_back(i);
  }
}

// ----- ShardPool -----------------------------------------------------------

ShardPool::ShardPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ShardPool::~ShardPool() { shutdown(); }

void ShardPool::shutdown() {
  {
    std::lock_guard lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void ShardPool::drain_job(Job& job, std::unique_lock<std::mutex>& lock) {
  while (job.next < job.count) {
    const std::size_t i = job.next++;
    if (job.next >= job.count && !jobs_.empty() && jobs_.front() == &job) {
      // Exhausted: stop routing new claimants here. (The job outlives
      // this — its owner waits for `done` to catch up.)
      jobs_.pop_front();
    }
    lock.unlock();
    std::exception_ptr error;
    try {
      (*job.work)(i);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error != nullptr && job.error == nullptr) job.error = error;
    if (++job.done == job.count) job.finished.notify_all();
  }
}

void ShardPool::worker_loop() {
  std::unique_lock lock(mu_);
  while (true) {
    work_ready_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
    if (stop_) return;  // callers finish their own jobs inline
    drain_job(*jobs_.front(), lock);
  }
}

void ShardPool::run(std::size_t count,
                    const std::function<void(std::size_t)>& work) {
  if (count == 0) return;
  Job job;
  job.count = count;
  job.work = &work;
  std::unique_lock lock(mu_);
  if (!stop_ && !workers_.empty()) {
    jobs_.push_back(&job);
    work_ready_.notify_all();
  }
  // The caller always participates: with no workers (or a shut-down pool)
  // this IS the serial loop, and with busy workers it guarantees progress.
  drain_job(job, lock);
  job.finished.wait(lock, [&job] { return job.done == job.count; });
  // Defensive: if the job is somehow still queued (a worker popped jobs
  // only when claiming the last item), remove it before it dangles.
  for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
    if (*it == &job) {
      jobs_.erase(it);
      break;
    }
  }
  if (job.error != nullptr) std::rethrow_exception(job.error);
}

// ----- gather --------------------------------------------------------------

IncidentSet merge_shards(std::size_t num_instances,
                         std::vector<ShardResult> results) {
  // Scatter every shard's groups into one global-position-indexed table,
  // then emit in ascending position — the log's first-appearance order,
  // i.e. exactly the group order of an unsharded evaluation. Positions are
  // wid-disjoint across shards, so the scatter never collides and the
  // output is independent of the order `results` arrives in.
  std::vector<std::pair<Wid, IncidentList>> by_pos(num_instances);
  for (ShardResult& r : results) {
    for (std::size_t j = 0; j < r.positions.size(); ++j) {
      by_pos[r.positions[j]] = {r.wids[j], std::move(r.lists[j])};
    }
  }
  IncidentSet merged;
  for (auto& [wid, list] : by_pos) {
    if (!list.empty()) merged.add_group(wid, std::move(list));
  }
  return merged;
}

namespace {

/// Scatters `task(shard)` per the options: pool, injected serial order
/// (the test scheduler hook), or plain serial.
void scatter(const ShardPlan& plan, const ShardEvalOptions& options,
             const std::function<void(std::size_t)>& task) {
  const std::size_t n = plan.num_shards();
  if (options.pool != nullptr) {
    options.pool->run(n, task);
    return;
  }
  if (options.completion_order != nullptr) {
    for (const std::size_t s : *options.completion_order) task(s);
    return;
  }
  for (std::size_t s = 0; s < n; ++s) task(s);
}

void count_shard_telemetry(const ShardPlan& plan) {
  WFLOG_TELEMETRY(t) {
    t->shard_evals_total->inc();
    t->shard_tasks_total->add(plan.num_shards());
  }
}

}  // namespace

IncidentSet evaluate_sharded(const Pattern& p, const LogIndex& index,
                             const ShardPlan& plan,
                             const ShardEvalOptions& options) {
  count_shard_telemetry(plan);
  std::vector<ShardResult> results(plan.num_shards());
  std::vector<EvalCounters> counters(plan.num_shards());
  scatter(plan, options, [&](std::size_t s) {
    WFLOG_SPAN(span, "shard.task");
    const ShardPlan::Shard& shard = plan.shard(s);
    const Evaluator ev(index, options.eval);
    ShardResult& out = results[s];
    for (std::size_t j = 0; j < shard.wids.size(); ++j) {
      if (options.guard != nullptr && options.guard->stopped()) {
        // A sibling (or this shard's own budget) tripped the shared
        // guard: early-cancel, exactly like the unsharded instance loop.
        WFLOG_TELEMETRY(t) { t->shard_cancelled_total->inc(); }
        break;
      }
      IncidentList list = ev.evaluate_instance(p, shard.wids[j], nullptr,
                                               nullptr, options.guard);
      if (!list.empty()) {
        out.positions.push_back(shard.global[j]);
        out.wids.push_back(shard.wids[j]);
        out.lists.push_back(std::move(list));
      }
    }
    counters[s] = ev.counters();
    if (span.active()) {
      span.arg("shard", static_cast<std::uint64_t>(s));
      span.arg("instances", static_cast<std::uint64_t>(shard.wids.size()));
      span.arg("groups", static_cast<std::uint64_t>(out.lists.size()));
    }
  });
  if (options.counters != nullptr) {
    for (const EvalCounters& c : counters) *options.counters += c;
  }
  return merge_shards(plan.num_instances(), std::move(results));
}

std::size_t count_sharded(const Pattern& p, const LogIndex& index,
                          const ShardPlan& plan,
                          const ShardEvalOptions& options) {
  count_shard_telemetry(plan);
  const auto chain = options.eval.use_linear_fast_path &&
                             options.eval.max_span == 0
                         ? as_linear_chain(p)
                         : std::nullopt;
  std::vector<std::size_t> per_shard(plan.num_shards(), 0);
  scatter(plan, options, [&](std::size_t s) {
    WFLOG_SPAN(span, "shard.task");
    const ShardPlan::Shard& shard = plan.shard(s);
    std::size_t n = 0;
    if (chain.has_value()) {
      for (const Wid wid : shard.wids) n += count_linear(*chain, index, wid);
    } else {
      const Evaluator ev(index, options.eval);
      for (const Wid wid : shard.wids) {
        n += ev.evaluate_instance(p, wid).size();
      }
    }
    per_shard[s] = n;
    if (span.active()) {
      span.arg("shard", static_cast<std::uint64_t>(s));
      span.arg("count", static_cast<std::uint64_t>(n));
    }
  });
  std::size_t total = 0;
  for (const std::size_t n : per_shard) total += n;
  return total;
}

bool exists_sharded(const Pattern& p, const LogIndex& index,
                    const ShardPlan& plan,
                    const ShardEvalOptions& options) {
  count_shard_telemetry(plan);
  const auto chain = options.eval.use_linear_fast_path &&
                             options.eval.max_span == 0
                         ? as_linear_chain(p)
                         : std::nullopt;
  std::atomic<bool> found{false};
  scatter(plan, options, [&](std::size_t s) {
    WFLOG_SPAN(span, "shard.task");
    const ShardPlan::Shard& shard = plan.shard(s);
    const Evaluator ev(index, options.eval);
    for (const Wid wid : shard.wids) {
      if (found.load(std::memory_order_relaxed)) break;
      const bool hit =
          chain.has_value()
              ? exists_linear(*chain, index, wid)
              : !ev.evaluate_instance(p, wid).empty();
      if (hit) {
        found.store(true, std::memory_order_relaxed);
        break;
      }
    }
    if (span.active()) span.arg("shard", static_cast<std::uint64_t>(s));
  });
  return found.load(std::memory_order_relaxed);
}

}  // namespace wflog
