#pragma once

// LogMonitor: continuous (incremental) evaluation of incident patterns over
// a live, growing log.
//
// The paper's framework (Figure 2) has the workflow engine appending to the
// log while analysts query it; its related-work discussion singles out
// runtime monitoring (BP-Mon) as something warehouse pipelines do poorly.
// LogMonitor closes that loop: register patterns once, feed workflow events
// as they happen, and receive each NEW incident exactly once, the moment
// its last record arrives.
//
// Algorithm. For every (query, instance) pair the monitor keeps, per
// pattern node, the full incident list computed so far. When a record at
// position n arrives, new incidents are propagated bottom-up as DELTAS:
// every new incident contains position n, hence has last() == n, so
//
//   ⊙ / ≫ : delta = old-left × delta-right (a new left incident ends at n
//           and can never precede an existing right incident);
//   ⊗     : delta = delta-left ∪ delta-right (minus already-known ones);
//   ⊕     : delta = delta-left × old-right ∪ old-left × delta-right
//           ∪ delta-left × delta-right, disjoint pairs only.
//
// Root deltas are the freshly completed matches. The total work to process
// a whole log equals one batch evaluation (amortized); the win is latency —
// matches surface immediately — plus exactly-once delivery.

#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/evaluator.h"
#include "core/guard.h"
#include "core/incident.h"
#include "core/pattern.h"
#include "log/builder.h"

namespace wflog {

/// What the monitor does with an event it cannot apply — an unknown or
/// already-completed wid (out-of-order delivery, lost START) or a reserved
/// activity name.
enum class BadEventPolicy {
  kReject,      // throw Error (the strict default)
  kSkip,        // drop the event, count it, keep running
  kQuarantine,  // drop it but retain it for inspection (quarantined())
};

/// One rejected/skipped/quarantined event.
struct BadEvent {
  Wid wid = 0;
  std::string activity;
  std::string reason;
};

struct MonitorOptions {
  /// Same semantics switches as batch evaluation.
  bool negation_matches_sentinels = true;
  /// Retain all observed records so snapshot() works. Disable for
  /// long-running monitors that only need matches.
  bool keep_records = true;
  /// How to treat events that cannot be applied. Under kSkip/kQuarantine
  /// the feed keeps running — one misbehaving producer cannot take down
  /// the monitor.
  BadEventPolicy bad_event_policy = BadEventPolicy::kReject;
  /// Invoked for every bad event (all policies), before it is thrown,
  /// dropped, or quarantined.
  std::function<void(const BadEvent&)> on_bad_event;
  /// Most recent quarantined events retained under kQuarantine; older ones
  /// are dropped (counted by num_quarantine_dropped()). 0 retains nothing.
  std::size_t quarantine_capacity = 1024;
};

class LogMonitor {
 public:
  using QueryId = std::size_t;

  struct Match {
    QueryId query = 0;
    Incident incident;
  };

  explicit LogMonitor(MonitorOptions options = {});

  // ----- query management ----------------------------------------------
  /// Registers a pattern. Retained history is replayed first (requires
  /// keep_records when events were already fed), so results are identical
  /// to having registered the query before the first event; historical
  /// matches are reported immediately, in log order.
  ///
  /// A non-null `guard` bounds the backfill replay (deadline / incident
  /// budget / cancellation). When the guard trips, the half-registered
  /// query is rolled back completely and Error is thrown naming the stop
  /// reason — the monitor is left exactly as before the call.
  QueryId add_query(std::string_view pattern_text,
                    const EvalGuard* guard = nullptr);
  QueryId add_query(PatternPtr pattern, const EvalGuard* guard = nullptr);
  /// Unregisters a query and releases everything it owned: per-instance
  /// node state, the match-total entry, and any of its matches still
  /// queued for drain(). After removal the id never surfaces again.
  void remove_query(QueryId id);
  std::size_t num_queries() const noexcept { return queries_.size(); }

  // ----- event feed ------------------------------------------------------
  /// Starts a new workflow instance (emits its START record). Returns the
  /// fresh wid.
  Wid begin_instance();
  /// Records one activity execution for an open instance. An event naming
  /// an unknown/completed wid or a reserved activity is handled per
  /// MonitorOptions::bad_event_policy (kReject throws Error).
  void record(Wid wid, std::string_view activity, const NamedAttrs& in = {},
              const NamedAttrs& out = {});
  /// Completes an instance (emits END) and releases its per-query state.
  /// A wid that is not open follows the bad-event policy too.
  void end_instance(Wid wid);

  // ----- results -----------------------------------------------------------
  /// Matches accumulated since the last drain(), in arrival order.
  const std::vector<Match>& matches() const noexcept { return matches_; }
  std::vector<Match> drain();
  /// Extracts only one query's pending matches, preserving arrival order;
  /// other queries' matches stay queued.
  std::vector<Match> drain(QueryId id);
  std::size_t total_matches(QueryId id) const;

  /// Everything observed so far, as a validated Log (keep_records only).
  Log snapshot() const;

  std::size_t num_records() const noexcept { return num_records_; }
  /// Events retained under BadEventPolicy::kQuarantine, in arrival order
  /// (at most MonitorOptions::quarantine_capacity; oldest dropped first).
  const std::deque<BadEvent>& quarantined() const noexcept {
    return quarantined_;
  }
  /// Quarantined events evicted to honor quarantine_capacity.
  std::size_t num_quarantine_dropped() const noexcept {
    return num_quarantine_dropped_;
  }
  /// Bad events seen so far (rejected, skipped, and quarantined alike).
  std::size_t num_bad_events() const noexcept { return num_bad_events_; }

  /// Internal bookkeeping sizes, exposed so tests (and leak audits) can
  /// assert that removing a query releases everything it owned.
  struct MemoryStats {
    std::size_t state_queries = 0;    // query ids with per-instance state
    std::size_t state_instances = 0;  // (query, instance) state pairs
    std::size_t tracked_totals = 0;   // match_totals_ entries
    std::size_t pending_matches = 0;  // matches_ rows awaiting drain()
  };
  MemoryStats memory_stats() const noexcept;

 private:
  struct CompiledNode {
    PatternOp op = PatternOp::kAtom;
    // atom payload
    Symbol activity = kNoSymbol;
    bool negated = false;
    PredicatePtr predicate;
    // composite payload
    std::size_t left = 0;
    std::size_t right = 0;
  };

  struct CompiledQuery {
    QueryId id = 0;
    PatternPtr pattern;
    std::vector<CompiledNode> nodes;  // post-order; root last
  };

  /// Incident lists per node for one (query, instance) pair.
  struct InstanceState {
    std::vector<IncidentList> full;  // parallel to CompiledQuery::nodes
  };

  std::size_t compile_node(const Pattern& p, CompiledQuery& q);
  void feed(CompiledQuery& q, const LogRecord& l);
  void backfill(CompiledQuery& q, const EvalGuard* guard);
  void append_record(Wid wid, Symbol activity, AttrMap in, AttrMap out);
  /// Applies the bad-event policy: counts it, invokes the callback, then
  /// throws (kReject), drops (kSkip), or retains (kQuarantine) the event.
  void note_bad_event(Wid wid, std::string_view activity,
                      std::string reason);

  MonitorOptions options_;
  Interner interner_;
  Symbol start_sym_;
  Symbol end_sym_;
  std::vector<CompiledQuery> queries_;
  // State keyed per query id then wid.
  std::unordered_map<QueryId, std::unordered_map<Wid, InstanceState>> state_;
  std::unordered_map<Wid, IsLsn> next_is_lsn_;  // open instances
  std::vector<LogRecord> records_;              // retained when keep_records
  std::deque<BadEvent> quarantined_;            // ring: capacity-capped
  std::size_t num_quarantine_dropped_ = 0;
  std::size_t num_bad_events_ = 0;
  std::vector<Match> matches_;
  std::unordered_map<QueryId, std::size_t> match_totals_;
  Wid next_wid_ = 1;
  std::size_t num_records_ = 0;
  QueryId next_query_id_ = 1;
};

}  // namespace wflog
