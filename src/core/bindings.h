#pragma once

// Variable bindings — recovering "which record matched which atom".
//
// The conference version of the paper defines incidents through variable
// assignments ("x : t" atoms mapped to log records by a qualified
// assignment σ); the journal version drops the variables but loses the
// ability to say WHY a set of records is an incident. This module restores
// that: atoms may carry a variable name (`x:GetRefer` in the text syntax),
// and derive_bindings() reconstructs, for a given incident, a satisfying
// assignment of incident positions to the pattern's atoms.
//
// The derivation is a small exact-cover search (the paper's σ): for ⊙/≫
// the sorted position vector splits into a prefix and a suffix; for ⊗ one
// side must cover everything; for ⊕ every disjoint bipartition is tried.
// Incidents are small (one position per contributing atom), so the search
// is cheap in practice; patterns with more than kMaxParallelPositions
// positions under a ⊕ node are rejected rather than risking a blow-up.
//
// When a pattern is ambiguous (several assignments produce the same record
// set), the derivation returns the first assignment in a deterministic
// left-to-right order.

#include <optional>
#include <string>
#include <vector>

#include "core/incident.h"
#include "core/pattern.h"
#include "log/index.h"

namespace wflog {

struct Binding {
  std::string variable;
  IsLsn position = 0;

  bool operator==(const Binding& other) const {
    return variable == other.variable && position == other.position;
  }
};

using BindingMap = std::vector<Binding>;  // in atom (left-to-right) order

/// Limit on positions entering the exponential ⊕ bipartition search.
inline constexpr std::size_t kMaxParallelPositions = 20;

/// Reconstructs a satisfying assignment of `incident`'s positions to the
/// atoms of `p`, returning the named atoms' bindings. std::nullopt when
/// `incident` is not an incident of `p` (or exceeds the ⊕ search limit).
std::optional<BindingMap> derive_bindings(const Pattern& p,
                                          const Incident& incident,
                                          const LogIndex& index);

/// ALL satisfying assignments, in deterministic left-to-right search order
/// (at most `limit`). Used by the `where`-clause filter (core/join.h),
/// whose existential semantics must consider every assignment.
std::vector<BindingMap> derive_all_bindings(const Pattern& p,
                                            const Incident& incident,
                                            const LogIndex& index,
                                            std::size_t limit = 64);

/// "x = l14 UpdateRefer, y = l20 GetReimburse".
std::string render_bindings(const BindingMap& bindings, Wid wid,
                            const LogIndex& index);

}  // namespace wflog
