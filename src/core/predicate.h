#pragma once

// Attribute predicates — an EXTENSION beyond the paper's Definition 3.
//
// The paper's motivating queries ("How many students every year get
// referrals with balance > $5,000?") inspect attribute values, yet the
// formal pattern language only constrains activity names and temporal
// order. We close that gap with an optional predicate attached to an atomic
// pattern; a record matches the atom only if the predicate holds on its
// input/output maps. Predicates never affect the semantics of patterns that
// do not use them, so every theorem of the paper is preserved verbatim.
//
// Text syntax (inside [ ] after an activity name):
//   GetRefer[out.balance > 5000]
//   PayTreatment[in.referState = "active" && out.receipt1 >= 100]
//   UpdateRefer[exists out.balance]
// `in.` / `out.` select αin / αout; a bare attribute name checks both maps
// (αout first, matching "the value the activity observed or produced").

#include <memory>
#include <string>

#include "common/interner.h"
#include "common/value.h"
#include "log/record.h"

namespace wflog {

enum class CmpOp : std::uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class MapSel : std::uint8_t { kIn, kOut, kAny };

std::string_view to_string(CmpOp op);
std::string_view to_string(MapSel sel);

class Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

/// Immutable predicate AST node.
class Predicate {
 public:
  enum class Kind : std::uint8_t { kCompare, kExists, kAnd, kOr, kNot };

  static PredicatePtr compare(MapSel sel, std::string attr, CmpOp op,
                              Value literal);
  static PredicatePtr exists(MapSel sel, std::string attr);
  static PredicatePtr logical_and(PredicatePtr a, PredicatePtr b);
  static PredicatePtr logical_or(PredicatePtr a, PredicatePtr b);
  static PredicatePtr logical_not(PredicatePtr a);

  Kind kind() const noexcept { return kind_; }

  /// Evaluates on a record. An attribute absent from the selected map(s)
  /// fails every comparison (three-valued logic collapsed to false, the
  /// usual SQL-WHERE behaviour).
  bool eval(const LogRecord& record, const Interner& interner) const;

  /// Parseable text form (no surrounding brackets).
  std::string to_string() const;

  bool equals(const Predicate& other) const;
  std::size_t hash() const;

  // Leaf accessors (precondition: matching kind).
  MapSel sel() const noexcept { return sel_; }
  const std::string& attr() const noexcept { return attr_; }
  CmpOp cmp() const noexcept { return cmp_; }
  const Value& literal() const noexcept { return literal_; }
  const PredicatePtr& left() const noexcept { return left_; }
  const PredicatePtr& right() const noexcept { return right_; }

 private:
  Predicate() = default;

  Kind kind_ = Kind::kCompare;
  MapSel sel_ = MapSel::kAny;
  std::string attr_;
  CmpOp cmp_ = CmpOp::kEq;
  Value literal_;
  PredicatePtr left_;
  PredicatePtr right_;
};

}  // namespace wflog
