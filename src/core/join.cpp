#include "core/join.h"

#include <algorithm>
#include <cctype>

#include "common/error.h"
#include "common/text.h"
#include "core/parser.h"

namespace wflog {

std::string VarRef::to_string() const {
  if (sel == MapSel::kAny) return variable + "." + attr;
  return variable + "." + std::string(wflog::to_string(sel)) + "." + attr;
}

JoinExprPtr JoinExpr::compare(VarRef lhs, CmpOp op, Value literal) {
  auto e = std::shared_ptr<JoinExpr>(new JoinExpr());
  e->kind_ = Kind::kCmpLiteral;
  e->lhs_ = std::move(lhs);
  e->cmp_ = op;
  e->literal_ = std::move(literal);
  return e;
}

JoinExprPtr JoinExpr::compare_refs(VarRef lhs, CmpOp op, VarRef rhs) {
  auto e = std::shared_ptr<JoinExpr>(new JoinExpr());
  e->kind_ = Kind::kCmpRef;
  e->lhs_ = std::move(lhs);
  e->cmp_ = op;
  e->rhs_ref_ = std::move(rhs);
  return e;
}

JoinExprPtr JoinExpr::logical_and(JoinExprPtr a, JoinExprPtr b) {
  auto e = std::shared_ptr<JoinExpr>(new JoinExpr());
  e->kind_ = Kind::kAnd;
  e->left_ = std::move(a);
  e->right_ = std::move(b);
  return e;
}

JoinExprPtr JoinExpr::logical_or(JoinExprPtr a, JoinExprPtr b) {
  auto e = std::shared_ptr<JoinExpr>(new JoinExpr());
  e->kind_ = Kind::kOr;
  e->left_ = std::move(a);
  e->right_ = std::move(b);
  return e;
}

JoinExprPtr JoinExpr::logical_not(JoinExprPtr a) {
  auto e = std::shared_ptr<JoinExpr>(new JoinExpr());
  e->kind_ = Kind::kNot;
  e->left_ = std::move(a);
  return e;
}

namespace {

const Value* resolve(const VarRef& ref, const BindingMap& bindings, Wid wid,
                     const LogIndex& index) {
  const auto it = std::find_if(bindings.begin(), bindings.end(),
                               [&ref](const Binding& b) {
                                 return b.variable == ref.variable;
                               });
  if (it == bindings.end()) return nullptr;
  const LogRecord* l = index.find(wid, it->position);
  if (l == nullptr) return nullptr;
  const Symbol attr = index.log().interner().find(ref.attr);
  if (attr == kNoSymbol) return nullptr;
  switch (ref.sel) {
    case MapSel::kIn:
      return l->in.get(attr);
    case MapSel::kOut:
      return l->out.get(attr);
    case MapSel::kAny: {
      const Value* v = l->out.get(attr);
      return v != nullptr ? v : l->in.get(attr);
    }
  }
  return nullptr;
}

bool compare_values(const Value& a, CmpOp op, const Value& b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a.compare(b) < 0;
    case CmpOp::kLe:
      return a.compare(b) <= 0;
    case CmpOp::kGt:
      return a.compare(b) > 0;
    case CmpOp::kGe:
      return a.compare(b) >= 0;
  }
  return false;
}

}  // namespace

bool JoinExpr::eval(const BindingMap& bindings, Wid wid,
                    const LogIndex& index) const {
  switch (kind_) {
    case Kind::kCmpLiteral: {
      const Value* v = resolve(lhs_, bindings, wid, index);
      return v != nullptr && compare_values(*v, cmp_, literal_);
    }
    case Kind::kCmpRef: {
      const Value* a = resolve(lhs_, bindings, wid, index);
      const Value* b = resolve(rhs_ref_, bindings, wid, index);
      return a != nullptr && b != nullptr && compare_values(*a, cmp_, *b);
    }
    case Kind::kAnd:
      return left_->eval(bindings, wid, index) &&
             right_->eval(bindings, wid, index);
    case Kind::kOr:
      return left_->eval(bindings, wid, index) ||
             right_->eval(bindings, wid, index);
    case Kind::kNot:
      return !left_->eval(bindings, wid, index);
  }
  return false;
}

std::string JoinExpr::to_string() const {
  switch (kind_) {
    case Kind::kCmpLiteral: {
      // String literals are always quoted: a bare multi-word rendering
      // would not re-parse (and could be mistaken for a reference).
      std::string lit;
      if (literal_.kind() == ValueKind::kString) {
        lit = "\"";
        for (char c : literal_.as_string()) {
          if (c == '"' || c == '\\') lit += '\\';
          lit += c;
        }
        lit += "\"";
      } else {
        lit = literal_.to_string();
      }
      return lhs_.to_string() + " " + std::string(wflog::to_string(cmp_)) +
             " " + lit;
    }
    case Kind::kCmpRef:
      return lhs_.to_string() + " " + std::string(wflog::to_string(cmp_)) +
             " " + rhs_ref_.to_string();
    case Kind::kAnd:
      return "(" + left_->to_string() + " && " + right_->to_string() + ")";
    case Kind::kOr:
      return "(" + left_->to_string() + " || " + right_->to_string() + ")";
    case Kind::kNot:
      return "!(" + left_->to_string() + ")";
  }
  return "";
}

std::vector<std::string> JoinExpr::variables() const {
  std::vector<std::string> vars;
  switch (kind_) {
    case Kind::kCmpLiteral:
      vars.push_back(lhs_.variable);
      break;
    case Kind::kCmpRef:
      vars.push_back(lhs_.variable);
      vars.push_back(rhs_ref_.variable);
      break;
    case Kind::kAnd:
    case Kind::kOr: {
      vars = left_->variables();
      const auto r = right_->variables();
      vars.insert(vars.end(), r.begin(), r.end());
      break;
    }
    case Kind::kNot:
      vars = left_->variables();
      break;
  }
  std::sort(vars.begin(), vars.end());
  vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
  return vars;
}

// ------------------------------------------------------------------------
// Parsing
// ------------------------------------------------------------------------

namespace {

class JoinParser {
 public:
  JoinParser(std::string_view text, std::size_t base)
      : text_(text), base_(base) {}

  JoinExprPtr parse() {
    JoinExprPtr e = parse_or();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content in where clause");
    return e;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, base_ + pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool eat(std::string_view word) {
    skip_ws();
    if (text_.substr(pos_).starts_with(word)) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::string_view ident() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected identifier");
    return text_.substr(start, pos_ - start);
  }

  JoinExprPtr parse_or() {
    JoinExprPtr e = parse_and();
    while (eat("||")) e = JoinExpr::logical_or(e, parse_and());
    return e;
  }

  JoinExprPtr parse_and() {
    JoinExprPtr e = parse_factor();
    while (eat("&&")) e = JoinExpr::logical_and(e, parse_factor());
    return e;
  }

  VarRef parse_ref() {
    VarRef ref;
    ref.variable = std::string(ident());
    skip_ws();
    if (peek() != '.') fail("expected '.' after variable name");
    ++pos_;
    const std::string_view second = ident();
    if ((second == "in" || second == "out") && peek() == '.') {
      ++pos_;
      ref.sel = second == "in" ? MapSel::kIn : MapSel::kOut;
      ref.attr = std::string(ident());
    } else {
      ref.sel = MapSel::kAny;
      ref.attr = std::string(second);
    }
    return ref;
  }

  CmpOp parse_cmp() {
    skip_ws();
    if (eat("==") || eat("=")) return CmpOp::kEq;
    if (eat("!=")) return CmpOp::kNe;
    if (eat("<=")) return CmpOp::kLe;
    if (eat("<")) return CmpOp::kLt;
    if (eat(">=")) return CmpOp::kGe;
    if (eat(">")) return CmpOp::kGt;
    fail("expected comparison operator");
  }

  JoinExprPtr parse_factor() {
    skip_ws();
    if (eat("!")) return JoinExpr::logical_not(parse_factor());
    if (peek() == '(') {
      ++pos_;
      JoinExprPtr e = parse_or();
      skip_ws();
      if (peek() != ')') fail("expected ')'");
      ++pos_;
      return e;
    }
    VarRef lhs = parse_ref();
    const CmpOp op = parse_cmp();
    skip_ws();
    // Right-hand side: a reference (IDENT '.' ...) or a literal.
    if (pos_ < text_.size() &&
        (std::isalpha(static_cast<unsigned char>(text_[pos_])) != 0 ||
         text_[pos_] == '_')) {
      const std::size_t save = pos_;
      const std::string_view word = ident();
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '.') {
        pos_ = save;  // it is a reference: reparse fully
        return JoinExpr::compare_refs(std::move(lhs), op, parse_ref());
      }
      // Bare word literal (true/false/null/string).
      return JoinExpr::compare(std::move(lhs), op,
                               Value::parse(std::string(word)));
    }
    // Quoted string or number.
    if (peek() == '"') {
      const std::size_t start = pos_;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\') ++pos_;
        ++pos_;
      }
      if (pos_ >= text_.size()) fail("unterminated string literal");
      ++pos_;
      return JoinExpr::compare(
          std::move(lhs), op,
          Value::parse(text_.substr(start, pos_ - start)));
    }
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected literal or reference");
    return JoinExpr::compare(std::move(lhs), op,
                             Value::parse(text_.substr(start, pos_ - start)));
  }

  std::string_view text_;
  std::size_t base_;
  std::size_t pos_ = 0;
};

/// Byte offset of the top-level `where` keyword (outside [ ] predicates
/// and strings), or npos.
std::size_t find_where(std::string_view text) {
  bool in_brackets = false;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '[') {
      in_brackets = true;
    } else if (c == ']') {
      in_brackets = false;
    } else if (!in_brackets && c == 'w' &&
               text.compare(i, 5, "where") == 0) {
      const bool left_ok =
          i == 0 ||
          (std::isalnum(static_cast<unsigned char>(text[i - 1])) == 0 &&
           text[i - 1] != '_');
      const bool right_ok =
          i + 5 == text.size() ||
          (std::isalnum(static_cast<unsigned char>(text[i + 5])) == 0 &&
           text[i + 5] != '_');
      if (left_ok && right_ok) return i;
    }
  }
  return std::string_view::npos;
}

void collect_pattern_variables(const Pattern& p,
                               std::vector<std::string>& out) {
  if (p.is_atom()) {
    if (!p.binding().empty()) out.push_back(p.binding());
    return;
  }
  collect_pattern_variables(*p.left(), out);
  collect_pattern_variables(*p.right(), out);
}

}  // namespace

JoinExprPtr parse_join_expr(std::string_view text) {
  return JoinParser(text, 0).parse();
}

ParsedQuery parse_query(std::string_view text) {
  ParsedQuery q;
  const std::size_t where_at = find_where(text);
  if (where_at == std::string_view::npos) {
    q.pattern = parse_pattern(text);
    return q;
  }
  q.pattern = parse_pattern(text.substr(0, where_at));
  q.where = JoinParser(text.substr(where_at + 5), where_at + 5).parse();

  // Validate variable scope.
  std::vector<std::string> bound;
  collect_pattern_variables(*q.pattern, bound);
  std::sort(bound.begin(), bound.end());
  for (const std::string& var : q.where->variables()) {
    if (!std::binary_search(bound.begin(), bound.end(), var)) {
      throw QueryError("where clause references unbound variable '" + var +
                       "'");
    }
  }
  return q;
}

IncidentSet filter_where(const IncidentSet& incidents, const Pattern& p,
                         const JoinExpr& expr, const LogIndex& index,
                         const EvalGuard* guard) {
  IncidentSet out;
  for (const IncidentSet::Group& g : incidents.groups()) {
    IncidentList kept;
    for (const Incident& o : g.incidents) {
      // Binding derivation + expr evaluation per incident is the hot part
      // of a where pass; poll the guard here so a deadline set on the run
      // also bounds the filtering, not just the pattern evaluation.
      if (guard != nullptr && guard->check()) {
        if (!kept.empty()) out.add_group(g.wid, std::move(kept));
        return out;
      }
      const auto assignments = derive_all_bindings(p, o, index);
      const bool pass = std::any_of(
          assignments.begin(), assignments.end(),
          [&](const BindingMap& b) { return expr.eval(b, g.wid, index); });
      if (pass) kept.push_back(o);
    }
    if (!kept.empty()) out.add_group(g.wid, std::move(kept));
  }
  return out;
}

}  // namespace wflog
