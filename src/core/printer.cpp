#include "core/printer.h"

#include <functional>

namespace wflog {
namespace {

int print_precedence(PatternOp op) {
  switch (op) {
    case PatternOp::kChoice:
      return 1;
    case PatternOp::kParallel:
      return 2;
    case PatternOp::kConsecutive:
    case PatternOp::kSequential:
      return 3;
    case PatternOp::kAtom:
      return 4;
  }
  return 4;
}

void print_atom(std::string& out, const Pattern& p) {
  if (!p.binding().empty()) {
    out += p.binding();
    out += ':';
  }
  if (p.negated()) out += '!';
  out += p.activity();
  if (p.predicate() != nullptr) {
    out += '[';
    out += p.predicate()->to_string();
    out += ']';
  }
}

void print_rec(std::string& out, const Pattern& p, int parent_prec,
               bool is_right_child) {
  if (p.is_atom()) {
    print_atom(out, p);
    return;
  }
  const int prec = print_precedence(p.op());
  // The grammar is left-associative, so a right child at the same
  // precedence level must keep its parentheses to round-trip the tree
  // shape exactly (the denoted incident set would be unchanged by
  // Theorem 2/4, but we preserve structure).
  const bool parens =
      prec < parent_prec || (prec == parent_prec && is_right_child);
  if (parens) out += '(';
  print_rec(out, *p.left(), prec, false);
  out += ' ';
  out += op_token(p.op());
  out += ' ';
  print_rec(out, *p.right(), prec, true);
  if (parens) out += ')';
}

}  // namespace

std::string to_text(const Pattern& p) {
  std::string out;
  print_rec(out, p, 0, false);
  return out;
}

std::string to_tree_string(const Pattern& p) {
  std::string out;
  std::function<void(const Pattern&, const std::string&, const char*)> walk =
      [&](const Pattern& node, const std::string& prefix,
          const char* connector) {
        out += prefix;
        out += connector;
        if (node.is_atom()) {
          print_atom(out, node);
          out += '\n';
          return;
        }
        out += '[';
        out += op_token(node.op());
        out += "]\n";
        std::string child_prefix = prefix;
        if (connector[0] != '\0') {
          // Extend the rail: a `|--` parent keeps a vertical bar, a `` `-- ``
          // parent leaves blank space.
          child_prefix += connector[0] == '`' ? "    " : "|   ";
        }
        walk(*node.left(), child_prefix, "|-- ");
        walk(*node.right(), child_prefix, "`-- ");
      };
  walk(p, "", "");
  return out;
}

std::string render_incident(const Incident& o, const LogIndex& index) {
  std::string out = "wid=" + std::to_string(o.wid()) + " {";
  bool first = true;
  for (IsLsn n : o.positions()) {
    if (!first) out += ", ";
    first = false;
    const LogRecord* l = index.find(o.wid(), n);
    if (l == nullptr) {
      out += "?" + std::to_string(n);
    } else {
      out += "l" + std::to_string(l->lsn) + " " +
             std::string(index.log().activity_name(l->activity));
    }
  }
  out += "}";
  return out;
}

std::string render_incident_set(const IncidentSet& set, const LogIndex& index,
                                std::size_t limit) {
  std::string out;
  out += std::to_string(set.total()) + " incident(s) in " +
         std::to_string(set.num_groups()) + " instance(s)\n";
  for (const IncidentSet::Group& g : set.groups()) {
    std::size_t shown = 0;
    for (const Incident& o : g.incidents) {
      if (limit != 0 && shown == limit) {
        out += "  ... (" + std::to_string(g.incidents.size() - shown) +
               " more in wid=" + std::to_string(g.wid) + ")\n";
        break;
      }
      out += "  " + render_incident(o, index) + "\n";
      ++shown;
    }
  }
  return out;
}

}  // namespace wflog
