#pragma once

// Cooperative resource guards for query evaluation.
//
// Theorem 1 makes the engine's worst case explicit: a k-activity pattern
// over an m-record instance can emit O(m^k) incidents, so one adversarial
// query can monopolize the process. EvalGuard bounds a run three ways — a
// wall-clock deadline, an emitted-incident budget (the memory proxy), and
// a caller-held cancellation token — all checked cooperatively inside the
// operator loops and the tree evaluator. A tripped guard never throws:
// evaluation unwinds cleanly and the caller gets whatever was computed so
// far, a PARTIAL result flagged with the StopReason.
//
// One guard serves one query (or one whole batch, where a trip stops every
// query); it is safe to share across the parallel scheduler's workers.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace wflog {

/// Shared flag a caller sets (from any thread) to stop a running query:
///   CancelToken token = make_cancel_token();
///   ... hand token to QueryOptions, evaluate on another thread ...
///   token->store(true);   // the query returns a kCancelled partial result
using CancelToken = std::shared_ptr<std::atomic<bool>>;

inline CancelToken make_cancel_token() {
  return std::make_shared<std::atomic<bool>>(false);
}

/// Why an evaluation stopped early (kNone = it ran to completion).
enum class StopReason : std::uint8_t {
  kNone = 0,
  kDeadline,        // the wall-clock deadline elapsed
  kCancelled,       // the CancelToken was set
  kIncidentBudget,  // emitted incidents exceeded the budget
};

const char* stop_reason_name(StopReason r) noexcept;

class EvalGuard {
 public:
  /// deadline <= 0 disables the clock; max_incidents == 0 disables the
  /// budget; a null token disables cancellation.
  EvalGuard(std::chrono::milliseconds deadline, std::size_t max_incidents,
            CancelToken cancel);

  /// True when evaluation should stop. Cheap enough for inner loops: the
  /// tripped state and the cancel flag cost one relaxed load each; the
  /// clock is only read every kTicksPerClockCheck calls.
  bool check() const noexcept;

  /// Charges `n` emitted incidents against the budget; trips the guard
  /// once the total exceeds it.
  void add_incidents(std::size_t n) const noexcept;

  StopReason reason() const noexcept {
    return static_cast<StopReason>(
        reason_.load(std::memory_order_relaxed));
  }
  bool stopped() const noexcept { return reason() != StopReason::kNone; }
  std::uint64_t incidents_charged() const noexcept {
    return incidents_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint32_t kTicksPerClockCheck = 64;

  /// First trip wins; later causes are ignored.
  void trip(StopReason r) const noexcept {
    std::uint8_t expected = 0;
    reason_.compare_exchange_strong(expected, static_cast<std::uint8_t>(r),
                                    std::memory_order_relaxed);
  }

  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::uint64_t max_incidents_ = 0;
  CancelToken cancel_;
  mutable std::atomic<std::uint32_t> ticks_{0};
  mutable std::atomic<std::uint64_t> incidents_{0};
  mutable std::atomic<std::uint8_t> reason_{0};
};

/// Amortizes EvalGuard::check() over a tight loop: one check every
/// kStride iterations, zero cost (one null test, one decrement) otherwise.
///
///   GuardPoll poll{guard};
///   for (...) { if (poll.should_stop()) break; ... }
struct GuardPoll {
  static constexpr std::uint32_t kStride = 256;

  const EvalGuard* guard;
  std::uint32_t countdown = kStride;

  bool should_stop() {
    if (guard == nullptr) return false;
    if (--countdown != 0) return false;
    countdown = kStride;
    return guard->check();
  }
};

}  // namespace wflog
