#include "core/bindings.h"

#include <algorithm>
#include <functional>

namespace wflog {
namespace {

using Positions = std::vector<IsLsn>;  // sorted, distinct

/// Called each time a complete assignment for the current subtree is in
/// `current`; returns true to STOP the whole exploration.
using Continuation = std::function<bool()>;

/// Backtracking exact-cover exploration. Invokes `cont` once per way to
/// match `p` against exactly `positions`, with the named atoms' bindings
/// appended to `current` for the duration of the call.
bool explore(const Pattern& p, const Positions& positions, Wid wid,
             const LogIndex& index, BindingMap& current,
             const Continuation& cont) {
  if (p.is_atom()) {
    if (positions.size() != 1) return false;
    const LogRecord* l = index.find(wid, positions.front());
    if (l == nullptr) return false;
    const Symbol sym = index.log().activity_symbol(p.activity());
    const bool name_ok = p.negated()
                             ? l->activity != sym
                             : sym != kNoSymbol && l->activity == sym;
    if (!name_ok) return false;
    if (p.predicate() != nullptr &&
        !p.predicate()->eval(*l, index.log().interner())) {
      return false;
    }
    if (p.binding().empty()) return cont();
    current.push_back(Binding{p.binding(), positions.front()});
    const bool stop = cont();
    current.pop_back();
    return stop;
  }

  auto sizes_fit = [](const Pattern& node, std::size_t n) {
    return n >= node.min_incident_size() && n <= node.max_incident_size();
  };
  if (!sizes_fit(p, positions.size())) return false;

  switch (p.op()) {
    case PatternOp::kAtom:
      return false;  // unreachable
    case PatternOp::kConsecutive:
    case PatternOp::kSequential: {
      // Left covers a prefix, right the remaining suffix.
      const bool cons = p.op() == PatternOp::kConsecutive;
      for (std::size_t split = 1; split < positions.size(); ++split) {
        if (!sizes_fit(*p.left(), split) ||
            !sizes_fit(*p.right(), positions.size() - split)) {
          continue;
        }
        if (cons && positions[split - 1] + 1 != positions[split]) continue;
        const Positions left(positions.begin(),
                             positions.begin() +
                                 static_cast<std::ptrdiff_t>(split));
        const Positions right(positions.begin() +
                                  static_cast<std::ptrdiff_t>(split),
                              positions.end());
        const bool stop = explore(
            *p.left(), left, wid, index, current,
            [&]() {
              return explore(*p.right(), right, wid, index, current, cont);
            });
        if (stop) return true;
      }
      return false;
    }
    case PatternOp::kChoice: {
      if (explore(*p.left(), positions, wid, index, current, cont)) {
        return true;
      }
      return explore(*p.right(), positions, wid, index, current, cont);
    }
    case PatternOp::kParallel: {
      const std::size_t n = positions.size();
      if (n > kMaxParallelPositions) return false;  // refuse the blow-up
      const std::uint32_t limit = 1u << n;
      for (std::uint32_t mask = 1; mask + 1 < limit; ++mask) {
        const auto left_count =
            static_cast<std::size_t>(__builtin_popcount(mask));
        if (!sizes_fit(*p.left(), left_count) ||
            !sizes_fit(*p.right(), n - left_count)) {
          continue;
        }
        Positions left;
        Positions right;
        left.reserve(left_count);
        right.reserve(n - left_count);
        for (std::size_t i = 0; i < n; ++i) {
          ((mask >> i) & 1u ? left : right).push_back(positions[i]);
        }
        const bool stop = explore(
            *p.left(), left, wid, index, current,
            [&]() {
              return explore(*p.right(), right, wid, index, current, cont);
            });
        if (stop) return true;
      }
      return false;
    }
  }
  return false;
}

}  // namespace

std::optional<BindingMap> derive_bindings(const Pattern& p,
                                          const Incident& incident,
                                          const LogIndex& index) {
  BindingMap current;
  std::optional<BindingMap> result;
  explore(p, incident.positions(), incident.wid(), index, current,
          [&current, &result]() {
            result = current;
            return true;  // first assignment suffices
          });
  return result;
}

std::string render_bindings(const BindingMap& bindings, Wid wid,
                            const LogIndex& index) {
  std::string out;
  for (std::size_t i = 0; i < bindings.size(); ++i) {
    if (i != 0) out += ", ";
    out += bindings[i].variable;
    out += " = ";
    const LogRecord* l = index.find(wid, bindings[i].position);
    if (l == nullptr) {
      out += "?" + std::to_string(bindings[i].position);
    } else {
      out += "l" + std::to_string(l->lsn) + " " +
             std::string(index.log().activity_name(l->activity));
    }
  }
  return out;
}

std::vector<BindingMap> derive_all_bindings(const Pattern& p,
                                            const Incident& incident,
                                            const LogIndex& index,
                                            std::size_t limit) {
  BindingMap current;
  std::vector<BindingMap> all;
  explore(p, incident.positions(), incident.wid(), index, current,
          [&current, &all, limit]() {
            // Distinct match derivations can induce the same binding map
            // (e.g. unnamed atoms differing); deduplicate.
            if (std::find(all.begin(), all.end(), current) == all.end()) {
              all.push_back(current);
            }
            return all.size() >= limit;
          });
  return all;
}

}  // namespace wflog
