#include "core/explain.h"

#include <chrono>
#include <sstream>

#include "core/operators.h"
#include "core/operators_opt.h"

namespace wflog {
namespace {

using Clock = std::chrono::steady_clock;

/// Pre-order node table mirroring the pattern tree.
void build_profiles(const Pattern& p, const CostModel& model,
                    std::size_t instances, std::size_t depth,
                    std::vector<NodeProfile>& out) {
  NodeProfile profile;
  profile.depth = depth;
  profile.op = p.op();
  if (p.is_atom()) {
    profile.label = (p.negated() ? "!" : "") + p.activity();
    if (p.predicate() != nullptr) {
      profile.label += "[" + p.predicate()->to_string() + "]";
    }
  } else {
    profile.label = "[" + std::string(op_token(p.op())) + "]";
  }
  const Estimate est = model.estimate(p);
  profile.estimated_incidents =
      est.cardinality * static_cast<double>(instances);
  profile.estimated_cost = est.cost;
  out.push_back(std::move(profile));
  if (!p.is_atom()) {
    build_profiles(*p.left(), model, instances, depth + 1, out);
    build_profiles(*p.right(), model, instances, depth + 1, out);
  }
}

/// Evaluates the node rooted at profile index `at` for one instance,
/// charging stats to the profile table. Returns the incident list and the
/// next profile index after this subtree.
struct ProfilingEvaluator {
  const LogIndex& index;
  const Evaluator& atom_eval;  // reuse atom semantics (negation options)
  std::vector<NodeProfile>& profiles;

  std::pair<IncidentList, std::size_t> eval(const Pattern& p, std::size_t at,
                                            Wid wid) {
    if (p.is_atom()) {
      const auto t0 = Clock::now();
      IncidentList out = atom_eval.evaluate_instance(p, wid);
      profiles[at].actual_us +=
          std::chrono::duration<double, std::micro>(Clock::now() - t0)
              .count();
      profiles[at].actual_incidents += out.size();
      return {std::move(out), at + 1};
    }
    auto [left, after_left] = eval(*p.left(), at + 1, wid);
    auto [right, after_right] = eval(*p.right(), after_left, wid);

    const auto t0 = Clock::now();
    IncidentList out;
    switch (p.op()) {
      case PatternOp::kAtom:
        break;
      case PatternOp::kConsecutive:
        out = eval_consecutive_opt(left, right);
        break;
      case PatternOp::kSequential:
        out = eval_sequential_opt(left, right);
        break;
      case PatternOp::kChoice:
        out = eval_choice_opt(left, right,
                              needs_choice_dedup(*p.left(), *p.right()));
        break;
      case PatternOp::kParallel:
        out = eval_parallel_opt(left, right);
        break;
    }
    profiles[at].actual_us +=
        std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
    profiles[at].actual_incidents += out.size();
    profiles[at].pairs_examined +=
        static_cast<std::uint64_t>(left.size()) * right.size();
    return {std::move(out), after_right};
  }
};

}  // namespace

ExplainResult explain(const Pattern& p, const LogIndex& index,
                      const CostModel& model, const EvalOptions& opts) {
  ExplainResult result;
  build_profiles(p, model, index.wids().size(), 0, result.nodes);

  const Evaluator atom_eval(index, opts);
  ProfilingEvaluator prof{index, atom_eval, result.nodes};

  const auto t0 = Clock::now();
  for (Wid wid : index.wids()) {
    auto [incidents, next] = prof.eval(p, 0, wid);
    (void)next;
    if (!incidents.empty()) {
      result.incidents.add_group(wid, std::move(incidents));
    }
  }
  result.total_us =
      std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
  return result;
}

std::string ExplainResult::to_string() const {
  std::ostringstream os;
  std::size_t label_width = 4;
  for (const NodeProfile& n : nodes) {
    label_width = std::max(label_width, n.label.size() + 2 * n.depth);
  }
  auto pad = [&os](const std::string& s, std::size_t width) {
    os << s;
    for (std::size_t i = s.size(); i < width + 2; ++i) os << ' ';
  };
  pad("node", label_width);
  pad("actual", 10);
  pad("estimated", 10);
  pad("self-us", 10);
  os << "pairs\n";
  for (const NodeProfile& n : nodes) {
    pad(std::string(2 * n.depth, ' ') + n.label, label_width);
    pad(std::to_string(n.actual_incidents), 10);
    {
      std::ostringstream tmp;
      tmp.precision(1);
      tmp << std::fixed << n.estimated_incidents;
      pad(tmp.str(), 10);
    }
    {
      std::ostringstream tmp;
      tmp.precision(1);
      tmp << std::fixed << n.actual_us;
      pad(tmp.str(), 10);
    }
    if (n.op == PatternOp::kAtom) {
      os << "-";
    } else {
      os << n.pairs_examined;
    }
    os << "\n";
  }
  std::ostringstream total;
  total.precision(1);
  total << std::fixed << total_us;
  os << "total: " << incidents.total() << " incident(s) in " << total.str()
     << " us\n";
  return os.str();
}

}  // namespace wflog
