#include "core/explain.h"

#include <chrono>
#include <sstream>

#include "obs/trace.h"

namespace wflog {
namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

ExplainResult explain(const Pattern& p, const LogIndex& index,
                      const CostModel& model, const EvalOptions& opts) {
  ExplainResult result;

  // One profiling code path: evaluation runs through the ordinary
  // Evaluator with a NodeTracer emitting a span per node per instance
  // (core/evaluator.h); the report below is an aggregation of those spans.
  obs::Tracer tracer;
  const NodeTracer node_trace(tracer, p);

  // Row skeleton in NodeTracer's pre-order, with the cost model's view.
  struct Walk {
    const CostModel& model;
    std::size_t instances;
    std::vector<NodeProfile>& out;
    void visit(const Pattern& node, std::size_t depth) {
      NodeProfile profile;
      profile.depth = depth;
      profile.op = node.op();
      const Estimate est = model.estimate(node);
      profile.estimated_incidents =
          est.cardinality * static_cast<double>(instances);
      profile.estimated_cost = est.cost;
      out.push_back(std::move(profile));
      if (!node.is_atom()) {
        visit(*node.left(), depth + 1);
        visit(*node.right(), depth + 1);
      }
    }
  };
  Walk{model, index.wids().size(), result.nodes}.visit(p, 0);
  for (std::size_t i = 0; i < result.nodes.size(); ++i) {
    result.nodes[i].label = node_trace.label(i);
  }

  const Evaluator evaluator(index, opts);
  const auto t0 = Clock::now();
  for (Wid wid : index.wids()) {
    IncidentList incidents =
        evaluator.evaluate_instance(p, wid, nullptr, &node_trace);
    if (!incidents.empty()) {
      result.incidents.add_group(wid, std::move(incidents));
    }
  }
  result.total_us =
      std::chrono::duration<double, std::micro>(Clock::now() - t0).count();

  // Fold the spans into the per-node rows: self time (children excluded),
  // output cardinality, and pairs examined, summed over instances.
  const obs::SpanSnapshot snap = tracer.snapshot();
  std::vector<std::uint64_t> child_ns(snap.spans.size(), 0);
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    const obs::SpanRecord& span = snap.spans[i];
    if (span.parent != obs::SpanRecord::kNoParent) {
      child_ns[span.parent] += span.dur_ns;
    }
  }
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    const obs::SpanRecord& span = snap.spans[i];
    std::size_t node = result.nodes.size();
    std::uint64_t incidents = 0, pairs = 0;
    for (const obs::SpanArg& arg : span.args) {
      const auto* v = std::get_if<std::uint64_t>(&arg.value);
      if (v == nullptr) continue;
      if (arg.key == "node") {
        node = static_cast<std::size_t>(*v);
      } else if (arg.key == "incidents") {
        incidents = *v;
      } else if (arg.key == "pairs") {
        pairs = *v;
      }
    }
    if (node >= result.nodes.size()) continue;
    NodeProfile& row = result.nodes[node];
    // Saturate: clock quantization can make nested child durations sum to
    // a hair more than the parent's.
    const std::uint64_t self_ns =
        span.dur_ns > child_ns[i] ? span.dur_ns - child_ns[i] : 0;
    row.actual_us += static_cast<double>(self_ns) / 1000.0;
    row.actual_incidents += incidents;
    row.pairs_examined += pairs;
  }
  return result;
}

std::string ExplainResult::to_string() const {
  std::ostringstream os;
  std::size_t label_width = 4;
  for (const NodeProfile& n : nodes) {
    label_width = std::max(label_width, n.label.size() + 2 * n.depth);
  }
  auto pad = [&os](const std::string& s, std::size_t width) {
    os << s;
    for (std::size_t i = s.size(); i < width + 2; ++i) os << ' ';
  };
  pad("node", label_width);
  pad("actual", 10);
  pad("estimated", 10);
  pad("self-us", 10);
  os << "pairs\n";
  for (const NodeProfile& n : nodes) {
    pad(std::string(2 * n.depth, ' ') + n.label, label_width);
    pad(std::to_string(n.actual_incidents), 10);
    {
      std::ostringstream tmp;
      tmp.precision(1);
      tmp << std::fixed << n.estimated_incidents;
      pad(tmp.str(), 10);
    }
    {
      std::ostringstream tmp;
      tmp.precision(1);
      tmp << std::fixed << n.actual_us;
      pad(tmp.str(), 10);
    }
    if (n.op == PatternOp::kAtom) {
      os << "-";
    } else {
      os << n.pairs_examined;
    }
    os << "\n";
  }
  std::ostringstream total;
  total.precision(1);
  total << std::fixed << total_us;
  os << "total: " << incidents.total() << " incident(s) in " << total.str()
     << " us\n";
  return os.str();
}

}  // namespace wflog
