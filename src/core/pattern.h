#pragma once

// Incident patterns (Definition 3): the query expressions of the language.
//
//   atomic       t, ¬t          an activity (positive / negative)
//   consecutive  p1 . p2        p1 immediately followed by p2
//   sequential   p1 -> p2       p1 somewhere before p2
//   choice       p1 | p2        one of p1, p2
//   parallel     p1 & p2        both, interleaved, sharing no records
//
// Pattern nodes are immutable and shared (shared_ptr<const Pattern>), so
// rewriting (core/rewriter.h) builds new trees over existing subtrees with
// no copying. The "incident tree" of Definition 6 is exactly this AST.
//
// Atoms optionally carry an attribute predicate (core/predicate.h), an
// extension documented in DESIGN.md §7.

#include <memory>
#include <string>
#include <vector>

#include "core/predicate.h"

namespace wflog {

enum class PatternOp : std::uint8_t {
  kAtom,
  kConsecutive,  // paper: p1 ⊙ p2 (Algorithm 1 "CONS")
  kSequential,   // paper: p1 ≫ p2 ("SEQU")
  kChoice,       // paper: p1 ⊗ p2 ("CHOICE")
  kParallel,     // paper: p1 ⊕ p2 ("PARA")
};

/// Operator glyph in the library's text syntax (".", "->", "|", "&").
std::string_view op_token(PatternOp op);
/// Operator name ("consecutive", ...).
std::string_view op_name(PatternOp op);

class Pattern;
using PatternPtr = std::shared_ptr<const Pattern>;

class Pattern {
 public:
  // ----- construction ------------------------------------------------
  static PatternPtr atom(std::string activity, bool negated = false,
                         PredicatePtr predicate = nullptr);

  /// Atom carrying a variable name ("x" in the conference version's
  /// "x : t" incidents). Bindings are recovered per incident with
  /// derive_bindings (core/bindings.h); they do not affect semantics.
  static PatternPtr bound_atom(std::string binding, std::string activity,
                               bool negated = false,
                               PredicatePtr predicate = nullptr);
  static PatternPtr combine(PatternOp op, PatternPtr left, PatternPtr right);
  static PatternPtr consecutive(PatternPtr l, PatternPtr r) {
    return combine(PatternOp::kConsecutive, std::move(l), std::move(r));
  }
  static PatternPtr sequential(PatternPtr l, PatternPtr r) {
    return combine(PatternOp::kSequential, std::move(l), std::move(r));
  }
  static PatternPtr choice(PatternPtr l, PatternPtr r) {
    return combine(PatternOp::kChoice, std::move(l), std::move(r));
  }
  static PatternPtr parallel(PatternPtr l, PatternPtr r) {
    return combine(PatternOp::kParallel, std::move(l), std::move(r));
  }

  // ----- shape -------------------------------------------------------
  PatternOp op() const noexcept { return op_; }
  bool is_atom() const noexcept { return op_ == PatternOp::kAtom; }

  /// Atom accessors. Precondition: is_atom().
  const std::string& activity() const noexcept { return activity_; }
  bool negated() const noexcept { return negated_; }
  const PredicatePtr& predicate() const noexcept { return predicate_; }
  /// Variable name bound to this atom's matched record; empty = unnamed.
  const std::string& binding() const noexcept { return binding_; }

  /// Composite accessors. Precondition: !is_atom().
  const PatternPtr& left() const noexcept { return left_; }
  const PatternPtr& right() const noexcept { return right_; }

  // ----- structural measures ------------------------------------------
  /// Number of operator nodes (the k of Theorem 1).
  std::size_t num_operators() const noexcept { return num_operators_; }
  /// Number of atoms ("number of activity names", the k_i of Lemma 1).
  std::size_t num_atoms() const noexcept { return num_atoms_; }
  /// Tree height (atoms have height 1).
  std::size_t height() const noexcept { return height_; }

  /// The multiset of activity names occurring in the pattern, as a sorted
  /// vector (negative atoms prefixed with "!"). Lemma 1's refinement of
  /// choice: dedup is only needed when the operands' multisets are equal.
  std::vector<std::string> activity_multiset() const;

  /// Minimal / maximal number of records in any incident of this pattern.
  /// Choice makes the two differ; for every other operator they add up.
  std::size_t min_incident_size() const noexcept { return min_size_; }
  std::size_t max_incident_size() const noexcept { return max_size_; }

  /// Structure flags used to decide whether choice needs duplicate
  /// elimination (see needs_choice_dedup below).
  bool has_negation() const noexcept { return has_negation_; }
  bool has_choice() const noexcept { return has_choice_; }
  bool has_predicate() const noexcept { return has_predicate_; }

  // ----- identity -----------------------------------------------------
  bool structurally_equal(const Pattern& other) const;
  std::size_t hash() const noexcept { return hash_; }

 private:
  Pattern() = default;

  PatternOp op_ = PatternOp::kAtom;
  // atom state
  std::string activity_;
  std::string binding_;
  bool negated_ = false;
  PredicatePtr predicate_;
  // composite state
  PatternPtr left_;
  PatternPtr right_;
  // cached measures
  std::size_t num_operators_ = 0;
  std::size_t num_atoms_ = 1;
  std::size_t height_ = 1;
  std::size_t min_size_ = 1;
  std::size_t max_size_ = 1;
  bool has_negation_ = false;
  bool has_choice_ = false;
  bool has_predicate_ = false;
  std::size_t hash_ = 0;
};

/// Canonical key of a pattern: a text form invariant under the rewrites
/// the algebraic laws license without changing shape class —
///
///   Theorem 2: associativity of every operator (chains flatten),
///   Theorem 3: commutativity of ⊗/⊕ (operand lists sort),
///   Theorem 4: ⊙/≫ regrouping (mixed temporal chains flatten too; the
///              in-order operator sequence is grouping-invariant).
///
/// Equal keys imply equal incident sets on every log (soundness); the
/// converse does not hold — e.g. Theorem 5 distributions change the key.
/// Binding names are ignored (they never affect semantics); negation and
/// attribute predicates are part of the key. This is the sharing unit of
/// the batch engine (core/batch.h): subtrees with equal keys are computed
/// once per instance and reused across every query of a batch.
///
/// Grammar of the key (unambiguous by bracket kind; free text is
/// length-prefixed so embedded operator/bracket bytes in names or
/// predicate text can never collide with structure):
///   atom              a:LEN:NAME | n:LEN:NAME,
///                     then [LEN:pred-text] when a predicate is present
///   temporal chain    ( k1 op k2 op k3 ... )   op in { . , -> }
///   choice chain      { k1 | k2 | ... }        operands sorted
///   parallel chain    < k1 & k2 & ... >        operands sorted
std::string canonical_key(const Pattern& p);

/// FNV-style hash of canonical_key(p) — convenience for hash maps that
/// want Theorem-2/3/4-invariant pattern identity.
std::size_t canonical_hash(const Pattern& p);

/// Activities that every workflow instance contributing an incident to
/// `p` must contain, sorted and deduplicated. A positive atom requires
/// its activity (with or without a predicate — the incident record still
/// carries the activity); a negated atom requires nothing; ⊙/≫/⊕ union
/// their operands' requirements (an incident embeds one of each); ⊗
/// intersects them (either branch alone suffices). Storage-level block
/// pruning (log/store.h load_pruned) is sound against exactly this set:
/// an instance missing any required activity cannot produce an incident.
std::vector<std::string> required_activities(const Pattern& p);

/// Whether evaluating `p1 ⊗ p2` requires duplicate elimination.
///
/// Lemma 1's refinement — dedup only when the operands' activity multisets
/// are equal — is stated for positive, choice-free operands: there, every
/// incident's record-activity multiset equals the pattern's, so distinct
/// multisets guarantee disjoint incident sets. A negated atom can match any
/// activity and a nested choice makes the multiset ambiguous, so in those
/// cases we answer conservatively (true). A disjoint incident-size range is
/// always a sound reason to skip dedup.
bool needs_choice_dedup(const Pattern& p1, const Pattern& p2);

/// Convenience literals for building patterns in C++:
///   using namespace wflog::dsl;
///   auto p = A("SeeDoctor") >> (A("UpdateRefer") >> A("GetReimburse"));
namespace dsl {

inline PatternPtr A(std::string name) { return Pattern::atom(std::move(name)); }
inline PatternPtr N(std::string name) {
  return Pattern::atom(std::move(name), /*negated=*/true);
}

/// consecutive
inline PatternPtr operator+(PatternPtr l, PatternPtr r) {
  return Pattern::consecutive(std::move(l), std::move(r));
}
/// sequential
inline PatternPtr operator>>(PatternPtr l, PatternPtr r) {
  return Pattern::sequential(std::move(l), std::move(r));
}
/// choice
inline PatternPtr operator|(PatternPtr l, PatternPtr r) {
  return Pattern::choice(std::move(l), std::move(r));
}
/// parallel
inline PatternPtr operator&(PatternPtr l, PatternPtr r) {
  return Pattern::parallel(std::move(l), std::move(r));
}

}  // namespace dsl
}  // namespace wflog
