#include "core/cost.h"

#include <algorithm>
#include <cmath>

namespace wflog {
namespace {

// Work units: one pair-check or one emitted record position ~ 1.
constexpr double kPredicateSelectivity = 0.5;  // no value statistics kept

double log2_safe(double x) { return std::log2(std::max(2.0, x)); }

}  // namespace

CostModel::CostModel(const LogIndex& index) : index_(&index) {
  const Log& log = index.log();
  num_instances_ = std::max<std::size_t>(1, log.wids().size());
  avg_len_ = static_cast<double>(log.size()) / num_instances_;
  default_atom_card_ = 1.0;
}

CostModel::CostModel(double avg_instance_len, double default_atom_card)
    : avg_len_(std::max(1.0, avg_instance_len)),
      default_atom_card_(default_atom_card) {}

double CostModel::atom_cardinality(const Pattern& atom) const {
  double n;
  if (index_ != nullptr) {
    const Symbol sym = index_->log().activity_symbol(atom.activity());
    const double total =
        sym == kNoSymbol
            ? 0.0
            : static_cast<double>(index_->total_count(sym));
    const double per_instance = total / num_instances_;
    n = atom.negated() ? avg_len_ - per_instance : per_instance;
  } else {
    n = atom.negated() ? avg_len_ - default_atom_card_ : default_atom_card_;
  }
  if (atom.predicate() != nullptr) n *= kPredicateSelectivity;
  return std::max(0.0, n);
}

Estimate CostModel::estimate(const Pattern& p) const {
  if (p.is_atom()) {
    Estimate e;
    e.cardinality = atom_cardinality(p);
    // Index lookup + emission of the matches (+ a scan when negated, since
    // ¬t walks the instance).
    e.cost = e.cardinality + (p.negated() ? avg_len_ : 1.0);
    return e;
  }

  const Estimate l = estimate(*p.left());
  const Estimate r = estimate(*p.right());
  const double n1 = l.cardinality;
  const double n2 = r.cardinality;
  const double k1 = static_cast<double>(p.left()->num_atoms());
  const double k2 = static_cast<double>(p.right()->num_atoms());

  Estimate e;
  switch (p.op()) {
    case PatternOp::kAtom:
      break;  // unreachable
    case PatternOp::kConsecutive: {
      // P[last(o1)+1 == first(o2)] ~ 1/L.
      e.cardinality = n1 * n2 / avg_len_;
      // Optimized: binary search per o1 + emission (k1+k2 positions each).
      e.cost = n1 * log2_safe(n2) + e.cardinality * (k1 + k2);
      break;
    }
    case PatternOp::kSequential: {
      // P[last(o1) < first(o2)] ~ 1/2.
      e.cardinality = n1 * n2 / 2.0;
      e.cost = n1 * log2_safe(n2) + e.cardinality * (k1 + k2);
      break;
    }
    case PatternOp::kChoice: {
      const bool dedup = needs_choice_dedup(*p.left(), *p.right());
      e.cardinality = dedup ? std::max(n1, n2) : n1 + n2;
      e.cost = dedup ? (n1 + n2) * std::min(k1, k2) : n1 + n2;
      break;
    }
    case PatternOp::kParallel: {
      // Pairs sharing a record are rare when operand alphabets differ; keep
      // Lemma 1's bound as the expectation.
      e.cardinality = n1 * n2;
      e.cost = n1 * n2 + e.cardinality * (k1 + k2);
      break;
    }
  }
  e.cost += l.cost + r.cost;
  return e;
}

}  // namespace wflog
