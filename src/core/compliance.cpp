#include "core/compliance.h"

#include <algorithm>
#include <sstream>

namespace wflog {

std::string_view to_string(RuleKind kind) {
  switch (kind) {
    case RuleKind::kExistence:
      return "Existence";
    case RuleKind::kAbsence:
      return "Absence";
    case RuleKind::kExactly:
      return "Exactly";
    case RuleKind::kInit:
      return "Init";
    case RuleKind::kLast:
      return "Last";
    case RuleKind::kResponse:
      return "Response";
    case RuleKind::kAlternateResponse:
      return "AlternateResponse";
    case RuleKind::kChainResponse:
      return "ChainResponse";
    case RuleKind::kPrecedence:
      return "Precedence";
    case RuleKind::kChainPrecedence:
      return "ChainPrecedence";
    case RuleKind::kNotSuccession:
      return "NotSuccession";
  }
  return "?";
}

namespace {

Rule make(RuleKind kind, std::string a, std::string b, std::size_t n) {
  Rule r;
  r.kind = kind;
  r.a = std::move(a);
  r.b = std::move(b);
  r.n = n;
  return r;
}

}  // namespace

Rule Rule::existence(std::string a, std::size_t n) {
  return make(RuleKind::kExistence, std::move(a), {}, n);
}
Rule Rule::absence(std::string a, std::size_t n) {
  return make(RuleKind::kAbsence, std::move(a), {}, n);
}
Rule Rule::exactly(std::string a, std::size_t n) {
  return make(RuleKind::kExactly, std::move(a), {}, n);
}
Rule Rule::init(std::string a) {
  return make(RuleKind::kInit, std::move(a), {}, 1);
}
Rule Rule::last(std::string a) {
  return make(RuleKind::kLast, std::move(a), {}, 1);
}
Rule Rule::response(std::string a, std::string b) {
  return make(RuleKind::kResponse, std::move(a), std::move(b), 1);
}
Rule Rule::alternate_response(std::string a, std::string b) {
  return make(RuleKind::kAlternateResponse, std::move(a), std::move(b), 1);
}
Rule Rule::chain_response(std::string a, std::string b) {
  return make(RuleKind::kChainResponse, std::move(a), std::move(b), 1);
}
Rule Rule::precedence(std::string a, std::string b) {
  return make(RuleKind::kPrecedence, std::move(a), std::move(b), 1);
}
Rule Rule::chain_precedence(std::string a, std::string b) {
  return make(RuleKind::kChainPrecedence, std::move(a), std::move(b), 1);
}
Rule Rule::not_succession(std::string a, std::string b) {
  return make(RuleKind::kNotSuccession, std::move(a), std::move(b), 1);
}

std::string Rule::name() const {
  std::string out = std::string(wflog::to_string(kind)) + "(" + a;
  switch (kind) {
    case RuleKind::kExistence:
    case RuleKind::kAbsence:
    case RuleKind::kExactly:
      out += ", " + std::to_string(n);
      break;
    case RuleKind::kResponse:
    case RuleKind::kAlternateResponse:
    case RuleKind::kChainResponse:
    case RuleKind::kPrecedence:
    case RuleKind::kChainPrecedence:
    case RuleKind::kNotSuccession:
      out += ", " + b;
      break;
    case RuleKind::kInit:
    case RuleKind::kLast:
      break;
  }
  return out + ")";
}

namespace {

/// Position of the first violation of `rule` within one instance, or 0.
IsLsn find_violation(const Rule& rule, const LogIndex& index, Wid wid,
                     Symbol a_sym, Symbol b_sym,
                     const ComplianceOptions& options, bool* skipped) {
  const Log& log = index.log();
  // occurrences() returns the empty list for kNoSymbol (an activity the
  // log never saw), which is exactly the right behaviour for every rule.
  const std::vector<IsLsn>& a_occ = index.occurrences(wid, a_sym);
  const std::vector<IsLsn>& b_occ = index.occurrences(wid, b_sym);
  const std::size_t len = index.instance_length(wid);
  *skipped = false;

  switch (rule.kind) {
    case RuleKind::kExistence:
      if (a_occ.size() < rule.n) return static_cast<IsLsn>(len);  // "at end"
      return 0;
    case RuleKind::kAbsence: {
      if (a_occ.size() >= rule.n) return a_occ[rule.n - 1];
      return 0;
    }
    case RuleKind::kExactly: {
      if (a_occ.size() > rule.n) return a_occ[rule.n];
      if (a_occ.size() < rule.n) return static_cast<IsLsn>(len);
      return 0;
    }
    case RuleKind::kInit: {
      // Position 1 is START; the first business activity sits at 2.
      const LogRecord* first = index.find(wid, 2);
      if (first == nullptr || first->activity != a_sym) return 2;
      return 0;
    }
    case RuleKind::kLast: {
      const LogRecord* last_rec = index.find(
          wid, static_cast<IsLsn>(len));
      const bool completed =
          last_rec != nullptr && last_rec->activity == log.end_symbol();
      if (!completed) {
        if (options.skip_incomplete_for_last) {
          *skipped = true;
          return 0;
        }
        return static_cast<IsLsn>(len);
      }
      const LogRecord* final_act = index.find(
          wid, static_cast<IsLsn>(len - 1));
      if (final_act == nullptr || final_act->activity != a_sym) {
        return static_cast<IsLsn>(len - 1);
      }
      return 0;
    }
    case RuleKind::kResponse: {
      // Violated by the last a when no b follows it.
      if (a_occ.empty()) return 0;
      const IsLsn last_a = a_occ.back();
      if (b_occ.empty() || b_occ.back() <= last_a) return last_a;
      return 0;
    }
    case RuleKind::kAlternateResponse: {
      // Between consecutive a's (and after the final a) there must be a b.
      for (std::size_t i = 0; i < a_occ.size(); ++i) {
        const IsLsn from = a_occ[i];
        const IsLsn to = i + 1 < a_occ.size()
                             ? a_occ[i + 1]
                             : static_cast<IsLsn>(len + 1);
        const auto it =
            std::upper_bound(b_occ.begin(), b_occ.end(), from);
        if (it == b_occ.end() || *it >= to) return from;
      }
      return 0;
    }
    case RuleKind::kChainResponse: {
      for (IsLsn pos : a_occ) {
        const LogRecord* next = index.find(wid, pos + 1);
        if (next == nullptr || next->activity != b_sym) return pos;
      }
      return 0;
    }
    case RuleKind::kPrecedence: {
      // Every b needs an a before it: only the first b can be the witness.
      if (b_occ.empty()) return 0;
      if (a_occ.empty() || a_occ.front() >= b_occ.front()) {
        return b_occ.front();
      }
      return 0;
    }
    case RuleKind::kChainPrecedence: {
      for (IsLsn pos : b_occ) {
        if (pos == 1) return pos;
        const LogRecord* prev = index.find(wid, pos - 1);
        if (prev == nullptr || prev->activity != a_sym) return pos;
      }
      return 0;
    }
    case RuleKind::kNotSuccession: {
      // Violated iff some b follows some a — i.e. pattern `a -> b` has an
      // incident; the witness is the earliest such b.
      if (a_occ.empty() || b_occ.empty()) return 0;
      const auto it =
          std::upper_bound(b_occ.begin(), b_occ.end(), a_occ.front());
      if (it != b_occ.end()) return *it;
      return 0;
    }
  }
  return 0;
}

}  // namespace

ComplianceReport check_compliance(const std::vector<Rule>& rules,
                                  const LogIndex& index,
                                  const ComplianceOptions& options) {
  ComplianceReport report;
  const Log& log = index.log();
  report.results.reserve(rules.size());

  for (const Rule& rule : rules) {
    RuleResult result;
    result.rule = rule;
    const Symbol a_sym = log.activity_symbol(rule.a);
    const Symbol b_sym =
        rule.b.empty() ? kNoSymbol : log.activity_symbol(rule.b);

    for (Wid wid : index.wids()) {
      bool skipped = false;
      const IsLsn witness =
          find_violation(rule, index, wid, a_sym, b_sym, options, &skipped);
      if (skipped) continue;
      ++result.instances_checked;
      if (witness != 0) {
        ++result.instances_violating;
        if (result.samples.size() < options.max_samples_per_rule) {
          result.samples.push_back(Violation{wid, witness});
        }
      }
    }
    report.results.push_back(std::move(result));
  }
  return report;
}

bool ComplianceReport::compliant() const noexcept {
  for (const RuleResult& r : results) {
    if (!r.compliant()) return false;
  }
  return true;
}

std::size_t ComplianceReport::total_violations() const noexcept {
  std::size_t n = 0;
  for (const RuleResult& r : results) n += r.instances_violating;
  return n;
}

std::string ComplianceReport::to_string() const {
  std::size_t name_width = 4;
  for (const RuleResult& r : results) {
    name_width = std::max(name_width, r.rule.name().size());
  }
  std::ostringstream os;
  auto pad = [&os](const std::string& s, std::size_t width) {
    os << s;
    for (std::size_t i = s.size(); i < width + 2; ++i) os << ' ';
  };
  pad("rule", name_width);
  pad("checked", 8);
  os << "violations\n";
  for (const RuleResult& r : results) {
    pad(r.rule.name(), name_width);
    pad(std::to_string(r.instances_checked), 8);
    os << r.instances_violating;
    if (!r.samples.empty()) {
      os << "  (e.g. wid=" << r.samples.front().wid << " @"
         << r.samples.front().position << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace wflog
