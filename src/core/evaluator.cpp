#include "core/evaluator.h"

#include "core/linear.h"
#include "core/operators.h"
#include "core/operators_opt.h"

namespace wflog {

Evaluator::Evaluator(const LogIndex& index, EvalOptions opts)
    : index_(&index), opts_(opts) {}

IncidentList Evaluator::eval_atom(const Pattern& p, Wid wid) const {
  const Log& log = index_->log();
  const Symbol sym = log.activity_symbol(p.activity());
  IncidentList out;

  auto matches_predicate = [&](IsLsn n) {
    if (p.predicate() == nullptr) return true;
    const LogRecord* l = index_->find(wid, n);
    return l != nullptr && p.predicate()->eval(*l, log.interner());
  };

  if (!p.negated()) {
    // An activity name never interned can't occur in the log.
    if (sym == kNoSymbol) return out;
    for (IsLsn n : index_->occurrences(wid, sym)) {
      if (matches_predicate(n)) out.push_back(Incident::singleton(wid, n));
    }
    return out;
  }

  for (IsLsn n : index_->non_occurrences(wid, sym)) {
    if (!opts_.negation_matches_sentinels) {
      const LogRecord* l = index_->find(wid, n);
      if (l->activity == log.start_symbol() ||
          l->activity == log.end_symbol()) {
        continue;
      }
    }
    if (matches_predicate(n)) out.push_back(Incident::singleton(wid, n));
  }
  return out;
}

namespace {

std::uint64_t incident_bytes(const IncidentList& list) {
  std::uint64_t bytes = list.size() * sizeof(Incident);
  for (const Incident& o : list) bytes += o.size() * sizeof(IsLsn);
  return bytes;
}

}  // namespace

IncidentList Evaluator::eval_node(const Pattern& p, Wid wid,
                                  SubpatternMemo* memo) const {
  // Memo check first: a hit replaces the whole subtree's evaluation,
  // atoms included ("atomic occurrence lists are computed once").
  std::uint32_t slot = SubpatternMemo::kNoSlot;
  if (memo != nullptr) {
    slot = memo->slot_of(p);
    if (slot != SubpatternMemo::kNoSlot) {
      if (const IncidentList* cached = memo->lookup(slot)) {
        ++counters_.cache_hits;
        return *cached;
      }
    }
  }

  if (p.is_atom()) {
    IncidentList atoms = eval_atom(p, wid);
    if (slot != SubpatternMemo::kNoSlot) {
      ++counters_.cache_misses;
      counters_.cache_bytes += incident_bytes(atoms);
      memo->store(slot, atoms);
    }
    return atoms;
  }

  const IncidentList left = eval_node(*p.left(), wid, memo);
  const IncidentList right = eval_node(*p.right(), wid, memo);
  ++counters_.operator_nodes_evaluated;

  IncidentList out;
  const bool opt = opts_.use_optimized_operators;
  switch (p.op()) {
    case PatternOp::kAtom:
      break;  // unreachable
    case PatternOp::kConsecutive:
      counters_.pairs_examined += left.size() * right.size();
      out = opt ? eval_consecutive_opt(left, right)
                : eval_consecutive_naive(left, right);
      break;
    case PatternOp::kSequential:
      counters_.pairs_examined += left.size() * right.size();
      out = opt ? eval_sequential_opt(left, right)
                : eval_sequential_naive(left, right);
      break;
    case PatternOp::kChoice: {
      const bool dedup = needs_choice_dedup(*p.left(), *p.right());
      counters_.pairs_examined +=
          dedup ? left.size() * right.size() : left.size() + right.size();
      out = opt ? eval_choice_opt(left, right, dedup)
                : eval_choice_naive(left, right, dedup);
      break;
    }
    case PatternOp::kParallel:
      counters_.pairs_examined += left.size() * right.size();
      out = opt ? eval_parallel_opt(left, right)
                : eval_parallel_naive(left, right);
      break;
  }
  if (opts_.max_span != 0) {
    // Span only grows upward through the tree, so pruning here is sound.
    std::erase_if(out, [this](const Incident& o) {
      return o.last() - o.first() >= opts_.max_span;
    });
  }
  counters_.incidents_emitted += out.size();
  if (slot != SubpatternMemo::kNoSlot) {
    ++counters_.cache_misses;
    counters_.cache_bytes += incident_bytes(out);
    memo->store(slot, out);
  }
  return out;
}

IncidentList Evaluator::evaluate_instance(const Pattern& p, Wid wid,
                                          SubpatternMemo* memo) const {
  return eval_node(p, wid, memo);
}

IncidentSet Evaluator::evaluate(const Pattern& p) const {
  IncidentSet result;
  for (Wid wid : index_->wids()) {
    IncidentList incidents = eval_node(p, wid, nullptr);
    if (!incidents.empty()) result.add_group(wid, std::move(incidents));
  }
  return result;
}

bool Evaluator::exists(const Pattern& p) const {
  if (opts_.use_linear_fast_path && opts_.max_span == 0) {
    if (const auto chain = as_linear_chain(p)) {
      return exists_linear(*chain, *index_);
    }
  }
  for (Wid wid : index_->wids()) {
    if (!eval_node(p, wid, nullptr).empty()) return true;
  }
  return false;
}

std::size_t Evaluator::count(const Pattern& p) const {
  if (opts_.use_linear_fast_path && opts_.max_span == 0) {
    if (const auto chain = as_linear_chain(p)) {
      return count_linear(*chain, *index_);
    }
  }
  std::size_t n = 0;
  for (Wid wid : index_->wids()) {
    n += eval_node(p, wid, nullptr).size();
  }
  return n;
}

}  // namespace wflog
