#include "core/evaluator.h"

#include "core/linear.h"
#include "core/operators.h"
#include "core/operators_opt.h"

namespace wflog {
namespace {

/// Render label shared by NodeTracer spans and explain() rows.
std::string node_label(const Pattern& p) {
  if (!p.is_atom()) return "[" + std::string(op_token(p.op())) + "]";
  std::string label = (p.negated() ? "!" : "") + p.activity();
  if (p.predicate() != nullptr) {
    label += "[" + p.predicate()->to_string() + "]";
  }
  return label;
}

}  // namespace

NodeTracer::NodeTracer(obs::Tracer& tracer, const Pattern& root)
    : tracer_(&tracer) {
  // Pre-order walk, matching explain()'s row order.
  struct Frame {
    const Pattern* node;
    std::size_t depth;
  };
  std::vector<Frame> stack{{&root, 0}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    preorder_.emplace(f.node,
                      static_cast<std::uint32_t>(labels_.size()));
    labels_.push_back(node_label(*f.node));
    depths_.push_back(f.depth);
    if (!f.node->is_atom()) {
      // Right pushed first so left pops (and numbers) first.
      stack.push_back({f.node->right().get(), f.depth + 1});
      stack.push_back({f.node->left().get(), f.depth + 1});
    }
  }
}

obs::Tracer::Span NodeTracer::open(const Pattern& p) const {
  const auto it = preorder_.find(&p);
  if (it == preorder_.end()) {
    // Not a node of the traced tree (e.g. a different query of the same
    // batch): stay silent rather than mislabel.
    return obs::Tracer::Span{};
  }
  obs::Tracer::Span span = tracer_->span(labels_[it->second]);
  span.arg("node", static_cast<std::uint64_t>(it->second));
  return span;
}

Evaluator::Evaluator(const LogIndex& index, EvalOptions opts)
    : index_(&index), opts_(opts) {}

IncidentList Evaluator::eval_atom(const Pattern& p, Wid wid,
                                  const EvalGuard* guard) const {
  const Log& log = index_->log();
  const Symbol sym = log.activity_symbol(p.activity());
  IncidentList out;

  auto matches_predicate = [&](IsLsn n) {
    if (p.predicate() == nullptr) return true;
    const LogRecord* l = index_->find(wid, n);
    return l != nullptr && p.predicate()->eval(*l, log.interner());
  };

  // Predicate evaluation per occurrence can be arbitrarily slow (string
  // compares over long values); poll the guard so a deadline bounds the
  // filtering too, not just the operator combination above it.
  GuardPoll poll{guard};

  if (!p.negated()) {
    // An activity name never interned can't occur in the log.
    if (sym == kNoSymbol) return out;
    for (IsLsn n : index_->occurrences(wid, sym)) {
      if (poll.should_stop()) break;
      if (matches_predicate(n)) out.push_back(Incident::singleton(wid, n));
    }
    return out;
  }

  for (IsLsn n : index_->non_occurrences(wid, sym)) {
    if (poll.should_stop()) break;
    if (!opts_.negation_matches_sentinels) {
      const LogRecord* l = index_->find(wid, n);
      if (l->activity == log.start_symbol() ||
          l->activity == log.end_symbol()) {
        continue;
      }
    }
    if (matches_predicate(n)) out.push_back(Incident::singleton(wid, n));
  }
  return out;
}

namespace {

std::uint64_t incident_bytes(const IncidentList& list) {
  std::uint64_t bytes = list.size() * sizeof(Incident);
  for (const Incident& o : list) bytes += o.size() * sizeof(IsLsn);
  return bytes;
}

}  // namespace

IncidentList Evaluator::eval_node(const Pattern& p, Wid wid,
                                  SubpatternMemo* memo,
                                  const NodeTracer* trace,
                                  const EvalGuard* guard) const {
  // A tripped guard collapses the whole subtree to an empty list — the
  // cheapest sound partial answer (the caller flags the result).
  if (guard != nullptr && guard->check()) return {};

  // Profiling span (inert unless a NodeTracer is threaded through): opened
  // before the memo check so cache hits are visible in traces too.
  obs::Tracer::Span span;
  if (trace != nullptr) span = trace->open(p);

  // Memo check first: a hit replaces the whole subtree's evaluation,
  // atoms included ("atomic occurrence lists are computed once").
  std::uint32_t slot = SubpatternMemo::kNoSlot;
  if (memo != nullptr) {
    slot = memo->slot_of(p);
    if (slot != SubpatternMemo::kNoSlot) {
      if (const IncidentList* cached = memo->lookup(slot)) {
        ++counters_.cache_hits;
        if (span.active()) {
          span.arg("cache_hit", std::uint64_t{1});
          span.arg("incidents", static_cast<std::uint64_t>(cached->size()));
        }
        return *cached;
      }
    }
  }

  if (p.is_atom()) {
    IncidentList atoms = eval_atom(p, wid, guard);
    if (guard != nullptr) guard->add_incidents(atoms.size());
    // Never memoize under a tripped guard: the list may be truncated, and
    // a later lookup would mistake it for the complete occurrence list.
    if (slot != SubpatternMemo::kNoSlot &&
        (guard == nullptr || !guard->stopped())) {
      ++counters_.cache_misses;
      counters_.cache_bytes += incident_bytes(atoms);
      memo->store(slot, atoms);
    }
    if (span.active()) {
      span.arg("incidents", static_cast<std::uint64_t>(atoms.size()));
    }
    return atoms;
  }

  const IncidentList left = eval_node(*p.left(), wid, memo, trace, guard);
  const IncidentList right = eval_node(*p.right(), wid, memo, trace, guard);
  ++counters_.operator_nodes_evaluated;

  IncidentList out;
  std::uint64_t pairs = 0;
  const bool opt = opts_.use_optimized_operators;
  switch (p.op()) {
    case PatternOp::kAtom:
      break;  // unreachable
    case PatternOp::kConsecutive:
      pairs = left.size() * right.size();
      out = opt ? eval_consecutive_opt(left, right, guard)
                : eval_consecutive_naive(left, right, guard);
      break;
    case PatternOp::kSequential:
      pairs = left.size() * right.size();
      out = opt ? eval_sequential_opt(left, right, guard)
                : eval_sequential_naive(left, right, guard);
      break;
    case PatternOp::kChoice: {
      const bool dedup = needs_choice_dedup(*p.left(), *p.right());
      pairs = dedup ? left.size() * right.size()
                    : left.size() + right.size();
      out = opt ? eval_choice_opt(left, right, dedup, guard)
                : eval_choice_naive(left, right, dedup, guard);
      break;
    }
    case PatternOp::kParallel:
      pairs = left.size() * right.size();
      out = opt ? eval_parallel_opt(left, right, guard)
                : eval_parallel_naive(left, right, guard);
      break;
  }
  counters_.pairs_examined += pairs;
  if (opts_.max_span != 0) {
    // Span only grows upward through the tree, so pruning here is sound.
    std::erase_if(out, [this](const Incident& o) {
      return o.last() - o.first() >= opts_.max_span;
    });
  }
  counters_.incidents_emitted += out.size();
  if (guard != nullptr) guard->add_incidents(out.size());
  if (slot != SubpatternMemo::kNoSlot &&
      (guard == nullptr || !guard->stopped())) {
    // A post-trip list may be partial; memoizing it would silently corrupt
    // any query of the batch that shares the slot.
    ++counters_.cache_misses;
    counters_.cache_bytes += incident_bytes(out);
    memo->store(slot, out);
  }
  if (span.active()) {
    span.arg("incidents", static_cast<std::uint64_t>(out.size()));
    span.arg("pairs", pairs);
  }
  return out;
}

IncidentList Evaluator::evaluate_instance(const Pattern& p, Wid wid,
                                          SubpatternMemo* memo,
                                          const NodeTracer* trace,
                                          const EvalGuard* guard) const {
  return eval_node(p, wid, memo, trace, guard);
}

IncidentSet Evaluator::evaluate(const Pattern& p, const NodeTracer* trace,
                                const EvalGuard* guard) const {
  IncidentSet result;
  for (Wid wid : index_->wids()) {
    if (guard != nullptr && guard->stopped()) break;
    IncidentList incidents = eval_node(p, wid, nullptr, trace, guard);
    if (!incidents.empty()) result.add_group(wid, std::move(incidents));
  }
  return result;
}

bool Evaluator::exists(const Pattern& p) const {
  if (opts_.use_linear_fast_path && opts_.max_span == 0) {
    if (const auto chain = as_linear_chain(p)) {
      return exists_linear(*chain, *index_);
    }
  }
  for (Wid wid : index_->wids()) {
    if (!eval_node(p, wid, nullptr, nullptr, nullptr).empty()) return true;
  }
  return false;
}

std::size_t Evaluator::count(const Pattern& p) const {
  if (opts_.use_linear_fast_path && opts_.max_span == 0) {
    if (const auto chain = as_linear_chain(p)) {
      return count_linear(*chain, *index_);
    }
  }
  std::size_t n = 0;
  for (Wid wid : index_->wids()) {
    n += eval_node(p, wid, nullptr, nullptr, nullptr).size();
  }
  return n;
}

}  // namespace wflog
