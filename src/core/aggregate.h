#pragma once

// Aggregation over incident sets — the reporting layer behind questions
// like "How many students every year get referrals with balance > $5,000?"
// (paper §1). Patterns produce incident sets; these functions fold them
// into per-instance counts and group-bys keyed on attribute values.

#include <string>
#include <vector>

#include "core/guard.h"
#include "core/incident.h"
#include "core/predicate.h"
#include "log/index.h"

namespace wflog {

struct InstanceCount {
  Wid wid = 0;
  std::size_t incidents = 0;
};

/// Incidents per matching workflow instance, ascending wid.
std::vector<InstanceCount> incidents_per_instance(const IncidentSet& set);

/// Number of instances with at least one incident.
std::size_t instances_with_match(const IncidentSet& set);

/// Group-by key: "the value of attribute `attr` in map `sel` of the first
/// `activity` record of the instance". E.g. {activity="GetRefer",
/// sel=kOut, attr="hospital"} groups matching instances by hospital.
struct GroupKey {
  std::string activity;
  MapSel sel = MapSel::kAny;
  std::string attr;
};

struct GroupCount {
  Value key;  // null groups instances lacking the attribute/activity
  std::size_t instances = 0;
  std::size_t incidents = 0;
};

/// Groups the matching instances of `set` by the key attribute, counting
/// instances and incidents per distinct value. Sorted ascending by key.
/// With a guard, the fold polls it per instance group and stops once it
/// trips — the result then covers a prefix of the groups (partial, like a
/// guarded evaluation; the caller learns why from the guard's reason()).
std::vector<GroupCount> group_by_attribute(const IncidentSet& set,
                                           const LogIndex& index,
                                           const GroupKey& key,
                                           const EvalGuard* guard = nullptr);

/// Renders a group-by result as an aligned two-column table.
std::string render_groups(const std::vector<GroupCount>& groups);

class ShardPool;

/// Combine semantics for scatter/gather aggregation: merges per-shard
/// partial group-bys into one result — groups with equal keys sum their
/// instance/incident tallies, output sorted ascending by key. Because
/// group-by counts are commutative monoids over wid-disjoint inputs,
/// combine(partials over a wid-partition of S) == group_by_attribute(S).
std::vector<GroupCount> combine_groups(
    std::vector<std::vector<GroupCount>> partials);

/// Sharded group-by: folds each wid-shard's slice of `set` independently
/// (scattered on `pool` when given, serial otherwise) and combines.
/// Bit-identical to group_by_attribute(set, index, key) for every
/// num_shards. No guard: the caller guards the evaluation that produced
/// `set`; the fold itself is linear in the group count.
std::vector<GroupCount> group_by_attribute_sharded(const IncidentSet& set,
                                                   const LogIndex& index,
                                                   const GroupKey& key,
                                                   std::size_t num_shards,
                                                   ShardPool* pool = nullptr);

}  // namespace wflog
