#pragma once

// Rendering of patterns and results.
//
//  * to_text       — parseable text, minimal parentheses; exact round trip:
//                    parse_pattern(to_text(p)) is structurally equal to p.
//  * to_tree_string— the "incident tree" view (the paper's Figure 4) as
//                    box-drawing ASCII art.
//  * render_*      — human-readable incident listings resolved against the
//                    log (activity names, lsns).

#include <string>

#include "core/incident.h"
#include "core/pattern.h"
#include "log/index.h"

namespace wflog {

std::string to_text(const Pattern& p);

/// Multi-line tree rendering, e.g. for
/// SeeDoctor -> (UpdateRefer -> GetReimburse):
///
///   [->]
///    |-- SeeDoctor
///    `-- [->]
///         |-- UpdateRefer
///         `-- GetReimburse
std::string to_tree_string(const Pattern& p);

/// One incident with its records: "wid=2 {l14 UpdateRefer, l20 GetReimburse}".
std::string render_incident(const Incident& o, const LogIndex& index);

/// Full incident-set listing grouped by instance; `limit` truncates long
/// groups (0 = no limit).
std::string render_incident_set(const IncidentSet& set, const LogIndex& index,
                                std::size_t limit = 0);

}  // namespace wflog
