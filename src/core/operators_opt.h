#pragma once

// Optimized operator evaluation.
//
// The paper closes by noting that "the naive approach sketched in this
// paper can be augmented with more advanced optimization techniques"; these
// are the operator-level ones. They produce exactly the same canonical
// incident lists as core/operators.h (property-tested) but avoid the
// all-pairs scans where possible:
//
//   consecutive  inputs are sorted by first(); binary-search inc2 for the
//                run of incidents with first == last(o1)+1
//                -> O(n1·log n2 + |output|)
//   sequential   binary-search inc2 for the suffix with first > last(o1)
//                -> O(n1·log n2 + |output|)  (output may itself be Θ(n1·n2))
//   choice       hash-based dedup -> O((n1+n2)·k) expected instead of
//                O(n1·n2·k)
//   parallel     interval pre-filter: pairs whose spans do not overlap are
//                disjoint without scanning members; the span test also
//                subsumes the common sequential-like case
//
// All functions require canonical inputs (sorted by positions, hence by
// first()) and return canonical outputs.

// As in core/operators.h, every function polls an optional EvalGuard
// inside its loops and returns a canonical partial list once it trips.

#include "core/guard.h"
#include "core/incident.h"

namespace wflog {

IncidentList eval_consecutive_opt(const IncidentList& inc1,
                                  const IncidentList& inc2,
                                  const EvalGuard* guard = nullptr);

IncidentList eval_sequential_opt(const IncidentList& inc1,
                                 const IncidentList& inc2,
                                 const EvalGuard* guard = nullptr);

IncidentList eval_choice_opt(const IncidentList& inc1,
                             const IncidentList& inc2, bool dedup,
                             const EvalGuard* guard = nullptr);

IncidentList eval_parallel_opt(const IncidentList& inc1,
                               const IncidentList& inc2,
                               const EvalGuard* guard = nullptr);

}  // namespace wflog
