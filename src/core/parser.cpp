#include "core/parser.h"

#include <cctype>
#include <optional>
#include <vector>

#include "common/error.h"
#include "common/text.h"

namespace wflog {
namespace {

// ---------------------------------------------------------------------
// Pattern lexer
// ---------------------------------------------------------------------

enum class TokKind : std::uint8_t {
  kIdent,
  kOp,      // one of the four binary operators (payload: PatternOp)
  kBang,    // negation prefix
  kColon,   // binding separator in "x:Activity"
  kLParen,
  kRParen,
  kPredicate,  // the raw text between [ and ]
  kEnd,
};

struct Token {
  TokKind kind = TokKind::kEnd;
  PatternOp op = PatternOp::kAtom;
  std::string_view text;  // ident payload or predicate body
  std::size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_ws();
    Token t;
    t.offset = pos_;
    if (pos_ >= text_.size()) return t;  // kEnd

    const char c = text_[pos_];

    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      t.kind = TokKind::kIdent;
      t.text = text_.substr(start, pos_ - start);
      return t;
    }

    auto op_token = [&](PatternOp op, std::size_t len) {
      t.kind = TokKind::kOp;
      t.op = op;
      pos_ += len;
      return t;
    };

    switch (c) {
      case '(':
        ++pos_;
        t.kind = TokKind::kLParen;
        return t;
      case ')':
        ++pos_;
        t.kind = TokKind::kRParen;
        return t;
      case '!':
      case '~':
        ++pos_;
        t.kind = TokKind::kBang;
        return t;
      case ':':
        ++pos_;
        t.kind = TokKind::kColon;
        return t;
      case '.':
        return op_token(PatternOp::kConsecutive, 1);
      case '|':
        return op_token(PatternOp::kChoice, 1);
      case '&':
        return op_token(PatternOp::kParallel, 1);
      case '-':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
          return op_token(PatternOp::kSequential, 2);
        }
        throw ParseError("expected '->'", pos_);
      case '>':
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
          return op_token(PatternOp::kSequential, 2);
        }
        throw ParseError("expected '>>'", pos_);
      case '[': {
        // Scan to the matching ']' (predicates contain no nested brackets,
        // but strings inside may contain ']').
        const std::size_t start = pos_ + 1;
        bool in_str = false;
        for (std::size_t i = start; i < text_.size(); ++i) {
          const char k = text_[i];
          if (in_str) {
            if (k == '\\') {
              ++i;
            } else if (k == '"') {
              in_str = false;
            }
          } else if (k == '"') {
            in_str = true;
          } else if (k == ']') {
            t.kind = TokKind::kPredicate;
            t.text = text_.substr(start, i - start);
            pos_ = i + 1;
            return t;
          }
        }
        throw ParseError("unterminated predicate '['", t.offset);
      }
      default:
        break;
    }

    // UTF-8 aliases for the paper's glyphs.
    struct Alias {
      std::string_view glyph;
      TokKind kind;
      PatternOp op;
    };
    static constexpr Alias kAliases[] = {
        {"\xe2\x8a\x99", TokKind::kOp, PatternOp::kConsecutive},  // ⊙
        {"\xe2\x89\xab", TokKind::kOp, PatternOp::kSequential},   // ≫
        {"\xe2\x8a\x97", TokKind::kOp, PatternOp::kChoice},       // ⊗
        {"\xe2\x8a\x95", TokKind::kOp, PatternOp::kParallel},     // ⊕
        {"\xc2\xac", TokKind::kBang, PatternOp::kAtom},           // ¬
    };
    for (const Alias& a : kAliases) {
      if (text_.substr(pos_).starts_with(a.glyph)) {
        t.kind = a.kind;
        t.op = a.op;
        pos_ += a.glyph.size();
        return t;
      }
    }

    throw ParseError("unexpected character '" + std::string(1, c) + "'",
                     pos_);
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

int precedence(PatternOp op) {
  switch (op) {
    case PatternOp::kChoice:
      return 1;
    case PatternOp::kParallel:
      return 2;
    case PatternOp::kConsecutive:
    case PatternOp::kSequential:
      return 3;  // equal level — Theorem 4
    case PatternOp::kAtom:
      break;
  }
  return 0;
}

// ---------------------------------------------------------------------
// Predicate parser (recursive descent over the text between [ ])
// ---------------------------------------------------------------------

class PredicateParser {
 public:
  PredicateParser(std::string_view text, std::size_t base_offset)
      : text_(text), base_(base_offset) {}

  PredicatePtr parse() {
    PredicatePtr p = parse_or();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content in predicate");
    return p;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, base_ + pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool eat(std::string_view word) {
    skip_ws();
    if (text_.substr(pos_).starts_with(word)) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::string_view ident() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected identifier");
    return text_.substr(start, pos_ - start);
  }

  PredicatePtr parse_or() {
    PredicatePtr p = parse_and();
    while (eat("||")) p = Predicate::logical_or(p, parse_and());
    return p;
  }

  PredicatePtr parse_and() {
    PredicatePtr p = parse_factor();
    while (eat("&&")) p = Predicate::logical_and(p, parse_factor());
    return p;
  }

  std::pair<MapSel, std::string> parse_ref() {
    const std::string_view first = ident();
    if ((first == "in" || first == "out") && peek() == '.') {
      ++pos_;  // consume '.'
      const MapSel sel = first == "in" ? MapSel::kIn : MapSel::kOut;
      return {sel, std::string(ident())};
    }
    return {MapSel::kAny, std::string(first)};
  }

  PredicatePtr parse_factor() {
    skip_ws();
    if (eat("!")) return Predicate::logical_not(parse_factor());
    if (peek() == '(') {
      ++pos_;
      PredicatePtr p = parse_or();
      skip_ws();
      if (peek() != ')') fail("expected ')'");
      ++pos_;
      return p;
    }
    // 'exists' must be followed by a reference; a bare attribute called
    // "exists" can be written as in.exists / out.exists.
    {
      const std::size_t save = pos_;
      skip_ws();
      if (text_.substr(pos_).starts_with("exists") &&
          (pos_ + 6 == text_.size() ||
           std::isalnum(static_cast<unsigned char>(text_[pos_ + 6])) == 0)) {
        pos_ += 6;
        auto [sel, attr] = parse_ref();
        return Predicate::exists(sel, std::move(attr));
      }
      pos_ = save;
    }

    auto [sel, attr] = parse_ref();
    const CmpOp op = parse_cmp();
    Value lit = parse_literal();
    return Predicate::compare(sel, std::move(attr), op, std::move(lit));
  }

  CmpOp parse_cmp() {
    skip_ws();
    if (eat("==") || eat("=")) return CmpOp::kEq;
    if (eat("!=")) return CmpOp::kNe;
    if (eat("<=")) return CmpOp::kLe;
    if (eat("<")) return CmpOp::kLt;
    if (eat(">=")) return CmpOp::kGe;
    if (eat(">")) return CmpOp::kGt;
    fail("expected comparison operator");
  }

  Value parse_literal() {
    skip_ws();
    if (pos_ >= text_.size()) fail("expected literal");
    if (text_[pos_] == '"') {
      const std::size_t start = pos_;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\') ++pos_;
        ++pos_;
      }
      if (pos_ >= text_.size()) fail("unterminated string literal");
      ++pos_;
      return Value::parse(text_.substr(start, pos_ - start));
    }
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == '-' || text_[pos_] == '+' ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected literal");
    return Value::parse(text_.substr(start, pos_ - start));
  }

  std::string_view text_;
  std::size_t base_;
  std::size_t pos_ = 0;
};

}  // namespace

PredicatePtr parse_predicate(std::string_view text) {
  return PredicateParser(text, 0).parse();
}

// ---------------------------------------------------------------------
// Shunting-yard pattern parser (Algorithm 3)
// ---------------------------------------------------------------------

PatternPtr parse_pattern(std::string_view text) {
  Lexer lexer(text);

  std::vector<PatternPtr> operands;
  struct StackOp {
    PatternOp op;
    bool paren;  // open-paren marker
    std::size_t offset;
  };
  std::vector<StackOp> ops;

  auto reduce_one = [&](std::size_t offset) {
    if (operands.size() < 2) {
      throw ParseError("operator missing an operand", offset);
    }
    PatternPtr right = std::move(operands.back());
    operands.pop_back();
    PatternPtr left = std::move(operands.back());
    operands.pop_back();
    operands.push_back(
        Pattern::combine(ops.back().op, std::move(left), std::move(right)));
    ops.pop_back();
  };

  bool expect_operand = true;
  for (Token t = lexer.next();; t = lexer.next()) {
    switch (t.kind) {
      case TokKind::kBang:
      case TokKind::kIdent: {
        if (!expect_operand) {
          throw ParseError("expected operator before operand", t.offset);
        }
        // Optional variable binding: "x : Activity".
        std::string binding;
        if (t.kind == TokKind::kIdent) {
          Lexer peek_lexer = lexer;
          const Token nxt = peek_lexer.next();
          if (nxt.kind == TokKind::kColon) {
            binding = std::string(t.text);
            lexer = peek_lexer;
            t = lexer.next();
            if (t.kind != TokKind::kIdent && t.kind != TokKind::kBang) {
              throw ParseError("expected activity name after binding ':'",
                               t.offset);
            }
          }
        }
        bool negated = false;
        if (t.kind == TokKind::kBang) {
          negated = true;
          t = lexer.next();
          if (t.kind != TokKind::kIdent) {
            throw ParseError(
                "negation '!' applies to an activity name "
                "(Definition 3 allows only atomic negation)",
                t.offset);
          }
        }
        std::string name(t.text);
        // Optional predicate suffix.
        PredicatePtr pred;
        Lexer peek_lexer = lexer;  // cheap copy: offsets only
        Token nxt = peek_lexer.next();
        if (nxt.kind == TokKind::kPredicate) {
          pred = PredicateParser(nxt.text, nxt.offset + 1).parse();
          lexer = peek_lexer;
        }
        operands.push_back(Pattern::bound_atom(std::move(binding),
                                               std::move(name), negated,
                                               pred));
        expect_operand = false;
        break;
      }
      case TokKind::kOp: {
        if (expect_operand) {
          throw ParseError("operator without left operand", t.offset);
        }
        while (!ops.empty() && !ops.back().paren &&
               precedence(ops.back().op) >= precedence(t.op)) {
          reduce_one(t.offset);  // left-associative
        }
        ops.push_back(StackOp{t.op, false, t.offset});
        expect_operand = true;
        break;
      }
      case TokKind::kLParen:
        if (!expect_operand) {
          throw ParseError("expected operator before '('", t.offset);
        }
        ops.push_back(StackOp{PatternOp::kAtom, true, t.offset});
        break;
      case TokKind::kRParen: {
        if (expect_operand) {
          throw ParseError("expected operand before ')'", t.offset);
        }
        while (!ops.empty() && !ops.back().paren) reduce_one(t.offset);
        if (ops.empty()) throw ParseError("unbalanced ')'", t.offset);
        ops.pop_back();  // discard the open paren
        break;
      }
      case TokKind::kColon:
        throw ParseError("':' must follow a variable name", t.offset);
      case TokKind::kPredicate:
        throw ParseError("predicate '[' must follow an activity name",
                         t.offset);
      case TokKind::kEnd: {
        if (expect_operand) {
          throw ParseError("empty pattern or trailing operator", t.offset);
        }
        while (!ops.empty()) {
          if (ops.back().paren) {
            throw ParseError("unbalanced '('", ops.back().offset);
          }
          reduce_one(t.offset);
        }
        if (operands.size() != 1) {
          throw ParseError("malformed pattern", t.offset);
        }
        return operands.front();
      }
    }
  }
}

}  // namespace wflog
