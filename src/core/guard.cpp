#include "core/guard.h"

namespace wflog {

const char* stop_reason_name(StopReason r) noexcept {
  switch (r) {
    case StopReason::kNone:
      return "none";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kCancelled:
      return "cancelled";
    case StopReason::kIncidentBudget:
      return "incident-budget";
  }
  return "unknown";
}

EvalGuard::EvalGuard(std::chrono::milliseconds deadline,
                     std::size_t max_incidents, CancelToken cancel)
    : max_incidents_(max_incidents), cancel_(std::move(cancel)) {
  if (deadline.count() > 0) {
    deadline_ = std::chrono::steady_clock::now() + deadline;
    has_deadline_ = true;
  }
}

bool EvalGuard::check() const noexcept {
  if (reason_.load(std::memory_order_relaxed) != 0) return true;
  if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
    trip(StopReason::kCancelled);
    return true;
  }
  if (has_deadline_) {
    const std::uint32_t tick =
        ticks_.fetch_add(1, std::memory_order_relaxed);
    if (tick % kTicksPerClockCheck == 0 &&
        std::chrono::steady_clock::now() >= deadline_) {
      trip(StopReason::kDeadline);
      return true;
    }
  }
  return false;
}

void EvalGuard::add_incidents(std::size_t n) const noexcept {
  if (max_incidents_ == 0) return;
  const std::uint64_t total =
      incidents_.fetch_add(n, std::memory_order_relaxed) + n;
  if (total > max_incidents_) trip(StopReason::kIncidentBudget);
}

}  // namespace wflog
