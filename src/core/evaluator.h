#pragma once

// Incident-tree evaluation (the paper's Algorithm 2).
//
// Evaluation partitions the log by workflow instance (the paper's
// LogRecordsDict / widSet), then post-order-evaluates the pattern tree per
// instance: leaves pull their match lists from the LogIndex ("an index
// structure for each workflow id and activity is used to generate log
// records for an activity node in constant time"), internal nodes combine
// their children's incident lists with the operator algorithms of
// Algorithm 1 (or their optimized counterparts).

#include <cstdint>

#include "core/incident.h"
#include "core/pattern.h"
#include "log/index.h"

namespace wflog {

struct EvalOptions {
  /// false = the paper's Algorithm 1 operator routines; true = the
  /// optimized ones (core/operators_opt.h). Both yield identical results.
  bool use_optimized_operators = true;

  /// Whether a negative atom ¬t may match the START/END sentinel records.
  /// Definition 4 excludes nothing ("activity name other than t"), so the
  /// faithful default is true; analysts usually want false.
  bool negation_matches_sentinels = true;

  /// Answer count()/exists() for linear patterns (⊙/≫ chains of positive
  /// atoms) with the DP of core/linear.h instead of materializing
  /// incidents. Identical answers, often asymptotically faster.
  bool use_linear_fast_path = true;

  /// CEP-style span window: keep only incidents whose records all fall
  /// within `max_span` consecutive positions (last - first < max_span).
  /// 0 disables. Because merging records can only widen an incident's
  /// span, the evaluator prunes at every operator, not just at the root —
  /// a large constant-factor win for selective windows.
  IsLsn max_span = 0;
};

/// Tallies of work done, for the benches and the cost-model calibration.
struct EvalCounters {
  std::uint64_t operator_nodes_evaluated = 0;
  std::uint64_t pairs_examined = 0;   // operand pairs inspected by ⊙/≫/⊕
  std::uint64_t incidents_emitted = 0;  // before cross-node canonicalization
};

class Evaluator {
 public:
  /// The index (and the log it refers to) must outlive the Evaluator.
  explicit Evaluator(const LogIndex& index, EvalOptions opts = {});

  /// inc_L(p): all incidents of p in the log, grouped by instance.
  IncidentSet evaluate(const Pattern& p) const;

  /// Incidents of p within one workflow instance.
  IncidentList evaluate_instance(const Pattern& p, Wid wid) const;

  /// True iff inc_L(p) is nonempty. Stops at the first instance with a
  /// match — the cheap mode for "are there any ...?" questions.
  bool exists(const Pattern& p) const;

  /// |inc_L(p)|.
  std::size_t count(const Pattern& p) const;

  const LogIndex& index() const noexcept { return *index_; }
  const EvalOptions& options() const noexcept { return opts_; }

  /// Counters accumulated since construction or the last reset.
  const EvalCounters& counters() const noexcept { return counters_; }
  void reset_counters() const noexcept { counters_ = EvalCounters{}; }

 private:
  IncidentList eval_node(const Pattern& p, Wid wid) const;
  IncidentList eval_atom(const Pattern& p, Wid wid) const;

  const LogIndex* index_;
  EvalOptions opts_;
  mutable EvalCounters counters_;
};

}  // namespace wflog
