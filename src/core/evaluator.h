#pragma once

// Incident-tree evaluation (the paper's Algorithm 2).
//
// Evaluation partitions the log by workflow instance (the paper's
// LogRecordsDict / widSet), then post-order-evaluates the pattern tree per
// instance: leaves pull their match lists from the LogIndex ("an index
// structure for each workflow id and activity is used to generate log
// records for an activity node in constant time"), internal nodes combine
// their children's incident lists with the operator algorithms of
// Algorithm 1 (or their optimized counterparts).

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/guard.h"
#include "core/incident.h"
#include "core/pattern.h"
#include "log/index.h"
#include "obs/trace.h"

namespace wflog {

struct EvalOptions {
  /// false = the paper's Algorithm 1 operator routines; true = the
  /// optimized ones (core/operators_opt.h). Both yield identical results.
  bool use_optimized_operators = true;

  /// Whether a negative atom ¬t may match the START/END sentinel records.
  /// Definition 4 excludes nothing ("activity name other than t"), so the
  /// faithful default is true; analysts usually want false.
  bool negation_matches_sentinels = true;

  /// Answer count()/exists() for linear patterns (⊙/≫ chains of positive
  /// atoms) with the DP of core/linear.h instead of materializing
  /// incidents. Identical answers, often asymptotically faster.
  bool use_linear_fast_path = true;

  /// CEP-style span window: keep only incidents whose records all fall
  /// within `max_span` consecutive positions (last - first < max_span).
  /// 0 disables. Because merging records can only widen an incident's
  /// span, the evaluator prunes at every operator, not just at the root —
  /// a large constant-factor win for selective windows.
  IsLsn max_span = 0;
};

/// Tallies of work done, for the benches and the cost-model calibration.
struct EvalCounters {
  std::uint64_t operator_nodes_evaluated = 0;
  std::uint64_t pairs_examined = 0;   // operand pairs inspected by ⊙/≫/⊕
  std::uint64_t incidents_emitted = 0;  // before cross-node canonicalization
  // Subpattern-memo traffic (zero unless evaluating with a SubpatternMemo).
  std::uint64_t cache_hits = 0;    // node evaluations answered from the memo
  std::uint64_t cache_misses = 0;  // memoizable nodes computed and stored
  std::uint64_t cache_bytes = 0;   // incident bytes retained in the memo

  EvalCounters& operator+=(const EvalCounters& other) {
    operator_nodes_evaluated += other.operator_nodes_evaluated;
    pairs_examined += other.pairs_examined;
    incidents_emitted += other.incidents_emitted;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    cache_bytes += other.cache_bytes;
    return *this;
  }

  /// Delta since a snapshot — how the engine folds per-run work into the
  /// telemetry registry (obs/telemetry.h) without resetting the evaluator.
  EvalCounters& operator-=(const EvalCounters& other) {
    operator_nodes_evaluated -= other.operator_nodes_evaluated;
    pairs_examined -= other.pairs_examined;
    incidents_emitted -= other.incidents_emitted;
    cache_hits -= other.cache_hits;
    cache_misses -= other.cache_misses;
    cache_bytes -= other.cache_bytes;
    return *this;
  }
};

/// Maps pattern nodes to canonical-key slots: nodes with equal
/// canonical_key (core/pattern.h) share a slot, nodes absent from the map
/// are evaluated without memoization. Built once per batch by BatchPlan
/// (core/batch.h) over the nodes of every query tree.
using SlotMap = std::unordered_map<const Pattern*, std::uint32_t>;

/// Per-instance memo of subpattern incident lists, indexed by canonical
/// slot. One memo serves every query of a batch within one workflow
/// instance; reset() clears it before moving to the next instance.
/// Results are only shareable while the log, the instance, and the
/// EvalOptions stay fixed — the batch engine guarantees all three.
class SubpatternMemo {
 public:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// `slots` must outlive the memo (the BatchPlan owns it).
  SubpatternMemo(const SlotMap* slots, std::size_t num_slots)
      : slots_(slots), entries_(num_slots) {}

  /// Forget every cached list (between instances).
  void reset() {
    for (auto& e : entries_) e.reset();
  }

  std::uint32_t slot_of(const Pattern& p) const {
    const auto it = slots_->find(&p);
    return it == slots_->end() ? kNoSlot : it->second;
  }
  const IncidentList* lookup(std::uint32_t slot) const {
    const auto& e = entries_[slot];
    return e.has_value() ? &*e : nullptr;
  }
  void store(std::uint32_t slot, IncidentList list) {
    entries_[slot] = std::move(list);
  }

 private:
  const SlotMap* slots_;
  std::vector<std::optional<IncidentList>> entries_;
};

/// Per-operator-node profiling hook: assigns every node of ONE pattern
/// tree its pre-order index and render label, and makes the evaluator emit
/// one tracer span per node evaluation (args: "node" = pre-order index,
/// "incidents" = output size, "pairs" = operand pairs examined). Both
/// explain() and deep `wfq --trace` runs are built on this — the single
/// profiling code path. Evaluation without a NodeTracer costs one null
/// check per node.
///
/// Caveat: nodes are keyed by address, so a tree that physically shares a
/// subtree (possible after optimizer rewrites, never from the parser)
/// charges both occurrences to one row.
class NodeTracer {
 public:
  /// `tracer` and `root` must outlive the NodeTracer.
  NodeTracer(obs::Tracer& tracer, const Pattern& root);

  std::size_t num_nodes() const noexcept { return labels_.size(); }
  /// Render label of pre-order node i: "SeeDoctor", "!a[x > 5]", "[->]".
  const std::string& label(std::size_t i) const { return labels_[i]; }
  /// Depth of pre-order node i (root = 0).
  std::size_t depth(std::size_t i) const { return depths_[i]; }
  obs::Tracer& tracer() const noexcept { return *tracer_; }

 private:
  friend class Evaluator;
  /// Opens the span for one evaluation of `p` (with the "node" arg set).
  obs::Tracer::Span open(const Pattern& p) const;

  obs::Tracer* tracer_;
  std::unordered_map<const Pattern*, std::uint32_t> preorder_;
  std::vector<std::string> labels_;
  std::vector<std::size_t> depths_;
};

class Evaluator {
 public:
  /// The index (and the log it refers to) must outlive the Evaluator.
  explicit Evaluator(const LogIndex& index, EvalOptions opts = {});

  /// inc_L(p): all incidents of p in the log, grouped by instance. With a
  /// NodeTracer, every node evaluation emits a profiling span. With an
  /// EvalGuard (core/guard.h), the instance loop and every operator loop
  /// poll it; once it trips, evaluation stops and the set computed so far
  /// is returned — the caller reads guard->reason() to flag the result.
  IncidentSet evaluate(const Pattern& p, const NodeTracer* trace = nullptr,
                       const EvalGuard* guard = nullptr) const;

  /// Incidents of p within one workflow instance. With a memo, every node
  /// mapped by the memo's SlotMap is answered from / stored into the memo
  /// — the batch engine's sharing hook. The caller owns the memo's
  /// lifecycle (reset between instances). The guard works as in
  /// evaluate(); partial (post-trip) lists are never stored in the memo.
  IncidentList evaluate_instance(const Pattern& p, Wid wid,
                                 SubpatternMemo* memo = nullptr,
                                 const NodeTracer* trace = nullptr,
                                 const EvalGuard* guard = nullptr) const;

  /// True iff inc_L(p) is nonempty. Stops at the first instance with a
  /// match — the cheap mode for "are there any ...?" questions.
  bool exists(const Pattern& p) const;

  /// |inc_L(p)|.
  std::size_t count(const Pattern& p) const;

  const LogIndex& index() const noexcept { return *index_; }
  const EvalOptions& options() const noexcept { return opts_; }

  /// Counters accumulated since construction or the last reset.
  const EvalCounters& counters() const noexcept { return counters_; }
  void reset_counters() const noexcept { counters_ = EvalCounters{}; }

 private:
  IncidentList eval_node(const Pattern& p, Wid wid, SubpatternMemo* memo,
                         const NodeTracer* trace,
                         const EvalGuard* guard) const;
  IncidentList eval_atom(const Pattern& p, Wid wid,
                         const EvalGuard* guard) const;

  const LogIndex* index_;
  EvalOptions opts_;
  mutable EvalCounters counters_;
};

}  // namespace wflog
