#include "core/operators.h"

#include <algorithm>

namespace wflog {

IncidentList eval_consecutive_naive(const IncidentList& inc1,
                                    const IncidentList& inc2,
                                    const EvalGuard* guard) {
  IncidentList out;
  GuardPoll poll{guard};
  for (const Incident& o1 : inc1) {
    for (const Incident& o2 : inc2) {
      if (poll.should_stop()) {
        canonicalize(out);
        return out;
      }
      if (o1.last() + 1 == o2.first()) {
        out.push_back(Incident::merged(o1, o2));
      }
    }
  }
  canonicalize(out);
  return out;
}

IncidentList eval_sequential_naive(const IncidentList& inc1,
                                   const IncidentList& inc2,
                                   const EvalGuard* guard) {
  IncidentList out;
  GuardPoll poll{guard};
  for (const Incident& o1 : inc1) {
    for (const Incident& o2 : inc2) {
      if (poll.should_stop()) {
        canonicalize(out);
        return out;
      }
      if (o1.last() < o2.first()) {
        out.push_back(Incident::merged(o1, o2));
      }
    }
  }
  canonicalize(out);
  return out;
}

IncidentList eval_choice_naive(const IncidentList& inc1,
                               const IncidentList& inc2, bool dedup,
                               const EvalGuard* guard) {
  IncidentList out;
  out.reserve(inc1.size() + inc2.size());
  out.insert(out.end(), inc1.begin(), inc1.end());
  if (!dedup) {
    // Precondition (Lemma 1's refinement): the incident sets are disjoint,
    // so a sort without duplicate elimination restores canonical order.
    out.insert(out.end(), inc2.begin(), inc2.end());
    std::sort(out.begin(), out.end());
    return out;
  }
  {
    // Algorithm 1's pairwise duplicate scan: append o2 only when it equals
    // no incident of inc1 (element-by-element comparison, the min(k1,k2)
    // factor of Lemma 1).
    GuardPoll poll{guard};
    for (const Incident& o2 : inc2) {
      if (poll.should_stop()) break;
      bool duplicated = false;
      for (const Incident& o1 : inc1) {
        if (o1 == o2) {
          duplicated = true;
          break;
        }
      }
      if (!duplicated) out.push_back(o2);
    }
  }
  canonicalize(out);
  return out;
}

IncidentList eval_parallel_naive(const IncidentList& inc1,
                                 const IncidentList& inc2,
                                 const EvalGuard* guard) {
  IncidentList out;
  GuardPoll poll{guard};
  for (const Incident& o1 : inc1) {
    for (const Incident& o2 : inc2) {
      if (poll.should_stop()) {
        canonicalize(out);
        return out;
      }
      if (Incident::disjoint(o1, o2)) {
        out.push_back(Incident::merged(o1, o2));
      }
    }
  }
  canonicalize(out);
  return out;
}

}  // namespace wflog
