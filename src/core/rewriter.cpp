#include "core/rewriter.h"

#include <unordered_set>

namespace wflog {
namespace rewrite {
namespace {

bool is_temporal(PatternOp op) {
  return op == PatternOp::kConsecutive || op == PatternOp::kSequential;
}

/// Whether ops X (outer-left) and Y may reassociate: Theorem 2 (X == Y) or
/// Theorem 4 (both temporal).
bool reassociable(PatternOp x, PatternOp y) {
  if (x == y && x != PatternOp::kAtom) return true;
  return is_temporal(x) && is_temporal(y);
}

}  // namespace

PatternPtr rotate_left(const Pattern& p) {
  // a X (b Y c) -> (a X b) Y c
  if (p.is_atom() || p.right()->is_atom()) return nullptr;
  const PatternOp x = p.op();
  const PatternOp y = p.right()->op();
  if (!reassociable(x, y)) return nullptr;
  return Pattern::combine(
      y, Pattern::combine(x, p.left(), p.right()->left()),
      p.right()->right());
}

PatternPtr rotate_right(const Pattern& p) {
  // (a X b) Y c -> a X (b Y c)
  if (p.is_atom() || p.left()->is_atom()) return nullptr;
  const PatternOp x = p.left()->op();
  const PatternOp y = p.op();
  if (!reassociable(x, y)) return nullptr;
  return Pattern::combine(
      x, p.left()->left(),
      Pattern::combine(y, p.left()->right(), p.right()));
}

PatternPtr commute(const Pattern& p) {
  if (p.op() != PatternOp::kChoice && p.op() != PatternOp::kParallel) {
    return nullptr;
  }
  return Pattern::combine(p.op(), p.right(), p.left());
}

PatternPtr distribute_left(const Pattern& p) {
  // a θ (b ⊗ c) -> (a θ b) ⊗ (a θ c)
  if (p.is_atom() || p.op() == PatternOp::kChoice) return nullptr;
  if (p.right()->is_atom() || p.right()->op() != PatternOp::kChoice) {
    return nullptr;
  }
  const PatternPtr& a = p.left();
  const PatternPtr& b = p.right()->left();
  const PatternPtr& c = p.right()->right();
  return Pattern::choice(Pattern::combine(p.op(), a, b),
                         Pattern::combine(p.op(), a, c));
}

PatternPtr distribute_right(const Pattern& p) {
  // (a ⊗ b) θ c -> (a θ c) ⊗ (b θ c)
  if (p.is_atom() || p.op() == PatternOp::kChoice) return nullptr;
  if (p.left()->is_atom() || p.left()->op() != PatternOp::kChoice) {
    return nullptr;
  }
  const PatternPtr& a = p.left()->left();
  const PatternPtr& b = p.left()->right();
  const PatternPtr& c = p.right();
  return Pattern::choice(Pattern::combine(p.op(), a, c),
                         Pattern::combine(p.op(), b, c));
}

PatternPtr factor(const Pattern& p) {
  if (p.is_atom() || p.op() != PatternOp::kChoice) return nullptr;
  if (p.left()->is_atom() || p.right()->is_atom()) return nullptr;
  const Pattern& l = *p.left();
  const Pattern& r = *p.right();
  if (l.op() != r.op() || l.op() == PatternOp::kChoice) return nullptr;
  // (a θ b) ⊗ (a θ c) -> a θ (b ⊗ c)
  if (l.left()->structurally_equal(*r.left())) {
    return Pattern::combine(l.op(), l.left(),
                            Pattern::choice(l.right(), r.right()));
  }
  // (a θ c) ⊗ (b θ c) -> (a ⊗ b) θ c
  if (l.right()->structurally_equal(*r.right())) {
    return Pattern::combine(l.op(), Pattern::choice(l.left(), r.left()),
                            l.right());
  }
  return nullptr;
}

namespace {

using RootRule = PatternPtr (*)(const Pattern&);

struct NamedRule {
  RootRule fn;
  const char* name;
};

constexpr NamedRule kRules[] = {
    {&rotate_left, "rotate_left"},
    {&rotate_right, "rotate_right"},
    {&commute, "commute"},
    {&distribute_left, "distribute_left"},
    {&distribute_right, "distribute_right"},
    {&factor, "factor"},
};

void collect(const PatternPtr& p, const std::string& site,
             std::vector<Step>& out) {
  for (const NamedRule& rule : kRules) {
    if (PatternPtr q = rule.fn(*p)) {
      out.push_back(Step{std::move(q), std::string(rule.name) + "@" + site});
    }
  }
  if (p->is_atom()) return;
  // Rewrites inside the left subtree, re-wrapped at this node.
  std::vector<Step> left_steps;
  collect(p->left(), site + ".L", left_steps);
  for (Step& s : left_steps) {
    out.push_back(Step{Pattern::combine(p->op(), s.result, p->right()),
                       std::move(s.rule)});
  }
  std::vector<Step> right_steps;
  collect(p->right(), site + ".R", right_steps);
  for (Step& s : right_steps) {
    out.push_back(Step{Pattern::combine(p->op(), p->left(), s.result),
                       std::move(s.rule)});
  }
}

}  // namespace

std::vector<Step> neighbors(const PatternPtr& p) {
  std::vector<Step> all;
  collect(p, "root", all);
  // Deduplicate structurally (distinct rule paths can reach one tree).
  std::vector<Step> unique;
  for (Step& s : all) {
    bool dup = s.result->structurally_equal(*p);
    for (const Step& u : unique) {
      if (dup) break;
      dup = u.result->structurally_equal(*s.result);
    }
    if (!dup) unique.push_back(std::move(s));
  }
  return unique;
}

}  // namespace rewrite
}  // namespace wflog
