#pragma once

// EXPLAIN / EXPLAIN ANALYZE for incident patterns.
//
// explain() evaluates a pattern while profiling every node of the incident
// tree: actual output cardinality, wall time, operand pairs examined, and
// the cost model's estimates side by side. The rendered report is the tool
// for understanding *why* a query is slow and whether the optimizer's
// cardinality model tracks reality (it is also how EXPERIMENTS.md calibrates
// the model).

#include <string>
#include <vector>

#include "core/cost.h"
#include "core/evaluator.h"

namespace wflog {

struct NodeProfile {
  std::string label;          // "SeeDoctor", "[->]", ...
  std::size_t depth = 0;      // for rendering
  PatternOp op = PatternOp::kAtom;
  std::size_t actual_incidents = 0;   // summed over instances
  double actual_us = 0;               // self time (children excluded)
  std::uint64_t pairs_examined = 0;
  double estimated_incidents = 0;     // cost-model cardinality x instances
  double estimated_cost = 0;          // cost-model units, self only
};

struct ExplainResult {
  std::vector<NodeProfile> nodes;  // pre-order
  IncidentSet incidents;
  double total_us = 0;

  /// Aligned, tree-indented report:
  ///   node                 actual   est     time     pairs
  ///   [->]                 1        2.3     12.1us   8
  ///     SeeDoctor          4        4.0     1.0us    -
  ///     ...
  std::string to_string() const;
};

/// Profiles `p` over the whole log behind `index`.
ExplainResult explain(const Pattern& p, const LogIndex& index,
                      const CostModel& model, const EvalOptions& opts = {});

}  // namespace wflog
