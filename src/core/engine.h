#pragma once

// QueryEngine — the public facade: parse -> optimize -> evaluate.
//
//   Log log = read_csv(...);
//   QueryEngine engine(log);
//   QueryResult r = engine.run("UpdateRefer -> GetReimburse");
//   if (!r.incidents.empty()) { ... }
//
// The engine owns the LogIndex and CostModel for its log; the Log itself
// is borrowed and must outlive the engine.

#include <chrono>
#include <span>
#include <string>

#include <memory>

#include "core/batch.h"
#include "core/evaluator.h"
#include "core/join.h"
#include "core/optimizer.h"
#include "core/parser.h"
#include "core/shard.h"

namespace wflog {

struct QueryOptions {
  /// Rewrite the pattern with the cost-based optimizer before evaluating.
  bool optimize = true;
  /// Wall-clock budget per run()/run_batch() evaluation; 0 = unlimited.
  /// On expiry the query returns the incidents found so far with
  /// stop_reason == kDeadline — never an exception.
  std::chrono::milliseconds deadline{0};
  /// Emitted-incident budget (Theorem 1 memory guard) per evaluation;
  /// 0 = unlimited. Exceeding it yields a partial result flagged
  /// kIncidentBudget.
  std::size_t max_incidents = 0;
  /// Cooperative cancellation (core/guard.h): set the token from any
  /// thread and the running evaluation returns a kCancelled partial
  /// result. Null = not cancellable.
  CancelToken cancel;
  /// Wid-shards per evaluation (core/shard.h): 1 = unsharded (the
  /// default), 0 = hardware concurrency, K = scatter the instance set
  /// over K wid-disjoint shards evaluated on an engine-owned worker pool
  /// reused across queries. Results are byte-identical for every value —
  /// sharding changes latency, never answers.
  std::size_t shards = 1;
  EvalOptions eval;
  OptimizerOptions optimizer;
};

/// Per-call resource limits layered over an engine's QueryOptions — the
/// unit a server maps one request's budget onto without rebuilding the
/// engine (the LogIndex is the expensive part). A zero/null field defers
/// to the engine-wide default; a set field overrides it for this call.
struct RunLimits {
  std::chrono::milliseconds deadline{0};  // 0 = engine default
  std::size_t max_incidents = 0;          // 0 = engine default
  CancelToken cancel;                     // null = engine default
};

struct QueryResult {
  PatternPtr parsed;    // as written
  PatternPtr executed;  // after optimization (== parsed when disabled)
  JoinExprPtr where;    // the query's where clause, when present
  IncidentSet incidents;
  double parse_us = 0;
  double optimize_us = 0;
  double eval_us = 0;
  double estimated_cost_before = 0;
  double estimated_cost_after = 0;
  /// Wid-shards the evaluation actually scattered over: 1 = serial, K > 1
  /// = scatter/gather on the engine's shard pool, 0 = no evaluation ran
  /// (error slot). Request observability (server/observer.h) attributes
  /// per-request eval time to this.
  std::size_t shards_used = 0;
  /// kNone when the evaluation ran to completion; otherwise the incidents
  /// are a valid but PARTIAL subset (deadline / cancel / budget).
  StopReason stop_reason = StopReason::kNone;
  /// Batch isolation: why THIS query failed (parse/optimize/eval error)
  /// while the rest of its batch completed. Empty on success; a failed
  /// query carries no incidents.
  std::string error;

  std::size_t total() const { return incidents.total(); }
  bool any() const { return !incidents.empty(); }
  bool ok() const { return error.empty(); }
  /// True iff the incident set is the full answer.
  bool complete() const { return ok() && stop_reason == StopReason::kNone; }
  bool timed_out() const { return stop_reason == StopReason::kDeadline; }
  bool cancelled() const { return stop_reason == StopReason::kCancelled; }
  bool truncated() const {
    return stop_reason == StopReason::kIncidentBudget;
  }
};

/// One query of a batch: a pattern with an optional where clause,
/// built programmatically or parsed from "PATTERN [where EXPR]" text.
struct Query {
  PatternPtr pattern;
  JoinExprPtr where;  // null when absent

  Query() = default;
  Query(PatternPtr p, JoinExprPtr w = nullptr)
      : pattern(std::move(p)), where(std::move(w)) {}

  /// Parses a full query. Throws ParseError / QueryError.
  static Query parse(std::string_view text);
};

/// Result of running a batch: per-query results (input order) plus the
/// sharing tallies of the one shared evaluation pass.
///
/// Timing attribution: evaluation is ONE pass shared by every query, so a
/// per-query share of `eval_us` would be an invention. Deterministically,
/// `eval_us` below is the shared pass's wall time and every
/// `results[q].eval_us` reports that same figure — "this query's answer
/// took the whole pass". Per-query `parse_us`/`optimize_us` are genuine
/// (the front end runs per query). The shared figure is also exported as
/// the `wflog_batch_eval_seconds` histogram when telemetry is installed
/// (obs/telemetry.h).
struct BatchResult {
  std::vector<QueryResult> results;
  BatchEvalStats stats;
  double eval_us = 0;  // wall time of the one shared evaluation pass

  std::size_t num_queries() const { return results.size(); }
  /// Incidents across all queries.
  std::size_t total() const;
  std::uint64_t cache_hits() const { return stats.counters.cache_hits; }
  std::uint64_t cache_misses() const { return stats.counters.cache_misses; }
  std::uint64_t cache_bytes() const { return stats.counters.cache_bytes; }
};

class QueryEngine {
 public:
  explicit QueryEngine(const Log& log, QueryOptions options = {});
  /// The engine borrows the log; a temporary would dangle immediately.
  explicit QueryEngine(Log&& log, QueryOptions options = {}) = delete;

  /// Parse, optimize, evaluate. The text form accepts a full query —
  /// "PATTERN [where JOIN-EXPR]" (core/join.h); incidents failing the
  /// where clause are filtered out. Throws ParseError / QueryError.
  QueryResult run(std::string_view query_text) const;
  QueryResult run(PatternPtr pattern, JoinExprPtr where = nullptr) const;
  /// run() with per-call limits overriding the engine-wide defaults
  /// (deadline / incident budget / cancel) — one engine, many callers,
  /// each with its own budget.
  QueryResult run(std::string_view query_text, const RunLimits& limits) const;
  QueryResult run(PatternPtr pattern, JoinExprPtr where,
                  const RunLimits& limits) const;

  /// Evaluates N queries in ONE shared pass over the log (core/batch.h):
  /// each query is parsed/optimized exactly as run() would, then all
  /// executed patterns are evaluated together, sharing every subtree with
  /// an equal canonical key (Theorems 2-4) through a per-instance memo.
  /// results[q] is bit-identical to run(queries[q]). `threads` partitions
  /// instances across workers (1 = serial, 0 = hardware concurrency);
  /// `use_cache` toggles the subpattern memo.
  ///
  /// Failure isolation: a query that fails to parse, optimize, or
  /// evaluate becomes an error slot (results[q].error set, no incidents)
  /// while every other query completes normally — run_batch itself only
  /// throws for infrastructure failures, not per-query ones.
  BatchResult run_batch(std::span<const Query> queries,
                        std::size_t threads = 1,
                        bool use_cache = true) const;
  BatchResult run_batch(std::span<const Query> queries, std::size_t threads,
                        bool use_cache, const RunLimits& limits) const;
  /// Convenience: parses each text with Query::parse first.
  BatchResult run_batch(std::span<const std::string> query_texts,
                        std::size_t threads = 1,
                        bool use_cache = true) const;
  BatchResult run_batch(std::span<const std::string> query_texts,
                        std::size_t threads, bool use_cache,
                        const RunLimits& limits) const;

  /// Cheap existence / counting entry points ("are there any students
  /// who ...?"). exists() early-exits on the first matching instance;
  /// both accept full queries (where clauses force materialization).
  bool exists(std::string_view query_text) const;
  std::size_t count(std::string_view query_text) const;

  const Log& log() const noexcept { return *log_; }
  const LogIndex& index() const noexcept { return index_; }
  const CostModel& cost_model() const noexcept { return cost_model_; }
  const QueryOptions& options() const noexcept { return options_; }

  /// Effective shard count (QueryOptions::shards resolved against the
  /// log's instance count); 1 = the serial evaluator.
  std::size_t shards() const noexcept { return shard_plan_.num_shards(); }
  const ShardPlan& shard_plan() const noexcept { return shard_plan_; }
  /// The engine's persistent shard pool, or null when unsharded.
  ShardPool* shard_pool() const noexcept { return shard_pool_.get(); }

 private:
  const Log* log_;
  QueryOptions options_;
  LogIndex index_;
  CostModel cost_model_;
  // Each run() / exists() / count() evaluates with a per-call Evaluator
  // (cheap: it only borrows index_) so concurrent callers never share its
  // mutable work counters. A long-lived member here is a data race.
  // Scatter/gather state, built once per engine: the wid partition of
  // this log and the worker pool every sharded query reuses (one thread
  // fewer than shards — the calling thread participates).
  ShardPlan shard_plan_;
  std::unique_ptr<ShardPool> shard_pool_;
};

}  // namespace wflog
