#include "core/monitor.h"

#include <algorithm>

#include "common/error.h"
#include "core/parser.h"
#include "obs/telemetry.h"

namespace wflog {
namespace {

/// Inserts `o` into the canonical list `list` if absent; true if inserted.
bool insert_unique(IncidentList& list, Incident o) {
  auto it = std::lower_bound(list.begin(), list.end(), o);
  if (it != list.end() && *it == o) return false;
  list.insert(it, std::move(o));
  return true;
}

}  // namespace

LogMonitor::LogMonitor(MonitorOptions options) : options_(options) {
  start_sym_ = interner_.intern(kStartActivity);
  end_sym_ = interner_.intern(kEndActivity);
}

std::size_t LogMonitor::compile_node(const Pattern& p, CompiledQuery& q) {
  CompiledNode node;
  node.op = p.op();
  if (p.is_atom()) {
    node.activity = interner_.intern(p.activity());
    node.negated = p.negated();
    node.predicate = p.predicate();
  } else {
    node.left = compile_node(*p.left(), q);
    node.right = compile_node(*p.right(), q);
  }
  q.nodes.push_back(std::move(node));
  return q.nodes.size() - 1;
}

LogMonitor::QueryId LogMonitor::add_query(std::string_view pattern_text,
                                          const EvalGuard* guard) {
  return add_query(parse_pattern(pattern_text), guard);
}

LogMonitor::QueryId LogMonitor::add_query(PatternPtr pattern,
                                          const EvalGuard* guard) {
  WFLOG_SPAN(span, "monitor.add_query");
  CompiledQuery q;
  q.id = next_query_id_++;
  q.pattern = std::move(pattern);
  compile_node(*q.pattern, q);
  queries_.push_back(std::move(q));
  const QueryId id = queries_.back().id;
  match_totals_.emplace(id, 0);
  try {
    backfill(queries_.back(), guard);
  } catch (...) {
    remove_query(id);  // leave the monitor exactly as before the call
    throw;
  }
  WFLOG_TELEMETRY(t) {
    t->monitor_queries->set(static_cast<double>(queries_.size()));
  }
  if (span.active()) {
    span.arg("backfilled", static_cast<std::uint64_t>(num_records_));
  }
  return id;
}

void LogMonitor::remove_query(QueryId id) {
  queries_.erase(std::remove_if(queries_.begin(), queries_.end(),
                                [id](const CompiledQuery& q) {
                                  return q.id == id;
                                }),
                 queries_.end());
  state_.erase(id);
  match_totals_.erase(id);
  // Undelivered matches must not surface for an id that no longer exists.
  matches_.erase(std::remove_if(matches_.begin(), matches_.end(),
                                [id](const Match& m) {
                                  return m.query == id;
                                }),
                 matches_.end());
  WFLOG_TELEMETRY(t) {
    t->monitor_queries->set(static_cast<double>(queries_.size()));
  }
}

void LogMonitor::backfill(CompiledQuery& q, const EvalGuard* guard) {
  if (num_records_ == 0) return;
  if (!options_.keep_records) {
    throw Error(
        "LogMonitor: adding a query after events requires keep_records");
  }
  // Replay retained history so the new query's results are indistinguishable
  // from having been registered up front (its historical matches are
  // reported now, in log order).
  for (const LogRecord& l : records_) {
    if (guard != nullptr && guard->check()) {
      throw Error(std::string("LogMonitor: backfill stopped (") +
                  stop_reason_name(guard->reason()) + ")");
    }
    const std::size_t before = matches_.size();
    feed(q, l);
    if (guard != nullptr && matches_.size() > before) {
      guard->add_incidents(matches_.size() - before);
    }
  }
  // Completed instances produce no further matches; drop their state.
  auto& per_wid = state_[q.id];
  for (auto it = per_wid.begin(); it != per_wid.end();) {
    const auto open = next_is_lsn_.find(it->first);
    const bool is_open = open != next_is_lsn_.end() && open->second != 0;
    it = is_open ? std::next(it) : per_wid.erase(it);
  }
}

Wid LogMonitor::begin_instance() {
  // next_is_lsn_ entries: absent = never used, 0 = completed, >= 1 = open.
  while (next_is_lsn_.contains(next_wid_)) ++next_wid_;
  const Wid wid = next_wid_;
  next_is_lsn_.emplace(wid, 1);
  WFLOG_TELEMETRY(t) { t->monitor_open_instances->add(1.0); }
  append_record(wid, start_sym_, {}, {});
  return wid;
}

void LogMonitor::record(Wid wid, std::string_view activity,
                        const NamedAttrs& in, const NamedAttrs& out) {
  const auto open = next_is_lsn_.find(wid);
  if (open == next_is_lsn_.end() || open->second == 0) {
    note_bad_event(wid, activity,
                   "instance " + std::to_string(wid) + " is not open");
    return;
  }
  if (activity == kStartActivity || activity == kEndActivity) {
    note_bad_event(wid, activity,
                   "activity name '" + std::string(activity) +
                       "' is reserved");
    return;
  }
  AttrMap in_map;
  for (const auto& [name, value] : in) {
    in_map.set(interner_.intern(name), value);
  }
  AttrMap out_map;
  for (const auto& [name, value] : out) {
    out_map.set(interner_.intern(name), value);
  }
  append_record(wid, interner_.intern(activity), std::move(in_map),
                std::move(out_map));
}

void LogMonitor::end_instance(Wid wid) {
  auto it = next_is_lsn_.find(wid);
  if (it == next_is_lsn_.end() || it->second == 0) {
    note_bad_event(wid, kEndActivity,
                   "instance " + std::to_string(wid) + " is not open");
    return;
  }
  append_record(wid, end_sym_, {}, {});
  it->second = 0;  // completed
  WFLOG_TELEMETRY(t) { t->monitor_open_instances->add(-1.0); }
  // A completed instance can produce no further matches: drop its state.
  for (auto& [query_id, per_wid] : state_) {
    per_wid.erase(wid);
  }
}

void LogMonitor::note_bad_event(Wid wid, std::string_view activity,
                                std::string reason) {
  ++num_bad_events_;
  WFLOG_TELEMETRY(t) { t->monitor_bad_events_total->inc(); }
  BadEvent event{wid, std::string(activity), std::move(reason)};
  if (options_.on_bad_event) options_.on_bad_event(event);
  switch (options_.bad_event_policy) {
    case BadEventPolicy::kReject:
      throw Error("LogMonitor: " + event.reason);
    case BadEventPolicy::kSkip:
      break;
    case BadEventPolicy::kQuarantine:
      // Bounded ring: retain only the newest quarantine_capacity events so
      // a misbehaving producer cannot grow this without bound.
      if (options_.quarantine_capacity == 0) {
        ++num_quarantine_dropped_;
        break;
      }
      while (quarantined_.size() >= options_.quarantine_capacity) {
        quarantined_.pop_front();
        ++num_quarantine_dropped_;
      }
      quarantined_.push_back(std::move(event));
      break;
  }
}

void LogMonitor::append_record(Wid wid, Symbol activity, AttrMap in,
                               AttrMap out) {
  LogRecord l;
  l.lsn = static_cast<Lsn>(num_records_ + 1);
  l.wid = wid;
  l.is_lsn = next_is_lsn_.at(wid)++;
  l.activity = activity;
  l.in = std::move(in);
  l.out = std::move(out);
  ++num_records_;
  WFLOG_TELEMETRY(t) { t->monitor_records_total->inc(); }

  for (CompiledQuery& q : queries_) {
    feed(q, l);
  }
  if (options_.keep_records) records_.push_back(std::move(l));
}

void LogMonitor::feed(CompiledQuery& q, const LogRecord& l) {
  InstanceState& st = state_[q.id][l.wid];
  if (st.full.empty()) st.full.resize(q.nodes.size());

  // Per-node delta lists for this record; all new incidents end at l.is_lsn.
  std::vector<IncidentList> delta(q.nodes.size());

  for (std::size_t i = 0; i < q.nodes.size(); ++i) {
    const CompiledNode& node = q.nodes[i];
    IncidentList& d = delta[i];

    switch (node.op) {
      case PatternOp::kAtom: {
        bool hit = node.negated ? l.activity != node.activity
                                : l.activity == node.activity;
        if (hit && node.negated && !options_.negation_matches_sentinels) {
          hit = l.activity != start_sym_ && l.activity != end_sym_;
        }
        if (hit && node.predicate != nullptr) {
          hit = node.predicate->eval(l, interner_);
        }
        if (hit) d.push_back(Incident::singleton(l.wid, l.is_lsn));
        break;
      }
      case PatternOp::kConsecutive:
      case PatternOp::kSequential: {
        // New right incidents (ending at n) joined with ALL left incidents
        // known so far (old ∪ delta-left: a delta-left incident also ends
        // at n and can never precede a right incident ending at n, so only
        // the old ones matter).
        const bool cons = node.op == PatternOp::kConsecutive;
        for (const Incident& r : delta[node.right]) {
          for (const Incident& lft : st.full[node.left]) {
            const bool ok = cons ? lft.last() + 1 == r.first()
                                 : lft.last() < r.first();
            if (ok) d.push_back(Incident::merged(lft, r));
          }
        }
        canonicalize(d);
        break;
      }
      case PatternOp::kChoice: {
        // Every delta incident contains the brand-new position, so deltas
        // can never duplicate history (whose incidents end earlier); only
        // the two sides' deltas can coincide, which canonicalize removes.
        d = delta[node.left];
        d.insert(d.end(), delta[node.right].begin(),
                 delta[node.right].end());
        canonicalize(d);
        break;
      }
      case PatternOp::kParallel: {
        for (const Incident& a : delta[node.left]) {
          for (const Incident& b : st.full[node.right]) {
            if (Incident::disjoint(a, b)) {
              d.push_back(Incident::merged(a, b));
            }
          }
        }
        for (const Incident& b : delta[node.right]) {
          for (const Incident& a : st.full[node.left]) {
            if (Incident::disjoint(a, b)) {
              d.push_back(Incident::merged(a, b));
            }
          }
          for (const Incident& a : delta[node.left]) {
            if (Incident::disjoint(a, b)) {
              d.push_back(Incident::merged(a, b));
            }
          }
        }
        canonicalize(d);
        break;
      }
    }
  }

  // Commit deltas to node state and report root matches, suppressing any
  // duplicate the root may have produced before (set semantics).
  const std::size_t root = q.nodes.size() - 1;
  for (std::size_t i = 0; i < q.nodes.size(); ++i) {
    for (Incident& o : delta[i]) {
      const bool fresh = insert_unique(st.full[i], o);
      if (fresh && i == root) {
        matches_.push_back(Match{q.id, o});
        ++match_totals_[q.id];
        WFLOG_TELEMETRY(t) { t->monitor_matches_total->inc(); }
      }
    }
  }
}

std::vector<LogMonitor::Match> LogMonitor::drain() {
  std::vector<Match> out;
  out.swap(matches_);
  return out;
}

std::vector<LogMonitor::Match> LogMonitor::drain(QueryId id) {
  std::vector<Match> out;
  std::vector<Match> rest;
  rest.reserve(matches_.size());
  for (Match& m : matches_) {
    (m.query == id ? out : rest).push_back(std::move(m));
  }
  matches_ = std::move(rest);
  return out;
}

LogMonitor::MemoryStats LogMonitor::memory_stats() const noexcept {
  MemoryStats s;
  s.state_queries = state_.size();
  for (const auto& [id, per_wid] : state_) {
    s.state_instances += per_wid.size();
  }
  s.tracked_totals = match_totals_.size();
  s.pending_matches = matches_.size();
  return s;
}

std::size_t LogMonitor::total_matches(QueryId id) const {
  auto it = match_totals_.find(id);
  return it == match_totals_.end() ? 0 : it->second;
}

Log LogMonitor::snapshot() const {
  if (!options_.keep_records) {
    throw Error("LogMonitor: snapshot requires keep_records");
  }
  return Log::from_records(records_, interner_);
}

}  // namespace wflog
