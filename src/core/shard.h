#pragma once

// Wid-sharded scatter/gather evaluation.
//
// Incidents never cross workflow-instance boundaries (Definitions 3-4), so
// a log partitions perfectly by wid: split the instance set into K
// wid-disjoint shards (a stable hash of the wid, identical across runs and
// processes), evaluate the query per shard on a pool of workers that
// outlives any single query, and recombine the per-shard incident sets in
// the global instance order. The merge is deterministic, so the output is
// BYTE-IDENTICAL to unsharded evaluation for every K — the property
// tests/shard_test.cpp enforces differentially.
//
// Three pieces:
//   * ShardPlan      — the partitioner: wid -> shard_of_wid(wid) % K, with
//                      each wid's global position retained so the merge can
//                      reassemble groups in first-appearance order.
//   * ShardPool      — a persistent worker pool shared by every query of an
//                      engine (scatter without per-query thread spawns; the
//                      caller participates, so a 0-worker pool degrades to
//                      the serial loop).
//   * evaluate_sharded / count_sharded / exists_sharded — scatter/gather
//                      drivers over the ordinary per-instance evaluator.
//
// Resource guards: one EvalGuard is shared by every shard (it is built for
// exactly that — atomic budget, atomic trip), so the deadline, the
// incident budget, and cancellation are enforced GLOBALLY: the first shard
// to trip stops the siblings at their next poll, and the caller surfaces
// one stop_reason exactly as an unsharded run would.

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/evaluator.h"

namespace wflog {

/// Stable shard assignment: splitmix64-mixed wid modulo num_shards.
/// Depends only on (wid, num_shards) — never on thread timing, pointer
/// values, or std::hash — so a wid lands on the same shard in every run,
/// every process, and every future multi-process router. Inline so the log
/// layer (log/slice.h's shard_instances) shares the exact assignment
/// without linking the core library.
inline std::size_t shard_of_wid(Wid wid, std::size_t num_shards) noexcept {
  if (num_shards <= 1) return 0;
  // splitmix64 finalizer: wids are dense small integers (the monitor
  // assigns them sequentially), so the raw modulo would put consecutive
  // wids on consecutive shards — fine for balance, but any future
  // range-based routing would alias it. The mix makes the assignment a
  // pure function of (wid, num_shards), independent of allocation order.
  std::uint64_t z = static_cast<std::uint64_t>(wid) + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<std::size_t>(z % num_shards);
}

/// Effective shard count: `requested` (0 = hardware_concurrency) clamped
/// to [1, instances] — sharding an instance set finer than one wid per
/// shard only adds empty tasks.
std::size_t resolve_shard_count(std::size_t requested,
                                std::size_t instances) noexcept;

/// The partition of a log's instance set into K wid-disjoint shards.
/// Built once per engine (the wid set is immutable per snapshot) and
/// reused by every query.
class ShardPlan {
 public:
  ShardPlan() = default;
  /// Partitions `wids` (the log's instance list, in first-appearance
  /// order) into resolve_shard_count(num_shards, wids.size()) shards.
  ShardPlan(const std::vector<Wid>& wids, std::size_t num_shards);

  std::size_t num_shards() const noexcept { return shards_.size(); }
  /// Total instances across all shards.
  std::size_t num_instances() const noexcept { return num_instances_; }

  struct Shard {
    std::vector<Wid> wids;            // this shard's instances, log order
    std::vector<std::size_t> global;  // global[i] = position of wids[i] in
                                      // the log's wid list
  };
  const Shard& shard(std::size_t s) const { return shards_[s]; }
  const std::vector<Shard>& shards() const noexcept { return shards_; }

 private:
  std::vector<Shard> shards_;
  std::size_t num_instances_ = 0;
};

/// A persistent pool of shard workers, created once per engine and reused
/// by every query — scatter without per-query thread spawns (E19 showed a
/// thread per whole query cannot scale a multi-core host).
///
/// run(count, work) executes work(i) for i in [0, count) and returns when
/// all items finished. The CALLING thread participates in its own job, so
/// a pool with zero workers degrades to the plain serial loop, and
/// progress never depends on workers being free. Multiple threads may call
/// run() concurrently (wfqd's request workers share one engine): jobs
/// queue FIFO and every worker drains them in order.
///
/// shutdown() (or destruction) stops the workers after their current item;
/// callers inside run() finish their remaining items inline — correctness
/// never depends on the pool being alive. Genuine cancellation of
/// in-flight work is the guard's job: wfqd's drain trips every request's
/// EvalGuard, which the per-shard evaluation polls (the
/// drain-under-sharded-load regression test in tests/server_test.cpp).
class ShardPool {
 public:
  /// Spawns `workers` threads (0 = none; run() then executes inline).
  explicit ShardPool(std::size_t workers);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Executes work(i) for every i in [0, count); blocks until done.
  /// An exception thrown by any item is captured and rethrown here (first
  /// one wins; remaining items still run).
  void run(std::size_t count, const std::function<void(std::size_t)>& work);

  /// Stops the workers after their current item and joins them.
  /// Idempotent. Queued-but-unstarted items are NOT dropped: the callers
  /// blocked in run() execute them inline, so results stay complete.
  void shutdown();

  std::size_t workers() const noexcept { return workers_.size(); }

 private:
  struct Job {
    std::size_t count = 0;
    const std::function<void(std::size_t)>* work = nullptr;
    std::size_t next = 0;    // next unclaimed item (under mu_)
    std::size_t done = 0;    // finished items (under mu_)
    std::exception_ptr error;  // first failure (under mu_)
    std::condition_variable finished;
  };

  /// Claims and runs items of `job` until it is exhausted; returns with
  /// mu_ held. `lock` must hold mu_ on entry.
  void drain_job(Job& job, std::unique_lock<std::mutex>& lock);
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::deque<Job*> jobs_;  // FIFO of jobs with unclaimed items
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// One shard's raw gather output: the non-empty incident lists of its
/// instances tagged with each instance's global position. Public so the
/// merge can be property-tested under adversarial completion orders.
struct ShardResult {
  std::vector<std::size_t> positions;  // ascending global positions
  std::vector<Wid> wids;               // parallel to positions
  std::vector<IncidentList> lists;     // parallel, each non-empty
};

/// Deterministic gather: recombines per-shard outputs into one IncidentSet
/// whose groups appear in ascending global-position order — exactly the
/// shape Evaluator::evaluate produces, independent of the order the shards
/// finished in (or are listed in). `num_instances` is the log's total
/// instance count (positions index into it).
IncidentSet merge_shards(std::size_t num_instances,
                         std::vector<ShardResult> results);

struct ShardEvalOptions {
  EvalOptions eval;
  /// Shared guard; a trip in any shard early-cancels the siblings at
  /// their next poll. Borrowed; may be null.
  const EvalGuard* guard = nullptr;
  /// Pool to scatter on; null = serial in the calling thread (still
  /// shard-at-a-time, so results are identical either way).
  ShardPool* pool = nullptr;
  /// TEST HOOK: when non-null (and pool is null), shards are evaluated in
  /// exactly this order — the injectable scheduler the merge property
  /// tests use to simulate nondeterministic shard completion. Must be a
  /// permutation of [0, plan.num_shards()).
  const std::vector<std::size_t>* completion_order = nullptr;
  /// When non-null, the per-shard evaluators' work tallies are summed into
  /// it (after the gather) — how the engine folds sharded work into
  /// telemetry exactly as it does for its own serial evaluator.
  EvalCounters* counters = nullptr;
};

/// Scatter/gather inc_L(p): evaluates every shard of `plan` (over the
/// shared read-only index) and merges. Byte-identical to
/// Evaluator(index, options.eval).evaluate(p) for every shard count.
IncidentSet evaluate_sharded(const Pattern& p, const LogIndex& index,
                             const ShardPlan& plan,
                             const ShardEvalOptions& options = {});

/// Scatter/gather |inc_L(p)| (per-shard linear fast path when legal).
std::size_t count_sharded(const Pattern& p, const LogIndex& index,
                          const ShardPlan& plan,
                          const ShardEvalOptions& options = {});

/// Scatter/gather existence: stops scanning once any shard finds a match
/// (siblings exit at their next instance boundary).
bool exists_sharded(const Pattern& p, const LogIndex& index,
                    const ShardPlan& plan,
                    const ShardEvalOptions& options = {});

}  // namespace wflog
