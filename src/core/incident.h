#pragma once

// Incident instances (Definition 4): an incident o of pattern p in log L is
// a set of records of one workflow instance, with first(o), last(o), wid(o).
//
// Representation: the owning wid plus the sorted vector of the member
// records' is-lsns. Since is-lsn identifies a record within an instance,
// (wid, {is-lsns}) identifies the record set exactly; actual LogRecords are
// recovered through LogIndex::find. first()/last() are O(1) (front/back of
// the sorted vector), union and disjointness are linear sorted merges —
// matching the complexity accounting of Lemma 1.
//
// Definition 4 makes inc_L(p) a SET of incidents. Evaluators therefore keep
// incident lists in canonical order (lexicographic on the position vector,
// which also orders by first()) and deduplicated; see canonicalize().

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace wflog {

class Incident {
 public:
  Incident() = default;

  /// Singleton incident of an atomic pattern: one record.
  static Incident singleton(Wid wid, IsLsn pos) {
    Incident o;
    o.wid_ = wid;
    o.positions_.push_back(pos);
    return o;
  }

  /// Union o = o1 ∪ o2 used by ⊙ / ≫ / ⊕.
  /// Precondition: a.wid() == b.wid(). Shared positions collapse (sets).
  static Incident merged(const Incident& a, const Incident& b);

  /// True when the incidents share no log record (the ⊕ side condition).
  /// Linear sorted merge.
  static bool disjoint(const Incident& a, const Incident& b) noexcept;

  Wid wid() const noexcept { return wid_; }
  /// Paper's first(o): smallest member is-lsn. Precondition: !empty().
  IsLsn first() const noexcept { return positions_.front(); }
  /// Paper's last(o): largest member is-lsn. Precondition: !empty().
  IsLsn last() const noexcept { return positions_.back(); }

  std::size_t size() const noexcept { return positions_.size(); }
  bool empty() const noexcept { return positions_.empty(); }
  const std::vector<IsLsn>& positions() const noexcept { return positions_; }

  bool operator==(const Incident& other) const noexcept {
    return wid_ == other.wid_ && positions_ == other.positions_;
  }

  /// Canonical order: by wid, then lexicographically on positions (which in
  /// particular sorts by first()). Total, strict weak ordering.
  bool operator<(const Incident& other) const noexcept {
    if (wid_ != other.wid_) return wid_ < other.wid_;
    return positions_ < other.positions_;
  }

  std::size_t hash() const noexcept;

  /// "{wid=2: 5, 8, 9}" — diagnostic form; the engine renders richer views.
  std::string to_string() const;

 private:
  Wid wid_ = 0;
  std::vector<IsLsn> positions_;
};

/// Incidents of one workflow instance. Invariant (maintained by the
/// evaluators): canonically sorted and duplicate-free.
using IncidentList = std::vector<Incident>;

/// Sorts canonically and removes duplicates, establishing the IncidentList
/// invariant (inc_L(p) is a set).
void canonicalize(IncidentList& list);

/// True when the list is canonically sorted and duplicate-free.
bool is_canonical(const IncidentList& list) noexcept;

/// Incidents grouped by workflow instance; the result of evaluating a
/// pattern over a whole log. Groups appear in ascending wid order.
class IncidentSet {
 public:
  IncidentSet() = default;

  /// Adds a group. Precondition: wid greater than any existing group's.
  void add_group(Wid wid, IncidentList incidents);

  std::size_t num_groups() const noexcept { return groups_.size(); }

  /// Total number of incidents across all instances.
  std::size_t total() const noexcept;

  bool empty() const noexcept { return total() == 0; }

  const IncidentList* find(Wid wid) const noexcept;

  struct Group {
    Wid wid = 0;
    IncidentList incidents;
  };
  const std::vector<Group>& groups() const noexcept { return groups_; }

  /// All incidents in one flat canonical list.
  IncidentList flatten() const;

  bool operator==(const IncidentSet& other) const;

 private:
  std::vector<Group> groups_;
};

}  // namespace wflog
