#include "core/parallel_eval.h"

#include <atomic>
#include <thread>

#include "core/linear.h"
#include "obs/telemetry.h"

namespace wflog {

std::size_t resolve_worker_count(std::size_t requested,
                                 std::size_t instances) {
  std::size_t n = requested != 0
                      ? requested
                      : std::max<std::size_t>(
                            1, std::thread::hardware_concurrency());
  return std::min(n, std::max<std::size_t>(1, instances));
}

void parallel_for_instances(std::size_t count, std::size_t threads,
                            const std::function<void(std::size_t)>& work) {
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) work(i);
    return;
  }
  WFLOG_TELEMETRY(t) { t->parallel_workers_total->add(threads); }
  std::atomic<std::size_t> cursor{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&cursor, count, &work, t] {
      // One span per worker: its lane in the trace shows the stealing
      // cursor's actual load balance.
      WFLOG_SPAN(span, "parallel.worker");
      std::uint64_t items = 0;
      while (true) {
        const std::size_t i =
            cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) break;
        work(i);
        ++items;
      }
      if (span.active()) {
        span.arg("worker", static_cast<std::uint64_t>(t));
        span.arg("items", items);
      }
    });
  }
  for (std::thread& th : pool) th.join();
}

IncidentSet evaluate_parallel(const Pattern& p, const LogIndex& index,
                              const ParallelOptions& options) {
  const std::vector<Wid>& wids = index.wids();
  const std::size_t threads =
      resolve_worker_count(options.threads, wids.size());

  std::vector<IncidentList> per_wid(wids.size());
  parallel_for_instances(
      wids.size(), threads,
      [&per_wid, &wids, &index, &options, &p](std::size_t i) {
        // One evaluator per task: counters stay race-free.
        const Evaluator ev(index, options.eval);
        per_wid[i] = ev.evaluate_instance(p, wids[i]);
      });

  IncidentSet result;
  for (std::size_t i = 0; i < wids.size(); ++i) {
    if (!per_wid[i].empty()) {
      result.add_group(wids[i], std::move(per_wid[i]));
    }
  }
  return result;
}

std::size_t count_parallel(const Pattern& p, const LogIndex& index,
                           const ParallelOptions& options) {
  const std::vector<Wid>& wids = index.wids();
  const std::size_t threads =
      resolve_worker_count(options.threads, wids.size());

  const auto chain = options.eval.use_linear_fast_path &&
                             options.eval.max_span == 0
                         ? as_linear_chain(p)
                         : std::nullopt;

  std::vector<std::size_t> per_wid(wids.size(), 0);
  parallel_for_instances(
      wids.size(), threads,
      [&per_wid, &wids, &index, &options, &p, &chain](std::size_t i) {
        if (chain.has_value()) {
          per_wid[i] = count_linear(*chain, index, wids[i]);
        } else {
          const Evaluator ev(index, options.eval);
          per_wid[i] = ev.evaluate_instance(p, wids[i]).size();
        }
      });

  std::size_t total = 0;
  for (std::size_t n : per_wid) total += n;
  return total;
}

}  // namespace wflog
