#include "core/batch.h"

#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/parallel_eval.h"
#include "core/shard.h"
#include "obs/telemetry.h"

namespace wflog {

BatchPlan::BatchPlan(std::span<const PatternPtr> patterns)
    : patterns_(patterns.begin(), patterns.end()) {
  stats_.num_queries = patterns_.size();

  // Post-order over every query tree. Shared_ptr sharing means a node can
  // appear in several trees (or twice in one); visit each address once.
  std::unordered_map<std::string, std::uint32_t> slot_of_key;
  std::vector<const Pattern*> stack;
  for (const PatternPtr& root : patterns_) {
    if (root != nullptr) stack.push_back(root.get());
  }
  while (!stack.empty()) {
    const Pattern* node = stack.back();
    stack.pop_back();
    if (slots_.contains(node)) continue;
    ++stats_.total_nodes;
    const auto [it, inserted] = slot_of_key.try_emplace(
        canonical_key(*node),
        static_cast<std::uint32_t>(slot_of_key.size()));
    slots_.emplace(node, it->second);
    if (!node->is_atom()) {
      stack.push_back(node->left().get());
      stack.push_back(node->right().get());
    }
  }
  stats_.distinct_slots = slot_of_key.size();
}

std::vector<IncidentSet> evaluate_batch(std::span<const PatternPtr> patterns,
                                        const LogIndex& index,
                                        const BatchOptions& options,
                                        BatchEvalStats* stats) {
  const std::size_t num_queries = patterns.size();
  const std::vector<Wid>& wids = index.wids();
  const std::size_t threads =
      resolve_worker_count(options.threads, wids.size());
  const ShardPlan* splan =
      options.shard_plan != nullptr && options.shard_plan->num_shards() > 1
          ? options.shard_plan
          : nullptr;

  const BatchPlan plan(patterns);

  // per_wid[i][q] = incidents of query q in instance wids[i]. Workers
  // write disjoint i's, so no synchronization is needed beyond the join.
  std::vector<std::vector<IncidentList>> per_wid(wids.size());
  // One slot per outer work unit (shard or instance).
  std::vector<EvalCounters> unit_counters(
      splan != nullptr ? splan->num_shards() : wids.size());

  // Per-query failure isolation, shared across workers: once a query
  // throws anywhere, every worker skips it (its partial lists are
  // discarded at assembly); the first error message wins.
  std::vector<std::atomic<bool>> failed(num_queries);
  std::vector<std::string> errors(num_queries);
  std::mutex errors_mu;

  // The whole batch for ONE instance, with whatever evaluator/memo the
  // outer scheduler hands in. Identical between the instance-unit and
  // shard-unit paths, so results cannot depend on the scheduler.
  const auto eval_instance = [&](const Evaluator& ev, SubpatternMemo* memo,
                                 std::size_t i) {
    std::vector<IncidentList>& lists = per_wid[i];
    lists.resize(num_queries);
    for (std::size_t q = 0; q < num_queries; ++q) {
      if (patterns[q] == nullptr ||
          failed[q].load(std::memory_order_relaxed)) {
        continue;
      }
      try {
        lists[q] = ev.evaluate_instance(*patterns[q], wids[i], memo,
                                        nullptr, options.guard);
      } catch (const std::exception& e) {
        if (!failed[q].exchange(true, std::memory_order_relaxed)) {
          const std::lock_guard<std::mutex> lock(errors_mu);
          errors[q] = e.what();
        }
        lists[q].clear();
      }
    }
  };

  if (splan != nullptr) {
    WFLOG_TELEMETRY(t) {
      t->shard_evals_total->inc();
      t->shard_tasks_total->add(splan->num_shards());
    }
    const auto shard_task = [&](std::size_t s) {
      WFLOG_SPAN(span, "shard.task");
      const ShardPlan::Shard& shard = splan->shard(s);
      const Evaluator ev(index, options.eval);
      SubpatternMemo memo = plan.make_memo();
      SubpatternMemo* memo_ptr = options.use_cache ? &memo : nullptr;
      for (std::size_t j = 0; j < shard.wids.size(); ++j) {
        if (options.guard != nullptr && options.guard->stopped()) {
          WFLOG_TELEMETRY(t) { t->shard_cancelled_total->inc(); }
          break;
        }
        if (memo_ptr != nullptr) memo_ptr->reset();
        eval_instance(ev, memo_ptr, shard.global[j]);
      }
      unit_counters[s] = ev.counters();
      if (span.active()) {
        span.arg("shard", static_cast<std::uint64_t>(s));
        span.arg("instances", static_cast<std::uint64_t>(shard.wids.size()));
      }
    };
    if (options.shard_pool != nullptr) {
      options.shard_pool->run(splan->num_shards(), shard_task);
    } else {
      for (std::size_t s = 0; s < splan->num_shards(); ++s) shard_task(s);
    }
  } else {
    parallel_for_instances(wids.size(), threads, [&](std::size_t i) {
      if (options.guard != nullptr && options.guard->stopped()) return;
      const Evaluator ev(index, options.eval);
      SubpatternMemo memo = plan.make_memo();
      eval_instance(ev, options.use_cache ? &memo : nullptr, i);
      unit_counters[i] = ev.counters();
    });
  }

  // Assemble per query in ascending wid order — the exact shape
  // Evaluator::evaluate produces (empty groups dropped). Failed queries
  // yield empty sets: a half-evaluated query would be misleading.
  std::vector<IncidentSet> results(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    if (failed[q].load(std::memory_order_relaxed)) continue;
    for (std::size_t i = 0; i < wids.size(); ++i) {
      if (!per_wid[i][q].empty()) {
        results[q].add_group(wids[i], std::move(per_wid[i][q]));
      }
    }
  }

  if (stats != nullptr) {
    *stats = BatchEvalStats{};
    stats->plan = plan.stats();
    stats->threads_used = splan != nullptr ? splan->num_shards() : threads;
    for (const EvalCounters& c : unit_counters) stats->counters += c;
    stats->query_errors = std::move(errors);
  }
  return results;
}

}  // namespace wflog
