#include "core/batch.h"

#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/parallel_eval.h"

namespace wflog {

BatchPlan::BatchPlan(std::span<const PatternPtr> patterns)
    : patterns_(patterns.begin(), patterns.end()) {
  stats_.num_queries = patterns_.size();

  // Post-order over every query tree. Shared_ptr sharing means a node can
  // appear in several trees (or twice in one); visit each address once.
  std::unordered_map<std::string, std::uint32_t> slot_of_key;
  std::vector<const Pattern*> stack;
  for (const PatternPtr& root : patterns_) {
    if (root != nullptr) stack.push_back(root.get());
  }
  while (!stack.empty()) {
    const Pattern* node = stack.back();
    stack.pop_back();
    if (slots_.contains(node)) continue;
    ++stats_.total_nodes;
    const auto [it, inserted] = slot_of_key.try_emplace(
        canonical_key(*node),
        static_cast<std::uint32_t>(slot_of_key.size()));
    slots_.emplace(node, it->second);
    if (!node->is_atom()) {
      stack.push_back(node->left().get());
      stack.push_back(node->right().get());
    }
  }
  stats_.distinct_slots = slot_of_key.size();
}

std::vector<IncidentSet> evaluate_batch(std::span<const PatternPtr> patterns,
                                        const LogIndex& index,
                                        const BatchOptions& options,
                                        BatchEvalStats* stats) {
  const std::size_t num_queries = patterns.size();
  const std::vector<Wid>& wids = index.wids();
  const std::size_t threads =
      resolve_worker_count(options.threads, wids.size());

  const BatchPlan plan(patterns);

  // per_wid[i][q] = incidents of query q in instance wids[i]. Workers
  // write disjoint i's, so no synchronization is needed beyond the join.
  std::vector<std::vector<IncidentList>> per_wid(wids.size());
  std::vector<EvalCounters> per_wid_counters(wids.size());

  // Per-query failure isolation, shared across workers: once a query
  // throws anywhere, every worker skips it (its partial lists are
  // discarded at assembly); the first error message wins.
  std::vector<std::atomic<bool>> failed(num_queries);
  std::vector<std::string> errors(num_queries);
  std::mutex errors_mu;

  parallel_for_instances(
      wids.size(), threads, [&](std::size_t i) {
        if (options.guard != nullptr && options.guard->stopped()) return;
        const Evaluator ev(index, options.eval);
        SubpatternMemo memo = plan.make_memo();
        SubpatternMemo* memo_ptr = options.use_cache ? &memo : nullptr;
        std::vector<IncidentList>& lists = per_wid[i];
        lists.resize(num_queries);
        for (std::size_t q = 0; q < num_queries; ++q) {
          if (patterns[q] == nullptr ||
              failed[q].load(std::memory_order_relaxed)) {
            continue;
          }
          try {
            lists[q] = ev.evaluate_instance(*patterns[q], wids[i],
                                            memo_ptr, nullptr,
                                            options.guard);
          } catch (const std::exception& e) {
            if (!failed[q].exchange(true, std::memory_order_relaxed)) {
              const std::lock_guard<std::mutex> lock(errors_mu);
              errors[q] = e.what();
            }
            lists[q].clear();
          }
        }
        per_wid_counters[i] = ev.counters();
      });

  // Assemble per query in ascending wid order — the exact shape
  // Evaluator::evaluate produces (empty groups dropped). Failed queries
  // yield empty sets: a half-evaluated query would be misleading.
  std::vector<IncidentSet> results(num_queries);
  for (std::size_t q = 0; q < num_queries; ++q) {
    if (failed[q].load(std::memory_order_relaxed)) continue;
    for (std::size_t i = 0; i < wids.size(); ++i) {
      if (!per_wid[i][q].empty()) {
        results[q].add_group(wids[i], std::move(per_wid[i][q]));
      }
    }
  }

  if (stats != nullptr) {
    *stats = BatchEvalStats{};
    stats->plan = plan.stats();
    stats->threads_used = threads;
    for (const EvalCounters& c : per_wid_counters) stats->counters += c;
    stats->query_errors = std::move(errors);
  }
  return results;
}

}  // namespace wflog
