#pragma once

// Synthetic incident-list generation — drives the operator micro-benches
// (experiments E4–E7) and the randomized property tests without paying for
// full log construction.

#include "common/rng.h"
#include "core/incident.h"

namespace wflog {

struct SyntheticIncidentOptions {
  std::size_t count = 100;         // number of incidents (n of Lemma 1)
  std::size_t records_each = 1;    // records per incident (k of Lemma 1)
  std::size_t instance_len = 1000; // positions drawn from [1, instance_len]
  Wid wid = 1;
  std::uint64_t seed = 7;
};

/// Generates a canonical IncidentList of `count` distinct incidents, each
/// `records_each` distinct positions drawn uniformly from the instance.
/// The returned list may be smaller than `count` when the position space
/// is too small to supply distinct incidents.
IncidentList synthetic_incidents(const SyntheticIncidentOptions& options);

/// A random incident within the given instance (not deduplicated).
Incident random_incident(Rng& rng, Wid wid, std::size_t records,
                         std::size_t instance_len);

}  // namespace wflog
