#pragma once

// Synthetic incident-list generation — drives the operator micro-benches
// (experiments E4–E7) and the randomized property tests without paying for
// full log construction.

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/incident.h"
#include "core/pattern.h"

namespace wflog {

struct SyntheticIncidentOptions {
  std::size_t count = 100;         // number of incidents (n of Lemma 1)
  std::size_t records_each = 1;    // records per incident (k of Lemma 1)
  std::size_t instance_len = 1000; // positions drawn from [1, instance_len]
  Wid wid = 1;
  std::uint64_t seed = 7;
};

/// Generates a canonical IncidentList of `count` distinct incidents, each
/// `records_each` distinct positions drawn uniformly from the instance.
/// The returned list may be smaller than `count` when the position space
/// is too small to supply distinct incidents.
IncidentList synthetic_incidents(const SyntheticIncidentOptions& options);

/// A random incident within the given instance (not deduplicated).
Incident random_incident(Rng& rng, Wid wid, std::size_t records,
                         std::size_t instance_len);

/// Knobs for random pattern trees — the query side of the randomized
/// property tests (batch differential, canonical-key invariance, parser
/// round trips).
struct RandomPatternOptions {
  std::size_t max_depth = 4;
  /// Activity alphabet to draw atoms from; defaults to A0..A7, matching
  /// workload::random_process's activity names so patterns actually hit.
  std::vector<std::string> alphabet;
  double atom_probability = 0.35;  // stop early and emit an atom
  double negation_probability = 0.15;
  double predicate_probability = 0.0;  // compare on attribute "attr"
};

/// A random pattern tree drawn from `rng`. Operators are uniform over
/// {⊙, ≫, ⊗, ⊕}; the tree has height at most max_depth + 1.
PatternPtr random_pattern(Rng& rng, const RandomPatternOptions& options = {});

}  // namespace wflog
