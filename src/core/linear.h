#pragma once

// Fast path for LINEAR patterns: chains of ⊙/≫ over positive,
// predicate-free atoms — by far the most common ad hoc query shape
// ("UpdateRefer ≫ GetReimburse", "GetRefer ⊙ CheckIn ≫ GetReimburse", ...).
//
// For a linear pattern, every incident is a strictly increasing assignment
// of positions to atoms, and distinct assignments produce distinct record
// sets — so counting and existence checking do not require materializing
// incidents at all:
//
//  * count:  dynamic programming over the atoms' occurrence lists with
//            suffix sums — O(sum of occurrence-list lengths) per instance
//            instead of the evaluator's output-bound O(|inc|·k);
//  * exists: greedy earliest-match scan — O(chain length · log occ).
//
// This realises the paper's closing remark that the naive evaluation "can
// be augmented with more advanced optimization techniques" for the
// aggregate query modes its introduction motivates ("how many students
// every year ...").

#include <optional>
#include <vector>

#include "core/pattern.h"
#include "log/index.h"

namespace wflog {

/// One atom of a linear chain and how it attaches to its predecessor.
struct LinearStep {
  std::string activity;
  bool consecutive = false;  // true: is-lsn must be predecessor's + 1
};

/// A flattened temporal chain (first element's `consecutive` is unused).
using LinearChain = std::vector<LinearStep>;

/// Returns the chain if `p` is linear: only ⊙/≫ operators and positive
/// atoms without predicates. Any tree shape qualifies (Theorems 2/4 make
/// all groupings of a temporal chain equivalent); std::nullopt otherwise.
std::optional<LinearChain> as_linear_chain(const Pattern& p);

/// Number of incidents of the chain within one instance.
std::size_t count_linear(const LinearChain& chain, const LogIndex& index,
                         Wid wid);

/// Number of incidents across the whole log.
std::size_t count_linear(const LinearChain& chain, const LogIndex& index);

/// Whether the chain has at least one incident in the instance / log.
bool exists_linear(const LinearChain& chain, const LogIndex& index, Wid wid);
bool exists_linear(const LinearChain& chain, const LogIndex& index);

}  // namespace wflog
