#pragma once

// Algebraic rewriting — Theorems 2–5 of the paper as executable rules.
//
//   Theorem 2 (associativity)   (p1 θ p2) θ p3 ≡ p1 θ (p2 θ p3), all θ
//   Theorem 3 (commutativity)   p1 ⊗ p2 ≡ p2 ⊗ p1,  p1 ⊕ p2 ≡ p2 ⊕ p1
//   Theorem 4 (⊙/≫ mixing)      (p1 ⊙ p2) ≫ p3 ≡ p1 ⊙ (p2 ≫ p3) and the
//                               ≫/⊙ mirror — the two temporal operators
//                               reassociate freely across each other
//   Theorem 5 (distributivity)  p1 θ (p2 ⊗ p3) ≡ (p1 θ p2) ⊗ (p1 θ p3)
//                               and the right-hand mirror, all θ
//
// Each function applies one law at the ROOT of the pattern and returns the
// rewritten tree, or nullptr when the law does not apply there. neighbors()
// enumerates every pattern reachable by one application of any law at any
// node — the move set of the cost-based optimizer (core/optimizer.h).

#include <string>
#include <vector>

#include "core/pattern.h"

namespace wflog {
namespace rewrite {

/// a X (b Y c) -> (a X b) Y c. Applies when X == Y (Theorem 2) or when
/// {X, Y} ⊆ {⊙, ≫} (Theorem 4).
PatternPtr rotate_left(const Pattern& p);

/// (a X b) Y c -> a X (b Y c). Same applicability as rotate_left.
PatternPtr rotate_right(const Pattern& p);

/// a ⊗ b -> b ⊗ a and a ⊕ b -> b ⊕ a (Theorem 3).
PatternPtr commute(const Pattern& p);

/// a θ (b ⊗ c) -> (a θ b) ⊗ (a θ c) (Theorem 5, left-distributive).
PatternPtr distribute_left(const Pattern& p);

/// (a ⊗ b) θ c -> (a θ c) ⊗ (b θ c) (Theorem 5, right-distributive).
PatternPtr distribute_right(const Pattern& p);

/// The inverse of distribution — the optimization direction:
/// (a θ b) ⊗ (a θ c) -> a θ (b ⊗ c)  when the two left operands are
/// structurally equal (and the mirror for shared right operands).
PatternPtr factor(const Pattern& p);

/// One rewrite step, labelled for explainability.
struct Step {
  PatternPtr result;
  std::string rule;  // e.g. "rotate_right@root", "factor@left.right"
};

/// All distinct patterns reachable by one application of any law at any
/// node. Duplicates (by structural equality) are removed.
std::vector<Step> neighbors(const PatternPtr& p);

}  // namespace rewrite
}  // namespace wflog
