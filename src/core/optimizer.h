#pragma once

// Cost-based query optimization — the paper's "immediate task" for future
// work (§6), built on the algebraic laws of Theorems 2–5.
//
// The optimizer performs greedy local search: from the current pattern it
// enumerates every tree reachable by one law application (rewrite::
// neighbors), estimates each with the CostModel, and moves to the cheapest
// strict improvement, stopping at a local optimum or the step limit.
// Soundness is inherited from the theorems — every move preserves inc_L —
// and is additionally property-tested (tests/optimizer_test.cpp).

#include <string>
#include <vector>

#include "core/cost.h"
#include "core/rewriter.h"

namespace wflog {

struct OptimizerOptions {
  std::size_t max_steps = 64;
  /// Record the rule applied at each step (for EXPLAIN-style output).
  bool trace = false;
};

struct OptimizeResult {
  PatternPtr pattern;  // the chosen plan
  double initial_cost = 0;
  double final_cost = 0;
  std::size_t steps = 0;
  std::size_t candidates_examined = 0;
  std::vector<std::string> trace;  // rule labels, when options.trace
};

OptimizeResult optimize(PatternPtr p, const CostModel& model,
                        const OptimizerOptions& options = {});

}  // namespace wflog
