#include "core/predicate.h"

#include <functional>

namespace wflog {

std::string_view to_string(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

std::string_view to_string(MapSel sel) {
  switch (sel) {
    case MapSel::kIn:
      return "in";
    case MapSel::kOut:
      return "out";
    case MapSel::kAny:
      return "any";
  }
  return "?";
}

PredicatePtr Predicate::compare(MapSel sel, std::string attr, CmpOp op,
                                Value literal) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kCompare;
  p->sel_ = sel;
  p->attr_ = std::move(attr);
  p->cmp_ = op;
  p->literal_ = std::move(literal);
  return p;
}

PredicatePtr Predicate::exists(MapSel sel, std::string attr) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kExists;
  p->sel_ = sel;
  p->attr_ = std::move(attr);
  return p;
}

PredicatePtr Predicate::logical_and(PredicatePtr a, PredicatePtr b) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kAnd;
  p->left_ = std::move(a);
  p->right_ = std::move(b);
  return p;
}

PredicatePtr Predicate::logical_or(PredicatePtr a, PredicatePtr b) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kOr;
  p->left_ = std::move(a);
  p->right_ = std::move(b);
  return p;
}

PredicatePtr Predicate::logical_not(PredicatePtr a) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kNot;
  p->left_ = std::move(a);
  return p;
}

namespace {

const Value* lookup(const LogRecord& record, MapSel sel, Symbol attr) {
  if (attr == kNoSymbol) return nullptr;
  switch (sel) {
    case MapSel::kIn:
      return record.in.get(attr);
    case MapSel::kOut:
      return record.out.get(attr);
    case MapSel::kAny: {
      const Value* v = record.out.get(attr);
      return v != nullptr ? v : record.in.get(attr);
    }
  }
  return nullptr;
}

bool compare_values(const Value& a, CmpOp op, const Value& b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a.compare(b) < 0;
    case CmpOp::kLe:
      return a.compare(b) <= 0;
    case CmpOp::kGt:
      return a.compare(b) > 0;
    case CmpOp::kGe:
      return a.compare(b) >= 0;
  }
  return false;
}

}  // namespace

bool Predicate::eval(const LogRecord& record, const Interner& interner) const {
  switch (kind_) {
    case Kind::kCompare: {
      const Value* v = lookup(record, sel_, interner.find(attr_));
      return v != nullptr && compare_values(*v, cmp_, literal_);
    }
    case Kind::kExists:
      return lookup(record, sel_, interner.find(attr_)) != nullptr;
    case Kind::kAnd:
      return left_->eval(record, interner) && right_->eval(record, interner);
    case Kind::kOr:
      return left_->eval(record, interner) || right_->eval(record, interner);
    case Kind::kNot:
      return !left_->eval(record, interner);
  }
  return false;
}

std::string Predicate::to_string() const {
  switch (kind_) {
    case Kind::kCompare: {
      std::string prefix = sel_ == MapSel::kAny
                               ? std::string{}
                               : std::string(wflog::to_string(sel_)) + ".";
      return prefix + attr_ + " " + std::string(wflog::to_string(cmp_)) +
             " " + literal_.to_string();
    }
    case Kind::kExists: {
      std::string prefix = sel_ == MapSel::kAny
                               ? std::string{}
                               : std::string(wflog::to_string(sel_)) + ".";
      return "exists " + prefix + attr_;
    }
    case Kind::kAnd:
      return "(" + left_->to_string() + " && " + right_->to_string() + ")";
    case Kind::kOr:
      return "(" + left_->to_string() + " || " + right_->to_string() + ")";
    case Kind::kNot:
      return "!(" + left_->to_string() + ")";
  }
  return "";
}

bool Predicate::equals(const Predicate& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kCompare:
      return sel_ == other.sel_ && attr_ == other.attr_ &&
             cmp_ == other.cmp_ && literal_ == other.literal_;
    case Kind::kExists:
      return sel_ == other.sel_ && attr_ == other.attr_;
    case Kind::kAnd:
    case Kind::kOr:
      return left_->equals(*other.left_) && right_->equals(*other.right_);
    case Kind::kNot:
      return left_->equals(*other.left_);
  }
  return false;
}

std::size_t Predicate::hash() const {
  auto mix = [](std::size_t h, std::size_t v) {
    return h * 0x9e3779b97f4a7c15ULL + v + 0x7f4a7c15ULL;
  };
  std::size_t h = static_cast<std::size_t>(kind_);
  switch (kind_) {
    case Kind::kCompare:
      h = mix(h, static_cast<std::size_t>(sel_));
      h = mix(h, std::hash<std::string>{}(attr_));
      h = mix(h, static_cast<std::size_t>(cmp_));
      h = mix(h, literal_.hash());
      break;
    case Kind::kExists:
      h = mix(h, static_cast<std::size_t>(sel_));
      h = mix(h, std::hash<std::string>{}(attr_));
      break;
    case Kind::kAnd:
    case Kind::kOr:
      h = mix(h, left_->hash());
      h = mix(h, right_->hash());
      break;
    case Kind::kNot:
      h = mix(h, left_->hash());
      break;
  }
  return h;
}

}  // namespace wflog
