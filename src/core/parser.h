#pragma once

// Text syntax for incident patterns, parsed with the stack-based
// shunting-yard algorithm the paper prescribes (Algorithm 3 builds the
// incident tree from the operator expression; Dijkstra 1961).
//
// Grammar (ASCII tokens, with the paper's glyphs accepted as aliases):
//
//   pattern  := pattern OP pattern | '(' pattern ')' | atom
//   atom     := ['!'] IDENT [ '[' predicate ']' ]
//   OP       := '.'   consecutive   (alias: ⊙)
//             | '->'  sequential    (alias: ≫, '>>')
//             | '|'   choice        (alias: ⊗)
//             | '&'   parallel      (alias: ⊕)
//   '!' negation (alias: ¬, '~')
//
// Precedence (high to low): { . -> } > & > | — all left-associative.
// Consecutive and sequential share one precedence level, which Theorem 4
// licenses: any grouping of a ⊙/≫ chain denotes the same incident set.
//
// Predicate sub-language (between [ ]): see core/predicate.h.
//
// Examples:
//   UpdateRefer -> GetReimburse
//   SeeDoctor -> (UpdateRefer -> GetReimburse)
//   GetRefer[out.balance > 5000] . CheckIn
//   (PayTreatment | UpdateRefer) & SeeDoctor
//   !CheckIn -> END

#include <string_view>

#include "core/pattern.h"

namespace wflog {

/// Parses a pattern expression. Throws ParseError (with byte offset) on
/// malformed input.
PatternPtr parse_pattern(std::string_view text);

/// Parses a standalone predicate expression (the text between [ ]).
PredicatePtr parse_predicate(std::string_view text);

}  // namespace wflog
