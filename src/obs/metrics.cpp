#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace wflog::obs {
namespace {

std::atomic<std::uint64_t> g_next_registry_id{1};

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

/// Thread-local shard cache: (registry id -> shard). Keyed by the
/// process-unique id, never the address, so a registry destroyed and
/// another allocated at the same address cannot alias. Linear scan — a
/// thread talks to one or two registries in practice.
thread_local std::vector<std::pair<std::uint64_t, detail::Shard*>>
    t_shard_cache;

}  // namespace

// ----- cells -------------------------------------------------------------

MetricsRegistry::MetricsRegistry(std::size_t cell_capacity)
    : cell_capacity_(std::max<std::size_t>(cell_capacity, 1)),
      id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

detail::Shard* MetricsRegistry::local_shard() {
  for (const auto& [id, shard] : t_shard_cache) {
    if (id == id_) return shard;
  }
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<detail::Shard>(cell_capacity_));
  detail::Shard* shard = shards_.back().get();
  t_shard_cache.emplace_back(id_, shard);
  return shard;
}

std::uint64_t MetricsRegistry::merged_cell(std::uint32_t cell) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->cells[cell].load(std::memory_order_relaxed);
  }
  return total;
}

std::uint32_t MetricsRegistry::reserve_cells(std::uint32_t n) {
  // Caller holds mu_.
  if (cells_used_ + n > cell_capacity_) {
    throw Error("MetricsRegistry: cell capacity exhausted (" +
                std::to_string(cell_capacity_) + ")");
  }
  const std::uint32_t first = cells_used_;
  cells_used_ += n;
  return first;
}

// ----- Counter -----------------------------------------------------------

void Counter::add(std::uint64_t v) {
  // Single-writer shard cell: load+store (no RMW) is race-free because
  // only the owning thread writes it; scrapers merely read.
  std::atomic<std::uint64_t>& cell = owner_->local_shard()->cells[cell_];
  cell.store(cell.load(std::memory_order_relaxed) + v,
             std::memory_order_relaxed);
}

std::uint64_t Counter::value() const { return owner_->merged_cell(cell_); }

// ----- Gauge -------------------------------------------------------------

std::uint64_t Gauge::encode(double v) { return std::bit_cast<std::uint64_t>(v); }
double Gauge::decode(std::uint64_t bits) { return std::bit_cast<double>(bits); }

void Gauge::add(double delta) {
  std::uint64_t old = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(old, encode(decode(old) + delta),
                                      std::memory_order_relaxed)) {
  }
}

// ----- Histogram ---------------------------------------------------------

void Histogram::observe(double v) {
  detail::Shard* shard = owner_->local_shard();
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // +Inf = bounds_.size()
  auto bump = [](std::atomic<std::uint64_t>& cell, std::uint64_t delta) {
    cell.store(cell.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
  };
  bump(shard->cells[first_cell_ + bucket], 1);
  // The sum cell holds a double in uint64 bits; same single-writer rule.
  std::atomic<std::uint64_t>& sum_cell =
      shard->cells[first_cell_ + bounds_.size() + 1];
  const double sum =
      std::bit_cast<double>(sum_cell.load(std::memory_order_relaxed)) + v;
  sum_cell.store(std::bit_cast<std::uint64_t>(sum),
                 std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (std::size_t b = 0; b < out.size(); ++b) {
    out[b] = owner_->merged_cell(first_cell_ + static_cast<std::uint32_t>(b));
  }
  return out;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : bucket_counts()) total += c;
  return total;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(owner_->mu_);
  double total = 0;
  const std::uint32_t cell =
      first_cell_ + static_cast<std::uint32_t>(bounds_.size()) + 1;
  for (const auto& shard : owner_->shards_) {
    total += std::bit_cast<double>(
        shard->cells[cell].load(std::memory_order_relaxed));
  }
  return total;
}

// ----- registration ------------------------------------------------------

Counter* MetricsRegistry::counter(std::string_view name,
                                  std::string_view help) {
  if (!valid_metric_name(name)) {
    throw Error("MetricsRegistry: invalid metric name '" +
                std::string(name) + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.name == name) {
      if (e.kind != Entry::Kind::kCounter) {
        throw Error("MetricsRegistry: '" + std::string(name) +
                    "' already registered with a different kind");
      }
      return e.counter.get();
    }
  }
  const std::uint32_t cell = reserve_cells(1);
  Entry e;
  e.kind = Entry::Kind::kCounter;
  e.name = std::string(name);
  e.help = std::string(help);
  e.counter.reset(new Counter(this, cell));
  entries_.push_back(std::move(e));
  return entries_.back().counter.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name, std::string_view help) {
  if (!valid_metric_name(name)) {
    throw Error("MetricsRegistry: invalid metric name '" +
                std::string(name) + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.name == name) {
      if (e.kind != Entry::Kind::kGauge) {
        throw Error("MetricsRegistry: '" + std::string(name) +
                    "' already registered with a different kind");
      }
      return e.gauge.get();
    }
  }
  Entry e;
  e.kind = Entry::Kind::kGauge;
  e.name = std::string(name);
  e.help = std::string(help);
  e.gauge.reset(new Gauge());
  entries_.push_back(std::move(e));
  return entries_.back().gauge.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds,
                                      std::string_view help) {
  if (!valid_metric_name(name)) {
    throw Error("MetricsRegistry: invalid metric name '" +
                std::string(name) + "'");
  }
  if (bounds.empty()) {
    throw Error("MetricsRegistry: histogram needs at least one bound");
  }
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (!std::isfinite(bounds[i]) ||
        (i > 0 && bounds[i] <= bounds[i - 1])) {
      throw Error("MetricsRegistry: histogram bounds must be finite and "
                  "strictly ascending");
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries_) {
    if (e.name == name) {
      if (e.kind != Entry::Kind::kHistogram ||
          e.histogram->bounds() != bounds) {
        throw Error("MetricsRegistry: '" + std::string(name) +
                    "' already registered with a different kind or bounds");
      }
      return e.histogram.get();
    }
  }
  // bounds.size()+1 buckets (incl. +Inf) plus one sum cell.
  const std::uint32_t first =
      reserve_cells(static_cast<std::uint32_t>(bounds.size()) + 2);
  Entry e;
  e.kind = Entry::Kind::kHistogram;
  e.name = std::string(name);
  e.help = std::string(help);
  e.histogram.reset(new Histogram(this, first, std::move(bounds)));
  entries_.push_back(std::move(e));
  return entries_.back().histogram.get();
}

std::size_t MetricsRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  // Copy the handle list first (handles are heap-allocated and stable;
  // the Entry vector itself may reallocate once the lock drops). Value
  // reads then re-lock per cell, which is fine on the cold scrape path.
  struct Row {
    Entry::Kind kind;
    std::string name, help;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const Histogram* histogram = nullptr;
  };
  std::vector<Row> rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rows.reserve(entries_.size());
    for (const Entry& e : entries_) {
      rows.push_back({e.kind, e.name, e.help, e.counter.get(),
                      e.gauge.get(), e.histogram.get()});
    }
  }
  MetricsSnapshot snap;
  for (const Row& r : rows) {
    switch (r.kind) {
      case Entry::Kind::kCounter:
        snap.counters.push_back({r.name, r.help, r.counter->value()});
        break;
      case Entry::Kind::kGauge:
        snap.gauges.push_back({r.name, r.help, r.gauge->value()});
        break;
      case Entry::Kind::kHistogram: {
        MetricsSnapshot::HistogramSample h;
        h.name = r.name;
        h.help = r.help;
        h.bounds = r.histogram->bounds();
        h.buckets = r.histogram->bucket_counts();
        h.sum = r.histogram->sum();
        for (std::uint64_t c : h.buckets) h.count += c;
        snap.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return snap;
}

std::vector<double> default_latency_bounds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

}  // namespace wflog::obs
