#pragma once

// Tracer — hierarchical wall-clock spans for the query pipeline.
//
// A span brackets one stage of work ("query.parse", "query.eval", an
// operator node, a batch pass, a store recovery). Spans nest per thread:
// opening a span while another is open on the same thread links it as a
// child, which is exactly the call structure of the engine (query ->
// parse/optimize/eval -> per-operator nodes; batch -> workers). Records
// accumulate in per-thread buffers guarded by a tiny per-buffer mutex
// (uncontended in steady state: every thread locks only its own buffer,
// except during snapshot()).
//
// Exporters live in obs/export.h: Chrome trace_event JSON (load the file
// in chrome://tracing or https://ui.perfetto.dev) and an indented
// human-readable tree.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace wflog::obs {

/// One key/value annotation on a span ("pairs" = 132, "query" = "a -> b").
struct SpanArg {
  std::string key;
  std::variant<std::uint64_t, double, std::string> value;
};

struct SpanRecord {
  static constexpr std::uint32_t kNoParent = 0xffffffffu;

  std::string name;
  std::uint64_t start_ns = 0;  // since the tracer's epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;     // logical thread lane (0 = first seen)
  std::uint32_t parent = kNoParent;  // index into SpanSnapshot::spans
  std::vector<SpanArg> args;
};

/// Point-in-time copy of every recorded span. Spans are grouped by thread
/// lane and ordered by start time within a lane; `parent` indexes into
/// `spans` (parents always precede children within a lane).
struct SpanSnapshot {
  std::vector<SpanRecord> spans;
};

/// Per-name aggregate of a contiguous run of one thread's spans — the
/// "per-operator summary" a slow-query capture stores instead of the raw
/// span stream (bounded size, no parent indices to keep alive).
struct SpanSummary {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
};

class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// RAII handle: closes (stamps the duration of) its span on destruction
  /// or at end(). A default-constructed Span is inert — every operation is
  /// a no-op — which is how disabled telemetry costs one branch.
  class Span {
   public:
    Span() noexcept = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    ~Span() { end(); }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    void arg(std::string_view key, std::uint64_t value);
    void arg(std::string_view key, double value);
    void arg(std::string_view key, std::string value);
    /// Closes the span now (idempotent).
    void end();
    bool active() const noexcept { return tracer_ != nullptr; }

   private:
    friend class Tracer;
    Span(Tracer* tracer, void* buf, std::uint32_t idx) noexcept
        : tracer_(tracer), buf_(buf), idx_(idx) {}
    Tracer* tracer_ = nullptr;
    void* buf_ = nullptr;  // ThreadBuf*, opaque to keep the header light
    std::uint32_t idx_ = 0;
  };

  /// Opens a span on the calling thread, nested under the thread's
  /// innermost open span.
  Span span(std::string_view name);

  SpanSnapshot snapshot() const;
  std::size_t num_spans() const;
  /// Drops every recorded span (open spans keep working).
  void clear();

  /// Opaque position in the calling thread's span buffer. Take a mark
  /// before a unit of work, then summarize_thread_since(mark) after it to
  /// aggregate exactly the spans that work recorded — valid only on the
  /// same thread, which is how wfqd attributes operator spans to one
  /// request (a worker thread runs a request start to finish).
  std::size_t thread_mark();
  /// Aggregates the calling thread's CLOSED spans recorded at or after
  /// `mark`, grouped by name in first-seen order. Spans still open (or so
  /// short they round to 0ns) are skipped.
  std::vector<SpanSummary> summarize_thread_since(std::size_t mark);

  /// Caps each thread's buffer: once a thread holds `limit` spans, new
  /// spans on it are dropped (counted, inert handles returned). 0 = no
  /// cap (the default). A long-lived daemon that installs telemetry for
  /// metrics but never exports traces sets a cap so span memory cannot
  /// grow without bound. clear() resets every buffer, re-arming capped
  /// threads.
  void set_thread_span_limit(std::size_t limit) noexcept;
  std::size_t thread_span_limit() const noexcept;
  /// Spans dropped by the cap since construction.
  std::uint64_t num_dropped() const noexcept;

 private:
  struct ThreadBuf;
  ThreadBuf* local_buf();

  const std::uint64_t id_;  // process-unique, keys the thread-local cache
  std::uint64_t epoch_ns_;  // steady-clock origin for start_ns
  std::atomic<std::size_t> span_limit_{0};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mu_;   // guards bufs_
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
};

}  // namespace wflog::obs
