#pragma once

// Tracer — hierarchical wall-clock spans for the query pipeline.
//
// A span brackets one stage of work ("query.parse", "query.eval", an
// operator node, a batch pass, a store recovery). Spans nest per thread:
// opening a span while another is open on the same thread links it as a
// child, which is exactly the call structure of the engine (query ->
// parse/optimize/eval -> per-operator nodes; batch -> workers). Records
// accumulate in per-thread buffers guarded by a tiny per-buffer mutex
// (uncontended in steady state: every thread locks only its own buffer,
// except during snapshot()).
//
// Exporters live in obs/export.h: Chrome trace_event JSON (load the file
// in chrome://tracing or https://ui.perfetto.dev) and an indented
// human-readable tree.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace wflog::obs {

/// One key/value annotation on a span ("pairs" = 132, "query" = "a -> b").
struct SpanArg {
  std::string key;
  std::variant<std::uint64_t, double, std::string> value;
};

struct SpanRecord {
  static constexpr std::uint32_t kNoParent = 0xffffffffu;

  std::string name;
  std::uint64_t start_ns = 0;  // since the tracer's epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;     // logical thread lane (0 = first seen)
  std::uint32_t parent = kNoParent;  // index into SpanSnapshot::spans
  std::vector<SpanArg> args;
};

/// Point-in-time copy of every recorded span. Spans are grouped by thread
/// lane and ordered by start time within a lane; `parent` indexes into
/// `spans` (parents always precede children within a lane).
struct SpanSnapshot {
  std::vector<SpanRecord> spans;
};

class Tracer {
 public:
  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// RAII handle: closes (stamps the duration of) its span on destruction
  /// or at end(). A default-constructed Span is inert — every operation is
  /// a no-op — which is how disabled telemetry costs one branch.
  class Span {
   public:
    Span() noexcept = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept;
    ~Span() { end(); }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    void arg(std::string_view key, std::uint64_t value);
    void arg(std::string_view key, double value);
    void arg(std::string_view key, std::string value);
    /// Closes the span now (idempotent).
    void end();
    bool active() const noexcept { return tracer_ != nullptr; }

   private:
    friend class Tracer;
    Span(Tracer* tracer, void* buf, std::uint32_t idx) noexcept
        : tracer_(tracer), buf_(buf), idx_(idx) {}
    Tracer* tracer_ = nullptr;
    void* buf_ = nullptr;  // ThreadBuf*, opaque to keep the header light
    std::uint32_t idx_ = 0;
  };

  /// Opens a span on the calling thread, nested under the thread's
  /// innermost open span.
  Span span(std::string_view name);

  SpanSnapshot snapshot() const;
  std::size_t num_spans() const;
  /// Drops every recorded span (open spans keep working).
  void clear();

 private:
  struct ThreadBuf;
  ThreadBuf* local_buf();

  const std::uint64_t id_;  // process-unique, keys the thread-local cache
  std::uint64_t epoch_ns_;  // steady-clock origin for start_ns
  mutable std::mutex mu_;   // guards bufs_
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
};

}  // namespace wflog::obs
