#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace wflog::obs {
namespace {

/// Prometheus sample values: shortest round-trip double formatting.
std::string fmt_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  // Integral values print as plain integers ("10", not "1e+01").
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char ibuf[32];
    std::snprintf(ibuf, sizeof ibuf, "%.0f", v);
    return ibuf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Try shorter forms first for readability where they round-trip.
  for (int prec = 1; prec <= 16; ++prec) {
    char shorter[64];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, v);
    double back = 0;
    std::sscanf(shorter, "%lf", &back);
    if (back == v) return shorter;
  }
  return buf;
}

void json_escape(std::ostringstream& os, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void json_string(std::ostringstream& os, std::string_view s) {
  os << '"';
  json_escape(os, s);
  os << '"';
}

void json_arg_value(std::ostringstream& os, const SpanArg& arg) {
  if (const auto* u = std::get_if<std::uint64_t>(&arg.value)) {
    os << *u;
  } else if (const auto* d = std::get_if<double>(&arg.value)) {
    // JSON has no Inf/NaN; stringify those.
    if (std::isfinite(*d)) {
      os << fmt_double(*d);
    } else {
      json_string(os, fmt_double(*d));
    }
  } else {
    json_string(os, std::get<std::string>(arg.value));
  }
}

}  // namespace

std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string to_prometheus_text(const MetricsSnapshot& snap) {
  std::ostringstream os;
  auto header = [&os](const std::string& name, const std::string& help,
                      const char* type) {
    if (!help.empty()) {
      os << "# HELP " << name << ' ';
      // Exposition format: escape backslash and newline in help text.
      for (char c : help) {
        if (c == '\\') {
          os << "\\\\";
        } else if (c == '\n') {
          os << "\\n";
        } else {
          os << c;
        }
      }
      os << '\n';
    }
    os << "# TYPE " << name << ' ' << type << '\n';
  };

  for (const auto& c : snap.counters) {
    header(c.name, c.help, "counter");
    os << c.name << ' ' << c.value << '\n';
  }
  for (const auto& g : snap.gauges) {
    header(g.name, g.help, "gauge");
    os << g.name << ' ' << fmt_double(g.value) << '\n';
  }
  for (const auto& h : snap.histograms) {
    header(h.name, h.help, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      cumulative += h.buckets[b];
      os << h.name << "_bucket{le=\"" << fmt_double(h.bounds[b]) << "\"} "
         << cumulative << '\n';
    }
    cumulative += h.buckets.back();
    os << h.name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
    os << h.name << "_sum " << fmt_double(h.sum) << '\n';
    os << h.name << "_count " << h.count << '\n';
  }
  return os.str();
}

std::string metrics_to_json(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i != 0) os << ',';
    json_string(os, snap.counters[i].name);
    os << ':' << snap.counters[i].value;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i != 0) os << ',';
    json_string(os, snap.gauges[i].name);
    os << ':'
       << (std::isfinite(snap.gauges[i].value)
               ? fmt_double(snap.gauges[i].value)
               : "null");
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    if (i != 0) os << ',';
    json_string(os, h.name);
    os << ":{\"buckets\":[";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b != 0) os << ',';
      os << "{\"le\":";
      if (b < h.bounds.size()) {
        os << fmt_double(h.bounds[b]);
      } else {
        os << "\"+Inf\"";
      }
      os << ",\"count\":" << h.buckets[b] << '}';
    }
    os << "],\"sum\":" << (std::isfinite(h.sum) ? fmt_double(h.sum) : "0")
       << ",\"count\":" << h.count << '}';
  }
  os << "}}";
  return os.str();
}

std::string to_chrome_trace_json(const SpanSnapshot& snap) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : snap.spans) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"name\":";
    json_string(os, s.name);
    os << ",\"cat\":\"wflog\",\"ph\":\"X\",\"pid\":1,\"tid\":" << s.tid
       << ",\"ts\":" << fmt_double(static_cast<double>(s.start_ns) / 1000.0)
       << ",\"dur\":" << fmt_double(static_cast<double>(s.dur_ns) / 1000.0);
    if (!s.args.empty()) {
      os << ",\"args\":{";
      for (std::size_t a = 0; a < s.args.size(); ++a) {
        if (a != 0) os << ',';
        json_string(os, s.args[a].key);
        os << ':';
        json_arg_value(os, s.args[a]);
      }
      os << '}';
    }
    os << '}';
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

std::string to_tree_string(const SpanSnapshot& snap) {
  std::ostringstream os;
  // Depth of each span from its parent chain (parents precede children).
  std::vector<std::size_t> depth(snap.spans.size(), 0);
  std::uint32_t num_lanes = 0;
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    const SpanRecord& s = snap.spans[i];
    if (s.parent != SpanRecord::kNoParent) depth[i] = depth[s.parent] + 1;
    num_lanes = std::max(num_lanes, s.tid + 1);
  }
  std::uint32_t lane = 0xffffffffu;
  for (std::size_t i = 0; i < snap.spans.size(); ++i) {
    const SpanRecord& s = snap.spans[i];
    if (num_lanes > 1 && s.tid != lane) {
      lane = s.tid;
      os << "thread " << lane << ":\n";
    }
    os << std::string(2 * (depth[i] + (num_lanes > 1 ? 1 : 0)), ' ')
       << s.name << "  "
       << fmt_double(static_cast<double>(s.dur_ns) / 1000.0) << " us";
    for (const SpanArg& a : s.args) {
      os << "  " << a.key << '=';
      if (const auto* u = std::get_if<std::uint64_t>(&a.value)) {
        os << *u;
      } else if (const auto* d = std::get_if<double>(&a.value)) {
        os << fmt_double(*d);
      } else {
        os << std::get<std::string>(a.value);
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace wflog::obs
