#pragma once

// Engine-wide telemetry: one Telemetry object bundles the MetricsRegistry
// and the Tracer plus pre-registered handles for every hot-path metric the
// engine records (name lookup happens once, at construction).
//
// Instrumentation sites use the ambient instance:
//
//   WFLOG_TELEMETRY(t) { t->queries_total->inc(); }
//   WFLOG_SPAN(span, "query.eval");
//   span.arg("incidents", n);
//
// Cost model. Telemetry is OFF unless an instance is installed
// (install_telemetry / ScopedTelemetry): every site is then a single
// relaxed load + null check. Compiling with WFLOG_OBS_ENABLED=0 (cmake
// -DWFLOG_OBS=OFF) turns telemetry() into a constexpr nullptr, so the
// compiler deletes the sites outright — the zero-cost-when-disabled
// guarantee bench/bench_obs.cpp guards.
//
// Threading: install/uninstall are not synchronized against concurrent
// queries — install before starting work (the CLI installs once at
// startup). Recording through an installed instance is thread-safe.

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#ifndef WFLOG_OBS_ENABLED
#define WFLOG_OBS_ENABLED 1
#endif

namespace wflog::obs {

struct Telemetry {
  MetricsRegistry metrics;
  Tracer tracer;

  /// Emit a span per operator node per instance during evaluation (the
  /// explain()-grade detail level). Expensive on large logs; the CLI turns
  /// it on for --trace runs.
  bool trace_nodes = false;

  // ----- query pipeline ---------------------------------------------------
  Counter* queries_total;
  Counter* batches_total;
  Counter* batch_queries_total;
  Histogram* query_parse_seconds;
  Histogram* query_optimize_seconds;
  Histogram* query_eval_seconds;
  Histogram* batch_eval_seconds;
  Counter* query_deadline_exceeded_total;
  Counter* query_cancelled_total;
  Counter* query_truncated_total;

  // ----- evaluator work tallies (EvalCounters folded on every run) --------
  Counter* eval_operator_nodes_total;
  Counter* eval_pairs_examined_total;
  Counter* eval_incidents_emitted_total;
  Counter* eval_cache_hits_total;
  Counter* eval_cache_misses_total;
  Counter* eval_cache_bytes_total;

  // ----- parallel scheduler ----------------------------------------------
  Counter* parallel_workers_total;

  // ----- sharded scatter/gather -------------------------------------------
  Counter* shard_evals_total;      // sharded evaluations (scatter/gather runs)
  Counter* shard_tasks_total;      // shard tasks scattered
  Counter* shard_cancelled_total;  // shard tasks early-cancelled by a guard
  Histogram* shard_eval_seconds;   // wall time of one scatter/gather pass

  // ----- durable store ----------------------------------------------------
  Counter* store_appends_total;
  Counter* store_flushes_total;
  Counter* store_segment_rolls_total;
  Counter* store_truncations_total;
  Counter* store_syncs_total;
  Counter* store_retries_total;
  Counter* store_corrupt_records_total;
  Counter* store_blocks_written_total;
  Counter* store_blocks_read_total;
  Counter* store_blocks_skipped_total;
  Counter* store_compressed_bytes_total;
  Counter* store_uncompressed_bytes_total;
  Counter* store_footer_recoveries_total;
  Counter* store_sealed_reopen_skips_total;
  Histogram* store_append_seconds;

  // ----- live monitor -----------------------------------------------------
  Counter* monitor_records_total;
  Counter* monitor_matches_total;
  Counter* monitor_bad_events_total;
  Gauge* monitor_open_instances;
  Gauge* monitor_queries;

  // ----- simulator --------------------------------------------------------
  Counter* sim_instances_total;
  Counter* sim_records_total;

  Telemetry();
};

#if WFLOG_OBS_ENABLED
/// The installed ambient instance, or nullptr when telemetry is off.
Telemetry* telemetry() noexcept;
/// Installs `t` as the ambient instance (nullptr uninstalls). Not owning.
void install_telemetry(Telemetry* t) noexcept;
#else
constexpr Telemetry* telemetry() noexcept { return nullptr; }
inline void install_telemetry(Telemetry*) noexcept {}
#endif

/// RAII install/restore, for tests and scoped instrumentation.
class ScopedTelemetry {
 public:
  explicit ScopedTelemetry(Telemetry& t) : prev_(telemetry()) {
    install_telemetry(&t);
  }
  ~ScopedTelemetry() { install_telemetry(prev_); }
  ScopedTelemetry(const ScopedTelemetry&) = delete;
  ScopedTelemetry& operator=(const ScopedTelemetry&) = delete;

 private:
  Telemetry* prev_;
};

}  // namespace wflog::obs

/// Runs the braced statement with `t` bound to the ambient Telemetry, only
/// when one is installed. Compiles to nothing when WFLOG_OBS_ENABLED=0.
#define WFLOG_TELEMETRY(t) \
  if (::wflog::obs::Telemetry* t = ::wflog::obs::telemetry(); t != nullptr)

/// Declares `var` as a span on the ambient tracer (inert without one).
#define WFLOG_SPAN(var, ...)                               \
  ::wflog::obs::Tracer::Span var =                         \
      (::wflog::obs::telemetry() != nullptr                \
           ? ::wflog::obs::telemetry()->tracer.span(__VA_ARGS__) \
           : ::wflog::obs::Tracer::Span{})
