#pragma once

// Exposition formats for telemetry:
//
//   to_prometheus_text  — Prometheus text exposition format 0.0.4
//                         (# HELP / # TYPE / samples; histograms emit
//                         cumulative _bucket{le=...}, _sum, _count)
//   metrics_to_json     — the same snapshot as a JSON document, for
//                         programmatic scrapes
//   to_chrome_trace_json— Chrome trace_event "X" (complete) events;
//                         load in chrome://tracing or ui.perfetto.dev
//   to_tree_string      — indented human-readable span tree with
//                         durations and args

#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wflog::obs {

/// Escapes a Prometheus label VALUE per the exposition format: backslash
/// -> \\, double-quote -> \", newline -> \n. Use for every value placed
/// inside {label="..."} — label values are the one position where
/// arbitrary request-derived text (canonical pattern keys, endpoint
/// paths) reaches the scrape output.
std::string escape_label_value(std::string_view value);

std::string to_prometheus_text(const MetricsSnapshot& snap);
std::string metrics_to_json(const MetricsSnapshot& snap);

std::string to_chrome_trace_json(const SpanSnapshot& snap);
std::string to_tree_string(const SpanSnapshot& snap);

}  // namespace wflog::obs
