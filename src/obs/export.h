#pragma once

// Exposition formats for telemetry:
//
//   to_prometheus_text  — Prometheus text exposition format 0.0.4
//                         (# HELP / # TYPE / samples; histograms emit
//                         cumulative _bucket{le=...}, _sum, _count)
//   metrics_to_json     — the same snapshot as a JSON document, for
//                         programmatic scrapes
//   to_chrome_trace_json— Chrome trace_event "X" (complete) events;
//                         load in chrome://tracing or ui.perfetto.dev
//   to_tree_string      — indented human-readable span tree with
//                         durations and args

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wflog::obs {

std::string to_prometheus_text(const MetricsSnapshot& snap);
std::string metrics_to_json(const MetricsSnapshot& snap);

std::string to_chrome_trace_json(const SpanSnapshot& snap);
std::string to_tree_string(const SpanSnapshot& snap);

}  // namespace wflog::obs
