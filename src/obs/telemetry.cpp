#include "obs/telemetry.h"

#include <atomic>

namespace wflog::obs {

Telemetry::Telemetry() {
  auto lat = [] { return default_latency_bounds(); };

  queries_total =
      metrics.counter("wflog_queries_total",
                      "Queries executed via QueryEngine::run/exists/count");
  batches_total =
      metrics.counter("wflog_batches_total", "run_batch calls executed");
  batch_queries_total = metrics.counter(
      "wflog_batch_queries_total", "Queries evaluated inside batch passes");
  query_parse_seconds = metrics.histogram(
      "wflog_query_parse_seconds", lat(), "Query text parse latency");
  query_optimize_seconds =
      metrics.histogram("wflog_query_optimize_seconds", lat(),
                        "Cost-based optimizer latency per query");
  query_eval_seconds = metrics.histogram(
      "wflog_query_eval_seconds", lat(),
      "Evaluation latency per query (incl. where-clause filtering)");
  batch_eval_seconds = metrics.histogram(
      "wflog_batch_eval_seconds", lat(),
      "Shared-pass evaluation latency per run_batch call");
  query_deadline_exceeded_total =
      metrics.counter("wflog_query_deadline_exceeded_total",
                      "Queries stopped early by a QueryOptions deadline");
  query_cancelled_total =
      metrics.counter("wflog_query_cancelled_total",
                      "Queries stopped early by a cancellation token");
  query_truncated_total =
      metrics.counter("wflog_query_truncated_total",
                      "Queries truncated by the max-incidents budget");

  eval_operator_nodes_total =
      metrics.counter("wflog_eval_operator_nodes_total",
                      "Operator nodes evaluated (per instance)");
  eval_pairs_examined_total =
      metrics.counter("wflog_eval_pairs_examined_total",
                      "Operand pairs inspected by the operator algorithms");
  eval_incidents_emitted_total =
      metrics.counter("wflog_eval_incidents_emitted_total",
                      "Incidents emitted by operator nodes");
  eval_cache_hits_total =
      metrics.counter("wflog_eval_cache_hits_total",
                      "Subpattern-memo hits (batch shared evaluation)");
  eval_cache_misses_total =
      metrics.counter("wflog_eval_cache_misses_total",
                      "Subpattern-memo misses (computed and stored)");
  eval_cache_bytes_total =
      metrics.counter("wflog_eval_cache_bytes_total",
                      "Incident bytes retained in subpattern memos");

  parallel_workers_total =
      metrics.counter("wflog_parallel_workers_total",
                      "Worker threads spawned by the instance scheduler");

  shard_evals_total =
      metrics.counter("wflog_shard_evals_total",
                      "Sharded scatter/gather evaluations executed");
  shard_tasks_total = metrics.counter(
      "wflog_shard_tasks_total", "Shard tasks scattered across the pool");
  shard_cancelled_total =
      metrics.counter("wflog_shard_cancelled_total",
                      "Shard tasks early-cancelled by a tripped guard");
  shard_eval_seconds =
      metrics.histogram("wflog_shard_eval_seconds", lat(),
                        "Wall time of one sharded scatter/gather pass");

  store_appends_total = metrics.counter(
      "wflog_store_appends_total", "Records appended to the durable store");
  store_flushes_total = metrics.counter(
      "wflog_store_flushes_total", "Tail-segment flushes (one per append)");
  store_segment_rolls_total = metrics.counter(
      "wflog_store_segment_rolls_total", "Segment files opened");
  store_truncations_total =
      metrics.counter("wflog_store_truncations_total",
                      "Torn tail lines physically truncated on open");
  store_syncs_total = metrics.counter(
      "wflog_store_syncs_total", "fsyncs issued by the durable store");
  store_retries_total =
      metrics.counter("wflog_store_retries_total",
                      "Transient store IO failures absorbed by retry");
  store_corrupt_records_total =
      metrics.counter("wflog_store_corrupt_records_total",
                      "Corrupt record lines quarantined by a recovering open");
  store_blocks_written_total =
      metrics.counter("wflog_store_blocks_written_total",
                      "Compressed blocks written to v2 segments");
  store_blocks_read_total =
      metrics.counter("wflog_store_blocks_read_total",
                      "v2 segment blocks inflated by reads");
  store_blocks_skipped_total = metrics.counter(
      "wflog_store_blocks_skipped_total",
      "v2 segment blocks skipped by zone-map pruning without inflation");
  store_compressed_bytes_total =
      metrics.counter("wflog_store_compressed_bytes_total",
                      "Compressed payload bytes written to v2 blocks");
  store_uncompressed_bytes_total =
      metrics.counter("wflog_store_uncompressed_bytes_total",
                      "Uncompressed payload bytes framed into v2 blocks");
  store_footer_recoveries_total = metrics.counter(
      "wflog_store_footer_recoveries_total",
      "v2 segments recovered block-by-block after a missing/torn footer");
  store_sealed_reopen_skips_total = metrics.counter(
      "wflog_store_sealed_reopen_skips_total",
      "Sealed v2 segments reopened via footer fast path (no block re-scan)");
  store_append_seconds =
      metrics.histogram("wflog_store_append_seconds", lat(),
                        "Durable append latency (serialize + flush)");

  monitor_records_total = metrics.counter(
      "wflog_monitor_records_total", "Events fed to the live monitor");
  monitor_matches_total = metrics.counter(
      "wflog_monitor_matches_total", "Incidents reported by the monitor");
  monitor_bad_events_total = metrics.counter(
      "wflog_monitor_bad_events_total",
      "Events rejected, skipped, or quarantined by the bad-event policy");
  monitor_open_instances = metrics.gauge(
      "wflog_monitor_open_instances", "Workflow instances currently open");
  monitor_queries =
      metrics.gauge("wflog_monitor_queries", "Patterns currently registered");

  sim_instances_total = metrics.counter(
      "wflog_sim_instances_total", "Workflow instances simulated");
  sim_records_total = metrics.counter("wflog_sim_records_total",
                                      "Records emitted by the simulator");
}

#if WFLOG_OBS_ENABLED
namespace {
std::atomic<Telemetry*> g_telemetry{nullptr};
}  // namespace

Telemetry* telemetry() noexcept {
  return g_telemetry.load(std::memory_order_acquire);
}

void install_telemetry(Telemetry* t) noexcept {
  g_telemetry.store(t, std::memory_order_release);
}
#endif

}  // namespace wflog::obs
