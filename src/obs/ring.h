#pragma once

// BoundedRing — a tiny thread-safe fixed-capacity ring of records.
//
// The request observability layer (server/observer.h) keeps the last N
// request summaries and the last N slow-query captures in memory so the
// /debug endpoints can serve them without any persistence. Writers
// overwrite the oldest entry once full; snapshot() returns oldest-first.
// A coarse mutex is fine here: pushes are one move + index bump and the
// ring is far off the request hot path's critical section.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace wflog::obs {

template <typename T>
class BoundedRing {
 public:
  explicit BoundedRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    items_.reserve(capacity_);
  }

  void push(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.size() < capacity_) {
      items_.push_back(std::move(item));
    } else {
      items_[head_] = std::move(item);
      head_ = (head_ + 1) % capacity_;
      ++evicted_;
    }
  }

  /// Copies the current contents, oldest entry first.
  std::vector<T> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<T> out;
    out.reserve(items_.size());
    for (std::size_t i = 0; i < items_.size(); ++i) {
      out.push_back(items_[(head_ + i) % items_.size()]);
    }
    return out;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

  /// Number of entries overwritten because the ring was full.
  std::uint64_t evicted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return evicted_;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    items_.clear();
    head_ = 0;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<T> items_;
  std::size_t head_ = 0;      // oldest entry, once full
  std::uint64_t evicted_ = 0;
};

}  // namespace wflog::obs
