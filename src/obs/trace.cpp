#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>

namespace wflog::obs {
namespace {

std::atomic<std::uint64_t> g_next_tracer_id{1};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

struct Tracer::ThreadBuf {
  mutable std::mutex mu;  // owner thread vs. snapshot()
  std::vector<SpanRecord> spans;        // local parent indices
  std::vector<std::uint32_t> open;      // stack of open span indices
  std::uint32_t tid = 0;
};

Tracer::Tracer()
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      epoch_ns_(now_ns()) {}

Tracer::~Tracer() = default;

Tracer::ThreadBuf* Tracer::local_buf() {
  // Thread-local cache keyed by tracer id (ids are never reused, so a
  // destroyed tracer's entries can never alias a new tracer).
  thread_local std::vector<std::pair<std::uint64_t, ThreadBuf*>> cache;
  for (const auto& [id, buf] : cache) {
    if (id == id_) return buf;
  }
  std::lock_guard<std::mutex> lock(mu_);
  bufs_.push_back(std::make_unique<ThreadBuf>());
  ThreadBuf* buf = bufs_.back().get();
  buf->tid = static_cast<std::uint32_t>(bufs_.size() - 1);
  cache.emplace_back(id_, buf);
  return buf;
}

Tracer::Span Tracer::span(std::string_view name) {
  ThreadBuf* buf = local_buf();
  std::lock_guard<std::mutex> lock(buf->mu);
  const std::size_t limit = span_limit_.load(std::memory_order_relaxed);
  if (limit != 0 && buf->spans.size() >= limit) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return Span();  // inert: ends/args are no-ops, nesting stack untouched
  }
  SpanRecord rec;
  rec.name = std::string(name);
  rec.start_ns = now_ns() - epoch_ns_;
  rec.tid = buf->tid;
  rec.parent = buf->open.empty() ? SpanRecord::kNoParent : buf->open.back();
  const std::uint32_t idx = static_cast<std::uint32_t>(buf->spans.size());
  buf->spans.push_back(std::move(rec));
  buf->open.push_back(idx);
  return Span(this, buf, idx);
}

Tracer::Span& Tracer::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    buf_ = other.buf_;
    idx_ = other.idx_;
    other.tracer_ = nullptr;
    other.buf_ = nullptr;
  }
  return *this;
}

void Tracer::Span::end() {
  if (tracer_ == nullptr) return;
  auto* buf = static_cast<Tracer::ThreadBuf*>(buf_);
  std::lock_guard<std::mutex> lock(buf->mu);
  SpanRecord& rec = buf->spans[idx_];
  rec.dur_ns = now_ns() - tracer_->epoch_ns_ - rec.start_ns;
  // Pop this span (and anything erroneously left open above it).
  while (!buf->open.empty() && buf->open.back() >= idx_) buf->open.pop_back();
  tracer_ = nullptr;
  buf_ = nullptr;
}

void Tracer::Span::arg(std::string_view key, std::uint64_t value) {
  if (tracer_ == nullptr) return;
  auto* buf = static_cast<Tracer::ThreadBuf*>(buf_);
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->spans[idx_].args.push_back({std::string(key), value});
}

void Tracer::Span::arg(std::string_view key, double value) {
  if (tracer_ == nullptr) return;
  auto* buf = static_cast<Tracer::ThreadBuf*>(buf_);
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->spans[idx_].args.push_back({std::string(key), value});
}

void Tracer::Span::arg(std::string_view key, std::string value) {
  if (tracer_ == nullptr) return;
  auto* buf = static_cast<Tracer::ThreadBuf*>(buf_);
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->spans[idx_].args.push_back({std::string(key), std::move(value)});
}

SpanSnapshot Tracer::snapshot() const {
  SpanSnapshot snap;
  const std::uint64_t now = now_ns() - epoch_ns_;
  std::lock_guard<std::mutex> lock(mu_);
  // Lanes are appended in tid order; within a lane spans are already in
  // start order (records are created at open time). Local parent indices
  // are rebased by the lane's offset into the flat vector.
  for (const auto& buf : bufs_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    const std::uint32_t offset = static_cast<std::uint32_t>(snap.spans.size());
    for (const SpanRecord& rec : buf->spans) {
      SpanRecord copy = rec;
      if (copy.parent != SpanRecord::kNoParent) copy.parent += offset;
      // A span still open at snapshot time reports its elapsed time so far.
      if (copy.dur_ns == 0 && copy.start_ns <= now) {
        bool is_open = false;
        for (std::uint32_t open_idx : buf->open) {
          if (&buf->spans[open_idx] == &rec) {
            is_open = true;
            break;
          }
        }
        if (is_open) copy.dur_ns = now - copy.start_ns;
      }
      snap.spans.push_back(std::move(copy));
    }
  }
  return snap;
}

std::size_t Tracer::num_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& buf : bufs_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    n += buf->spans.size();
  }
  return n;
}

std::size_t Tracer::thread_mark() {
  ThreadBuf* buf = local_buf();
  std::lock_guard<std::mutex> lock(buf->mu);
  return buf->spans.size();
}

std::vector<SpanSummary> Tracer::summarize_thread_since(std::size_t mark) {
  ThreadBuf* buf = local_buf();
  std::lock_guard<std::mutex> lock(buf->mu);
  std::vector<SpanSummary> out;
  for (std::size_t i = mark; i < buf->spans.size(); ++i) {
    const SpanRecord& rec = buf->spans[i];
    if (rec.dur_ns == 0) continue;  // still open (or rounded to nothing)
    SpanSummary* entry = nullptr;
    for (SpanSummary& s : out) {
      if (s.name == rec.name) {
        entry = &s;
        break;
      }
    }
    if (entry == nullptr) {
      out.push_back(SpanSummary{rec.name, 0, 0, 0});
      entry = &out.back();
    }
    ++entry->count;
    entry->total_ns += rec.dur_ns;
    entry->max_ns = std::max(entry->max_ns, rec.dur_ns);
  }
  return out;
}

void Tracer::set_thread_span_limit(std::size_t limit) noexcept {
  span_limit_.store(limit, std::memory_order_relaxed);
}

std::size_t Tracer::thread_span_limit() const noexcept {
  return span_limit_.load(std::memory_order_relaxed);
}

std::uint64_t Tracer::num_dropped() const noexcept {
  return dropped_.load(std::memory_order_relaxed);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : bufs_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    // Keep open spans so their Span handles stay valid; drop closed ones.
    // Simplest correct policy: only clear when nothing is open.
    if (buf->open.empty()) buf->spans.clear();
  }
}

}  // namespace wflog::obs
