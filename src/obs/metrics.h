#pragma once

// MetricsRegistry — named counters, gauges, and fixed-bucket histograms
// for engine-wide telemetry.
//
// The hot path is record-side: the parallel evaluator, batch workers, the
// monitor, and the log store all bump metrics from whatever thread they
// happen to run on. To keep that contention-free, counter and histogram
// cells live in LOCK-FREE THREAD-LOCAL SHARDS: each thread lazily acquires
// its own cell block (one registry mutex hit per thread, ever) and then
// updates plain relaxed atomics it alone writes. scrape()/snapshot() merges
// the shards. Values are monotone, so a concurrent scrape sees a consistent
// "at least everything before the call" view without stopping writers.
//
// Gauges are last-write-wins process-wide values (open instances, queue
// depths) and use a single shared atomic instead of shards.
//
// Handles (Counter*/Gauge*/Histogram*) are stable for the registry's
// lifetime; registration is idempotent by name (same name + same kind
// returns the same handle). Exposition lives in obs/export.h.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wflog::obs {

class MetricsRegistry;

namespace detail {

/// One thread's private cell block. Cells are written only by the owning
/// thread (relaxed load+store, no RMW) and read by scrapers; blocks are
/// owned by the registry so tallies survive worker-thread exit.
struct Shard {
  explicit Shard(std::size_t capacity) : cells(capacity) {}
  std::vector<std::atomic<std::uint64_t>> cells;
};

}  // namespace detail

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t v = 1);
  void inc() { add(1); }
  /// Merged value across all shards.
  std::uint64_t value() const;

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* owner, std::uint32_t cell) noexcept
      : owner_(owner), cell_(cell) {}
  MetricsRegistry* owner_;
  std::uint32_t cell_;  // shard cell index
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { bits_.store(encode(v), std::memory_order_relaxed); }
  void add(double delta);
  double value() const { return decode(bits_.load(std::memory_order_relaxed)); }

 private:
  friend class MetricsRegistry;
  Gauge() noexcept = default;
  static std::uint64_t encode(double v);
  static double decode(std::uint64_t bits);
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram with Prometheus `le` (inclusive upper bound)
/// semantics. Bounds are set at registration and immutable; an implicit
/// +Inf bucket catches the overflow. Sharded like Counter.
class Histogram {
 public:
  void observe(double v);

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket counts (NON-cumulative), last entry is the +Inf bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const;
  double sum() const;

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* owner, std::uint32_t first_cell,
            std::vector<double> bounds) noexcept
      : owner_(owner), first_cell_(first_cell), bounds_(std::move(bounds)) {}
  MetricsRegistry* owner_;
  std::uint32_t first_cell_;  // bounds.size()+1 bucket cells, then the sum
  std::vector<double> bounds_;
};

/// Point-in-time copy of every metric, for the exporters and tests.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name, help;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name, help;
    double value = 0;
  };
  struct HistogramSample {
    std::string name, help;
    std::vector<double> bounds;            // upper bounds, ascending
    std::vector<std::uint64_t> buckets;    // non-cumulative; +Inf last
    double sum = 0;
    std::uint64_t count = 0;
  };
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Reasonable latency bucket ladder for *_seconds histograms: 1us..10s.
std::vector<double> default_latency_bounds();

class MetricsRegistry {
 public:
  /// `cell_capacity` bounds the total sharded cells (counters + histogram
  /// buckets) the registry can ever hold; cells are reserved per shard up
  /// front so shards never reallocate under concurrent readers.
  explicit MetricsRegistry(std::size_t cell_capacity = 512);
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Names must match Prometheus grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
  /// Re-registering an existing name of the same kind returns the existing
  /// handle; a kind clash or bad name throws Error.
  Counter* counter(std::string_view name, std::string_view help = "");
  Gauge* gauge(std::string_view name, std::string_view help = "");
  /// `bounds` must be finite, strictly ascending, nonempty.
  Histogram* histogram(std::string_view name, std::vector<double> bounds,
                       std::string_view help = "");

  MetricsSnapshot snapshot() const;

  std::size_t num_metrics() const;

 private:
  friend class Counter;
  friend class Histogram;

  detail::Shard* local_shard();
  std::uint64_t merged_cell(std::uint32_t cell) const;
  std::uint32_t reserve_cells(std::uint32_t n);

  const std::size_t cell_capacity_;
  const std::uint64_t id_;  // process-unique, keys the thread-local cache

  mutable std::mutex mu_;  // guards everything below (cold path only)
  std::vector<std::unique_ptr<detail::Shard>> shards_;
  std::uint32_t cells_used_ = 0;

  struct Entry {
    enum class Kind { kCounter, kGauge, kHistogram } kind;
    std::string name, help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  std::vector<Entry> entries_;
};

}  // namespace wflog::obs
